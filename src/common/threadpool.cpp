/**
 * @file
 * Thread pool implementation.
 */
#include "common/threadpool.hpp"

namespace dfx {

size_t
ThreadPool::resolveThreads(size_t n_threads)
{
    if (n_threads != 0)
        return n_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(size_t n_threads)
    : nThreads_(resolveThreads(n_threads))
{
    // The calling thread participates in every batch, so spawn one
    // fewer worker than the requested width.
    workers_.reserve(nThreads_ - 1);
    for (size_t i = 0; i + 1 < nThreads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(size_t)> *fn;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            fn = fn_;
        }
        for (;;) {
            const size_t i = nextIndex_.fetch_add(1);
            if (i >= batchSize_)
                break;
            try {
                (*fn)(i);
            } catch (...) {
                recordErrorAndCancel();
                break;
            }
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--active_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::run(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        batchSize_ = n;
        nextIndex_.store(0);
        active_ = workers_.size();
        ++generation_;
    }
    wake_.notify_all();
    // The calling thread pulls indices like any worker.
    for (;;) {
        const size_t i = nextIndex_.fetch_add(1);
        if (i >= batchSize_)
            break;
        try {
            fn(i);
        } catch (...) {
            recordErrorAndCancel();
            break;
        }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return active_ == 0; });
    fn_ = nullptr;
    // Propagate the batch's first exception once every worker is back
    // at the barrier; the pool is reusable for the next run().
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::recordErrorAndCancel()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
    // Best-effort cancellation: bump the shared index past the end so
    // idle claimers stop early. Indices already claimed still finish.
    nextIndex_.store(batchSize_);
}

}  // namespace dfx
