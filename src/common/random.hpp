/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All synthetic model weights and workload generators draw from this
 * engine so experiments are exactly reproducible across runs and
 * platforms (we avoid std::normal_distribution, whose output is
 * implementation-defined).
 */
#ifndef DFX_COMMON_RANDOM_HPP
#define DFX_COMMON_RANDOM_HPP

#include <cstdint>

namespace dfx {

/**
 * xoshiro256** PRNG seeded via SplitMix64.
 *
 * Small, fast and high quality; the reference implementation is public
 * domain (Blackman & Vigna).
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal via Box-Muller (deterministic, portable). */
    double normal();

    /** Normal with the given mean / standard deviation. */
    double normal(double mean, double stddev);

    /** Uniform integer in [0, n). n must be nonzero. */
    uint64_t below(uint64_t n);

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

}  // namespace dfx

#endif  // DFX_COMMON_RANDOM_HPP
