/**
 * @file
 * IEEE-754 binary16 (half precision) soft-float.
 *
 * DFX runs its entire datapath in FP16 "based on IEEE 754 with 1-bit
 * sign, 5-bit exponent, and 10-bit mantissa" (paper §VII-A). Every
 * arithmetic operation in the simulated MPU/VPU/SFU goes through this
 * type so that results carry hardware-faithful rounding behaviour:
 * each primitive op (multiply, add, ...) rounds to nearest-even
 * independently, exactly like the Xilinx Floating-Point Operator IP
 * the paper instantiates (separate DSP multiplier and adder — no fused
 * multiply-add).
 *
 * The conversions are the simulator's hottest scalar path (every MAC
 * in a functional run performs two half->float widenings and one
 * float->half rounding), so they are table-driven and fully inline:
 *
 *  - half -> float uses precomputed mantissa/exponent/offset tables
 *    (the classic three-table scheme): one add of two table entries,
 *    no branches, exact for every encoding including subnormals,
 *    infinities and NaN payloads.
 *  - float -> half is a short branch-light integer sequence with
 *    round-to-nearest-even; a single rounding from the float value,
 *    bit-identical to rounding the exact real value because
 *    float -> half is a widening pair (see below).
 *
 * Binary +, - and * are computed in the float domain: widening half
 * operands to float is exact, the float operation result rounds to
 * half in one step, and double rounding float->half is innocuous
 * because float's 24-bit significand satisfies p_wide >= 2*p_half + 2
 * (24 >= 24). Division and the transcendental helpers keep the double
 * path — the intermediate rounding there is far below half-precision
 * ULP and matches FPGA operator behaviour in practice.
 */
#ifndef DFX_COMMON_FP16_HPP
#define DFX_COMMON_FP16_HPP

#include <array>
#include <bit>
#include <cstdint>
#include <iosfwd>

namespace dfx {
namespace fp16 {

/**
 * Lookup tables for the branchless half -> float conversion.
 *
 * float_bits = mantissa[offset[h >> 10] + (h & 0x3ff)] + exponent[h >> 10]
 *
 * The mantissa table normalizes the 1024 subnormal significands (and
 * passes normal ones through shifted into float position); the
 * exponent table rebiases the 5-bit exponent for both signs, mapping
 * exponent 31 to the float inf/NaN exponent; the offset table selects
 * the subnormal or normal half of the mantissa table.
 */
struct ConversionTables
{
    std::array<uint32_t, 2048> mantissa;
    std::array<uint32_t, 64> exponent;
    std::array<uint32_t, 64> offset;
};

namespace detail {

/** Normalizes subnormal significand `i` (1..1023) into float bits. */
constexpr uint32_t
normalizeSubnormal(uint32_t i)
{
    uint32_t m = i << 13;  // significand into float mantissa position
    uint32_t e = 0;
    while (!(m & 0x00800000u)) {  // shift until the implicit bit is set
        e -= 0x00800000u;         // ...decrementing the float exponent
        m <<= 1;
    }
    m &= ~0x00800000u;  // drop the now-implicit leading 1
    e += 0x38800000u;   // rebias: 2^-14 is the smallest half normal
    return m | e;
}

constexpr ConversionTables
makeTables()
{
    ConversionTables t{};
    t.mantissa[0] = 0;
    for (uint32_t i = 1; i < 1024; ++i)
        t.mantissa[i] = normalizeSubnormal(i);
    for (uint32_t i = 1024; i < 2048; ++i)
        t.mantissa[i] = 0x38000000u + ((i - 1024) << 13);
    for (uint32_t e = 0; e < 64; ++e) {
        const uint32_t sign = (e & 32) ? 0x80000000u : 0;
        const uint32_t mag = e & 31;
        if (mag == 0)
            t.exponent[e] = sign;  // zero/subnormal: mantissa table
                                   // already carries the exponent
        else if (mag == 31)
            t.exponent[e] = sign | 0x47800000u;  // -> 0x7f800000 offset
        else
            t.exponent[e] = sign | (mag << 23);
        t.offset[e] = (mag == 0) ? 0 : 1024;
    }
    return t;
}

}  // namespace detail

inline constexpr ConversionTables kTables = detail::makeTables();

/** Exact half -> float conversion (table lookup, branchless). */
inline float
halfBitsToFloat(uint16_t bits)
{
    const uint32_t e = bits >> 10;  // sign+exponent, 6 bits
    const uint32_t u =
        kTables.mantissa[kTables.offset[e] + (bits & 0x3ffu)] +
        kTables.exponent[e];
    return std::bit_cast<float>(u);
}

/** Round-to-nearest-even float -> half conversion (single rounding). */
inline uint16_t
floatToHalfBits(float value)
{
    const uint32_t f = std::bit_cast<uint32_t>(value);
    const uint32_t sign = (f >> 16) & 0x8000u;
    const uint32_t abs = f & 0x7fffffffu;

    if (abs >= 0x47800000u) {  // |x| >= 2^16: overflow, inf or NaN
        if (abs > 0x7f800000u)
            return static_cast<uint16_t>(sign | 0x7e00u);  // quiet NaN
        return static_cast<uint16_t>(sign | 0x7c00u);
    }
    if (abs >= 0x38800000u) {  // normal half range, |x| >= 2^-14
        // Rebias exponent and truncate the mantissa to 10 bits, then
        // round on the 13 shifted-out bits. A carry out of the
        // mantissa propagates into the exponent (and on to infinity
        // at the very top) by construction of the encoding.
        uint32_t h = (abs >> 13) - (112u << 10);
        const uint32_t rem = abs & 0x1fffu;
        h += (rem > 0x1000u) || (rem == 0x1000u && (h & 1u));
        return static_cast<uint16_t>(sign | h);
    }
    // Subnormal half or zero: shift the significand (implicit bit
    // included) into the 2^-24-ulp subnormal scale with RNE. Shifts
    // >= 25 always produce zero, including every float subnormal
    // input, so the clamp folds those cases in.
    const uint32_t e = abs >> 23;
    const uint32_t shift = (126u - e < 25u) ? 126u - e : 25u;
    const uint32_t sig = 0x800000u | (abs & 0x7fffffu);
    uint32_t h = sig >> shift;
    const uint32_t rem = sig & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    h += (rem > halfway) || (rem == halfway && (h & 1u));
    return static_cast<uint16_t>(sign | h);
}

/**
 * Rounds a float to the nearest representable half, returned as a
 * float (the widened value of `fromFloat(f).toFloat()`, bit for bit).
 *
 * This is the MAC-tree inner-loop primitive: the functional MPU keeps
 * tree values in the float domain — every element is an exact widened
 * half — and requantizes after each multiply/add with this fixup, so
 * the per-node rounding never leaves the registers. The fast path
 * covers results in the half-normal range below the round-to-infinity
 * threshold (65520): round-to-nearest-even at mantissa bit 13 is an
 * integer add + mask, and a carry out of the mantissa moves to the
 * next binade correctly. Everything else (subnormal, zero, overflow,
 * inf, NaN) takes the exact conversion pair.
 */
inline float
quantize(float f)
{
    uint32_t u = std::bit_cast<uint32_t>(f);
    const uint32_t abs = u & 0x7fffffffu;
    if (abs - 0x38800000u < 0x477ff000u - 0x38800000u) {
        u += 0xfffu + ((u >> 13) & 1u);
        u &= 0xffffe000u;
        return std::bit_cast<float>(u);
    }
    return halfBitsToFloat(floatToHalfBits(f));
}

/**
 * Reference conversions: the original branchy soft-float algorithms.
 * `doubleToHalfBits` is also the production double -> half path (used
 * by division and the transcendental helpers, where the operand is
 * genuinely a double); the reference float path is the oracle the
 * inline fast path is verified against, exhaustively, in the tests.
 */
uint16_t doubleToHalfBits(double value);
float referenceHalfBitsToFloat(uint16_t bits);
uint16_t referenceFloatToHalfBits(float value);

}  // namespace fp16

/**
 * A half-precision floating point value stored as its 16 raw bits.
 *
 * Conversions implement correct round-to-nearest-even including
 * subnormals, infinities and NaN (see the file comment for how the
 * fast paths keep single-rounding semantics).
 */
class Half
{
  public:
    constexpr Half() : bits_(0) {}

    /** Wraps raw IEEE binary16 bits without conversion. */
    static constexpr Half
    fromBits(uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    /** Converts a double to half with round-to-nearest-even. */
    static Half
    fromDouble(double value)
    {
        return fromBits(fp16::doubleToHalfBits(value));
    }

    /** Converts a float to half with round-to-nearest-even. */
    static Half
    fromFloat(float value)
    {
        return fromBits(fp16::floatToHalfBits(value));
    }

    /** Raw bit pattern. */
    constexpr uint16_t bits() const { return bits_; }

    /** Exact widening conversion to float. */
    float toFloat() const { return fp16::halfBitsToFloat(bits_); }

    /** Exact widening conversion to double. */
    double
    toDouble() const
    {
        return static_cast<double>(fp16::halfBitsToFloat(bits_));
    }

    constexpr bool
    isNan() const
    {
        return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x3ffu) != 0;
    }

    constexpr bool isInf() const { return (bits_ & 0x7fffu) == 0x7c00u; }

    constexpr bool isZero() const { return (bits_ & 0x7fffu) == 0; }

    constexpr bool
    isSubnormal() const
    {
        return (bits_ & 0x7c00u) == 0 && (bits_ & 0x3ffu) != 0;
    }

    /** Sign bit (true when negative, including -0). */
    constexpr bool signBit() const { return (bits_ & 0x8000u) != 0; }

    // Handy constants.
    static constexpr Half zero() { return fromBits(0x0000); }
    static constexpr Half one() { return fromBits(0x3c00); }
    static constexpr Half negOne() { return fromBits(0xbc00); }
    /** Largest finite value, 65504. */
    static constexpr Half max() { return fromBits(0x7bff); }
    /** Most negative finite value, -65504. */
    static constexpr Half lowest() { return fromBits(0xfbff); }
    /** Smallest positive normal, 2^-14. */
    static constexpr Half minNormal() { return fromBits(0x0400); }
    /** Smallest positive subnormal, 2^-24. */
    static constexpr Half minSubnormal() { return fromBits(0x0001); }
    static constexpr Half infinity() { return fromBits(0x7c00); }
    static constexpr Half negInfinity() { return fromBits(0xfc00); }
    static constexpr Half quietNan() { return fromBits(0x7e00); }

    Half operator-() const { return fromBits(bits_ ^ 0x8000u); }

    // +, - and * widen to float (exact) and round the float result:
    // correctly rounded FP16 (see the file comment). / rounds once
    // from the double quotient.
    friend Half
    operator+(Half a, Half b)
    {
        return fromFloat(a.toFloat() + b.toFloat());
    }

    friend Half
    operator-(Half a, Half b)
    {
        return fromFloat(a.toFloat() - b.toFloat());
    }

    friend Half
    operator*(Half a, Half b)
    {
        return fromFloat(a.toFloat() * b.toFloat());
    }

    friend Half
    operator/(Half a, Half b)
    {
        return fromDouble(a.toDouble() / b.toDouble());
    }

    Half &operator+=(Half o) { *this = *this + o; return *this; }
    Half &operator-=(Half o) { *this = *this - o; return *this; }
    Half &operator*=(Half o) { *this = *this * o; return *this; }
    Half &operator/=(Half o) { *this = *this / o; return *this; }

    // Comparisons follow IEEE semantics (NaN compares false, -0 == +0).
    friend bool
    operator==(Half a, Half b)
    {
        return a.toFloat() == b.toFloat();
    }

    friend bool
    operator!=(Half a, Half b)
    {
        return a.toFloat() != b.toFloat();
    }

    friend bool operator<(Half a, Half b) { return a.toFloat() < b.toFloat(); }
    friend bool operator<=(Half a, Half b) { return a.toFloat() <= b.toFloat(); }
    friend bool operator>(Half a, Half b) { return a.toFloat() > b.toFloat(); }
    friend bool operator>=(Half a, Half b) { return a.toFloat() >= b.toFloat(); }

  private:
    uint16_t bits_;
};

static_assert(sizeof(Half) == 2, "Half must be exactly 16 bits");

/** e^x rounded to half. Used by the VPU `exp` instruction. */
Half hexp(Half x);
/** 1/x rounded to half. Used by the VPU `recip` instruction. */
Half hrecip(Half x);
/** 1/sqrt(x) rounded to half. Used by the VPU `recip_sqrt` instruction. */
Half hrsqrt(Half x);
/** sqrt(x) rounded to half. */
Half hsqrt(Half x);
/** tanh(x) rounded to half (reference GELU only; hardware uses a LUT). */
Half htanh(Half x);
/** |x|. */
Half habs(Half x);
/** IEEE maxNum: returns the larger operand, preferring numbers to NaN. */
Half hmax(Half a, Half b);
/** IEEE minNum. */
Half hmin(Half a, Half b);

std::ostream &operator<<(std::ostream &os, Half h);

}  // namespace dfx

#endif  // DFX_COMMON_FP16_HPP
