/**
 * @file
 * IEEE-754 binary16 (half precision) soft-float.
 *
 * DFX runs its entire datapath in FP16 "based on IEEE 754 with 1-bit
 * sign, 5-bit exponent, and 10-bit mantissa" (paper §VII-A). Every
 * arithmetic operation in the simulated MPU/VPU/SFU goes through this
 * type so that results carry hardware-faithful rounding behaviour:
 * each primitive op (multiply, add, ...) rounds to nearest-even
 * independently, exactly like the Xilinx Floating-Point Operator IP
 * the paper instantiates (separate DSP multiplier and adder — no fused
 * multiply-add).
 */
#ifndef DFX_COMMON_FP16_HPP
#define DFX_COMMON_FP16_HPP

#include <cstdint>
#include <iosfwd>

namespace dfx {

/**
 * A half-precision floating point value stored as its 16 raw bits.
 *
 * Conversions implement correct round-to-nearest-even including
 * subnormals, infinities and NaN. Binary arithmetic is performed by
 * widening both operands to double (exact), computing, and rounding the
 * double result back to half in a single rounding step. For +, - and *
 * this is exactly the correctly-rounded FP16 result; for / and the
 * transcendental helpers the intermediate double rounding is far below
 * half-precision ULP and matches FPGA operator behaviour in practice.
 */
class Half
{
  public:
    constexpr Half() : bits_(0) {}

    /** Wraps raw IEEE binary16 bits without conversion. */
    static constexpr Half
    fromBits(uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    /** Converts a double to half with round-to-nearest-even. */
    static Half fromDouble(double value);

    /** Converts a float to half with round-to-nearest-even. */
    static Half fromFloat(float value);

    /** Raw bit pattern. */
    constexpr uint16_t bits() const { return bits_; }

    /** Exact widening conversion to float. */
    float toFloat() const;

    /** Exact widening conversion to double. */
    double toDouble() const;

    bool isNan() const;
    bool isInf() const;
    bool isZero() const;
    bool isSubnormal() const;

    /** Sign bit (true when negative, including -0). */
    constexpr bool signBit() const { return (bits_ & 0x8000u) != 0; }

    // Handy constants.
    static constexpr Half zero() { return fromBits(0x0000); }
    static constexpr Half one() { return fromBits(0x3c00); }
    static constexpr Half negOne() { return fromBits(0xbc00); }
    /** Largest finite value, 65504. */
    static constexpr Half max() { return fromBits(0x7bff); }
    /** Most negative finite value, -65504. */
    static constexpr Half lowest() { return fromBits(0xfbff); }
    /** Smallest positive normal, 2^-14. */
    static constexpr Half minNormal() { return fromBits(0x0400); }
    /** Smallest positive subnormal, 2^-24. */
    static constexpr Half minSubnormal() { return fromBits(0x0001); }
    static constexpr Half infinity() { return fromBits(0x7c00); }
    static constexpr Half negInfinity() { return fromBits(0xfc00); }
    static constexpr Half quietNan() { return fromBits(0x7e00); }

    Half operator-() const { return fromBits(bits_ ^ 0x8000u); }

    friend Half operator+(Half a, Half b);
    friend Half operator-(Half a, Half b);
    friend Half operator*(Half a, Half b);
    friend Half operator/(Half a, Half b);

    Half &operator+=(Half o) { *this = *this + o; return *this; }
    Half &operator-=(Half o) { *this = *this - o; return *this; }
    Half &operator*=(Half o) { *this = *this * o; return *this; }
    Half &operator/=(Half o) { *this = *this / o; return *this; }

    // Comparisons follow IEEE semantics (NaN compares false, -0 == +0).
    friend bool operator==(Half a, Half b);
    friend bool operator!=(Half a, Half b);
    friend bool operator<(Half a, Half b);
    friend bool operator<=(Half a, Half b);
    friend bool operator>(Half a, Half b);
    friend bool operator>=(Half a, Half b);

  private:
    uint16_t bits_;
};

static_assert(sizeof(Half) == 2, "Half must be exactly 16 bits");

/** e^x rounded to half. Used by the VPU `exp` instruction. */
Half hexp(Half x);
/** 1/x rounded to half. Used by the VPU `recip` instruction. */
Half hrecip(Half x);
/** 1/sqrt(x) rounded to half. Used by the VPU `recip_sqrt` instruction. */
Half hrsqrt(Half x);
/** sqrt(x) rounded to half. */
Half hsqrt(Half x);
/** tanh(x) rounded to half (reference GELU only; hardware uses a LUT). */
Half htanh(Half x);
/** |x|. */
Half habs(Half x);
/** IEEE maxNum: returns the larger operand, preferring numbers to NaN. */
Half hmax(Half a, Half b);
/** IEEE minNum. */
Half hmin(Half a, Half b);

std::ostream &operator<<(std::ostream &os, Half h);

namespace fp16 {

/** Round-to-nearest-even conversion from double bits; core algorithm. */
uint16_t doubleToHalfBits(double value);
/** Exact half-to-float conversion. */
float halfBitsToFloat(uint16_t bits);

}  // namespace fp16

}  // namespace dfx

#endif  // DFX_COMMON_FP16_HPP
