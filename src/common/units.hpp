/**
 * @file
 * Units and conversion helpers used throughout the timing models.
 *
 * Convention: core-local time is counted in integer cycles of the
 * 200 MHz kernel clock; system-level time (cluster, host, baselines)
 * is double seconds. Bandwidths are bytes/second, sizes are bytes.
 */
#ifndef DFX_COMMON_UNITS_HPP
#define DFX_COMMON_UNITS_HPP

#include <cstdint>

namespace dfx {

/** Core clock cycles (DFX kernel clock, 200 MHz). */
using Cycles = uint64_t;

namespace units {

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;

constexpr double kMHz = 1e6;
constexpr double kGHz = 1e9;

constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;

/** Converts cycles at the given clock frequency (Hz) to seconds. */
constexpr double
cyclesToSeconds(Cycles cycles, double freq_hz)
{
    return static_cast<double>(cycles) / freq_hz;
}

/** Converts seconds to (rounded-up) cycles at the given frequency. */
constexpr Cycles
secondsToCycles(double seconds, double freq_hz)
{
    double c = seconds * freq_hz;
    Cycles whole = static_cast<Cycles>(c);
    return (static_cast<double>(whole) < c) ? whole + 1 : whole;
}

/** Bytes deliverable per core clock cycle at the given bandwidth. */
constexpr double
bytesPerCycle(double bytes_per_sec, double freq_hz)
{
    return bytes_per_sec / freq_hz;
}

/** Seconds to transfer `bytes` at `bytes_per_sec`. */
constexpr double
transferSeconds(double bytes, double bytes_per_sec)
{
    return bytes / bytes_per_sec;
}

}  // namespace units
}  // namespace dfx

#endif  // DFX_COMMON_UNITS_HPP
