/**
 * @file
 * Error reporting and status messages (gem5-style panic/fatal/warn).
 *
 * `panic` flags simulator bugs (aborts); `fatal` flags user/config
 * errors (clean exit). `warn`/`inform` are non-fatal status messages.
 */
#ifndef DFX_COMMON_LOGGING_HPP
#define DFX_COMMON_LOGGING_HPP

#include <cstdio>
#include <string>

namespace dfx {

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

}  // namespace dfx

/** Simulator bug: print and abort(). */
#define DFX_PANIC(...) \
    ::dfx::panicImpl(__FILE__, __LINE__, ::dfx::strFormat(__VA_ARGS__))

/** User/configuration error: print and exit(1). */
#define DFX_FATAL(...) \
    ::dfx::fatalImpl(__FILE__, __LINE__, ::dfx::strFormat(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define DFX_WARN(...) ::dfx::warnImpl(::dfx::strFormat(__VA_ARGS__))

/** Informational message to stderr. */
#define DFX_INFORM(...) ::dfx::informImpl(::dfx::strFormat(__VA_ARGS__))

/** Invariant check that survives NDEBUG; panics with a message. */
#define DFX_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::dfx::panicImpl(__FILE__, __LINE__,                           \
                             std::string("assertion failed: " #cond " — ") \
                                 + ::dfx::strFormat(__VA_ARGS__));         \
        }                                                                  \
    } while (0)

#endif  // DFX_COMMON_LOGGING_HPP
