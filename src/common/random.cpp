/**
 * @file
 * xoshiro256** implementation (public-domain algorithm by Blackman &
 * Vigna), seeded with SplitMix64.
 */
#include "common/random.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dfx {
namespace {

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::normal()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    spare_ = mag * std::sin(two_pi * u2);
    haveSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

uint64_t
Rng::below(uint64_t n)
{
    DFX_ASSERT(n != 0, "Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

}  // namespace dfx
