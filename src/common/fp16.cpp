/**
 * @file
 * IEEE-754 binary16 soft-float: cold paths and reference conversions.
 *
 * The hot conversions and the +,-,* operators live inline in the
 * header (table-driven). This file keeps the double -> half rounding
 * core (used by division and the transcendental helpers) and the
 * original branchy conversions, which serve as the oracle for the
 * exhaustive equivalence tests.
 */
#include "common/fp16.hpp"

#include <cmath>
#include <ostream>

namespace dfx {
namespace fp16 {
namespace {

/**
 * Rounds an unsigned significand right by `shift` bits using
 * round-to-nearest-even (guard + sticky).
 */
uint64_t
roundShiftRne(uint64_t v, int shift)
{
    if (shift <= 0)
        return v << -shift;
    if (shift > 63)
        return 0;
    uint64_t res = v >> shift;
    uint64_t rem = v & ((uint64_t{1} << shift) - 1);
    uint64_t half = uint64_t{1} << (shift - 1);
    if (rem > half || (rem == half && (res & 1)))
        res += 1;
    return res;
}

}  // namespace

uint16_t
doubleToHalfBits(double value)
{
    const uint64_t x = std::bit_cast<uint64_t>(value);
    const uint16_t sign = static_cast<uint16_t>((x >> 48) & 0x8000u);
    const uint64_t abs = x & 0x7fffffffffffffffull;

    if (abs >= 0x7ff0000000000000ull) {
        // Inf or NaN. NaNs are canonicalized to a quiet NaN with the
        // input's sign; payload is not propagated (hardware FP16
        // operators canonicalize as well).
        return sign |
               (abs > 0x7ff0000000000000ull ? uint16_t{0x7e00}
                                            : uint16_t{0x7c00});
    }
    if (abs == 0)
        return sign;

    int exp = static_cast<int>(abs >> 52) - 1023;  // unbiased exponent
    uint64_t sig = abs & 0x000fffffffffffffull;    // 52 fraction bits
    if (abs >= 0x0010000000000000ull) {
        sig |= 0x0010000000000000ull;  // implicit leading 1
    } else {
        // Double subnormal: magnitude < 2^-1022, rounds to +/-0 in half.
        return sign;
    }

    // Half keeps 10 fraction bits; the double significand has 52.
    int shift = 42;
    if (exp < -14) {
        shift += -14 - exp;  // denormalize into half-subnormal range
        exp = -14;
    }
    uint64_t sig_h = roundShiftRne(sig, shift);
    if (sig_h == 0)
        return sign;
    if (sig_h >= 0x800u) {
        // Rounding carried into the next binade (always exactly 2048).
        sig_h >>= 1;
        exp += 1;
    }
    if (sig_h >= 0x400u) {
        // Normal half (the subnormal path lands here when it rounds up
        // into the smallest normal; exp was clamped to -14 so the
        // biased exponent below is 1, which is correct).
        int he = exp + 15;
        if (he >= 31)
            return sign | uint16_t{0x7c00};  // overflow to infinity
        return sign | static_cast<uint16_t>(he << 10) |
               static_cast<uint16_t>(sig_h & 0x3ffu);
    }
    // Subnormal half: exponent field 0, value sig_h * 2^-24.
    return sign | static_cast<uint16_t>(sig_h);
}

float
referenceHalfBitsToFloat(uint16_t bits)
{
    const uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
    uint32_t exp = (bits >> 10) & 0x1fu;
    uint32_t mant = bits & 0x3ffu;
    uint32_t out;
    if (exp == 0) {
        if (mant == 0) {
            out = sign;  // +/- zero
        } else {
            // Subnormal: normalize the significand.
            int e = -1;
            do {
                mant <<= 1;
                ++e;
            } while (!(mant & 0x400u));
            out = sign | ((127u - 15u - e) << 23) | ((mant & 0x3ffu) << 13);
        }
    } else if (exp == 31) {
        out = sign | 0x7f800000u | (mant << 13);  // inf / NaN
    } else {
        out = sign | ((exp - 15u + 127u) << 23) | (mant << 13);
    }
    return std::bit_cast<float>(out);
}

uint16_t
referenceFloatToHalfBits(float value)
{
    // float -> double is exact, so this is a single rounding step.
    return doubleToHalfBits(static_cast<double>(value));
}

}  // namespace fp16

Half
hexp(Half x)
{
    return Half::fromDouble(std::exp(x.toDouble()));
}

Half
hrecip(Half x)
{
    return Half::fromDouble(1.0 / x.toDouble());
}

Half
hrsqrt(Half x)
{
    return Half::fromDouble(1.0 / std::sqrt(x.toDouble()));
}

Half
hsqrt(Half x)
{
    return Half::fromDouble(std::sqrt(x.toDouble()));
}

Half
htanh(Half x)
{
    return Half::fromDouble(std::tanh(x.toDouble()));
}

Half
habs(Half x)
{
    return Half::fromBits(x.bits() & 0x7fffu);
}

Half
hmax(Half a, Half b)
{
    if (a.isNan())
        return b;
    if (b.isNan())
        return a;
    return a < b ? b : a;
}

Half
hmin(Half a, Half b)
{
    if (a.isNan())
        return b;
    if (b.isNan())
        return a;
    return b < a ? b : a;
}

std::ostream &
operator<<(std::ostream &os, Half h)
{
    return os << h.toFloat();
}

}  // namespace dfx
