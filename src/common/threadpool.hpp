/**
 * @file
 * Small persistent thread pool for stepping independent compute cores.
 *
 * The cluster's cores share no mutable state between ring
 * synchronization points, so a phase is an embarrassingly parallel
 * batch of `nCores` tasks. This pool keeps its workers alive across
 * phases (a token step dispatches hundreds of phases — spawning
 * threads per phase would dominate) and exposes exactly one blocking
 * primitive, `run(n, fn)`: invoke `fn(0..n-1)` across the workers and
 * the calling thread, returning when every index has finished.
 *
 * Determinism: `run` guarantees nothing about execution order, so
 * callers must make per-index work independent; the cluster keeps
 * bit-identical results by reducing per-core outputs in core order
 * after the barrier.
 */
#ifndef DFX_COMMON_THREADPOOL_HPP
#define DFX_COMMON_THREADPOOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dfx {

/** Persistent worker pool with a blocking parallel-for. */
class ThreadPool
{
  public:
    /**
     * @param n_threads total workers participating in `run`,
     *        including the calling thread; 0 picks the hardware
     *        concurrency. One (or zero) spawns no threads and `run`
     *        degenerates to a sequential loop.
     */
    explicit ThreadPool(size_t n_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers, including the calling thread. */
    size_t threads() const { return nThreads_; }

    /**
     * Invokes `fn(i)` for every i in [0, n) across the workers and
     * the calling thread; returns when all calls completed. Indices
     * are claimed atomically, one at a time (core steps are coarse
     * enough that chunking would only hurt balance). If any call
     * throws, the first exception (by completion order) is rethrown
     * on the calling thread after the batch barrier, remaining
     * indices may be skipped, and the pool stays usable for the next
     * `run`. Which indices ran is unspecified on error — callers
     * treat the batch as failed wholesale.
     */
    void run(size_t n, const std::function<void(size_t)> &fn);

    /** Resolves n_threads=0 to the hardware concurrency. */
    static size_t resolveThreads(size_t n_threads);

  private:
    void workerLoop();
    /** Store the batch's first exception, cancel remaining indices. */
    void recordErrorAndCancel();

    size_t nThreads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;   ///< workers wait for a batch
    std::condition_variable done_;   ///< run() waits for completion
    const std::function<void(size_t)> *fn_ = nullptr;
    std::exception_ptr firstError_;  ///< first throw of the batch
    size_t batchSize_ = 0;
    uint64_t generation_ = 0;        ///< batch sequence number
    std::atomic<size_t> nextIndex_{0};
    size_t active_ = 0;              ///< workers still in the batch
    bool stop_ = false;
};

}  // namespace dfx

#endif  // DFX_COMMON_THREADPOOL_HPP
