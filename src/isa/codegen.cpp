/**
 * @file
 * GPT-2 decoder program generation (paper Algorithm 1).
 */
#include "isa/codegen.hpp"

#include <cmath>

#include "common/fp16.hpp"
#include "common/logging.hpp"

namespace dfx {
namespace isa {
namespace {

constexpr size_t kLineWidth = 64;  ///< VRF line width (elements)

size_t
linesFor(size_t elems)
{
    return (elems + kLineWidth - 1) / kLineWidth;
}

uint16_t
immBits(double value)
{
    return Half::fromDouble(value).bits();
}

}  // namespace

bool
Phase::hasSync() const
{
    return !program.empty() && program.back().op == Opcode::kSync;
}

const Instruction &
Phase::sync() const
{
    DFX_ASSERT(hasSync(), "phase has no sync");
    return program.back();
}

VrfMap
VrfMap::build(const GptConfig &config, const ClusterGeometry &geometry,
              size_t lanes)
{
    const size_t emb = config.embedding;
    const size_t emb_shard = geometry.embShard(config);
    const size_t ffn_shard = geometry.ffnShard(config);
    const size_t vocab_shard = geometry.vocabShard(config, lanes);

    VrfMap m{};
    size_t next = 0;
    auto take = [&next](size_t elems) {
        size_t line = next;
        next += linesFor(elems);
        return line;
    };
    m.x = take(emb);
    m.ln = take(emb);
    m.tmp = take(emb);
    m.tmp2 = take(emb);
    m.gamma = take(emb);
    m.beta = take(emb);
    m.q = take(emb_shard);
    m.k = take(emb_shard);
    m.v = take(emb_shard);
    m.scores = take(config.maxSeq);
    m.attnLocal = take(emb_shard);
    m.attnFull = take(emb);
    m.projLocal = take(emb_shard);
    m.projFull = take(emb);
    m.ffn1Local = take(ffn_shard);
    m.ffn1Full = take(4 * emb);
    m.ffn2Local = take(emb_shard);
    m.ffn2Full = take(emb);
    m.embedTok = take(emb);
    m.embedPos = take(emb);
    m.lnfOut = take(emb);
    m.logits = take(vocab_shard);
    m.linesUsed = next;
    return m;
}

ProgramBuilder::ProgramBuilder(const GptConfig &config,
                               const ClusterGeometry &geometry,
                               const MemoryLayout &layout, size_t core_id)
    : config_(config), geometry_(geometry), layout_(layout),
      coreId_(core_id), map_(VrfMap::build(config, geometry, layout.lanes))
{
    DFX_ASSERT(config.headDim == kLineWidth,
               "DFX codegen requires headDim == %zu (got %zu); the "
               "tiling and register-file layout are head-aligned",
               kLineWidth, config.headDim);
    DFX_ASSERT(geometry.embShard(config) % kLineWidth == 0,
               "embedding shard must be line-aligned");
    const size_t vocab_shard = geometry.vocabShard(config, layout.lanes);
    const size_t offset = coreId_ * vocab_shard;
    vocabReal_ = offset >= config.vocabSize
                     ? 0
                     : std::min(vocab_shard, config.vocabSize - offset);
    DFX_ASSERT(vocabReal_ > 0, "core %zu owns no vocabulary slice",
               coreId_);
}

void
ProgramBuilder::emitLayerNorm(Program &prog, size_t src_line,
                              size_t dst_line, uint64_t gamma_addr,
                              uint64_t beta_addr, Category cat) const
{
    const uint32_t n = static_cast<uint32_t>(config_.embedding);
    const uint16_t inv_n = immBits(1.0 / static_cast<double>(n));
    const uint16_t eps = immBits(config_.lnEpsilon);
    auto v = [](size_t line) { return Operand::vrf(line); };
    auto s = [](uint64_t reg) { return Operand::srf(reg); };

    // mean = accum(x) / n
    prog.push_back({Opcode::kAccum, v(src_line), {}, {}, s(kSrfSum), n, 0,
                    0, 0, kFlagNone, cat});
    prog.push_back({Opcode::kScalarMul, s(kSrfSum), Operand::imm(inv_n),
                    {}, s(kSrfMean), 0, 0, 0, 0, kFlagNone, cat});
    // xc = x - mean
    prog.push_back({Opcode::kSubScalar, v(src_line), s(kSrfMean), {},
                    v(map_.tmp), n, 0, 0, 0, kFlagNone, cat});
    // var = accum(xc^2) / n
    prog.push_back({Opcode::kMul, v(map_.tmp), v(map_.tmp), {},
                    v(map_.tmp2), n, 0, 0, 0, kFlagNone, cat});
    prog.push_back({Opcode::kAccum, v(map_.tmp2), {}, {}, s(kSrfVar), n,
                    0, 0, 0, kFlagNone, cat});
    prog.push_back({Opcode::kScalarMul, s(kSrfVar), Operand::imm(inv_n),
                    {}, s(kSrfVar), 0, 0, 0, 0, kFlagNone, cat});
    // inv_sigma = rsqrt(var + eps)
    prog.push_back({Opcode::kScalarAdd, s(kSrfVar), Operand::imm(eps), {},
                    s(kSrfVarEps), 0, 0, 0, 0, kFlagNone, cat});
    prog.push_back({Opcode::kScalarRsqrt, s(kSrfVarEps), {}, {},
                    s(kSrfInvSigma), 0, 0, 0, 0, kFlagNone, cat});
    // y = gamma * (xc * inv_sigma) + beta
    prog.push_back({Opcode::kMulScalar, v(map_.tmp), s(kSrfInvSigma), {},
                    v(dst_line), n, 0, 0, 0, kFlagNone, cat});
    prog.push_back({Opcode::kLoad, Operand::ddr(gamma_addr), {}, {},
                    v(map_.gamma), n, 0, 0, 0, kFlagNone, cat});
    prog.push_back({Opcode::kLoad, Operand::ddr(beta_addr), {}, {},
                    v(map_.beta), n, 0, 0, 0, kFlagNone, cat});
    prog.push_back({Opcode::kMul, v(dst_line), v(map_.gamma), {},
                    v(dst_line), n, 0, 0, 0, kFlagNone, cat});
    prog.push_back({Opcode::kAdd, v(dst_line), v(map_.beta), {},
                    v(dst_line), n, 0, 0, 0, kFlagNone, cat});
}

void
ProgramBuilder::emitSoftmax(Program &prog, size_t line, size_t len,
                            uint32_t phase_idx, uint32_t layer,
                            PatchTable *rec) const
{
    const uint32_t n = static_cast<uint32_t>(len);
    auto v = [](size_t l) { return Operand::vrf(l); };
    auto s = [](uint64_t reg) { return Operand::srf(reg); };
    const Category cat = Category::kAttention;
    // The softmax runs over the `seq = pos + 1` live scores, so every
    // element count below is a per-step patch slot.
    auto note_len = [&]() {
        if (rec)
            rec->push_back({phase_idx,
                            static_cast<uint32_t>(prog.size() - 1),
                            InstrField::kLen, PatchValue::kSeqLen, 0,
                            layer});
    };

    // Numerically-stable softmax: x -= max; e = exp(x); e /= sum(e).
    prog.push_back({Opcode::kReduMax, v(line), {}, {}, s(kSrfRowMax), n, 0,
                    0, 0, kFlagNone, cat});
    note_len();
    prog.push_back({Opcode::kSubScalar, v(line), s(kSrfRowMax), {},
                    v(line), n, 0, 0, 0, kFlagNone, cat});
    note_len();
    prog.push_back({Opcode::kExp, v(line), {}, {}, v(line), n, 0, 0, 0,
                    kFlagNone, cat});
    note_len();
    prog.push_back({Opcode::kAccum, v(line), {}, {}, s(kSrfExpSum), n, 0,
                    0, 0, kFlagNone, cat});
    note_len();
    prog.push_back({Opcode::kScalarRecip, s(kSrfExpSum), {}, {},
                    s(kSrfInvSum), 0, 0, 0, 0, kFlagNone, cat});
    prog.push_back({Opcode::kMulScalar, v(line), s(kSrfInvSum), {},
                    v(line), n, 0, 0, 0, kFlagNone, cat});
    note_len();
}

Phase
ProgramBuilder::embedPhase(int32_t token, size_t pos) const
{
    return emitEmbed(token, pos, nullptr);
}

Phase
ProgramBuilder::emitEmbed(int32_t token, size_t pos, PatchTable *rec) const
{
    DFX_ASSERT(pos < config_.maxSeq, "position %zu exceeds context %zu",
               pos, config_.maxSeq);
    const uint32_t emb = static_cast<uint32_t>(config_.embedding);
    auto v = [](size_t l) { return Operand::vrf(l); };
    Phase phase;
    // WTE and WPE rows live in DDR (paper §IV-B): one row each per
    // token, fetched by the DMA into the embed buffer.
    const uint64_t wte_row =
        layout_.wte + static_cast<uint64_t>(token) * emb * 2;
    const uint64_t wpe_row =
        layout_.wpe + static_cast<uint64_t>(pos) * emb * 2;
    auto note = [&](InstrField f, PatchValue pv) {
        if (rec)
            rec->push_back(
                {0, static_cast<uint32_t>(phase.program.size() - 1), f,
                 pv, 0, 0});
    };
    phase.program.push_back({Opcode::kLoad, Operand::ddr(wte_row), {}, {},
                             v(map_.embedTok), emb, 0, 0, 0, kFlagNone,
                             Category::kEmbed});
    note(InstrField::kSrc1Addr, PatchValue::kWteRowAddr);
    phase.program.push_back({Opcode::kLoad, Operand::ddr(wpe_row), {}, {},
                             v(map_.embedPos), emb, 0, 0, 0, kFlagNone,
                             Category::kEmbed});
    note(InstrField::kSrc1Addr, PatchValue::kWpeRowAddr);
    phase.program.push_back({Opcode::kAdd, v(map_.embedTok),
                             v(map_.embedPos), {}, v(map_.x), emb, 0, 0, 0,
                             kFlagNone, Category::kEmbed});
    return phase;
}

std::vector<Phase>
ProgramBuilder::layerPhases(size_t layer, size_t pos, size_t ctx) const
{
    return emitLayer(layer, pos, ctx, nullptr);
}

std::vector<Phase>
ProgramBuilder::emitLayer(size_t layer, size_t pos, size_t ctx,
                          PatchTable *rec) const
{
    DFX_ASSERT(layer < config_.layers, "layer %zu out of %zu", layer,
               config_.layers);
    DFX_ASSERT(pos < config_.maxSeq, "position %zu exceeds context", pos);
    DFX_ASSERT(ctx < layout_.kvContexts,
               "KV context %zu out of %zu (layer %zu, core %zu)", ctx,
               layout_.kvContexts, layer, coreId_);
    if (layout_.paged()) {
        // Paged layouts address K/V through a per-context block
        // table; the token's block index must fit it (the table is
        // sized for maxSeq, so this only fires on pager/layout
        // disagreement).
        DFX_ASSERT(pos / layout_.kvBlockTokens <
                       layout_.kvBlocksPerContext(),
                   "token %zu maps to block %zu beyond the %zu-entry "
                   "block table (ctx %zu, layer %zu, core %zu)",
                   pos, pos / layout_.kvBlockTokens,
                   layout_.kvBlocksPerContext(), ctx, layer, coreId_);
    }
    const auto &a = layout_.layers[layer];
    const uint32_t emb = static_cast<uint32_t>(config_.embedding);
    const uint32_t emb_shard =
        static_cast<uint32_t>(geometry_.embShard(config_));
    const uint32_t ffn_shard =
        static_cast<uint32_t>(geometry_.ffnShard(config_));
    const uint32_t hidden = static_cast<uint32_t>(config_.ffnHidden());
    const uint32_t hd = static_cast<uint32_t>(config_.headDim);
    const uint32_t seq = static_cast<uint32_t>(pos + 1);
    const size_t local_heads = geometry_.localHeads(config_);
    const uint32_t max_seq = static_cast<uint32_t>(config_.maxSeq);
    auto v = [](size_t l) { return Operand::vrf(l); };
    auto s = [](uint64_t reg) { return Operand::srf(reg); };
    const Category attn = Category::kAttention;

    std::vector<Phase> phases;

    // ---- Phase A: LN1, QKV, per-head attention; sync attn' ---------
    Phase pa;
    // Phase A is the only phase with step-dependent operands; every
    // site below notes its slot when a recorder is attached (template
    // emission), so the skeleton stays the single source of truth.
    const uint32_t lyr = static_cast<uint32_t>(layer);
    auto note = [&](InstrField f, PatchValue pv, size_t lh) {
        if (rec)
            rec->push_back(
                {0, static_cast<uint32_t>(pa.program.size() - 1), f, pv,
                 static_cast<uint32_t>(lh), lyr});
    };
    emitLayerNorm(pa.program, map_.x, map_.ln, a.ln1Gamma, a.ln1Beta,
                  Category::kLayerNorm);
    // Value first so the transpose store is hidden behind K/Q
    // generation (paper §V-B "Transpose Scheme").
    pa.program.push_back({Opcode::kConv1d, v(map_.ln),
                          Operand::hbm(a.wv), Operand::ddr(a.bv),
                          v(map_.v), emb, emb_shard, 0, emb_shard,
                          kFlagNone, attn});
    // KV traffic is pinned: every instruction touching a head's K or
    // V^T region carries the channel set the layout assigned it, so
    // the timing model can account per-channel occupancy (the weight
    // operands above stripe across all channels, mask 0).
    for (size_t lh = 0; lh < local_heads; ++lh) {
        Instruction store{
            Opcode::kDmaStoreKv, v(map_.v + lh), {}, {},
            Operand::hbm(layout_.vtHeadBase(layer, lh, ctx)), hd, 0,
            static_cast<uint32_t>(pos), max_seq, kFlagTranspose, attn};
        store.hbmChannels = layout_.vtChannelMask(lh, ctx);
        pa.program.push_back(store);
        note(InstrField::kDstAddr, PatchValue::kVtHeadBase, lh);
        note(InstrField::kAux, PatchValue::kPos, lh);
        note(InstrField::kHbmChannels, PatchValue::kVtChannelMask, lh);
    }
    pa.program.push_back({Opcode::kConv1d, v(map_.ln),
                          Operand::hbm(a.wk), Operand::ddr(a.bk),
                          v(map_.k), emb, emb_shard, 0, emb_shard,
                          kFlagNone, attn});
    for (size_t lh = 0; lh < local_heads; ++lh) {
        Instruction store{
            Opcode::kDmaStoreKv, v(map_.k + lh), {}, {},
            Operand::hbm(layout_.keyRowAddr(layer, lh, pos, ctx)), hd,
            0, 0, 0, kFlagNone, attn};
        store.hbmChannels = layout_.keyChannelMask(lh, ctx);
        pa.program.push_back(store);
        note(InstrField::kDstAddr, PatchValue::kKeyRowAddr, lh);
        note(InstrField::kHbmChannels, PatchValue::kKeyChannelMask, lh);
    }
    pa.program.push_back({Opcode::kConv1d, v(map_.ln),
                          Operand::hbm(a.wq), Operand::ddr(a.bq),
                          v(map_.q), emb, emb_shard, 0, emb_shard,
                          kFlagNone, attn});
    const uint16_t scale =
        immBits(1.0 / std::sqrt(static_cast<double>(hd)));
    for (size_t lh = 0; lh < local_heads; ++lh) {
        // score = (q . K^T) / sqrt(dk), causal-masked.
        Instruction mm1{
            Opcode::kMaskedMm, v(map_.q + lh),
            Operand::hbm(layout_.keyHeadBase(layer, lh, ctx)),
            Operand::imm(scale), v(map_.scores), hd, seq,
            static_cast<uint32_t>(pos), hd,
            static_cast<uint16_t>(kFlagMask | kFlagScale |
                                  kFlagWeightRowIsCol),
            attn};
        mm1.hbmChannels = layout_.keyChannelMask(lh, ctx);
        pa.program.push_back(mm1);
        note(InstrField::kSrc2Addr, PatchValue::kKeyHeadBase, lh);
        note(InstrField::kCols, PatchValue::kSeqLen, lh);
        note(InstrField::kAux, PatchValue::kPos, lh);
        note(InstrField::kHbmChannels, PatchValue::kKeyChannelMask, lh);
        emitSoftmax(pa.program, map_.scores, seq, 0, lyr, rec);
        // attn'[head] = score x Value (V^T streamed row-wise).
        Instruction mm2{
            Opcode::kMm, v(map_.scores),
            Operand::hbm(layout_.vtHeadBase(layer, lh, ctx)), {},
            v(map_.attnLocal + lh), seq, hd, 0, max_seq,
            kFlagWeightRowIsCol, attn};
        mm2.hbmChannels = layout_.vtChannelMask(lh, ctx);
        pa.program.push_back(mm2);
        note(InstrField::kSrc2Addr, PatchValue::kVtHeadBase, lh);
        note(InstrField::kLen, PatchValue::kSeqLen, lh);
        note(InstrField::kHbmChannels, PatchValue::kVtChannelMask, lh);
    }
    pa.program.push_back({Opcode::kSync, v(map_.attnLocal), {}, {},
                          v(map_.attnFull), emb_shard, 0, 0, 0, kFlagNone,
                          Category::kSync});
    phases.push_back(std::move(pa));

    // ---- Phase B: attention projection; sync ------------------------
    Phase pb;
    pb.program.push_back({Opcode::kConv1d, v(map_.attnFull),
                          Operand::hbm(a.wproj), Operand::ddr(a.bproj),
                          v(map_.projLocal), emb, emb_shard, 0, emb_shard,
                          kFlagNone, attn});
    pb.program.push_back({Opcode::kSync, v(map_.projLocal), {}, {},
                          v(map_.projFull), emb_shard, 0, 0, 0, kFlagNone,
                          Category::kSync});
    phases.push_back(std::move(pb));

    // ---- Phase C: residual 1, LN2, FFN fc1 (+GELU); sync ------------
    Phase pc;
    pc.program.push_back({Opcode::kAdd, v(map_.x), v(map_.projFull), {},
                          v(map_.x), emb, 0, 0, 0, kFlagNone,
                          Category::kResidual});
    emitLayerNorm(pc.program, map_.x, map_.ln, a.ln2Gamma, a.ln2Beta,
                  Category::kLayerNorm);
    pc.program.push_back({Opcode::kConv1d, v(map_.ln),
                          Operand::hbm(a.wfc1), Operand::ddr(a.bfc1),
                          v(map_.ffn1Local), emb, ffn_shard, 0, ffn_shard,
                          kFlagGelu, Category::kFfn});
    pc.program.push_back({Opcode::kSync, v(map_.ffn1Local), {}, {},
                          v(map_.ffn1Full), ffn_shard, 0, 0, 0, kFlagNone,
                          Category::kSync});
    phases.push_back(std::move(pc));

    // ---- Phase D: FFN fc2; sync --------------------------------------
    Phase pd;
    pd.program.push_back({Opcode::kConv1d, v(map_.ffn1Full),
                          Operand::hbm(a.wfc2), Operand::ddr(a.bfc2),
                          v(map_.ffn2Local), hidden, emb_shard, 0,
                          emb_shard, kFlagNone, Category::kFfn});
    pd.program.push_back({Opcode::kSync, v(map_.ffn2Local), {}, {},
                          v(map_.ffn2Full), emb_shard, 0, 0, 0, kFlagNone,
                          Category::kSync});
    phases.push_back(std::move(pd));

    // ---- Phase E: residual 2 ------------------------------------------
    Phase pe;
    pe.program.push_back({Opcode::kAdd, v(map_.x), v(map_.ffn2Full), {},
                          v(map_.x), emb, 0, 0, 0, kFlagNone,
                          Category::kResidual});
    phases.push_back(std::move(pe));

    (void)s;
    return phases;
}

Phase
ProgramBuilder::lmHeadPhase() const
{
    const uint32_t emb = static_cast<uint32_t>(config_.embedding);
    const uint32_t vocab_shard = static_cast<uint32_t>(
        geometry_.vocabShard(config_, layout_.lanes));
    auto v = [](size_t l) { return Operand::vrf(l); };

    Phase phase;
    // Final layer norm (counted toward the LM-head category; Fig. 15's
    // breakdown covers decoder layers only).
    emitLayerNorm(phase.program, map_.x, map_.lnfOut, layout_.lnfGamma,
                  layout_.lnfBeta, Category::kLmHead);
    // logits = WTE^T x over this core's vocabulary slice (MM, §IV-C).
    phase.program.push_back({Opcode::kMm, v(map_.lnfOut),
                             Operand::hbm(layout_.lmHeadW), {},
                             v(map_.logits), emb, vocab_shard, 0,
                             vocab_shard, kFlagNone, Category::kLmHead});
    // Local argmax over the *real* columns (the padded tail is never
    // read), then an argmax all-reduce across the ring.
    phase.program.push_back({Opcode::kReduMax, v(map_.logits), {}, {},
                             Operand::srf(kSrfArgmax),
                             static_cast<uint32_t>(vocabReal_), 0, 0, 0,
                             kFlagNone, Category::kLmHead});
    phase.program.push_back({Opcode::kSync, Operand::srf(kSrfArgmax), {},
                             {}, Operand::irf(kSrfArgmax), 1, 0,
                             vocab_shard, 0, kFlagArgmax,
                             Category::kSync});
    return phase;
}

ProgramTemplate
ProgramBuilder::embedTemplate() const
{
    ProgramTemplate tpl;
    tpl.kind = ProgramKind::kEmbed;
    tpl.phases.push_back(emitEmbed(0, 0, &tpl.patches));
    return tpl;
}

ProgramTemplate
ProgramBuilder::layerTemplate(size_t layer) const
{
    ProgramTemplate tpl;
    tpl.kind = ProgramKind::kLayer;
    tpl.layer = static_cast<uint32_t>(layer);
    tpl.phases = emitLayer(layer, 0, 0, &tpl.patches);
    return tpl;
}

ProgramTemplate
ProgramBuilder::lmHeadTemplate() const
{
    ProgramTemplate tpl;
    tpl.kind = ProgramKind::kLmHead;
    tpl.phases.push_back(lmHeadPhase());
    return tpl;
}

uint64_t
ProgramBuilder::patchValue(const PatchSlot &slot,
                           const PatchInputs &in) const
{
    const uint32_t emb = static_cast<uint32_t>(config_.embedding);
    switch (slot.value) {
      case PatchValue::kWteRowAddr:
        return layout_.wte + static_cast<uint64_t>(in.token) * emb * 2;
      case PatchValue::kWpeRowAddr:
        return layout_.wpe + static_cast<uint64_t>(in.pos) * emb * 2;
      case PatchValue::kSeqLen:
        return in.pos + 1;
      case PatchValue::kPos:
        return in.pos;
      case PatchValue::kKeyRowAddr:
        return layout_.keyRowAddr(slot.layer, slot.lh, in.pos, in.ctx);
      case PatchValue::kKeyHeadBase:
        return layout_.keyHeadBase(slot.layer, slot.lh, in.ctx);
      case PatchValue::kVtHeadBase:
        return layout_.vtHeadBase(slot.layer, slot.lh, in.ctx);
      case PatchValue::kKeyChannelMask:
        return layout_.keyChannelMask(slot.lh, in.ctx);
      case PatchValue::kVtChannelMask:
        return layout_.vtChannelMask(slot.lh, in.ctx);
    }
    DFX_FATAL("bad PatchValue %u", static_cast<unsigned>(slot.value));
}

void
ProgramBuilder::applyPatches(ProgramTemplate &tpl,
                             const PatchInputs &in) const
{
    // Replicate fresh codegen's bounds checks: a cached template must
    // reject exactly the inputs layerPhases/embedPhase would.
    DFX_ASSERT(in.pos < config_.maxSeq, "position %zu exceeds context",
               in.pos);
    if (tpl.kind == ProgramKind::kLayer) {
        DFX_ASSERT(tpl.layer < config_.layers, "layer %u out of %zu",
                   tpl.layer, config_.layers);
        DFX_ASSERT(in.ctx < layout_.kvContexts,
                   "KV context %zu out of %zu (layer %u, core %zu)",
                   in.ctx, layout_.kvContexts, tpl.layer, coreId_);
        if (layout_.paged()) {
            DFX_ASSERT(in.pos / layout_.kvBlockTokens <
                           layout_.kvBlocksPerContext(),
                       "token %zu maps to block %zu beyond the "
                       "%zu-entry block table (ctx %zu, layer %u, "
                       "core %zu)",
                       in.pos, in.pos / layout_.kvBlockTokens,
                       layout_.kvBlocksPerContext(), in.ctx, tpl.layer,
                       coreId_);
        }
    }
    for (const PatchSlot &slot : tpl.patches) {
        DFX_ASSERT(slot.phase < tpl.phases.size(),
                   "patch phase %u out of %zu", slot.phase,
                   tpl.phases.size());
        Program &prog = tpl.phases[slot.phase].program;
        DFX_ASSERT(slot.index < prog.size(),
                   "patch index %u out of %zu", slot.index, prog.size());
        setField(prog[slot.index], slot.field, patchValue(slot, in));
    }
}

}  // namespace isa
}  // namespace dfx
