/**
 * @file
 * ISA metadata: engines, names, validation.
 */
#include "isa/instruction.hpp"

#include "common/logging.hpp"

namespace dfx {
namespace isa {
namespace {

struct OpInfo
{
    Opcode op;
    const char *name;
    Engine engine;
};

const OpInfo kOpTable[] = {
    {Opcode::kConv1d, "conv1d", Engine::kMpu},
    {Opcode::kMaskedMm, "masked_mm", Engine::kMpu},
    {Opcode::kMm, "mm", Engine::kMpu},
    {Opcode::kAdd, "add", Engine::kVpu},
    {Opcode::kSub, "sub", Engine::kVpu},
    {Opcode::kMul, "mul", Engine::kVpu},
    {Opcode::kAddScalar, "add_s", Engine::kVpu},
    {Opcode::kSubScalar, "sub_s", Engine::kVpu},
    {Opcode::kMulScalar, "mul_s", Engine::kVpu},
    {Opcode::kExp, "exp", Engine::kVpu},
    {Opcode::kLoad, "load", Engine::kVpu},
    {Opcode::kStore, "store", Engine::kVpu},
    {Opcode::kAccum, "accum", Engine::kVpu},
    {Opcode::kReduMax, "redu_max", Engine::kVpu},
    {Opcode::kScalarAdd, "s_add", Engine::kVpu},
    {Opcode::kScalarMul, "s_mul", Engine::kVpu},
    {Opcode::kScalarRecip, "s_recip", Engine::kVpu},
    {Opcode::kScalarRsqrt, "s_rsqrt", Engine::kVpu},
    {Opcode::kDmaStoreKv, "dma_store_kv", Engine::kDma},
    {Opcode::kSync, "sync", Engine::kRouter},
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) ==
                  static_cast<size_t>(Opcode::kNumOpcodes),
              "opcode table out of sync");

const OpInfo &
info(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    DFX_ASSERT(idx < static_cast<size_t>(Opcode::kNumOpcodes),
               "bad opcode %zu", idx);
    return kOpTable[idx];
}

}  // namespace

Engine
engineOf(Opcode op)
{
    return info(op).engine;
}

const char *
opcodeName(Opcode op)
{
    return info(op).name;
}

Opcode
opcodeFromName(const std::string &name)
{
    for (const auto &e : kOpTable) {
        if (name == e.name)
            return e.op;
    }
    DFX_FATAL("unknown opcode mnemonic '%s'", name.c_str());
}

void
setField(Instruction &inst, InstrField field, uint64_t value)
{
    switch (field) {
      case InstrField::kLen: inst.len = static_cast<uint32_t>(value); return;
      case InstrField::kCols: inst.cols = static_cast<uint32_t>(value); return;
      case InstrField::kAux: inst.aux = static_cast<uint32_t>(value); return;
      case InstrField::kSrc1Addr: inst.src1.addr = value; return;
      case InstrField::kSrc2Addr: inst.src2.addr = value; return;
      case InstrField::kSrc3Addr: inst.src3.addr = value; return;
      case InstrField::kDstAddr: inst.dst.addr = value; return;
      case InstrField::kHbmChannels:
        inst.hbmChannels = static_cast<uint32_t>(value);
        return;
    }
    DFX_FATAL("bad InstrField %u", static_cast<unsigned>(field));
}

uint64_t
getField(const Instruction &inst, InstrField field)
{
    switch (field) {
      case InstrField::kLen: return inst.len;
      case InstrField::kCols: return inst.cols;
      case InstrField::kAux: return inst.aux;
      case InstrField::kSrc1Addr: return inst.src1.addr;
      case InstrField::kSrc2Addr: return inst.src2.addr;
      case InstrField::kSrc3Addr: return inst.src3.addr;
      case InstrField::kDstAddr: return inst.dst.addr;
      case InstrField::kHbmChannels: return inst.hbmChannels;
    }
    DFX_FATAL("bad InstrField %u", static_cast<unsigned>(field));
}

const char *
spaceName(Space s)
{
    switch (s) {
      case Space::kNone: return "-";
      case Space::kVrf: return "v";
      case Space::kSrf: return "s";
      case Space::kIrf: return "i";
      case Space::kHbm: return "hbm";
      case Space::kDdr: return "ddr";
      case Space::kImm: return "imm";
    }
    return "?";
}

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::kEmbed: return "Embedding";
      case Category::kLayerNorm: return "LayerNorm";
      case Category::kAttention: return "Self-Attention";
      case Category::kFfn: return "Feed-Forward Network";
      case Category::kResidual: return "Residual";
      case Category::kSync: return "Synchronization";
      case Category::kLmHead: return "LM Head";
      case Category::kOther: return "Other";
      default: return "?";
    }
}

bool
validate(const Instruction &inst, std::string *error)
{
    auto fail = [error](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    switch (inst.op) {
      case Opcode::kConv1d:
        if (inst.src1.space != Space::kVrf)
            return fail("conv1d input must be VRF");
        if (inst.src2.space != Space::kHbm)
            return fail("conv1d weights must stream from HBM");
        if (inst.src3.space != Space::kNone &&
            inst.src3.space != Space::kDdr)
            return fail("conv1d bias must come from DDR");
        if (inst.dst.space != Space::kVrf)
            return fail("conv1d output must be VRF");
        if (inst.len == 0 || inst.cols == 0)
            return fail("conv1d needs len (rows) and cols");
        break;
      case Opcode::kMaskedMm:
      case Opcode::kMm:
        if (inst.src1.space != Space::kVrf ||
            inst.dst.space != Space::kVrf)
            return fail("matrix op input/output must be VRF");
        if (inst.src2.space != Space::kHbm)
            return fail("matrix op operand must stream from HBM");
        if (inst.len == 0 || inst.cols == 0)
            return fail("matrix op needs len and cols");
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
        if (inst.src1.space != Space::kVrf ||
            inst.src2.space != Space::kVrf ||
            inst.dst.space != Space::kVrf)
            return fail("vector op operands must be VRF");
        if (inst.len == 0)
            return fail("vector op needs len");
        break;
      case Opcode::kAddScalar:
      case Opcode::kSubScalar:
      case Opcode::kMulScalar:
        if (inst.src1.space != Space::kVrf ||
            inst.dst.space != Space::kVrf)
            return fail("vector-scalar op data must be VRF");
        if (inst.src2.space != Space::kSrf &&
            inst.src2.space != Space::kImm)
            return fail("vector-scalar op scalar must be SRF or imm");
        break;
      case Opcode::kExp:
        if (inst.src1.space != Space::kVrf ||
            inst.dst.space != Space::kVrf)
            return fail("exp operands must be VRF");
        break;
      case Opcode::kLoad:
        if (inst.src1.space != Space::kDdr &&
            inst.src1.space != Space::kHbm)
            return fail("load source must be off-chip");
        if (inst.dst.space != Space::kVrf)
            return fail("load destination must be VRF");
        break;
      case Opcode::kStore:
        if (inst.src1.space != Space::kVrf)
            return fail("store source must be VRF");
        if (inst.dst.space != Space::kDdr &&
            inst.dst.space != Space::kHbm)
            return fail("store destination must be off-chip");
        break;
      case Opcode::kAccum:
      case Opcode::kReduMax:
        if (inst.src1.space != Space::kVrf)
            return fail("reduction source must be VRF");
        if (inst.dst.space != Space::kSrf)
            return fail("reduction result goes to SRF");
        break;
      case Opcode::kScalarAdd:
      case Opcode::kScalarMul:
        if (inst.src2.space != Space::kSrf &&
            inst.src2.space != Space::kImm)
            return fail("scalar op src2 must be SRF or imm");
        [[fallthrough]];
      case Opcode::kScalarRecip:
      case Opcode::kScalarRsqrt:
        if (inst.src1.space != Space::kSrf &&
            inst.src1.space != Space::kImm)
            return fail("scalar op src1 must be SRF or imm");
        if (inst.dst.space != Space::kSrf)
            return fail("scalar op result goes to SRF");
        break;
      case Opcode::kDmaStoreKv:
        if (inst.src1.space != Space::kVrf)
            return fail("KV append source must be VRF");
        if (inst.dst.space != Space::kHbm)
            return fail("KV append destination must be HBM");
        break;
      case Opcode::kSync:
        if (inst.src1.space != Space::kVrf &&
            inst.src1.space != Space::kSrf)
            return fail("sync source must be a register file");
        break;
      default:
        return fail("unknown opcode");
    }
    return true;
}

}  // namespace isa
}  // namespace dfx
