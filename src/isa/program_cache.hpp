/**
 * @file
 * Keyed cache of compiled program templates (compile once, patch per
 * token).
 *
 * Every decode step used to re-run codegen from scratch even though
 * consecutive steps differ only in KV position/context operands. DFX's
 * controller argues the opposite design — a fixed instruction program
 * parameterized by configuration registers — so the cluster now
 * compiles each (config, phase kind, layer, core) program once into a
 * `ProgramTemplate` and re-parameterizes it per step through its patch
 * table.
 *
 * The key carries:
 *  - `configHash`: `MemoryLayout::addressingHash()` — any model,
 *    geometry, provisioning or base-address change misses (and
 *    `beginGeneration` drops the stale generation wholesale);
 *  - `kind` + `layer`: which program (layer weight addresses are
 *    structural, so each layer is its own template);
 *  - `positionClass`: the equivalence class of positions sharing one
 *    skeleton. Today every position patches the same skeleton, so this
 *    is always 0 — it exists so a future codegen whose instruction
 *    *structure* depends on position (e.g. per-block attention loops)
 *    can split classes without changing the key or callers;
 *  - `core`: cores share instruction structure but not the LM-head
 *    tail length, and a per-core entry keeps templates patchable
 *    without cross-core races.
 *
 * Entries optionally carry the encoded byte stream per phase so the
 * binary-encoding round-trip path can patch bytes in place
 * (`patchEncodedField`) instead of re-encoding the whole program.
 *
 * The cache is not thread-safe; it is owned by the cluster and only
 * touched from the (serialized) stepping thread.
 */
#ifndef DFX_ISA_PROGRAM_CACHE_HPP
#define DFX_ISA_PROGRAM_CACHE_HPP

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "isa/codegen.hpp"

namespace dfx {
namespace isa {

/** Identity of one cached template. */
struct ProgramCacheKey
{
    uint64_t configHash = 0;
    ProgramKind kind = ProgramKind::kLayer;
    uint32_t layer = 0;
    uint32_t positionClass = 0;
    uint32_t core = 0;

    bool operator==(const ProgramCacheKey &) const = default;
};

/** A cached template plus its lazily-encoded phase byte streams. */
struct CachedProgram
{
    ProgramTemplate tpl;
    /**
     * Per-phase encoded bytes (`encodeProgram`), built on first use by
     * the binary round-trip path and patched in place afterwards.
     * Empty until that path touches the entry.
     */
    std::vector<std::vector<uint8_t>> encoded;
};

/**
 * LRU cache of compiled program templates.
 *
 * `capacity` 0 means unbounded — the cluster's working set is
 * O(layers x cores) and references returned by `fetch` must stay
 * valid for the duration of a step, so the cluster uses an unbounded
 * cache and relies on `beginGeneration` for invalidation. A bounded
 * capacity (tests, future multi-model hosts) evicts least recently
 * fetched entries; eviction invalidates references to the evicted
 * entry only.
 */
class ProgramCache
{
  public:
    explicit ProgramCache(size_t capacity = 0) : capacity_(capacity) {}

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        uint64_t invalidations = 0;  ///< entries dropped by generation/clear
    };

    /**
     * Returns the entry for `key`, building it via `build` on a miss.
     * The reference is valid until the entry is evicted or the cache
     * is cleared.
     */
    CachedProgram &fetch(const ProgramCacheKey &key,
                         const std::function<CachedProgram()> &build);

    /**
     * Declares the config generation the next fetches belong to: if
     * `configHash` differs from the previous generation's, every entry
     * is dropped (counted as invalidations). Idempotent for an
     * unchanged hash.
     */
    void beginGeneration(uint64_t configHash);

    /** Drops every entry (counted as invalidations). */
    void clear();

    size_t size() const { return map_.size(); }
    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = Stats{}; }

  private:
    struct KeyHash
    {
        size_t operator()(const ProgramCacheKey &k) const;
    };
    struct Entry
    {
        ProgramCacheKey key;
        CachedProgram program;
    };

    size_t capacity_;
    uint64_t generationHash_ = 0;
    bool haveGeneration_ = false;
    std::list<Entry> lru_;  ///< front = most recently used
    std::unordered_map<ProgramCacheKey, std::list<Entry>::iterator,
                       KeyHash>
        map_;
    Stats stats_;
};

}  // namespace isa
}  // namespace dfx

#endif  // DFX_ISA_PROGRAM_CACHE_HPP
