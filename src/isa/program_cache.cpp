/**
 * @file
 * LRU program-template cache implementation.
 */
#include "isa/program_cache.hpp"

#include "common/logging.hpp"

namespace dfx {
namespace isa {

size_t
ProgramCache::KeyHash::operator()(const ProgramCacheKey &k) const
{
    // FNV-1a over the key fields (the config hash already diffuses
    // well; the rest are small integers).
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(k.configHash);
    mix(static_cast<uint64_t>(k.kind));
    mix(k.layer);
    mix(k.positionClass);
    mix(k.core);
    return static_cast<size_t>(h);
}

CachedProgram &
ProgramCache::fetch(const ProgramCacheKey &key,
                    const std::function<CachedProgram()> &build)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->program;
    }
    ++stats_.misses;
    if (capacity_ > 0 && map_.size() >= capacity_) {
        // Evict the least recently fetched entry.
        DFX_ASSERT(!lru_.empty(), "cache map/list out of sync");
        map_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
    }
    lru_.push_front(Entry{key, build()});
    map_[key] = lru_.begin();
    return lru_.front().program;
}

void
ProgramCache::beginGeneration(uint64_t configHash)
{
    if (haveGeneration_ && generationHash_ == configHash)
        return;
    if (haveGeneration_)
        clear();
    haveGeneration_ = true;
    generationHash_ = configHash;
}

void
ProgramCache::clear()
{
    stats_.invalidations += map_.size();
    map_.clear();
    lru_.clear();
}

}  // namespace isa
}  // namespace dfx
