/**
 * @file
 * Program generation for GPT-2 inference on DFX (paper Algorithm 1).
 *
 * The builder turns one decoder-layer step into instruction phases.
 * A *phase* is a straight-line program that optionally ends in a
 * `sync` — the cluster barriers there and performs the ring
 * all-gather. Per Algorithm 1 there are four syncs per decoder layer:
 * after the per-head attention outputs, after the attention
 * projection, and after each FFN matrix.
 *
 * The codegen also encodes two dataflow details from §V-B:
 *  - Value is computed (and its transpose store issued) *before* Key
 *    and Query, so the transpose-on-store latency is hidden;
 *  - LayerNorm and Residual are not parallelized: every core computes
 *    the full vectors redundantly (their sync cost would exceed the
 *    compute, §VII-B "Scalability").
 *
 * Programs are per-core: instruction *structure* is identical across
 * cores (homogeneous cluster); only shard-resident data and the
 * LM-head tail length differ, driven by the core id — exactly the
 * role the paper gives the controller's system configuration.
 */
#ifndef DFX_ISA_CODEGEN_HPP
#define DFX_ISA_CODEGEN_HPP

#include <vector>

#include "isa/instruction.hpp"
#include "memory/layout.hpp"

namespace dfx {
namespace isa {

/** VRF line map for the decoder dataflow (one allocation per role). */
struct VrfMap
{
    size_t x;          ///< residual stream (emb)
    size_t ln;         ///< layer-norm output (emb)
    size_t tmp;        ///< centered input scratch (emb)
    size_t tmp2;       ///< squared scratch (emb)
    size_t gamma;      ///< LN gamma staging (emb)
    size_t beta;       ///< LN beta staging (emb)
    size_t q, k, v;    ///< local Q/K/V shards (embShard each)
    size_t scores;     ///< per-head attention scores (maxSeq)
    size_t attnLocal;  ///< concatenated local head outputs (embShard)
    size_t attnFull;   ///< synchronized attention vector (emb)
    size_t projLocal;  ///< local projection output (embShard)
    size_t projFull;   ///< synchronized projection (emb)
    size_t ffn1Local;  ///< local FFN hidden shard (ffnShard)
    size_t ffn1Full;   ///< synchronized FFN hidden (4*emb)
    size_t ffn2Local;  ///< local FFN output shard (embShard)
    size_t ffn2Full;   ///< synchronized FFN output (emb)
    size_t embedTok;   ///< WTE row staging (emb)
    size_t embedPos;   ///< WPE row staging (emb)
    size_t lnfOut;     ///< final LN output (emb)
    size_t logits;     ///< LM-head logits (vocabShard)
    size_t linesUsed;  ///< high-water mark

    static VrfMap build(const GptConfig &config,
                        const ClusterGeometry &geometry, size_t lanes);
};

/** Scalar register assignments. */
enum SrfReg : uint64_t
{
    kSrfSum = 0,
    kSrfMean = 1,
    kSrfVar = 2,
    kSrfVarEps = 3,
    kSrfInvSigma = 4,
    kSrfRowMax = 5,
    kSrfExpSum = 6,
    kSrfInvSum = 7,
    kSrfArgmax = 8,
};

/** One program, optionally ending with a sync instruction. */
struct Phase
{
    Program program;
    bool hasSync() const;
    /** The trailing sync instruction (call only when hasSync()). */
    const Instruction &sync() const;
};

/**
 * What kind of per-token program a template describes. Layer
 * templates are additionally parameterized by the layer index (layer
 * weight addresses are structural — baked into the skeleton — so each
 * layer gets its own template).
 */
enum class ProgramKind : uint8_t { kEmbed = 0, kLayer, kLmHead };

/**
 * The symbolic source of a patched operand — the per-step value a
 * patch slot is recomputed from. Everything else in an instruction is
 * structural: fixed by (model config, layer, core) and identical
 * across steps.
 */
enum class PatchValue : uint8_t
{
    kWteRowAddr = 0,  ///< layout.wte + token * emb * 2
    kWpeRowAddr,      ///< layout.wpe + pos * emb * 2
    kSeqLen,          ///< pos + 1 (score/softmax/MM stream length)
    kPos,             ///< pos (KV append row, causal-mask bound)
    kKeyRowAddr,      ///< layout.keyRowAddr(layer, lh, pos, ctx)
    kKeyHeadBase,     ///< layout.keyHeadBase(layer, lh, ctx)
    kVtHeadBase,      ///< layout.vtHeadBase(layer, lh, ctx)
    kKeyChannelMask,  ///< layout.keyChannelMask(lh, ctx)
    kVtChannelMask,   ///< layout.vtChannelMask(lh, ctx)
};

/** One operand slot that varies per step: which instruction field of
 *  which instruction, and the symbolic value to recompute it from. */
struct PatchSlot
{
    uint32_t phase;     ///< index into ProgramTemplate::phases
    uint32_t index;     ///< instruction index within that phase
    InstrField field;   ///< which field to overwrite
    PatchValue value;   ///< what to overwrite it with
    uint32_t lh;        ///< local head (per-head KV addresses/channels)
    uint32_t layer;     ///< decoder layer (0 for embed/LM-head slots)
};

using PatchTable = std::vector<PatchSlot>;

/**
 * An immutable instruction skeleton plus the table of slots that vary
 * per step. Emitted once per (config, kind, layer, core) and reused
 * across tokens: applying the patch table for a step's inputs makes
 * the phases bit-identical to fresh codegen for those inputs.
 */
struct ProgramTemplate
{
    ProgramKind kind = ProgramKind::kLayer;
    uint32_t layer = 0;
    std::vector<Phase> phases;
    PatchTable patches;
};

/** The per-step values a patch table is evaluated against. */
struct PatchInputs
{
    int32_t token = 0;  ///< embed only
    size_t pos = 0;
    size_t ctx = 0;
};

/** Builds the per-token instruction phases for one core. */
class ProgramBuilder
{
  public:
    ProgramBuilder(const GptConfig &config,
                   const ClusterGeometry &geometry,
                   const MemoryLayout &layout, size_t core_id);

    /** Token embedding: WTE[token] + WPE[pos] -> x. */
    Phase embedPhase(int32_t token, size_t pos) const;

    /**
     * The phases of decoder layer `layer` for the token at position
     * `pos` (0-based; the KV cache holds `pos` prior tokens). `ctx`
     * selects which resident KV cache region the K/V stores and the
     * attention streams address, so interleaved requests never touch
     * each other's context.
     */
    std::vector<Phase> layerPhases(size_t layer, size_t pos,
                                   size_t ctx = 0) const;

    /** Final LN + LM-head logits + argmax; ends in an argmax sync. */
    Phase lmHeadPhase() const;

    /**
     * Compile-once entry points: the same emission path as the
     * per-token methods above, run at reference inputs (token 0,
     * pos 0, ctx 0) with a recorder attached, so the returned skeleton
     * plus patch table reproduces any step's phases bit-for-bit.
     */
    ProgramTemplate embedTemplate() const;
    ProgramTemplate layerTemplate(size_t layer) const;
    ProgramTemplate lmHeadTemplate() const;  ///< static; empty table

    /** The concrete value of one patch slot for a step's inputs. */
    uint64_t patchValue(const PatchSlot &slot,
                        const PatchInputs &in) const;

    /**
     * Rewrites `tpl`'s patched operand slots in place for a step's
     * inputs. Every slot is fully determined by `in`, so repeated
     * patching of a shared (cached) template is safe. Performs the
     * same position/context/paged-block bounds checks as fresh
     * codegen.
     */
    void applyPatches(ProgramTemplate &tpl, const PatchInputs &in) const;

    const VrfMap &map() const { return map_; }
    /** Real (unpadded) vocabulary columns this core's LM head owns. */
    size_t vocabRealCols() const { return vocabReal_; }

  private:
    Phase emitEmbed(int32_t token, size_t pos, PatchTable *rec) const;
    std::vector<Phase> emitLayer(size_t layer, size_t pos, size_t ctx,
                                 PatchTable *rec) const;
    void emitLayerNorm(Program &prog, size_t src_line, size_t dst_line,
                       uint64_t gamma_addr, uint64_t beta_addr,
                       Category cat) const;
    void emitSoftmax(Program &prog, size_t line, size_t len,
                     uint32_t phase_idx, uint32_t layer,
                     PatchTable *rec) const;

    const GptConfig &config_;
    ClusterGeometry geometry_;
    const MemoryLayout &layout_;
    size_t coreId_;
    VrfMap map_;
    size_t vocabReal_;
};

}  // namespace isa
}  // namespace dfx

#endif  // DFX_ISA_CODEGEN_HPP
