/**
 * @file
 * Program generation for GPT-2 inference on DFX (paper Algorithm 1).
 *
 * The builder turns one decoder-layer step into instruction phases.
 * A *phase* is a straight-line program that optionally ends in a
 * `sync` — the cluster barriers there and performs the ring
 * all-gather. Per Algorithm 1 there are four syncs per decoder layer:
 * after the per-head attention outputs, after the attention
 * projection, and after each FFN matrix.
 *
 * The codegen also encodes two dataflow details from §V-B:
 *  - Value is computed (and its transpose store issued) *before* Key
 *    and Query, so the transpose-on-store latency is hidden;
 *  - LayerNorm and Residual are not parallelized: every core computes
 *    the full vectors redundantly (their sync cost would exceed the
 *    compute, §VII-B "Scalability").
 *
 * Programs are per-core: instruction *structure* is identical across
 * cores (homogeneous cluster); only shard-resident data and the
 * LM-head tail length differ, driven by the core id — exactly the
 * role the paper gives the controller's system configuration.
 */
#ifndef DFX_ISA_CODEGEN_HPP
#define DFX_ISA_CODEGEN_HPP

#include <vector>

#include "isa/instruction.hpp"
#include "memory/layout.hpp"

namespace dfx {
namespace isa {

/** VRF line map for the decoder dataflow (one allocation per role). */
struct VrfMap
{
    size_t x;          ///< residual stream (emb)
    size_t ln;         ///< layer-norm output (emb)
    size_t tmp;        ///< centered input scratch (emb)
    size_t tmp2;       ///< squared scratch (emb)
    size_t gamma;      ///< LN gamma staging (emb)
    size_t beta;       ///< LN beta staging (emb)
    size_t q, k, v;    ///< local Q/K/V shards (embShard each)
    size_t scores;     ///< per-head attention scores (maxSeq)
    size_t attnLocal;  ///< concatenated local head outputs (embShard)
    size_t attnFull;   ///< synchronized attention vector (emb)
    size_t projLocal;  ///< local projection output (embShard)
    size_t projFull;   ///< synchronized projection (emb)
    size_t ffn1Local;  ///< local FFN hidden shard (ffnShard)
    size_t ffn1Full;   ///< synchronized FFN hidden (4*emb)
    size_t ffn2Local;  ///< local FFN output shard (embShard)
    size_t ffn2Full;   ///< synchronized FFN output (emb)
    size_t embedTok;   ///< WTE row staging (emb)
    size_t embedPos;   ///< WPE row staging (emb)
    size_t lnfOut;     ///< final LN output (emb)
    size_t logits;     ///< LM-head logits (vocabShard)
    size_t linesUsed;  ///< high-water mark

    static VrfMap build(const GptConfig &config,
                        const ClusterGeometry &geometry, size_t lanes);
};

/** Scalar register assignments. */
enum SrfReg : uint64_t
{
    kSrfSum = 0,
    kSrfMean = 1,
    kSrfVar = 2,
    kSrfVarEps = 3,
    kSrfInvSigma = 4,
    kSrfRowMax = 5,
    kSrfExpSum = 6,
    kSrfInvSum = 7,
    kSrfArgmax = 8,
};

/** One program, optionally ending with a sync instruction. */
struct Phase
{
    Program program;
    bool hasSync() const;
    /** The trailing sync instruction (call only when hasSync()). */
    const Instruction &sync() const;
};

/** Builds the per-token instruction phases for one core. */
class ProgramBuilder
{
  public:
    ProgramBuilder(const GptConfig &config,
                   const ClusterGeometry &geometry,
                   const MemoryLayout &layout, size_t core_id);

    /** Token embedding: WTE[token] + WPE[pos] -> x. */
    Phase embedPhase(int32_t token, size_t pos) const;

    /**
     * The phases of decoder layer `layer` for the token at position
     * `pos` (0-based; the KV cache holds `pos` prior tokens). `ctx`
     * selects which resident KV cache region the K/V stores and the
     * attention streams address, so interleaved requests never touch
     * each other's context.
     */
    std::vector<Phase> layerPhases(size_t layer, size_t pos,
                                   size_t ctx = 0) const;

    /** Final LN + LM-head logits + argmax; ends in an argmax sync. */
    Phase lmHeadPhase() const;

    const VrfMap &map() const { return map_; }
    /** Real (unpadded) vocabulary columns this core's LM head owns. */
    size_t vocabRealCols() const { return vocabReal_; }

  private:
    void emitLayerNorm(Program &prog, size_t src_line, size_t dst_line,
                       uint64_t gamma_addr, uint64_t beta_addr,
                       Category cat) const;
    void emitSoftmax(Program &prog, size_t line, size_t len) const;

    const GptConfig &config_;
    ClusterGeometry geometry_;
    const MemoryLayout &layout_;
    size_t coreId_;
    VrfMap map_;
    size_t vocabReal_;
};

}  // namespace isa
}  // namespace dfx

#endif  // DFX_ISA_CODEGEN_HPP
