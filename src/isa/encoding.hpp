/**
 * @file
 * Binary encoding of DFX instructions.
 *
 * Instructions are stored in the instruction buffer as fixed 56-byte
 * words (the paper's host transfers instruction streams over PCIe;
 * a fixed-width little-endian encoding keeps that transfer and the
 * on-chip buffer simple).
 *
 * Layout (little-endian):
 *   byte  0      opcode
 *   byte  1      category
 *   bytes 2-3    flags
 *   byte  4      src1.space | src2.space << 4
 *   byte  5      src3.space | dst.space << 4
 *   bytes 6-7    reserved (zero)
 *   bytes 8-11   len
 *   bytes 12-15  cols
 *   bytes 16-19  aux
 *   bytes 20-23  pitch
 *   bytes 24-31  src1.addr
 *   bytes 32-39  src2.addr
 *   bytes 40-43  src3.addr (low 32 bits; biases/imms fit)
 *   bytes 44-47  dst.addr (low 32 bits)
 *   bytes 48-51  hbmChannels (pseudo-channel set of the HBM operand)
 *   bytes 52-55  dst.addr (high 32 bits)
 *
 * Note: src3 addresses are stored as a 32-bit field; register file
 * indices and DDR bias offsets fit comfortably, and encoding refuses
 * out-of-range values. dst grew to a full 64-bit address (split
 * across the formerly reserved tail bytes, so every pre-existing
 * encoding is byte-identical): paged-KV virtual windows place DMA
 * store destinations above 4 GB.
 */
#ifndef DFX_ISA_ENCODING_HPP
#define DFX_ISA_ENCODING_HPP

#include <array>
#include <cstdint>

#include "isa/instruction.hpp"

namespace dfx {
namespace isa {

constexpr size_t kEncodedSize = 56;
using EncodedInstruction = std::array<uint8_t, kEncodedSize>;

/** Encodes one instruction; fatal if a field is out of range. */
EncodedInstruction encode(const Instruction &inst);

/** Decodes one instruction; fatal on malformed input. */
Instruction decode(const EncodedInstruction &bytes);

/** Encodes a whole program into a byte stream. */
std::vector<uint8_t> encodeProgram(const Program &prog);

/** Decodes a byte stream back into a program. */
Program decodeProgram(const std::vector<uint8_t> &bytes);

/**
 * Patches one instruction field inside an already-encoded program byte
 * stream, in place, without re-encoding the word. `index` selects the
 * instruction (56-byte word); the bytes written are exactly the bytes
 * `encode()` would have produced for the new value, so a patched
 * stream stays bit-identical to fresh encoding. Fatal if the index is
 * out of range or a value exceeds its field's encoded width (src3 is
 * stored as 32 bits).
 */
void patchEncodedField(std::vector<uint8_t> &bytes, size_t index,
                       InstrField field, uint64_t value);

}  // namespace isa
}  // namespace dfx

#endif  // DFX_ISA_ENCODING_HPP
