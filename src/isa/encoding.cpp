/**
 * @file
 * Binary instruction encoding implementation.
 */
#include "isa/encoding.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace dfx {
namespace isa {
namespace {

void
put32(EncodedInstruction &b, size_t off, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b[off + i] = static_cast<uint8_t>(v >> (8 * i));
}

void
put64(EncodedInstruction &b, size_t off, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b[off + i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
get32(const EncodedInstruction &b, size_t off)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(b[off + i]) << (8 * i);
    return v;
}

uint64_t
get64(const EncodedInstruction &b, size_t off)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(b[off + i]) << (8 * i);
    return v;
}

Space
spaceFromBits(uint8_t bits)
{
    DFX_ASSERT(bits <= static_cast<uint8_t>(Space::kImm),
               "bad space encoding %u", bits);
    return static_cast<Space>(bits);
}

}  // namespace

EncodedInstruction
encode(const Instruction &inst)
{
    DFX_ASSERT(inst.src3.addr <= UINT32_MAX,
               "src3 addr 0x%llx exceeds 32-bit encoding",
               static_cast<unsigned long long>(inst.src3.addr));
    EncodedInstruction b{};
    b[0] = static_cast<uint8_t>(inst.op);
    b[1] = static_cast<uint8_t>(inst.category);
    b[2] = static_cast<uint8_t>(inst.flags & 0xff);
    b[3] = static_cast<uint8_t>(inst.flags >> 8);
    b[4] = static_cast<uint8_t>(static_cast<uint8_t>(inst.src1.space) |
                                (static_cast<uint8_t>(inst.src2.space)
                                 << 4));
    b[5] = static_cast<uint8_t>(static_cast<uint8_t>(inst.src3.space) |
                                (static_cast<uint8_t>(inst.dst.space)
                                 << 4));
    put32(b, 8, inst.len);
    put32(b, 12, inst.cols);
    put32(b, 16, inst.aux);
    put32(b, 20, inst.pitch);
    put64(b, 24, inst.src1.addr);
    put64(b, 32, inst.src2.addr);
    put32(b, 40, static_cast<uint32_t>(inst.src3.addr));
    put32(b, 44, static_cast<uint32_t>(inst.dst.addr));
    put32(b, 48, inst.hbmChannels);
    put32(b, 52, static_cast<uint32_t>(inst.dst.addr >> 32));
    return b;
}

Instruction
decode(const EncodedInstruction &b)
{
    DFX_ASSERT(b[0] < static_cast<uint8_t>(Opcode::kNumOpcodes),
               "bad opcode byte %u", b[0]);
    DFX_ASSERT(b[1] < static_cast<uint8_t>(Category::kNumCategories),
               "bad category byte %u", b[1]);
    Instruction inst;
    inst.op = static_cast<Opcode>(b[0]);
    inst.category = static_cast<Category>(b[1]);
    inst.flags = static_cast<uint16_t>(b[2] | (b[3] << 8));
    inst.src1.space = spaceFromBits(b[4] & 0xf);
    inst.src2.space = spaceFromBits(b[4] >> 4);
    inst.src3.space = spaceFromBits(b[5] & 0xf);
    inst.dst.space = spaceFromBits(b[5] >> 4);
    inst.len = get32(b, 8);
    inst.cols = get32(b, 12);
    inst.aux = get32(b, 16);
    inst.pitch = get32(b, 20);
    inst.src1.addr = get64(b, 24);
    inst.src2.addr = get64(b, 32);
    inst.src3.addr = get32(b, 40);
    inst.dst.addr = get32(b, 44) |
                    (static_cast<uint64_t>(get32(b, 52)) << 32);
    inst.hbmChannels = get32(b, 48);
    return inst;
}

std::vector<uint8_t>
encodeProgram(const Program &prog)
{
    std::vector<uint8_t> out;
    out.reserve(prog.size() * kEncodedSize);
    for (const auto &inst : prog) {
        EncodedInstruction e = encode(inst);
        out.insert(out.end(), e.begin(), e.end());
    }
    return out;
}

Program
decodeProgram(const std::vector<uint8_t> &bytes)
{
    DFX_ASSERT(bytes.size() % kEncodedSize == 0,
               "program byte stream size %zu not a multiple of %zu",
               bytes.size(), kEncodedSize);
    Program prog;
    prog.reserve(bytes.size() / kEncodedSize);
    for (size_t off = 0; off < bytes.size(); off += kEncodedSize) {
        EncodedInstruction e;
        std::memcpy(e.data(), bytes.data() + off, kEncodedSize);
        prog.push_back(decode(e));
    }
    return prog;
}

void
patchEncodedField(std::vector<uint8_t> &bytes, size_t index,
                  InstrField field, uint64_t value)
{
    DFX_ASSERT(bytes.size() % kEncodedSize == 0,
               "program byte stream size %zu not a multiple of %zu",
               bytes.size(), kEncodedSize);
    DFX_ASSERT((index + 1) * kEncodedSize <= bytes.size(),
               "patch index %zu out of range (%zu instructions)", index,
               bytes.size() / kEncodedSize);
    uint8_t *w = bytes.data() + index * kEncodedSize;
    auto put32At = [w](size_t off, uint32_t v) {
        for (int i = 0; i < 4; ++i)
            w[off + i] = static_cast<uint8_t>(v >> (8 * i));
    };
    auto put64At = [w](size_t off, uint64_t v) {
        for (int i = 0; i < 8; ++i)
            w[off + i] = static_cast<uint8_t>(v >> (8 * i));
    };
    auto narrow32 = [&](const char *name) {
        DFX_ASSERT(value <= UINT32_MAX,
                   "%s value 0x%llx exceeds 32-bit encoding", name,
                   static_cast<unsigned long long>(value));
        return static_cast<uint32_t>(value);
    };
    switch (field) {
      case InstrField::kLen: put32At(8, narrow32("len")); return;
      case InstrField::kCols: put32At(12, narrow32("cols")); return;
      case InstrField::kAux: put32At(16, narrow32("aux")); return;
      case InstrField::kSrc1Addr: put64At(24, value); return;
      case InstrField::kSrc2Addr: put64At(32, value); return;
      case InstrField::kSrc3Addr: put32At(40, narrow32("src3 addr")); return;
      case InstrField::kDstAddr:
        put32At(44, static_cast<uint32_t>(value));
        put32At(52, static_cast<uint32_t>(value >> 32));
        return;
      case InstrField::kHbmChannels:
        put32At(48, narrow32("hbmChannels"));
        return;
    }
    DFX_FATAL("bad InstrField %u", static_cast<unsigned>(field));
}

}  // namespace isa
}  // namespace dfx
