/**
 * @file
 * The DFX instruction set architecture (paper §IV-C).
 *
 * Three instruction classes:
 *  - compute: matrix instructions (Conv1D, MaskedMM, MM) that run on
 *    the matrix processing unit, and vector/scalar instructions (add,
 *    sub, mul, accum, recip, recip_sqrt, exp, load, store, ...) that
 *    run on the vector processing unit and its special function unit;
 *  - dma: moves between off-chip memory (HBM/DDR) and on-chip buffers
 *    or register files, including the Key/Value append with the
 *    transpose unit;
 *  - router: data synchronization across the FPGA ring.
 *
 * Matrix instructions are coarse-grained: the operand collectors
 * expand them into per-tile microcodes at runtime ("the runtime
 * generation of microcodes decreases the amount of instruction
 * transfer from the host", §V-D). Vector instructions carry an element
 * count and are expanded into 64-wide lanes.
 */
#ifndef DFX_ISA_INSTRUCTION_HPP
#define DFX_ISA_INSTRUCTION_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace dfx {
namespace isa {

/** Opcodes of the DFX ISA. */
enum class Opcode : uint8_t
{
    // --- matrix instructions (MPU) ----------------------------------
    kConv1d = 0,   ///< dst = W^T x + b, optional fused GELU (SFU_M)
    kMaskedMm,     ///< score = (K q) * scale with causal masking
    kMm,           ///< out = V^T s (Score x Value, and LM-head logits)

    // --- vector instructions (VPU) ----------------------------------
    kAdd,          ///< dst = src1 + src2 (elementwise)
    kSub,          ///< dst = src1 - src2
    kMul,          ///< dst = src1 * src2
    kAddScalar,    ///< dst = src1 + scalar
    kSubScalar,    ///< dst = src1 - scalar
    kMulScalar,    ///< dst = src1 * scalar
    kExp,          ///< dst = exp(src1)
    kLoad,         ///< DDR/HBM -> VRF (bypass path, no compute)
    kStore,        ///< VRF -> DDR/HBM

    // --- reductions and scalar ops (SFU_M / SFU_V) -------------------
    kAccum,        ///< SRF dst = adder-tree sum over src1
    kReduMax,      ///< SRF dst = max over src1; IRF dst = argmax index
    kScalarAdd,    ///< SRF dst = s1 + s2
    kScalarMul,    ///< SRF dst = s1 * s2
    kScalarRecip,  ///< SRF dst = 1 / s1
    kScalarRsqrt,  ///< SRF dst = 1 / sqrt(s1)

    // --- dma instructions --------------------------------------------
    kDmaStoreKv,   ///< append a K row / V^T column to the HBM KV region

    // --- router instructions ------------------------------------------
    kSync,         ///< ring all-gather of a register-file segment

    kNumOpcodes
};

/** Which execution engine an opcode occupies. */
enum class Engine : uint8_t { kMpu, kVpu, kDma, kRouter };

/** Perf attribution categories (paper Fig. 15 breakdown). */
enum class Category : uint8_t
{
    kEmbed = 0,
    kLayerNorm,
    kAttention,
    kFfn,
    kResidual,
    kSync,
    kLmHead,
    kOther,
    kNumCategories
};

/** Address spaces an operand can live in. */
enum class Space : uint8_t
{
    kNone = 0,
    kVrf,   ///< vector register file, addr = 64-wide line index
    kSrf,   ///< scalar register file, addr = register index
    kIrf,   ///< integer (index) register file, addr = register index
    kHbm,   ///< high-bandwidth memory, addr = byte address
    kDdr,   ///< DDR4, addr = byte address
    kImm,   ///< immediate, addr = raw FP16 bits
};

/** One instruction operand. */
struct Operand
{
    Space space = Space::kNone;
    uint64_t addr = 0;

    static Operand none() { return {}; }
    static Operand vrf(uint64_t line) { return {Space::kVrf, line}; }
    static Operand srf(uint64_t reg) { return {Space::kSrf, reg}; }
    static Operand irf(uint64_t reg) { return {Space::kIrf, reg}; }
    static Operand hbm(uint64_t byte_addr) { return {Space::kHbm, byte_addr}; }
    static Operand ddr(uint64_t byte_addr) { return {Space::kDdr, byte_addr}; }
    /** FP16 immediate (raw bits). */
    static Operand imm(uint16_t bits) { return {Space::kImm, bits}; }

    bool operator==(const Operand &) const = default;
};

/** Instruction flag bits. */
enum Flags : uint16_t
{
    kFlagNone = 0,
    kFlagGelu = 1 << 0,       ///< Conv1D: fused GELU through the SFU_M LUT
    kFlagMask = 1 << 1,       ///< MaskedMM: causal mask above `aux`
    kFlagScale = 1 << 2,      ///< MaskedMM: multiply by imm (1/sqrt(dk))
    kFlagTranspose = 1 << 3,  ///< DmaStoreKv: write through transpose unit
    kFlagArgmax = 1 << 4,     ///< Sync: all-reduce (value, index) argmax
    kFlagWeightRowIsCol = 1 << 5,  ///< MM: operand stored pre-transposed
};

/**
 * One DFX instruction.
 *
 * Field usage by class:
 *  - matrix: src1 = input vector (VRF), src2 = weight base (HBM),
 *    src3 = bias base (DDR) or scale immediate, dst = output (VRF);
 *    `len` = input rows, `cols` = output columns.
 *  - vector: src1/src2 = inputs (VRF/SRF/imm), dst = output;
 *    `len` = element count.
 *  - dma / router: src/dst + transfer size in elements (`len`);
 *    `aux` = row index (KV append) or payload elements per core (sync).
 */
struct Instruction
{
    Opcode op = Opcode::kConv1d;
    Operand src1, src2, src3, dst;
    uint32_t len = 0;
    uint32_t cols = 0;
    uint32_t aux = 0;
    /**
     * Row pitch (elements) of the streamed matrix operand; 0 means
     * "dense" (pitch == cols). With kFlagWeightRowIsCol the operand is
     * stored transposed and pitch is the stored row length — this is
     * how MaskedMM walks K rows and MM walks V^T rows.
     */
    uint32_t pitch = 0;
    uint16_t flags = kFlagNone;
    Category category = Category::kOther;
    /**
     * HBM pseudo-channel set of the streamed HBM operand (bit c =
     * channel c). 0 means "address-interleaved across all channels" —
     * bulk weights — and, for kFlagWeightRowIsCol operands without an
     * explicit set, falls back to the core's default
     * `kvStreamChannels`-wide set: per-instruction timing matches the
     * historic static derating bit-for-bit (batched rounds treat the
     * unplaced operands as sharing that default set). Codegen pins
     * each head's K and V^T operands (and their DMA appends) to the
     * channel set `MemoryLayout` assigned the region.
     */
    uint32_t hbmChannels = 0;

    bool operator==(const Instruction &) const = default;
};

/**
 * Mutable scalar fields of an instruction, named so a patch slot can
 * address one without knowing the opcode. These are exactly the
 * fields program templates patch per use (operand addresses, stream
 * lengths, the KV row index, the channel set) — opcode, spaces,
 * flags and category are structural and never patched.
 */
enum class InstrField : uint8_t
{
    kLen = 0,
    kCols,
    kAux,
    kSrc1Addr,
    kSrc2Addr,
    kSrc3Addr,
    kDstAddr,
    kHbmChannels,
};

/** Writes `value` into `field` of `inst` (widths are narrowed to the
 *  field's storage exactly as direct assignment would). */
void setField(Instruction &inst, InstrField field, uint64_t value);

/** Reads `field` of `inst` (widened to 64 bits). */
uint64_t getField(const Instruction &inst, InstrField field);

/** Execution engine for an opcode. */
Engine engineOf(Opcode op);

/** Mnemonic for an opcode ("conv1d", "masked_mm", ...). */
const char *opcodeName(Opcode op);

/** Parses a mnemonic; fatal on unknown names. */
Opcode opcodeFromName(const std::string &name);

/** Short name for an address space ("v", "s", "hbm", ...). */
const char *spaceName(Space s);

/** Human-readable category name ("Self-Attention", ...). */
const char *categoryName(Category c);

/** Structural validity check (operand spaces legal for the opcode). */
bool validate(const Instruction &inst, std::string *error = nullptr);

/** A straight-line instruction sequence. */
using Program = std::vector<Instruction>;

}  // namespace isa
}  // namespace dfx

#endif  // DFX_ISA_INSTRUCTION_HPP
