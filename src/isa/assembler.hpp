/**
 * @file
 * Textual assembly for the DFX ISA.
 *
 * One instruction per line:
 *
 *     conv1d v[96], hbm[0x1000], ddr[0x40] -> v[128] \
 *         len=1536 cols=384 flags=gelu cat=ffn
 *
 * Operands are `space[addr]` with addr in decimal or 0x-hex; omitted
 * operands print as `-`. Used for debugging, golden tests, and
 * round-trip validation against the binary encoder.
 */
#ifndef DFX_ISA_ASSEMBLER_HPP
#define DFX_ISA_ASSEMBLER_HPP

#include <string>

#include "isa/instruction.hpp"

namespace dfx {
namespace isa {

/** Formats one instruction as assembly text. */
std::string format(const Instruction &inst);

/** Parses one assembly line; fatal on syntax errors. */
Instruction parse(const std::string &line);

/** Formats a program, one instruction per line. */
std::string formatProgram(const Program &prog);

/** Parses a multi-line listing (blank lines and '#' comments ok). */
Program parseProgram(const std::string &text);

}  // namespace isa
}  // namespace dfx

#endif  // DFX_ISA_ASSEMBLER_HPP
