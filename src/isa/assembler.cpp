/**
 * @file
 * DFX assembler / disassembler implementation.
 */
#include "isa/assembler.hpp"

#include <cctype>
#include <sstream>
#include <vector>

#include "common/logging.hpp"

namespace dfx {
namespace isa {
namespace {

struct FlagName
{
    uint16_t bit;
    const char *name;
};

const FlagName kFlagNames[] = {
    {kFlagGelu, "gelu"},
    {kFlagMask, "mask"},
    {kFlagScale, "scale"},
    {kFlagTranspose, "transpose"},
    {kFlagArgmax, "argmax"},
    {kFlagWeightRowIsCol, "wt"},
};

struct CatName
{
    Category cat;
    const char *name;
};

const CatName kCatNames[] = {
    {Category::kEmbed, "embed"},
    {Category::kLayerNorm, "ln"},
    {Category::kAttention, "attn"},
    {Category::kFfn, "ffn"},
    {Category::kResidual, "residual"},
    {Category::kSync, "sync"},
    {Category::kLmHead, "lmhead"},
    {Category::kOther, "other"},
};

std::string
formatOperand(const Operand &op)
{
    if (op.space == Space::kNone)
        return "-";
    std::ostringstream os;
    os << spaceName(op.space) << "[" << op.addr << "]";
    return os.str();
}

std::string
formatFlags(uint16_t flags)
{
    std::string out;
    for (const auto &f : kFlagNames) {
        if (flags & f.bit) {
            if (!out.empty())
                out += '|';
            out += f.name;
        }
    }
    return out;
}

std::string
trim(const std::string &s)
{
    size_t a = 0, b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a])))
        ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])))
        --b;
    return s.substr(a, b - a);
}

Operand
parseOperand(const std::string &text)
{
    std::string t = trim(text);
    if (t == "-" || t.empty())
        return Operand::none();
    size_t lb = t.find('[');
    size_t rb = t.find(']');
    DFX_ASSERT(lb != std::string::npos && rb != std::string::npos && rb > lb,
               "malformed operand '%s'", t.c_str());
    std::string space = t.substr(0, lb);
    std::string addr_s = t.substr(lb + 1, rb - lb - 1);
    uint64_t addr = std::stoull(addr_s, nullptr, 0);
    if (space == "v")
        return Operand::vrf(addr);
    if (space == "s")
        return Operand::srf(addr);
    if (space == "i")
        return Operand::irf(addr);
    if (space == "hbm")
        return Operand::hbm(addr);
    if (space == "ddr")
        return Operand::ddr(addr);
    if (space == "imm")
        return Operand::imm(static_cast<uint16_t>(addr));
    DFX_FATAL("unknown operand space '%s'", space.c_str());
}

uint16_t
parseFlags(const std::string &text)
{
    uint16_t flags = 0;
    std::stringstream ss(text);
    std::string part;
    while (std::getline(ss, part, '|')) {
        bool found = false;
        for (const auto &f : kFlagNames) {
            if (part == f.name) {
                flags |= f.bit;
                found = true;
                break;
            }
        }
        DFX_ASSERT(found, "unknown flag '%s'", part.c_str());
    }
    return flags;
}

Category
parseCategory(const std::string &text)
{
    for (const auto &c : kCatNames) {
        if (text == c.name)
            return c.cat;
    }
    DFX_FATAL("unknown category '%s'", text.c_str());
}

}  // namespace

std::string
format(const Instruction &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op) << " " << formatOperand(inst.src1) << ", "
       << formatOperand(inst.src2) << ", " << formatOperand(inst.src3)
       << " -> " << formatOperand(inst.dst);
    if (inst.len)
        os << " len=" << inst.len;
    if (inst.cols)
        os << " cols=" << inst.cols;
    if (inst.aux)
        os << " aux=" << inst.aux;
    if (inst.pitch)
        os << " pitch=" << inst.pitch;
    if (inst.flags)
        os << " flags=" << formatFlags(inst.flags);
    if (inst.hbmChannels)
        os << " chan=0x" << std::hex << inst.hbmChannels << std::dec;
    for (const auto &c : kCatNames) {
        if (c.cat == inst.category) {
            os << " cat=" << c.name;
            break;
        }
    }
    return os.str();
}

Instruction
parse(const std::string &line)
{
    // Split "<op> <src1>, <src2>, <src3> -> <dst> key=value..."
    std::string text = trim(line);
    size_t sp = text.find(' ');
    DFX_ASSERT(sp != std::string::npos, "missing operands in '%s'",
               text.c_str());
    Instruction inst;
    inst.op = opcodeFromName(text.substr(0, sp));
    std::string rest = trim(text.substr(sp + 1));

    size_t arrow = rest.find("->");
    DFX_ASSERT(arrow != std::string::npos, "missing '->' in '%s'",
               line.c_str());
    std::string srcs = rest.substr(0, arrow);
    std::string tail = trim(rest.substr(arrow + 2));

    // Sources are comma separated.
    std::vector<std::string> src_parts;
    std::stringstream ss(srcs);
    std::string part;
    while (std::getline(ss, part, ','))
        src_parts.push_back(trim(part));
    DFX_ASSERT(src_parts.size() == 3, "expected 3 sources in '%s'",
               line.c_str());
    inst.src1 = parseOperand(src_parts[0]);
    inst.src2 = parseOperand(src_parts[1]);
    inst.src3 = parseOperand(src_parts[2]);

    // Destination is the first token of the tail.
    std::stringstream ts(tail);
    std::string tok;
    ts >> tok;
    inst.dst = parseOperand(tok);

    while (ts >> tok) {
        size_t eq = tok.find('=');
        DFX_ASSERT(eq != std::string::npos, "bad attribute '%s'",
                   tok.c_str());
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        if (key == "len") {
            inst.len = static_cast<uint32_t>(std::stoul(val, nullptr, 0));
        } else if (key == "cols") {
            inst.cols = static_cast<uint32_t>(std::stoul(val, nullptr, 0));
        } else if (key == "aux") {
            inst.aux = static_cast<uint32_t>(std::stoul(val, nullptr, 0));
        } else if (key == "pitch") {
            inst.pitch = static_cast<uint32_t>(std::stoul(val, nullptr, 0));
        } else if (key == "flags") {
            inst.flags = parseFlags(val);
        } else if (key == "chan") {
            inst.hbmChannels =
                static_cast<uint32_t>(std::stoul(val, nullptr, 0));
        } else if (key == "cat") {
            inst.category = parseCategory(val);
        } else {
            DFX_FATAL("unknown attribute '%s'", key.c_str());
        }
    }
    return inst;
}

std::string
formatProgram(const Program &prog)
{
    std::string out;
    for (const auto &inst : prog) {
        out += format(inst);
        out += '\n';
    }
    return out;
}

Program
parseProgram(const std::string &text)
{
    Program prog;
    std::stringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) {
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        prog.push_back(parse(t));
    }
    return prog;
}

}  // namespace isa
}  // namespace dfx
