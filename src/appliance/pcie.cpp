/**
 * @file
 * PCIe model translation unit (header-only model; kept for symmetry
 * and future extension).
 */
#include "appliance/pcie.hpp"
