/**
 * @file
 * DfxFleet implementation: one indexed-event-queue DES driving N
 * serving nodes, a front-end router, fleet-scope faults, and optional
 * prefill/decode disaggregation. See fleet.hpp for the model.
 *
 * Event-loop shape: every mutation of fleet state happens while
 * handling one popped event, and every path that makes new work
 * admissible (an arrival, a KV handoff landing, a failover requeue, a
 * retirement freeing a slot) schedules the round boundaries that will
 * pick that work up. The loop therefore never scans nodes for
 * something to do — if the heap is empty while requests are
 * outstanding, that is a scheduler bug and serve() fails loudly with
 * a per-node report rather than spinning.
 */
#include "appliance/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "perf/percentile.hpp"

namespace dfx {

const char *
toString(FleetNodeRole role)
{
    switch (role) {
        case FleetNodeRole::Both: return "both";
        case FleetNodeRole::Prefill: return "prefill";
        case FleetNodeRole::Decode: return "decode";
    }
    return "?";
}

const char *
toString(FleetRoutePolicy policy)
{
    switch (policy) {
        case FleetRoutePolicy::RoundRobin: return "round-robin";
        case FleetRoutePolicy::LeastLoaded: return "least-loaded";
        case FleetRoutePolicy::ProjectedTtft: return "projected-ttft";
    }
    return "?";
}

bool
FleetTopology::disaggregated() const
{
    for (FleetNodeRole r : roles)
        if (r != FleetNodeRole::Both)
            return true;
    return false;
}

void
FleetTopology::validate() const
{
    DFX_ASSERT(nNodes >= 1, "fleet needs at least one node");
    DFX_ASSERT(clustersPerNode >= 1,
               "fleet nodes need at least one cluster");
    DFX_ASSERT(roles.empty() || roles.size() == nNodes,
               "role list must be empty or name every node (%zu roles, "
               "%zu nodes)",
               roles.size(), nNodes);
    if (!roles.empty() && disaggregated()) {
        bool prefill = false, decode = false;
        for (FleetNodeRole r : roles) {
            prefill |= r != FleetNodeRole::Decode;
            decode |= r != FleetNodeRole::Prefill;
        }
        DFX_ASSERT(prefill && decode,
                   "a disaggregated fleet needs at least one "
                   "prefill-eligible and one decode-eligible node");
    }
}

// --- RoundCostModel --------------------------------------------------

double
RoundCostModel::roundSeconds(size_t batch, double meanPosition) const
{
    DFX_ASSERT(batch >= 1, "empty round");
    const size_t b = std::min(batch, alpha.size()) - 1;
    const double p =
        std::min(std::max(meanPosition, 0.0),
                 static_cast<double>(maxSeq > 0 ? maxSeq : 1));
    // A fitted slope can be slightly negative at tiny scales (batch
    // roofline noise); never charge a non-positive round.
    return std::max(alpha[b] + beta[b] * p, 1e-12);
}

double
RoundCostModel::pcieSeconds(uint64_t bytes) const
{
    return pcieLatencySeconds +
           static_cast<double>(bytes) / pcieBytesPerSec;
}

void
RoundCostModel::validate() const
{
    DFX_ASSERT(kvContexts >= 1, "model needs at least one slot");
    DFX_ASSERT(alpha.size() == kvContexts && beta.size() == kvContexts,
               "model must be fitted for every batch size 1..%zu",
               kvContexts);
    DFX_ASSERT(maxSeq >= 2, "model needs a context length");
    DFX_ASSERT(perTokenKvBytes > 0, "model needs KV byte accounting");
    DFX_ASSERT(blockTokens >= 1, "bad KV block granularity");
    DFX_ASSERT(pcieBytesPerSec > 0.0 && pcieLatencySeconds >= 0.0,
               "bad PCIe parameters");
    for (size_t b = 0; b < kvContexts; ++b)
        DFX_ASSERT(std::isfinite(alpha[b]) && std::isfinite(beta[b]) &&
                       alpha[b] > 0.0,
                   "unfitted round cost at batch %zu", b + 1);
}

RoundCostModel
RoundCostModel::calibrate(const DfxSystemConfig &config)
{
    DFX_ASSERT(config.kvContexts >= 1, "need at least one KV context");
    DfxSystemConfig probe = config;
    probe.functional = false;  // timing-only: no data planes
    probe.weightStore.reset();
    DfxAppliance appliance(probe);

    RoundCostModel m;
    m.kvContexts = config.kvContexts;
    m.maxSeq = config.model.maxSeq;
    m.perTokenKvBytes =
        static_cast<uint64_t>(4 * config.model.layers *
                              config.model.embedding);
    m.blockTokens =
        config.pagedKv.enabled ? config.pagedKv.blockTokens : 1;
    m.alpha.assign(m.kvContexts, 0.0);
    m.beta.assign(m.kvContexts, 0.0);

    // One lease per slot, kept for the whole calibration. Every
    // context advances in lockstep through full-batch rounds; batch
    // sizes below the maximum are probed on context subsets (the
    // probe advances those contexts one extra position — a <=
    // kvContexts skew against a maxSeq/2 baseline, folded into the
    // fit by using the exact measured positions).
    const size_t kv = m.kvContexts;
    const size_t hi = std::max<size_t>(m.maxSeq / 2, 2);
    std::vector<KvLease> leases;
    leases.reserve(kv);
    KvLeaseRequest req;
    req.prompt = {0};
    req.newTokens = std::min(m.maxSeq - 1, hi + kv + 2);
    req.sharePrefix = false;
    for (size_t i = 0; i < kv; ++i) {
        leases.push_back(appliance.tryAcquireLease(req));
        DFX_ASSERT(static_cast<bool>(leases.back()),
                   "calibration lease %zu denied", i);
    }
    DfxCluster &cluster = appliance.cluster();

    auto probeRound = [&](size_t batch, double *mean_pos) {
        std::vector<ContextStep> steps;
        steps.reserve(batch);
        double pos = 0.0;
        for (size_t i = 0; i < batch; ++i) {
            pos += static_cast<double>(
                cluster.position(leases[i].ctx()));
            steps.push_back({leases[i].ctx(), 0});
        }
        *mean_pos = pos / static_cast<double>(batch);
        TokenStats stats;
        appliance.stepBatch(steps, &stats);
        return stats.seconds;
    };

    std::vector<double> posLo(kv), secLo(kv);
    for (size_t b = 1; b <= kv; ++b)
        secLo[b - 1] = probeRound(b, &posLo[b - 1]);
    // Advance every context to ~maxSeq/2 with full-batch rounds.
    while (cluster.position(leases[0].ctx()) < hi) {
        double unused;
        probeRound(kv, &unused);
    }
    for (size_t b = 1; b <= kv; ++b) {
        double posHi;
        const double secHi = probeRound(b, &posHi);
        const double dp = posHi - posLo[b - 1];
        DFX_ASSERT(dp > 0.0, "degenerate calibration span");
        m.beta[b - 1] = (secHi - secLo[b - 1]) / dp;
        m.alpha[b - 1] = secLo[b - 1] - m.beta[b - 1] * posLo[b - 1];
        // Guard tiny-model noise: keep the intercept positive.
        if (m.alpha[b - 1] <= 0.0)
            m.alpha[b - 1] = secLo[b - 1];
    }
    m.validate();
    return m;
}

// --- DfxFleet construction -------------------------------------------

DfxFleet::DfxFleet(const DfxSystemConfig &config,
                   const FleetTopology &topology, FleetOptions options)
    : topology_(topology), options_(std::move(options)),
      calibrated_(false)
{
    DFX_ASSERT(config.kvContexts >= 1,
               "fleet needs at least one KV context per cluster");
    maxInFlight_ = config.kvContexts;
    perTokenKvBytes_ = static_cast<uint64_t>(
        4 * config.model.layers * config.model.embedding);
    kvBlockTokens_ =
        config.pagedKv.enabled ? config.pagedKv.blockTokens : 1;
    construct(topology, &config);
}

DfxFleet::DfxFleet(const RoundCostModel &model,
                   const FleetTopology &topology, FleetOptions options)
    : topology_(topology), options_(std::move(options)),
      calibrated_(true), model_(model)
{
    model_.validate();
    maxInFlight_ = model_.kvContexts;
    perTokenKvBytes_ = model_.perTokenKvBytes;
    kvBlockTokens_ = model_.blockTokens;
    construct(topology, nullptr);
}

void
DfxFleet::construct(const FleetTopology &topology,
                    const DfxSystemConfig *config)
{
    topology_.validate();
    options_.faultPlan.validate(topology.nNodes);
    DFX_ASSERT(options_.retryBudget < 64, "absurd retry budget");
    DFX_ASSERT(options_.kvLinkBytesPerSec > 0.0 &&
                   options_.kvLinkLatencySeconds >= 0.0,
               "bad KV link parameters");
    nodes_.resize(topology.nNodes);
    for (size_t n = 0; n < topology.nNodes; ++n) {
        NodeState &node = nodes_[n];
        node.role = topology.roles.empty() ? FleetNodeRole::Both
                                           : topology.roles[n];
        node.clusters.resize(topology.clustersPerNode);
        if (config != nullptr)
            for (ClusterState &cl : node.clusters)
                cl.appliance = std::make_unique<DfxAppliance>(*config);
    }
    failStopApplied_.assign(options_.faultPlan.failStops.size(), false);
}

void
DfxFleet::loadWeights(const GptWeights &weights)
{
    DFX_ASSERT(!calibrated_,
               "the calibrated backend holds no appliances");
    for (NodeState &node : nodes_)
        for (ClusterState &cl : node.clusters)
            cl.appliance->loadWeights(weights);
}

void
DfxFleet::resetEpoch()
{
    for (NodeState &node : nodes_) {
        node.health = ClusterHealth::Healthy;
        node.pending.clear();
        node.served = 0;
        node.serviceSum = 0.0;
        node.rerouted = 0;
        node.kvTransfersOut = 0;
        node.kvTransfersIn = 0;
        for (ClusterState &cl : node.clusters) {
            cl.inflight.clear();  // leases release on destruction
            cl.clock = 0.0;
            cl.roundScheduled = false;
            cl.busySeconds = 0.0;
        }
    }
    queue_ = FleetEventQueue();
    transit_.clear();
    results_.clear();
    failStopApplied_.assign(options_.faultPlan.failStops.size(), false);
    submitted_ = completed_ = 0;
    failovers_ = retries_ = shed_ = failed_ = requeuedTokens_ = 0;
    kvTransfers_ = 0;
    kvTransferBytes_ = 0;
    kvTransferSeconds_ = 0.0;
    eventsProcessed_ = 0;
    rrArrival_ = rrDecode_ = 0;
}

// --- helpers ---------------------------------------------------------

uint64_t
DfxFleet::kvBytes(size_t tokens) const
{
    const size_t blocks =
        (tokens + kvBlockTokens_ - 1) / kvBlockTokens_;
    return static_cast<uint64_t>(blocks) * kvBlockTokens_ *
           perTokenKvBytes_;
}

double
DfxFleet::pcieSeconds(uint64_t bytes) const
{
    if (calibrated_)
        return model_.pcieSeconds(bytes);
    return nodes_[0].clusters[0].appliance->pcieSeconds(bytes);
}

size_t
DfxFleet::nodeLoad(size_t n) const
{
    size_t load = nodes_[n].pending.size();
    for (const ClusterState &cl : nodes_[n].clusters)
        load += cl.inflight.size();
    return load;
}

size_t
DfxFleet::routeTarget(bool decode)
{
    const FleetNodeRole excluded =
        decode ? FleetNodeRole::Prefill : FleetNodeRole::Decode;
    std::vector<size_t> eligible;
    eligible.reserve(nodes_.size());
    for (size_t n = 0; n < nodes_.size(); ++n)
        if (nodes_[n].health != ClusterHealth::Failed &&
            nodes_[n].role != excluded)
            eligible.push_back(n);
    if (eligible.empty())
        return nodes_.size();

    switch (options_.policy) {
        case FleetRoutePolicy::RoundRobin: {
            size_t &cursor = decode ? rrDecode_ : rrArrival_;
            return eligible[cursor++ % eligible.size()];
        }
        case FleetRoutePolicy::LeastLoaded: {
            size_t best = eligible[0];
            size_t best_load = std::numeric_limits<size_t>::max();
            for (size_t n : eligible) {
                const size_t load = nodeLoad(n);
                if (load < best_load) {
                    best_load = load;
                    best = n;
                }
            }
            return best;
        }
        case FleetRoutePolicy::ProjectedTtft: {
            // Projected wait = load / slots * observed per-request
            // turnaround (node history; fleet-wide fallback before a
            // node's first completion). With no history anywhere this
            // degenerates to slot-normalized least-loaded — still a
            // pure function of simulated state.
            double fleet_sum = 0.0;
            size_t fleet_served = 0;
            for (const NodeState &node : nodes_) {
                fleet_sum += node.serviceSum;
                fleet_served += node.served;
            }
            size_t best = eligible[0];
            double best_proj =
                std::numeric_limits<double>::infinity();
            for (size_t n : eligible) {
                const double sum = nodes_[n].served > 0
                                       ? nodes_[n].serviceSum
                                       : fleet_sum;
                const size_t served = nodes_[n].served > 0
                                          ? nodes_[n].served
                                          : fleet_served;
                const double turnaround =
                    served > 0 ? sum / static_cast<double>(served)
                               : 1.0;
                const double slots = static_cast<double>(
                    nodes_[n].clusters.size() * maxInFlight_);
                const double proj =
                    static_cast<double>(nodeLoad(n)) / slots *
                    turnaround;
                if (proj < best_proj) {
                    best_proj = proj;
                    best = n;
                }
            }
            return best;
        }
    }
    return nodes_.size();
}

void
DfxFleet::scheduleRound(size_t n, size_t c, double t)
{
    ClusterState &cl = nodes_[n].clusters[c];
    if (cl.roundScheduled || nodes_[n].health == ClusterHealth::Failed)
        return;
    cl.roundScheduled = true;
    queue_.push(std::max(t, cl.clock), FleetEventKind::Round,
                static_cast<uint32_t>(n), static_cast<uint32_t>(c));
}

void
DfxFleet::enqueueOnNode(size_t n, Slot slot)
{
    const double ready = slot.readySim;
    auto &queue = nodes_[n].pending;
    auto pos = std::upper_bound(
        queue.begin(), queue.end(), slot,
        [](const Slot &a, const Slot &b) {
            if (a.readySim != b.readySim)
                return a.readySim < b.readySim;
            return a.id < b.id;
        });
    slot.node = n;
    queue.insert(pos, std::move(slot));
    for (size_t c = 0; c < nodes_[n].clusters.size(); ++c)
        scheduleRound(n, c, ready);
}

void
DfxFleet::recordTerminal(Slot slot, size_t n, RequestOutcome outcome,
                         double t)
{
    RequestResult r;
    r.id = slot.id;
    r.cluster = n;
    r.stolen = slot.rerouted;
    r.outcome = outcome;
    r.retries = slot.retries;
    r.arrivalSeconds = slot.request.arrivalSeconds;
    r.admitSimSeconds = t;
    r.firstTokenSimSeconds = t;
    r.finishSimSeconds = t;
    results_.push_back(std::move(r));
    if (outcome == RequestOutcome::Shed)
        ++shed_;
    else if (outcome == RequestOutcome::Failed)
        ++failed_;
    ++completed_;
}

// --- event handlers --------------------------------------------------

void
DfxFleet::handleArrival(const FleetEvent &ev)
{
    Slot slot = std::move(transit_.at(ev.payload));
    transit_.erase(ev.payload);
    const size_t target = routeTarget(/*decode=*/false);
    if (target == nodes_.size()) {
        recordTerminal(std::move(slot), 0, RequestOutcome::Failed,
                       ev.time);
        return;
    }
    enqueueOnNode(target, std::move(slot));
}

void
DfxFleet::handleTransferDone(const FleetEvent &ev)
{
    Slot slot = std::move(transit_.at(ev.payload));
    transit_.erase(ev.payload);
    const size_t target = routeTarget(/*decode=*/true);
    if (target == nodes_.size()) {
        // Every decode-eligible node died while the KV was on the
        // wire; the transfer has nowhere to land.
        recordTerminal(std::move(slot), ev.node,
                       RequestOutcome::Failed, ev.time);
        return;
    }
    ++nodes_[target].kvTransfersIn;
    slot.readySim = ev.time;
    enqueueOnNode(target, std::move(slot));
}

void
DfxFleet::handleFailStop(const FleetEvent &ev)
{
    const ClusterFailStop &fs =
        options_.faultPlan.failStops[ev.payload];
    failStopApplied_[ev.payload] = true;
    const size_t n = fs.cluster;
    NodeState &node = nodes_[n];
    if (node.health == ClusterHealth::Failed)
        return;  // double fail-stop is idempotent
    node.health = ClusterHealth::Failed;

    // Displace everything the node holds. In-flight (and handed-off)
    // requests lose their KV state and restart from the prompt,
    // consuming one retry; plain waiters reroute for free.
    std::vector<Slot> displaced;
    for (ClusterState &cl : node.clusters) {
        cl.clock = std::max(cl.clock, fs.atSeconds);
        for (Slot &s : cl.inflight) {
            s.lease.release();
            requeuedTokens_ += s.outCount;
            s.out.clear();
            s.outCount = 0;
            s.fed = 0;
            s.position = 0;
            s.next = -1;
            s.firstTokenSim = -1.0;
            s.handedOff = false;
            ++s.retries;
            ++retries_;
            displaced.push_back(std::move(s));
        }
        cl.inflight.clear();
    }
    for (Slot &s : node.pending) {
        if (s.handedOff) {
            // Its KV landed here but was never admitted into a
            // lease: the state dies with the node, like in-flight.
            s.fed = 0;
            s.position = 0;
            s.next = -1;
            s.firstTokenSim = -1.0;
            s.handedOff = false;
            ++s.retries;
            ++retries_;
        }
        displaced.push_back(std::move(s));
    }
    node.pending.clear();

    // Failover: oldest arrival first (ties by id) back through the
    // router. A displaced request cannot restart before the instant
    // the node died.
    std::sort(displaced.begin(), displaced.end(),
              [](const Slot &a, const Slot &b) {
                  if (a.request.arrivalSeconds !=
                      b.request.arrivalSeconds)
                      return a.request.arrivalSeconds <
                             b.request.arrivalSeconds;
                  return a.id < b.id;
              });
    for (Slot &s : displaced) {
        if (s.retries > options_.retryBudget) {
            recordTerminal(std::move(s), n, RequestOutcome::Failed,
                           fs.atSeconds);
            continue;
        }
        const size_t target = routeTarget(/*decode=*/false);
        if (target == nodes_.size()) {
            recordTerminal(std::move(s), n, RequestOutcome::Failed,
                           fs.atSeconds);
            continue;
        }
        ++failovers_;
        s.rerouted = true;
        ++nodes_[target].rerouted;
        s.readySim = std::max(s.request.arrivalSeconds, fs.atSeconds);
        enqueueOnNode(target, std::move(s));
    }
}

bool
DfxFleet::tryAdmit(size_t n, size_t c)
{
    NodeState &node = nodes_[n];
    ClusterState &cl = node.clusters[c];
    Slot &front = node.pending.front();
    KvLease lease;
    if (!calibrated_) {
        KvLeaseRequest req;
        req.prompt = front.request.prompt;
        req.newTokens = front.request.nOut;
        // A handed-off request must replay its entire prompt to
        // rebuild the transferred KV contents; prefix aliasing would
        // skip tokens the wire "moved" and leave the replay partial.
        req.sharePrefix = !front.handedOff;
        lease = cl.appliance->tryAcquireLease(req);
        if (!lease)
            return false;  // paged pool full until a retirement
    }
    Slot slot = std::move(node.pending.front());
    node.pending.pop_front();
    if (slot.handedOff) {
        // The KV state arrived over the modeled fabric (already
        // charged as transfer seconds); there is no host upload and
        // no prefill compute here. The full backend replays the
        // prompt to materialize the identical KV contents — the
        // simulator's mechanism for the bytes the wire moved, charged
        // zero simulated time.
        if (!calibrated_) {
            const StepOutcome replay =
                cl.appliance->prefill(lease, slot.request.prompt);
            DFX_ASSERT(replay.next == slot.next,
                       "KV handoff replay diverged for request %llu",
                       static_cast<unsigned long long>(slot.id));
        }
        slot.fed = slot.request.prompt.size();
        slot.position = slot.request.prompt.size();
    } else {
        slot.admitSim = cl.clock;
        cl.clock +=
            options_.faultPlan.linkFactor(cl.clock) *
            pcieSeconds(slot.request.prompt.size() * 4 + 64);
        slot.fed = calibrated_ ? 0 : lease.sharedTokens();
        slot.position = 0;
    }
    slot.lease = std::move(lease);
    slot.node = n;
    cl.inflight.push_back(std::move(slot));
    return true;
}

void
DfxFleet::shedOverBudget(size_t n, double t)
{
    NodeState &node = nodes_[n];
    if (node.pending.empty())
        return;
    // DfxServer's projection rule at node granularity: wait-so-far
    // plus queue-rank slot-frees at the node's observed per-slot
    // turnaround (fleet-wide fallback; never shed before any
    // completion anywhere).
    double sum = node.serviceSum;
    size_t served = node.served;
    if (served == 0) {
        sum = 0.0;
        for (const NodeState &other : nodes_) {
            sum += other.serviceSum;
            served += other.served;
        }
    }
    if (served == 0)
        return;
    const double per_slot =
        sum / static_cast<double>(served) /
        static_cast<double>(node.clusters.size() * maxInFlight_);
    std::deque<Slot> keep;
    size_t rank = 0;
    for (Slot &s : node.pending) {
        if (s.readySim > t || s.handedOff) {
            // Handed-off requests already consumed prefill compute
            // and wire bytes; shedding them would waste fleet work
            // for no admission-queue relief.
            keep.push_back(std::move(s));
            continue;
        }
        const double projected =
            (t - s.request.arrivalSeconds) +
            static_cast<double>(rank + 1) * per_slot;
        if (projected > options_.sloTtftBudgetSeconds) {
            recordTerminal(std::move(s), n, RequestOutcome::Shed, t);
        } else {
            ++rank;
            keep.push_back(std::move(s));
        }
    }
    node.pending = std::move(keep);
}

void
DfxFleet::startHandoff(size_t n, size_t c, Slot slot, double t)
{
    slot.lease.release();
    slot.handedOff = true;
    ++nodes_[n].kvTransfersOut;
    const uint64_t bytes = kvBytes(slot.request.prompt.size());
    const double seconds =
        options_.faultPlan.linkFactor(t) *
        (options_.kvLinkLatencySeconds +
         static_cast<double>(bytes) / options_.kvLinkBytesPerSec);
    ++kvTransfers_;
    kvTransferBytes_ += bytes;
    kvTransferSeconds_ += seconds;
    const uint64_t id = slot.id;
    transit_.emplace(id, std::move(slot));
    queue_.push(t + seconds, FleetEventKind::TransferDone,
                static_cast<uint32_t>(n), static_cast<uint32_t>(c), id);
}

void
DfxFleet::retire(size_t n, size_t c, Slot slot)
{
    NodeState &node = nodes_[n];
    ClusterState &cl = node.clusters[c];
    cl.clock += options_.faultPlan.linkFactor(cl.clock) *
                pcieSeconds(slot.request.nOut * 4);
    slot.lease.release();
    node.serviceSum += cl.clock - slot.admitSim;
    ++node.served;
    RequestResult r;
    r.id = slot.id;
    r.cluster = n;
    r.stolen = slot.rerouted;
    r.retries = slot.retries;
    r.tokens = std::move(slot.out);
    r.arrivalSeconds = slot.request.arrivalSeconds;
    r.admitSimSeconds = slot.admitSim;
    r.firstTokenSimSeconds = slot.firstTokenSim;
    r.finishSimSeconds = cl.clock;
    results_.push_back(std::move(r));
    ++completed_;
}

void
DfxFleet::handleRound(const FleetEvent &ev)
{
    const size_t n = ev.node;
    const size_t c = ev.sub;
    NodeState &node = nodes_[n];
    ClusterState &cl = node.clusters[c];
    cl.roundScheduled = false;
    if (node.health == ClusterHealth::Failed)
        return;  // stale boundary of a node that died meanwhile
    cl.clock = std::max(cl.clock, ev.time);

    // Admission: continuous batching — claim ready waiters up to the
    // slot limit, oldest first.
    while (cl.inflight.size() < maxInFlight_ &&
           !node.pending.empty() &&
           node.pending.front().readySim <= cl.clock) {
        if (!tryAdmit(n, c))
            break;
    }

    if (options_.sloTtftBudgetSeconds > 0.0)
        shedOverBudget(n, cl.clock);

    if (cl.inflight.empty()) {
        if (!node.pending.empty()) {
            // Waiters remain (future arrivals, or a sibling cluster's
            // backlog): keep a boundary scheduled so they are picked
            // up. An idle cluster's clock jumps to the work.
            const double next =
                std::max(cl.clock, node.pending.front().readySim);
            DFX_ASSERT(next > ev.time ||
                           node.pending.front().readySim > cl.clock,
                       "admission made no progress on node %zu", n);
            scheduleRound(n, c, next);
        }
        return;
    }

    const double slow =
        options_.faultPlan.slowdownFactor(n, cl.clock);
    node.health = slow > 1.0 ? ClusterHealth::Degraded
                             : ClusterHealth::Healthy;

    // One batched round: every in-flight request advances one token
    // step, exactly DfxServer's order (prompt token while
    // summarizing, fed-back argmax while generating).
    double charged;
    std::vector<int32_t> next_tokens;
    if (calibrated_) {
        double pos = 0.0;
        for (Slot &s : cl.inflight) {
            if (s.fed >= s.request.prompt.size())
                ++s.outCount;
            pos += static_cast<double>(s.position);
        }
        charged = model_.roundSeconds(
                      cl.inflight.size(),
                      pos / static_cast<double>(cl.inflight.size())) *
                  slow;
        next_tokens.assign(cl.inflight.size(), -1);
    } else {
        std::vector<ContextStep> round;
        round.reserve(cl.inflight.size());
        for (Slot &s : cl.inflight) {
            int32_t tok;
            if (s.fed < s.request.prompt.size()) {
                tok = s.request.prompt[s.fed];
            } else {
                tok = s.next >= 0 ? s.next : 0;
                s.out.push_back(tok);
                ++s.outCount;
            }
            round.push_back({s.lease.ctx(), tok});
        }
        TokenStats batch;
        next_tokens = cl.appliance->stepBatch(round, &batch);
        charged = batch.seconds * slow;
    }
    cl.clock += charged;
    cl.busySeconds += charged;
    const double round_end = cl.clock;

    // Advance, hand off finished prefills (disaggregated prefill
    // nodes), retire completed requests.
    const bool hands_off = node.role == FleetNodeRole::Prefill;
    size_t keep = 0;
    for (size_t i = 0; i < cl.inflight.size(); ++i) {
        Slot &s = cl.inflight[i];
        if (s.fed < s.request.prompt.size())
            ++s.fed;
        ++s.position;
        s.next = next_tokens[i];
        const bool first_token =
            s.fed == s.request.prompt.size() && s.firstTokenSim < 0.0;
        if (first_token)
            s.firstTokenSim = round_end;
        if (s.outCount >= s.request.nOut) {
            retire(n, c, std::move(s));
        } else if (hands_off && first_token && s.outCount == 0) {
            startHandoff(n, c, std::move(s), round_end);
        } else {
            if (keep != i)
                cl.inflight[keep] = std::move(s);
            ++keep;
        }
    }
    cl.inflight.resize(keep);

    if (!cl.inflight.empty())
        scheduleRound(n, c, cl.clock);
    else if (!node.pending.empty())
        scheduleRound(n, c, std::max(cl.clock,
                                     node.pending.front().readySim));
}

// --- serve -----------------------------------------------------------

std::string
DfxFleet::wedgeReport() const
{
    std::string report;
    char line[192];
    for (size_t n = 0; n < nodes_.size(); ++n) {
        size_t inflight = 0;
        double clock = 0.0;
        for (const ClusterState &cl : nodes_[n].clusters) {
            inflight += cl.inflight.size();
            clock = std::max(clock, cl.clock);
        }
        std::snprintf(line, sizeof line,
                      "  node %zu (%s): %s, %zu in flight, %zu "
                      "pending, sim time %.6fs\n",
                      n, toString(nodes_[n].role),
                      toString(nodes_[n].health), inflight,
                      nodes_[n].pending.size(), clock);
        report += line;
    }
    std::snprintf(line, sizeof line,
                  "  %zu in transit, %llu events queued\n",
                  transit_.size(),
                  static_cast<unsigned long long>(queue_.size()));
    report += line;
    return report;
}

FleetStats
DfxFleet::serve(const std::vector<ServerRequest> &requests)
{
    resetEpoch();
    const size_t max_seq =
        calibrated_ ? model_.maxSeq
                    : nodes_[0].clusters[0].appliance->config().model
                          .maxSeq;
    for (const ServerRequest &request : requests) {
        DFX_ASSERT(!request.prompt.empty(), "empty prompt");
        DFX_ASSERT(request.nOut >= 1, "need at least one output token");
        DFX_ASSERT(std::isfinite(request.arrivalSeconds) &&
                       request.arrivalSeconds >= 0.0,
                   "arrival timestamp must be finite and non-negative");
        DFX_ASSERT(request.prompt.size() + request.nOut <= max_seq,
                   "request %zu+%zu exceeds max context %zu",
                   request.prompt.size(), request.nOut, max_seq);
        // A request larger than a whole paged block pool could never
        // be admitted anywhere: reject at submission (the DfxServer
        // rule), not by wedging admission.
        if (!calibrated_) {
            if (const KvPager *pager =
                    nodes_[0].clusters[0].appliance->cluster().pager()) {
                const size_t blocks =
                    (request.prompt.size() + request.nOut +
                     pager->blockTokens() - 1) /
                    pager->blockTokens();
                DFX_ASSERT(blocks <= pager->physBlocks(),
                           "request needs %zu KV blocks but the pool "
                           "holds %zu",
                           blocks, pager->physBlocks());
            }
        }
        Slot slot;
        slot.id = submitted_++;
        slot.request = request;
        slot.readySim = request.arrivalSeconds;
        const uint64_t id = slot.id;
        transit_.emplace(id, std::move(slot));
        // Routing happens when the arrival fires, against the fleet
        // state at that instant. Same-time arrivals fire in
        // submission order (the queue's seq tie-break).
        queue_.push(request.arrivalSeconds, FleetEventKind::Arrival, 0,
                    0, id);
    }
    // Fault events merge into the same timeline; at an equal instant
    // a fail-stop fires before arrivals and boundaries (event-kind
    // tie-break), preserving the server's fault-before-round rule.
    for (size_t e = 0; e < options_.faultPlan.failStops.size(); ++e)
        queue_.push(options_.faultPlan.failStops[e].atSeconds,
                    FleetEventKind::FailStop,
                    static_cast<uint32_t>(
                        options_.faultPlan.failStops[e].cluster),
                    0, e);

    const auto host_start = std::chrono::steady_clock::now();
    while (completed_ < submitted_) {
        DFX_ASSERT(!queue_.empty(),
                   "event queue drained with %llu of %llu requests "
                   "outstanding\n%s",
                   static_cast<unsigned long long>(submitted_ -
                                                   completed_),
                   static_cast<unsigned long long>(submitted_),
                   wedgeReport().c_str());
        const FleetEvent ev = queue_.pop();
        ++eventsProcessed_;
        switch (ev.kind) {
            case FleetEventKind::FailStop: handleFailStop(ev); break;
            case FleetEventKind::Arrival: handleArrival(ev); break;
            case FleetEventKind::TransferDone:
                handleTransferDone(ev);
                break;
            case FleetEventKind::Round: handleRound(ev); break;
        }
        if (options_.serveDeadlineHostSeconds > 0.0 &&
            (eventsProcessed_ & 1023) == 0) {
            const std::chrono::duration<double> host =
                std::chrono::steady_clock::now() - host_start;
            if (host.count() > options_.serveDeadlineHostSeconds)
                DFX_FATAL("serve deadline: %.1f host seconds elapsed "
                          "with %llu of %llu requests outstanding\n%s",
                          options_.serveDeadlineHostSeconds,
                          static_cast<unsigned long long>(submitted_ -
                                                          completed_),
                          static_cast<unsigned long long>(submitted_),
                          wedgeReport().c_str());
        }
    }

    FleetStats stats;
    std::sort(results_.begin(), results_.end(),
              [](const RequestResult &a, const RequestResult &b) {
                  return a.id < b.id;
              });
    stats.requests = results_.size();
    std::vector<double> lat, ttft, qdelay;
    lat.reserve(results_.size());
    ttft.reserve(results_.size());
    qdelay.reserve(results_.size());
    for (const RequestResult &r : results_) {
        if (r.outcome != RequestOutcome::Completed)
            continue;
        ++stats.completedRequests;
        stats.totalLatencySeconds += r.latencySeconds();
        lat.push_back(r.latencySeconds());
        ttft.push_back(r.ttftSeconds());
        qdelay.push_back(r.queueDelaySeconds());
    }
    // Token counts are exact in both backends (the calibrated one
    // holds no token values, but every completed request generated
    // exactly nOut).
    for (size_t i = 0; i < results_.size(); ++i)
        if (results_[i].outcome == RequestOutcome::Completed)
            stats.totalOutputTokens += requests[results_[i].id].nOut;
    double makespan = 0.0;
    for (const NodeState &node : nodes_)
        for (const ClusterState &cl : node.clusters)
            makespan = std::max(makespan, cl.clock);
    stats.makespanSeconds = results_.empty() ? 0.0 : makespan;
    if (!lat.empty()) {
        const double count = static_cast<double>(lat.size());
        stats.p99LatencySeconds = perf::percentile(lat, 0.99);
        stats.ttftP99Seconds = perf::percentile(ttft, 0.99);
        stats.queueDelayP99Seconds = perf::percentile(qdelay, 0.99);
        for (size_t i = 0; i < lat.size(); ++i) {
            stats.ttftMeanSeconds += ttft[i] / count;
            stats.queueDelayMeanSeconds += qdelay[i] / count;
        }
    }
    stats.totalFailovers = failovers_;
    stats.totalRetries = retries_;
    stats.totalShed = shed_;
    stats.totalFailed = failed_;
    stats.requeuedTokens = requeuedTokens_;
    stats.kvTransfers = kvTransfers_;
    stats.kvTransferBytes = kvTransferBytes_;
    stats.kvTransferSeconds = kvTransferSeconds_;
    stats.eventsProcessed = eventsProcessed_;
    stats.nodes.resize(nodes_.size());
    for (size_t n = 0; n < nodes_.size(); ++n) {
        FleetNodeStats &ns = stats.nodes[n];
        ns.role = nodes_[n].role;
        ns.health = nodes_[n].health;
        ns.requestsServed = nodes_[n].served;
        ns.requestsRerouted = nodes_[n].rerouted;
        ns.kvTransfersOut = nodes_[n].kvTransfersOut;
        ns.kvTransfersIn = nodes_[n].kvTransfersIn;
        for (const ClusterState &cl : nodes_[n].clusters)
            ns.busySeconds += cl.busySeconds;
        ns.utilization =
            stats.makespanSeconds > 0.0
                ? ns.busySeconds /
                      (stats.makespanSeconds *
                       static_cast<double>(nodes_[n].clusters.size()))
                : 0.0;
    }
    stats.results = std::move(results_);
    return stats;
}

}  // namespace dfx
