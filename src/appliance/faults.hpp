/**
 * @file
 * Deterministic fault injection for the serving subsystem.
 *
 * A real multi-FPGA appliance loses devices: a board wedges and
 * fail-stops, a bitstream bug or thermal throttle turns a cluster
 * into a straggler, a PCIe link trains down to fewer lanes. The
 * serving scheduler treats all of these as *simulated-clock events*
 * described by a `FaultPlan`:
 *
 *  - `ClusterFailStop` — the cluster dies at `atSeconds`. Its
 *    in-flight requests lose their KV contexts and are requeued on a
 *    healthy cluster (with a bounded retry budget); its waiters are
 *    rerouted.
 *  - `ClusterSlowdown` — a timing-side straggler: every round the
 *    cluster runs inside [fromSeconds, toSeconds) is charged
 *    `factor`x its modeled time. Functional outputs are untouched.
 *  - `LinkDegrade` — the modeled host link degrades: PCIe transfers
 *    started inside the window cost `factor`x their modeled time.
 *
 * Because events are expressed in simulated seconds and the scheduler
 * applies them at deterministic round boundaries (see
 * `DfxServer::schedulerLoop`), a faulted run is bit-reproducible from
 * (plan, workload): same failover placement, same retries, same
 * clocks, on every host. An empty plan leaves the server's behavior
 * bit-identical to a fault-free build (determinism invariant 7 in
 * docs/ARCHITECTURE.md).
 */
#ifndef DFX_APPLIANCE_FAULTS_HPP
#define DFX_APPLIANCE_FAULTS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfx {

/** Serving-visible condition of one cluster. */
enum class ClusterHealth
{
    Healthy,   ///< serving at full modeled speed
    Degraded,  ///< serving, but inside a slowdown window
    Failed,    ///< fail-stopped; holds no requests, receives none
};

/** Human-readable health name (diagnostics, JSON). */
const char *toString(ClusterHealth health);

/** Cluster `cluster` fail-stops at simulated time `atSeconds`. */
struct ClusterFailStop
{
    size_t cluster = 0;
    double atSeconds = 0.0;
};

/** Cluster `cluster` runs `factor`x slower inside [from, to). */
struct ClusterSlowdown
{
    size_t cluster = 0;
    double fromSeconds = 0.0;
    double toSeconds = 0.0;
    double factor = 1.0;  ///< >= 1; 4.0 = rounds take 4x as long
};

/** PCIe transfers inside [from, to) cost `factor`x as much. */
struct LinkDegrade
{
    double fromSeconds = 0.0;
    double toSeconds = 0.0;
    double factor = 1.0;  ///< >= 1; 2.0 = half the link bandwidth
};

/**
 * A deterministic schedule of fault events on the simulated clock,
 * applied per drain epoch (times are relative to the epoch's t=0,
 * like `ServerRequest::arrivalSeconds`). Construct explicitly or via
 * `FaultPlan::random(seed, ...)`; either way the faulted schedule is
 * a pure function of (plan, workload).
 */
struct FaultPlan
{
    std::vector<ClusterFailStop> failStops;
    std::vector<ClusterSlowdown> slowdowns;
    std::vector<LinkDegrade> linkDegrades;

    /** True when the plan injects nothing. */
    bool
    empty() const
    {
        return failStops.empty() && slowdowns.empty() &&
               linkDegrades.empty();
    }

    /**
     * Fatal on an ill-formed plan: out-of-range cluster indices,
     * non-finite or negative times, empty windows, factors < 1.
     * The server validates its plan at construction.
     */
    void validate(size_t n_clusters) const;

    /**
     * Combined slowdown multiplier for a round `cluster` starts at
     * simulated time `at` (overlapping windows multiply). Exactly 1.0
     * outside every window, so an empty plan never perturbs timing.
     */
    double slowdownFactor(size_t cluster, double at) const;

    /** Combined PCIe cost multiplier at simulated time `at`. */
    double linkFactor(double at) const;

    /**
     * Seedable plan generator for fuzz-style robustness runs: draws
     * `n_events` events (fail-stops, slowdowns, link degrades) with
     * times inside [0, horizon_seconds) from the repo's portable PRNG.
     * The same (seed, n_clusters, horizon, n_events) always yields the
     * same plan on every platform. At least one cluster is never
     * fail-stopped, so a generated plan cannot strand the whole fleet.
     */
    static FaultPlan random(uint64_t seed, size_t n_clusters,
                            double horizon_seconds, size_t n_events);
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_FAULTS_HPP
