/**
 * @file
 * Serving workload generator implementations.
 */
#include "appliance/workload.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/random.hpp"

namespace dfx {

namespace {

/** Deterministic prompts: `spec.nRequests` requests of `spec.nIn`
 *  uniform ids below `spec.vocab`, no arrival times yet. */
std::vector<ServerRequest>
basePrompts(const WorkloadSpec &spec, Rng &rng, size_t n_requests)
{
    DFX_ASSERT(spec.nIn >= 1, "workload needs at least one prompt token");
    DFX_ASSERT(spec.nOut >= 1,
               "workload needs at least one output token");
    DFX_ASSERT(spec.vocab >= 1, "workload needs a non-empty vocabulary");
    std::vector<ServerRequest> reqs;
    reqs.reserve(n_requests);
    for (size_t i = 0; i < n_requests; ++i) {
        ServerRequest r;
        r.prompt.reserve(spec.nIn);
        for (size_t j = 0; j < spec.nIn; ++j)
            r.prompt.push_back(
                static_cast<int32_t>(rng.below(spec.vocab)));
        r.nOut = spec.nOut;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

}  // namespace

std::vector<ServerRequest>
poissonWorkload(const WorkloadSpec &spec, double offered_rps)
{
    DFX_ASSERT(offered_rps > 0.0, "offered load must be positive");
    Rng rng(spec.seed);
    std::vector<ServerRequest> reqs =
        basePrompts(spec, rng, spec.nRequests);
    // Exponential gaps from inverse-transform sampling. The uniform
    // draws happen after the prompt draws, in request order, so the
    // gap sequence is a pure function of the seed. Accumulate at unit
    // rate and divide each arrival once, so arrival_i(rate) ==
    // arrival_i(1.0) / rate holds *exactly* (bit-for-bit), not just
    // up to summation rounding — load sweeps rescale one pattern.
    double t = 0.0;
    for (ServerRequest &r : reqs) {
        const double u = rng.uniform();  // in [0, 1): log(1-u) is safe
        t -= std::log(1.0 - u);
        r.arrivalSeconds = t / offered_rps;
    }
    return reqs;
}

std::vector<ServerRequest>
traceWorkload(const WorkloadSpec &spec,
              const std::vector<double> &arrival_seconds)
{
    Rng rng(spec.seed);
    std::vector<ServerRequest> reqs =
        basePrompts(spec, rng, arrival_seconds.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
        DFX_ASSERT(std::isfinite(arrival_seconds[i]) &&
                       arrival_seconds[i] >= 0.0,
                   "trace arrival %zu must be finite and non-negative",
                   i);
        reqs[i].arrivalSeconds = arrival_seconds[i];
    }
    return reqs;
}

std::vector<ServerRequest>
batchWorkload(const WorkloadSpec &spec)
{
    Rng rng(spec.seed);
    return basePrompts(spec, rng, spec.nRequests);
}

std::vector<ServerRequest>
imbalancedWorkload(const WorkloadSpec &spec, size_t n_clusters,
                   size_t long_factor)
{
    DFX_ASSERT(n_clusters >= 1, "need at least one cluster");
    DFX_ASSERT(long_factor >= 2,
               "long requests must be at least 2x the short ones");
    Rng rng(spec.seed);
    std::vector<ServerRequest> reqs =
        basePrompts(spec, rng, spec.nRequests);
    for (size_t i = 0; i < reqs.size(); ++i) {
        if (i % n_clusters == 0)
            reqs[i].nOut = spec.nOut * long_factor;
    }
    return reqs;
}

}  // namespace dfx
