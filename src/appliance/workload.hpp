/**
 * @file
 * Serving workload generators: synthetic request streams with
 * simulated arrival timestamps for the open-loop serving benchmarks
 * and tests.
 *
 * Everything here is deterministic: prompts and arrival gaps are
 * drawn from the repo's portable PRNG (`dfx::Rng`), so the same
 * `WorkloadSpec` always produces bit-identical requests on every
 * platform. The Poisson generator additionally draws its exponential
 * inter-arrival gaps from the same uniform sequence at every offered
 * load, so sweeping the rate rescales one fixed arrival pattern —
 * latency-vs-load curves compare the *same* traffic at different
 * intensities instead of resampling noise per point.
 */
#ifndef DFX_APPLIANCE_WORKLOAD_HPP
#define DFX_APPLIANCE_WORKLOAD_HPP

#include <vector>

#include "appliance/server.hpp"

namespace dfx {

/** Shape and seed of a synthetic serving workload. */
struct WorkloadSpec
{
    size_t nRequests = 8;
    size_t nIn = 8;    ///< prompt tokens per request
    size_t nOut = 16;  ///< output tokens per request
    size_t vocab = 50257;  ///< prompt ids drawn uniformly below this
    uint64_t seed = 1;     ///< same seed -> bit-identical workload
};

/**
 * Open-loop Poisson traffic: exponential inter-arrival gaps at
 * `offered_rps` requests per simulated second (the first request
 * arrives after the first gap). Arrivals are non-decreasing. With a
 * fixed seed the underlying uniform draws are fixed, so
 * `arrival_i(rate) == arrival_i(1.0) / rate` exactly.
 */
std::vector<ServerRequest> poissonWorkload(const WorkloadSpec &spec,
                                           double offered_rps);

/**
 * Workload replaying an explicit arrival-time trace: one request per
 * entry of `arrival_seconds` (overriding `spec.nRequests`). Arrivals
 * may be in any order; each must be finite and non-negative.
 */
std::vector<ServerRequest> traceWorkload(
    const WorkloadSpec &spec,
    const std::vector<double> &arrival_seconds);

/**
 * Closed-loop pool: every request arrives at t=0 (the pre-arrival
 * serving model — PR-2-style batch drains).
 */
std::vector<ServerRequest> batchWorkload(const WorkloadSpec &spec);

/**
 * Imbalanced pool for the work-stealing scenario: all requests
 * arrive at t=0, but requests whose submission id lands on cluster 0
 * of an `n_clusters`-wide round-robin (id % n_clusters == 0) ask for
 * `long_factor * spec.nOut` output tokens while the rest ask for
 * `spec.nOut`. Under static placement cluster 0 becomes the
 * straggler while the other clusters sit idle — the gap work
 * stealing exists to close.
 */
std::vector<ServerRequest> imbalancedWorkload(const WorkloadSpec &spec,
                                              size_t n_clusters,
                                              size_t long_factor);

}  // namespace dfx

#endif  // DFX_APPLIANCE_WORKLOAD_HPP
