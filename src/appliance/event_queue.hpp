/**
 * @file
 * Indexed event queue for the fleet discrete-event simulation.
 *
 * A binary heap of `{time, kind, node, ...}` events replaces the
 * per-round linear scans of the single-server scheduler: each pop is
 * O(log n) in the number of outstanding events, so a 10^5-request
 * Poisson sweep across a multi-node fleet stays affordable on the
 * host (the per-event cost no longer grows with the request count).
 *
 * Ordering is total and deterministic. Events fire earliest-time
 * first; ties at the same instant are broken by kind — fail-stops
 * before arrivals before KV-transfer completions before round
 * boundaries, preserving the PR-6 rule that a fault scheduled at a
 * round's start time is applied *before* that round — then by node
 * index, then by insertion order (a monotone sequence number), so two
 * runs that push the same events pop them in the same order on any
 * host.
 */
#ifndef DFX_APPLIANCE_EVENT_QUEUE_HPP
#define DFX_APPLIANCE_EVENT_QUEUE_HPP

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hpp"

namespace dfx {

/** What a fleet event does when it fires. Enumerator values define
 *  the same-instant priority (lower fires first). */
enum class FleetEventKind : uint8_t
{
    FailStop = 0,      ///< apply a fault-plan fail-stop to a node
    Arrival = 1,       ///< a request reaches the front-end router
    TransferDone = 2,  ///< prefilled KV lands on a decode node
    Round = 3,         ///< a cluster's next batched-round boundary
};

/** One scheduled event. `node` is the fleet node it targets; `sub`
 *  subdivides the node (cluster index for Round events); `payload`
 *  is kind-specific (request id, fault-plan index). */
struct FleetEvent
{
    double time = 0.0;
    FleetEventKind kind = FleetEventKind::Round;
    uint32_t node = 0;
    uint32_t sub = 0;
    uint64_t payload = 0;
    /** Insertion order; breaks any remaining tie so pop order is a
     *  total order independent of heap internals. */
    uint64_t seq = 0;
};

/** `true` when `a` must fire before `b`. */
inline bool
fleetEventBefore(const FleetEvent &a, const FleetEvent &b)
{
    if (a.time != b.time)
        return a.time < b.time;
    if (a.kind != b.kind)
        return a.kind < b.kind;
    if (a.node != b.node)
        return a.node < b.node;
    return a.seq < b.seq;
}

/**
 * Min-heap of fleet events with the deterministic ordering above.
 * Push and pop are O(log n); top is O(1).
 */
class FleetEventQueue
{
  public:
    void
    push(double time, FleetEventKind kind, uint32_t node, uint32_t sub = 0,
         uint64_t payload = 0)
    {
        DFX_ASSERT(std::isfinite(time) && time >= 0.0,
                   "event time must be finite and non-negative");
        heap_.push_back({time, kind, node, sub, payload, nextSeq_++});
        std::push_heap(heap_.begin(), heap_.end(), after);
        ++pushes_;
    }

    /** The next event to fire; fatal when empty. */
    const FleetEvent &
    top() const
    {
        DFX_ASSERT(!heap_.empty(), "top() on an empty event queue");
        return heap_.front();
    }

    FleetEvent
    pop()
    {
        DFX_ASSERT(!heap_.empty(), "pop() on an empty event queue");
        std::pop_heap(heap_.begin(), heap_.end(), after);
        FleetEvent e = heap_.back();
        heap_.pop_back();
        return e;
    }

    bool empty() const { return heap_.empty(); }
    size_t size() const { return heap_.size(); }
    /** Total events ever pushed (DES work accounting). */
    uint64_t pushCount() const { return pushes_; }

  private:
    // std::push_heap builds a max-heap under the comparator, so the
    // comparator is "fires later": the heap front is the earliest.
    static bool
    after(const FleetEvent &a, const FleetEvent &b)
    {
        return fleetEventBefore(b, a);
    }

    std::vector<FleetEvent> heap_;
    uint64_t nextSeq_ = 0;
    uint64_t pushes_ = 0;
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_EVENT_QUEUE_HPP
