/**
 * @file
 * KvLease implementation (out of line: the lease releases through
 * DfxCluster, which includes this header).
 */
#include "appliance/kv_lease.hpp"

#include "appliance/cluster.hpp"
#include "common/logging.hpp"

namespace dfx {

KvLease::KvLease(DfxCluster *cluster, size_t ctx, size_t shared_tokens)
    : cluster_(cluster), ctx_(ctx), sharedTokens_(shared_tokens)
{
}

KvLease::KvLease(KvLease &&other) noexcept
    : cluster_(other.cluster_), ctx_(other.ctx_),
      sharedTokens_(other.sharedTokens_)
{
    other.cluster_ = nullptr;
}

KvLease &
KvLease::operator=(KvLease &&other) noexcept
{
    if (this != &other) {
        release();
        cluster_ = other.cluster_;
        ctx_ = other.ctx_;
        sharedTokens_ = other.sharedTokens_;
        other.cluster_ = nullptr;
    }
    return *this;
}

KvLease::~KvLease()
{
    release();
}

size_t
KvLease::ctx() const
{
    DFX_ASSERT(cluster_ != nullptr, "ctx() on an empty KV lease");
    return ctx_;
}

void
KvLease::release()
{
    if (cluster_ == nullptr)
        return;
    cluster_->closeLease(ctx_);
    cluster_ = nullptr;
}

}  // namespace dfx
