/**
 * @file
 * RAII lease on one KV context of a DfxCluster.
 *
 * The lease is the only way to claim a KV context (the raw
 * acquire/release index protocol of earlier PRs is gone). A
 * `KvLeaseRequest` describes the request up front
 * (prompt tokens, how many new tokens it may generate, whether it may
 * alias a shared prefix), so admission can do real capacity
 * accounting: on a paged cluster the lease is granted only when the
 * block pool can hold the whole request, and the granted lease
 * carries `sharedTokens()` — how many leading prompt tokens are
 * already resident via prefix sharing, which prefill may skip.
 *
 * The lease releases its context on destruction, so failover and
 * error paths cannot leak KV slots the way hand-maintained index
 * bookkeeping could.
 */
#ifndef DFX_APPLIANCE_KV_LEASE_HPP
#define DFX_APPLIANCE_KV_LEASE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfx {

class DfxCluster;

/** What a request needs from a KV context, stated at admission. */
struct KvLeaseRequest
{
    std::vector<int32_t> prompt;
    size_t newTokens = 0;    ///< output tokens the request may generate
    /** Allow aliasing a previously registered prompt prefix (paged
     *  clusters only; purely a capacity/TTFT optimization — tokens
     *  are identical either way). */
    bool sharePrefix = true;
};

/**
 * Move-only owner of one KV context. Falsy when empty (moved-from,
 * default-constructed, or a failed tryAcquireLease).
 */
class KvLease
{
  public:
    KvLease() = default;
    KvLease(KvLease &&other) noexcept;
    KvLease &operator=(KvLease &&other) noexcept;
    KvLease(const KvLease &) = delete;
    KvLease &operator=(const KvLease &) = delete;
    ~KvLease();

    explicit operator bool() const { return cluster_ != nullptr; }

    /** Leased context index (for stepToken/ContextStep); fatal when
     *  empty. */
    size_t ctx() const;

    /** Leading prompt tokens already resident via prefix sharing; the
     *  context's position starts here, so prefill resumes after them. */
    size_t sharedTokens() const { return sharedTokens_; }

    /** Returns the context to the cluster now; idempotent. */
    void release();

  private:
    friend class DfxCluster;
    KvLease(DfxCluster *cluster, size_t ctx, size_t shared_tokens);

    DfxCluster *cluster_ = nullptr;
    size_t ctx_ = 0;
    size_t sharedTokens_ = 0;
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_KV_LEASE_HPP
