/**
 * @file
 * Homogeneous multi-FPGA cluster (paper §IV-B).
 *
 * Owns N compute cores, their per-core program builders, and the ring
 * network. `stepToken` runs one token through all decoder layers:
 * every phase executes on all cores (identical structure, different
 * shards), and at each trailing `sync` the cluster performs the ring
 * all-gather — exchanging real register-file segments in functional
 * mode and charging (N-1) hop times in both modes.
 */
#ifndef DFX_APPLIANCE_CLUSTER_HPP
#define DFX_APPLIANCE_CLUSTER_HPP

#include <memory>
#include <vector>

#include "appliance/kv_lease.hpp"
#include "appliance/partition.hpp"
#include "common/threadpool.hpp"
#include "core/core.hpp"
#include "isa/codegen.hpp"
#include "isa/program_cache.hpp"
#include "memory/kv_pager.hpp"
#include "model/weight_store.hpp"
#include "network/ring.hpp"
#include "perf/host_profile.hpp"

namespace dfx {

/**
 * Paged-KV configuration. When enabled, the per-context K/V^T regions
 * become fixed-size token blocks drawn from a per-layer pool, mapped
 * through per-context block tables (see memory/kv_pager.hpp):
 * capacity follows actual request lengths instead of kvContexts *
 * maxSeq, and requests sharing a prompt prefix alias physical blocks
 * copy-on-write. Tokens and 1-in-flight timing are bit-identical to
 * the unpaged layout — codegen's virtual KV addressing (and the
 * PR-3 channel pinning) is unchanged; only the functional backing
 * store indirects through the block table.
 */
struct PagedKvConfig
{
    bool enabled = false;
    /** Tokens per block; must divide the model's maxSeq. */
    size_t blockTokens = 16;
    /**
     * Physical blocks per layer per core. 0 sizes the pool at
     * kvContexts * maxSeq / blockTokens — the same HBM footprint the
     * unpaged layout would allocate (kvContexts then counts virtual
     * block tables, so more can be configured than the pool could
     * hold fully expanded).
     */
    size_t physBlocks = 0;
    /** Alias identical prompt prefixes across contexts (CoW). */
    bool prefixSharing = true;
    /** Registered shared prefixes kept resident (FIFO). */
    size_t maxPrefixEntries = 8;
};

/** Configuration of a DFX system (cluster + cores + ring). */
struct DfxSystemConfig
{
    GptConfig model;
    size_t nCores = 4;
    CoreParams core = CoreParams::defaults();
    RingParams ring;
    /** Allocate data planes and compute real tokens. */
    bool functional = false;
    /**
     * Resident KV cache contexts: how many requests can hold their
     * conversation state in off-chip memory concurrently. Each context
     * owns an isolated K/V^T region per layer, so the serving
     * scheduler can interleave decode steps across requests without
     * evicting anything. 1 reproduces the paper's single-stream
     * appliance.
     */
    size_t kvContexts = 1;
    /**
     * Host worker threads stepping independent cores concurrently
     * between ring synchronization points. 0 picks the hardware
     * concurrency; 1 runs strictly sequentially. Results are
     * bit-identical for every value (cores share no mutable state
     * between syncs and stats reduce in core order).
     */
    size_t nThreads = 1;
    /**
     * Round-trip every phase program through the 56-byte binary
     * encoding before execution, as the host-to-instruction-buffer
     * PCIe path does. Costs a little host time; proves the encoding
     * carries full semantics. Off by default.
     */
    bool binaryInstructionPath = false;
    /**
     * Compile once, patch per token: fetch each (phase kind, layer,
     * core) program from a keyed template cache and rewrite only the
     * step-dependent operand slots, instead of re-running codegen
     * every decode step. Patched programs are bit-identical to fresh
     * codegen for any (position, context, block) permutation —
     * disabling this is the A/B reference, not a semantic change.
     */
    bool programCache = true;
    /**
     * Paged KV cache (see PagedKvConfig). Off by default: the unpaged
     * per-context regions of the earlier PRs.
     */
    PagedKvConfig pagedKv;
    /**
     * Shared on-demand weight image (functional mode). When set, every
     * cluster built from this config binds its weight regions to the
     * store at construction — no `loadWeights` call, no per-core or
     * per-cluster weight copies, and tensors are generated on first
     * touch (bit-identical to the eager `GptWeights::random` +
     * `loadWeights` path). Create with `makeWeightStore`; clusters of
     * one server share the image through their config copies. Must
     * match `model`, `nCores` and `core.lanes`.
     */
    std::shared_ptr<WeightStore> weightStore;
};

/**
 * Builds the shared weight store for `config`'s model and geometry,
 * seeded with `seed`. Assign the result to
 * `DfxSystemConfig::weightStore` before constructing the appliance;
 * appliances/servers sharing the pointer share one weight image.
 */
std::shared_ptr<WeightStore> makeWeightStore(const DfxSystemConfig &config,
                                             uint64_t seed);

/** Timing/attribution record for one token step. */
struct TokenStats
{
    double seconds = 0.0;
    std::array<double, kNumCategories> categorySeconds{};
    double flops = 0.0;
    uint64_t hbmBytes = 0;
    uint64_t ddrBytes = 0;
    uint64_t instructions = 0;
    /**
     * Seconds of this step spent stalled on shared weight streams — an
     * upper bound on what a batch-mate saves when its step shares the
     * stream (see PhaseStats::weightReuseCycles).
     */
    double weightReuseSeconds = 0.0;
    /**
     * Seconds of this step spent stalled on channel-pinned per-request
     * (K/V) streams; in a batched round this wait moves to the
     * per-channel occupancy ledger instead of the serial charge
     * (see PhaseStats::privateStreamCycles).
     */
    double privateStreamSeconds = 0.0;
    /**
     * Per-channel HBM occupancy of the step, split into shared weight
     * traffic (streamed once per batched round) and private K/V
     * traffic (accumulates across batch-mates). Taken from the slowest
     * core; cores run structurally identical programs so the profiles
     * agree across the cluster.
     */
    std::array<double, kHbmChannels> hbmSharedChannelSeconds{};
    std::array<double, kHbmChannels> hbmPrivateChannelSeconds{};

    void accumulate(const TokenStats &other);
};

/**
 * Roofline accounting of one batched (multi-context) round.
 *
 * The serial bound charges the first step in full and every batch-mate
 * its critical path minus the streaming it no longer waits for (shared
 * weights are already flowing; its private K/V traffic overlaps other
 * mates' compute). The channel bound is the per-channel occupancy of
 * the round: the shared weight stripe once, plus every step's private
 * streams on the channels their regions are pinned to. The round takes
 * the slower of the two — disjoint K/V channel sets overlap freely,
 * overlapping sets serialize on their shared channels.
 */
struct BatchRoundTiming
{
    double serialSeconds = 0.0;        ///< amortized serial charge sum
    double channelBoundSeconds = 0.0;  ///< max per-channel occupancy
    double chargedSeconds = 0.0;       ///< round total: max of the two
    std::vector<double> stepChargeSeconds;  ///< per-step serial charges
};

/**
 * Combines per-step stats into one batched round (exposed for tests;
 * `DfxCluster::stepTokenBatch` is the production caller). A
 * single-step "round" is charged exactly its own seconds.
 */
BatchRoundTiming combineBatchRound(const std::vector<TokenStats> &steps);

/** One entry of a batched (multi-context) token step. */
struct ContextStep
{
    size_t ctx = 0;      ///< KV context the step runs in
    int32_t token = 0;   ///< input token for that context
};

/** A cluster of DFX cores executing one model with intra-layer
 *  parallelism. */
class DfxCluster
{
  public:
    explicit DfxCluster(const DfxSystemConfig &config);

    /** Loads partitioned weights into every core (functional mode). */
    void loadWeights(const GptWeights &weights);

    /** Clears every conversation (all KV positions back to zero). */
    void reset();

    /** Clears one context's conversation. */
    void resetContext(size_t ctx);

    // --- KV context leases (multi-request residency) ------------------
    size_t kvContexts() const { return positions_.size(); }
    size_t freeContexts() const;

    /**
     * Claims a KV context for the described request. Unpaged: takes
     * the first free slot (position 0, no shared prefix). Paged: also
     * reserves enough pool blocks for prompt + newTokens, aliasing a
     * registered shared prefix when possible — the lease's
     * `sharedTokens()` prompt tokens are already resident and the
     * context's position starts after them. Returns an empty (falsy)
     * lease when slots or blocks are exhausted.
     */
    KvLease tryAcquireLease(const KvLeaseRequest &request);

    /** tryAcquireLease, but fatal instead of empty on exhaustion. */
    KvLease acquireLease(const KvLeaseRequest &request);

    /** Block pager of a paged cluster (stats/tests); null unpaged. */
    KvPager *pager() { return pager_.get(); }
    const KvPager *pager() const { return pager_.get(); }

    size_t position() const { return positions_[0]; }
    size_t position(size_t ctx) const { return positions_.at(ctx); }
    size_t nCores() const { return config_.nCores; }
    const DfxSystemConfig &config() const { return config_; }
    const MemoryLayout &layout() const { return layout_; }
    ComputeCore &core(size_t i) { return *cores_[i]; }

    /**
     * Processes one token through embedding, all decoder layers and
     * the LM head. Returns the argmax next token in functional mode,
     * or -1 in timing-only mode. `stats`, when given, receives the
     * step's timing and attribution. Steps context 0.
     */
    int32_t stepToken(int32_t token, TokenStats *stats);

    /** stepToken against an explicit KV context. */
    int32_t stepToken(size_t ctx, int32_t token, TokenStats *stats);

    /**
     * Steps several contexts as one batched round: functionally each
     * entry executes exactly as a lone stepToken would (per-request
     * tokens are bit-identical to serial execution by construction),
     * but the charged time follows the per-channel roofline of
     * `combineBatchRound` — the first entry pays its full step cost,
     * every further entry pays its cost minus the streaming it shares
     * or overlaps (weight stripes flow once; its K/V streams run on
     * their own pinned channels), and the whole round is floored by
     * the per-channel occupancy bound, so contexts whose K/V sets
     * collide serialize on those channels. Contexts must be distinct.
     * Returns the next token per entry; `batch_stats` (optional)
     * receives the round total with category attribution scaled to
     * match (channel contention is attributed to self-attention).
     */
    std::vector<int32_t> stepTokenBatch(
        const std::vector<ContextStep> &steps, TokenStats *batch_stats);

    /**
     * Host wall-time breakdown accumulated over the cluster's decode
     * steps (codegen vs. patch vs. encode vs. execute) with the
     * program-cache hit counters folded in. Reset with
     * `resetHostProfile`.
     */
    perf::HostStepProfile hostProfile() const;
    void resetHostProfile();

    /** Program-template cache counters (hits/misses/evictions). */
    const isa::ProgramCache::Stats &programCacheStats() const
    {
        return programCache_.stats();
    }

  private:
    friend class KvLease;
    /** Returns a leased context (KvLease::release's target). */
    void closeLease(size_t ctx);

    /**
     * Runs one phase on all cores; adds time and handles its sync.
     * `encoded`, when given, is the phase's cached binary stream:
     * built on first use, reused (already patched) afterwards — the
     * fresh path passes null and re-encodes.
     */
    void runPhase(const isa::Phase &phase, size_t builder_core,
                  TokenStats *stats,
                  std::vector<uint8_t> *encoded = nullptr);
    /** Fetches (or compiles) the template for (kind, layer, core). */
    isa::CachedProgram &fetchProgram(isa::ProgramKind kind, size_t layer,
                                     size_t core);
    /** Patches a cached template (and its encoded streams) for a
     *  step's inputs. */
    void patchProgram(isa::CachedProgram &cached,
                      const isa::PatchInputs &in, size_t core);
    /**
     * Executes per-core programs concurrently (thread pool) or
     * sequentially, then reduces timing/attribution into `stats` in
     * core order — bit-identical for every thread count.
     */
    void executeOnCores(const std::vector<const isa::Program *> &programs,
                        TokenStats *stats);
    /** Performs the ring all-gather data exchange (functional). */
    void exchange(const isa::Instruction &sync);
    /** Performs the argmax all-reduce; returns the global token. */
    int32_t argmaxExchange(const isa::Instruction &sync);

    DfxSystemConfig config_;
    /** Paged-KV block pager; the cores' HBM translators point into it
     *  (declared first so it outlives them). Null when unpaged. */
    std::unique_ptr<KvPager> pager_;
    std::vector<std::unique_ptr<ComputeCore>> cores_;
    MemoryLayout layout_;
    std::vector<isa::ProgramBuilder> builders_;
    RingNetwork ring_;
    std::unique_ptr<ThreadPool> pool_;  ///< null when sequential
    std::vector<PhaseStats> coreStats_;  ///< per-core scratch
    std::vector<size_t> positions_;      ///< per-context KV position
    std::vector<bool> ctxInUse_;         ///< context slot occupancy
    int32_t lastArgmax_ = -1;
    /** Keyed template cache (compile once, patch per token). Touched
     *  only from the serialized stepping thread. */
    isa::ProgramCache programCache_;
    uint64_t layoutHash_ = 0;  ///< MemoryLayout::addressingHash()
    perf::HostStepProfile hostProfile_;
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_CLUSTER_HPP
