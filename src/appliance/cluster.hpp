/**
 * @file
 * Homogeneous multi-FPGA cluster (paper §IV-B).
 *
 * Owns N compute cores, their per-core program builders, and the ring
 * network. `stepToken` runs one token through all decoder layers:
 * every phase executes on all cores (identical structure, different
 * shards), and at each trailing `sync` the cluster performs the ring
 * all-gather — exchanging real register-file segments in functional
 * mode and charging (N-1) hop times in both modes.
 */
#ifndef DFX_APPLIANCE_CLUSTER_HPP
#define DFX_APPLIANCE_CLUSTER_HPP

#include <memory>
#include <vector>

#include "appliance/partition.hpp"
#include "common/threadpool.hpp"
#include "core/core.hpp"
#include "isa/codegen.hpp"
#include "network/ring.hpp"

namespace dfx {

/** Configuration of a DFX system (cluster + cores + ring). */
struct DfxSystemConfig
{
    GptConfig model;
    size_t nCores = 4;
    CoreParams core = CoreParams::defaults();
    RingParams ring;
    /** Allocate data planes and compute real tokens. */
    bool functional = false;
    /**
     * Host worker threads stepping independent cores concurrently
     * between ring synchronization points. 0 picks the hardware
     * concurrency; 1 runs strictly sequentially. Results are
     * bit-identical for every value (cores share no mutable state
     * between syncs and stats reduce in core order).
     */
    size_t nThreads = 1;
    /**
     * Round-trip every phase program through the 48-byte binary
     * encoding before execution, as the host-to-instruction-buffer
     * PCIe path does. Costs a little host time; proves the encoding
     * carries full semantics. Off by default.
     */
    bool binaryInstructionPath = false;
};

/** Timing/attribution record for one token step. */
struct TokenStats
{
    double seconds = 0.0;
    std::array<double, kNumCategories> categorySeconds{};
    double flops = 0.0;
    uint64_t hbmBytes = 0;
    uint64_t ddrBytes = 0;
    uint64_t instructions = 0;

    void accumulate(const TokenStats &other);
};

/** A cluster of DFX cores executing one model with intra-layer
 *  parallelism. */
class DfxCluster
{
  public:
    explicit DfxCluster(const DfxSystemConfig &config);

    /** Loads partitioned weights into every core (functional mode). */
    void loadWeights(const GptWeights &weights);

    /** Clears the conversation (KV position back to zero). */
    void reset() { position_ = 0; }

    size_t position() const { return position_; }
    size_t nCores() const { return config_.nCores; }
    const DfxSystemConfig &config() const { return config_; }
    const MemoryLayout &layout() const { return layout_; }
    ComputeCore &core(size_t i) { return *cores_[i]; }

    /**
     * Processes one token through embedding, all decoder layers and
     * the LM head. Returns the argmax next token in functional mode,
     * or -1 in timing-only mode. `stats`, when given, receives the
     * step's timing and attribution.
     */
    int32_t stepToken(int32_t token, TokenStats *stats);

  private:
    /** Runs one phase on all cores; adds time and handles its sync. */
    void runPhase(const isa::Phase &phase, size_t builder_core,
                  TokenStats *stats);
    /**
     * Executes per-core programs concurrently (thread pool) or
     * sequentially, then reduces timing/attribution into `stats` in
     * core order — bit-identical for every thread count.
     */
    void executeOnCores(const std::vector<const isa::Program *> &programs,
                        TokenStats *stats);
    /** Performs the ring all-gather data exchange (functional). */
    void exchange(const isa::Instruction &sync);
    /** Performs the argmax all-reduce; returns the global token. */
    int32_t argmaxExchange(const isa::Instruction &sync);

    DfxSystemConfig config_;
    std::vector<std::unique_ptr<ComputeCore>> cores_;
    MemoryLayout layout_;
    std::vector<isa::ProgramBuilder> builders_;
    RingNetwork ring_;
    std::unique_ptr<ThreadPool> pool_;  ///< null when sequential
    std::vector<PhaseStats> coreStats_;  ///< per-core scratch
    size_t position_ = 0;
    int32_t lastArgmax_ = -1;
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_CLUSTER_HPP
