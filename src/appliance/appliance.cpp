/**
 * @file
 * DFX appliance implementation.
 */
#include "appliance/appliance.hpp"

namespace dfx {

DfxAppliance::DfxAppliance(const DfxSystemConfig &config)
    : cluster_(config)
{
}

void
DfxAppliance::loadWeights(const GptWeights &weights)
{
    cluster_.loadWeights(weights);
}

GenerationResult
DfxAppliance::generate(const std::vector<int32_t> &prompt, size_t n_out)
{
    DFX_ASSERT(!prompt.empty(), "empty prompt");
    DFX_ASSERT(n_out >= 1, "need at least one output token");
    DFX_ASSERT(prompt.size() + n_out <= cluster_.config().model.maxSeq,
               "request %zu+%zu exceeds max context %zu", prompt.size(),
               n_out, cluster_.config().model.maxSeq);
    cluster_.reset();
    GenerationResult result;

    // Host -> device: input ids + system configuration (core count,
    // layer count, token counts; §V-A "Controller").
    result.pcieSeconds +=
        pcie_.transferSeconds(prompt.size() * 4 + 64);

    // --- Summarization stage: the input context, token by token ------
    int32_t next = -1;
    for (size_t i = 0; i < prompt.size(); ++i) {
        TokenStats stats;
        next = cluster_.stepToken(prompt[i], &stats);
        result.summarizationSeconds += stats.seconds;
        result.summarizationFlops += stats.flops;
        result.hbmBytes += stats.hbmBytes;
        result.instructions += stats.instructions;
        for (size_t c = 0; c < kNumCategories; ++c)
            result.categorySeconds[c] += stats.categorySeconds[c];
    }

    // --- Generation stage: feed each output token back ----------------
    for (size_t i = 0; i < n_out; ++i) {
        // In timing-only mode the argmax is unknown; use a synthetic
        // id (timing is token-value independent).
        int32_t tok = next >= 0 ? next : 0;
        result.tokens.push_back(tok);
        TokenStats stats;
        next = cluster_.stepToken(tok, &stats);
        result.generationSeconds += stats.seconds;
        result.generationFlops += stats.flops;
        result.hbmBytes += stats.hbmBytes;
        result.instructions += stats.instructions;
        for (size_t c = 0; c < kNumCategories; ++c)
            result.categorySeconds[c] += stats.categorySeconds[c];
    }

    // Device -> host: generated ids.
    result.pcieSeconds += pcie_.transferSeconds(n_out * 4);
    return result;
}

}  // namespace dfx
