/**
 * @file
 * DFX appliance implementation.
 */
#include "appliance/appliance.hpp"

namespace dfx {

DfxAppliance::DfxAppliance(const DfxSystemConfig &config)
    : cluster_(config)
{
}

void
DfxAppliance::loadWeights(const GptWeights &weights)
{
    cluster_.loadWeights(weights);
}

StepOutcome
DfxAppliance::prefill(size_t ctx, const std::vector<int32_t> &prompt)
{
    DFX_ASSERT(!prompt.empty(), "empty prompt");
    cluster_.resetContext(ctx);
    StepOutcome out;
    for (int32_t tok : prompt) {
        TokenStats stats;
        out.next = cluster_.stepToken(ctx, tok, &stats);
        out.stats.accumulate(stats);
    }
    return out;
}

StepOutcome
DfxAppliance::prefill(const KvLease &lease,
                      const std::vector<int32_t> &prompt)
{
    DFX_ASSERT(!prompt.empty(), "empty prompt");
    size_t ctx = lease.ctx();
    size_t start = cluster_.position(ctx);
    DFX_ASSERT(start == lease.sharedTokens(),
               "lease context %zu at position %zu, expected the %zu "
               "shared prompt tokens (prefill must run first)",
               ctx, start, lease.sharedTokens());
    DFX_ASSERT(start < prompt.size(),
               "%zu shared tokens but only a %zu-token prompt", start,
               prompt.size());
    StepOutcome out;
    for (size_t i = start; i < prompt.size(); ++i) {
        TokenStats stats;
        out.next = cluster_.stepToken(ctx, prompt[i], &stats);
        out.stats.accumulate(stats);
    }
    return out;
}

StepOutcome
DfxAppliance::decodeStep(size_t ctx, int32_t token)
{
    StepOutcome out;
    out.next = cluster_.stepToken(ctx, token, &out.stats);
    return out;
}

std::vector<int32_t>
DfxAppliance::stepBatch(const std::vector<ContextStep> &steps,
                        TokenStats *batch_stats)
{
    return cluster_.stepTokenBatch(steps, batch_stats);
}

GenerationResult
DfxAppliance::generate(const std::vector<int32_t> &prompt, size_t n_out)
{
    DFX_ASSERT(!prompt.empty(), "empty prompt");
    DFX_ASSERT(n_out >= 1, "need at least one output token");
    DFX_ASSERT(prompt.size() + n_out <= cluster_.config().model.maxSeq,
               "request %zu+%zu exceeds max context %zu", prompt.size(),
               n_out, cluster_.config().model.maxSeq);
    GenerationResult result;

    // Host -> device: input ids + system configuration (core count,
    // layer count, token counts; §V-A "Controller").
    result.pcieSeconds +=
        pcie_.transferSeconds(prompt.size() * 4 + 64);

    // Whole-request execution leases a context like any scheduler
    // would, but without prefix sharing: generate() is the canonical
    // timing path, so every prompt token is stepped and charged.
    KvLease lease = cluster_.acquireLease(
        {prompt, n_out, /*sharePrefix=*/false});
    size_t ctx = lease.ctx();

    // --- Summarization stage: the input context, token by token ------
    StepOutcome pre = prefill(lease, prompt);
    int32_t next = pre.next;
    result.summarizationSeconds = pre.stats.seconds;
    result.summarizationFlops = pre.stats.flops;
    result.hbmBytes += pre.stats.hbmBytes;
    result.instructions += pre.stats.instructions;
    for (size_t c = 0; c < kNumCategories; ++c)
        result.categorySeconds[c] += pre.stats.categorySeconds[c];

    // --- Generation stage: feed each output token back ----------------
    for (size_t i = 0; i < n_out; ++i) {
        // In timing-only mode the argmax is unknown; use a synthetic
        // id (timing is token-value independent).
        int32_t tok = next >= 0 ? next : 0;
        result.tokens.push_back(tok);
        StepOutcome step = decodeStep(ctx, tok);
        next = step.next;
        result.generationSeconds += step.stats.seconds;
        result.generationFlops += step.stats.flops;
        result.hbmBytes += step.stats.hbmBytes;
        result.instructions += step.stats.instructions;
        for (size_t c = 0; c < kNumCategories; ++c)
            result.categorySeconds[c] += step.stats.categorySeconds[c];
    }

    // Device -> host: generated ids.
    result.pcieSeconds += pcie_.transferSeconds(n_out * 4);
    return result;
}

}  // namespace dfx
