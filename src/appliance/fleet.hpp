/**
 * @file
 * Fleet-scale serving simulation: N server-equivalent nodes behind a
 * front-end router, driven by one indexed event queue.
 *
 * `DfxServer` models one chassis — a few clusters draining a shared
 * queue, every scheduling decision found by scanning all clusters for
 * their next round boundary. That linear scan is fine at chassis
 * scale and hopeless at fleet scale: the cloud deployment the paper
 * argues for (§VIII, "serving heavy traffic from millions of users")
 * needs 10^5–10^6-request sweeps across many nodes. `DfxFleet`
 * restructures the whole simulation as a discrete-event loop over a
 * binary-heap event queue (appliance/event_queue.hpp): round
 * boundaries, request arrivals, fault events and KV-transfer
 * completions are heap entries popped in deterministic global order,
 * so per-event cost is O(log outstanding-events) regardless of fleet
 * size or request count.
 *
 * **Front-end router.** Every request enters through the fleet router
 * at its arrival instant and is placed on a node by policy:
 * round-robin, least-loaded (fewest in-flight + waiting, ties by node
 * index), or projected-TTFT (least projected wait from the node's
 * observed per-slot turnaround). Fail-stops from the fleet-scope
 * `FaultPlan` (the `cluster` field indexes *nodes* here) displace a
 * dead node's requests back through the same router under the retry
 * budget, exactly like `DfxServer` failover but across nodes.
 *
 * **Prefill/decode disaggregation** (optional, per-node roles). A
 * `Prefill` node runs requests only through their summarization
 * stage; the finished KV cache is then handed to a decode-eligible
 * node over a modeled PCIe/ring link, charging transfer seconds from
 * the KV byte count (block-table granularity on paged clusters). The
 * decode node continues generation from the first token on. The
 * handoff is pure scheduling: the decode node rebuilds the identical
 * KV state (charged zero simulated time — the modeled machine moved
 * bytes, the simulator replays the prompt), so tokens are
 * bit-identical to a colocated run by construction.
 *
 * **Determinism invariant 10 (routing transparency).** For every
 * routing policy, every topology, and every fault plan that lets a
 * request complete, the request's tokens are bit-identical to a
 * serial single-node reference (`DfxAppliance::generate`): routing,
 * batching, disaggregation and failover decide *when and where* a
 * request runs, never *what* it generates. The DES runs entirely in
 * the calling thread of `serve()`, so placement, timestamps and stats
 * are a pure function of (workload, topology, options) — no host
 * thread timing anywhere.
 *
 * **Two node backends, one scheduler.**
 *  - *Full*: every node owns real `DfxAppliance` clusters
 *    (functional or timing-only). This is the reference backend:
 *    token identity is checked against it.
 *  - *Calibrated*: rounds charge `RoundCostModel` — a per-batch-size
 *    linear fit `seconds(B, position) = alpha_B + beta_B * position`
 *    measured once from timing-only probes of a real cluster. A
 *    10^5-request Poisson sweep is then pure event arithmetic and
 *    completes in host seconds; the scheduler code path (router,
 *    admission, rounds, faults, disaggregation) is shared with the
 *    full backend, so the calibrated sweep exercises the same logic
 *    the token-identity tests pin down.
 */
#ifndef DFX_APPLIANCE_FLEET_HPP
#define DFX_APPLIANCE_FLEET_HPP

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "appliance/event_queue.hpp"
#include "appliance/server.hpp"

namespace dfx {

/** What stage(s) of a request a node serves. */
enum class FleetNodeRole : uint8_t
{
    Both,     ///< colocated prefill + decode (the DfxServer behavior)
    Prefill,  ///< summarization only; hands finished KV to a decoder
    Decode,   ///< generation only; receives KV from prefill nodes
};

const char *toString(FleetNodeRole role);

/** Front-end placement policy for new arrivals (and for decode-node
 *  selection at each KV handoff). All are deterministic. */
enum class FleetRoutePolicy : uint8_t
{
    RoundRobin,     ///< cycle through eligible nodes in index order
    LeastLoaded,    ///< fewest in-flight + waiting; ties by node index
    ProjectedTtft,  ///< least projected wait (observed turnaround)
};

const char *toString(FleetRoutePolicy policy);

/** Shape of the fleet: `nNodes` nodes of `clustersPerNode` clusters
 *  each, optionally role-tagged for disaggregation. */
struct FleetTopology
{
    size_t nNodes = 1;
    size_t clustersPerNode = 1;
    /** Per-node role; empty = every node serves both stages. */
    std::vector<FleetNodeRole> roles;

    /** True when any node is stage-pinned. */
    bool disaggregated() const;
    /** Fatal on an ill-formed topology (zero sizes, role count
     *  mismatch, a disaggregated fleet missing either stage). */
    void validate() const;
};

/** Fleet serving policy knobs. */
struct FleetOptions
{
    FleetRoutePolicy policy = FleetRoutePolicy::LeastLoaded;

    /**
     * Fleet-scope fault schedule: `ClusterFailStop::cluster` (and the
     * slowdown `cluster` field) index *nodes* of the fleet, and a
     * fail-stop kills the whole node. Displaced requests re-enter the
     * router; an empty plan leaves the serve bit-identical to a
     * fault-free fleet.
     */
    FaultPlan faultPlan;

    /** Fail-stop re-prefills a request may survive before it surfaces
     *  as RequestOutcome::Failed (see ServerOptions::retryBudget). */
    size_t retryBudget = 2;

    /** SLO-aware shedding at round boundaries (off when 0); the
     *  DfxServer projection rule, applied per node. */
    double sloTtftBudgetSeconds = 0.0;

    /** Modeled prefill->decode KV handoff link (PCIe-class default,
     *  matching PcieModel). */
    double kvLinkBytesPerSec = 16e9;
    double kvLinkLatencySeconds = 5e-6;

    /** Host wall-clock ceiling for serve(), seconds; 0 disables. A
     *  wedged event loop fails loudly instead of spinning forever. */
    double serveDeadlineHostSeconds = 0.0;
};

/**
 * Calibrated per-round service model for the fast fleet backend:
 * `roundSeconds(B, p) = alpha[B-1] + beta[B-1] * p`, a linear fit in
 * mean KV position per batch size, measured from timing-only
 * `stepBatch` probes of a real cluster (attention cost is linear in
 * position; batch amortization is captured per B by construction).
 */
struct RoundCostModel
{
    size_t kvContexts = 1;  ///< slots per cluster (max batch size)
    size_t maxSeq = 0;
    std::vector<double> alpha;  ///< [B-1] intercept, seconds
    std::vector<double> beta;   ///< [B-1] slope, seconds per position
    /** Host-link cost parameters (admission upload, retirement
     *  download), matching PcieModel. */
    double pcieBytesPerSec = 16e9;
    double pcieLatencySeconds = 5e-6;
    /** Resident KV bytes per token (K row + V^T column per layer,
     *  FP16): 4 * layers * embedding. */
    uint64_t perTokenKvBytes = 0;
    /** KV block granularity for transfer byte counts (1 = unpaged). */
    size_t blockTokens = 1;

    /** Charged seconds of a batched round of `batch` steps at mean KV
     *  position `meanPosition`. */
    double roundSeconds(size_t batch, double meanPosition) const;
    /** Host PCIe charge for `bytes` (latency + bandwidth). */
    double pcieSeconds(uint64_t bytes) const;
    /** Fatal unless the model is well-formed and fully fitted. */
    void validate() const;

    /**
     * Fits the model by probing a timing-only cluster built from
     * `config` (functional data planes are never allocated): for each
     * batch size B in 1..kvContexts, one batched round is measured
     * near position 0 and one near maxSeq/2, and the two-point fit
     * gives (alpha_B, beta_B). Deterministic: same config, same model.
     */
    static RoundCostModel calibrate(const DfxSystemConfig &config);
};

/** Per-node counters for one serve. */
struct FleetNodeStats
{
    FleetNodeRole role = FleetNodeRole::Both;
    ClusterHealth health = ClusterHealth::Healthy;
    size_t requestsServed = 0;  ///< retired on this node
    /** Requests this node received through failover rerouting. */
    size_t requestsRerouted = 0;
    /** Simulated seconds inside token rounds, summed over clusters. */
    double busySeconds = 0.0;
    /** busySeconds / (makespan * clustersPerNode); 0 when empty. */
    double utilization = 0.0;
    size_t kvTransfersOut = 0;  ///< prefill handoffs initiated here
    size_t kvTransfersIn = 0;   ///< handoffs admitted here
};

/** Result of one fleet serve. */
struct FleetStats
{
    size_t requests = 0;
    size_t completedRequests = 0;
    size_t totalOutputTokens = 0;
    double makespanSeconds = 0.0;
    double totalLatencySeconds = 0.0;
    double p99LatencySeconds = 0.0;
    double ttftMeanSeconds = 0.0;
    double ttftP99Seconds = 0.0;
    double queueDelayMeanSeconds = 0.0;
    double queueDelayP99Seconds = 0.0;
    size_t totalFailovers = 0;
    size_t totalRetries = 0;
    size_t totalShed = 0;
    size_t totalFailed = 0;
    size_t requeuedTokens = 0;
    /** Prefill->decode KV handoffs: count, modeled bytes moved, and
     *  summed modeled transfer seconds. */
    size_t kvTransfers = 0;
    uint64_t kvTransferBytes = 0;
    double kvTransferSeconds = 0.0;
    /** Events popped from the indexed queue (DES work measure). */
    uint64_t eventsProcessed = 0;
    std::vector<FleetNodeStats> nodes;
    /**
     * Per-request outcomes by submission id. `RequestResult::cluster`
     * holds the *node* that retired the request; `stolen` marks a
     * failover reroute. In the calibrated backend `tokens` is empty
     * (token counts are still exact).
     */
    std::vector<RequestResult> results;

    double
    throughputTokensPerSec() const
    {
        return makespanSeconds > 0.0
                   ? static_cast<double>(totalOutputTokens) /
                         makespanSeconds
                   : 0.0;
    }

    double
    meanLatencySeconds() const
    {
        return completedRequests > 0
                   ? totalLatencySeconds /
                         static_cast<double>(completedRequests)
                   : 0.0;
    }
};

/**
 * A fleet of serving nodes behind one front-end router, simulated by
 * a single-threaded discrete-event loop (see file header). Not
 * thread-safe; serve() runs in the calling thread.
 */
class DfxFleet
{
  public:
    /** Full backend: every node owns `topology.clustersPerNode` real
     *  appliances built from `config`. Share a weight store through
     *  the config to keep one weight image fleet-wide. */
    DfxFleet(const DfxSystemConfig &config, const FleetTopology &topology,
             FleetOptions options = {});

    /** Calibrated backend: rounds charge `model`; no appliances. */
    DfxFleet(const RoundCostModel &model, const FleetTopology &topology,
             FleetOptions options = {});

    DfxFleet(const DfxFleet &) = delete;
    DfxFleet &operator=(const DfxFleet &) = delete;

    /** Loads the same weights into every cluster of every node (full
     *  functional backend only). */
    void loadWeights(const GptWeights &weights);

    /**
     * Serves `requests` (arrival timestamps relative to t=0) to
     * completion and returns the epoch's statistics. Resets all
     * simulated state first, so repeated calls are independent
     * epochs; results are a pure function of the arguments.
     */
    FleetStats serve(const std::vector<ServerRequest> &requests);

    size_t nNodes() const { return nodes_.size(); }
    size_t clustersPerNode() const { return topology_.clustersPerNode; }
    bool calibratedBackend() const { return calibrated_; }
    const FleetTopology &topology() const { return topology_; }
    const FleetOptions &options() const { return options_; }

  private:
    /** A request anywhere in the fleet: waiting, in flight, or in
     *  KV transit between nodes. */
    struct Slot
    {
        uint64_t id = 0;
        ServerRequest request;
        size_t node = 0;        ///< current placement
        bool rerouted = false;  ///< moved by failover at least once
        /** Earliest simulated instant the slot may be admitted at its
         *  current node (arrival; transfer completion; failure time
         *  for displaced requests). */
        double readySim = 0.0;
        KvLease lease;  ///< full backend, while in flight
        size_t fed = 0;
        int32_t next = -1;
        std::vector<int32_t> out;  ///< full backend
        size_t outCount = 0;       ///< tokens generated (both backends)
        size_t position = 0;       ///< KV position (calibrated backend)
        size_t retries = 0;
        bool handedOff = false;  ///< decode stage, KV arrived by wire
        double admitSim = 0.0;
        double firstTokenSim = -1.0;
    };

    struct ClusterState
    {
        std::unique_ptr<DfxAppliance> appliance;  ///< null calibrated
        std::vector<Slot> inflight;
        double clock = 0.0;
        bool roundScheduled = false;
        double busySeconds = 0.0;
    };

    struct NodeState
    {
        FleetNodeRole role = FleetNodeRole::Both;
        ClusterHealth health = ClusterHealth::Healthy;
        std::vector<ClusterState> clusters;
        /** Waiting requests, sorted by (readySim, id). */
        std::deque<Slot> pending;
        size_t served = 0;
        double serviceSum = 0.0;
        size_t rerouted = 0;
        size_t kvTransfersOut = 0;
        size_t kvTransfersIn = 0;
    };

    void construct(const FleetTopology &topology,
                   const DfxSystemConfig *config);
    void resetEpoch();
    /** Slots per cluster: kvContexts of the backing config/model. */
    size_t maxInFlight() const { return maxInFlight_; }
    size_t nodeLoad(size_t n) const;
    /** Router: pick a healthy node eligible for `role` work by the
     *  configured policy; nNodes() when none qualifies. `decode`
     *  selects decode-eligible nodes (KV handoff), otherwise
     *  prefill-eligible (new arrivals, failover). */
    size_t routeTarget(bool decode);
    /** Insert into `n`'s pending queue (sorted) and make sure each of
     *  its clusters has a round scheduled to pick the work up. */
    void enqueueOnNode(size_t n, Slot slot);
    void scheduleRound(size_t n, size_t c, double t);
    void handleArrival(const FleetEvent &ev);
    void handleFailStop(const FleetEvent &ev);
    void handleTransferDone(const FleetEvent &ev);
    void handleRound(const FleetEvent &ev);
    bool tryAdmit(size_t n, size_t c);
    void shedOverBudget(size_t n, double t);
    /** Begin the KV handoff of a just-prefilled slot. */
    void startHandoff(size_t n, size_t c, Slot slot, double t);
    void recordTerminal(Slot slot, size_t n, RequestOutcome outcome,
                        double t);
    void retire(size_t n, size_t c, Slot slot);
    /** Modeled resident KV bytes of a `tokens`-token context, at
     *  block granularity when paged. */
    uint64_t kvBytes(size_t tokens) const;
    double pcieSeconds(uint64_t bytes) const;
    std::string wedgeReport() const;

    FleetTopology topology_;
    FleetOptions options_;
    bool calibrated_ = false;
    RoundCostModel model_;  ///< calibrated backend only
    size_t maxInFlight_ = 1;
    uint64_t perTokenKvBytes_ = 0;
    size_t kvBlockTokens_ = 1;

    /** Deque, not vector: NodeState holds a std::deque (whose move
     *  ctor is not noexcept on libstdc++), and deque growth never
     *  relocates elements, so no move/copy is ever required. */
    std::deque<NodeState> nodes_;
    FleetEventQueue queue_;
    /** Slots mid-handoff, keyed by request id (deterministic order). */
    std::map<uint64_t, Slot> transit_;
    std::vector<RequestResult> results_;
    std::vector<bool> failStopApplied_;
    uint64_t submitted_ = 0;
    uint64_t completed_ = 0;
    size_t failovers_ = 0;
    size_t retries_ = 0;
    size_t shed_ = 0;
    size_t failed_ = 0;
    size_t requeuedTokens_ = 0;
    size_t kvTransfers_ = 0;
    uint64_t kvTransferBytes_ = 0;
    double kvTransferSeconds_ = 0.0;
    uint64_t eventsProcessed_ = 0;
    size_t rrArrival_ = 0;  ///< round-robin cursors (deterministic)
    size_t rrDecode_ = 0;
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_FLEET_HPP
