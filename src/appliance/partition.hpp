/**
 * @file
 * Model-parallel weight partitioner (paper §IV-B, Fig. 6).
 *
 * Intra-layer parallelism: Q/K/V weights are divided head-wise (each
 * core keeps the columns of its contiguous head group), the attention
 * projection and both FFN matrices are divided column-wise, and the
 * LM head is divided vocabulary-wise. LayerNorm parameters, biases'
 * shards, and the embedding tables are placed in DDR per the memory
 * mapping. Each core receives only its shard — summed over cores the
 * partitions reconstruct the full model exactly (tested).
 *
 * This is the *eager copy* loader for `GptWeights`. The shared-store
 * path (`MemoryLayout::bindWeightStore`) produces the same per-core
 * bytes without copying: each core's regions alias the appliance's
 * weight image, whose shard-major layout mirrors exactly what this
 * partitioner writes.
 */
#ifndef DFX_APPLIANCE_PARTITION_HPP
#define DFX_APPLIANCE_PARTITION_HPP

#include "core/core.hpp"
#include "memory/layout.hpp"
#include "model/weights.hpp"

namespace dfx {

/** Writes one core's weight shard into its HBM/DDR devices. */
class Partitioner
{
  public:
    Partitioner(const GptWeights &weights, const ClusterGeometry &geometry,
                size_t lanes);

    /**
     * Populates `core`'s memories according to `layout`. `core_id`
     * selects the shard (column/head/vocab range).
     */
    void load(ComputeCore &core, const MemoryLayout &layout,
              size_t core_id) const;

  private:
    /** Writes columns [c0, c0+n) of `m` row-major to `mem` at `addr`. */
    static void writeColSlice(OffchipMemory &mem, uint64_t addr,
                              const MatH &m, size_t c0, size_t n);
    /** Writes elements [c0, c0+n) of `v` to `mem` at `addr`. */
    static void writeVecSlice(OffchipMemory &mem, uint64_t addr,
                              const VecH &v, size_t c0, size_t n);
    /** Writes all of `v`. */
    static void writeVec(OffchipMemory &mem, uint64_t addr, const VecH &v);

    const GptWeights &weights_;
    ClusterGeometry geometry_;
    size_t lanes_;
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_PARTITION_HPP
