/**
 * @file
 * Cluster orchestration implementation.
 */
#include "appliance/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "isa/encoding.hpp"
#include "network/router.hpp"
#include "perf/trace.hpp"

namespace dfx {
namespace {

/** Wall-clock for the host step profile (negligible vs. phase cost). */
double
hostNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

void
TokenStats::accumulate(const TokenStats &other)
{
    seconds += other.seconds;
    for (size_t i = 0; i < categorySeconds.size(); ++i)
        categorySeconds[i] += other.categorySeconds[i];
    flops += other.flops;
    hbmBytes += other.hbmBytes;
    ddrBytes += other.ddrBytes;
    instructions += other.instructions;
    weightReuseSeconds += other.weightReuseSeconds;
    privateStreamSeconds += other.privateStreamSeconds;
    for (size_t c = 0; c < kHbmChannels; ++c) {
        hbmSharedChannelSeconds[c] += other.hbmSharedChannelSeconds[c];
        hbmPrivateChannelSeconds[c] += other.hbmPrivateChannelSeconds[c];
    }
}

BatchRoundTiming
combineBatchRound(const std::vector<TokenStats> &steps)
{
    BatchRoundTiming round;
    std::array<double, kHbmChannels> channel{};
    for (size_t i = 0; i < steps.size(); ++i) {
        const TokenStats &s = steps[i];
        double charge = s.seconds;
        if (i > 0) {
            // Batch-mate: its shared weight streams are already
            // flowing and its private K/V streams move to the channel
            // ledger below, so it serializes only its remaining
            // (compute/sync/DDR) critical path.
            charge -= std::min(
                s.weightReuseSeconds + s.privateStreamSeconds,
                s.seconds);
        }
        round.stepChargeSeconds.push_back(charge);
        round.serialSeconds += charge;
        for (size_t c = 0; c < kHbmChannels; ++c) {
            channel[c] += s.hbmPrivateChannelSeconds[c];
            if (i == 0)
                channel[c] += s.hbmSharedChannelSeconds[c];
        }
    }
    for (double c : channel)
        round.channelBoundSeconds = std::max(round.channelBoundSeconds, c);
    // A lone step keeps its exact serial timing; the channel roofline
    // only arbitrates between concurrently resident contexts.
    round.chargedSeconds =
        steps.size() > 1
            ? std::max(round.serialSeconds, round.channelBoundSeconds)
            : round.serialSeconds;
    return round;
}

std::shared_ptr<WeightStore>
makeWeightStore(const DfxSystemConfig &config, uint64_t seed)
{
    return WeightStore::create(WeightSpec{config.model, seed},
                               config.nCores, config.core.lanes);
}

DfxCluster::DfxCluster(const DfxSystemConfig &config)
    : config_(config), ring_(config.ring, config.nCores)
{
    config_.model.validate();
    DFX_ASSERT(config_.kvContexts >= 1,
               "cluster needs at least one KV context");
    ClusterGeometry geometry{config_.nCores};
    geometry.validateFor(config_.model);

    // Paged KV: one pager drives every core's block translation (the
    // cores are KV mirrors — same addresses, same block tables).
    if (config_.pagedKv.enabled) {
        KvPager::Config pc;
        pc.blockTokens = config_.pagedKv.blockTokens;
        pc.maxContexts = config_.kvContexts;
        pc.maxSeq = config_.model.maxSeq;
        pc.localHeads = geometry.localHeads(config_.model);
        pc.headDim = config_.model.headDim;
        pc.layers = config_.model.layers;
        pc.prefixSharing = config_.pagedKv.prefixSharing;
        pc.maxPrefixEntries = config_.pagedKv.maxPrefixEntries;
        pc.physBlocks =
            config_.pagedKv.physBlocks != 0
                ? config_.pagedKv.physBlocks
                : config_.kvContexts *
                      (config_.model.maxSeq / pc.blockTokens);
        pager_ = std::make_unique<KvPager>(pc);
    }

    cores_.reserve(config_.nCores);
    for (size_t i = 0; i < config_.nCores; ++i) {
        cores_.push_back(std::make_unique<ComputeCore>(
            i, config_.core, config_.functional));
    }
    // All cores run the same allocation sequence; build the layout
    // against core 0 and replay it on the others so addresses agree.
    layout_ = MemoryLayout::build(
        config_.model, geometry, config_.core.lanes, cores_[0]->hbm(),
        cores_[0]->ddr(), config_.kvContexts, config_.core.hbmChannels,
        config_.core.kvStreamChannels, pager_.get());
    if (pager_) {
        pager_->addMirror(&cores_[0]->hbm(), layout_.keyPoolBase,
                          layout_.vtPoolBase);
    }
    for (size_t i = 1; i < config_.nCores; ++i) {
        MemoryLayout other = MemoryLayout::build(
            config_.model, geometry, config_.core.lanes, cores_[i]->hbm(),
            cores_[i]->ddr(), config_.kvContexts,
            config_.core.hbmChannels, config_.core.kvStreamChannels,
            pager_.get());
        DFX_ASSERT(other.lmHeadW == layout_.lmHeadW &&
                       other.wte == layout_.wte,
                   "layout divergence across cores");
        if (pager_) {
            pager_->addMirror(&cores_[i]->hbm(), other.keyPoolBase,
                              other.vtPoolBase);
        }
    }
    // Shared weight image: alias every core's weight regions into the
    // appliance-wide store — one physical copy, generated on demand.
    if (config_.weightStore && !config_.functional) {
        DFX_FATAL("weightStore set on a timing-only cluster; set "
                  "functional=true (timing-only runs need no weights)");
    }
    if (config_.functional && config_.weightStore) {
        for (size_t i = 0; i < config_.nCores; ++i) {
            layout_.bindWeightStore(config_.weightStore,
                                    cores_[i]->hbm(), cores_[i]->ddr(),
                                    i);
        }
    }
    positions_.assign(config_.kvContexts, 0);
    ctxInUse_.assign(config_.kvContexts, false);
    builders_.reserve(config_.nCores);
    for (size_t i = 0; i < config_.nCores; ++i)
        builders_.emplace_back(config_.model, geometry, layout_, i);

    // Cores are independent between ring synchronization points, so
    // functional phases can step them concurrently. Timing-only
    // phases are a few microseconds of bookkeeping — dispatch
    // overhead would dominate, so they stay sequential.
    const size_t threads = std::min(
        ThreadPool::resolveThreads(config_.nThreads), config_.nCores);
    if (config_.functional && threads > 1 && config_.nCores > 1)
        pool_ = std::make_unique<ThreadPool>(threads);

    // Open the template cache's generation: any layout or model change
    // produces a different hash, so a reconfigured cluster can never
    // replay stale programs.
    layoutHash_ = layout_.addressingHash();
    programCache_.beginGeneration(layoutHash_);
}

void
DfxCluster::loadWeights(const GptWeights &weights)
{
    DFX_ASSERT(config_.functional,
               "loadWeights requires a functional-mode cluster");
    if (config_.weightStore) {
        DFX_FATAL("cluster is backed by a shared weight store; eager "
                  "loadWeights would duplicate the image (drop "
                  "DfxSystemConfig::weightStore to load weights "
                  "explicitly)");
    }
    ClusterGeometry geometry{config_.nCores};
    Partitioner part(weights, geometry, config_.core.lanes);
    for (size_t i = 0; i < config_.nCores; ++i)
        part.load(*cores_[i], layout_, i);
}

void
DfxCluster::exchange(const isa::Instruction &sync)
{
    if (!config_.functional)
        return;
    const size_t elems = sync.len;
    if (config_.nCores == 1) {
        // Single core: the "sync" is a local buffer move.
        VecH seg = cores_[0]->vrf().readVec(sync.src1.addr, elems);
        cores_[0]->vrf().writeVec(sync.dst.addr, seg);
        return;
    }
    std::vector<RouterChunk> chunks;
    chunks.reserve(config_.nCores);
    for (size_t i = 0; i < config_.nCores; ++i) {
        chunks.push_back(
            {i, cores_[i]->vrf().readVec(sync.src1.addr, elems)});
    }
    VecH full = Router::reorder(std::move(chunks));
    for (size_t i = 0; i < config_.nCores; ++i)
        cores_[i]->vrf().writeVec(sync.dst.addr, full);
}

int32_t
DfxCluster::argmaxExchange(const isa::Instruction &sync)
{
    if (!config_.functional)
        return -1;
    // Each core holds (max value, local index) in SRF/IRF; the global
    // winner is the highest value, ties to the lowest core id. `aux`
    // carries the vocab shard width for local->global translation.
    float best = -std::numeric_limits<float>::infinity();
    size_t best_core = 0;
    int64_t best_local = 0;
    for (size_t i = 0; i < config_.nCores; ++i) {
        float v = cores_[i]->srf().read(sync.src1.addr).toFloat();
        if (v > best) {
            best = v;
            best_core = i;
            best_local = cores_[i]->irf().read(sync.src1.addr);
        }
    }
    int64_t global = static_cast<int64_t>(best_core) * sync.aux +
                     best_local;
    for (size_t i = 0; i < config_.nCores; ++i)
        cores_[i]->irf().write(sync.dst.addr, global);
    return static_cast<int32_t>(global);
}

void
DfxCluster::executeOnCores(
    const std::vector<const isa::Program *> &programs, TokenStats *stats)
{
    const size_t n = config_.nCores;
    coreStats_.resize(n);
    auto step = [this, &programs](size_t i) {
        coreStats_[i] = cores_[i]->executePhase(*programs[i]);
    };
    if (pool_) {
        pool_->run(n, step);
    } else {
        for (size_t i = 0; i < n; ++i)
            step(i);
    }
    // Reduce in core order: the accumulation sequence (and therefore
    // every floating-point sum) is identical to the sequential
    // schedule regardless of execution interleaving above.
    // The cluster advances at the slowest core.
    Cycles max_cycles = 0;
    for (size_t i = 0; i < n; ++i)
        max_cycles = std::max(max_cycles, coreStats_[i].cycles);
    if (!stats)
        return;
    for (size_t i = 0; i < n; ++i) {
        stats->flops += coreStats_[i].flops;
        stats->hbmBytes += coreStats_[i].hbmBytes;
        stats->ddrBytes += coreStats_[i].ddrBytes;
        stats->instructions += coreStats_[i].instructions;
    }
    const double clock = config_.core.clockHz;
    stats->seconds += units::cyclesToSeconds(max_cycles, clock);
    // The cluster advances at the slowest core, so the safely
    // amortizable weight-stream slack of the phase is the minimum
    // across cores (they run structurally identical programs; the
    // values differ only through per-core ReduMax tails).
    Cycles min_reuse = coreStats_[0].weightReuseCycles;
    Cycles min_private = coreStats_[0].privateStreamCycles;
    for (size_t i = 1; i < n; ++i) {
        min_reuse = std::min(min_reuse, coreStats_[i].weightReuseCycles);
        min_private =
            std::min(min_private, coreStats_[i].privateStreamCycles);
    }
    stats->weightReuseSeconds += units::cyclesToSeconds(min_reuse, clock);
    stats->privateStreamSeconds +=
        units::cyclesToSeconds(min_private, clock);
    // Per-channel occupancy: each core streams from its own HBM stack,
    // and the programs are structurally identical, so the profiles
    // agree; take the elementwise max (slowest core) like the cycles.
    for (size_t c = 0; c < kHbmChannels; ++c) {
        Cycles shared = 0, priv = 0;
        for (size_t i = 0; i < n; ++i) {
            shared = std::max(shared,
                              coreStats_[i].hbmSharedChannelCycles[c]);
            priv = std::max(priv,
                            coreStats_[i].hbmPrivateChannelCycles[c]);
        }
        stats->hbmSharedChannelSeconds[c] +=
            units::cyclesToSeconds(shared, clock);
        stats->hbmPrivateChannelSeconds[c] +=
            units::cyclesToSeconds(priv, clock);
    }
    // Scale core 0's per-category cycles so the categories sum to the
    // charged phase time (homogeneous: core 0 is representative).
    const PhaseStats &attribution = coreStats_[0];
    if (attribution.cycles > 0) {
        double scale = static_cast<double>(max_cycles) /
                       static_cast<double>(attribution.cycles);
        for (size_t c = 0; c < kNumCategories; ++c) {
            stats->categorySeconds[c] += units::cyclesToSeconds(
                attribution.byCategory[c], clock) * scale;
        }
    }
}

void
DfxCluster::runPhase(const isa::Phase &phase, size_t builder_core,
                     TokenStats *stats, std::vector<uint8_t> *encoded)
{
    (void)builder_core;
    // Optionally push the program through the binary instruction
    // encoding, as the host's PCIe upload into the instruction buffer
    // does (§IV-C). A cached phase encodes once and is patched in
    // place afterwards (patchProgram), so only the decode side of the
    // round-trip recurs.
    isa::Program decoded;
    const isa::Program *program = &phase.program;
    if (config_.binaryInstructionPath) {
        DFX_TRACE_SCOPE("encode", "host", perf::kTraceHostTid);
        const double t0 = hostNow();
        if (encoded) {
            if (encoded->empty())
                *encoded = isa::encodeProgram(phase.program);
            decoded = isa::decodeProgram(*encoded);
        } else {
            decoded = isa::decodeProgram(isa::encodeProgram(phase.program));
        }
        hostProfile_.encodeSeconds += hostNow() - t0;
        program = &decoded;
    }
    // Every core runs the same program (different shard contents).
    const double t1 = hostNow();
    {
        DFX_TRACE_SCOPE("execute", "host", perf::kTraceHostTid);
        executeOnCores(
            std::vector<const isa::Program *>(config_.nCores, program),
            stats);
    }

    if (phase.hasSync()) {
        DFX_TRACE_SCOPE("ring-sync", "host", perf::kTraceHostTid);
        const isa::Instruction &sync = phase.sync();
        double sync_sec;
        if (sync.flags & isa::kFlagArgmax) {
            sync_sec = ring_.argmaxReduceSeconds();
            lastArgmax_ = argmaxExchange(sync);
        } else {
            sync_sec = ring_.allGatherSeconds(
                static_cast<uint64_t>(sync.len) * 2);
            exchange(sync);
        }
        if (stats) {
            stats->seconds += sync_sec;
            stats->categorySeconds[static_cast<size_t>(
                isa::Category::kSync)] += sync_sec;
        }
    }
    hostProfile_.executeSeconds += hostNow() - t1;
}

void
DfxCluster::reset()
{
    std::fill(positions_.begin(), positions_.end(), 0);
}

void
DfxCluster::resetContext(size_t ctx)
{
    DFX_ASSERT(ctx < positions_.size(), "KV context %zu out of %zu", ctx,
               positions_.size());
    positions_[ctx] = 0;
}

size_t
DfxCluster::freeContexts() const
{
    size_t n = 0;
    for (bool used : ctxInUse_)
        n += !used;
    return n;
}

KvLease
DfxCluster::tryAcquireLease(const KvLeaseRequest &request)
{
    DFX_ASSERT(!request.prompt.empty(), "lease request needs a prompt");
    DFX_ASSERT(request.prompt.size() + request.newTokens <=
                   config_.model.maxSeq,
               "request %zu+%zu exceeds max context %zu",
               request.prompt.size(), request.newTokens,
               config_.model.maxSeq);
    size_t slot = ctxInUse_.size();
    for (size_t c = 0; c < ctxInUse_.size(); ++c) {
        if (!ctxInUse_[c]) {
            slot = c;
            break;
        }
    }
    if (slot == ctxInUse_.size())
        return KvLease{};
    size_t shared = 0;
    if (pager_ &&
        !pager_->tryOpen(slot, request.prompt, request.newTokens,
                         request.sharePrefix, &shared))
        return KvLease{};
    ctxInUse_[slot] = true;
    positions_[slot] = shared;
    return KvLease(this, slot, shared);
}

KvLease
DfxCluster::acquireLease(const KvLeaseRequest &request)
{
    KvLease lease = tryAcquireLease(request);
    if (!lease) {
        DFX_FATAL("no KV capacity for a %zu+%zu-token request "
                  "(%zu of %zu context slots free%s)",
                  request.prompt.size(), request.newTokens,
                  freeContexts(), ctxInUse_.size(),
                  pager_ ? ", paged pool exhausted" : "");
    }
    return lease;
}

void
DfxCluster::closeLease(size_t ctx)
{
    DFX_ASSERT(ctx < ctxInUse_.size() && ctxInUse_[ctx],
               "closing KV context %zu that is not leased", ctx);
    if (pager_)
        pager_->close(ctx);
    ctxInUse_[ctx] = false;
    positions_[ctx] = 0;
}

int32_t
DfxCluster::stepToken(int32_t token, TokenStats *stats)
{
    return stepToken(size_t{0}, token, stats);
}

std::vector<int32_t>
DfxCluster::stepTokenBatch(const std::vector<ContextStep> &steps,
                           TokenStats *batch_stats)
{
    for (size_t i = 0; i < steps.size(); ++i)
        for (size_t j = i + 1; j < steps.size(); ++j)
            DFX_ASSERT(steps[i].ctx != steps[j].ctx,
                       "context %zu appears twice in one batch round",
                       steps[i].ctx);
    std::vector<int32_t> next;
    next.reserve(steps.size());
    std::vector<TokenStats> step_stats;
    if (batch_stats)
        step_stats.reserve(steps.size());
    for (size_t i = 0; i < steps.size(); ++i) {
        TokenStats s;
        next.push_back(stepToken(steps[i].ctx, steps[i].token,
                                 batch_stats ? &s : nullptr));
        if (batch_stats)
            step_stats.push_back(std::move(s));
    }
    if (!batch_stats)
        return next;

    // Roofline the round: serial bound with shared-weight and private
    // K/V streaming amortized, floored by the per-channel occupancy
    // the streams actually impose (see combineBatchRound).
    const BatchRoundTiming round = combineBatchRound(step_stats);
    TokenStats total;
    for (size_t i = 0; i < step_stats.size(); ++i) {
        TokenStats s = std::move(step_stats[i]);
        const double charged = round.stepChargeSeconds[i];
        // Scale the category attribution so it sums to the charge.
        const double scale =
            s.seconds > 0.0 ? charged / s.seconds : 1.0;
        s.seconds = charged;
        for (double &c : s.categorySeconds)
            c *= scale;
        if (i > 0) {
            // Batch-mates' weight stripes are not re-streamed; their
            // channel occupancy was counted with the first step.
            s.hbmSharedChannelSeconds.fill(0.0);
        }
        total.accumulate(s);
    }
    const double contention = round.chargedSeconds - total.seconds;
    if (contention > 0.0) {
        // The channel bound bit: concurrent K/V streams collided on
        // their pinned channels. That traffic is self-attention's.
        total.seconds += contention;
        total.categorySeconds[static_cast<size_t>(
            isa::Category::kAttention)] += contention;
    }
    // The round consumed its stream slack amortizing batch-mates; a
    // batched TokenStats must not advertise it again (feeding it back
    // through combineBatchRound would over-amortize). The channel
    // ledgers stay: they are the round's actual occupancy.
    total.weightReuseSeconds = 0.0;
    total.privateStreamSeconds = 0.0;
    batch_stats->accumulate(total);
    return next;
}

isa::CachedProgram &
DfxCluster::fetchProgram(isa::ProgramKind kind, size_t layer, size_t core)
{
    isa::ProgramCacheKey key;
    key.configHash = layoutHash_;
    key.kind = kind;
    key.layer = static_cast<uint32_t>(layer);
    key.positionClass = 0;  // one skeleton serves every position today
    key.core = static_cast<uint32_t>(core);
    return programCache_.fetch(key, [&]() {
        DFX_TRACE_SCOPE("codegen", "host", perf::kTraceHostTid);
        const double t0 = hostNow();
        isa::CachedProgram built;
        switch (kind) {
          case isa::ProgramKind::kEmbed:
            built.tpl = builders_[core].embedTemplate();
            break;
          case isa::ProgramKind::kLayer:
            built.tpl = builders_[core].layerTemplate(layer);
            break;
          case isa::ProgramKind::kLmHead:
            built.tpl = builders_[core].lmHeadTemplate();
            break;
        }
        built.encoded.resize(built.tpl.phases.size());
        hostProfile_.codegenSeconds += hostNow() - t0;
        return built;
    });
}

void
DfxCluster::patchProgram(isa::CachedProgram &cached,
                         const isa::PatchInputs &in, size_t core)
{
    {
        DFX_TRACE_SCOPE("patch", "host", perf::kTraceHostTid);
        const double t0 = hostNow();
        builders_[core].applyPatches(cached.tpl, in);
        hostProfile_.patchSeconds += hostNow() - t0;
    }
    if (config_.binaryInstructionPath) {
        // Keep any already-encoded phase streams valid: rewrite the
        // same slots in the 56-byte words. Streams not yet encoded
        // are built from the patched template on first use (runPhase).
        DFX_TRACE_SCOPE("encode", "host", perf::kTraceHostTid);
        const double t1 = hostNow();
        for (const isa::PatchSlot &slot : cached.tpl.patches) {
            std::vector<uint8_t> &bytes = cached.encoded[slot.phase];
            if (bytes.empty())
                continue;
            isa::patchEncodedField(bytes, slot.index, slot.field,
                                   builders_[core].patchValue(slot, in));
        }
        hostProfile_.encodeSeconds += hostNow() - t1;
    }
}

int32_t
DfxCluster::stepToken(size_t ctx, int32_t token, TokenStats *stats)
{
    DFX_ASSERT(ctx < positions_.size(), "KV context %zu out of %zu", ctx,
               positions_.size());
    size_t &position = positions_[ctx];
    DFX_ASSERT(position < config_.model.maxSeq,
               "context overflow at position %zu", position);
    DFX_ASSERT(token >= 0 &&
                   static_cast<size_t>(token) < config_.model.vocabSize,
               "token %d out of vocabulary", token);
    lastArgmax_ = -1;
    hostProfile_.steps += 1;

    // Paged KV: make the block this token's K/V lands in privately
    // writable before any phase runs — allocate it if unmapped, fork
    // it copy-on-write if a prefix sibling still shares it. This runs
    // on the scheduler thread; the worker threads only read the block
    // table afterwards.
    if (pager_)
        pager_->ensureWritable(ctx, position);

    const bool cached = config_.programCache;

    // Embedding (identical on every core — token ids are broadcast).
    if (cached) {
        isa::CachedProgram &embed =
            fetchProgram(isa::ProgramKind::kEmbed, 0, 0);
        patchProgram(embed, {token, position, ctx}, 0);
        runPhase(embed.tpl.phases[0], 0, stats, &embed.encoded[0]);
    } else {
        const double t0 = hostNow();
        isa::Phase embed = [&] {
            DFX_TRACE_SCOPE("codegen", "host", perf::kTraceHostTid);
            return builders_[0].embedPhase(token, position);
        }();
        hostProfile_.codegenSeconds += hostNow() - t0;
        runPhase(embed, 0, stats);
    }

    // Decoder layers. Phases differ per core only in shard-resident
    // data; the builders emit structurally identical programs, so we
    // can reuse core 0's phase list for timing while the functional
    // path executes each core's own stream. (Programs are identical
    // in structure and addresses; only the LM-head tail differs.)
    for (size_t layer = 0; layer < config_.model.layers; ++layer) {
        if (cached) {
            isa::CachedProgram &prog =
                fetchProgram(isa::ProgramKind::kLayer, layer, 0);
            patchProgram(prog, {token, position, ctx}, 0);
            for (size_t p = 0; p < prog.tpl.phases.size(); ++p)
                runPhase(prog.tpl.phases[p], 0, stats,
                         &prog.encoded[p]);
        } else {
            const double t0 = hostNow();
            std::vector<isa::Phase> phases = [&] {
                DFX_TRACE_SCOPE("codegen", "host", perf::kTraceHostTid);
                return builders_[0].layerPhases(layer, position, ctx);
            }();
            hostProfile_.codegenSeconds += hostNow() - t0;
            for (const auto &phase : phases)
                runPhase(phase, 0, stats);
        }
    }
    position += 1;
    // The token's K/V is final: when it completed the prompt, the
    // pager registers the prefix for sharing with later requests.
    if (pager_)
        pager_->onTokenWritten(ctx, position - 1);

    // LM head: programs differ per core in the ReduMax length, but the
    // matrix work is identical; execute core-specific programs. The
    // phases are built (or fetched — the program is static per core)
    // on this thread before the parallel dispatch. This path never
    // round-trips the binary encoding, cached or not.
    {
        std::vector<isa::Phase> heads;
        std::vector<const isa::Program *> programs;
        programs.reserve(config_.nCores);
        const isa::Instruction *sync = nullptr;
        if (cached) {
            for (size_t i = 0; i < config_.nCores; ++i) {
                isa::CachedProgram &head =
                    fetchProgram(isa::ProgramKind::kLmHead, 0, i);
                programs.push_back(&head.tpl.phases[0].program);
                if (i == 0)
                    sync = &head.tpl.phases[0].sync();
            }
        } else {
            const double t0 = hostNow();
            heads.reserve(config_.nCores);
            for (size_t i = 0; i < config_.nCores; ++i)
                heads.push_back(builders_[i].lmHeadPhase());
            hostProfile_.codegenSeconds += hostNow() - t0;
            for (const isa::Phase &head : heads)
                programs.push_back(&head.program);
            sync = &heads[0].sync();
        }
        const double t1 = hostNow();
        executeOnCores(programs, stats);
        double sync_sec = ring_.argmaxReduceSeconds();
        lastArgmax_ = argmaxExchange(*sync);
        hostProfile_.executeSeconds += hostNow() - t1;
        if (stats) {
            stats->seconds += sync_sec;
            stats->categorySeconds[static_cast<size_t>(
                isa::Category::kSync)] += sync_sec;
        }
    }
    return lastArgmax_;
}

perf::HostStepProfile
DfxCluster::hostProfile() const
{
    perf::HostStepProfile p = hostProfile_;
    p.cacheHits = programCache_.stats().hits;
    p.cacheMisses = programCache_.stats().misses;
    return p;
}

void
DfxCluster::resetHostProfile()
{
    hostProfile_ = perf::HostStepProfile{};
    programCache_.resetStats();
}

}  // namespace dfx
