/**
 * @file
 * The DFX appliance: host-facing text-generation API.
 *
 * Mirrors the paper's service model: the host sends the input context
 * and the system configuration over PCIe, the cluster runs the
 * summarization stage (the n_in input tokens, one at a time — the DFX
 * dataflow is single-token in both stages, §V "optimized for single
 * token processing") and then the generation stage (n_out output
 * tokens, each fed back as the next input), and the host reads the
 * generated ids back.
 *
 * Stage accounting matches the paper's measurements: total latency
 * covers n_in + n_out token steps (the final generated token is also
 * processed, keeping the service ready for continuation) — this is
 * what makes Fig. 14's latency exactly linear in both token counts.
 */
#ifndef DFX_APPLIANCE_APPLIANCE_HPP
#define DFX_APPLIANCE_APPLIANCE_HPP

#include <vector>

#include "appliance/cluster.hpp"
#include "appliance/pcie.hpp"

namespace dfx {

/** End-to-end result of one text-generation request. */
struct GenerationResult
{
    std::vector<int32_t> tokens;       ///< generated ids (functional)
    double summarizationSeconds = 0.0;
    double generationSeconds = 0.0;
    double pcieSeconds = 0.0;
    std::array<double, kNumCategories> categorySeconds{};
    double summarizationFlops = 0.0;
    double generationFlops = 0.0;
    uint64_t hbmBytes = 0;
    uint64_t instructions = 0;

    double
    totalSeconds() const
    {
        return summarizationSeconds + generationSeconds + pcieSeconds;
    }

    /** Output tokens per second (the paper's throughput metric). */
    double
    tokensPerSecond(size_t n_out) const
    {
        return static_cast<double>(n_out) / totalSeconds();
    }

    /** Sustained FLOP/s in the summarization stage. */
    double
    summarizationFlopsPerSec() const
    {
        return summarizationFlops / summarizationSeconds;
    }

    /** Sustained FLOP/s in the generation stage. */
    double
    generationFlopsPerSec() const
    {
        return generationFlops / generationSeconds;
    }
};

/** A DFX server appliance (one cluster behind a PCIe switch). */
class DfxAppliance
{
  public:
    explicit DfxAppliance(const DfxSystemConfig &config);

    /** Loads weights into the cluster (functional mode only). */
    void loadWeights(const GptWeights &weights);

    /**
     * Runs a full text-generation request. In functional mode the
     * returned tokens are the greedy continuation; in timing-only
     * mode token values are synthetic but the timing is exact.
     */
    GenerationResult generate(const std::vector<int32_t> &prompt,
                              size_t n_out);

    DfxCluster &cluster() { return cluster_; }
    const DfxSystemConfig &config() const { return cluster_.config(); }

  private:
    DfxCluster cluster_;
    PcieModel pcie_;
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_APPLIANCE_HPP
