/**
 * @file
 * The DFX appliance: host-facing text-generation API.
 *
 * Mirrors the paper's service model: the host sends the input context
 * and the system configuration over PCIe, the cluster runs the
 * summarization stage (the n_in input tokens, one at a time — the DFX
 * dataflow is single-token in both stages, §V "optimized for single
 * token processing") and then the generation stage (n_out output
 * tokens, each fed back as the next input), and the host reads the
 * generated ids back.
 *
 * Stage accounting matches the paper's measurements: total latency
 * covers n_in + n_out token steps (the final generated token is also
 * processed, keeping the service ready for continuation) — this is
 * what makes Fig. 14's latency exactly linear in both token counts.
 */
#ifndef DFX_APPLIANCE_APPLIANCE_HPP
#define DFX_APPLIANCE_APPLIANCE_HPP

#include <vector>

#include "appliance/cluster.hpp"
#include "appliance/pcie.hpp"

namespace dfx {

/** End-to-end result of one text-generation request. */
struct GenerationResult
{
    std::vector<int32_t> tokens;       ///< generated ids (functional)
    double summarizationSeconds = 0.0;
    double generationSeconds = 0.0;
    double pcieSeconds = 0.0;
    std::array<double, kNumCategories> categorySeconds{};
    double summarizationFlops = 0.0;
    double generationFlops = 0.0;
    uint64_t hbmBytes = 0;
    uint64_t instructions = 0;

    double
    totalSeconds() const
    {
        return summarizationSeconds + generationSeconds + pcieSeconds;
    }

    /** Output tokens per second (the paper's throughput metric). */
    double
    tokensPerSecond(size_t n_out) const
    {
        return static_cast<double>(n_out) / totalSeconds();
    }

    /** Sustained FLOP/s in the summarization stage. */
    double
    summarizationFlopsPerSec() const
    {
        return summarizationFlops / summarizationSeconds;
    }

    /** Sustained FLOP/s in the generation stage. */
    double
    generationFlopsPerSec() const
    {
        return generationFlops / generationSeconds;
    }
};

/** Result of one stepwise appliance call (prefill or decode step). */
struct StepOutcome
{
    int32_t next = -1;  ///< argmax next token (-1 in timing-only mode)
    TokenStats stats;   ///< timing/attribution of the step(s)
};

/** A DFX server appliance (one cluster behind a PCIe switch). */
class DfxAppliance
{
  public:
    explicit DfxAppliance(const DfxSystemConfig &config);

    /** Loads weights into the cluster (functional mode only). */
    void loadWeights(const GptWeights &weights);

    /**
     * Runs a full text-generation request. In functional mode the
     * returned tokens are the greedy continuation; in timing-only
     * mode token values are synthetic but the timing is exact.
     * Implemented on top of prefill/decodeStep against an internally
     * leased context (no prefix sharing — the canonical timing path
     * steps every prompt token), so stepwise and whole-request
     * execution are identical by construction.
     */
    GenerationResult generate(const std::vector<int32_t> &prompt,
                              size_t n_out);

    // --- stepwise serving API (scheduler-facing) ----------------------
    // A scheduler leases a KV context per admitted request, drives it
    // one token step at a time (round-robinning contexts between ring
    // syncs), and the lease returns the context on destruction.
    // Contexts persist in off-chip memory across interleaved steps.
    size_t kvContexts() const { return cluster_.kvContexts(); }
    size_t freeContexts() const { return cluster_.freeContexts(); }

    /** See DfxCluster::tryAcquireLease. */
    KvLease tryAcquireLease(const KvLeaseRequest &request)
    {
        return cluster_.tryAcquireLease(request);
    }
    /** See DfxCluster::acquireLease. */
    KvLease acquireLease(const KvLeaseRequest &request)
    {
        return cluster_.acquireLease(request);
    }

    /** Runs the whole prompt through context `ctx` (summarization
     *  stage); the context must be fresh. Stats are the summed steps. */
    StepOutcome prefill(size_t ctx, const std::vector<int32_t> &prompt);

    /**
     * Prefill against a lease: steps the prompt starting at the
     * context's current position — the lease's `sharedTokens()`
     * leading tokens are already resident via prefix sharing and are
     * skipped (their K/V is aliased, so the result is identical to
     * stepping them; only the charged time shrinks). Stats cover the
     * stepped suffix.
     */
    StepOutcome prefill(const KvLease &lease,
                        const std::vector<int32_t> &prompt);

    /** One generation step of context `ctx`. */
    StepOutcome decodeStep(size_t ctx, int32_t token);

    /** Batched multi-context round (see DfxCluster::stepTokenBatch). */
    std::vector<int32_t> stepBatch(const std::vector<ContextStep> &steps,
                                   TokenStats *batch_stats);

    /** Host link cost for `bytes` over PCIe (per-request accounting). */
    double pcieSeconds(uint64_t bytes) const
    {
        return pcie_.transferSeconds(bytes);
    }

    DfxCluster &cluster() { return cluster_; }
    const DfxSystemConfig &config() const { return cluster_.config(); }

  private:
    DfxCluster cluster_;
    PcieModel pcie_;
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_APPLIANCE_HPP
