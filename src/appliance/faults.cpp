/**
 * @file
 * Fault-plan validation, window lookups and the seeded generator.
 */
#include "appliance/faults.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/random.hpp"

namespace dfx {

const char *
toString(ClusterHealth health)
{
    switch (health) {
    case ClusterHealth::Healthy:
        return "healthy";
    case ClusterHealth::Degraded:
        return "degraded";
    case ClusterHealth::Failed:
        return "failed";
    }
    return "unknown";
}

void
FaultPlan::validate(size_t n_clusters) const
{
    for (const ClusterFailStop &ev : failStops) {
        if (ev.cluster >= n_clusters)
            DFX_FATAL("fault plan: fail-stop cluster %zu out of range "
                      "(%zu clusters)",
                      ev.cluster, n_clusters);
        if (!std::isfinite(ev.atSeconds) || ev.atSeconds < 0.0)
            DFX_FATAL("fault plan: fail-stop time %f must be finite "
                      "and non-negative",
                      ev.atSeconds);
    }
    for (const ClusterSlowdown &ev : slowdowns) {
        if (ev.cluster >= n_clusters)
            DFX_FATAL("fault plan: slowdown cluster %zu out of range "
                      "(%zu clusters)",
                      ev.cluster, n_clusters);
        if (!std::isfinite(ev.fromSeconds) ||
            !std::isfinite(ev.toSeconds) || ev.fromSeconds < 0.0 ||
            ev.toSeconds <= ev.fromSeconds)
            DFX_FATAL("fault plan: slowdown window [%f, %f) is empty "
                      "or ill-formed",
                      ev.fromSeconds, ev.toSeconds);
        if (!std::isfinite(ev.factor) || ev.factor < 1.0)
            DFX_FATAL("fault plan: slowdown factor %f must be >= 1",
                      ev.factor);
    }
    for (const LinkDegrade &ev : linkDegrades) {
        if (!std::isfinite(ev.fromSeconds) ||
            !std::isfinite(ev.toSeconds) || ev.fromSeconds < 0.0 ||
            ev.toSeconds <= ev.fromSeconds)
            DFX_FATAL("fault plan: link-degrade window [%f, %f) is "
                      "empty or ill-formed",
                      ev.fromSeconds, ev.toSeconds);
        if (!std::isfinite(ev.factor) || ev.factor < 1.0)
            DFX_FATAL("fault plan: link-degrade factor %f must be >= 1",
                      ev.factor);
    }
}

double
FaultPlan::slowdownFactor(size_t cluster, double at) const
{
    double factor = 1.0;
    for (const ClusterSlowdown &ev : slowdowns) {
        if (ev.cluster == cluster && at >= ev.fromSeconds &&
            at < ev.toSeconds)
            factor *= ev.factor;
    }
    return factor;
}

double
FaultPlan::linkFactor(double at) const
{
    double factor = 1.0;
    for (const LinkDegrade &ev : linkDegrades) {
        if (at >= ev.fromSeconds && at < ev.toSeconds)
            factor *= ev.factor;
    }
    return factor;
}

FaultPlan
FaultPlan::random(uint64_t seed, size_t n_clusters,
                  double horizon_seconds, size_t n_events)
{
    DFX_ASSERT(n_clusters >= 1, "fault plan needs at least one cluster");
    DFX_ASSERT(std::isfinite(horizon_seconds) && horizon_seconds > 0.0,
               "fault horizon must be finite and positive");
    Rng rng(seed);
    // One survivor cluster is exempt from fail-stops so a generated
    // plan can always finish the workload via failover.
    const size_t survivor = rng.below(n_clusters);
    FaultPlan plan;
    for (size_t i = 0; i < n_events; ++i) {
        const uint64_t kind = rng.below(3);
        if (kind == 0 && n_clusters > 1) {
            size_t victim = rng.below(n_clusters);
            if (victim == survivor)
                victim = (victim + 1) % n_clusters;
            plan.failStops.push_back(
                {victim, rng.uniform(0.0, horizon_seconds)});
        } else if (kind == 1) {
            const double a = rng.uniform(0.0, horizon_seconds);
            const double len =
                rng.uniform(0.05 * horizon_seconds,
                            0.5 * horizon_seconds);
            plan.slowdowns.push_back({rng.below(n_clusters), a, a + len,
                                      rng.uniform(1.5, 6.0)});
        } else {
            const double a = rng.uniform(0.0, horizon_seconds);
            const double len =
                rng.uniform(0.05 * horizon_seconds,
                            0.5 * horizon_seconds);
            plan.linkDegrades.push_back(
                {a, a + len, rng.uniform(1.5, 4.0)});
        }
    }
    return plan;
}

}  // namespace dfx
