/**
 * @file
 * Weight partitioner implementation.
 */
#include "appliance/partition.hpp"

namespace dfx {

Partitioner::Partitioner(const GptWeights &weights,
                         const ClusterGeometry &geometry, size_t lanes)
    : weights_(weights), geometry_(geometry), lanes_(lanes)
{
    geometry.validateFor(weights.config);
}

void
Partitioner::writeColSlice(OffchipMemory &mem, uint64_t addr,
                           const MatH &m, size_t c0, size_t n)
{
    DFX_ASSERT(c0 + n <= m.cols(), "col slice [%zu,+%zu) of %zu", c0, n,
               m.cols());
    std::vector<Half> row(n);
    for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t c = 0; c < n; ++c)
            row[c] = m.at(r, c0 + c);
        mem.writeHalf(addr + static_cast<uint64_t>(r) * n * 2, row.data(),
                      n);
    }
}

void
Partitioner::writeVecSlice(OffchipMemory &mem, uint64_t addr,
                           const VecH &v, size_t c0, size_t n)
{
    DFX_ASSERT(c0 + n <= v.size(), "vec slice [%zu,+%zu) of %zu", c0, n,
               v.size());
    std::vector<Half> buf(n);
    for (size_t i = 0; i < n; ++i)
        buf[i] = v[c0 + i];
    mem.writeHalf(addr, buf.data(), n);
}

void
Partitioner::writeVec(OffchipMemory &mem, uint64_t addr, const VecH &v)
{
    std::vector<Half> buf(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        buf[i] = v[i];
    mem.writeHalf(addr, buf.data(), v.size());
}

void
Partitioner::load(ComputeCore &core, const MemoryLayout &layout,
                  size_t core_id) const
{
    const GptConfig &cfg = weights_.config;
    OffchipMemory &hbm = core.hbm();
    OffchipMemory &ddr = core.ddr();
    const size_t emb_shard = geometry_.embShard(cfg);
    const size_t ffn_shard = geometry_.ffnShard(cfg);
    const size_t emb_off = core_id * emb_shard;
    const size_t ffn_off = core_id * ffn_shard;

    for (size_t l = 0; l < cfg.layers; ++l) {
        const LayerWeights &lw = weights_.layers[l];
        const LayerAddrs &a = layout.layers[l];
        // Head-wise Q/K/V: heads are contiguous column blocks, so the
        // head-group shard is a column slice.
        writeColSlice(hbm, a.wq, lw.wq, emb_off, emb_shard);
        writeColSlice(hbm, a.wk, lw.wk, emb_off, emb_shard);
        writeColSlice(hbm, a.wv, lw.wv, emb_off, emb_shard);
        writeColSlice(hbm, a.wproj, lw.wproj, emb_off, emb_shard);
        writeColSlice(hbm, a.wfc1, lw.wfc1, ffn_off, ffn_shard);
        writeColSlice(hbm, a.wfc2, lw.wfc2, emb_off, emb_shard);
        writeVecSlice(ddr, a.bq, lw.bq, emb_off, emb_shard);
        writeVecSlice(ddr, a.bk, lw.bk, emb_off, emb_shard);
        writeVecSlice(ddr, a.bv, lw.bv, emb_off, emb_shard);
        writeVecSlice(ddr, a.bproj, lw.bproj, emb_off, emb_shard);
        writeVecSlice(ddr, a.bfc1, lw.bfc1, ffn_off, ffn_shard);
        writeVecSlice(ddr, a.bfc2, lw.bfc2, emb_off, emb_shard);
        // LN parameters are not parallelized: full copies per core.
        writeVec(ddr, a.ln1Gamma, lw.ln1Gamma);
        writeVec(ddr, a.ln1Beta, lw.ln1Beta);
        writeVec(ddr, a.ln2Gamma, lw.ln2Gamma);
        writeVec(ddr, a.ln2Beta, lw.ln2Beta);
    }

    // LM head: transposed WTE shard over this core's vocab slice,
    // zero-padded to the lane-aligned shard width. (The padded columns
    // are never read by the ReduMax, whose length is the real count.)
    const size_t vocab_shard = geometry_.vocabShard(cfg, lanes_);
    const size_t vocab_off = core_id * vocab_shard;
    const size_t real = vocab_off >= cfg.vocabSize
                            ? 0
                            : std::min(vocab_shard,
                                       cfg.vocabSize - vocab_off);
    std::vector<Half> row(vocab_shard, Half::zero());
    for (size_t r = 0; r < cfg.embedding; ++r) {
        for (size_t c = 0; c < vocab_shard; ++c) {
            row[c] = c < real ? weights_.wte.at(vocab_off + c, r)
                              : Half::zero();
        }
        hbm.writeHalf(layout.lmHeadW +
                          static_cast<uint64_t>(r) * vocab_shard * 2,
                      row.data(), vocab_shard);
    }

    // Embedding tables and final LN in DDR (full copies).
    std::vector<Half> erow(cfg.embedding);
    for (size_t t = 0; t < cfg.vocabSize; ++t) {
        for (size_t i = 0; i < cfg.embedding; ++i)
            erow[i] = weights_.wte.at(t, i);
        ddr.writeHalf(layout.wte +
                          static_cast<uint64_t>(t) * cfg.embedding * 2,
                      erow.data(), erow.size());
    }
    for (size_t p = 0; p < cfg.maxSeq; ++p) {
        for (size_t i = 0; i < cfg.embedding; ++i)
            erow[i] = weights_.wpe.at(p, i);
        ddr.writeHalf(layout.wpe +
                          static_cast<uint64_t>(p) * cfg.embedding * 2,
                      erow.data(), erow.size());
    }
    writeVec(ddr, layout.lnfGamma, weights_.lnfGamma);
    writeVec(ddr, layout.lnfBeta, weights_.lnfBeta);
}

}  // namespace dfx
