/**
 * @file
 * Continuously-batched multi-cluster server implementation.
 *
 * With work stealing enabled, one scheduler thread runs a
 * deterministic discrete-event loop over the clusters: it repeatedly
 * picks the cluster whose next round boundary is earliest in
 * simulated time (ties broken by cluster index) and processes that
 * boundary — admit arrived requests into free KV slots, steal from
 * saturated clusters, run one batched token round, retire completed
 * requests. With stealing off, boundaries on different clusters are
 * causally independent, so each cluster gets its own scheduler
 * thread processing only its own boundaries and clusters' rounds run
 * host-parallel. Shared state (pending queues, in-flight sets,
 * simulated clocks, results, epoch counters) lives behind a single
 * mutex in both modes; the expensive part of a round — the batched
 * token step — runs unlocked, since each scheduler thread owns its
 * appliance(s) exclusively.
 *
 * A non-empty fault plan forces the same discrete-event loop even
 * with stealing off: fail-stop events are merged into the event order
 * by simulated time (ties: fault before round), so failover routing
 * observes a deterministic queue state. Slowdown windows and link
 * degrades need no event of their own — they are pure multipliers
 * sampled when a round (or PCIe transfer) is charged.
 *
 * Processing boundaries in simulated-time order is what makes
 * admission and stealing decisions deterministic: a steal at
 * simulated time t observes exactly the queue state every other
 * cluster had produced by its boundaries at times <= t, regardless of
 * host thread timing. One deliberate approximation: a cluster's
 * retirements are applied when its round is processed (at the round's
 * *start* time in the event order), so a thief whose boundary falls
 * inside a victim's in-progress round sees the victim's
 * post-retirement slot count slightly early and may decline a steal
 * it could have made — under-stealing conservatively, never stealing
 * a request whose home cluster had capacity.
 */
#include "appliance/server.hpp"

#include "perf/percentile.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

namespace dfx {

DfxServer::DfxServer(const DfxSystemConfig &config, size_t n_clusters,
                     ServerOptions options)
    : options_(options)
{
    DFX_ASSERT(n_clusters >= 1, "server needs at least one cluster");
    DFX_ASSERT(config.kvContexts >= 1,
               "server needs at least one KV context per cluster");
    options_.faultPlan.validate(n_clusters);
    maxInFlight_ = config.kvContexts;
    clusters_.reserve(n_clusters);
    for (size_t i = 0; i < n_clusters; ++i)
        clusters_.push_back(std::make_unique<DfxAppliance>(config));
    pending_.resize(n_clusters);
    inflight_.resize(n_clusters);
    simTime_.assign(n_clusters, 0.0);
    clusterStats_.assign(n_clusters, ClusterEpochStats{});
    health_.assign(n_clusters, ClusterHealth::Healthy);
    failStopApplied_.assign(options_.faultPlan.failStops.size(), false);
    serviceSum_.assign(n_clusters, 0.0);
    // Failover reads other clusters' queues, just like stealing: a
    // non-empty plan forces the deterministic single-threaded DES.
    useDes_ = options_.workStealing || !options_.faultPlan.empty();
    if (useDes_) {
        schedulers_.emplace_back([this] { schedulerLoop(); });
    } else {
        schedulers_.reserve(n_clusters);
        for (size_t c = 0; c < n_clusters; ++c)
            schedulers_.emplace_back([this, c] { workerLoop(c); });
    }
}

DfxServer::~DfxServer()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : schedulers_)
        t.join();
}

void
DfxServer::loadWeights(const GptWeights &weights)
{
    for (auto &c : clusters_)
        c->loadWeights(weights);
}

uint64_t
DfxServer::submitLocked(ServerRequest request)
{
    DFX_ASSERT(!request.prompt.empty(), "empty prompt");
    DFX_ASSERT(request.nOut >= 1, "need at least one output token");
    DFX_ASSERT(std::isfinite(request.arrivalSeconds) &&
                   request.arrivalSeconds >= 0.0,
               "arrival timestamp must be finite and non-negative");
    const size_t max_seq = clusters_[0]->config().model.maxSeq;
    DFX_ASSERT(request.prompt.size() + request.nOut <= max_seq,
               "request %zu+%zu exceeds max context %zu",
               request.prompt.size(), request.nOut, max_seq);
    // Paged clusters: a request larger than the whole block pool could
    // never be admitted (an idle cluster can always evict down to an
    // empty pool, but not below it) — reject it at submission instead
    // of letting admission spin on it forever.
    if (const KvPager *pager = clusters_[0]->cluster().pager()) {
        const size_t blocks =
            (request.prompt.size() + request.nOut +
             pager->blockTokens() - 1) /
            pager->blockTokens();
        DFX_ASSERT(blocks <= pager->physBlocks(),
                   "request needs %zu KV blocks (prompt %zu + %zu new "
                   "tokens, %zu-token blocks) but the pool holds %zu",
                   blocks, request.prompt.size(), request.nOut,
                   pager->blockTokens(), pager->physBlocks());
    }
    const uint64_t id = submitted_++;
    // Deterministic round-robin home assignment; stealing (when
    // enabled) may relocate the request later, at a deterministic
    // simulated-time boundary.
    InFlight f;
    f.id = id;
    f.request = std::move(request);
    f.home = id % clusters_.size();
    // A submission addressed to a failed cluster reroutes by the
    // failover rule; with no healthy cluster left it fails outright.
    if (health_[f.home] == ClusterHealth::Failed) {
        const size_t target = routeTargetLocked();
        if (target == clusters_.size()) {
            const size_t home = f.home;
            const double at = f.request.arrivalSeconds;
            recordTerminalLocked(std::move(f), home,
                                 RequestOutcome::Failed, at);
            return id;
        }
        ++failovers_;
        f.home = target;
    }
    insertPendingLocked(f.home, std::move(f));
    return id;
}

void
DfxServer::insertPendingLocked(size_t c, InFlight f)
{
    // Pending queues are kept sorted by (arrival, id): generators
    // emit non-decreasing arrivals, but an explicit trace may not,
    // and failover requeues insert old arrivals behind a new home.
    auto &queue = pending_[c];
    auto pos = std::upper_bound(
        queue.begin(), queue.end(), f,
        [](const InFlight &a, const InFlight &b) {
            if (a.request.arrivalSeconds != b.request.arrivalSeconds)
                return a.request.arrivalSeconds <
                       b.request.arrivalSeconds;
            return a.id < b.id;
        });
    queue.insert(pos, std::move(f));
}

uint64_t
DfxServer::submit(ServerRequest request)
{
    uint64_t id;
    bool idle;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        id = submitLocked(std::move(request));
        // submitLocked can terminate the request on the spot (every
        // cluster failed): a concurrent drain() must wake up.
        idle = completed_ == submitted_;
    }
    workCv_.notify_all();
    if (idle)
        idleCv_.notify_all();
    return id;
}

size_t
DfxServer::arrivedWaitingLocked(size_t c, double t) const
{
    size_t n = 0;
    for (const InFlight &f : pending_[c]) {
        if (f.request.arrivalSeconds > t)
            break;  // sorted by arrival
        ++n;
    }
    return n;
}

double
DfxServer::nextEventTimeLocked(size_t c) const
{
    // A failed cluster holds no requests and schedules nothing; its
    // queues were emptied by applyFailStopLocked.
    if (health_[c] == ClusterHealth::Failed)
        return std::numeric_limits<double>::infinity();
    // A cluster with requests in flight has a round to run right now.
    if (!inflight_[c].empty())
        return simTime_[c];
    double t = std::numeric_limits<double>::infinity();
    // Idle cluster: its next event is the earliest of its own
    // arrivals (the clock jumps forward to the arrival) ...
    if (!pending_[c].empty())
        t = std::max(simTime_[c],
                     pending_[c].front().request.arrivalSeconds);
    // ... or, with stealing on, the earliest arrival waiting behind a
    // saturated cluster. (Only saturated victims are stealable: if
    // the home cluster has a free slot it admits the request itself
    // at the same instant, and home placement wins.)
    if (options_.workStealing) {
        for (size_t d = 0; d < clusters_.size(); ++d) {
            if (d == c || inflight_[d].size() < maxInFlight_ ||
                pending_[d].empty())
                continue;
            t = std::min(
                t, std::max(simTime_[c],
                            pending_[d].front().request.arrivalSeconds));
        }
    }
    return t;
}

bool
DfxServer::tryAdmitLocked(size_t c, std::deque<InFlight> &queue)
{
    // Lease first: on a paged cluster the lease is granted only when
    // the block pool can hold prompt + nOut, so admission is real
    // capacity accounting, not just a slot count. A granted lease may
    // alias a registered shared prompt prefix — those tokens are
    // already resident, so prefill starts after them (`fed`).
    InFlight &front = queue.front();
    KvLeaseRequest req;
    req.prompt = front.request.prompt;
    req.newTokens = front.request.nOut;
    KvLease lease = clusters_[c]->tryAcquireLease(req);
    if (!lease)
        return false;
    InFlight f = std::move(queue.front());
    queue.pop_front();
    // Admission pays the host->device PCIe upload (input ids + system
    // configuration) on the cluster's simulated clock. A degraded
    // link costs `linkFactor`x — exactly 1.0 on an empty plan, so the
    // charge is bit-identical to a fault-free build.
    f.admitSim = simTime_[c];
    simTime_[c] +=
        options_.faultPlan.linkFactor(simTime_[c]) *
        clusters_[c]->pcieSeconds(f.request.prompt.size() * 4 + 64);
    f.fed = lease.sharedTokens();
    f.lease = std::move(lease);
    inflight_[c].push_back(std::move(f));
    return true;
}

size_t
DfxServer::routeTargetLocked() const
{
    // Least-loaded healthy cluster (a Degraded cluster still serves),
    // ties by cluster index — a pure function of simulated state, so
    // failover placement is reproducible.
    size_t best = clusters_.size();
    size_t best_load = std::numeric_limits<size_t>::max();
    for (size_t c = 0; c < clusters_.size(); ++c) {
        if (health_[c] == ClusterHealth::Failed)
            continue;
        const size_t load = inflight_[c].size() + pending_[c].size();
        if (load < best_load) {
            best_load = load;
            best = c;
        }
    }
    return best;
}

void
DfxServer::recordTerminalLocked(InFlight f, size_t c,
                                RequestOutcome outcome, double t)
{
    RequestResult r;
    r.id = f.id;
    r.cluster = c;
    r.stolen = f.stolen;
    r.outcome = outcome;
    r.retries = f.retries;
    r.arrivalSeconds = f.request.arrivalSeconds;
    r.admitSimSeconds = t;
    r.firstTokenSimSeconds = t;
    r.finishSimSeconds = t;
    results_.push_back(std::move(r));
    if (outcome == RequestOutcome::Shed)
        ++shed_;
    else if (outcome == RequestOutcome::Failed)
        ++failed_;
    ++completed_;
}

void
DfxServer::applyFailStopLocked(size_t ev)
{
    const ClusterFailStop &fs = options_.faultPlan.failStops[ev];
    failStopApplied_[ev] = true;
    const size_t c = fs.cluster;
    if (health_[c] == ClusterHealth::Failed)
        return;  // a double fail-stop on one cluster is idempotent
    health_[c] = ClusterHealth::Failed;
    clusterStats_[c].health = ClusterHealth::Failed;
    // The cluster dies at the event instant: freeze its clock there
    // so diagnostics and terminal timestamps are coherent.
    simTime_[c] = std::max(simTime_[c], fs.atSeconds);

    // Displace in-flight requests: their KV contexts are gone, their
    // partial output is discarded, and each consumes one retry.
    // (Releasing the lease keeps the appliance's slot and block-pool
    // bookkeeping balanced for the next epoch, when the cluster is
    // healthy again.)
    std::vector<InFlight> displaced;
    displaced.reserve(inflight_[c].size() + pending_[c].size());
    for (InFlight &f : inflight_[c]) {
        f.lease.release();
        requeuedTokens_ += f.out.size();
        f.out.clear();
        f.fed = 0;
        f.next = -1;
        f.firstTokenSim = -1.0;
        ++f.retries;
        ++retries_;
        displaced.push_back(std::move(f));
    }
    inflight_[c].clear();
    // Waiters never started: rerouted without consuming a retry.
    for (InFlight &f : pending_[c])
        displaced.push_back(std::move(f));
    pending_[c].clear();

    // Failover routing: oldest arrival first (ties by id), each onto
    // the least-loaded healthy cluster at this instant.
    std::sort(displaced.begin(), displaced.end(),
              [](const InFlight &a, const InFlight &b) {
                  if (a.request.arrivalSeconds !=
                      b.request.arrivalSeconds)
                      return a.request.arrivalSeconds <
                             b.request.arrivalSeconds;
                  return a.id < b.id;
              });
    for (InFlight &f : displaced) {
        if (f.retries > options_.retryBudget) {
            recordTerminalLocked(std::move(f), c,
                                 RequestOutcome::Failed, fs.atSeconds);
            continue;
        }
        const size_t target = routeTargetLocked();
        if (target == clusters_.size()) {
            recordTerminalLocked(std::move(f), c,
                                 RequestOutcome::Failed, fs.atSeconds);
            continue;
        }
        ++failovers_;
        f.home = target;
        f.stolen = false;  // the new home is a real home, not a steal
        insertPendingLocked(target, std::move(f));
    }
}

void
DfxServer::shedOverBudgetLocked(size_t c, double t)
{
    if (pending_[c].empty())
        return;
    // Projected TTFT for the waiter at (0-based) queue rank p:
    // wait-so-far + (p+1) slot-frees at the cluster's observed mean
    // per-slot turnaround (global fallback before this cluster's
    // first completion; never shed blind before any completion).
    double sum = serviceSum_[c];
    size_t served = clusterStats_[c].requestsServed;
    if (served == 0) {
        sum = 0.0;
        for (size_t d = 0; d < clusters_.size(); ++d) {
            sum += serviceSum_[d];
            served += clusterStats_[d].requestsServed;
        }
    }
    if (served == 0)
        return;
    const double per_slot = sum / static_cast<double>(served) /
                            static_cast<double>(maxInFlight_);
    std::deque<InFlight> keep;
    size_t rank = 0;  // rank among surviving arrived waiters
    for (InFlight &f : pending_[c]) {
        if (f.request.arrivalSeconds > t) {
            keep.push_back(std::move(f));
            continue;
        }
        const double projected =
            (t - f.request.arrivalSeconds) +
            static_cast<double>(rank + 1) * per_slot;
        if (projected > options_.sloTtftBudgetSeconds) {
            recordTerminalLocked(std::move(f), c,
                                 RequestOutcome::Shed, t);
        } else {
            ++rank;
            keep.push_back(std::move(f));
        }
    }
    pending_[c] = std::move(keep);
}

std::string
DfxServer::wedgeReportLocked() const
{
    std::string report;
    char line[160];
    for (size_t c = 0; c < clusters_.size(); ++c) {
        std::snprintf(line, sizeof line,
                      "  cluster %zu: %s, %zu in flight, %zu pending "
                      "(%zu arrived), sim time %.6fs\n",
                      c, toString(health_[c]), inflight_[c].size(),
                      pending_[c].size(),
                      arrivedWaitingLocked(c, simTime_[c]),
                      simTime_[c]);
        report += line;
    }
    return report;
}

void
DfxServer::runClusterRound(std::unique_lock<std::mutex> &lock, size_t c,
                           double t)
{
    DfxAppliance &appliance = *clusters_[c];
    DFX_ASSERT(health_[c] != ClusterHealth::Failed,
               "round scheduled on failed cluster %zu", c);
    simTime_[c] = std::max(simTime_[c], t);

    // Admission: claim arrived requests from the home queue up to the
    // KV residency limit, oldest first — the moment a slot frees, the
    // next round picks up the waiter (continuous batching, no epoch
    // barrier).
    while (inflight_[c].size() < maxInFlight_ && !pending_[c].empty() &&
           pending_[c].front().request.arrivalSeconds <= simTime_[c]) {
        if (!tryAdmitLocked(c, pending_[c]))
            break;  // paged pool full until a retirement frees blocks
    }

    // Work stealing: fill remaining slots with the oldest waiting
    // request of the most-loaded saturated cluster.
    if (options_.workStealing) {
        while (inflight_[c].size() < maxInFlight_) {
            size_t victim = clusters_.size();
            size_t depth = 0;
            for (size_t d = 0; d < clusters_.size(); ++d) {
                if (d == c || inflight_[d].size() < maxInFlight_)
                    continue;
                const size_t waiting =
                    arrivedWaitingLocked(d, simTime_[c]);
                if (waiting > depth) {
                    depth = waiting;
                    victim = d;
                }
            }
            if (victim == clusters_.size())
                break;
            if (!tryAdmitLocked(c, pending_[victim]))
                break;  // thief's pool full: stop stealing this round
            inflight_[c].back().stolen = true;
            ++clusterStats_[c].requestsStolen;
        }
    }

    // SLO-aware shedding: whoever is still waiting after this
    // admission pass and cannot meet the TTFT budget is dropped now,
    // before their wait grows further.
    if (options_.sloTtftBudgetSeconds > 0.0)
        shedOverBudgetLocked(c, simTime_[c]);

    if (inflight_[c].empty())
        return;

    // Slowdown windows are sampled once, at the round's start: the
    // whole round is charged `slow`x. Exactly 1.0 outside every
    // window, so an empty plan charges bit-identical times.
    const double slow =
        options_.faultPlan.slowdownFactor(c, simTime_[c]);
    health_[c] = slow > 1.0 ? ClusterHealth::Degraded
                            : ClusterHealth::Healthy;
    clusterStats_[c].health = health_[c];

    // One scheduling round: every in-flight request advances one
    // token step (prompt token while summarizing, fed-back argmax
    // while generating — exactly DfxAppliance::generate's order).
    std::vector<ContextStep> round;
    round.reserve(inflight_[c].size());
    for (InFlight &f : inflight_[c]) {
        int32_t tok;
        if (f.fed < f.request.prompt.size()) {
            tok = f.request.prompt[f.fed];
        } else {
            tok = f.next >= 0 ? f.next : 0;
            f.out.push_back(tok);
        }
        round.push_back({f.lease.ctx(), tok});
    }
    lock.unlock();
    TokenStats batch;
    std::vector<int32_t> next = appliance.stepBatch(round, &batch);
    lock.lock();

    const double charged = batch.seconds * slow;
    simTime_[c] += charged;
    clusterStats_[c].busySeconds += charged;
    if (slow > 1.0)
        clusterStats_[c].busyDegradedSeconds += charged;
    const double round_end = simTime_[c];

    // Retirement: completed requests release their KV context
    // immediately (the slot is re-acquired by the next admission),
    // pay the PCIe download and record their result.
    size_t keep = 0;
    for (size_t i = 0; i < inflight_[c].size(); ++i) {
        InFlight &f = inflight_[c][i];
        if (f.fed < f.request.prompt.size())
            ++f.fed;
        f.next = next[i];
        // The round that consumed the final prompt token produced the
        // request's first generated token (its argmax).
        if (f.fed == f.request.prompt.size() && f.firstTokenSim < 0.0)
            f.firstTokenSim = round_end;
        if (f.out.size() >= f.request.nOut) {
            simTime_[c] +=
                options_.faultPlan.linkFactor(simTime_[c]) *
                appliance.pcieSeconds(f.request.nOut * 4);
            f.lease.release();
            serviceSum_[c] += simTime_[c] - f.admitSim;
            RequestResult r;
            r.id = f.id;
            r.cluster = c;
            r.stolen = f.stolen;
            r.retries = f.retries;
            r.tokens = std::move(f.out);
            r.arrivalSeconds = f.request.arrivalSeconds;
            r.admitSimSeconds = f.admitSim;
            r.firstTokenSimSeconds = f.firstTokenSim;
            r.finishSimSeconds = simTime_[c];
            results_.push_back(std::move(r));
            ++clusterStats_[c].requestsServed;
            ++completed_;
        } else {
            if (keep != i)
                inflight_[c][keep] = std::move(f);
            ++keep;
        }
    }
    inflight_[c].resize(keep);
}

void
DfxServer::workerLoop(size_t c)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        const double t = nextEventTimeLocked(c);
        if (t == std::numeric_limits<double>::infinity()) {
            if (stop_)
                return;
            workCv_.wait(lock);
            continue;
        }
        runClusterRound(lock, c, t);
        if (completed_ == submitted_)
            idleCv_.notify_all();
    }
}

void
DfxServer::schedulerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const FaultPlan &plan = options_.faultPlan;
    for (;;) {
        size_t best = clusters_.size();
        double best_t = std::numeric_limits<double>::infinity();
        for (size_t c = 0; c < clusters_.size(); ++c) {
            const double t = nextEventTimeLocked(c);
            if (t < best_t) {
                best_t = t;
                best = c;
            }
        }
        // Fail-stop events merge into the event order by simulated
        // time (ties: fault before round, earliest plan index first).
        // They fire only while work is outstanding: an epoch that
        // never reaches atSeconds leaves the plan dormant, and
        // drain()'s reset re-arms it for the next epoch.
        if (submitted_ > completed_) {
            size_t ev = plan.failStops.size();
            double ev_t = std::numeric_limits<double>::infinity();
            for (size_t e = 0; e < plan.failStops.size(); ++e) {
                if (!failStopApplied_[e] &&
                    plan.failStops[e].atSeconds < ev_t) {
                    ev_t = plan.failStops[e].atSeconds;
                    ev = e;
                }
            }
            if (ev < plan.failStops.size() && ev_t <= best_t) {
                applyFailStopLocked(ev);
                if (completed_ == submitted_)
                    idleCv_.notify_all();
                continue;
            }
        }
        if (best == clusters_.size()) {
            if (stop_)
                return;
            workCv_.wait(lock);
            continue;
        }
        runClusterRound(lock, best, best_t);
        if (completed_ == submitted_)
            idleCv_.notify_all();
    }
}

ServerStats
DfxServer::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto done = [this] { return completed_ == submitted_; };
    if (options_.drainDeadlineHostSeconds > 0.0) {
        // Round-progress watchdog: a wedged scheduler (a bug, not a
        // modeled fault) fails loudly with diagnostics instead of
        // hanging the calling test or bench forever.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    options_.drainDeadlineHostSeconds));
        if (!idleCv_.wait_until(lock, deadline, done))
            DFX_FATAL(
                "drain deadline: %.1f host seconds elapsed with "
                "%llu of %llu requests outstanding\n%s",
                options_.drainDeadlineHostSeconds,
                static_cast<unsigned long long>(submitted_ -
                                                completed_),
                static_cast<unsigned long long>(submitted_),
                wedgeReportLocked().c_str());
    } else {
        idleCv_.wait(lock, done);
    }

    ServerStats stats;
    std::sort(results_.begin(), results_.end(),
              [](const RequestResult &a, const RequestResult &b) {
                  return a.id < b.id;
              });
    stats.requests = results_.size();
    // Latency/TTFT/queue-delay aggregates cover completed requests
    // only; Shed/Failed results carry no meaningful timings.
    std::vector<double> lat, ttft, qdelay;
    lat.reserve(results_.size());
    ttft.reserve(results_.size());
    qdelay.reserve(results_.size());
    for (const RequestResult &r : results_) {
        if (r.outcome != RequestOutcome::Completed)
            continue;
        ++stats.completedRequests;
        stats.totalOutputTokens += r.tokens.size();
        stats.totalLatencySeconds += r.latencySeconds();
        lat.push_back(r.latencySeconds());
        ttft.push_back(r.ttftSeconds());
        qdelay.push_back(r.queueDelaySeconds());
    }
    // An empty epoch has no makespan: don't report whatever the
    // simulated clocks happen to hold (admission bumps them before
    // completion ever would).
    stats.makespanSeconds =
        results_.empty()
            ? 0.0
            : *std::max_element(simTime_.begin(), simTime_.end());
    if (!lat.empty()) {
        const double n = static_cast<double>(lat.size());
        stats.p99LatencySeconds = perf::percentile(lat, 0.99);
        stats.ttftP99Seconds = perf::percentile(ttft, 0.99);
        stats.queueDelayP99Seconds = perf::percentile(qdelay, 0.99);
        for (size_t i = 0; i < lat.size(); ++i) {
            stats.ttftMeanSeconds += ttft[i] / n;
            stats.queueDelayMeanSeconds += qdelay[i] / n;
        }
    }
    stats.totalFailovers = failovers_;
    stats.totalRetries = retries_;
    stats.totalShed = shed_;
    stats.totalFailed = failed_;
    stats.requeuedTokens = requeuedTokens_;
    stats.clusters = clusterStats_;
    for (ClusterEpochStats &cs : stats.clusters) {
        cs.utilization = stats.makespanSeconds > 0.0
                             ? cs.busySeconds / stats.makespanSeconds
                             : 0.0;
        cs.utilizationDegraded =
            stats.makespanSeconds > 0.0
                ? cs.busyDegradedSeconds / stats.makespanSeconds
                : 0.0;
        cs.utilizationHealthy =
            cs.utilization - cs.utilizationDegraded;
        stats.totalSteals += cs.requestsStolen;
    }
    stats.results = std::move(results_);

    // Reset the epoch: ids, simulated clocks, health and the fault
    // plan start over (the plan replays in the next epoch).
    results_.clear();
    submitted_ = 0;
    completed_ = 0;
    failovers_ = 0;
    retries_ = 0;
    shed_ = 0;
    failed_ = 0;
    requeuedTokens_ = 0;
    std::fill(simTime_.begin(), simTime_.end(), 0.0);
    clusterStats_.assign(clusters_.size(), ClusterEpochStats{});
    health_.assign(clusters_.size(), ClusterHealth::Healthy);
    failStopApplied_.assign(options_.faultPlan.failStops.size(),
                            false);
    std::fill(serviceSum_.begin(), serviceSum_.end(), 0.0);
    return stats;
}

ServerStats
DfxServer::serve(const std::vector<ServerRequest> &requests)
{
    // Enqueue the whole batch before waking the scheduler, so round
    // composition (and therefore the batch-amortized timing) does not
    // depend on how host-time submission interleaves with the first
    // rounds — serve() sweeps are bit-reproducible.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const ServerRequest &r : requests)
            submitLocked(r);
    }
    workCv_.notify_all();
    return drain();
}

}  // namespace dfx
