/**
 * @file
 * Concurrent multi-cluster server implementation.
 *
 * One scheduler thread per cluster. Shared state (per-cluster FIFO
 * queues, simulated clocks, results, epoch counters) lives behind a
 * single mutex; the expensive part of a scheduling round — the
 * batched token step — runs unlocked, since each worker owns its
 * appliance exclusively.
 */
#include "appliance/server.hpp"

#include <algorithm>
#include <cmath>

namespace dfx {

DfxServer::DfxServer(const DfxSystemConfig &config, size_t n_clusters)
{
    DFX_ASSERT(n_clusters >= 1, "server needs at least one cluster");
    DFX_ASSERT(config.kvContexts >= 1,
               "server needs at least one KV context per cluster");
    maxInFlight_ = config.kvContexts;
    clusters_.reserve(n_clusters);
    for (size_t i = 0; i < n_clusters; ++i)
        clusters_.push_back(std::make_unique<DfxAppliance>(config));
    pending_.resize(n_clusters);
    simTime_.assign(n_clusters, 0.0);
    workers_.reserve(n_clusters);
    for (size_t i = 0; i < n_clusters; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

DfxServer::~DfxServer()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
DfxServer::loadWeights(const GptWeights &weights)
{
    for (auto &c : clusters_)
        c->loadWeights(weights);
}

uint64_t
DfxServer::submitLocked(ServerRequest request)
{
    DFX_ASSERT(!request.prompt.empty(), "empty prompt");
    DFX_ASSERT(request.nOut >= 1, "need at least one output token");
    const size_t max_seq = clusters_[0]->config().model.maxSeq;
    DFX_ASSERT(request.prompt.size() + request.nOut <= max_seq,
               "request %zu+%zu exceeds max context %zu",
               request.prompt.size(), request.nOut, max_seq);
    const uint64_t id = submitted_++;
    // Deterministic round-robin dispatch: per-request tokens and
    // per-cluster schedules are reproducible regardless of
    // host-thread interleaving.
    InFlight f;
    f.id = id;
    f.request = std::move(request);
    pending_[id % clusters_.size()].push_back(std::move(f));
    return id;
}

uint64_t
DfxServer::submit(ServerRequest request)
{
    uint64_t id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        id = submitLocked(std::move(request));
    }
    workCv_.notify_all();
    return id;
}

void
DfxServer::workerLoop(size_t c)
{
    DfxAppliance &appliance = *clusters_[c];
    std::vector<InFlight> inflight;  // kept in admission (FIFO) order
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        // Admission: claim queued requests up to the KV residency
        // limit, FIFO. Each admitted request pays its PCIe upload and
        // takes ownership of a KV context.
        while (inflight.size() < maxInFlight_ && !pending_[c].empty()) {
            InFlight f = std::move(pending_[c].front());
            pending_[c].pop_front();
            f.admitSim = simTime_[c];
            simTime_[c] += appliance.pcieSeconds(
                f.request.prompt.size() * 4 + 64);
            f.ctx = appliance.acquireContext();
            inflight.push_back(std::move(f));
        }
        if (inflight.empty()) {
            if (stop_)
                return;
            workCv_.wait(lock);
            continue;
        }
        lock.unlock();

        // One scheduling round: every in-flight request advances one
        // token step (prompt token while summarizing, fed-back argmax
        // while generating — exactly DfxAppliance::generate's order).
        std::vector<ContextStep> round;
        round.reserve(inflight.size());
        for (InFlight &f : inflight) {
            int32_t tok;
            if (f.fed < f.request.prompt.size()) {
                tok = f.request.prompt[f.fed];
            } else {
                tok = f.next >= 0 ? f.next : 0;
                f.out.push_back(tok);
            }
            round.push_back({f.ctx, tok});
        }
        TokenStats batch;
        std::vector<int32_t> next = appliance.stepBatch(round, &batch);

        lock.lock();
        simTime_[c] += batch.seconds;
        // Retirement: completed requests release their KV context,
        // pay the PCIe download and record their result.
        size_t keep = 0;
        for (size_t i = 0; i < inflight.size(); ++i) {
            InFlight &f = inflight[i];
            if (f.fed < f.request.prompt.size())
                ++f.fed;
            f.next = next[i];
            if (f.out.size() >= f.request.nOut) {
                simTime_[c] +=
                    appliance.pcieSeconds(f.request.nOut * 4);
                appliance.releaseContext(f.ctx);
                RequestResult r;
                r.id = f.id;
                r.cluster = c;
                r.tokens = std::move(f.out);
                r.admitSimSeconds = f.admitSim;
                r.finishSimSeconds = simTime_[c];
                results_.push_back(std::move(r));
                ++completed_;
            } else {
                if (keep != i)
                    inflight[keep] = std::move(f);
                ++keep;
            }
        }
        inflight.resize(keep);
        if (completed_ == submitted_)
            idleCv_.notify_all();
    }
}

ServerStats
DfxServer::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return completed_ == submitted_; });

    ServerStats stats;
    std::sort(results_.begin(), results_.end(),
              [](const RequestResult &a, const RequestResult &b) {
                  return a.id < b.id;
              });
    stats.requests = results_.size();
    for (const RequestResult &r : results_) {
        stats.totalOutputTokens += r.tokens.size();
        stats.totalLatencySeconds += r.latencySeconds();
    }
    // An empty epoch has no makespan: don't report whatever the
    // simulated clocks happen to hold (admission bumps them before
    // completion ever would).
    stats.makespanSeconds =
        results_.empty()
            ? 0.0
            : *std::max_element(simTime_.begin(), simTime_.end());
    if (!results_.empty()) {
        std::vector<double> lat;
        lat.reserve(results_.size());
        for (const RequestResult &r : results_)
            lat.push_back(r.latencySeconds());
        std::sort(lat.begin(), lat.end());
        const size_t n = lat.size();
        const size_t idx =
            (99 * n + 99) / 100 - 1;  // ceil(0.99 n) - 1
        stats.p99LatencySeconds = lat[idx];
    }
    stats.results = std::move(results_);

    // Reset the epoch: ids and simulated clocks start over.
    results_.clear();
    submitted_ = 0;
    completed_ = 0;
    std::fill(simTime_.begin(), simTime_.end(), 0.0);
    return stats;
}

ServerStats
DfxServer::serve(const std::vector<ServerRequest> &requests)
{
    // Enqueue the whole batch before waking any scheduler, so round
    // composition (and therefore the batch-amortized timing) does not
    // depend on how submission interleaves with the first rounds —
    // serve() sweeps are bit-reproducible.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const ServerRequest &r : requests)
            submitLocked(r);
    }
    workCv_.notify_all();
    return drain();
}

}  // namespace dfx
