/**
 * @file
 * Multi-cluster server implementation.
 */
#include "appliance/server.hpp"

#include <algorithm>

namespace dfx {

DfxServer::DfxServer(const DfxSystemConfig &config, size_t n_clusters)
{
    DFX_ASSERT(n_clusters >= 1, "server needs at least one cluster");
    clusters_.reserve(n_clusters);
    for (size_t i = 0; i < n_clusters; ++i)
        clusters_.push_back(std::make_unique<DfxAppliance>(config));
}

void
DfxServer::loadWeights(const GptWeights &weights)
{
    for (auto &c : clusters_)
        c->loadWeights(weights);
}

ServerStats
DfxServer::serve(const std::vector<ServerRequest> &requests)
{
    ServerStats stats;
    stats.requests = requests.size();
    std::vector<double> queue_time(clusters_.size(), 0.0);
    for (size_t i = 0; i < requests.size(); ++i) {
        const ServerRequest &req = requests[i];
        const size_t c = i % clusters_.size();
        GenerationResult r =
            clusters_[c]->generate(req.prompt, req.nOut);
        queue_time[c] += r.totalSeconds();
        stats.totalLatencySeconds += r.totalSeconds();
        stats.totalOutputTokens += r.tokens.size();
    }
    stats.makespanSeconds =
        *std::max_element(queue_time.begin(), queue_time.end());
    return stats;
}

}  // namespace dfx
