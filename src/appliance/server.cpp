/**
 * @file
 * Continuously-batched multi-cluster server implementation.
 *
 * With work stealing enabled, one scheduler thread runs a
 * deterministic discrete-event loop over the clusters: it repeatedly
 * picks the cluster whose next round boundary is earliest in
 * simulated time (ties broken by cluster index) and processes that
 * boundary — admit arrived requests into free KV slots, steal from
 * saturated clusters, run one batched token round, retire completed
 * requests. With stealing off, boundaries on different clusters are
 * causally independent, so each cluster gets its own scheduler
 * thread processing only its own boundaries and clusters' rounds run
 * host-parallel. Shared state (pending queues, in-flight sets,
 * simulated clocks, results, epoch counters) lives behind a single
 * mutex in both modes; the expensive part of a round — the batched
 * token step — runs unlocked, since each scheduler thread owns its
 * appliance(s) exclusively.
 *
 * Processing boundaries in simulated-time order is what makes
 * admission and stealing decisions deterministic: a steal at
 * simulated time t observes exactly the queue state every other
 * cluster had produced by its boundaries at times <= t, regardless of
 * host thread timing. One deliberate approximation: a cluster's
 * retirements are applied when its round is processed (at the round's
 * *start* time in the event order), so a thief whose boundary falls
 * inside a victim's in-progress round sees the victim's
 * post-retirement slot count slightly early and may decline a steal
 * it could have made — under-stealing conservatively, never stealing
 * a request whose home cluster had capacity.
 */
#include "appliance/server.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dfx {

double
interpolatedPercentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    q = std::min(1.0, std::max(0.0, q));
    const double pos = q * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    if (lo + 1 >= values.size())
        return values.back();
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + frac * (values[lo + 1] - values[lo]);
}

DfxServer::DfxServer(const DfxSystemConfig &config, size_t n_clusters,
                     ServerOptions options)
    : options_(options)
{
    DFX_ASSERT(n_clusters >= 1, "server needs at least one cluster");
    DFX_ASSERT(config.kvContexts >= 1,
               "server needs at least one KV context per cluster");
    maxInFlight_ = config.kvContexts;
    clusters_.reserve(n_clusters);
    for (size_t i = 0; i < n_clusters; ++i)
        clusters_.push_back(std::make_unique<DfxAppliance>(config));
    pending_.resize(n_clusters);
    inflight_.resize(n_clusters);
    simTime_.assign(n_clusters, 0.0);
    clusterStats_.assign(n_clusters, ClusterEpochStats{});
    if (options_.workStealing) {
        schedulers_.emplace_back([this] { schedulerLoop(); });
    } else {
        schedulers_.reserve(n_clusters);
        for (size_t c = 0; c < n_clusters; ++c)
            schedulers_.emplace_back([this, c] { workerLoop(c); });
    }
}

DfxServer::~DfxServer()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : schedulers_)
        t.join();
}

void
DfxServer::loadWeights(const GptWeights &weights)
{
    for (auto &c : clusters_)
        c->loadWeights(weights);
}

uint64_t
DfxServer::submitLocked(ServerRequest request)
{
    DFX_ASSERT(!request.prompt.empty(), "empty prompt");
    DFX_ASSERT(request.nOut >= 1, "need at least one output token");
    DFX_ASSERT(std::isfinite(request.arrivalSeconds) &&
                   request.arrivalSeconds >= 0.0,
               "arrival timestamp must be finite and non-negative");
    const size_t max_seq = clusters_[0]->config().model.maxSeq;
    DFX_ASSERT(request.prompt.size() + request.nOut <= max_seq,
               "request %zu+%zu exceeds max context %zu",
               request.prompt.size(), request.nOut, max_seq);
    const uint64_t id = submitted_++;
    // Deterministic round-robin home assignment; stealing (when
    // enabled) may relocate the request later, at a deterministic
    // simulated-time boundary.
    InFlight f;
    f.id = id;
    f.request = std::move(request);
    f.home = id % clusters_.size();
    // Pending queues are kept sorted by (arrival, id): generators
    // emit non-decreasing arrivals, but an explicit trace may not.
    auto &queue = pending_[f.home];
    auto pos = std::upper_bound(
        queue.begin(), queue.end(), f,
        [](const InFlight &a, const InFlight &b) {
            return a.request.arrivalSeconds < b.request.arrivalSeconds;
        });
    queue.insert(pos, std::move(f));
    return id;
}

uint64_t
DfxServer::submit(ServerRequest request)
{
    uint64_t id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        id = submitLocked(std::move(request));
    }
    workCv_.notify_all();
    return id;
}

size_t
DfxServer::arrivedWaitingLocked(size_t c, double t) const
{
    size_t n = 0;
    for (const InFlight &f : pending_[c]) {
        if (f.request.arrivalSeconds > t)
            break;  // sorted by arrival
        ++n;
    }
    return n;
}

double
DfxServer::nextEventTimeLocked(size_t c) const
{
    // A cluster with requests in flight has a round to run right now.
    if (!inflight_[c].empty())
        return simTime_[c];
    double t = std::numeric_limits<double>::infinity();
    // Idle cluster: its next event is the earliest of its own
    // arrivals (the clock jumps forward to the arrival) ...
    if (!pending_[c].empty())
        t = std::max(simTime_[c],
                     pending_[c].front().request.arrivalSeconds);
    // ... or, with stealing on, the earliest arrival waiting behind a
    // saturated cluster. (Only saturated victims are stealable: if
    // the home cluster has a free slot it admits the request itself
    // at the same instant, and home placement wins.)
    if (options_.workStealing) {
        for (size_t d = 0; d < clusters_.size(); ++d) {
            if (d == c || inflight_[d].size() < maxInFlight_ ||
                pending_[d].empty())
                continue;
            t = std::min(
                t, std::max(simTime_[c],
                            pending_[d].front().request.arrivalSeconds));
        }
    }
    return t;
}

void
DfxServer::admitLocked(size_t c, InFlight f)
{
    // Admission pays the host->device PCIe upload (input ids + system
    // configuration) on the cluster's simulated clock and takes
    // ownership of a KV context slot.
    f.admitSim = simTime_[c];
    simTime_[c] +=
        clusters_[c]->pcieSeconds(f.request.prompt.size() * 4 + 64);
    f.ctx = clusters_[c]->acquireContext();
    inflight_[c].push_back(std::move(f));
}

void
DfxServer::runClusterRound(std::unique_lock<std::mutex> &lock, size_t c,
                           double t)
{
    DfxAppliance &appliance = *clusters_[c];
    simTime_[c] = std::max(simTime_[c], t);

    // Admission: claim arrived requests from the home queue up to the
    // KV residency limit, oldest first — the moment a slot frees, the
    // next round picks up the waiter (continuous batching, no epoch
    // barrier).
    while (inflight_[c].size() < maxInFlight_ && !pending_[c].empty() &&
           pending_[c].front().request.arrivalSeconds <= simTime_[c]) {
        InFlight f = std::move(pending_[c].front());
        pending_[c].pop_front();
        admitLocked(c, std::move(f));
    }

    // Work stealing: fill remaining slots with the oldest waiting
    // request of the most-loaded saturated cluster.
    if (options_.workStealing) {
        while (inflight_[c].size() < maxInFlight_) {
            size_t victim = clusters_.size();
            size_t depth = 0;
            for (size_t d = 0; d < clusters_.size(); ++d) {
                if (d == c || inflight_[d].size() < maxInFlight_)
                    continue;
                const size_t waiting =
                    arrivedWaitingLocked(d, simTime_[c]);
                if (waiting > depth) {
                    depth = waiting;
                    victim = d;
                }
            }
            if (victim == clusters_.size())
                break;
            InFlight f = std::move(pending_[victim].front());
            pending_[victim].pop_front();
            f.stolen = true;
            ++clusterStats_[c].requestsStolen;
            admitLocked(c, std::move(f));
        }
    }

    if (inflight_[c].empty())
        return;

    // One scheduling round: every in-flight request advances one
    // token step (prompt token while summarizing, fed-back argmax
    // while generating — exactly DfxAppliance::generate's order).
    std::vector<ContextStep> round;
    round.reserve(inflight_[c].size());
    for (InFlight &f : inflight_[c]) {
        int32_t tok;
        if (f.fed < f.request.prompt.size()) {
            tok = f.request.prompt[f.fed];
        } else {
            tok = f.next >= 0 ? f.next : 0;
            f.out.push_back(tok);
        }
        round.push_back({f.ctx, tok});
    }
    lock.unlock();
    TokenStats batch;
    std::vector<int32_t> next = appliance.stepBatch(round, &batch);
    lock.lock();

    simTime_[c] += batch.seconds;
    clusterStats_[c].busySeconds += batch.seconds;
    const double round_end = simTime_[c];

    // Retirement: completed requests release their KV context
    // immediately (the slot is re-acquired by the next admission),
    // pay the PCIe download and record their result.
    size_t keep = 0;
    for (size_t i = 0; i < inflight_[c].size(); ++i) {
        InFlight &f = inflight_[c][i];
        if (f.fed < f.request.prompt.size())
            ++f.fed;
        f.next = next[i];
        // The round that consumed the final prompt token produced the
        // request's first generated token (its argmax).
        if (f.fed == f.request.prompt.size() && f.firstTokenSim < 0.0)
            f.firstTokenSim = round_end;
        if (f.out.size() >= f.request.nOut) {
            simTime_[c] += appliance.pcieSeconds(f.request.nOut * 4);
            appliance.releaseContext(f.ctx);
            RequestResult r;
            r.id = f.id;
            r.cluster = c;
            r.stolen = f.stolen;
            r.tokens = std::move(f.out);
            r.arrivalSeconds = f.request.arrivalSeconds;
            r.admitSimSeconds = f.admitSim;
            r.firstTokenSimSeconds = f.firstTokenSim;
            r.finishSimSeconds = simTime_[c];
            results_.push_back(std::move(r));
            ++clusterStats_[c].requestsServed;
            ++completed_;
        } else {
            if (keep != i)
                inflight_[c][keep] = std::move(f);
            ++keep;
        }
    }
    inflight_[c].resize(keep);
}

void
DfxServer::workerLoop(size_t c)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        const double t = nextEventTimeLocked(c);
        if (t == std::numeric_limits<double>::infinity()) {
            if (stop_)
                return;
            workCv_.wait(lock);
            continue;
        }
        runClusterRound(lock, c, t);
        if (completed_ == submitted_)
            idleCv_.notify_all();
    }
}

void
DfxServer::schedulerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        size_t best = clusters_.size();
        double best_t = std::numeric_limits<double>::infinity();
        for (size_t c = 0; c < clusters_.size(); ++c) {
            const double t = nextEventTimeLocked(c);
            if (t < best_t) {
                best_t = t;
                best = c;
            }
        }
        if (best == clusters_.size()) {
            if (stop_)
                return;
            workCv_.wait(lock);
            continue;
        }
        runClusterRound(lock, best, best_t);
        if (completed_ == submitted_)
            idleCv_.notify_all();
    }
}

ServerStats
DfxServer::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return completed_ == submitted_; });

    ServerStats stats;
    std::sort(results_.begin(), results_.end(),
              [](const RequestResult &a, const RequestResult &b) {
                  return a.id < b.id;
              });
    stats.requests = results_.size();
    std::vector<double> lat, ttft, qdelay;
    lat.reserve(results_.size());
    ttft.reserve(results_.size());
    qdelay.reserve(results_.size());
    for (const RequestResult &r : results_) {
        stats.totalOutputTokens += r.tokens.size();
        stats.totalLatencySeconds += r.latencySeconds();
        lat.push_back(r.latencySeconds());
        ttft.push_back(r.ttftSeconds());
        qdelay.push_back(r.queueDelaySeconds());
    }
    // An empty epoch has no makespan: don't report whatever the
    // simulated clocks happen to hold (admission bumps them before
    // completion ever would).
    stats.makespanSeconds =
        results_.empty()
            ? 0.0
            : *std::max_element(simTime_.begin(), simTime_.end());
    if (!results_.empty()) {
        const double n = static_cast<double>(results_.size());
        stats.p99LatencySeconds = interpolatedPercentile(lat, 0.99);
        stats.ttftP99Seconds = interpolatedPercentile(ttft, 0.99);
        stats.queueDelayP99Seconds =
            interpolatedPercentile(qdelay, 0.99);
        for (size_t i = 0; i < results_.size(); ++i) {
            stats.ttftMeanSeconds += ttft[i] / n;
            stats.queueDelayMeanSeconds += qdelay[i] / n;
        }
    }
    stats.clusters = clusterStats_;
    for (ClusterEpochStats &cs : stats.clusters) {
        cs.utilization = stats.makespanSeconds > 0.0
                             ? cs.busySeconds / stats.makespanSeconds
                             : 0.0;
        stats.totalSteals += cs.requestsStolen;
    }
    stats.results = std::move(results_);

    // Reset the epoch: ids and simulated clocks start over.
    results_.clear();
    submitted_ = 0;
    completed_ = 0;
    std::fill(simTime_.begin(), simTime_.end(), 0.0);
    clusterStats_.assign(clusters_.size(), ClusterEpochStats{});
    return stats;
}

ServerStats
DfxServer::serve(const std::vector<ServerRequest> &requests)
{
    // Enqueue the whole batch before waking the scheduler, so round
    // composition (and therefore the batch-amortized timing) does not
    // depend on how host-time submission interleaves with the first
    // rounds — serve() sweeps are bit-reproducible.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const ServerRequest &r : requests)
            submitLocked(r);
    }
    workCv_.notify_all();
    return drain();
}

}  // namespace dfx
