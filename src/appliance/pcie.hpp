/**
 * @file
 * Host-FPGA PCIe link model (paper §IV-A).
 *
 * PCIe Gen3 x16 at 16 GB/s connects the host CPU to the cluster. The
 * host's involvement per request is small by design — the controller
 * runs the whole service on-device ("the controller returns the done
 * signal back to the host once the entire GPT-2 operation finishes",
 * §V-A) — but it is modeled so end-to-end latency includes it: the
 * input token ids and system configuration go down once, each
 * generated token id comes back up.
 */
#ifndef DFX_APPLIANCE_PCIE_HPP
#define DFX_APPLIANCE_PCIE_HPP

#include <cstdint>

namespace dfx {

/** PCIe link parameters and transfer cost model. */
struct PcieModel
{
    double bytesPerSec = 16e9;      ///< Gen3 x16 effective payload rate
    double perTransferLatency = 5e-6;  ///< doorbell + DMA setup

    /** Seconds for one host->device or device->host transfer. */
    double
    transferSeconds(uint64_t bytes) const
    {
        return perTransferLatency +
               static_cast<double>(bytes) / bytesPerSec;
    }
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_PCIE_HPP
