/**
 * @file
 * Multi-cluster DFX serving subsystem (paper §IV-A, §VI — and beyond).
 *
 * The paper's appliance computes "an independent workload" per
 * cluster: one stream at a time. This server turns that into a
 * concurrent serving system: a thread-safe admission queue
 * (`submit()`/`drain()`), a scheduler thread per cluster that
 * interleaves token steps across its in-flight requests between ring
 * syncs, and multi-context KV management — each admitted request owns
 * an isolated KV region in off-chip memory (allocate at admission,
 * step while resident, retire at completion), so contexts persist
 * across interleaved steps.
 *
 * Batching model: concurrent steps on one cluster share the weight
 * streams (the dominant HBM traffic of a decode step is the same for
 * every resident request), so a round of B interleaved steps costs
 * the first step in full and only the non-amortizable remainder
 * (MAC-array passes, per-request K/V streams, ring syncs) for each
 * batch-mate. Per-request tokens are bit-identical to serial
 * execution: functionally each step runs exactly as it would alone,
 * against its private KV context.
 *
 * Dispatch is deterministic: requests go to clusters round-robin by
 * submission id, and each cluster admits its queue FIFO — so the
 * simulated clocks, latencies and tokens are reproducible run to run
 * regardless of host-thread interleaving.
 */
#ifndef DFX_APPLIANCE_SERVER_HPP
#define DFX_APPLIANCE_SERVER_HPP

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "appliance/appliance.hpp"

namespace dfx {

/** One queued text-generation request. */
struct ServerRequest
{
    std::vector<int32_t> prompt;
    size_t nOut = 0;
};

/** Outcome of one served request. */
struct RequestResult
{
    uint64_t id = 0;          ///< submission order (0-based per epoch)
    size_t cluster = 0;       ///< cluster that served the request
    std::vector<int32_t> tokens;  ///< generated ids (functional mode)
    /** Cluster-simulated time when the request was admitted (its PCIe
     *  upload began); includes time spent waiting in the queue. */
    double admitSimSeconds = 0.0;
    /** Cluster-simulated time when the last token left over PCIe. */
    double finishSimSeconds = 0.0;

    /** Admission-to-completion latency (excludes queue wait). */
    double latencySeconds() const
    {
        return finishSimSeconds - admitSimSeconds;
    }
};

/** Result of serving a batch of requests (one drain epoch). */
struct ServerStats
{
    size_t requests = 0;
    size_t totalOutputTokens = 0;
    /** Wall time: per-cluster schedules advance in parallel. */
    double makespanSeconds = 0.0;
    /** Sum of individual request service latencies. */
    double totalLatencySeconds = 0.0;
    /** 99th-percentile service latency across the epoch's requests. */
    double p99LatencySeconds = 0.0;
    /** Per-request outcomes, ordered by submission id. */
    std::vector<RequestResult> results;

    double
    throughputTokensPerSec() const
    {
        return makespanSeconds > 0.0
                   ? static_cast<double>(totalOutputTokens) /
                         makespanSeconds
                   : 0.0;
    }

    double
    meanLatencySeconds() const
    {
        return requests > 0
                   ? totalLatencySeconds /
                         static_cast<double>(requests)
                   : 0.0;
    }
};

/**
 * A DFX server appliance: one or more independent clusters, each
 * driven by its own scheduler thread that serves up to
 * `config.kvContexts` requests concurrently.
 */
class DfxServer
{
  public:
    /**
     * @param config per-cluster configuration (model, core count,
     *        kvContexts = max in-flight requests per cluster, ...)
     * @param n_clusters independent FPGA clusters in the chassis
     */
    DfxServer(const DfxSystemConfig &config, size_t n_clusters);
    ~DfxServer();

    DfxServer(const DfxServer &) = delete;
    DfxServer &operator=(const DfxServer &) = delete;

    /** Loads the same weights into every cluster (functional mode).
     *  Call before submitting requests. */
    void loadWeights(const GptWeights &weights);

    /**
     * Enqueues a request (thread-safe); scheduling starts
     * immediately. Returns the request id — its index into
     * `ServerStats::results` of the enclosing drain epoch. Tokens are
     * always deterministic, but the timing of incrementally-submitted
     * requests depends on how arrival interleaves with the running
     * rounds; use serve() for bit-reproducible sweeps.
     */
    uint64_t submit(ServerRequest request);

    /**
     * Blocks until every submitted request has completed, returns the
     * epoch's statistics and resets the epoch (ids and simulated
     * clocks start over).
     */
    ServerStats drain();

    /** submit() every request, then drain(). */
    ServerStats serve(const std::vector<ServerRequest> &requests);

    size_t nClusters() const { return clusters_.size(); }
    DfxAppliance &cluster(size_t i) { return *clusters_[i]; }
    /** Requests a cluster's scheduler keeps in flight concurrently. */
    size_t maxInFlight() const { return maxInFlight_; }

  private:
    /** Enqueue under mutex_; caller notifies workCv_. */
    uint64_t submitLocked(ServerRequest request);

    /** A request admitted onto a cluster, mid-generation. */
    struct InFlight
    {
        uint64_t id = 0;
        ServerRequest request;
        size_t ctx = 0;       ///< KV context owned by this request
        size_t fed = 0;       ///< prompt tokens consumed so far
        int32_t next = -1;    ///< last argmax (fed back once prompt ends)
        std::vector<int32_t> out;  ///< generated ids so far
        double admitSim = 0.0;
    };

    void workerLoop(size_t c);

    std::vector<std::unique_ptr<DfxAppliance>> clusters_;
    size_t maxInFlight_ = 1;

    std::mutex mutex_;
    std::condition_variable workCv_;  ///< workers: new work or stop
    std::condition_variable idleCv_;  ///< drain: epoch complete
    std::vector<std::deque<InFlight>> pending_;  ///< per-cluster FIFO
    std::vector<double> simTime_;     ///< per-cluster simulated clock
    std::vector<RequestResult> results_;
    uint64_t submitted_ = 0;
    uint64_t completed_ = 0;
    bool stop_ = false;

    std::vector<std::thread> workers_;
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_SERVER_HPP
