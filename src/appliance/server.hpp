/**
 * @file
 * Multi-cluster DFX serving subsystem (paper §IV-A, §VI — and beyond).
 *
 * The paper's appliance computes "an independent workload" per
 * cluster: one stream at a time. This server turns that into a
 * continuously-batched serving system driven by a simulated clock:
 *
 *  - **Admission queue.** `submit()` is thread-safe and assigns each
 *    request a home cluster (round-robin by submission id). A request
 *    carries an *arrival timestamp* in simulated seconds
 *    (`ServerRequest::arrivalSeconds`); it becomes admissible only
 *    once its home cluster's simulated clock reaches that time, so
 *    open-loop traffic (Poisson/trace generators in workload.hpp) can
 *    be replayed and time-to-first-token / queueing delay measured.
 *
 *  - **Continuous (iteration-level) batching.** A cluster admits a
 *    waiting request into the very next token round after a KV
 *    context slot frees — there is no epoch barrier. Completed
 *    requests retire at the end of the round that produced their last
 *    token, release their slot immediately, and the slot is
 *    re-acquired mid-stream by the oldest admissible waiter. An idle
 *    cluster jumps its clock forward to the next arrival.
 *
 *  - **Cross-cluster work stealing** (opt-in, `workStealing` in
 *    ServerOptions). At every round boundary a cluster first admits
 *    from its own queue; if KV slots remain free and another cluster
 *    is *saturated* (every slot busy) with arrived requests still
 *    waiting, the under-utilized cluster steals the oldest waiting
 *    request from the most-loaded victim. Tokens are bit-identical
 *    regardless of placement — every cluster holds the same weights
 *    and a request's KV context is private — so stealing changes
 *    *when and where* a request runs, never *what* it generates.
 *
 *  - **Fault injection and failover** (opt-in, `faultPlan` in
 *    ServerOptions — see appliance/faults.hpp). Fail-stops,
 *    slowdown windows and link degrades are simulated-clock events
 *    applied deterministically at round boundaries. On a fail-stop
 *    the cluster's in-flight requests lose their KV contexts and are
 *    requeued — oldest arrival first, each onto the least-loaded
 *    healthy cluster (ties by cluster index), re-prefilled from
 *    scratch (placement transparency keeps their tokens bit-identical
 *    to a healthy run) — within a bounded per-request retry budget;
 *    budget exhaustion, or the death of every cluster, surfaces a
 *    `RequestOutcome::Failed` result instead of hanging drain().
 *    The same routing rule re-homes a failed cluster's waiters and
 *    any later submission addressed to a failed cluster, identically
 *    in static and stealing modes.
 *
 *  - **SLO-aware shedding** (opt-in, `sloTtftBudgetSeconds`). When
 *    capacity can no longer hold the offered load — typically after a
 *    fail-stop — a waiter whose *projected* time-to-first-token
 *    exceeds the budget is shed at the round boundary (reported as
 *    `RequestOutcome::Shed`, never silently dropped). The projection
 *    is wait-so-far plus queue-position times the cluster's observed
 *    per-slot turnaround, so under overload the newest waiters at the
 *    back of the queue are shed while the oldest still finish — TTFT
 *    p99 stays bounded instead of growing with queue depth.
 *
 * Scheduling is deterministic in every mode, by two strategies:
 *
 *  - **Stealing off, no faults (default):** clusters share no
 *    schedule-relevant state, so each cluster gets its own scheduler
 *    thread processing its own round boundaries — per-cluster
 *    schedules are independent deterministic functions of the
 *    submitted workload, and clusters' token rounds run host-parallel
 *    (the PR-2 execution model).
 *  - **Stealing on, or a non-empty fault plan:** steal decisions and
 *    failover read other clusters' queues, so one scheduler thread
 *    processes *all* clusters' round boundaries and fault events in
 *    global simulated-time order (ties broken by cluster index;
 *    fault events before the round at the same instant) — a
 *    discrete-event simulation. Placement, failover, latencies and
 *    clocks are reproducible run to run regardless of host
 *    scheduling, at the cost of serializing rounds across clusters
 *    on the host.
 *
 * In both modes the expensive part of a round (the batched token
 * step) executes with the server mutex released, so `submit()` and
 * `drain()` never block behind compute, and host parallelism inside
 * a round comes from the cluster (`DfxSystemConfig::nThreads` steps
 * cores concurrently between ring syncs).
 *
 * Batching model: concurrent steps on one cluster share the weight
 * streams (the dominant HBM traffic of a decode step is the same for
 * every resident request), so a round of B interleaved steps costs
 * the first step in full and only the non-amortizable remainder
 * (MAC-array passes, per-request K/V streams, ring syncs) for each
 * batch-mate, floored by the per-channel HBM occupancy roofline
 * (see DfxCluster::stepTokenBatch / combineBatchRound). Per-request
 * tokens are bit-identical to serial execution: functionally each
 * step runs exactly as it would alone, against its private KV
 * context.
 */
#ifndef DFX_APPLIANCE_SERVER_HPP
#define DFX_APPLIANCE_SERVER_HPP

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "appliance/appliance.hpp"
#include "appliance/faults.hpp"

namespace dfx {

/**
 * One queued text-generation request. `arrivalSeconds` places the
 * request on the epoch's simulated timeline (0 = start of the drain
 * epoch): it cannot be admitted before that simulated instant, and
 * queueing delay / TTFT are measured from it. The default of 0.0
 * reproduces closed-loop "pool" serving where every request is
 * already waiting when the epoch starts.
 */
struct ServerRequest
{
    std::vector<int32_t> prompt;
    size_t nOut = 0;
    double arrivalSeconds = 0.0;  ///< simulated arrival timestamp
};

/** Terminal state of one submitted request. */
enum class RequestOutcome
{
    Completed,  ///< generated all requested tokens
    Shed,       ///< dropped by SLO-aware admission (never admitted)
    Failed,     ///< fail-stop retry budget exhausted / no healthy cluster
};

/** Outcome of one served request. */
struct RequestResult
{
    uint64_t id = 0;          ///< submission order (0-based per epoch)
    size_t cluster = 0;       ///< cluster that served the request
    bool stolen = false;      ///< served away from its home cluster
    /** How the request terminated. For Shed/Failed, `tokens` is empty
     *  and the timestamps all equal the simulated drop instant. */
    RequestOutcome outcome = RequestOutcome::Completed;
    /** Fail-stop re-prefills this request survived: each time its
     *  cluster died mid-generation, its partial output was discarded
     *  and it restarted from the prompt on a healthy cluster. */
    size_t retries = 0;
    std::vector<int32_t> tokens;  ///< generated ids (functional mode)
    /** Simulated arrival timestamp (copied from the request). */
    double arrivalSeconds = 0.0;
    /** Cluster-simulated time when the request was admitted (its PCIe
     *  upload began); `admit - arrival` is the queueing delay. */
    double admitSimSeconds = 0.0;
    /** Cluster-simulated time when the first generated token existed
     *  (end of the round that consumed the final prompt token). */
    double firstTokenSimSeconds = 0.0;
    /** Cluster-simulated time when the last token left over PCIe. */
    double finishSimSeconds = 0.0;

    /** Admission-to-completion latency (excludes queue wait). */
    double latencySeconds() const
    {
        return finishSimSeconds - admitSimSeconds;
    }

    /** Arrival-to-admission wait in the queue. */
    double queueDelaySeconds() const
    {
        return admitSimSeconds - arrivalSeconds;
    }

    /** Time to first token: arrival to first generated token (queue
     *  wait + upload + prefill). */
    double ttftSeconds() const
    {
        return firstTokenSimSeconds - arrivalSeconds;
    }
};

/** Per-cluster counters for one drain epoch. */
struct ClusterEpochStats
{
    size_t requestsServed = 0;
    size_t requestsStolen = 0;  ///< served here, homed elsewhere
    /** Simulated seconds this cluster spent inside token rounds. */
    double busySeconds = 0.0;
    /** Portion of busySeconds spent inside a slowdown window. */
    double busyDegradedSeconds = 0.0;
    /** busySeconds / epoch makespan (0 for an empty epoch). */
    double utilization = 0.0;
    /** Per-health-state utilization split: utilization while serving
     *  at full speed vs. while degraded (they sum to `utilization`). */
    double utilizationHealthy = 0.0;
    double utilizationDegraded = 0.0;
    /** Health at epoch end (Failed once a fail-stop was applied). */
    ClusterHealth health = ClusterHealth::Healthy;
};

/** Result of serving a batch of requests (one drain epoch). */
struct ServerStats
{
    size_t requests = 0;  ///< every terminal request, any outcome
    /** Requests that generated all their tokens; latency/TTFT/queue
     *  aggregates below cover only these. */
    size_t completedRequests = 0;
    size_t totalOutputTokens = 0;
    /** Wall time: per-cluster schedules advance in parallel. */
    double makespanSeconds = 0.0;
    /** Sum of individual request service latencies. */
    double totalLatencySeconds = 0.0;
    /** 99th-percentile service latency across the epoch's requests
     *  (interpolated, see perf::percentile). */
    double p99LatencySeconds = 0.0;
    /** Time-to-first-token (arrival -> first generated token). */
    double ttftMeanSeconds = 0.0;
    double ttftP99Seconds = 0.0;
    /** Arrival-to-admission queueing delay. */
    double queueDelayMeanSeconds = 0.0;
    double queueDelayP99Seconds = 0.0;
    /** Requests served on a cluster other than their home cluster. */
    size_t totalSteals = 0;
    /** Requests rerouted off a failed cluster (waiters and displaced
     *  in-flight requests alike; counted once per reroute). */
    size_t totalFailovers = 0;
    /** Fail-stop re-prefills: in-flight requests displaced by a
     *  fail-stop and restarted from the prompt elsewhere. */
    size_t totalRetries = 0;
    /** Requests shed by SLO-aware admission. */
    size_t totalShed = 0;
    /** Requests that exhausted their retry budget (or found no
     *  healthy cluster) and surfaced RequestOutcome::Failed. */
    size_t totalFailed = 0;
    /** Generated tokens discarded by fail-stops: work that had to be
     *  re-done from the prompt on another cluster. */
    size_t requeuedTokens = 0;
    /** Per-cluster utilization / steal counters. */
    std::vector<ClusterEpochStats> clusters;
    /** Per-request outcomes, ordered by submission id. */
    std::vector<RequestResult> results;

    double
    throughputTokensPerSec() const
    {
        return makespanSeconds > 0.0
                   ? static_cast<double>(totalOutputTokens) /
                         makespanSeconds
                   : 0.0;
    }

    double
    meanLatencySeconds() const
    {
        return completedRequests > 0
                   ? totalLatencySeconds /
                         static_cast<double>(completedRequests)
                   : 0.0;
    }
};

/** Serving policy knobs (beyond the per-cluster DfxSystemConfig). */
struct ServerOptions
{
    /**
     * Idle-capacity clusters steal the oldest arrived-and-waiting
     * request from the most-loaded saturated cluster. Off by default:
     * static round-robin placement, the PR-2 behavior.
     */
    bool workStealing = false;

    /**
     * Deterministic fault schedule, applied once per drain epoch on
     * the simulated clock. An empty plan (the default) leaves every
     * schedule, token and timestamp bit-identical to a fault-free
     * server; a non-empty plan forces the single-threaded DES
     * scheduler so failover placement is reproducible.
     */
    FaultPlan faultPlan;

    /**
     * Fail-stop re-prefills a request may survive before it is
     * surfaced as RequestOutcome::Failed. 2 tolerates a double
     * fail-stop along a request's failover path.
     */
    size_t retryBudget = 2;

    /**
     * SLO-aware shedding (off when 0): at each round boundary a
     * waiter whose projected TTFT exceeds this budget is shed. See
     * the file header for the projection rule.
     */
    double sloTtftBudgetSeconds = 0.0;

    /**
     * Wall-clock (host) deadline for drain(), in seconds; 0 disables.
     * A wedged scheduler then fails loudly — DFX_FATAL with
     * per-cluster health and queue-depth diagnostics — instead of
     * blocking forever. Enabled in tests and benches, off by default.
     */
    double drainDeadlineHostSeconds = 0.0;
};

/**
 * A DFX server appliance: one or more independent clusters serving a
 * shared request stream, each holding up to `config.kvContexts`
 * requests in flight concurrently.
 */
class DfxServer
{
  public:
    /**
     * @param config per-cluster configuration (model, core count,
     *        kvContexts = max in-flight requests per cluster, ...)
     * @param n_clusters independent FPGA clusters in the chassis
     * @param options serving policy (work stealing, ...)
     */
    DfxServer(const DfxSystemConfig &config, size_t n_clusters,
              ServerOptions options = {});
    ~DfxServer();

    DfxServer(const DfxServer &) = delete;
    DfxServer &operator=(const DfxServer &) = delete;

    /** Loads the same weights into every cluster (functional mode).
     *  Call before submitting requests. */
    void loadWeights(const GptWeights &weights);

    /**
     * Enqueues a request (thread-safe); scheduling starts
     * immediately. Returns the request id — its index into
     * `ServerStats::results` of the enclosing drain epoch. Tokens are
     * always deterministic, but the timing of incrementally-submitted
     * requests depends on how host-time submission interleaves with
     * the running rounds; use serve() (or submit everything, then
     * drain()) for bit-reproducible sweeps.
     */
    uint64_t submit(ServerRequest request);

    /**
     * Blocks until every submitted request has completed, returns the
     * epoch's statistics and resets the epoch (ids and simulated
     * clocks start over at 0, so the next epoch's arrival timestamps
     * are again relative to 0).
     */
    ServerStats drain();

    /** submit() every request, then drain(). */
    ServerStats serve(const std::vector<ServerRequest> &requests);

    size_t nClusters() const { return clusters_.size(); }
    DfxAppliance &cluster(size_t i) { return *clusters_[i]; }
    /** Requests a cluster's scheduler keeps in flight concurrently. */
    size_t maxInFlight() const { return maxInFlight_; }
    const ServerOptions &options() const { return options_; }

  private:
    /** Enqueue under mutex_; caller notifies workCv_. */
    uint64_t submitLocked(ServerRequest request);

    /** A request admitted onto a cluster, mid-generation — or still
     *  waiting in a pending queue (then only id/request/arrival/home
     *  are meaningful). */
    struct InFlight
    {
        uint64_t id = 0;
        ServerRequest request;
        size_t home = 0;      ///< round-robin home cluster
        bool stolen = false;  ///< admitted away from `home`
        /** KV context leased at admission (empty while pending);
         *  releases itself wherever the InFlight dies. */
        KvLease lease;
        size_t fed = 0;       ///< prompt tokens consumed so far
        int32_t next = -1;    ///< last argmax (fed back once prompt ends)
        std::vector<int32_t> out;  ///< generated ids so far
        size_t retries = 0;   ///< fail-stop re-prefills survived
        double admitSim = 0.0;
        double firstTokenSim = -1.0;  ///< <0 while still prefilling
    };

    /** Stealing mode: deterministic simulated-time event loop over
     *  all clusters (see file header). */
    void schedulerLoop();
    /** Static mode: per-cluster scheduler loop — cluster `c`'s events
     *  only, so independent clusters run host-parallel. */
    void workerLoop(size_t c);
    /** Earliest simulated time cluster `c` can make a scheduling
     *  decision (round boundary / admission / steal); +inf if it has
     *  nothing to do. Call with mutex_ held. */
    double nextEventTimeLocked(size_t c) const;
    /** Process cluster `c`'s round boundary at simulated time `t`:
     *  admit, steal, run one batched round, retire. Drops the lock
     *  around the batched step. */
    void runClusterRound(std::unique_lock<std::mutex> &lock, size_t c,
                         double t);
    /** Count of cluster `c`'s pending requests with arrival <= t. */
    size_t arrivedWaitingLocked(size_t c, double t) const;
    /**
     * Try to admit `queue`'s front request onto cluster `c`: lease a
     * KV context (on a paged cluster this also reserves pool blocks
     * and may alias a shared prompt prefix — the lease's shared
     * tokens skip prefill), charge the PCIe upload, move it into the
     * in-flight set. Returns false — queue untouched — when the
     * cluster cannot hold the request yet; admission then stops until
     * a retirement frees capacity (head-of-line, keeps arrival order).
     */
    bool tryAdmitLocked(size_t c, std::deque<InFlight> &queue);
    /** Apply fail-stop event `ev` (index into the plan): mark the
     *  cluster Failed, displace its in-flight requests and reroute
     *  them plus its waiters per the failover rule. */
    void applyFailStopLocked(size_t ev);
    /** Least-loaded healthy cluster (fewest in-flight + pending),
     *  ties by cluster index; nClusters() when none is healthy. */
    size_t routeTargetLocked() const;
    /** Insert `f` into cluster `c`'s pending queue keeping it sorted
     *  by (arrival, id). */
    void insertPendingLocked(size_t c, InFlight f);
    /** Surface `f` as a Shed/Failed result at simulated time `t` on
     *  cluster `c` (all timestamps = t, counts toward completion). */
    void recordTerminalLocked(InFlight f, size_t c,
                              RequestOutcome outcome, double t);
    /** Shed cluster `c`'s arrived waiters whose projected TTFT at
     *  time `t` exceeds the SLO budget (newest first). */
    void shedOverBudgetLocked(size_t c, double t);
    /** Diagnostic dump for a wedged or deadline-blown drain(). */
    std::string wedgeReportLocked() const;

    std::vector<std::unique_ptr<DfxAppliance>> clusters_;
    size_t maxInFlight_ = 1;
    ServerOptions options_;
    /** Single-threaded DES scheduling (stealing or non-empty plan). */
    bool useDes_ = false;

    std::mutex mutex_;
    std::condition_variable workCv_;  ///< schedulers: new work or stop
    std::condition_variable idleCv_;  ///< drain: epoch complete
    /** Per-cluster pending queues, sorted by (arrival, id). */
    std::vector<std::deque<InFlight>> pending_;
    /** Per-cluster in-flight sets, in admission order. */
    std::vector<std::vector<InFlight>> inflight_;
    std::vector<double> simTime_;     ///< per-cluster simulated clock
    std::vector<ClusterEpochStats> clusterStats_;
    std::vector<RequestResult> results_;
    std::vector<ClusterHealth> health_;   ///< per-cluster, per epoch
    std::vector<bool> failStopApplied_;   ///< per plan event, per epoch
    /** Per-cluster sum of completed-request service latencies (drives
     *  the shedding projection's observed per-slot turnaround). */
    std::vector<double> serviceSum_;
    uint64_t submitted_ = 0;
    uint64_t completed_ = 0;
    size_t failovers_ = 0;
    size_t retries_ = 0;
    size_t shed_ = 0;
    size_t failed_ = 0;
    size_t requeuedTokens_ = 0;
    bool stop_ = false;

    /** One global DES thread (stealing) or one thread per cluster
     *  (static placement). */
    std::vector<std::thread> schedulers_;
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_SERVER_HPP
