/**
 * @file
 * Multi-cluster DFX server (paper §IV-A, §VI).
 *
 * "One CPU and a homogeneous cluster of four FPGAs form a system to
 * compute an independent workload" — the 4U appliance carries two
 * such systems behind its dual-socket host ("the appliance itself is
 * capable of harnessing two sets of these configurations"). The
 * server dispatches independent text-generation requests across
 * clusters: latency per request is a single cluster's latency,
 * aggregate throughput scales with the cluster count.
 */
#ifndef DFX_APPLIANCE_SERVER_HPP
#define DFX_APPLIANCE_SERVER_HPP

#include <memory>
#include <vector>

#include "appliance/appliance.hpp"

namespace dfx {

/** One queued text-generation request. */
struct ServerRequest
{
    std::vector<int32_t> prompt;
    size_t nOut = 0;
};

/** Result of serving a batch of requests. */
struct ServerStats
{
    size_t requests = 0;
    size_t totalOutputTokens = 0;
    /** Wall time: per-cluster queues drain in parallel. */
    double makespanSeconds = 0.0;
    /** Sum of individual request latencies. */
    double totalLatencySeconds = 0.0;

    double
    throughputTokensPerSec() const
    {
        return static_cast<double>(totalOutputTokens) / makespanSeconds;
    }

    double
    meanLatencySeconds() const
    {
        return totalLatencySeconds / static_cast<double>(requests);
    }
};

/** A DFX server appliance with one or more independent clusters. */
class DfxServer
{
  public:
    /**
     * @param config per-cluster configuration (model, core count, ...)
     * @param n_clusters independent FPGA clusters in the chassis
     */
    DfxServer(const DfxSystemConfig &config, size_t n_clusters);

    /** Loads the same weights into every cluster (functional mode). */
    void loadWeights(const GptWeights &weights);

    /**
     * Serves a request queue with round-robin dispatch. Requests on
     * the same cluster serialize; clusters run in parallel.
     */
    ServerStats serve(const std::vector<ServerRequest> &requests);

    size_t nClusters() const { return clusters_.size(); }
    DfxAppliance &cluster(size_t i) { return *clusters_[i]; }

  private:
    std::vector<std::unique_ptr<DfxAppliance>> clusters_;
};

}  // namespace dfx

#endif  // DFX_APPLIANCE_SERVER_HPP
