/**
 * @file
 * Minimal dense row-major matrix / vector containers.
 *
 * These are deliberately simple: contiguous storage, bounds-checked
 * element access, and just the views the simulator needs (row slices,
 * column extraction). Heavy math lives in the simulated hardware units
 * and in `numeric/functions.hpp`, not here.
 */
#ifndef DFX_NUMERIC_TENSOR_HPP
#define DFX_NUMERIC_TENSOR_HPP

#include <cstddef>
#include <vector>

#include "common/fp16.hpp"
#include "common/logging.hpp"

namespace dfx {

/** Dense vector with bounds-checked access. */
template <typename T>
class VectorT
{
  public:
    VectorT() = default;
    explicit VectorT(size_t n) : data_(n) {}
    VectorT(size_t n, T fill) : data_(n, fill) {}

    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }
    void resize(size_t n) { data_.resize(n); }
    void assign(size_t n, T v) { data_.assign(n, v); }

    T &
    operator[](size_t i)
    {
        DFX_ASSERT(i < data_.size(), "vector index %zu >= size %zu", i,
                   data_.size());
        return data_[i];
    }

    const T &
    operator[](size_t i) const
    {
        DFX_ASSERT(i < data_.size(), "vector index %zu >= size %zu", i,
                   data_.size());
        return data_[i];
    }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    auto begin() { return data_.begin(); }
    auto end() { return data_.end(); }
    auto begin() const { return data_.begin(); }
    auto end() const { return data_.end(); }

  private:
    std::vector<T> data_;
};

/** Dense row-major matrix with bounds-checked access. */
template <typename T>
class MatrixT
{
  public:
    MatrixT() = default;
    MatrixT(size_t rows, size_t cols) : rows_(rows), cols_(cols),
        data_(rows * cols) {}
    MatrixT(size_t rows, size_t cols, T fill) : rows_(rows), cols_(cols),
        data_(rows * cols, fill) {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }

    void
    resize(size_t rows, size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, T{});
    }

    T &
    at(size_t r, size_t c)
    {
        DFX_ASSERT(r < rows_ && c < cols_,
                   "matrix index (%zu,%zu) out of (%zu,%zu)", r, c, rows_,
                   cols_);
        return data_[r * cols_ + c];
    }

    const T &
    at(size_t r, size_t c) const
    {
        DFX_ASSERT(r < rows_ && c < cols_,
                   "matrix index (%zu,%zu) out of (%zu,%zu)", r, c, rows_,
                   cols_);
        return data_[r * cols_ + c];
    }

    /** Pointer to the start of row r. */
    T *rowPtr(size_t r) { return &at(r, 0); }
    const T *rowPtr(size_t r) const { return &at(r, 0); }

    /** Copies row r out as a vector. */
    VectorT<T>
    row(size_t r) const
    {
        VectorT<T> out(cols_);
        for (size_t c = 0; c < cols_; ++c)
            out[c] = at(r, c);
        return out;
    }

    /** Copies column c out as a vector. */
    VectorT<T>
    col(size_t c) const
    {
        VectorT<T> out(rows_);
        for (size_t r = 0; r < rows_; ++r)
            out[r] = at(r, c);
        return out;
    }

    /** Copies columns [c0, c0+n) into a rows x n matrix. */
    MatrixT<T>
    colSlice(size_t c0, size_t n) const
    {
        DFX_ASSERT(c0 + n <= cols_, "colSlice [%zu,+%zu) out of %zu", c0, n,
                   cols_);
        MatrixT<T> out(rows_, n);
        for (size_t r = 0; r < rows_; ++r)
            for (size_t c = 0; c < n; ++c)
                out.at(r, c) = at(r, c0 + c);
        return out;
    }

    /** Copies rows [r0, r0+n) into an n x cols matrix. */
    MatrixT<T>
    rowSlice(size_t r0, size_t n) const
    {
        DFX_ASSERT(r0 + n <= rows_, "rowSlice [%zu,+%zu) out of %zu", r0, n,
                   rows_);
        MatrixT<T> out(n, cols_);
        for (size_t r = 0; r < n; ++r)
            for (size_t c = 0; c < cols_; ++c)
                out.at(r, c) = at(r0 + r, c);
        return out;
    }

    /** Returns the transpose. */
    MatrixT<T>
    transposed() const
    {
        MatrixT<T> out(cols_, rows_);
        for (size_t r = 0; r < rows_; ++r)
            for (size_t c = 0; c < cols_; ++c)
                out.at(c, r) = at(r, c);
        return out;
    }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<T> data_;
};

using VecF = VectorT<float>;
using VecD = VectorT<double>;
using VecH = VectorT<Half>;
using MatF = MatrixT<float>;
using MatD = MatrixT<double>;
using MatH = MatrixT<Half>;

/** Converts a float vector to FP16 (round-to-nearest-even). */
VecH toHalf(const VecF &v);
/** Converts a float matrix to FP16. */
MatH toHalf(const MatF &m);
/** Widens an FP16 vector to float. */
VecF toFloat(const VecH &v);
/** Widens an FP16 matrix to float. */
MatF toFloat(const MatH &m);

/** Max absolute elementwise difference between two float vectors. */
float maxAbsDiff(const VecF &a, const VecF &b);

}  // namespace dfx

#endif  // DFX_NUMERIC_TENSOR_HPP
