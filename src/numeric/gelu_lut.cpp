/**
 * @file
 * GELU lookup-table implementation.
 */
#include "numeric/gelu_lut.hpp"

#include <cmath>

#include "numeric/functions.hpp"

namespace dfx {

GeluLut::GeluLut()
{
    // Sample points are the segment left edges; segment i spans
    // [kLo + i*step, kLo + (i+1)*step).
    const float step = (kHi - kLo) / static_cast<float>(kSamples);
    for (size_t i = 0; i < kSamples; ++i) {
        float x = kLo + step * static_cast<float>(i);
        table_[i] = Half::fromFloat(geluExact(x));
    }
}

Half
GeluLut::eval(Half x) const
{
    const float xf = x.toFloat();
    if (std::isnan(xf))
        return x;
    if (xf <= kLo)
        return Half::zero();
    if (xf >= kHi)
        return x;  // identity region: slope has converged to 1

    const float step = (kHi - kLo) / static_cast<float>(kSamples);
    float pos = (xf - kLo) / step;
    size_t idx = static_cast<size_t>(pos);
    if (idx >= kSamples - 1)
        idx = kSamples - 2;
    // Linear interpolation computed in FP16, as the SFU does:
    // y = y0 + t * (y1 - y0), each op rounded.
    Half y0 = table_[idx];
    Half y1 = table_[idx + 1];
    Half t = Half::fromFloat(pos - static_cast<float>(idx));
    return y0 + t * (y1 - y0);
}

float
GeluLut::maxError() const
{
    float worst = 0.0f;
    // Dense sweep at 8x table resolution.
    const size_t n = kSamples * 8;
    for (size_t i = 0; i <= n; ++i) {
        float x = kLo + (kHi - kLo) * static_cast<float>(i) /
                            static_cast<float>(n);
        float approx = eval(Half::fromFloat(x)).toFloat();
        float exact = geluExact(x);
        worst = std::max(worst, std::fabs(approx - exact));
    }
    return worst;
}

const GeluLut &
GeluLut::instance()
{
    static const GeluLut lut;
    return lut;
}

}  // namespace dfx
