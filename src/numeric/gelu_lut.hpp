/**
 * @file
 * Hardware GELU: lookup table with linear interpolation.
 *
 * The paper (§V-C, SFU_M): "To support GELU ... the lookup table is
 * used with linear approximation. We sample 2048 inputs ... and choose
 * [-8, 8] as the range because the slope converges on either side".
 * Outside the range the unit clamps: GELU(x) ~= 0 for x <= -8 and
 * GELU(x) ~= x for x >= 8.
 */
#ifndef DFX_NUMERIC_GELU_LUT_HPP
#define DFX_NUMERIC_GELU_LUT_HPP

#include <array>
#include <cstddef>

#include "common/fp16.hpp"

namespace dfx {

/** 2048-entry GELU lookup table over [-8, 8] with linear interpolation. */
class GeluLut
{
  public:
    static constexpr size_t kSamples = 2048;
    static constexpr float kLo = -8.0f;
    static constexpr float kHi = 8.0f;

    GeluLut();

    /**
     * Evaluates GELU through the table in FP16, modelling the SFU_M
     * datapath: index computation, two table reads, and an FP16
     * multiply-add interpolation.
     */
    Half eval(Half x) const;

    /** Worst-case |lut - exact| over a dense grid (for validation). */
    float maxError() const;

    /** Shared singleton (the table is immutable). */
    static const GeluLut &instance();

  private:
    std::array<Half, kSamples> table_;
};

}  // namespace dfx

#endif  // DFX_NUMERIC_GELU_LUT_HPP
