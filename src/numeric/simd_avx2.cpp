/**
 * @file
 * AVX2 + F16C vector kernels, bit-identical to the scalar soft-float.
 *
 * This is the only translation unit compiled with `-mavx2 -mf16c`
 * (see DFX_SIMD in CMakeLists.txt); it is entered exclusively through
 * the dispatch table, after `avx2Table()` has verified the host CPU,
 * so nothing here can raise #UD on older machines. The scalar tail
 * loops below run only alongside the vector bodies and reuse the
 * exact inline primitives of the scalar reference kernels.
 *
 * The hardware converters almost implement the simulator's soft-float
 * exactly — `vcvtps2ph` rounds to nearest-even including subnormals,
 * the 65520 overflow threshold and ties, and `vcvtph2ps` is an exact
 * widening — except for NaN details, which two fix-up blends repair:
 *
 *  - `vcvtph2ps` quiets signaling NaNs; `toFloatSpan` must preserve
 *    payloads bit-for-bit (the table-driven scalar path does), so NaN
 *    lanes are rebuilt as sign | 0x7f800000 | (mantissa << 13).
 *  - `vcvtps2ph` keeps the high NaN payload bits; the scalar path
 *    canonicalizes every NaN to sign | 0x7e00, so NaN lanes are
 *    overwritten with the canonical encoding.
 *
 * Inside the fused product/reduce kernels no payload fix-up is needed
 * (every requantize canonicalizes payloads anyway); only the sign of
 * a NaN must follow the pinned first-operand rule. The x86 mul/add/
 * sub instructions implement that rule for the operand order they are
 * issued with — but the compiler may commute commutative vector
 * intrinsics (NaN selection is not part of their modeled semantics),
 * so `pinNaN8` recomputes the canonical NaN from the original
 * operands instead of trusting the instruction's pick.
 */
#include "numeric/simd.hpp"

#ifdef DFX_SIMD_AVX2

#include <immintrin.h>

#include "common/logging.hpp"

namespace dfx {
namespace simd {
namespace {

/** Canonical quiet-NaN mantissa in float position. */
inline __m256
qnan32()
{
    return _mm256_castsi256_ps(_mm256_set1_epi32(0x7fc00000));
}

inline __m256
signMask32()
{
    return _mm256_castsi256_ps(_mm256_set1_epi32(
        static_cast<int32_t>(0x80000000u)));
}

/**
 * `fp16::quantize` on 8 lanes: RNE round-trip through half precision,
 * then canonicalize NaN lanes to sign(x) | 0x7fc00000 (the scalar
 * path canonicalizes through floatToHalfBits/halfBitsToFloat).
 */
inline __m256
quantize8(__m256 x)
{
    const __m256 r = _mm256_cvtph_ps(
        _mm256_cvtps_ph(x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
    const __m256 unord = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
    const __m256 canon =
        _mm256_or_ps(_mm256_and_ps(x, signMask32()), qnan32());
    return _mm256_blendv_ps(r, canon, unord);
}

/**
 * The pinned-rule canonical NaN for each lane of `r = op(a, b)`:
 * sign of `a` if `a` is NaN, else of `b`, else negative (inf-inf,
 * 0*inf) — independent of which operand the hardware instruction
 * happened to pick after compiler commutation. `unord_r` marks the
 * lanes where `r` is NaN; other lanes keep `r`.
 */
inline __m256
pinnedNaN8(__m256 r, __m256 a, __m256 b, __m256 unord_r)
{
    const __m256 nan_a = _mm256_cmp_ps(a, a, _CMP_UNORD_Q);
    const __m256 nan_b = _mm256_cmp_ps(b, b, _CMP_UNORD_Q);
    __m256 sign = signMask32();
    sign = _mm256_blendv_ps(sign, _mm256_and_ps(b, signMask32()), nan_b);
    sign = _mm256_blendv_ps(sign, _mm256_and_ps(a, signMask32()), nan_a);
    return _mm256_blendv_ps(r, _mm256_or_ps(sign, qnan32()), unord_r);
}

/** `pinnedNaN8` with its own NaN scan; early-outs when no lane is
 * NaN (the overwhelmingly common case in real activations). */
inline __m256
pinNaN8(__m256 r, __m256 a, __m256 b)
{
    const __m256 unord_r = _mm256_cmp_ps(r, r, _CMP_UNORD_Q);
    if (_mm256_movemask_ps(unord_r) == 0) [[likely]]
        return r;
    return pinnedNaN8(r, a, b, unord_r);
}

/**
 * `quantize(r)` for `r = op(a, b)` with the pinned NaN rule. The
 * fast path — no NaN lane — is just the converter round-trip plus
 * one compare/movemask; the fix-up blends run only when a NaN is
 * actually present.
 */
inline __m256
opQuantized8(__m256 r, __m256 a, __m256 b)
{
    const __m256 q = _mm256_cvtph_ps(
        _mm256_cvtps_ph(r, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
    const __m256 unord_r = _mm256_cmp_ps(r, r, _CMP_UNORD_Q);
    if (_mm256_movemask_ps(unord_r) == 0) [[likely]]
        return q;
    return pinnedNaN8(q, a, b, unord_r);
}

/** `quantizedAdd` on 8 lanes. */
inline __m256
addQuantized8(__m256 a, __m256 b)
{
    return opQuantized8(_mm256_add_ps(a, b), a, b);
}

/**
 * Exact widening of 8 halves, `fp16::halfBitsToFloat` per lane.
 * `vcvtph2ps` quiets signaling NaNs, so NaN lanes are rebuilt from
 * the raw half bits to keep the payload.
 */
inline __m256
toFloat8(__m128i h)
{
    const __m256 f = _mm256_cvtph_ps(h);
    const __m256i h32 = _mm256_cvtepu16_epi32(h);
    const __m256i mag = _mm256_and_si256(h32, _mm256_set1_epi32(0x7fff));
    const __m256i isnan =
        _mm256_cmpgt_epi32(mag, _mm256_set1_epi32(0x7c00));
    const __m256i sign = _mm256_slli_epi32(
        _mm256_and_si256(h32, _mm256_set1_epi32(0x8000)), 16);
    const __m256i payload = _mm256_slli_epi32(
        _mm256_and_si256(h32, _mm256_set1_epi32(0x03ff)), 13);
    const __m256i fix = _mm256_or_si256(
        _mm256_or_si256(sign, _mm256_set1_epi32(0x7f800000)), payload);
    return _mm256_blendv_ps(f, _mm256_castsi256_ps(fix),
                            _mm256_castsi256_ps(isnan));
}

/**
 * RNE narrowing of 8 floats, `fp16::floatToHalfBits` per lane.
 * `vcvtps2ph` preserves NaN payload bits; the scalar path
 * canonicalizes, so NaN lanes are overwritten with sign | 0x7e00.
 */
inline __m128i
fromFloat8(__m256 f)
{
    const __m128i h =
        _mm256_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m256i fi = _mm256_castps_si256(f);
    const __m256i mag = _mm256_and_si256(fi, _mm256_set1_epi32(0x7fffffff));
    const __m256i isnan =
        _mm256_cmpgt_epi32(mag, _mm256_set1_epi32(0x7f800000));
    const __m256i sign16 = _mm256_srli_epi32(
        _mm256_and_si256(fi,
                         _mm256_set1_epi32(static_cast<int32_t>(0x80000000u))),
        16);
    const __m256i canon32 =
        _mm256_or_si256(sign16, _mm256_set1_epi32(0x7e00));
    // Pack the 32-bit lanes down to 16. The canonical values need the
    // unsigned pack (0xfe00 would saturate under a signed pack); the
    // all-ones masks need the signed pack (-1 stays -1). Both packs
    // work per 128-bit lane, so fix the qword order afterwards.
    const __m128i canon16 = _mm256_castsi256_si128(_mm256_permute4x64_epi64(
        _mm256_packus_epi32(canon32, canon32), 0xd8));
    const __m128i mask16 = _mm256_castsi256_si128(_mm256_permute4x64_epi64(
        _mm256_packs_epi32(isnan, isnan), 0xd8));
    return _mm_blendv_epi8(h, canon16, mask16);
}

/**
 * Fused product `quantize(w[i] * x)` on 8 lanes. No payload fix-up on
 * the widened weights: a NaN product is canonicalized by quantize8
 * with the pinned sign (the weight is the first operand).
 */
inline __m256
productQuantized8(__m128i w, __m256 x)
{
    const __m256 wf = _mm256_cvtph_ps(w);
    return opQuantized8(_mm256_mul_ps(wf, x), wf, x);
}

inline __m128i
loadHalf8(const Half *p)
{
    return _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
}

inline void
storeHalf8(Half *p, __m128i v)
{
    _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
}

void
toFloatSpanVec(const Half *src, float *dst, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(dst + i, toFloat8(loadHalf8(src + i)));
    for (; i < n; ++i)
        dst[i] = src[i].toFloat();
}

void
fromFloatSpanVec(const float *src, Half *dst, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        storeHalf8(dst + i, fromFloat8(_mm256_loadu_ps(src + i)));
    for (; i < n; ++i)
        dst[i] = Half::fromFloat(src[i]);
}

void
quantizeSpanVec(float *v, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(v + i, quantize8(_mm256_loadu_ps(v + i)));
    for (; i < n; ++i)
        v[i] = fp16::quantize(v[i]);
}

void
productQuantizedSpanVec(const Half *w, const float *x, float *out, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            out + i,
            productQuantized8(loadHalf8(w + i), _mm256_loadu_ps(x + i)));
    for (; i < n; ++i)
        out[i] = quantizedMul(w[i].toFloat(), x[i]);
}

float
treeReduceQuantizedVec(float *v, size_t width)
{
    // Each level halves the width: v[i] = quantize(v[2i] + v[2i+1]).
    // While a level still produces >= 8 outputs, deinterleave 16
    // inputs into 8 even/odd pairs per step. Stores land strictly
    // below the next loads, so the reduction stays in place.
    const __m256i perm = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
    while (width >= 16) {
        const size_t half = width / 2;
        for (size_t j = 0; j < half; j += 8) {
            const __m256 a = _mm256_loadu_ps(v + 2 * j);
            const __m256 b = _mm256_loadu_ps(v + 2 * j + 8);
            const __m256 even = _mm256_permutevar8x32_ps(
                _mm256_shuffle_ps(a, b, 0x88), perm);
            const __m256 odd = _mm256_permutevar8x32_ps(
                _mm256_shuffle_ps(a, b, 0xdd), perm);
            _mm256_storeu_ps(v + j, addQuantized8(even, odd));
        }
        width = half;
    }
    while (width > 1) {
        width /= 2;
        for (size_t i = 0; i < width; ++i)
            v[i] = quantizedAdd(v[2 * i], v[2 * i + 1]);
    }
    return v[0];
}

void
macRowMajorVec(const Half *w, size_t pitch, const float *x, size_t rows,
               size_t cols, size_t tile, float *acc)
{
    size_t width = 1;
    while (width < tile)
        width <<= 1;
    DFX_ASSERT(width <= kMaxTreeWidth, "MAC tree width %zu > %zu", width,
               kMaxTreeWidth);
    // Lane-parallel across 8 output columns: each lane of lvl[] runs
    // its own column's MAC tree, so every vector op is exactly the
    // scalar per-column sequence — same products, same tree pairing,
    // same accumulate — just eight columns at once.
    __m256 lvl[kMaxTreeWidth];
    const size_t col_groups = cols & ~size_t{7};
    float prod[kMaxTreeWidth];
    for (size_t r0 = 0; r0 < rows; r0 += tile) {
        const size_t chunk = std::min(tile, rows - r0);
        const Half *wc = w + r0 * pitch;
        const float *xc = x + r0;
        for (size_t c = 0; c < col_groups; c += 8) {
            for (size_t i = 0; i < chunk; ++i)
                lvl[i] = productQuantized8(loadHalf8(wc + i * pitch + c),
                                           _mm256_set1_ps(xc[i]));
            const __m256 zero = _mm256_setzero_ps();
            for (size_t i = chunk; i < width; ++i)
                lvl[i] = zero;
            for (size_t wd = width; wd > 1;) {
                wd /= 2;
                for (size_t i = 0; i < wd; ++i)
                    lvl[i] = addQuantized8(lvl[2 * i], lvl[2 * i + 1]);
            }
            _mm256_storeu_ps(
                acc + c,
                addQuantized8(_mm256_loadu_ps(acc + c), lvl[0]));
        }
        for (size_t c = col_groups; c < cols; ++c) {
            for (size_t i = 0; i < chunk; ++i)
                prod[i] = quantizedMul(wc[i * pitch + c].toFloat(), xc[i]);
            for (size_t i = chunk; i < width; ++i)
                prod[i] = 0.0f;
            acc[c] = quantizedAdd(acc[c],
                                  treeReduceQuantizedVec(prod, width));
        }
    }
}

/** Elementwise Half-domain span op: widen, op, RNE-narrow per lane. */
template <typename VecOp, typename ScalarOp>
inline void
halfBinarySpan(const Half *a, const Half *b, Half *dst, size_t n,
               VecOp vec_op, ScalarOp scalar_op)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 af = _mm256_cvtph_ps(loadHalf8(a + i));
        const __m256 bf = _mm256_cvtph_ps(loadHalf8(b + i));
        storeHalf8(dst + i, fromFloat8(pinNaN8(vec_op(af, bf), af, bf)));
    }
    for (; i < n; ++i)
        dst[i] = Half::fromFloat(scalar_op(a[i].toFloat(), b[i].toFloat()));
}

void
addHalfSpanVec(const Half *a, const Half *b, Half *dst, size_t n)
{
    halfBinarySpan(a, b, dst, n,
                   [](__m256 x, __m256 y) { return _mm256_add_ps(x, y); },
                   [](float x, float y) { return quantizedAdd(x, y); });
}

void
subHalfSpanVec(const Half *a, const Half *b, Half *dst, size_t n)
{
    halfBinarySpan(a, b, dst, n,
                   [](__m256 x, __m256 y) { return _mm256_sub_ps(x, y); },
                   [](float x, float y) { return quantizedSub(x, y); });
}

void
mulHalfSpanVec(const Half *a, const Half *b, Half *dst, size_t n)
{
    halfBinarySpan(a, b, dst, n,
                   [](__m256 x, __m256 y) { return _mm256_mul_ps(x, y); },
                   [](float x, float y) { return quantizedMul(x, y); });
}

template <typename VecOp, typename ScalarOp>
inline void
halfScalarSpan(const Half *a, Half s, Half *dst, size_t n, VecOp vec_op,
               ScalarOp scalar_op)
{
    const float sf = s.toFloat();
    const __m256 sv = _mm256_set1_ps(sf);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 af = _mm256_cvtph_ps(loadHalf8(a + i));
        storeHalf8(dst + i, fromFloat8(pinNaN8(vec_op(af, sv), af, sv)));
    }
    for (; i < n; ++i)
        dst[i] = Half::fromFloat(scalar_op(a[i].toFloat(), sf));
}

void
addHalfScalarSpanVec(const Half *a, Half s, Half *dst, size_t n)
{
    halfScalarSpan(a, s, dst, n,
                   [](__m256 x, __m256 y) { return _mm256_add_ps(x, y); },
                   [](float x, float y) { return quantizedAdd(x, y); });
}

void
subHalfScalarSpanVec(const Half *a, Half s, Half *dst, size_t n)
{
    halfScalarSpan(a, s, dst, n,
                   [](__m256 x, __m256 y) { return _mm256_sub_ps(x, y); },
                   [](float x, float y) { return quantizedSub(x, y); });
}

void
mulHalfScalarSpanVec(const Half *a, Half s, Half *dst, size_t n)
{
    halfScalarSpan(a, s, dst, n,
                   [](__m256 x, __m256 y) { return _mm256_mul_ps(x, y); },
                   [](float x, float y) { return quantizedMul(x, y); });
}

constexpr detail::KernelTable kAvx2Table = {
    Kernel::kAvx2F16c,
    &toFloatSpanVec,
    &fromFloatSpanVec,
    &quantizeSpanVec,
    &productQuantizedSpanVec,
    &treeReduceQuantizedVec,
    &macRowMajorVec,
    &addHalfSpanVec,
    &subHalfSpanVec,
    &mulHalfSpanVec,
    &addHalfScalarSpanVec,
    &subHalfScalarSpanVec,
    &mulHalfScalarSpanVec,
};

}  // namespace

namespace detail {

const KernelTable *
avx2Table()
{
    static const bool supported = __builtin_cpu_supports("avx2") &&
                                  __builtin_cpu_supports("f16c");
    return supported ? &kAvx2Table : nullptr;
}

}  // namespace detail

}  // namespace simd
}  // namespace dfx

#endif  // DFX_SIMD_AVX2
