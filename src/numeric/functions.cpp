/**
 * @file
 * Reference NN math implementation.
 */
#include "numeric/functions.hpp"

#include <cmath>

namespace dfx {

float
geluExact(float x)
{
    const float kSqrt2OverPi = 0.7978845608028654f;
    const float kCubic = 0.044715f;
    float inner = kSqrt2OverPi * (x + kCubic * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

void
geluInPlace(VecF &v)
{
    for (size_t i = 0; i < v.size(); ++i)
        v[i] = geluExact(v[i]);
}

VecF
softmax(const VecF &v)
{
    VecF out = v;
    softmaxInPlace(out);
    return out;
}

void
softmaxInPlace(VecF &v)
{
    DFX_ASSERT(!v.empty(), "softmax of empty vector");
    float mx = v[0];
    for (size_t i = 1; i < v.size(); ++i)
        mx = std::max(mx, v[i]);
    double sum = 0.0;
    for (size_t i = 0; i < v.size(); ++i) {
        v[i] = std::exp(v[i] - mx);
        sum += v[i];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (size_t i = 0; i < v.size(); ++i)
        v[i] *= inv;
}

VecF
layerNorm(const VecF &x, const VecF &gamma, const VecF &beta, float eps)
{
    DFX_ASSERT(x.size() == gamma.size() && x.size() == beta.size(),
               "layerNorm size mismatch");
    const size_t n = x.size();
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i)
        mean += x[i];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double d = x[i] - mean;
        var += d * d;
    }
    var /= static_cast<double>(n);
    const double inv_sigma = 1.0 / std::sqrt(var + eps);
    VecF out(n);
    for (size_t i = 0; i < n; ++i) {
        out[i] = static_cast<float>(
            gamma[i] * (x[i] - mean) * inv_sigma + beta[i]);
    }
    return out;
}

VecF
matVec(const MatF &w, const VecF &x, const VecF &b)
{
    DFX_ASSERT(w.rows() == x.size(), "matVec: W rows %zu != x %zu", w.rows(),
               x.size());
    DFX_ASSERT(w.cols() == b.size(), "matVec: W cols %zu != b %zu", w.cols(),
               b.size());
    VecF y(w.cols());
    for (size_t c = 0; c < w.cols(); ++c) {
        double acc = 0.0;
        for (size_t r = 0; r < w.rows(); ++r)
            acc += static_cast<double>(w.at(r, c)) * x[r];
        y[c] = static_cast<float>(acc + b[c]);
    }
    return y;
}

VecF
matVec(const MatF &w, const VecF &x)
{
    VecF zero(w.cols(), 0.0f);
    return matVec(w, x, zero);
}

size_t
argmax(const VecF &v)
{
    DFX_ASSERT(!v.empty(), "argmax of empty vector");
    size_t best = 0;
    for (size_t i = 1; i < v.size(); ++i) {
        if (v[i] > v[best])
            best = i;
    }
    return best;
}

}  // namespace dfx
