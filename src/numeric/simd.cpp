/**
 * @file
 * Scalar FP16 span kernels and runtime kernel dispatch.
 *
 * This translation unit is compiled for the baseline ISA — it must
 * run on any x86-64 (or non-x86) host, so the vector implementation
 * lives in simd_avx2.cpp behind a cpuid check and per-file compiler
 * flags. The scalar kernels here are the reference semantics; the
 * exhaustive and randomized equivalence tests compare the vector
 * kernels against them bit for bit.
 */
#include "numeric/simd.hpp"

#include <atomic>
#include <cstdlib>

#include "common/logging.hpp"

namespace dfx {
namespace simd {
namespace {

void
toFloatSpanScalar(const Half *src, float *dst, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = src[i].toFloat();
}

void
fromFloatSpanScalar(const float *src, Half *dst, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = Half::fromFloat(src[i]);
}

void
quantizeSpanScalar(float *v, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        v[i] = fp16::quantize(v[i]);
}

void
productQuantizedSpanScalar(const Half *w, const float *x, float *out,
                           size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = quantizedMul(w[i].toFloat(), x[i]);
}

float
treeReduceQuantizedScalar(float *v, size_t width)
{
    while (width > 1) {
        width /= 2;
        for (size_t i = 0; i < width; ++i)
            v[i] = quantizedAdd(v[2 * i], v[2 * i + 1]);
    }
    return v[0];
}

void
macRowMajorScalar(const Half *w, size_t pitch, const float *x, size_t rows,
                  size_t cols, size_t tile, float *acc)
{
    size_t width = 1;
    while (width < tile)
        width <<= 1;
    DFX_ASSERT(width <= kMaxTreeWidth, "MAC tree width %zu > %zu", width,
               kMaxTreeWidth);
    float prod[kMaxTreeWidth];
    for (size_t r0 = 0; r0 < rows; r0 += tile) {
        const size_t chunk = std::min(tile, rows - r0);
        const Half *wc = w + r0 * pitch;
        const float *xc = x + r0;
        for (size_t c = 0; c < cols; ++c) {
            for (size_t i = 0; i < chunk; ++i)
                prod[i] = quantizedMul(wc[i * pitch + c].toFloat(), xc[i]);
            for (size_t i = chunk; i < width; ++i)
                prod[i] = 0.0f;
            acc[c] = quantizedAdd(acc[c], treeReduceQuantizedScalar(prod,
                                                                    width));
        }
    }
}

/** `dst[i] = a (op) b` in the Half domain with the pinned NaN rule. */
inline Half
halfFromQuantized(float q)
{
    // q is already a widened half (the quantized helpers guarantee
    // it), so this conversion is exact — including the canonical NaN.
    return Half::fromFloat(q);
}

void
addHalfSpanScalar(const Half *a, const Half *b, Half *dst, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = halfFromQuantized(quantizedAdd(a[i].toFloat(),
                                                b[i].toFloat()));
}

void
subHalfSpanScalar(const Half *a, const Half *b, Half *dst, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = halfFromQuantized(quantizedSub(a[i].toFloat(),
                                                b[i].toFloat()));
}

void
mulHalfSpanScalar(const Half *a, const Half *b, Half *dst, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = halfFromQuantized(quantizedMul(a[i].toFloat(),
                                                b[i].toFloat()));
}

void
addHalfScalarSpanScalar(const Half *a, Half s, Half *dst, size_t n)
{
    const float sf = s.toFloat();
    for (size_t i = 0; i < n; ++i)
        dst[i] = halfFromQuantized(quantizedAdd(a[i].toFloat(), sf));
}

void
subHalfScalarSpanScalar(const Half *a, Half s, Half *dst, size_t n)
{
    const float sf = s.toFloat();
    for (size_t i = 0; i < n; ++i)
        dst[i] = halfFromQuantized(quantizedSub(a[i].toFloat(), sf));
}

void
mulHalfScalarSpanScalar(const Half *a, Half s, Half *dst, size_t n)
{
    const float sf = s.toFloat();
    for (size_t i = 0; i < n; ++i)
        dst[i] = halfFromQuantized(quantizedMul(a[i].toFloat(), sf));
}

constexpr detail::KernelTable kScalarTable = {
    Kernel::kScalar,
    &toFloatSpanScalar,
    &fromFloatSpanScalar,
    &quantizeSpanScalar,
    &productQuantizedSpanScalar,
    &treeReduceQuantizedScalar,
    &macRowMajorScalar,
    &addHalfSpanScalar,
    &subHalfSpanScalar,
    &mulHalfSpanScalar,
    &addHalfScalarSpanScalar,
    &subHalfScalarSpanScalar,
    &mulHalfScalarSpanScalar,
};

/**
 * Active kernel table. Starts scalar so span calls are valid even
 * during static initialization; a constructor-time resolver upgrades
 * it to the vector table when the host and the environment allow.
 */
std::atomic<const detail::KernelTable *> g_table{&kScalarTable};

bool
forceScalarFromEnv()
{
    const char *v = std::getenv("DFX_FORCE_SCALAR");
    return v != nullptr && *v != '\0' && *v != '0';
}

const detail::KernelTable *
tableFor(Kernel k)
{
    if (k == Kernel::kAvx2F16c)
        return detail::avx2Table();
    return &kScalarTable;
}

/** Resolves dispatch once at startup. */
const bool g_dispatchResolved = [] {
    if (!forceScalarFromEnv()) {
        if (const detail::KernelTable *t = detail::avx2Table())
            g_table.store(t, std::memory_order_relaxed);
    }
    return true;
}();

inline const detail::KernelTable &
table()
{
    return *g_table.load(std::memory_order_relaxed);
}

}  // namespace

Kernel
activeKernel()
{
    return table().id;
}

const char *
kernelName(Kernel k)
{
    return k == Kernel::kAvx2F16c ? "avx2_f16c" : "scalar";
}

const char *
kernelName()
{
    return kernelName(activeKernel());
}

bool
kernelSupported(Kernel k)
{
    return tableFor(k) != nullptr;
}

Kernel
setKernelForTesting(Kernel k)
{
    const detail::KernelTable *t = tableFor(k);
    DFX_ASSERT(t != nullptr, "kernel %s unavailable on this host",
               kernelName(k));
    const Kernel prev = table().id;
    g_table.store(t, std::memory_order_relaxed);
    return prev;
}

void
toFloatSpan(const Half *src, float *dst, size_t n)
{
    table().toFloatSpan(src, dst, n);
}

void
fromFloatSpan(const float *src, Half *dst, size_t n)
{
    table().fromFloatSpan(src, dst, n);
}

void
quantizeSpan(float *v, size_t n)
{
    table().quantizeSpan(v, n);
}

void
productQuantizedSpan(const Half *w, const float *x, float *out, size_t n)
{
    table().productQuantizedSpan(w, x, out, n);
}

float
treeReduceQuantized(float *v, size_t width)
{
    return table().treeReduceQuantized(v, width);
}

void
macRowMajor(const Half *w, size_t pitch, const float *x, size_t rows,
            size_t cols, size_t tile, float *acc)
{
    table().macRowMajor(w, pitch, x, rows, cols, tile, acc);
}

void
addHalfSpan(const Half *a, const Half *b, Half *dst, size_t n)
{
    table().addHalfSpan(a, b, dst, n);
}

void
subHalfSpan(const Half *a, const Half *b, Half *dst, size_t n)
{
    table().subHalfSpan(a, b, dst, n);
}

void
mulHalfSpan(const Half *a, const Half *b, Half *dst, size_t n)
{
    table().mulHalfSpan(a, b, dst, n);
}

void
addHalfScalarSpan(const Half *a, Half s, Half *dst, size_t n)
{
    table().addHalfScalarSpan(a, s, dst, n);
}

void
subHalfScalarSpan(const Half *a, Half s, Half *dst, size_t n)
{
    table().subHalfScalarSpan(a, s, dst, n);
}

void
mulHalfScalarSpan(const Half *a, Half s, Half *dst, size_t n)
{
    table().mulHalfScalarSpan(a, s, dst, n);
}

#ifndef DFX_SIMD_AVX2
namespace detail {

// Vector kernels compiled out (-DDFX_SIMD=OFF or non-x86 target):
// dispatch stays scalar.
const KernelTable *
avx2Table()
{
    return nullptr;
}

}  // namespace detail
#endif

}  // namespace simd
}  // namespace dfx
