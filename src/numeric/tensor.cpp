/**
 * @file
 * Tensor conversion helpers.
 */
#include "numeric/tensor.hpp"

#include <cmath>

namespace dfx {

VecH
toHalf(const VecF &v)
{
    VecH out(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = Half::fromFloat(v[i]);
    return out;
}

MatH
toHalf(const MatF &m)
{
    MatH out(m.rows(), m.cols());
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            out.at(r, c) = Half::fromFloat(m.at(r, c));
    return out;
}

VecF
toFloat(const VecH &v)
{
    VecF out(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = v[i].toFloat();
    return out;
}

MatF
toFloat(const MatH &m)
{
    MatF out(m.rows(), m.cols());
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            out.at(r, c) = m.at(r, c).toFloat();
    return out;
}

float
maxAbsDiff(const VecF &a, const VecF &b)
{
    DFX_ASSERT(a.size() == b.size(), "size mismatch %zu vs %zu", a.size(),
               b.size());
    float worst = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(a[i] - b[i]));
    return worst;
}

}  // namespace dfx
