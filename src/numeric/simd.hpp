/**
 * @file
 * Batched FP16 kernels with runtime CPU dispatch.
 *
 * The functional simulator spends ~90% of a decode step in the MPU
 * MAC tree: widen two halves, multiply, requantize, then requantize
 * again at every adder-tree node (see `Mpu::execute`). This module
 * provides span-sized versions of those primitives behind a function
 * table resolved once at startup:
 *
 *  - on x86-64 hosts with AVX2 + F16C, 8-lane vector kernels that use
 *    the hardware half<->float converters (`vcvtph2ps`/`vcvtps2ph`)
 *    with fix-up blends so every lane is bit-identical to the scalar
 *    soft-float path — including NaN canonicalization, subnormals,
 *    RNE ties and the 65520 round-to-infinity threshold;
 *  - everywhere else (or with `DFX_FORCE_SCALAR=1` in the
 *    environment, or `-DDFX_SIMD=OFF` at configure time), portable
 *    scalar kernels that are the definition of correct.
 *
 * Equivalence contract (docs/ARCHITECTURE.md): for every input span,
 * scalar and vector kernels produce the same bits. The only inputs
 * where IEEE leaves slack is NaN propagation through two-operand ops;
 * the kernels pin the x86 rule — the result NaN is the first operand
 * if it is NaN, else the second, else the negative default NaN
 * (inf-inf, 0*inf) — and every requantize canonicalizes the payload
 * (sign | 0x7e00 in half, sign | 0x7fc00000 widened), so the slack
 * never reaches a register file. `quantizedAdd`/`quantizedMul` are
 * the scalar statements of that rule.
 *
 * Dispatch is a single atomic pointer load per span call; the per-
 * element hot loops never branch on it. Tests can force either path
 * with `setKernelForTesting` regardless of how the process started.
 */
#ifndef DFX_NUMERIC_SIMD_HPP
#define DFX_NUMERIC_SIMD_HPP

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/fp16.hpp"

namespace dfx {
namespace simd {

/** Available kernel implementations. */
enum class Kernel
{
    kScalar,    ///< portable soft-float loops (the reference)
    kAvx2F16c,  ///< 8-lane AVX2 + F16C vector kernels
};

/** Largest MAC-tree width (padded power of two) the kernels accept. */
inline constexpr size_t kMaxTreeWidth = 1024;

/** The kernel selected at startup (cpuid + DFX_FORCE_SCALAR). */
Kernel activeKernel();

/** Stable identifier of a kernel ("scalar", "avx2_f16c"). */
const char *kernelName(Kernel k);

/** Identifier of the active kernel (for bench records and logs). */
const char *kernelName();

/** True when `k` can run on this host and build. */
bool kernelSupported(Kernel k);

/**
 * Forces dispatch to `k` (which must be supported) and returns the
 * previously active kernel. For tests and in-process A/B benches
 * only; not thread-safe against concurrent span calls.
 */
Kernel setKernelForTesting(Kernel k);

/**
 * Widens `n` halves to float, bit-identical to
 * `fp16::halfBitsToFloat` per element (NaN payloads preserved).
 */
void toFloatSpan(const Half *src, float *dst, size_t n);

/**
 * Rounds `n` floats to half with RNE, bit-identical to
 * `fp16::floatToHalfBits` per element (NaN canonicalized).
 */
void fromFloatSpan(const float *src, Half *dst, size_t n);

/** In-place `fp16::quantize` of `n` floats. */
void quantizeSpan(float *v, size_t n);

/**
 * Fused MAC-tree product row: `out[i] = quantize(w[i] * x[i])`.
 * `x` carries exact widened halves (the broadcast input vector).
 */
void productQuantizedSpan(const Half *w, const float *x, float *out,
                          size_t n);

/**
 * Destructive pairwise tree reduction of `width` values (a power of
 * two, <= kMaxTreeWidth), requantizing after every node exactly like
 * `Mpu::reduceInPlaceF`. Returns the root.
 */
float treeReduceQuantized(float *v, size_t width);

/**
 * The full row-major MAC loop of `Mpu::execute`: for each chunk of
 * `tile` rows, multiply-requantize the chunk against `x`, pad the
 * tree to the next power of two with +0, reduce with per-node
 * requantization, and accumulate `acc[c] = quantize(acc[c] + tree)`
 * per column. `w` is row-major with row stride `pitch`.
 */
void macRowMajor(const Half *w, size_t pitch, const float *x, size_t rows,
                 size_t cols, size_t tile, float *acc);

/** Elementwise `dst[i] = a[i] + b[i]` in the Half domain. */
void addHalfSpan(const Half *a, const Half *b, Half *dst, size_t n);
/** Elementwise `dst[i] = a[i] - b[i]`. */
void subHalfSpan(const Half *a, const Half *b, Half *dst, size_t n);
/** Elementwise `dst[i] = a[i] * b[i]`. */
void mulHalfSpan(const Half *a, const Half *b, Half *dst, size_t n);
/** Broadcast `dst[i] = a[i] + s`. */
void addHalfScalarSpan(const Half *a, Half s, Half *dst, size_t n);
/** Broadcast `dst[i] = a[i] - s`. */
void subHalfScalarSpan(const Half *a, Half s, Half *dst, size_t n);
/** Broadcast `dst[i] = a[i] * s`. */
void mulHalfScalarSpan(const Half *a, Half s, Half *dst, size_t n);

/**
 * `quantize(a + b)` with the pinned NaN rule (see the file comment):
 * the scalar definition every kernel, vector included, must match.
 */
inline float
quantizedAdd(float a, float b)
{
    const float s = a + b;
    if (std::isnan(s)) [[unlikely]] {
        const uint32_t src = std::isnan(a) ? std::bit_cast<uint32_t>(a)
                             : std::isnan(b)
                                 ? std::bit_cast<uint32_t>(b)
                                 : 0xffc00000u;
        return std::bit_cast<float>((src & 0x80000000u) | 0x7fc00000u);
    }
    return fp16::quantize(s);
}

/**
 * `quantize(a - b)` with the pinned NaN rule. A NaN `b` propagates
 * with its own sign bit (x86 `subps` quiets the operand, it does not
 * negate it), which is why this is not `quantizedAdd(a, -b)`.
 */
inline float
quantizedSub(float a, float b)
{
    const float s = a - b;
    if (std::isnan(s)) [[unlikely]] {
        const uint32_t src = std::isnan(a) ? std::bit_cast<uint32_t>(a)
                             : std::isnan(b)
                                 ? std::bit_cast<uint32_t>(b)
                                 : 0xffc00000u;
        return std::bit_cast<float>((src & 0x80000000u) | 0x7fc00000u);
    }
    return fp16::quantize(s);
}

/** `quantize(a * b)` with the pinned NaN rule. */
inline float
quantizedMul(float a, float b)
{
    const float p = a * b;
    if (std::isnan(p)) [[unlikely]] {
        const uint32_t src = std::isnan(a) ? std::bit_cast<uint32_t>(a)
                             : std::isnan(b)
                                 ? std::bit_cast<uint32_t>(b)
                                 : 0xffc00000u;
        return std::bit_cast<float>((src & 0x80000000u) | 0x7fc00000u);
    }
    return fp16::quantize(p);
}

namespace detail {

/**
 * One kernel implementation: plain function pointers so dispatch is a
 * single relaxed atomic load at span granularity. Internal — the
 * free functions above are the API.
 */
struct KernelTable
{
    Kernel id;
    void (*toFloatSpan)(const Half *, float *, size_t);
    void (*fromFloatSpan)(const float *, Half *, size_t);
    void (*quantizeSpan)(float *, size_t);
    void (*productQuantizedSpan)(const Half *, const float *, float *,
                                 size_t);
    float (*treeReduceQuantized)(float *, size_t);
    void (*macRowMajor)(const Half *, size_t, const float *, size_t,
                        size_t, size_t, float *);
    void (*addHalfSpan)(const Half *, const Half *, Half *, size_t);
    void (*subHalfSpan)(const Half *, const Half *, Half *, size_t);
    void (*mulHalfSpan)(const Half *, const Half *, Half *, size_t);
    void (*addHalfScalarSpan)(const Half *, Half, Half *, size_t);
    void (*subHalfScalarSpan)(const Half *, Half, Half *, size_t);
    void (*mulHalfScalarSpan)(const Half *, Half, Half *, size_t);
};

/** Defined in simd_avx2.cpp (null when compiled out of the build). */
const KernelTable *avx2Table();

}  // namespace detail
}  // namespace simd
}  // namespace dfx

#endif  // DFX_NUMERIC_SIMD_HPP
