/**
 * @file
 * Reference (high-precision) neural-network math.
 *
 * These float/double implementations define *what* the model computes;
 * the simulated DFX hardware computes the same functions through FP16
 * instruction sequences and is validated against these.
 */
#ifndef DFX_NUMERIC_FUNCTIONS_HPP
#define DFX_NUMERIC_FUNCTIONS_HPP

#include "numeric/tensor.hpp"

namespace dfx {

/** Exact tanh-form GELU: 0.5x(1 + tanh(sqrt(2/pi)(x + 0.044715x^3))). */
float geluExact(float x);

/** In-place GELU over a vector. */
void geluInPlace(VecF &v);

/** Numerically-stable softmax (subtracts the running max). */
VecF softmax(const VecF &v);

/** In-place numerically-stable softmax. */
void softmaxInPlace(VecF &v);

/**
 * Layer normalization: y_i = gamma_i * (x_i - mu) / sigma + beta_i.
 *
 * Matches GPT-2: sigma = sqrt(mean((x - mu)^2) + eps).
 */
VecF layerNorm(const VecF &x, const VecF &gamma, const VecF &beta,
               float eps = 1e-5f);

/** y = W^T x + b where W is (in x out); returns a length-out vector. */
VecF matVec(const MatF &w, const VecF &x, const VecF &b);

/** y = W^T x (no bias). */
VecF matVec(const MatF &w, const VecF &x);

/** Index of the maximum element (first occurrence wins). */
size_t argmax(const VecF &v);

}  // namespace dfx

#endif  // DFX_NUMERIC_FUNCTIONS_HPP
