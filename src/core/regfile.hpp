/**
 * @file
 * Register files of the DFX core (paper §V-D).
 *
 * The register file manager exposes a vector register file organized
 * as 64-wide FP16 lines (matching the VPU/MPU datapath width), a
 * scalar FP16 register file, and a small integer register file the
 * controller uses for token ids and argmax indices.
 */
#ifndef DFX_CORE_REGFILE_HPP
#define DFX_CORE_REGFILE_HPP

#include <cstdint>
#include <vector>

#include "common/fp16.hpp"
#include "common/logging.hpp"
#include "numeric/tensor.hpp"

namespace dfx {

/** Vector register file: `lines` x 64 FP16 elements. */
class VectorRegFile
{
  public:
    static constexpr size_t kWidth = 64;

    VectorRegFile(size_t lines, bool functional);

    size_t lines() const { return lines_; }
    bool functional() const { return functional_; }

    /** Reads one element; line = addr / 64, lane = addr % 64. */
    Half read(size_t elem_index) const;

    /** Writes one element. */
    void write(size_t elem_index, Half value);

    /** Reads `n` consecutive elements starting at line `line0`. */
    VecH readVec(size_t line0, size_t n) const;

    /** Writes a vector starting at line `line0`. */
    void writeVec(size_t line0, const VecH &v);

    /** Zero-fills `n` elements starting at line `line0`. */
    void clear(size_t line0, size_t n);

    // Bulk spans for the MPU/VPU inner loops: one bounds check per
    // instruction instead of one per element.
    /** Read-only view of `n` elements starting at element index `e0`. */
    const Half *readSpan(size_t e0, size_t n) const;
    /** Mutable view of `n` elements starting at element index `e0`. */
    Half *writeSpan(size_t e0, size_t n);

  private:
    size_t lines_;
    bool functional_;
    std::vector<Half> data_;
};

/** Scalar FP16 register file. */
class ScalarRegFile
{
  public:
    ScalarRegFile(size_t regs, bool functional);

    Half read(size_t reg) const;
    void write(size_t reg, Half value);
    size_t size() const { return regs_; }

  private:
    size_t regs_;
    bool functional_;
    std::vector<Half> data_;
};

/** Integer register file (token ids, argmax indices). */
class IndexRegFile
{
  public:
    explicit IndexRegFile(size_t regs) : data_(regs, 0) {}

    int64_t
    read(size_t reg) const
    {
        DFX_ASSERT(reg < data_.size(), "IRF read %zu", reg);
        return data_[reg];
    }

    void
    write(size_t reg, int64_t value)
    {
        DFX_ASSERT(reg < data_.size(), "IRF write %zu", reg);
        data_[reg] = value;
    }

  private:
    std::vector<int64_t> data_;
};

}  // namespace dfx

#endif  // DFX_CORE_REGFILE_HPP
