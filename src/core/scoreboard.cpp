/**
 * @file
 * Scoreboard implementation.
 */
#include "core/scoreboard.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dfx {

Scoreboard::Scoreboard(size_t vrf_lines, size_t srf_regs, size_t irf_regs)
    : vrf_(vrf_lines, 0), srf_(srf_regs, 0), irf_(irf_regs, 0)
{
}

void
Scoreboard::reset()
{
    std::fill(vrf_.begin(), vrf_.end(), 0);
    std::fill(srf_.begin(), srf_.end(), 0);
    std::fill(irf_.begin(), irf_.end(), 0);
}

Cycles
Scoreboard::vrfReady(size_t line0, size_t nlines) const
{
    DFX_ASSERT(line0 + nlines <= vrf_.size(),
               "scoreboard VRF range [%zu,+%zu) out of %zu", line0, nlines,
               vrf_.size());
    Cycles worst = 0;
    for (size_t i = line0; i < line0 + nlines; ++i)
        worst = std::max(worst, vrf_[i]);
    return worst;
}

void
Scoreboard::setVrfReady(size_t line0, size_t nlines, Cycles when)
{
    DFX_ASSERT(line0 + nlines <= vrf_.size(),
               "scoreboard VRF range [%zu,+%zu) out of %zu", line0, nlines,
               vrf_.size());
    for (size_t i = line0; i < line0 + nlines; ++i)
        vrf_[i] = std::max(vrf_[i], when);
}

Cycles
Scoreboard::srfReady(size_t reg) const
{
    DFX_ASSERT(reg < srf_.size(), "scoreboard SRF reg %zu", reg);
    return srf_[reg];
}

void
Scoreboard::setSrfReady(size_t reg, Cycles when)
{
    DFX_ASSERT(reg < srf_.size(), "scoreboard SRF reg %zu", reg);
    srf_[reg] = std::max(srf_[reg], when);
}

Cycles
Scoreboard::irfReady(size_t reg) const
{
    DFX_ASSERT(reg < irf_.size(), "scoreboard IRF reg %zu", reg);
    return irf_[reg];
}

void
Scoreboard::setIrfReady(size_t reg, Cycles when)
{
    DFX_ASSERT(reg < irf_.size(), "scoreboard IRF reg %zu", reg);
    irf_[reg] = std::max(irf_[reg], when);
}

}  // namespace dfx
