/**
 * @file
 * Scoreboard for instruction chaining (paper §V-A).
 *
 * "The scoreboard uses a RAM to represent the address space and marks
 * the current instruction's address with a stale bit when in execution
 * and with a valid bit when in writeback. If the source and
 * destination addresses overlap, the next instruction stalls until the
 * current computation finishes."
 *
 * The timing model generalizes the stale/valid bits into per-address
 * ready *times*: an instruction may start once all its source ranges
 * are ready; its destination ranges become ready at its writeback
 * cycle. This yields exactly the chaining behaviour (dependent
 * instructions dovetail with pipeline latency; independent ones
 * overlap) without event-driven simulation.
 */
#ifndef DFX_CORE_SCOREBOARD_HPP
#define DFX_CORE_SCOREBOARD_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace dfx {

/** Ready-time tracker for VRF lines, SRF and IRF registers. */
class Scoreboard
{
  public:
    Scoreboard(size_t vrf_lines, size_t srf_regs, size_t irf_regs);

    /** Forgets all dependencies (phase barrier). */
    void reset();

    /** Latest ready time across VRF lines [line0, line0+nlines). */
    Cycles vrfReady(size_t line0, size_t nlines) const;
    /** Marks VRF lines ready at `when`. */
    void setVrfReady(size_t line0, size_t nlines, Cycles when);

    Cycles srfReady(size_t reg) const;
    void setSrfReady(size_t reg, Cycles when);

    Cycles irfReady(size_t reg) const;
    void setIrfReady(size_t reg, Cycles when);

  private:
    std::vector<Cycles> vrf_;
    std::vector<Cycles> srf_;
    std::vector<Cycles> irf_;
};

}  // namespace dfx

#endif  // DFX_CORE_SCOREBOARD_HPP
