/**
 * @file
 * Vector processing unit implementation.
 */
#include "core/vpu.hpp"

#include <algorithm>
#include <cmath>

#include "core/mpu.hpp"
#include "memory/hbm_channels.hpp"
#include "numeric/simd.hpp"

namespace dfx {

namespace {

/**
 * The span kernels process blocks of elements, which is equivalent to
 * the historical per-element loop only when the destination window is
 * identical to, or disjoint from, each source window. A partial
 * overlap where an earlier write feeds a later read must keep the
 * element-by-element order.
 */
inline bool
spanSafe(size_t dst, size_t src, size_t n)
{
    return dst == src || dst + n <= src || src + n <= dst;
}

}  // namespace

Vpu::Vpu(const CoreParams &params, OffchipMemory *hbm, OffchipMemory *ddr)
    : params_(params), hbm_(hbm), ddr_(ddr)
{
}

Half
Vpu::scalarOperand(const isa::Operand &op, const ScalarRegFile &srf) const
{
    switch (op.space) {
      case isa::Space::kSrf:
        return srf.read(op.addr);
      case isa::Space::kImm:
        return Half::fromBits(static_cast<uint16_t>(op.addr));
      default:
        DFX_PANIC("bad scalar operand space");
    }
}

double
Vpu::hbmRate(const isa::Instruction &inst, VectorTiming &t) const
{
    double bpc = params_.hbmBytesPerCycle();
    if (inst.hbmChannels != 0) {
        t.hbmChannelMask = inst.hbmChannels;
        const size_t ch = std::min(channelCount(inst.hbmChannels),
                                   params_.hbmChannels);
        bpc *= static_cast<double>(ch) /
               static_cast<double>(params_.hbmChannels);
    }
    return bpc;
}

VectorTiming
Vpu::timing(const isa::Instruction &inst) const
{
    using isa::Opcode;
    const size_t width = params_.vectorWidth;
    const Cycles lines = (inst.len + width - 1) / width;
    VectorTiming t;
    switch (inst.op) {
      case Opcode::kAdd:
      case Opcode::kSub:
        t.occupancy = std::max<Cycles>(lines, 1);
        t.latency = t.occupancy + params_.addLatency;
        t.flops = inst.len;
        break;
      case Opcode::kAddScalar:
      case Opcode::kSubScalar:
        t.occupancy = std::max<Cycles>(lines, 1);
        t.latency = t.occupancy + params_.addLatency;
        t.flops = inst.len;
        break;
      case Opcode::kMul:
      case Opcode::kMulScalar:
        t.occupancy = std::max<Cycles>(lines, 1);
        t.latency = t.occupancy + params_.mulLatency;
        t.flops = inst.len;
        break;
      case Opcode::kExp:
        t.occupancy = std::max<Cycles>(lines, 1);
        t.latency = t.occupancy + params_.expLatency;
        t.flops = inst.len;
        break;
      case Opcode::kLoad: {
        // Bypass path: one cycle per line, bounded by the source
        // memory's streaming rate (per-channel when the HBM operand is
        // pinned to a channel set).
        uint64_t bytes = static_cast<uint64_t>(inst.len) * 2;
        double bpc;
        if (inst.src1.space == isa::Space::kHbm) {
            t.hbmBytes = bytes;
            bpc = hbmRate(inst, t);
        } else {
            t.ddrBytes = bytes;
            bpc = params_.ddrBytesPerCycle();
        }
        Cycles mem = static_cast<Cycles>(
            std::ceil(static_cast<double>(bytes) / bpc));
        if (inst.src1.space == isa::Space::kHbm)
            t.hbmStreamCycles = mem;
        t.occupancy = std::max<Cycles>(lines, mem);
        t.latency = t.occupancy + 1;
        break;
      }
      case Opcode::kStore: {
        uint64_t bytes = static_cast<uint64_t>(inst.len) * 2;
        double bpc;
        if (inst.dst.space == isa::Space::kHbm) {
            t.hbmBytes = bytes;
            bpc = hbmRate(inst, t);
        } else {
            t.ddrBytes = bytes;
            bpc = params_.ddrBytesPerCycle();
        }
        Cycles mem = static_cast<Cycles>(
            std::ceil(static_cast<double>(bytes) / bpc));
        if (inst.dst.space == isa::Space::kHbm)
            t.hbmStreamCycles = mem;
        t.occupancy = std::max<Cycles>(lines, mem);
        t.latency = t.occupancy + 1;
        break;
      }
      case Opcode::kAccum:
        // Per line: 64-wide adder tree; partials accumulate across
        // lines in the scalar accumulator.
        t.occupancy = std::max<Cycles>(lines, 1);
        t.latency = t.occupancy + params_.accumTreeLatency() +
                    params_.addLatency;
        t.flops = inst.len;
        break;
      case Opcode::kReduMax:
        t.occupancy = std::max<Cycles>(lines, 1);
        t.latency = t.occupancy + params_.reduMaxLatency;
        t.flops = inst.len;
        break;
      case Opcode::kScalarAdd:
        t.occupancy = 1;
        t.latency = params_.addLatency;
        t.flops = 1;
        break;
      case Opcode::kScalarMul:
        t.occupancy = 1;
        t.latency = params_.mulLatency;
        t.flops = 1;
        break;
      case Opcode::kScalarRecip:
        t.occupancy = 1;
        t.latency = params_.recipLatency;
        t.flops = 1;
        break;
      case Opcode::kScalarRsqrt:
        t.occupancy = 1;
        t.latency = params_.rsqrtLatency;
        t.flops = 1;
        break;
      default:
        DFX_PANIC("opcode %s is not a VPU instruction",
                  isa::opcodeName(inst.op));
    }
    return t;
}

void
Vpu::execute(const isa::Instruction &inst, VectorRegFile &vrf,
             ScalarRegFile &srf, IndexRegFile &irf) const
{
    using isa::Opcode;
    const size_t a_base = inst.src1.addr * VectorRegFile::kWidth;
    const size_t b_base = inst.src2.addr * VectorRegFile::kWidth;
    const size_t d_base = inst.dst.addr * VectorRegFile::kWidth;
    const size_t n = inst.len;

    // Elementwise ops stream raw VRF spans through the batched SIMD
    // kernels: one bounds check per instruction, eight lanes per
    // step, bit-identical to the per-element Half operators (with the
    // NaN-propagation rule pinned by simd::quantizedAdd et al.). A
    // partially-overlapping destination window falls back to the
    // element loop, preserving its read-element-i-before-write-
    // element-i semantics.
    switch (inst.op) {
      case Opcode::kAdd: {
        const Half *a = vrf.readSpan(a_base, n);
        const Half *b = vrf.readSpan(b_base, n);
        Half *dst = vrf.writeSpan(d_base, n);
        if (spanSafe(d_base, a_base, n) && spanSafe(d_base, b_base, n)) {
            simd::addHalfSpan(a, b, dst, n);
            break;
        }
        for (size_t i = 0; i < n; ++i)
            dst[i] = Half::fromFloat(
                simd::quantizedAdd(a[i].toFloat(), b[i].toFloat()));
        break;
      }
      case Opcode::kSub: {
        const Half *a = vrf.readSpan(a_base, n);
        const Half *b = vrf.readSpan(b_base, n);
        Half *dst = vrf.writeSpan(d_base, n);
        if (spanSafe(d_base, a_base, n) && spanSafe(d_base, b_base, n)) {
            simd::subHalfSpan(a, b, dst, n);
            break;
        }
        for (size_t i = 0; i < n; ++i)
            dst[i] = Half::fromFloat(
                simd::quantizedSub(a[i].toFloat(), b[i].toFloat()));
        break;
      }
      case Opcode::kMul: {
        const Half *a = vrf.readSpan(a_base, n);
        const Half *b = vrf.readSpan(b_base, n);
        Half *dst = vrf.writeSpan(d_base, n);
        if (spanSafe(d_base, a_base, n) && spanSafe(d_base, b_base, n)) {
            simd::mulHalfSpan(a, b, dst, n);
            break;
        }
        for (size_t i = 0; i < n; ++i)
            dst[i] = Half::fromFloat(
                simd::quantizedMul(a[i].toFloat(), b[i].toFloat()));
        break;
      }
      case Opcode::kAddScalar: {
        const Half s = scalarOperand(inst.src2, srf);
        const Half *a = vrf.readSpan(a_base, n);
        Half *dst = vrf.writeSpan(d_base, n);
        if (spanSafe(d_base, a_base, n)) {
            simd::addHalfScalarSpan(a, s, dst, n);
            break;
        }
        for (size_t i = 0; i < n; ++i)
            dst[i] = Half::fromFloat(
                simd::quantizedAdd(a[i].toFloat(), s.toFloat()));
        break;
      }
      case Opcode::kSubScalar: {
        const Half s = scalarOperand(inst.src2, srf);
        const Half *a = vrf.readSpan(a_base, n);
        Half *dst = vrf.writeSpan(d_base, n);
        if (spanSafe(d_base, a_base, n)) {
            simd::subHalfScalarSpan(a, s, dst, n);
            break;
        }
        for (size_t i = 0; i < n; ++i)
            dst[i] = Half::fromFloat(
                simd::quantizedSub(a[i].toFloat(), s.toFloat()));
        break;
      }
      case Opcode::kMulScalar: {
        const Half s = scalarOperand(inst.src2, srf);
        const Half *a = vrf.readSpan(a_base, n);
        Half *dst = vrf.writeSpan(d_base, n);
        if (spanSafe(d_base, a_base, n)) {
            simd::mulHalfScalarSpan(a, s, dst, n);
            break;
        }
        for (size_t i = 0; i < n; ++i)
            dst[i] = Half::fromFloat(
                simd::quantizedMul(a[i].toFloat(), s.toFloat()));
        break;
      }
      case Opcode::kExp: {
        const Half *a = vrf.readSpan(a_base, n);
        Half *dst = vrf.writeSpan(d_base, n);
        for (size_t i = 0; i < n; ++i)
            dst[i] = hexp(a[i]);
        break;
      }
      case Opcode::kLoad: {
        OffchipMemory *mem =
            inst.src1.space == isa::Space::kHbm ? hbm_ : ddr_;
        const Half *src = mem->loadSpan(inst.src1.addr, n);
        Half *dst =
            vrf.writeSpan(inst.dst.addr * VectorRegFile::kWidth, n);
        std::copy(src, src + n, dst);
        break;
      }
      case Opcode::kStore: {
        const Half *src =
            vrf.readSpan(inst.src1.addr * VectorRegFile::kWidth, n);
        OffchipMemory *mem =
            inst.dst.space == isa::Space::kHbm ? hbm_ : ddr_;
        mem->writeHalf(inst.dst.addr, src, n);
        break;
      }
      case Opcode::kAccum: {
        // Tree-reduce each 64-wide line, accumulate partials in FP16.
        // Runs in the float domain (exact widened halves) through the
        // batched tree kernel — bit-identical to the Half-domain
        // reduction, which rounds once per tree node and per add.
        const size_t width = params_.vectorWidth;
        size_t padded = 1;
        while (padded < width)
            padded <<= 1;
        line_.resize(padded);
        const Half *a = vrf.readSpan(a_base, n);
        float acc = 0.0f;
        for (size_t i0 = 0; i0 < n; i0 += width) {
            const size_t chunk = std::min(width, n - i0);
            simd::toFloatSpan(a + i0, line_.data(), chunk);
            std::fill(line_.begin() + static_cast<ptrdiff_t>(chunk),
                      line_.begin() + static_cast<ptrdiff_t>(padded),
                      0.0f);
            acc = simd::quantizedAdd(
                acc, simd::treeReduceQuantized(line_.data(), padded));
        }
        srf.write(inst.dst.addr, Half::fromFloat(acc));
        break;
      }
      case Opcode::kReduMax: {
        const Half *a = vrf.readSpan(a_base, n);
        Half best = Half::lowest();
        int64_t best_idx = 0;
        for (size_t i = 0; i < n; ++i) {
            if (a[i] > best) {
                best = a[i];
                best_idx = static_cast<int64_t>(i);
            }
        }
        srf.write(inst.dst.addr, best);
        irf.write(inst.dst.addr, best_idx);
        break;
      }
      case Opcode::kScalarAdd:
        srf.write(inst.dst.addr, scalarOperand(inst.src1, srf) +
                                     scalarOperand(inst.src2, srf));
        break;
      case Opcode::kScalarMul:
        srf.write(inst.dst.addr, scalarOperand(inst.src1, srf) *
                                     scalarOperand(inst.src2, srf));
        break;
      case Opcode::kScalarRecip:
        srf.write(inst.dst.addr, hrecip(scalarOperand(inst.src1, srf)));
        break;
      case Opcode::kScalarRsqrt:
        srf.write(inst.dst.addr, hrsqrt(scalarOperand(inst.src1, srf)));
        break;
      default:
        DFX_PANIC("opcode %s is not a VPU instruction",
                  isa::opcodeName(inst.op));
    }
}

}  // namespace dfx
