/**
 * @file
 * Compute core implementation: the scheduler's timing walk and the
 * functional dispatch to the processing units.
 */
#include "core/core.hpp"

#include <algorithm>
#include <bit>

#include "perf/trace.hpp"

namespace dfx {
namespace {

constexpr size_t kIrfRegs = 64;

size_t
linesFor(size_t elems)
{
    return (elems + VectorRegFile::kWidth - 1) / VectorRegFile::kWidth;
}

/**
 * Adds one pinned operand's stream time to the channels in its mask.
 * Striped (mask-0) traffic charges every channel uniformly, so the
 * caller accumulates it in a scalar and folds it into the ledger once
 * per phase instead of touching 32 entries per instruction.
 */
void
addChannelCycles(std::array<Cycles, kHbmChannels> &ledger, uint32_t mask,
                 Cycles stream_cycles)
{
    while (mask) {
        const size_t c =
            static_cast<size_t>(std::countr_zero(mask));
        if (c >= kHbmChannels)
            break;
        ledger[c] += stream_cycles;
        mask &= mask - 1;
    }
}

}  // namespace

void
PhaseStats::accumulate(const PhaseStats &other)
{
    cycles += other.cycles;
    for (size_t i = 0; i < byCategory.size(); ++i)
        byCategory[i] += other.byCategory[i];
    hbmBytes += other.hbmBytes;
    ddrBytes += other.ddrBytes;
    flops += other.flops;
    instructions += other.instructions;
    weightReuseCycles += other.weightReuseCycles;
    privateStreamCycles += other.privateStreamCycles;
    for (size_t c = 0; c < kHbmChannels; ++c) {
        hbmSharedChannelCycles[c] += other.hbmSharedChannelCycles[c];
        hbmPrivateChannelCycles[c] += other.hbmPrivateChannelCycles[c];
    }
}

ComputeCore::ComputeCore(size_t core_id, const CoreParams &params,
                         bool functional)
    : coreId_(core_id), params_(params), functional_(functional),
      hbm_(makeHbm(static_cast<int>(core_id), params.hbmEfficiency,
                   functional)),
      ddr_(makeDdr(static_cast<int>(core_id), params.ddrEfficiency,
                   functional)),
      vrf_(params.vrfLines, functional),
      srf_(params.srfRegs, functional), irf_(kIrfRegs),
      scoreboard_(params.vrfLines, params.srfRegs, kIrfRegs),
      mpu_(params_, &hbm_, &ddr_), vpu_(params_, &hbm_, &ddr_),
      dmaUnit_(params_, &hbm_)
{
}

Cycles
ComputeCore::sourceReady(const isa::Instruction &inst) const
{
    using isa::Opcode;
    using isa::Space;
    Cycles ready = 0;
    auto consider = [&](const isa::Operand &op, size_t elems) {
        switch (op.space) {
          case Space::kVrf:
            ready = std::max(ready,
                             scoreboard_.vrfReady(op.addr, linesFor(elems)));
            break;
          case Space::kSrf:
            ready = std::max(ready, scoreboard_.srfReady(op.addr));
            break;
          case Space::kIrf:
            ready = std::max(ready, scoreboard_.irfReady(op.addr));
            break;
          default:
            break;  // memory and immediates have no RF dependency
        }
    };
    switch (inst.op) {
      case Opcode::kConv1d:
      case Opcode::kMaskedMm:
      case Opcode::kMm:
        consider(inst.src1, inst.len);
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
        consider(inst.src1, inst.len);
        consider(inst.src2, inst.len);
        break;
      case Opcode::kAddScalar:
      case Opcode::kSubScalar:
      case Opcode::kMulScalar:
        consider(inst.src1, inst.len);
        consider(inst.src2, 1);
        break;
      case Opcode::kExp:
      case Opcode::kStore:
      case Opcode::kAccum:
      case Opcode::kReduMax:
      case Opcode::kDmaStoreKv:
      case Opcode::kSync:
        consider(inst.src1, inst.len);
        break;
      case Opcode::kScalarAdd:
      case Opcode::kScalarMul:
      case Opcode::kScalarRecip:
      case Opcode::kScalarRsqrt:
        consider(inst.src1, 1);
        consider(inst.src2, 1);
        break;
      case Opcode::kLoad:
        break;
      default:
        DFX_PANIC("unhandled opcode in sourceReady");
    }
    return ready;
}

void
ComputeCore::retireDests(const isa::Instruction &inst, Cycles when)
{
    using isa::Opcode;
    using isa::Space;
    size_t out_elems = inst.len;
    switch (inst.op) {
      case Opcode::kConv1d:
      case Opcode::kMaskedMm:
      case Opcode::kMm:
        out_elems = inst.cols;
        break;
      default:
        break;
    }
    switch (inst.dst.space) {
      case Space::kVrf:
        scoreboard_.setVrfReady(inst.dst.addr, linesFor(out_elems), when);
        break;
      case Space::kSrf:
        scoreboard_.setSrfReady(inst.dst.addr, when);
        if (inst.op == Opcode::kReduMax)
            scoreboard_.setIrfReady(inst.dst.addr, when);
        break;
      case Space::kIrf:
        scoreboard_.setIrfReady(inst.dst.addr, when);
        break;
      default:
        break;  // memory destinations tracked by engine ordering only
    }
}

PhaseStats
ComputeCore::executePhase(const isa::Program &prog)
{
    PhaseStats stats;
    scoreboard_.reset();
    std::array<Cycles, 4> engine_ready{};
    Cycles phase_end = 0;
    // Striped (all-channel) stream time, folded into the per-channel
    // ledgers once at the end of the phase: every channel carries 1/C
    // of the bytes at 1/C of the bandwidth, so each is busy for the
    // full aggregate-rate stream time.
    Cycles shared_striped = 0, private_striped = 0;

    for (const auto &inst : prog) {
        std::string err;
        DFX_ASSERT(isa::validate(inst, &err), "invalid instruction: %s",
                   err.c_str());
        const isa::Engine engine = isa::engineOf(inst.op);
        const size_t e = static_cast<size_t>(engine);

        // --- timing --------------------------------------------------
        Cycles occupancy = 0, latency = 0;
        switch (engine) {
          case isa::Engine::kMpu: {
            MatrixTiming t = mpu_.timing(inst);
            occupancy = t.occupancy;
            latency = t.latency;
            stats.hbmBytes += t.hbmBytes;
            stats.ddrBytes += t.ddrBytes;
            stats.flops += t.flops;
            if (t.sharedStream && t.occupancy > t.computeCycles)
                stats.weightReuseCycles += t.occupancy - t.computeCycles;
            if (!t.sharedStream && t.hbmChannelMask != 0 &&
                t.occupancy > t.computeCycles) {
                stats.privateStreamCycles +=
                    t.occupancy - t.computeCycles;
            }
            if (t.hbmChannelMask != 0) {
                addChannelCycles(t.sharedStream
                                     ? stats.hbmSharedChannelCycles
                                     : stats.hbmPrivateChannelCycles,
                                 t.hbmChannelMask, t.hbmStreamCycles);
            } else {
                (t.sharedStream ? shared_striped : private_striped) +=
                    t.hbmStreamCycles;
            }
            break;
          }
          case isa::Engine::kVpu: {
            VectorTiming t = vpu_.timing(inst);
            occupancy = t.occupancy;
            latency = t.latency;
            stats.hbmBytes += t.hbmBytes;
            stats.ddrBytes += t.ddrBytes;
            stats.flops += t.flops;
            if (t.hbmChannelMask != 0)
                addChannelCycles(stats.hbmPrivateChannelCycles,
                                 t.hbmChannelMask, t.hbmStreamCycles);
            else
                private_striped += t.hbmStreamCycles;
            break;
          }
          case isa::Engine::kDma: {
            DmaTiming t = dmaUnit_.timing(inst);
            occupancy = t.occupancy;
            latency = t.latency;
            stats.hbmBytes += t.hbmBytes;
            if (t.hbmChannelMask != 0)
                addChannelCycles(stats.hbmPrivateChannelCycles,
                                 t.hbmChannelMask, t.hbmStreamCycles);
            else
                private_striped += t.hbmStreamCycles;
            break;
          }
          case isa::Engine::kRouter:
            // Ring transfer time is charged by the cluster, which
            // knows the full payload and hop count.
            occupancy = 0;
            latency = 0;
            break;
        }

        const Cycles deps = sourceReady(inst);
        const Cycles start = std::max(deps, engine_ready[e]);
        const Cycles complete = start + latency;
        engine_ready[e] = start + occupancy + params_.issueOverhead;
        retireDests(inst, complete);

        // Incremental critical-path attribution: only the cycles by
        // which this instruction extends the phase count toward its
        // category, so overlapped work is not double counted.
        if (complete > phase_end) {
            stats.byCategory[static_cast<size_t>(inst.category)] +=
                complete - phase_end;
            phase_end = complete;
        }
        stats.instructions += 1;

        // --- functional ----------------------------------------------
        if (functional_) {
            [[maybe_unused]] const uint32_t tid =
                static_cast<uint32_t>(coreId_);
            switch (engine) {
              case isa::Engine::kMpu: {
                DFX_TRACE_SCOPE("mpu", "unit", tid);
                mpu_.execute(inst, vrf_);
                break;
              }
              case isa::Engine::kVpu: {
                DFX_TRACE_SCOPE("vpu", "unit", tid);
                vpu_.execute(inst, vrf_, srf_, irf_);
                break;
              }
              case isa::Engine::kDma: {
                DFX_TRACE_SCOPE("dma", "unit", tid);
                dmaUnit_.execute(inst, vrf_);
                break;
              }
              case isa::Engine::kRouter:
                break;  // the cluster performs the exchange
            }
        }
    }
    if (shared_striped != 0 || private_striped != 0) {
        for (size_t c = 0; c < kHbmChannels; ++c) {
            stats.hbmSharedChannelCycles[c] += shared_striped;
            stats.hbmPrivateChannelCycles[c] += private_striped;
        }
    }
    stats.cycles = phase_end;
    return stats;
}

}  // namespace dfx
