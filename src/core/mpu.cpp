/**
 * @file
 * Matrix processing unit implementation.
 */
#include "core/mpu.hpp"

#include <algorithm>
#include <cmath>

namespace dfx {

Mpu::Mpu(const CoreParams &params, OffchipMemory *hbm, OffchipMemory *ddr)
    : params_(params), hbm_(hbm), ddr_(ddr)
{
}

Half
Mpu::treeReduce(const Half *values, size_t n)
{
    // Pairwise reduction, padding to the next power of two with +0.
    // Matches the parallel adder tree of depth log2(d).
    size_t width = 1;
    while (width < n)
        width <<= 1;
    std::vector<Half> level(width, Half::zero());
    for (size_t i = 0; i < n; ++i)
        level[i] = values[i];
    while (width > 1) {
        width /= 2;
        for (size_t i = 0; i < width; ++i)
            level[i] = level[2 * i] + level[2 * i + 1];
    }
    return level[0];
}

Half
Mpu::weightAt(const isa::Instruction &inst, size_t r, size_t c) const
{
    const uint32_t pitch = inst.pitch ? inst.pitch : inst.cols;
    uint64_t offset;
    if (inst.flags & isa::kFlagWeightRowIsCol) {
        // Operand stored transposed (K rows, V^T rows): element (r, c)
        // of the logical weight is at stored position (c, r).
        offset = (static_cast<uint64_t>(c) * pitch + r) * 2;
    } else {
        offset = (static_cast<uint64_t>(r) * pitch + c) * 2;
    }
    return hbm_->loadHalf(inst.src2.addr + offset);
}

MatrixTiming
Mpu::timing(const isa::Instruction &inst) const
{
    const size_t d = params_.tileRows;
    const size_t l = params_.lanes;
    const size_t rows = inst.len;
    const size_t cols = inst.cols;
    const uint64_t row_tiles = (rows + d - 1) / d;
    const uint64_t col_tiles = (cols + l - 1) / l;

    MatrixTiming t;
    // One d x l tile is consumed per cycle when the stream keeps up.
    const uint64_t compute = row_tiles * col_tiles;
    // The DMA streams full padded tiles: underutilized trees/lanes
    // still consume bandwidth (this is what degrades d>64 on K^T and
    // l>64 on V, Fig. 8a).
    t.hbmBytes = row_tiles * d * col_tiles * l * 2;
    // Per-head K/V operands (stored transposed) live in only a couple
    // of HBM pseudo-channels, so they stream at a fraction of the
    // aggregate bandwidth; bulk weight matrices are striped across all
    // channels.
    double bytes_per_cycle = params_.hbmBytesPerCycle();
    if (inst.flags & isa::kFlagWeightRowIsCol) {
        bytes_per_cycle *= static_cast<double>(params_.kvStreamChannels) /
                           static_cast<double>(params_.hbmChannels);
    }
    const Cycles hbm_cycles = static_cast<Cycles>(std::ceil(
        static_cast<double>(t.hbmBytes) / bytes_per_cycle));
    Cycles ddr_cycles = 0;
    if (inst.src3.space == isa::Space::kDdr) {
        t.ddrBytes = cols * 2;
        ddr_cycles = static_cast<Cycles>(std::ceil(
            static_cast<double>(t.ddrBytes) / params_.ddrBytesPerCycle()));
    }
    t.occupancy = std::max({compute, hbm_cycles, ddr_cycles});
    Cycles post = 0;
    if (inst.flags & isa::kFlagGelu)
        post += params_.geluLatency;
    if (inst.flags & isa::kFlagScale)
        post += params_.mulLatency;
    // Sliding window for over-long inputs (§IV-C): each extra window
    // refills the pipeline and reloads the partial sums.
    const Cycles windows =
        (rows + params_.maxConvInput - 1) / params_.maxConvInput;
    const Cycles window_penalty =
        (windows - 1) * (params_.mpuFillLatency() + params_.addLatency);
    t.latency = t.occupancy + params_.mpuFillLatency() + post +
                window_penalty;
    t.flops = 2.0 * static_cast<double>(rows) * static_cast<double>(cols);
    if (inst.src3.space == isa::Space::kDdr)
        t.flops += static_cast<double>(cols);  // bias adds
    return t;
}

void
Mpu::execute(const isa::Instruction &inst, VectorRegFile &vrf) const
{
    const size_t d = params_.tileRows;
    const size_t rows = inst.len;
    const size_t cols = inst.cols;
    const size_t in_base = inst.src1.addr * VectorRegFile::kWidth;
    const size_t out_base = inst.dst.addr * VectorRegFile::kWidth;

    // Preload the input vector (it is broadcast across lanes).
    std::vector<Half> x(rows);
    for (size_t r = 0; r < rows; ++r)
        x[r] = vrf.read(in_base + r);

    const bool masked = (inst.op == isa::Opcode::kMaskedMm) &&
                        (inst.flags & isa::kFlagMask);
    Half scale = Half::one();
    if (inst.flags & isa::kFlagScale)
        scale = Half::fromBits(static_cast<uint16_t>(inst.src3.addr));

    std::vector<Half> products(d);
    for (size_t c = 0; c < cols; ++c) {
        Half acc = Half::zero();
        for (size_t r0 = 0; r0 < rows; r0 += d) {
            const size_t chunk = std::min(d, rows - r0);
            for (size_t i = 0; i < chunk; ++i)
                products[i] = weightAt(inst, r0 + i, c) * x[r0 + i];
            for (size_t i = chunk; i < d; ++i)
                products[i] = Half::zero();
            acc = acc + treeReduce(products.data(), d);
        }
        if (inst.src3.space == isa::Space::kDdr)
            acc = acc + ddr_->loadHalf(inst.src3.addr + c * 2);
        if (inst.flags & isa::kFlagScale)
            acc = acc * scale;
        if (masked && c > inst.aux)
            acc = Half::lowest();  // closest representable to -inf
        if (inst.flags & isa::kFlagGelu)
            acc = GeluLut::instance().eval(acc);
        vrf.write(out_base + c, acc);
    }
}

}  // namespace dfx
