/**
 * @file
 * Matrix processing unit implementation.
 */
#include "core/mpu.hpp"

#include <algorithm>
#include <cmath>

#include "memory/hbm_channels.hpp"
#include "numeric/simd.hpp"

namespace dfx {

Mpu::Mpu(const CoreParams &params, OffchipMemory *hbm, OffchipMemory *ddr)
    : params_(params), hbm_(hbm), ddr_(ddr)
{
}

Half
Mpu::reduceInPlace(Half *v, size_t width)
{
    // Pairwise reduction over a power-of-two width: one FP16 rounding
    // per adder-tree node, exactly like the hardware tree.
    while (width > 1) {
        width /= 2;
        for (size_t i = 0; i < width; ++i)
            v[i] = v[2 * i] + v[2 * i + 1];
    }
    return v[0];
}

float
Mpu::reduceInPlaceF(float *v, size_t width)
{
    return simd::treeReduceQuantized(v, width);
}

Half
Mpu::treeReduce(const Half *values, size_t n)
{
    // Pad to the next power of two with +0 (matches the parallel adder
    // tree of depth log2(d)).
    size_t width = 1;
    while (width < n)
        width <<= 1;
    std::vector<Half> level(width, Half::zero());
    std::copy(values, values + n, level.begin());
    return reduceInPlace(level.data(), width);
}

MatrixTiming
Mpu::timing(const isa::Instruction &inst) const
{
    const size_t d = params_.tileRows;
    const size_t l = params_.lanes;
    const size_t rows = inst.len;
    const size_t cols = inst.cols;
    const uint64_t row_tiles = (rows + d - 1) / d;
    const uint64_t col_tiles = (cols + l - 1) / l;

    MatrixTiming t;
    // One d x l tile is consumed per cycle when the stream keeps up.
    const uint64_t compute = row_tiles * col_tiles;
    t.computeCycles = compute;
    // KV streams (flagged transposed-weight) are per-request; plain
    // HBM weight operands are shared across resident requests.
    t.sharedStream = inst.src2.space == isa::Space::kHbm &&
                     !(inst.flags & isa::kFlagWeightRowIsCol);
    // The DMA streams full padded tiles: underutilized trees/lanes
    // still consume bandwidth (this is what degrades d>64 on K^T and
    // l>64 on V, Fig. 8a).
    t.hbmBytes = row_tiles * d * col_tiles * l * 2;
    // Per-channel streaming: the operand's byte footprint spreads
    // uniformly over its channel set, each channel delivering 1/C of
    // the aggregate bandwidth — so the stream time is the time of any
    // one touched channel. Bulk weights stripe across all C channels
    // (full bandwidth); each head's K/V^T operand is pinned to the few
    // channels its region lives in. An unannotated transposed operand
    // falls back to a kvStreamChannels-wide set: its *per-instruction*
    // timing is bit-identical to the historic static derating, while a
    // batched round treats all such operands as sharing the default
    // set (their real placement is unknown, so they conservatively
    // collide rather than overlap).
    const size_t total_channels = params_.hbmChannels;
    size_t stream_channels;
    if (inst.hbmChannels != 0) {
        t.hbmChannelMask = inst.hbmChannels;
        stream_channels =
            std::min(channelCount(inst.hbmChannels), total_channels);
    } else if (inst.flags & isa::kFlagWeightRowIsCol) {
        stream_channels = params_.kvStreamChannels;
        // Record the default set so the occupancy ledger doesn't
        // mistake the derated stream for an all-channel stripe (see
        // the fallback note above).
        t.hbmChannelMask =
            contiguousChannels(0, stream_channels, total_channels);
    } else {
        stream_channels = total_channels;
    }
    double bytes_per_cycle = params_.hbmBytesPerCycle();
    bytes_per_cycle *= static_cast<double>(stream_channels) /
                       static_cast<double>(total_channels);
    const Cycles hbm_cycles = static_cast<Cycles>(std::ceil(
        static_cast<double>(t.hbmBytes) / bytes_per_cycle));
    t.hbmStreamCycles = hbm_cycles;
    Cycles ddr_cycles = 0;
    if (inst.src3.space == isa::Space::kDdr) {
        t.ddrBytes = cols * 2;
        ddr_cycles = static_cast<Cycles>(std::ceil(
            static_cast<double>(t.ddrBytes) / params_.ddrBytesPerCycle()));
    }
    t.occupancy = std::max({compute, hbm_cycles, ddr_cycles});
    Cycles post = 0;
    if (inst.flags & isa::kFlagGelu)
        post += params_.geluLatency;
    if (inst.flags & isa::kFlagScale)
        post += params_.mulLatency;
    // Sliding window for over-long inputs (§IV-C): each extra window
    // refills the pipeline and reloads the partial sums. A zero-length
    // operand is zero windows of work, not (0 - 1) underflowed ones.
    const Cycles windows = std::max<Cycles>(
        1, (rows + params_.maxConvInput - 1) / params_.maxConvInput);
    const Cycles window_penalty =
        (windows - 1) * (params_.mpuFillLatency() + params_.addLatency);
    t.latency = t.occupancy + params_.mpuFillLatency() + post +
                window_penalty;
    t.flops = 2.0 * static_cast<double>(rows) * static_cast<double>(cols);
    if (inst.src3.space == isa::Space::kDdr)
        t.flops += static_cast<double>(cols);  // bias adds
    return t;
}

void
Mpu::execute(const isa::Instruction &inst, VectorRegFile &vrf) const
{
    const size_t d = params_.tileRows;
    const size_t rows = inst.len;
    const size_t cols = inst.cols;
    const uint32_t pitch = inst.pitch ? inst.pitch : inst.cols;
    const size_t in_base = inst.src1.addr * VectorRegFile::kWidth;
    const size_t out_base = inst.dst.addr * VectorRegFile::kWidth;
    const bool transposed = (inst.flags & isa::kFlagWeightRowIsCol) != 0;
    const bool masked = (inst.op == isa::Opcode::kMaskedMm) &&
                        (inst.flags & isa::kFlagMask);

    // Widen the input vector out of the VRF once (it is broadcast
    // across lanes in hardware); the copy also protects against the
    // destination window aliasing it. The scratch persists across
    // instructions, so steady-state decode never reallocates.
    {
        const Half *xin = vrf.readSpan(in_base, rows);
        x_.resize(rows);
        simd::toFloatSpan(xin, x_.data(), rows);
    }

    // One span covers the whole weight operand: its last element is
    // (rows-1, cols-1) in either storage order.
    const size_t w_elems = transposed
                               ? (cols - 1) * size_t{pitch} + rows
                               : (rows - 1) * size_t{pitch} + cols;
    const Half *w = hbm_->loadSpan(inst.src2.addr, w_elems);

    // The MAC tree consumes d products per chunk, padded to the next
    // power of two with +0 (identical rounding to the d-element
    // treeReduce of the reference path).
    size_t width = 1;
    while (width < d)
        width <<= 1;

    acc_.assign(cols, 0.0f);
    if (transposed) {
        // Stored (c, r): each output column reads a contiguous run of
        // the span — stream column by column through the fused
        // product kernel and the level-wise requantizing tree.
        products_.resize(width);
        for (size_t c = 0; c < cols; ++c) {
            if (masked && c > inst.aux)
                continue;  // overwritten by the mask below
            const Half *col = w + c * size_t{pitch};
            float acc = 0.0f;
            for (size_t r0 = 0; r0 < rows; r0 += d) {
                const size_t chunk = std::min(d, rows - r0);
                simd::productQuantizedSpan(col + r0, x_.data() + r0,
                                           products_.data(), chunk);
                std::fill(products_.begin() +
                              static_cast<ptrdiff_t>(chunk),
                          products_.begin() + static_cast<ptrdiff_t>(width),
                          0.0f);
                acc = simd::quantizedAdd(
                    acc, simd::treeReduceQuantized(products_.data(),
                                                   width));
            }
            acc_[c] = acc;
        }
    } else {
        // Stored (r, c): the kernel walks d weight rows in lockstep
        // across the columns so the big matmuls hit memory row-major
        // (eight columns per step on the vector path).
        simd::macRowMajor(w, pitch, x_.data(), rows, cols, d,
                          acc_.data());
    }

    // SFU_M tail: bias, scale, mask, GELU — in hardware order. Runs in
    // the Half domain (once per output column, off the hot path).
    const Half *bias = inst.src3.space == isa::Space::kDdr
                           ? ddr_->loadSpan(inst.src3.addr, cols)
                           : nullptr;
    Half scale = Half::one();
    if (inst.flags & isa::kFlagScale)
        scale = Half::fromBits(static_cast<uint16_t>(inst.src3.addr));
    const GeluLut *gelu =
        (inst.flags & isa::kFlagGelu) ? &GeluLut::instance() : nullptr;

    Half *out = vrf.writeSpan(out_base, cols);
    if (bias == nullptr && !(inst.flags & isa::kFlagScale) && !masked &&
        gelu == nullptr) {
        // No SFU work: the accumulators are exact widened halves, so
        // the span narrowing writes them back bit-for-bit.
        simd::fromFloatSpan(acc_.data(), out, cols);
        return;
    }
    for (size_t c = 0; c < cols; ++c) {
        Half acc = Half::fromFloat(acc_[c]);
        if (bias)
            acc = acc + bias[c];
        if (inst.flags & isa::kFlagScale)
            acc = acc * scale;
        if (masked && c > inst.aux)
            acc = Half::lowest();  // closest representable to -inf
        if (gelu)
            acc = gelu->eval(acc);
        out[c] = acc;
    }
}

}  // namespace dfx
