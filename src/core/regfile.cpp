/**
 * @file
 * Register file implementation.
 */
#include "core/regfile.hpp"

namespace dfx {

VectorRegFile::VectorRegFile(size_t lines, bool functional)
    : lines_(lines), functional_(functional)
{
    if (functional_)
        data_.assign(lines_ * kWidth, Half::zero());
}

Half
VectorRegFile::read(size_t elem_index) const
{
    DFX_ASSERT(functional_, "VRF data read in timing-only mode");
    DFX_ASSERT(elem_index < data_.size(), "VRF read elem %zu of %zu",
               elem_index, data_.size());
    return data_[elem_index];
}

void
VectorRegFile::write(size_t elem_index, Half value)
{
    DFX_ASSERT(functional_, "VRF data write in timing-only mode");
    DFX_ASSERT(elem_index < data_.size(), "VRF write elem %zu of %zu",
               elem_index, data_.size());
    data_[elem_index] = value;
}

VecH
VectorRegFile::readVec(size_t line0, size_t n) const
{
    DFX_ASSERT(functional_, "VRF data read in timing-only mode");
    size_t base = line0 * kWidth;
    DFX_ASSERT(base + n <= data_.size(),
               "VRF readVec line %zu + %zu elems out of range", line0, n);
    VecH out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = data_[base + i];
    return out;
}

void
VectorRegFile::writeVec(size_t line0, const VecH &v)
{
    DFX_ASSERT(functional_, "VRF data write in timing-only mode");
    size_t base = line0 * kWidth;
    DFX_ASSERT(base + v.size() <= data_.size(),
               "VRF writeVec line %zu + %zu elems out of range", line0,
               v.size());
    for (size_t i = 0; i < v.size(); ++i)
        data_[base + i] = v[i];
}

const Half *
VectorRegFile::readSpan(size_t e0, size_t n) const
{
    return const_cast<VectorRegFile *>(this)->writeSpan(e0, n);
}

Half *
VectorRegFile::writeSpan(size_t e0, size_t n)
{
    DFX_ASSERT(functional_, "VRF data access in timing-only mode");
    DFX_ASSERT(e0 + n <= data_.size(),
               "VRF span elem %zu + %zu out of %zu", e0, n,
               data_.size());
    return data_.data() + e0;
}

void
VectorRegFile::clear(size_t line0, size_t n)
{
    DFX_ASSERT(functional_, "VRF clear in timing-only mode");
    size_t base = line0 * kWidth;
    DFX_ASSERT(base + n <= data_.size(), "VRF clear out of range");
    for (size_t i = 0; i < n; ++i)
        data_[base + i] = Half::zero();
}

ScalarRegFile::ScalarRegFile(size_t regs, bool functional)
    : regs_(regs), functional_(functional)
{
    if (functional_)
        data_.assign(regs_, Half::zero());
}

Half
ScalarRegFile::read(size_t reg) const
{
    DFX_ASSERT(functional_, "SRF data read in timing-only mode");
    DFX_ASSERT(reg < data_.size(), "SRF read %zu of %zu", reg,
               data_.size());
    return data_[reg];
}

void
ScalarRegFile::write(size_t reg, Half value)
{
    DFX_ASSERT(functional_, "SRF data write in timing-only mode");
    DFX_ASSERT(reg < data_.size(), "SRF write %zu of %zu", reg,
               data_.size());
    data_[reg] = value;
}

}  // namespace dfx
