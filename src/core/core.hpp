/**
 * @file
 * The DFX compute core (paper §V, Fig. 7).
 *
 * One core per FPGA. The core owns its HBM and DDR devices, the
 * register files, the MPU/VPU/DMA units and the control unit state
 * (scheduler + scoreboard). `executePhase` runs a straight-line
 * program the way the hardware does: instructions issue in order, one
 * per engine at a time, chain through the scoreboard (dependents
 * dovetail with pipeline latency) and overlap across engines
 * ("compute processes data, dma fetches data, and router fills the
 * buffer ... simultaneously", §IV-C).
 */
#ifndef DFX_CORE_CORE_HPP
#define DFX_CORE_CORE_HPP

#include <array>
#include <memory>

#include "core/core_params.hpp"
#include "core/dma.hpp"
#include "core/mpu.hpp"
#include "core/regfile.hpp"
#include "core/scoreboard.hpp"
#include "core/vpu.hpp"
#include "isa/instruction.hpp"
#include "memory/offchip.hpp"

namespace dfx {

constexpr size_t kNumCategories =
    static_cast<size_t>(isa::Category::kNumCategories);

/** HBM pseudo-channels per core (array bound of channel profiles). */
constexpr size_t kHbmChannels =
    static_cast<size_t>(HbmSpec::kChannels);

/** Result of executing one phase on one core. */
struct PhaseStats
{
    Cycles cycles = 0;  ///< phase critical path on this core
    std::array<Cycles, kNumCategories> byCategory{};
    uint64_t hbmBytes = 0;
    uint64_t ddrBytes = 0;
    double flops = 0.0;
    uint64_t instructions = 0;
    /**
     * Cycles a second concurrently-resident request would *not* pay
     * if its step were batched with this one: for every MPU
     * instruction whose HBM operand is a shared weight matrix, the
     * stream-bound slack (occupancy minus MAC-array cycles). The
     * serving scheduler uses this to charge batch-mates marginal cost.
     */
    Cycles weightReuseCycles = 0;
    /**
     * Like weightReuseCycles but for channel-pinned per-request
     * streams (K/V): the stream-bound slack of pinned MPU operands.
     * A batch-mate's K/V traffic moves to the round's per-channel
     * occupancy ledger instead of serializing on the critical path,
     * so this is the amortizable share of its private streaming.
     */
    Cycles privateStreamCycles = 0;
    /**
     * Per-channel occupancy ledger: cycles each HBM pseudo-channel
     * spends streaming during the phase. Shared (weight) and private
     * (per-request K/V) traffic are kept apart so a batched round can
     * count the weight stripe once while private streams accumulate.
     * Operands striped across all channels charge every channel their
     * aggregate-rate stream time (uniform interleave).
     */
    std::array<Cycles, kHbmChannels> hbmSharedChannelCycles{};
    std::array<Cycles, kHbmChannels> hbmPrivateChannelCycles{};

    void accumulate(const PhaseStats &other);
};

/** One DFX compute core with its private off-chip memories. */
class ComputeCore
{
  public:
    /**
     * @param core_id this core's position in the ring
     * @param params timing/structural parameters
     * @param functional allocate data planes and compute real values
     */
    ComputeCore(size_t core_id, const CoreParams &params, bool functional);

    /**
     * Executes a phase program. In functional mode the data plane is
     * updated; in both modes the timing model produces cycle counts.
     * A trailing `sync` instruction is costed by the cluster, not
     * here.
     */
    PhaseStats executePhase(const isa::Program &prog);

    size_t coreId() const { return coreId_; }
    bool functional() const { return functional_; }
    const CoreParams &params() const { return params_; }

    OffchipMemory &hbm() { return hbm_; }
    OffchipMemory &ddr() { return ddr_; }
    VectorRegFile &vrf() { return vrf_; }
    ScalarRegFile &srf() { return srf_; }
    IndexRegFile &irf() { return irf_; }

  private:
    /** Scoreboard readiness of an instruction's sources. */
    Cycles sourceReady(const isa::Instruction &inst) const;
    /** Marks an instruction's destinations ready at `when`. */
    void retireDests(const isa::Instruction &inst, Cycles when);

    size_t coreId_;
    CoreParams params_;
    bool functional_;
    OffchipMemory hbm_;
    OffchipMemory ddr_;
    VectorRegFile vrf_;
    ScalarRegFile srf_;
    IndexRegFile irf_;
    Scoreboard scoreboard_;
    Mpu mpu_;
    Vpu vpu_;
    DmaUnit dmaUnit_;
};

}  // namespace dfx

#endif  // DFX_CORE_CORE_HPP
