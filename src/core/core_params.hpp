/**
 * @file
 * DFX compute-core timing parameters.
 *
 * Structural parameters ((d, l), clock, pipeline depths) come straight
 * from the paper (§V). Two empirical derating factors are calibration
 * constants, chosen once so the simulated 345M/1-FPGA per-token
 * latency lands near the paper's measured 5.4 ms/token and frozen:
 *
 *  - hbmEfficiency: sustained/peak HBM bandwidth for the DMA's tiled
 *    streaming pattern. Published HBM2 studies on the U280 measure
 *    45-65% of peak for multi-channel strided reads; 0.50 here.
 *  - issueOverhead: scheduler/operand-collector/FSM cycles between
 *    chained instructions. The paper's LayerNorm share (9.3% of layer
 *    latency for 0.1% of FLOPs) implies tens of cycles of per-
 *    instruction overhead around the short vector chains; 55 here.
 *  - kvStreamChannels: the width of the pseudo-channel set
 *    `MemoryLayout` pins each head's K and V^T cache to (1 of 32
 *    channels here). Those operands stream at their channel set's
 *    share of aggregate bandwidth — `Mpu::timing` takes the byte
 *    footprint per touched channel over the per-channel rate — which
 *    is what makes self-attention the largest latency share on DFX
 *    (Fig. 15: 43%) despite the FFN moving 2x the weight bytes, and
 *    what degrades d>64 / l>64 in the Fig. 8 tiling sweep. Bulk
 *    weights are address-interleaved across all `hbmChannels` (mask
 *    0) and stream at full bandwidth. Concurrently resident requests
 *    occupy their own sets; `DfxCluster::stepTokenBatch` accumulates
 *    per-channel occupancy across a batched round, so K/V streams on
 *    disjoint sets overlap and colliding sets serialize. For a
 *    matrix operand without an assigned set, kvStreamChannels doubles
 *    as the legacy derating width so hand-built programs keep their
 *    historic timing.
 */
#ifndef DFX_CORE_CORE_PARAMS_HPP
#define DFX_CORE_CORE_PARAMS_HPP

#include <cstddef>
#include <cstdint>

#include "memory/offchip.hpp"

namespace dfx {

/** All tunables of the compute-core timing model. */
struct CoreParams
{
    // --- structural (paper §V, §VI) -----------------------------------
    double clockHz = 200e6;       ///< kernel clock
    size_t tileRows = 64;         ///< d: MAC-tree input dimension
    size_t lanes = 16;            ///< l: parallel MAC trees
    size_t vectorWidth = 64;      ///< VPU lane width
    size_t vrfLines = 4096;       ///< vector register file depth
    size_t srfRegs = 256;         ///< scalar register file depth

    // FP16 operator pipeline depths (paper §V-C).
    uint32_t mulLatency = 6;      ///< DSP multiplier
    uint32_t addLatency = 11;     ///< DSP adder (2 DSPs)
    uint32_t expLatency = 4;
    uint32_t recipLatency = 14;   ///< SFU reciprocal
    uint32_t rsqrtLatency = 18;   ///< SFU reciprocal square root
    uint32_t geluLatency = 4;     ///< SFU_M LUT + interpolation
    uint32_t reduMaxLatency = 24; ///< comparator tree + index select

    /**
     * Maximum Conv1D input length the operand collector can hold; a
     * longer input is processed "through a sliding window" (§IV-C),
     * costing one extra pipeline fill + partial-sum pass per window.
     */
    size_t maxConvInput = 8192;

    // --- calibration (see file comment) --------------------------------
    double hbmEfficiency = 0.50;
    double ddrEfficiency = 0.70;
    uint32_t issueOverhead = 55;
    size_t hbmChannels = 32;      ///< HbmSpec::kChannels
    size_t kvStreamChannels = 1;  ///< channel-set width of one K/V region

    /** MAC-tree fill: multiplier + log2(d) adder stages + accumulate. */
    uint32_t
    mpuFillLatency() const
    {
        uint32_t depth = 0;
        size_t n = tileRows;
        while (n > 1) {
            ++depth;
            n /= 2;
        }
        return mulLatency + depth * addLatency + addLatency;
    }

    /** Adder-tree reduction latency over one 64-wide line (SFU_V). */
    uint32_t
    accumTreeLatency() const
    {
        uint32_t depth = 0;
        size_t n = vectorWidth;
        while (n > 1) {
            ++depth;
            n /= 2;
        }
        return depth * addLatency;
    }

    /** Effective HBM bytes per core cycle. */
    double
    hbmBytesPerCycle() const
    {
        return HbmSpec::kPeakBandwidth * hbmEfficiency / clockHz;
    }

    /** Effective DDR bytes per core cycle. */
    double
    ddrBytesPerCycle() const
    {
        return DdrSpec::kPeakBandwidth * ddrEfficiency / clockHz;
    }

    /** Peak MACs per cycle (d*l). */
    size_t macsPerCycle() const { return tileRows * lanes; }

    /** Peak throughput in FLOP/s (2 flops per MAC). */
    double peakFlops() const
    {
        return 2.0 * static_cast<double>(macsPerCycle()) * clockHz;
    }

    static CoreParams defaults() { return {}; }

    /** Variant with a different tiling, for the Fig. 8 DSE. */
    static CoreParams
    withTiling(size_t d, size_t l)
    {
        CoreParams p;
        p.tileRows = d;
        p.lanes = l;
        return p;
    }
};

}  // namespace dfx

#endif  // DFX_CORE_CORE_PARAMS_HPP
