/**
 * @file
 * DMA engine: Key/Value cache appends with the transpose unit
 * (paper §V-B).
 *
 * The DMA's write path appends the current token's Key row to the
 * per-head Key region, and scatters the Value vector column-wise into
 * the transposed V^T region ("DFX transposes the Value matrix while
 * its partial tiles are being written to the off-chip memory"). The
 * instruction reordering that hides this latency — Value computed
 * before Query/Key — is done by the codegen.
 */
#ifndef DFX_CORE_DMA_HPP
#define DFX_CORE_DMA_HPP

#include "core/core_params.hpp"
#include "core/regfile.hpp"
#include "isa/instruction.hpp"
#include "memory/offchip.hpp"

namespace dfx {

/** Cost of a DMA instruction. */
struct DmaTiming
{
    Cycles occupancy = 0;
    Cycles latency = 0;
    uint64_t hbmBytes = 0;
    /** Cycles the write keeps each of its channels busy. */
    Cycles hbmStreamCycles = 0;
    /** Channels the KV region occupies (0 = striped across all). */
    uint32_t hbmChannelMask = 0;
};

/** DMA write engine (KV append + transpose unit). */
class DmaUnit
{
  public:
    DmaUnit(const CoreParams &params, OffchipMemory *hbm);

    DmaTiming timing(const isa::Instruction &inst) const;

    void execute(const isa::Instruction &inst,
                 const VectorRegFile &vrf) const;

  private:
    const CoreParams &params_;
    OffchipMemory *hbm_;
};

}  // namespace dfx

#endif  // DFX_CORE_DMA_HPP
