/**
 * @file
 * DMA engine implementation.
 */
#include "core/dma.hpp"

#include <algorithm>
#include <cmath>

#include "memory/hbm_channels.hpp"

namespace dfx {

DmaUnit::DmaUnit(const CoreParams &params, OffchipMemory *hbm)
    : params_(params), hbm_(hbm)
{
}

DmaTiming
DmaUnit::timing(const isa::Instruction &inst) const
{
    DFX_ASSERT(inst.op == isa::Opcode::kDmaStoreKv, "not a DMA op");
    DmaTiming t;
    t.hbmBytes = static_cast<uint64_t>(inst.len) * 2;
    // A KV append lands entirely in the region's pinned channels, so
    // it writes at their share of the aggregate bandwidth. Without a
    // channel set (hand-built programs) the historic aggregate-rate
    // cost is kept.
    double bytes_per_cycle = params_.hbmBytesPerCycle();
    if (inst.hbmChannels != 0) {
        t.hbmChannelMask = inst.hbmChannels;
        const size_t ch = std::min(channelCount(inst.hbmChannels),
                                   params_.hbmChannels);
        bytes_per_cycle *= static_cast<double>(ch) /
                           static_cast<double>(params_.hbmChannels);
    }
    t.occupancy = std::max<Cycles>(
        1, static_cast<Cycles>(std::ceil(static_cast<double>(t.hbmBytes) /
                                         bytes_per_cycle)));
    t.hbmStreamCycles = t.occupancy;
    // The transpose unit adds a small pipeline depth; the cost is
    // normally hidden by the V-before-Q/K instruction order.
    t.latency = t.occupancy + 4;
    return t;
}

void
DmaUnit::execute(const isa::Instruction &inst,
                 const VectorRegFile &vrf) const
{
    DFX_ASSERT(inst.op == isa::Opcode::kDmaStoreKv, "not a DMA op");
    if (inst.len == 0)
        return;  // keep the zero-length no-op (span math would underflow)
    const Half *v =
        vrf.readSpan(inst.src1.addr * VectorRegFile::kWidth, inst.len);
    if (inst.flags & isa::kFlagTranspose) {
        // V^T scatter: element j goes to row j, column `aux` of the
        // transposed region whose row length is `pitch`. One span
        // covers the whole scatter footprint.
        DFX_ASSERT(inst.pitch > 0, "transpose store needs pitch");
        if (hbm_->isPaged(inst.dst.addr)) {
            // A paged window has no contiguous mutable view; scatter
            // the (few, headDim-sized) elements one at a time through
            // the translator instead.
            for (size_t j = 0; j < inst.len; ++j)
                hbm_->storeHalf(
                    inst.dst.addr +
                        2 * (static_cast<uint64_t>(j) * inst.pitch +
                             inst.aux),
                    v[j]);
        } else {
            Half *dst = hbm_->storeSpan(
                inst.dst.addr,
                (static_cast<uint64_t>(inst.len - 1) * inst.pitch +
                 inst.aux) + 1);
            for (size_t j = 0; j < inst.len; ++j)
                dst[static_cast<uint64_t>(j) * inst.pitch + inst.aux] =
                    v[j];
        }
    } else {
        // K row append: contiguous write at the row address.
        hbm_->writeHalf(inst.dst.addr, v, inst.len);
    }
}

}  // namespace dfx
