/**
 * @file
 * DMA engine implementation.
 */
#include "core/dma.hpp"

#include <cmath>

namespace dfx {

DmaUnit::DmaUnit(const CoreParams &params, OffchipMemory *hbm)
    : params_(params), hbm_(hbm)
{
}

DmaTiming
DmaUnit::timing(const isa::Instruction &inst) const
{
    DFX_ASSERT(inst.op == isa::Opcode::kDmaStoreKv, "not a DMA op");
    DmaTiming t;
    t.hbmBytes = static_cast<uint64_t>(inst.len) * 2;
    t.occupancy = std::max<Cycles>(
        1, static_cast<Cycles>(std::ceil(static_cast<double>(t.hbmBytes) /
                                         params_.hbmBytesPerCycle())));
    // The transpose unit adds a small pipeline depth; the cost is
    // normally hidden by the V-before-Q/K instruction order.
    t.latency = t.occupancy + 4;
    return t;
}

void
DmaUnit::execute(const isa::Instruction &inst,
                 const VectorRegFile &vrf) const
{
    DFX_ASSERT(inst.op == isa::Opcode::kDmaStoreKv, "not a DMA op");
    VecH v = vrf.readVec(inst.src1.addr, inst.len);
    if (inst.flags & isa::kFlagTranspose) {
        // V^T scatter: element j goes to row j, column `aux` of the
        // transposed region whose row length is `pitch`.
        DFX_ASSERT(inst.pitch > 0, "transpose store needs pitch");
        for (size_t j = 0; j < inst.len; ++j) {
            hbm_->storeHalf(inst.dst.addr +
                                (static_cast<uint64_t>(j) * inst.pitch +
                                 inst.aux) * 2,
                            v[j]);
        }
    } else {
        // K row append: contiguous write at the row address.
        hbm_->writeHalf(inst.dst.addr, v.data(), v.size());
    }
}

}  // namespace dfx
