/**
 * @file
 * Matrix processing unit (paper §V-C, Fig. 10a).
 *
 * The MPU holds `l` parallel tree-based MAC lanes, each taking a
 * d-element input chunk per cycle: d*l FP16 multiplies feed l adder
 * trees of depth log2(d), and per-lane accumulators sum partial
 * results across row tiles. The SFU_M behind it applies masking,
 * scaling (constant multiply), GELU (LUT) and reduce-max.
 *
 * Functional execution reproduces the hardware's exact FP16 rounding
 * order: round after every multiply, after every adder-tree node, and
 * after every accumulator add. Timing derives from tile counts, the
 * streaming bandwidth of the weight operand, and pipeline depths.
 *
 * The execute path streams the weight operand through a raw span of
 * the HBM backing store (one bounds check per instruction) and walks
 * it row-major — d weight rows advance in lockstep across the output
 * columns — so the big Conv1D matmuls hit memory sequentially. All
 * per-instruction scratch lives on the unit and is reused.
 */
#ifndef DFX_CORE_MPU_HPP
#define DFX_CORE_MPU_HPP

#include <vector>

#include "core/core_params.hpp"
#include "core/regfile.hpp"
#include "isa/instruction.hpp"
#include "memory/offchip.hpp"
#include "numeric/gelu_lut.hpp"

namespace dfx {

/** Cost of one matrix instruction. */
struct MatrixTiming
{
    Cycles occupancy = 0;   ///< cycles the MPU+DMA stream is busy
    Cycles latency = 0;     ///< cycles until the result is written back
    uint64_t hbmBytes = 0;  ///< weight/KV bytes streamed from HBM
    uint64_t ddrBytes = 0;  ///< bias bytes streamed from DDR
    double flops = 0.0;     ///< useful FLOPs performed
    Cycles computeCycles = 0;  ///< MAC-array cycles alone (tile count)
    /**
     * True when the HBM operand is a model weight matrix — identical
     * for every concurrently-resident request — rather than a
     * per-request K/V stream. A batched decode step streams such an
     * operand once and replays it against every batch-mate's input,
     * so batch-mates pay only `computeCycles` for this instruction.
     */
    bool sharedStream = false;
    /**
     * Cycles the HBM operand keeps each of its channels busy: the
     * per-channel footprint (hbmBytes spread over the operand's
     * channel set) at per-channel bandwidth. With the operand striped
     * across all channels this equals the aggregate-bandwidth stream
     * time; pinned operands stream slower but occupy fewer channels.
     */
    Cycles hbmStreamCycles = 0;
    /** Channels the operand occupies (0 = striped across all). */
    uint32_t hbmChannelMask = 0;
};

/** Matrix function unit + SFU_M. */
class Mpu
{
  public:
    Mpu(const CoreParams &params, OffchipMemory *hbm, OffchipMemory *ddr);

    /** Computes the timing of a matrix instruction (no data access). */
    MatrixTiming timing(const isa::Instruction &inst) const;

    /** Functionally executes a matrix instruction against the VRF. */
    void execute(const isa::Instruction &inst, VectorRegFile &vrf) const;

    /**
     * FP16 pairwise adder-tree reduction, exactly as the MFU hardware
     * sums lane products (exposed for tests). Pads to the next power
     * of two with +0.
     */
    static Half treeReduce(const Half *values, size_t n);

    /**
     * Destructive pairwise reduction of `width` values (a power of
     * two): the shared core of treeReduce and the VPU's kAccum —
     * callers keep a reusable padded buffer.
     */
    static Half reduceInPlace(Half *v, size_t width);

    /**
     * Float-domain variant: every element is an exact widened half,
     * and each tree node requantizes through fp16::quantize —
     * bit-identical rounding to the Half tree, no conversions.
     * Forwards to `simd::treeReduceQuantized` (kept for tests and the
     * VPU, which reduce in the Half domain or own their buffers).
     */
    static float reduceInPlaceF(float *v, size_t width);

  private:
    const CoreParams &params_;
    OffchipMemory *hbm_;
    OffchipMemory *ddr_;
    // Reusable per-instruction scratch (sized on first use; execute is
    // logically const — the scratch carries no visible state). The
    // accumulation runs in the float domain (exact widened halves);
    // the row-major MAC loop itself lives in simd::macRowMajor and
    // needs no per-chunk cursor scratch.
    mutable std::vector<float> x_;         ///< widened input vector
    mutable std::vector<float> acc_;       ///< per-column accumulators
    mutable std::vector<float> products_;  ///< one padded MAC-tree chunk
};

}  // namespace dfx

#endif  // DFX_CORE_MPU_HPP
