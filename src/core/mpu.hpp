/**
 * @file
 * Matrix processing unit (paper §V-C, Fig. 10a).
 *
 * The MPU holds `l` parallel tree-based MAC lanes, each taking a
 * d-element input chunk per cycle: d*l FP16 multiplies feed l adder
 * trees of depth log2(d), and per-lane accumulators sum partial
 * results across row tiles. The SFU_M behind it applies masking,
 * scaling (constant multiply), GELU (LUT) and reduce-max.
 *
 * Functional execution reproduces the hardware's exact FP16 rounding
 * order: round after every multiply, after every adder-tree node, and
 * after every accumulator add. Timing derives from tile counts, the
 * streaming bandwidth of the weight operand, and pipeline depths.
 */
#ifndef DFX_CORE_MPU_HPP
#define DFX_CORE_MPU_HPP

#include "core/core_params.hpp"
#include "core/regfile.hpp"
#include "isa/instruction.hpp"
#include "memory/offchip.hpp"
#include "numeric/gelu_lut.hpp"

namespace dfx {

/** Cost of one matrix instruction. */
struct MatrixTiming
{
    Cycles occupancy = 0;   ///< cycles the MPU+DMA stream is busy
    Cycles latency = 0;     ///< cycles until the result is written back
    uint64_t hbmBytes = 0;  ///< weight/KV bytes streamed from HBM
    uint64_t ddrBytes = 0;  ///< bias bytes streamed from DDR
    double flops = 0.0;     ///< useful FLOPs performed
};

/** Matrix function unit + SFU_M. */
class Mpu
{
  public:
    Mpu(const CoreParams &params, OffchipMemory *hbm, OffchipMemory *ddr);

    /** Computes the timing of a matrix instruction (no data access). */
    MatrixTiming timing(const isa::Instruction &inst) const;

    /** Functionally executes a matrix instruction against the VRF. */
    void execute(const isa::Instruction &inst, VectorRegFile &vrf) const;

    /**
     * FP16 pairwise adder-tree reduction, exactly as the MFU hardware
     * sums lane products (exposed for tests).
     */
    static Half treeReduce(const Half *values, size_t n);

  private:
    Half weightAt(const isa::Instruction &inst, size_t r, size_t c) const;

    const CoreParams &params_;
    OffchipMemory *hbm_;
    OffchipMemory *ddr_;
};

}  // namespace dfx

#endif  // DFX_CORE_MPU_HPP
