/**
 * @file
 * Vector processing unit + SFU_V (paper §V-C, Fig. 10b).
 *
 * The VPU is a 64-wide FP16 ALU for elementwise vector-vector and
 * vector-scalar operations, with a bypass path that makes load/store
 * single-cycle per line. The SFU_V behind it provides the adder-tree
 * accumulation, reciprocal, reciprocal-square-root and the scalar
 * operations LayerNorm/Softmax are composed from.
 */
#ifndef DFX_CORE_VPU_HPP
#define DFX_CORE_VPU_HPP

#include <vector>

#include "core/core_params.hpp"
#include "core/regfile.hpp"
#include "isa/instruction.hpp"
#include "memory/offchip.hpp"

namespace dfx {

/** Cost of one vector/scalar instruction. */
struct VectorTiming
{
    Cycles occupancy = 0;
    Cycles latency = 0;
    uint64_t hbmBytes = 0;
    uint64_t ddrBytes = 0;
    double flops = 0.0;
    /** Cycles an HBM load/store keeps each of its channels busy. */
    Cycles hbmStreamCycles = 0;
    /** Channels the HBM operand occupies (0 = striped across all). */
    uint32_t hbmChannelMask = 0;
};

/** Vector function unit + SFU_V. */
class Vpu
{
  public:
    Vpu(const CoreParams &params, OffchipMemory *hbm, OffchipMemory *ddr);

    /** Timing of a vector/scalar instruction. */
    VectorTiming timing(const isa::Instruction &inst) const;

    /** Functional execution against the register files. */
    void execute(const isa::Instruction &inst, VectorRegFile &vrf,
                 ScalarRegFile &srf, IndexRegFile &irf) const;

  private:
    Half scalarOperand(const isa::Operand &op,
                       const ScalarRegFile &srf) const;
    /** HBM bytes/cycle for an operand, honoring its channel set. */
    double hbmRate(const isa::Instruction &inst, VectorTiming &t) const;

    const CoreParams &params_;
    OffchipMemory *hbm_;
    OffchipMemory *ddr_;
    /** Reusable line buffer for the kAccum adder tree (widened). */
    mutable std::vector<float> line_;
};

}  // namespace dfx

#endif  // DFX_CORE_VPU_HPP
