/**
 * @file
 * Timeline profiler implementation.
 *
 * Each thread appends to its own event buffer; the buffers are owned
 * by a registry that is intentionally leaked (threads may record
 * until the very end of the process, and the atexit flush must still
 * find their events). Enabling via the DFX_TRACE environment
 * variable happens from a static initializer so the whole process —
 * including other static initializers' work — can be traced.
 */
#include "perf/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "common/logging.hpp"

namespace dfx {
namespace perf {
namespace trace_detail {

std::atomic<bool> g_on{false};

namespace {

struct Event
{
    const char *name;
    const char *cat;
    uint32_t tid;
    uint64_t t0;
    uint64_t t1;
};

struct Buffer
{
    std::vector<Event> events;
};

struct Registry
{
    std::mutex mu;
    std::vector<std::unique_ptr<Buffer>> buffers;
    std::string path;
};

Registry &
registry()
{
    // Leaked on purpose: worker threads and the atexit flush may
    // outlive any static-destruction order.
    static Registry *r = new Registry;
    return *r;
}

thread_local Buffer *t_buffer = nullptr;

Buffer &
threadBuffer()
{
    if (t_buffer == nullptr) {
        auto owned = std::make_unique<Buffer>();
        owned->events.reserve(1 << 14);
        t_buffer = owned.get();
        std::lock_guard<std::mutex> lock(registry().mu);
        registry().buffers.push_back(std::move(owned));
    }
    return *t_buffer;
}

}  // namespace

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
record(const char *name, const char *cat, uint32_t tid, uint64_t t0,
       uint64_t t1)
{
    threadBuffer().events.push_back(Event{name, cat, tid, t0, t1});
}

}  // namespace trace_detail

namespace {

using trace_detail::g_on;
using trace_detail::registry;

/** Collects every buffered event, sorted by start time. */
std::vector<trace_detail::Event>
mergedEvents()
{
    std::vector<trace_detail::Event> all;
    {
        std::lock_guard<std::mutex> lock(registry().mu);
        for (const auto &b : registry().buffers)
            all.insert(all.end(), b->events.begin(), b->events.end());
    }
    std::sort(all.begin(), all.end(),
              [](const trace_detail::Event &a, const trace_detail::Event &b) {
                  return a.t0 < b.t0;
              });
    return all;
}

void
clearBuffers()
{
    std::lock_guard<std::mutex> lock(registry().mu);
    for (auto &b : registry().buffers)
        b->events.clear();
}

size_t
flushToFile()
{
    const std::vector<trace_detail::Event> all = mergedEvents();
    const std::string path = registry().path;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        DFX_WARN("trace: cannot open %s for writing", path.c_str());
        return 0;
    }
    // Chrome trace_event JSON object format: complete ("X") events
    // with microsecond timestamps, all in pid 0, one tid per core
    // (plus the host-pipeline lane). Perfetto and chrome://tracing
    // both accept it as-is.
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
    const uint64_t origin = all.empty() ? 0 : all.front().t0;
    bool first = true;
    // Name the lanes so the UI shows "core N" / "host" instead of
    // bare tids.
    std::vector<uint32_t> tids;
    for (const auto &e : all)
        tids.push_back(e.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    for (uint32_t tid : tids) {
        std::fprintf(f,
                     "%s{\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                     "\"name\":\"thread_name\",\"args\":{\"name\":\"%s%u\"}}",
                     first ? "" : ",\n", tid,
                     tid == kTraceHostTid ? "host" : "core ",
                     tid == kTraceHostTid ? 0 : tid);
        first = false;
    }
    for (const auto &e : all) {
        std::fprintf(f,
                     "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                     "\"pid\":0,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                     first ? "" : ",\n", e.name, e.cat, e.tid,
                     static_cast<double>(e.t0 - origin) / 1e3,
                     static_cast<double>(e.t1 - e.t0) / 1e3);
        first = false;
    }
    std::fputs("\n]}\n", f);
    std::fclose(f);
    return all.size();
}

/** DFX_TRACE=<file> traces the whole process and flushes at exit. */
const bool g_env_init = [] {
    const char *path = std::getenv("DFX_TRACE");
    if (path != nullptr && *path != '\0') {
        traceStart(path);
        std::atexit([] { traceStop(); });
    }
    return true;
}();

}  // namespace

void
traceStart(const std::string &path)
{
    clearBuffers();
    registry().path = path;
    g_on.store(true, std::memory_order_relaxed);
}

size_t
traceStop()
{
    if (!g_on.exchange(false, std::memory_order_relaxed))
        return 0;
    const size_t n = flushToFile();
    clearBuffers();
    return n;
}

std::vector<TraceTotal>
traceTotals()
{
    std::map<std::pair<std::string, std::string>, TraceTotal> agg;
    for (const auto &e : mergedEvents()) {
        TraceTotal &t = agg[{e.name, e.cat}];
        t.name = e.name;
        t.category = e.cat;
        t.seconds += static_cast<double>(e.t1 - e.t0) / 1e9;
        t.count += 1;
    }
    std::vector<TraceTotal> out;
    out.reserve(agg.size());
    for (auto &kv : agg)
        out.push_back(std::move(kv.second));
    std::sort(out.begin(), out.end(),
              [](const TraceTotal &a, const TraceTotal &b) {
                  return a.seconds > b.seconds;
              });
    return out;
}

}  // namespace perf
}  // namespace dfx
