/**
 * @file
 * Shared percentile estimator for serving statistics.
 *
 * One definition used by DfxServer, DfxFleet, and the benches, so the
 * p99 figures in ServerStats, FleetStats, and the BENCH_*.json records
 * are computed identically and can be compared across layers.
 */
#ifndef DFX_PERF_PERCENTILE_HPP
#define DFX_PERF_PERCENTILE_HPP

#include <vector>

namespace dfx::perf {

/**
 * Linearly-interpolated percentile of a sample (numpy's "linear"
 * method): rank q*(n-1) interpolated between the two neighbouring
 * order statistics. Unlike index-clamping, the result moves
 * continuously with the sample values, so p99 is stable for small
 * request counts (n=3 does not silently degenerate to the maximum).
 * `values` need not be sorted; returns 0.0 for an empty sample and
 * clamps `q` into [0, 1].
 */
double percentile(std::vector<double> values, double q);

}  // namespace dfx::perf

#endif  // DFX_PERF_PERCENTILE_HPP
