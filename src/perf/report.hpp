/**
 * @file
 * Table/series printers shared by the benchmark binaries.
 *
 * Every bench regenerates one of the paper's tables or figures; these
 * helpers print aligned text tables and CSV blocks so EXPERIMENTS.md
 * can quote the output verbatim.
 */
#ifndef DFX_PERF_REPORT_HPP
#define DFX_PERF_REPORT_HPP

#include <string>
#include <vector>

namespace dfx {

/** Simple aligned-column text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Adds one row (must match the header count). */
    void addRow(std::vector<std::string> cells);

    /** Renders with aligned columns. */
    std::string render() const;

    /** Renders as CSV. */
    std::string csv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with the given precision. */
std::string fmt(double value, int precision = 2);

/** Formats "[in:out]" workload labels. */
std::string workloadLabel(size_t n_in, size_t n_out);

/** Prints a bench section header to stdout. */
void printHeader(const std::string &title, const std::string &paper_ref);

}  // namespace dfx

#endif  // DFX_PERF_REPORT_HPP
