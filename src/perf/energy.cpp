/**
 * @file
 * Energy model implementation.
 */
#include "perf/energy.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dfx {

double
EnergyModel::dfxPowerWatts(size_t n_fpgas) const
{
    DFX_ASSERT(n_fpgas >= 1, "appliance needs devices");
    return params_.fpgaWatts * static_cast<double>(n_fpgas);
}

double
EnergyModel::gpuPowerWatts(size_t n_gpus, double utilization) const
{
    DFX_ASSERT(n_gpus >= 1, "appliance needs devices");
    double u = std::clamp(utilization, 0.0, 1.0);
    double per_gpu = params_.gpuIdleWatts +
                     u * (params_.gpuPeakWatts - params_.gpuIdleWatts);
    return per_gpu * static_cast<double>(n_gpus);
}

}  // namespace dfx
