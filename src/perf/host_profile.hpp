/**
 * @file
 * Host-side wall-time breakdown of a decode step.
 *
 * The simulator models *device* time analytically; this profile
 * measures where the *host* spends real time per step — program
 * generation (fresh codegen), patching (cache path), binary
 * encode/decode round-trips, and functional/timing execution — plus
 * the program-cache hit rate. `bench_sim_speed` reports it so the
 * compile-once/patch-per-token win is measured, not guessed.
 */
#ifndef DFX_PERF_HOST_PROFILE_HPP
#define DFX_PERF_HOST_PROFILE_HPP

#include <cstdint>
#include <string>

namespace dfx {
namespace perf {

/** Accumulated host wall time by pipeline stage, in seconds. */
struct HostStepProfile
{
    double codegenSeconds = 0;  ///< fresh template/phase emission
    double patchSeconds = 0;    ///< patch-table application
    double encodeSeconds = 0;   ///< binary encode/patch/decode
    double executeSeconds = 0;  ///< functional + timing execution
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t steps = 0;  ///< decode steps accumulated

    double totalSeconds() const
    {
        return codegenSeconds + patchSeconds + encodeSeconds +
               executeSeconds;
    }
    /** Share of host time spent producing programs (codegen+patch). */
    double codegenShare() const
    {
        const double t = totalSeconds();
        return t > 0 ? (codegenSeconds + patchSeconds) / t : 0;
    }
    double cacheHitRate() const
    {
        const uint64_t n = cacheHits + cacheMisses;
        return n > 0 ? static_cast<double>(cacheHits) / n : 0;
    }

    HostStepProfile &operator+=(const HostStepProfile &o);
};

/** One-line human-readable rendering (for bench/tool stderr). */
std::string renderHostProfile(const HostStepProfile &p);

}  // namespace perf
}  // namespace dfx

#endif  // DFX_PERF_HOST_PROFILE_HPP
