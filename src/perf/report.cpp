/**
 * @file
 * Report helpers implementation.
 */
#include "perf/report.hpp"

#include <cstdio>
#include <sstream>

#include "common/logging.hpp"

namespace dfx {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    DFX_ASSERT(cells.size() == headers_.size(),
               "row has %zu cells, table has %zu columns", cells.size(),
               headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c ? "  " : "");
            os << cells[c];
            os << std::string(width[c] - cells[c].size(), ' ');
        }
        os << '\n';
    };
    emit(headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            os << (c ? "," : "") << cells[c];
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
workloadLabel(size_t n_in, size_t n_out)
{
    return "[" + std::to_string(n_in) + ":" + std::to_string(n_out) + "]";
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================\n\n");
}

}  // namespace dfx
