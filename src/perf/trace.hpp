/**
 * @file
 * Timeline profiler: Chrome trace_event JSON of host-side work.
 *
 * `perf::HostStepProfile` answers "how much time per pipeline stage";
 * this profiler answers "when, on which core, doing what" — scoped
 * begin/end events per core/unit/phase (codegen, patch, encode, MPU,
 * VPU, DMA, ring-sync) written as a Chrome `trace_event` JSON array
 * that loads directly in Perfetto (https://ui.perfetto.dev) or
 * chrome://tracing. It exists to aim optimization work at measured
 * shares instead of guesses (this is how the SIMD MAC-tree work was
 * targeted).
 *
 * Enabling:
 *  - `DFX_TRACE=<file>` in the environment traces the whole process
 *    and flushes at exit;
 *  - or call `traceStart(path)` / `traceStop()` around a region of
 *    interest (bench harnesses, tests).
 *
 * Cost model: when tracing is off, every `DFX_TRACE_SCOPE` is one
 * relaxed atomic load and a predictable branch — nothing else; build
 * with `-DDFX_TRACE=OFF` (which defines `DFX_TRACE_DISABLED`) to
 * compile even that out. When tracing is on, events go to unbounded
 * thread-local buffers owned by a process-lifetime registry, so the
 * hot path never takes a lock; `traceStop` (or process exit) merges
 * and writes the JSON. Start/stop are not synchronized against
 * concurrently-running scopes — flush between steps, not inside one
 * (the appliance joins its worker pool at every phase boundary, so
 * any inter-step point is quiescent).
 */
#ifndef DFX_PERF_TRACE_HPP
#define DFX_PERF_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dfx {
namespace perf {

/** Synthetic "thread" id for host-side (non-core) pipeline events. */
inline constexpr uint32_t kTraceHostTid = 255;

namespace trace_detail {

extern std::atomic<bool> g_on;

/** Monotonic nanoseconds (steady clock). */
uint64_t nowNs();

/** Appends one complete event to the calling thread's buffer. */
void record(const char *name, const char *cat, uint32_t tid, uint64_t t0,
            uint64_t t1);

}  // namespace trace_detail

/** True while a trace is being collected. */
inline bool
traceEnabled()
{
    return trace_detail::g_on.load(std::memory_order_relaxed);
}

/**
 * Starts collecting into `path` (overwritten on flush). Clears any
 * events buffered by a previous collection.
 */
void traceStart(const std::string &path);

/**
 * Stops collecting, merges all thread buffers and writes the JSON.
 * Returns the number of events written (0 when tracing was off).
 */
size_t traceStop();

/** Aggregate wall seconds and event count per event name. */
struct TraceTotal
{
    std::string name;
    std::string category;
    double seconds = 0;
    uint64_t count = 0;
};

/**
 * Sums currently-buffered events by name (for in-process reporting,
 * e.g. bench_sim_speed quoting the measured MPU share). Callable
 * while tracing is on, at a quiescent point.
 */
std::vector<TraceTotal> traceTotals();

/**
 * RAII scope emitting one complete ("ph":"X") event. `name` and
 * `cat` must be string literals (the buffer stores the pointers).
 * `tid` is the lane the event renders on: a core id, or
 * kTraceHostTid for host pipeline work.
 */
class TraceScope
{
  public:
    TraceScope(const char *name, const char *cat, uint32_t tid)
    {
        if (traceEnabled()) {
            name_ = name;
            cat_ = cat;
            tid_ = tid;
            t0_ = trace_detail::nowNs();
        }
    }

    ~TraceScope()
    {
        if (name_ != nullptr)
            trace_detail::record(name_, cat_, tid_, t0_,
                                 trace_detail::nowNs());
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    const char *name_ = nullptr;
    const char *cat_ = nullptr;
    uint32_t tid_ = 0;
    uint64_t t0_ = 0;
};

}  // namespace perf
}  // namespace dfx

#ifndef DFX_TRACE_DISABLED
#define DFX_TRACE_CONCAT2(a, b) a##b
#define DFX_TRACE_CONCAT(a, b) DFX_TRACE_CONCAT2(a, b)
/** Scoped timeline event; compiles to nothing under DFX_TRACE=OFF. */
#define DFX_TRACE_SCOPE(name, cat, tid)                 \
    ::dfx::perf::TraceScope DFX_TRACE_CONCAT(           \
        dfx_trace_scope_, __LINE__)(name, cat, tid)
#else
#define DFX_TRACE_SCOPE(name, cat, tid) \
    do {                                \
    } while (0)
#endif

#endif  // DFX_PERF_TRACE_HPP
