/**
 * @file
 * FPGA resource model (paper §V-C, §VI, Figs. 8b and 13).
 *
 * Estimates LUT/FF/BRAM/URAM/DSP per module as a function of the
 * tiling parameters (d, l). DSP counts follow the paper's explicit
 * formulas: the MFU maps each FP16 multiplier to 1 DSP and each adder
 * to 2, giving 3*(d*l) DSPs (d*l multipliers, 2*(d-1)*l adder trees,
 * 2*l scalar adders), plus the SFU_M's lane hardware; the VPU uses
 * one DSP per ALU lane per op plus two for exp and the SFU_V tree.
 *
 * LUT/FF/BRAM follow linear models in (d*l) (datapath) and l (per-
 * lane accumulators/control — the reason d=64/l=16 is the cheapest
 * equal-throughput point, §V-B): coefficients anchored to the
 * published Fig. 13 utilization at (64, 16).
 */
#ifndef DFX_PERF_RESOURCE_HPP
#define DFX_PERF_RESOURCE_HPP

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace dfx {

/** One module's resource usage. */
struct ResourceUsage
{
    std::string module;
    double lut = 0;
    double ff = 0;
    double bram = 0;   ///< BRAM36 blocks
    double uram = 0;
    double dsp = 0;

    ResourceUsage &operator+=(const ResourceUsage &o);
};

/** Alveo U280 (xcu280) device totals. */
struct U280Device
{
    static constexpr double kLut = 1303680;
    static constexpr double kFf = 2607360;
    static constexpr double kBram = 2016;
    static constexpr double kUram = 960;
    static constexpr double kDsp = 9024;
};

/** Resource estimator parameterized by the MPU tiling. */
class ResourceModel
{
  public:
    ResourceModel(size_t d, size_t l);

    /** Per-module usage: RegFile, MPU, VPU, DMA, Router, Interconnect. */
    std::vector<ResourceUsage> modules() const;

    /** Sum over modules. */
    ResourceUsage total() const;

    /** DSPs in the matrix processing unit (paper: 3136 at (64,16)). */
    double mpuDsp() const;

    /** Utilization fraction of the device for a usage record. */
    static double lutPct(const ResourceUsage &u);
    static double ffPct(const ResourceUsage &u);
    static double bramPct(const ResourceUsage &u);
    static double uramPct(const ResourceUsage &u);
    static double dspPct(const ResourceUsage &u);

    /** Whether the configuration fits the U280 (all resources < 90%). */
    bool fits() const;

  private:
    size_t d_;
    size_t l_;
};

}  // namespace dfx

#endif  // DFX_PERF_RESOURCE_HPP
