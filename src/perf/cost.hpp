/**
 * @file
 * Appliance cost model (paper Table II).
 *
 * Retail prices as cited by the paper (refs [48]-[50]): $11,458 per
 * V100 and $7,795 per U280; accelerator cost only, as in the paper's
 * comparison. Performance is tokens/second on the 1.5B model at a
 * 64:64 input:output ratio (the chatbot-representative workload).
 */
#ifndef DFX_PERF_COST_HPP
#define DFX_PERF_COST_HPP

#include <cstddef>
#include <string>

namespace dfx {

/** Unit prices (USD) from the paper's citations. */
struct CostParams
{
    double gpuUnitCost = 11458.0;   ///< NVIDIA Tesla V100 32GB
    double fpgaUnitCost = 7795.0;   ///< Xilinx Alveo U280
};

/** One appliance's cost/performance summary row. */
struct CostRow
{
    std::string name;
    size_t devices = 0;
    double unitCost = 0.0;
    double tokensPerSecond = 0.0;

    double totalCost() const { return unitCost * devices; }

    /** tokens/sec per million dollars (the paper's metric). */
    double
    perfPerMillionDollars() const
    {
        return tokensPerSecond / (totalCost() / 1e6);
    }
};

/** Builds Table II rows from measured throughputs. */
class CostModel
{
  public:
    explicit CostModel(const CostParams &params = CostParams())
        : params_(params)
    {
    }

    CostRow gpuAppliance(size_t n_gpus, double tokens_per_sec) const;
    CostRow dfxAppliance(size_t n_fpgas, double tokens_per_sec) const;

    const CostParams &params() const { return params_; }

  private:
    CostParams params_;
};

}  // namespace dfx

#endif  // DFX_PERF_COST_HPP
