/**
 * @file
 * Cost model implementation.
 */
#include "perf/cost.hpp"

namespace dfx {

CostRow
CostModel::gpuAppliance(size_t n_gpus, double tokens_per_sec) const
{
    return CostRow{"GPU Appliance", n_gpus, params_.gpuUnitCost,
                   tokens_per_sec};
}

CostRow
CostModel::dfxAppliance(size_t n_fpgas, double tokens_per_sec) const
{
    return CostRow{"DFX", n_fpgas, params_.fpgaUnitCost, tokens_per_sec};
}

}  // namespace dfx
