/**
 * @file
 * Power and energy models (paper §VII-B "Throughput and Energy
 * Efficiency").
 *
 * Measured operating points from the paper:
 *  - each U280 in DFX draws ~45 W (xbutil), regardless of load — the
 *    FPGA runs a fixed 200 MHz pipeline;
 *  - each V100 draws ~47.5 W average during text generation
 *    (nvidia-smi), far below its 300 W TDP because the generation
 *    stage leaves the device idle most of the time. Utilization-
 *    dependent: idle floor plus a compute-proportional term.
 *
 * Energy efficiency is tokens/second/watt, reported normalized to the
 * GPU appliance as in Fig. 16.
 */
#ifndef DFX_PERF_ENERGY_HPP
#define DFX_PERF_ENERGY_HPP

#include <cstddef>

namespace dfx {

/** Device power operating points. */
struct PowerParams
{
    double fpgaWatts = 45.0;        ///< U280 measured under load
    double gpuIdleWatts = 39.0;     ///< V100 idle floor
    double gpuPeakWatts = 300.0;    ///< V100 TDP
    /** Average measured during generation (low utilization). */
    double gpuMeasuredAvgWatts = 47.5;
};

/** Appliance-level energy accounting. */
class EnergyModel
{
  public:
    explicit EnergyModel(const PowerParams &params = PowerParams())
        : params_(params)
    {
    }

    /** DFX appliance power: nDevices x 45 W. */
    double dfxPowerWatts(size_t n_fpgas) const;

    /**
     * GPU appliance power given achieved/peak FLOPS utilization
     * (clamped); at text-generation utilizations this lands on the
     * measured ~47.5 W per device.
     */
    double gpuPowerWatts(size_t n_gpus, double utilization) const;

    /** Joules for a request of `seconds` at `watts`. */
    static double
    energyJoules(double watts, double seconds)
    {
        return watts * seconds;
    }

    /** Efficiency metric: tokens per second per watt. */
    static double
    tokensPerSecPerWatt(double tokens_per_sec, double watts)
    {
        return tokens_per_sec / watts;
    }

    const PowerParams &params() const { return params_; }

  private:
    PowerParams params_;
};

}  // namespace dfx

#endif  // DFX_PERF_ENERGY_HPP
