/**
 * @file
 * FPGA resource model implementation.
 *
 * Anchors (paper Fig. 13, d=64, l=16):
 *   RegFile: 6K LUT, 110K FF, 88.5 BRAM
 *   MPU:     170K LUT, 381K FF, 56 BRAM, 3136 DSP
 *   VPU:     36K LUT, 55K FF, 1.5 BRAM, 390 DSP
 *   DMA:     38K LUT, 97K FF, 134.5 BRAM, 52 URAM
 *   Router:  3K LUT, 13K FF, 24 BRAM
 *   Interconnect: 180K LUT, 303K FF, ~204 BRAM, 4 DSP
 */
#include "perf/resource.hpp"

#include "common/logging.hpp"

namespace dfx {
namespace {

constexpr double kVectorWidth = 64.0;

}  // namespace

ResourceUsage &
ResourceUsage::operator+=(const ResourceUsage &o)
{
    lut += o.lut;
    ff += o.ff;
    bram += o.bram;
    uram += o.uram;
    dsp += o.dsp;
    return *this;
}

ResourceModel::ResourceModel(size_t d, size_t l) : d_(d), l_(l)
{
    DFX_ASSERT(d >= 2 && l >= 1, "bad tiling (%zu, %zu)", d, l);
}

double
ResourceModel::mpuDsp() const
{
    const double d = static_cast<double>(d_);
    const double l = static_cast<double>(l_);
    // d*l multipliers (1 DSP) + (d-1)*l tree adders (2 DSPs) + l
    // scalar adders (2 DSPs) => 3*d*l exactly; SFU_M adds one
    // multiplier per lane stage for scaling plus the GELU
    // interpolation datapath (64 at l=16).
    return 3.0 * d * l + 4.0 * l;
}

std::vector<ResourceUsage>
ResourceModel::modules() const
{
    const double d = static_cast<double>(d_);
    const double l = static_cast<double>(l_);
    const double macs = d * l;
    std::vector<ResourceUsage> out;

    // Register file: width is fixed (64 lanes); scales mildly with l
    // for the operand collector ports.
    out.push_back({"Register File", 5000.0 + 60.0 * l,
                   100000.0 + 600.0 * l, 80.0 + 0.5 * l, 0.0, 0.0});

    // MPU: datapath scales with d*l; per-lane accumulators, operators
    // in the special function unit and control logic scale with l —
    // "with larger l ... the resources in the matrix processing unit
    // increase linearly" (§V-B).
    out.push_back({"MPU", 127.0 * macs + 2500.0 * l,
                   184.6 * macs + 12000.0 * l, 24.0 + 2.0 * l, 0.0,
                   mpuDsp()});

    // VPU: fixed 64-wide ALU; independent of the MPU tiling.
    out.push_back({"VPU", 36000.0, 55000.0, 1.5, 0.0,
                   5.0 * kVectorWidth + (kVectorWidth - 1.0) + 7.0});

    // DMA: channel interfaces fixed (32 HBM channels); tile buffers
    // scale with the tile footprint.
    out.push_back({"DMA", 36000.0 + 2000.0 * (macs / 1024.0),
                   93000.0 + 4000.0 * (macs / 1024.0),
                   120.0 + 14.5 * (macs / 1024.0),
                   52.0, 0.0});

    // Router: fixed (two QSFP ports, 64x16-bit flits).
    out.push_back({"Router", 3000.0, 13000.0, 24.0, 0.0, 0.0});

    // Interconnect (AXI, HBM switch): dominated by the 32x512-bit
    // crossbar, mildly dependent on lane fan-out.
    out.push_back({"Interconnect", 175000.0 + 300.0 * l,
                   298000.0 + 300.0 * l, 200.0 + 0.25 * l, 0.0, 4.0});

    return out;
}

ResourceUsage
ResourceModel::total() const
{
    ResourceUsage sum;
    sum.module = "Total";
    for (const auto &m : modules())
        sum += m;
    return sum;
}

double
ResourceModel::lutPct(const ResourceUsage &u)
{
    return 100.0 * u.lut / U280Device::kLut;
}

double
ResourceModel::ffPct(const ResourceUsage &u)
{
    return 100.0 * u.ff / U280Device::kFf;
}

double
ResourceModel::bramPct(const ResourceUsage &u)
{
    return 100.0 * u.bram / U280Device::kBram;
}

double
ResourceModel::uramPct(const ResourceUsage &u)
{
    return 100.0 * u.uram / U280Device::kUram;
}

double
ResourceModel::dspPct(const ResourceUsage &u)
{
    return 100.0 * u.dsp / U280Device::kDsp;
}

bool
ResourceModel::fits() const
{
    ResourceUsage t = total();
    return lutPct(t) < 90.0 && ffPct(t) < 90.0 && bramPct(t) < 90.0 &&
           uramPct(t) < 90.0 && dspPct(t) < 90.0;
}

}  // namespace dfx
