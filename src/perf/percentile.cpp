#include "perf/percentile.hpp"

#include <algorithm>

namespace dfx::perf {

double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    q = std::min(1.0, std::max(0.0, q));
    const double pos = q * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    if (lo + 1 >= values.size())
        return values.back();
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + frac * (values[lo + 1] - values[lo]);
}

}  // namespace dfx::perf
