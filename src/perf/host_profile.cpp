/**
 * @file
 * Host step-profile rendering.
 */
#include "perf/host_profile.hpp"

#include <cstdio>

namespace dfx {
namespace perf {

HostStepProfile &
HostStepProfile::operator+=(const HostStepProfile &o)
{
    codegenSeconds += o.codegenSeconds;
    patchSeconds += o.patchSeconds;
    encodeSeconds += o.encodeSeconds;
    executeSeconds += o.executeSeconds;
    cacheHits += o.cacheHits;
    cacheMisses += o.cacheMisses;
    steps += o.steps;
    return *this;
}

std::string
renderHostProfile(const HostStepProfile &p)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "host/step: codegen %.1f%% patch %.1f%% encode %.1f%% "
        "execute %.1f%% | cache hit %.1f%% (%llu/%llu)",
        100.0 * (p.totalSeconds() > 0
                     ? p.codegenSeconds / p.totalSeconds()
                     : 0),
        100.0 * (p.totalSeconds() > 0
                     ? p.patchSeconds / p.totalSeconds()
                     : 0),
        100.0 * (p.totalSeconds() > 0
                     ? p.encodeSeconds / p.totalSeconds()
                     : 0),
        100.0 * (p.totalSeconds() > 0
                     ? p.executeSeconds / p.totalSeconds()
                     : 0),
        100.0 * p.cacheHitRate(),
        static_cast<unsigned long long>(p.cacheHits),
        static_cast<unsigned long long>(p.cacheHits + p.cacheMisses));
    return buf;
}

}  // namespace perf
}  // namespace dfx
