/**
 * @file
 * Per-FPGA memory layout for a partitioned GPT-2 model.
 *
 * Implements the paper's memory mapping (§IV-B): weight matrices —
 * read in bulk every token — live in HBM; tokens, biases, LN
 * parameters and the embedding tables live in DDR. The Key cache and
 * the transposed Value cache (§V-B "Transpose Scheme") also live in
 * HBM. The LM-head weight (WTE transposed) is kept as an HBM copy so
 * the per-token logit matmul streams at HBM bandwidth; the DDR WTE
 * copy serves only the per-token embedding row lookups.
 *
 * Every HBM region also carries a pseudo-channel set: weight shards
 * are address-interleaved across all channels (streamed at aggregate
 * bandwidth), while each head's K and V^T caches are pinned to
 * `kvStreamChannels` channels, assigned round-robin over
 * (context, head, K-vs-V^T) so concurrently resident requests land
 * on disjoint sets until the channels wrap. The per-channel timing
 * model reads these sets off the generated instructions.
 *
 * Every core in a cluster runs the same allocation sequence against
 * its own devices, so shard addresses are identical across cores —
 * which is what lets all cores execute the *same* instruction stream
 * (the homogeneous-cluster property of §IV-B).
 */
#ifndef DFX_MEMORY_LAYOUT_HPP
#define DFX_MEMORY_LAYOUT_HPP

#include <memory>
#include <vector>

#include "memory/hbm_channels.hpp"
#include "memory/offchip.hpp"
#include "model/config.hpp"

namespace dfx {

class WeightStore;
class KvPager;

/** How the model is split across the cluster (paper Fig. 6). */
struct ClusterGeometry
{
    size_t nCores = 1;

    /** Heads per core (head-wise split of Q/K/V). */
    size_t localHeads(const GptConfig &c) const { return c.heads / nCores; }
    /** Output columns per core for emb-wide FC layers (column split). */
    size_t embShard(const GptConfig &c) const
    {
        return c.embedding / nCores;
    }
    /** Output columns per core for the FFN hidden layer. */
    size_t ffnShard(const GptConfig &c) const
    {
        return c.ffnHidden() / nCores;
    }
    /**
     * Vocabulary slice per core for the LM head, padded up to a
     * multiple of the MPU lane count so tiles stay aligned.
     */
    size_t vocabShard(const GptConfig &c, size_t lanes) const
    {
        size_t per_core = (c.vocabSize + nCores - 1) / nCores;
        return (per_core + lanes - 1) / lanes * lanes;
    }

    /** Checks divisibility constraints; fatal if the model can't split. */
    void validateFor(const GptConfig &c) const;
};

/** HBM/DDR byte addresses of one decoder layer's shard. */
struct LayerAddrs
{
    // HBM: weight shards, row-major (rows = input dim, cols = shard).
    uint64_t wq, wk, wv, wproj, wfc1, wfc2;
    // HBM: KV cache for the core's local heads.
    uint64_t keyBase;  ///< [localHead][seq][headDim]
    uint64_t vtBase;   ///< [localHead][headDim][maxSeq] (transposed)
    // DDR: bias shards and LN parameters (full vectors).
    uint64_t bq, bk, bv, bproj, bfc1, bfc2;
    uint64_t ln1Gamma, ln1Beta, ln2Gamma, ln2Beta;
};

/** Complete address map for one core. */
struct MemoryLayout
{
    GptConfig config;
    ClusterGeometry geometry;
    size_t lanes = 16;        ///< MPU lane count (for vocab padding)
    size_t kvContexts = 1;    ///< resident KV cache contexts (requests)
    size_t hbmChannels = static_cast<size_t>(HbmSpec::kChannels);
    size_t kvStreamChannels = 1;  ///< channels one K / V^T region spans

    // Paged-KV mode (pager != nullptr): keyBase/vtBase become virtual
    // windows whose accesses indirect through the pager's block
    // tables, and the physical blocks live in per-layer pools below.
    // The virtual-address formulas — and therefore every generated
    // instruction — are identical to the unpaged layout.
    KvPager *pager = nullptr;     ///< non-owning; outlives the devices
    size_t kvBlockTokens = 0;     ///< tokens per block (0 = unpaged)
    std::vector<uint64_t> keyPoolBase;  ///< per-layer K block pool
    std::vector<uint64_t> vtPoolBase;   ///< per-layer V^T block pool

    bool paged() const { return pager != nullptr; }
    /** Block-table entries each context owns (paged mode). */
    size_t kvBlocksPerContext() const
    {
        return kvBlockTokens == 0 ? 0 : config.maxSeq / kvBlockTokens;
    }

    std::vector<LayerAddrs> layers;
    uint64_t lmHeadW = 0;     ///< HBM: WTE^T shard, emb x vocabShard
    uint64_t wte = 0;         ///< DDR: full WTE (embedding lookups)
    uint64_t wpe = 0;         ///< DDR: full WPE
    uint64_t lnfGamma = 0;    ///< DDR
    uint64_t lnfBeta = 0;     ///< DDR

    // KV addressing: each context owns a full per-layer K/V^T region
    // (contexts are stacked within a layer's K and V^T allocations),
    // so concurrent requests never alias each other's cache.
    /** Byte address of K row `pos` for local head `lh` in `layer`. */
    uint64_t keyRowAddr(size_t layer, size_t lh, size_t pos,
                        size_t ctx = 0) const;
    /** Byte address of V^T element (j, t) for local head `lh`. */
    uint64_t vtAddr(size_t layer, size_t lh, size_t j, size_t t,
                    size_t ctx = 0) const;
    /** Byte address of the K region for one local head. */
    uint64_t keyHeadBase(size_t layer, size_t lh, size_t ctx = 0) const;
    /** Byte address of the V^T region for one local head. */
    uint64_t vtHeadBase(size_t layer, size_t lh, size_t ctx = 0) const;

    // Channel sets (identical across layers: a channel holds a region
    // of every layer, and layers stream sequentially within a step).
    /** Pseudo-channel set of head `lh`'s K cache in context `ctx`. */
    ChannelMask keyChannelMask(size_t lh, size_t ctx = 0) const;
    /** Pseudo-channel set of head `lh`'s V^T cache in context `ctx`. */
    ChannelMask vtChannelMask(size_t lh, size_t ctx = 0) const;
    /** Weight shards stripe across all channels (mask 0 = all). */
    static constexpr ChannelMask weightChannelMask() { return 0; }

    /** Total HBM bytes this layout allocates (for capacity checks). */
    uint64_t hbmBytes() const { return hbmBytes_; }
    uint64_t ddrBytes() const { return ddrBytes_; }

    /**
     * FNV-1a digest of everything that determines generated
     * instructions: model hyperparameters, cluster geometry, lane
     * count, context/channel provisioning, paging parameters and every
     * allocated base address. Two layouts with equal hashes produce
     * bit-identical programs from the same (core, phase, inputs), so
     * this is the program-cache key component that detects config or
     * layout changes.
     */
    uint64_t addressingHash() const;

    /**
     * Runs the allocation sequence against a core's HBM and DDR.
     * The same sequence yields the same addresses on every core.
     * `kv_contexts` independent KV cache regions are allocated so up
     * to that many requests can be resident concurrently.
     * `hbm_channels`/`kv_stream_channels` shape the channel sets the
     * K and V^T regions are pinned to (see the file comment).
     *
     * With a `pager`, the KV cache is paged: K/V^T become virtual
     * windows over per-layer block pools sized by the pager's
     * physBlocks, `kv_contexts` counts *virtual* contexts (block
     * tables, no HBM charge), and this core's HBM is registered as a
     * pager mirror. The pager must outlive `hbm`.
     */
    static MemoryLayout build(
        const GptConfig &config, const ClusterGeometry &geometry,
        size_t lanes, OffchipMemory &hbm, OffchipMemory &ddr,
        size_t kv_contexts = 1,
        size_t hbm_channels = static_cast<size_t>(HbmSpec::kChannels),
        size_t kv_stream_channels = 1, KvPager *pager = nullptr);

    /**
     * Binds every weight region of this layout — HBM weight shards and
     * the LM head, DDR biases, LN parameters and embedding tables — to
     * core `core_id`'s lazily materialized slice of the shared weight
     * image (`OffchipMemory::bindRegion`). KV cache regions stay
     * private. The store must match this layout's config, geometry and
     * lane count; the bound regions keep the store alive.
     */
    void bindWeightStore(const std::shared_ptr<WeightStore> &store,
                         OffchipMemory &hbm, OffchipMemory &ddr,
                         size_t core_id) const;

  private:
    /** Channel set of KV stream `index` in the round-robin order
     *  (context, head, K-vs-V^T). */
    ChannelMask kvStreamMask(size_t index) const;

    uint64_t hbmBytes_ = 0;
    uint64_t ddrBytes_ = 0;
};

}  // namespace dfx

#endif  // DFX_MEMORY_LAYOUT_HPP
