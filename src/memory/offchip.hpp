/**
 * @file
 * Off-chip memory models: HBM and DDR (paper §IV-B, §V-B).
 *
 * Each U280 FPGA carries 8 GB of HBM (32 channels, 460 GB/s peak) and
 * 32 GB of DDR4 (38 GB/s). Weights, Key and Value live in HBM;
 * tokens, biases, embedding tables and LN parameters live in DDR.
 *
 * The model is split in two concerns:
 *  - functional backing store (FP16 words), present only when the
 *    simulation runs in functional mode — full-size timing runs of
 *    the 1.5B model do not allocate gigabytes;
 *  - timing: peak bandwidth derated by a measured-efficiency factor,
 *    exposed as bytes-per-core-cycle for the DMA cost model.
 *
 * The functional plane is segmented: every `alloc` names a region, and
 * a region's data lives in exactly one of two places —
 *  - a private, lazily allocated zero-initialized block (KV caches,
 *    eagerly loaded weights): pages become resident on first touch;
 *  - the appliance's shared weight image, via `bindRegion`: the region
 *    aliases immutable bytes owned by a `WeightStore`, so every core
 *    and cluster reads the same physical copy. A write to a bound
 *    region copies it out first (copy-on-write) — the shared image is
 *    never modified through a device.
 */
#ifndef DFX_MEMORY_OFFCHIP_HPP
#define DFX_MEMORY_OFFCHIP_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/fp16.hpp"
#include "common/units.hpp"

namespace dfx {

/** One off-chip memory device with a bump allocator. */
class OffchipMemory
{
  public:
    /**
     * Virtual (paged) regions live far above any physical allocation;
     * addresses at or beyond this base are translated per access.
     */
    static constexpr uint64_t kVirtualBase = uint64_t{1} << 40;

    /**
     * One maximal contiguous physical run backing a virtual offset.
     * `physAddr` is the byte address of the first half; `halves` is
     * how many consecutive halves the run covers before the next
     * translation boundary. An unmapped run (`mapped == false`) reads
     * as zero and is fatal to write.
     */
    struct PagedRun
    {
        uint64_t physAddr = 0;
        size_t halves = 0;
        bool mapped = true;
    };

    /**
     * Maps a half offset inside a virtual region to its physical run.
     * `for_write` distinguishes stores (which must hit mapped, private
     * blocks) from loads (which may fall in never-written space).
     */
    using PageTranslator =
        std::function<PagedRun(uint64_t half_offset, bool for_write)>;

    /**
     * @param name device name for diagnostics ("hbm0", "ddr0")
     * @param capacity_bytes device capacity (allocation limit)
     * @param peak_bw_bytes_per_sec theoretical peak bandwidth
     * @param efficiency sustained/peak bandwidth derating
     * @param functional allocate a backing store for real data
     */
    OffchipMemory(std::string name, uint64_t capacity_bytes,
                  double peak_bw_bytes_per_sec, double efficiency,
                  bool functional);

    OffchipMemory(OffchipMemory &&) = default;
    OffchipMemory &operator=(OffchipMemory &&) = default;

    /**
     * Reserves `bytes` (16-byte aligned); returns the byte address.
     * On capacity overflow the failure report lists the largest
     * allocation tags so an oversized model names its culprit regions.
     */
    uint64_t alloc(uint64_t bytes, const char *tag);

    /**
     * Aliases the allocated region at `addr` (exactly `bytes` long, as
     * allocated) onto shared immutable data. `provider` is resolved on
     * the region's first access — a lazily materialized weight shard —
     * and the resolved pointer must stay valid for this device's
     * lifetime and cover `bytes`. Functional mode only.
     */
    void bindRegion(uint64_t addr, uint64_t bytes,
                    std::function<const Half *()> provider);

    /**
     * Reserves a virtual window of `bytes` whose accesses indirect
     * through `translate`. Virtual windows carry no capacity charge —
     * their storage is whatever physical regions the translator maps
     * runs onto (the paged-KV block pools). Returns the window's base
     * address, always >= kVirtualBase.
     */
    uint64_t allocVirtual(uint64_t bytes, const char *tag,
                          PageTranslator translate);

    /** True when `addr` falls in translated (paged) address space. */
    bool isPaged(uint64_t addr) const { return addr >= kVirtualBase; }

    /** Bytes allocated so far. */
    uint64_t allocated() const { return next_; }

    uint64_t capacity() const { return capacity_; }

    bool functional() const { return functional_; }

    /** Effective (derated) bandwidth in bytes/second. */
    double effectiveBandwidth() const { return peakBw_ * efficiency_; }

    /** Peak bandwidth in bytes/second. */
    double peakBandwidth() const { return peakBw_; }

    /** Seconds to stream `bytes` at effective bandwidth. */
    double streamSeconds(uint64_t bytes) const;

    /** Core cycles (at `freq_hz`) to stream `bytes`, rounded up. */
    Cycles streamCycles(uint64_t bytes, double freq_hz) const;

    // --- functional data plane (FP16 word granularity) ---------------
    /** Writes n halves at byte address `addr` (must be 2-aligned). */
    void writeHalf(uint64_t addr, const Half *src, size_t n);
    /** Reads n halves from byte address `addr`. */
    void readHalf(uint64_t addr, Half *dst, size_t n);
    /** Reads one half. */
    Half loadHalf(uint64_t addr);
    /** Writes one half. */
    void storeHalf(uint64_t addr, Half value);

    // --- bulk span access (the hot-loop API) --------------------------
    // Spans expose a region's storage directly so per-element loads in
    // the MPU/VPU inner loops cost a pointer index instead of a
    // function call with assertions. A span must lie inside a single
    // allocated region (every ISA operand does); the pointer stays
    // valid until the region is written through storeSpan/writeHalf
    // (copy-on-write may move a bound region to private storage).
    /** Read-only view of n halves starting at byte address `addr`. */
    const Half *loadSpan(uint64_t addr, size_t n);
    /** Mutable view of n halves starting at byte address `addr`. */
    Half *storeSpan(uint64_t addr, size_t n);

    const std::string &name() const { return name_; }

  private:
    struct FreeDeleter
    {
        void operator()(Half *p) const { std::free(p); }
    };

    /** One allocated region and where its bytes live. */
    struct Segment
    {
        uint64_t base = 0;
        uint64_t bytes = 0;
        const char *tag = "";
        /** Private storage, calloc'ed on first touch (or by COW). */
        std::unique_ptr<Half[], FreeDeleter> local;
        /** Shared-image resolver; null for private regions. */
        std::function<const Half *()> provider;
        /** Cached resolved provider pointer. */
        const Half *shared = nullptr;
    };

    /** One virtual window and its address translator. */
    struct VirtualSegment
    {
        uint64_t base = 0;
        uint64_t bytes = 0;
        const char *tag = "";
        PageTranslator translate;
    };

    /** Segment containing [addr, addr + bytes); fatal if none. */
    Segment &find(uint64_t addr, uint64_t bytes);
    Segment *findOrNull(uint64_t addr);
    /** Virtual window containing [addr, addr + bytes); fatal if none. */
    VirtualSegment &findVirtual(uint64_t addr, uint64_t bytes);
    void readPaged(uint64_t addr, Half *dst, size_t n);
    void writePaged(uint64_t addr, const Half *src, size_t n);
    /** Read pointer to a segment's data (resolves/allocates lazily). */
    const Half *readPtr(Segment &seg);
    /** Write pointer; copies a bound segment out first (COW). */
    Half *writePtr(Segment &seg);
    void allocLocal(Segment &seg);

    std::string name_;
    uint64_t capacity_;
    double peakBw_;
    double efficiency_;
    bool functional_;
    uint64_t next_ = 0;
    std::vector<Segment> segments_;  ///< sorted by base (bump alloc)
    uint64_t virtualNext_ = kVirtualBase;
    /// Virtual windows, sorted by base; kept apart from segments_ so
    /// interleaved alloc/allocVirtual cannot break its sortedness.
    std::vector<VirtualSegment> virtualSegments_;
    /// Scratch for loadSpan over a paged window: runs are gathered
    /// here so callers still see one contiguous span. Only one span
    /// is live at a time per device (each core owns its devices and
    /// executes one instruction's operand fetch at a time).
    std::vector<Half> gather_;
};

/** HBM stack parameters for the Alveo U280. */
struct HbmSpec
{
    static constexpr uint64_t kCapacity = 8ull << 30;        // 8 GB
    static constexpr double kPeakBandwidth = 460e9;          // B/s
    static constexpr int kChannels = 32;
    static constexpr int kChannelBits = 512;  ///< per channel per cycle
};

/** DDR4 parameters for the Alveo U280 (single used channel). */
struct DdrSpec
{
    static constexpr uint64_t kCapacity = 32ull << 30;       // 32 GB
    static constexpr double kPeakBandwidth = 38e9;           // B/s
};

/** Builds the HBM device for one simulated FPGA. */
OffchipMemory makeHbm(int core_id, double efficiency, bool functional);

/** Builds the DDR device for one simulated FPGA. */
OffchipMemory makeDdr(int core_id, double efficiency, bool functional);

}  // namespace dfx

#endif  // DFX_MEMORY_OFFCHIP_HPP
