/**
 * @file
 * Off-chip memory models: HBM and DDR (paper §IV-B, §V-B).
 *
 * Each U280 FPGA carries 8 GB of HBM (32 channels, 460 GB/s peak) and
 * 32 GB of DDR4 (38 GB/s). Weights, Key and Value live in HBM;
 * tokens, biases, embedding tables and LN parameters live in DDR.
 *
 * The model is split in two concerns:
 *  - functional backing store (FP16 words), present only when the
 *    simulation runs in functional mode — full-size timing runs of
 *    the 1.5B model do not allocate gigabytes;
 *  - timing: peak bandwidth derated by a measured-efficiency factor,
 *    exposed as bytes-per-core-cycle for the DMA cost model.
 */
#ifndef DFX_MEMORY_OFFCHIP_HPP
#define DFX_MEMORY_OFFCHIP_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/fp16.hpp"
#include "common/units.hpp"

namespace dfx {

/** One off-chip memory device with a bump allocator. */
class OffchipMemory
{
  public:
    /**
     * @param name device name for diagnostics ("hbm0", "ddr0")
     * @param capacity_bytes device capacity (allocation limit)
     * @param peak_bw_bytes_per_sec theoretical peak bandwidth
     * @param efficiency sustained/peak bandwidth derating
     * @param functional allocate a backing store for real data
     */
    OffchipMemory(std::string name, uint64_t capacity_bytes,
                  double peak_bw_bytes_per_sec, double efficiency,
                  bool functional);

    /** Reserves `bytes` (16-byte aligned); returns the byte address. */
    uint64_t alloc(uint64_t bytes, const char *tag);

    /** Bytes allocated so far. */
    uint64_t allocated() const { return next_; }

    uint64_t capacity() const { return capacity_; }

    bool functional() const { return functional_; }

    /** Effective (derated) bandwidth in bytes/second. */
    double effectiveBandwidth() const { return peakBw_ * efficiency_; }

    /** Peak bandwidth in bytes/second. */
    double peakBandwidth() const { return peakBw_; }

    /** Seconds to stream `bytes` at effective bandwidth. */
    double streamSeconds(uint64_t bytes) const;

    /** Core cycles (at `freq_hz`) to stream `bytes`, rounded up. */
    Cycles streamCycles(uint64_t bytes, double freq_hz) const;

    // --- functional data plane (FP16 word granularity) ---------------
    /** Writes n halves at byte address `addr` (must be 2-aligned). */
    void writeHalf(uint64_t addr, const Half *src, size_t n);
    /** Reads n halves from byte address `addr`. */
    void readHalf(uint64_t addr, Half *dst, size_t n) const;
    /** Reads one half. */
    Half loadHalf(uint64_t addr) const;
    /** Writes one half. */
    void storeHalf(uint64_t addr, Half value);

    // --- bulk span access (the hot-loop API) --------------------------
    // Spans expose the backing store directly so per-element loads in
    // the MPU/VPU inner loops cost a pointer index instead of a
    // function call with assertions. The backing is pre-grown to the
    // allocation watermark, so a span stays valid until the next
    // alloc() (which may reallocate the store).
    /** Read-only view of n halves starting at byte address `addr`. */
    const Half *loadSpan(uint64_t addr, size_t n);
    /** Mutable view of n halves starting at byte address `addr`. */
    Half *storeSpan(uint64_t addr, size_t n);

    const std::string &name() const { return name_; }

  private:
    void ensureBacking(uint64_t addr_end);

    std::string name_;
    uint64_t capacity_;
    double peakBw_;
    double efficiency_;
    bool functional_;
    uint64_t next_ = 0;
    std::vector<Half> backing_;  ///< grows to the allocation watermark
};

/** HBM stack parameters for the Alveo U280. */
struct HbmSpec
{
    static constexpr uint64_t kCapacity = 8ull << 30;        // 8 GB
    static constexpr double kPeakBandwidth = 460e9;          // B/s
    static constexpr int kChannels = 32;
    static constexpr int kChannelBits = 512;  ///< per channel per cycle
};

/** DDR4 parameters for the Alveo U280 (single used channel). */
struct DdrSpec
{
    static constexpr uint64_t kCapacity = 32ull << 30;       // 32 GB
    static constexpr double kPeakBandwidth = 38e9;           // B/s
};

/** Builds the HBM device for one simulated FPGA. */
OffchipMemory makeHbm(int core_id, double efficiency, bool functional);

/** Builds the DDR device for one simulated FPGA. */
OffchipMemory makeDdr(int core_id, double efficiency, bool functional);

}  // namespace dfx

#endif  // DFX_MEMORY_OFFCHIP_HPP
