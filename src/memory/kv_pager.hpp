/**
 * @file
 * Paged KV-cache block pager.
 *
 * The unpaged layout gives every resident context a full maxSeq-deep
 * K/V^T region per layer, so capacity is `kvContexts` regardless of
 * how long requests actually are. The pager replaces that with a pool
 * of fixed-size token blocks (vLLM-style): each context owns a block
 * table mapping token-block index -> physical block id, blocks are
 * refcounted, and contexts whose prompts share a token prefix alias
 * the same physical blocks, forking copy-on-write on the first
 * divergent write.
 *
 * Division of labour:
 *  - codegen keeps emitting the *virtual* per-context KV addresses of
 *    the unpaged layout (instruction streams — and therefore tokens
 *    and modeled timing — are bit-identical to unpaged);
 *  - `OffchipMemory` virtual windows translate those addresses
 *    through this pager's block tables on every functional access;
 *  - the cluster drives the lifecycle: `tryOpen` at admission,
 *    `ensureWritable` before each token step (CoW fork point),
 *    `onTokenWritten` after it (prefix registration), `close` at
 *    release.
 *
 * One pager instance serves all cores of a cluster: cores hold
 * *mirrored* copies of the KV data (each core's HBM has its own block
 * pools at identical addresses), so the block table is shared and a
 * CoW fork copies the forked chunk on every mirror. All mutating
 * calls happen on the cluster's scheduler thread between phases;
 * translators only read the table from worker threads while it is
 * quiescent.
 */
#ifndef DFX_MEMORY_KV_PAGER_HPP
#define DFX_MEMORY_KV_PAGER_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "memory/offchip.hpp"

namespace dfx {

class KvPager
{
  public:
    struct Config
    {
        size_t blockTokens = 16;  ///< tokens per block (divides maxSeq)
        size_t physBlocks = 1;    ///< pool size, in blocks, per layer
        size_t maxContexts = 1;   ///< virtual contexts (block tables)
        size_t maxSeq = 0;
        size_t localHeads = 1;
        size_t headDim = 0;
        size_t layers = 1;
        bool prefixSharing = true;
        size_t maxPrefixEntries = 8;  ///< prefix-index FIFO bound
    };

    explicit KvPager(const Config &cfg);

    /**
     * Registers one core's HBM as a KV mirror. `key_pool` / `vt_pool`
     * hold the per-layer physical pool base addresses on that device;
     * a CoW fork copies the forked block's chunk on every mirror.
     * The device must outlive this pager.
     */
    void addMirror(OffchipMemory *hbm, std::vector<uint64_t> key_pool,
                   std::vector<uint64_t> vt_pool);

    /**
     * Tries to open context `ctx` for a request of `prompt` plus up to
     * `new_tokens` generated tokens. On success, maps any shared
     * prefix blocks (when `share_prefix` and the prefix index has a
     * match), reserves enough free blocks for the rest, and returns
     * true with `*shared_tokens` set to the number of leading prompt
     * tokens whose K/V is already resident (prefill may skip them).
     * Returns false — with no state change beyond possible prefix-
     * index eviction — when even after evicting unpinned index
     * entries the pool cannot cover the request.
     */
    bool tryOpen(size_t ctx, const std::vector<int32_t> &prompt,
                 size_t new_tokens, bool share_prefix,
                 size_t *shared_tokens);

    /**
     * Makes the block holding token `pos` privately writable for
     * `ctx`: allocates it if unmapped, forks it copy-on-write if
     * shared. Must run on the scheduler thread before the step's
     * phases execute.
     */
    void ensureWritable(size_t ctx, size_t pos);

    /**
     * Notes that `ctx` finished writing K/V for token `pos`. When the
     * prompt just completed, registers its blocks in the prefix index
     * so later requests with the same system prompt can alias them.
     */
    void onTokenWritten(size_t ctx, size_t pos);

    /** Releases every block `ctx` maps and its unused reservation. */
    void close(size_t ctx);

    /**
     * Physical block holding token-block `token_block` of `ctx`, or
     * -1 while unmapped. Called by the address translators (worker
     * threads) and the fatal-path bounds checks.
     */
    int32_t blockAt(size_t ctx, size_t token_block) const;

    size_t blockTokens() const { return cfg_.blockTokens; }
    size_t physBlocks() const { return cfg_.physBlocks; }
    size_t blocksPerContext() const
    {
        return cfg_.maxSeq / cfg_.blockTokens;
    }
    /** Blocks neither mapped nor held by the prefix index. */
    size_t freeBlocks() const { return freeCount_; }
    /** Blocks currently holding data (context-mapped or prefix-
     *  pinned). */
    size_t mappedBlocks() const
    {
        return cfg_.physBlocks - freeCount_;
    }
    /** High-water mark of mapped blocks (pool pressure at peak). */
    size_t peakMappedBlocks() const { return peakMapped_; }
    /** Contexts currently open. */
    size_t activeContexts() const { return activeCount_; }
    /** High-water mark of concurrently open contexts. */
    size_t peakActiveContexts() const { return peakActive_; }

    // Prefix-sharing counters (for the bench capacity section).
    size_t prefixLookups() const { return prefixLookups_; }
    size_t prefixHits() const { return prefixHits_; }
    uint64_t sharedTokensTotal() const { return sharedTokensTotal_; }
    uint64_t promptTokensTotal() const { return promptTokensTotal_; }

    /**
     * Test hook: overrides the allocator's block preference order so
     * property tests can force arbitrary physical permutations. Ids
     * not listed fall back to lowest-free-first.
     */
    void debugSetFreeOrder(std::vector<int32_t> order);

  private:
    struct Mirror
    {
        OffchipMemory *hbm = nullptr;
        std::vector<uint64_t> keyPool;  ///< per-layer pool base
        std::vector<uint64_t> vtPool;
    };

    /** One registered shared prefix: its tokens and pinned blocks. */
    struct PrefixEntry
    {
        std::vector<int32_t> tokens;
        std::vector<int32_t> blocks;  ///< refs held by this entry
    };

    int32_t allocBlock();
    void incref(int32_t block);
    void decref(int32_t block);
    /** Copies block `from`'s chunk to `to` on every mirror. */
    void copyBlock(int32_t from, int32_t to);
    /** Drops one prefix-index entry and its block refs. */
    void evictPrefixEntry(size_t index);
    /** Consumes one reserved block from `ctx`'s admission budget. */
    void consumeReservation(size_t ctx);

    Config cfg_;
    std::vector<Mirror> mirrors_;
    std::vector<std::vector<int32_t>> table_;  ///< [ctx][tokenBlock]
    std::vector<uint32_t> refcount_;           ///< [physBlock]
    size_t freeCount_ = 0;
    std::vector<int32_t> freeOrder_;  ///< test-set preference order

    std::vector<bool> active_;
    std::vector<size_t> promptLen_;
    std::vector<std::vector<int32_t>> prompt_;  ///< kept for registration
    std::vector<size_t> reservedRemaining_;  ///< per-ctx unclaimed blocks
    size_t reservedTotal_ = 0;
    size_t activeCount_ = 0;
    size_t peakActive_ = 0;
    size_t peakMapped_ = 0;

    std::deque<PrefixEntry> prefixIndex_;  ///< FIFO, oldest in front
    size_t prefixLookups_ = 0;
    size_t prefixHits_ = 0;
    uint64_t sharedTokensTotal_ = 0;
    uint64_t promptTokensTotal_ = 0;
};

}  // namespace dfx

#endif  // DFX_MEMORY_KV_PAGER_HPP
