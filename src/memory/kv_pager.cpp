/**
 * @file
 * Paged KV-cache block pager implementation.
 */
#include "memory/kv_pager.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dfx {

KvPager::KvPager(const Config &cfg) : cfg_(cfg)
{
    DFX_ASSERT(cfg_.blockTokens >= 1, "block needs at least one token");
    DFX_ASSERT(cfg_.maxSeq > 0 && cfg_.maxSeq % cfg_.blockTokens == 0,
               "block size %zu must divide maxSeq %zu (translation "
               "runs must not straddle heads)",
               cfg_.blockTokens, cfg_.maxSeq);
    DFX_ASSERT(cfg_.physBlocks >= blocksPerContext(),
               "pool of %zu blocks cannot hold even one full context "
               "(%zu blocks)",
               cfg_.physBlocks, blocksPerContext());
    DFX_ASSERT(cfg_.maxContexts >= 1, "pager needs a context");
    table_.assign(cfg_.maxContexts,
                  std::vector<int32_t>(blocksPerContext(), -1));
    refcount_.assign(cfg_.physBlocks, 0);
    freeCount_ = cfg_.physBlocks;
    active_.assign(cfg_.maxContexts, false);
    promptLen_.assign(cfg_.maxContexts, 0);
    prompt_.assign(cfg_.maxContexts, {});
    reservedRemaining_.assign(cfg_.maxContexts, 0);
}

void
KvPager::addMirror(OffchipMemory *hbm, std::vector<uint64_t> key_pool,
                   std::vector<uint64_t> vt_pool)
{
    DFX_ASSERT(hbm != nullptr, "pager mirror needs a device");
    DFX_ASSERT(key_pool.size() == cfg_.layers &&
                   vt_pool.size() == cfg_.layers,
               "mirror pool count (%zu K, %zu VT) != %zu layers",
               key_pool.size(), vt_pool.size(), cfg_.layers);
    mirrors_.push_back(
        Mirror{hbm, std::move(key_pool), std::move(vt_pool)});
}

int32_t
KvPager::allocBlock()
{
    DFX_ASSERT(freeCount_ > 0, "block pool exhausted (%zu blocks, "
               "%zu reserved) — admission accounting is broken",
               cfg_.physBlocks, reservedTotal_);
    // Test-set preference order first, then lowest-free-first (the
    // deterministic default keeps paged layouts reproducible).
    for (int32_t b : freeOrder_) {
        if (b >= 0 && static_cast<size_t>(b) < cfg_.physBlocks &&
            refcount_[b] == 0) {
            refcount_[b] = 1;
            --freeCount_;
            peakMapped_ = std::max(peakMapped_, mappedBlocks());
            return b;
        }
    }
    for (size_t b = 0; b < cfg_.physBlocks; ++b) {
        if (refcount_[b] == 0) {
            refcount_[b] = 1;
            --freeCount_;
            peakMapped_ = std::max(peakMapped_, mappedBlocks());
            return static_cast<int32_t>(b);
        }
    }
    DFX_FATAL("free count %zu but no free block", freeCount_);
}

void
KvPager::incref(int32_t block)
{
    DFX_ASSERT(block >= 0 &&
                   static_cast<size_t>(block) < cfg_.physBlocks &&
               refcount_[block] > 0,
               "incref of invalid block %d", block);
    ++refcount_[block];
}

void
KvPager::decref(int32_t block)
{
    DFX_ASSERT(block >= 0 &&
                   static_cast<size_t>(block) < cfg_.physBlocks &&
               refcount_[block] > 0,
               "decref of invalid block %d", block);
    if (--refcount_[block] == 0)
        ++freeCount_;
}

void
KvPager::copyBlock(int32_t from, int32_t to)
{
    // One block's chunk per pool: [localHead][token][headDim] halves
    // in the K pool, [localHead][headDim][token] in the V^T pool —
    // both the same size, both contiguous, so a fork is two memcpy-
    // sized copies per layer per mirror.
    const uint64_t chunk_halves = static_cast<uint64_t>(
        cfg_.localHeads * cfg_.blockTokens * cfg_.headDim);
    std::vector<Half> tmp(chunk_halves);
    for (Mirror &m : mirrors_) {
        if (!m.hbm->functional())
            continue;  // timing-only mirrors carry no data
        for (size_t l = 0; l < cfg_.layers; ++l) {
            const uint64_t src_k =
                m.keyPool[l] + 2 * chunk_halves * from;
            const uint64_t dst_k = m.keyPool[l] + 2 * chunk_halves * to;
            m.hbm->readHalf(src_k, tmp.data(), chunk_halves);
            m.hbm->writeHalf(dst_k, tmp.data(), chunk_halves);
            const uint64_t src_v = m.vtPool[l] + 2 * chunk_halves * from;
            const uint64_t dst_v = m.vtPool[l] + 2 * chunk_halves * to;
            m.hbm->readHalf(src_v, tmp.data(), chunk_halves);
            m.hbm->writeHalf(dst_v, tmp.data(), chunk_halves);
        }
    }
}

void
KvPager::evictPrefixEntry(size_t index)
{
    for (int32_t b : prefixIndex_[index].blocks)
        decref(b);
    prefixIndex_.erase(prefixIndex_.begin() +
                       static_cast<ptrdiff_t>(index));
}

void
KvPager::consumeReservation(size_t ctx)
{
    if (reservedRemaining_[ctx] > 0) {
        --reservedRemaining_[ctx];
        DFX_ASSERT(reservedTotal_ > 0, "reservation accounting broken");
        --reservedTotal_;
    }
}

bool
KvPager::tryOpen(size_t ctx, const std::vector<int32_t> &prompt,
                 size_t new_tokens, bool share_prefix,
                 size_t *shared_tokens)
{
    DFX_ASSERT(ctx < cfg_.maxContexts, "context %zu out of %zu", ctx,
               cfg_.maxContexts);
    DFX_ASSERT(!active_[ctx], "context %zu already open", ctx);
    DFX_ASSERT(!prompt.empty(), "cannot open a context on an empty "
               "prompt");
    DFX_ASSERT(prompt.size() + new_tokens <= cfg_.maxSeq,
               "request of %zu + %zu tokens exceeds maxSeq %zu",
               prompt.size(), new_tokens, cfg_.maxSeq);
    const size_t B = cfg_.blockTokens;

    // Longest-common-prefix match against the index. Capped at
    // prompt.size() - 1: the last prompt token must be processed
    // fresh so prefill still produces the logits that pick the first
    // generated token.
    size_t shared = 0;
    ptrdiff_t matched = -1;  // index of the matched prefix entry
    if (share_prefix && cfg_.prefixSharing) {
        ++prefixLookups_;
        for (size_t e = 0; e < prefixIndex_.size(); ++e) {
            const std::vector<int32_t> &tok = prefixIndex_[e].tokens;
            const size_t limit = std::min(
                {tok.size(), prompt.size() - 1});
            size_t lcp = 0;
            while (lcp < limit && tok[lcp] == prompt[lcp])
                ++lcp;
            if (lcp > shared) {
                shared = lcp;
                matched = static_cast<ptrdiff_t>(e);
            }
        }
    }

    const size_t total_blocks = (prompt.size() + new_tokens + B - 1) / B;
    size_t shared_blocks = (shared + B - 1) / B;
    DFX_ASSERT(shared_blocks <= total_blocks, "prefix accounting broken");
    // Only *full* shared blocks reduce the reservation: a partially-
    // filled shared tail block is aliased too, but the borrower forks
    // it at its first write (pos == shared lies inside it), which
    // costs one fresh block.
    size_t needed = total_blocks - shared / B;

    // If the reservation does not fit, evict index entries (FIFO,
    // sparing the match) — but *plan first*: an entry's blocks may
    // still be held by active contexts, in which case evicting it
    // frees nothing. A failed tryOpen must leave the index intact —
    // the sharing it carries is exactly what lets the next admission
    // (after a context closes) fit in one block instead of a full
    // context's worth.
    if (freeCount_ - reservedTotal_ < needed) {
        // Simulated blocks freed by evicting FIFO entries [0, e),
        // optionally sparing the match. Entries can pin the same
        // block, so count a block freed only when the planned decrefs
        // reach its whole refcount.
        auto plannedGain = [&](bool spare_match,
                               size_t need) -> ptrdiff_t {
            std::vector<uint32_t> decs(refcount_.size(), 0);
            size_t freed = 0;
            for (size_t e = 0; e < prefixIndex_.size(); ++e) {
                if (spare_match &&
                    static_cast<ptrdiff_t>(e) == matched)
                    continue;
                for (int32_t b : prefixIndex_[e].blocks) {
                    if (++decs[static_cast<size_t>(b)] ==
                        refcount_[static_cast<size_t>(b)])
                        ++freed;
                }
                if (freeCount_ + freed - reservedTotal_ >= need)
                    return static_cast<ptrdiff_t>(e) + 1;
            }
            return -1;
        };
        bool spare_match = true;
        if (plannedGain(true, needed) < 0) {
            // Last resort: sharing is an optimization, capacity is
            // correctness. Drop the match too — the matched entry may
            // pin more blocks than the prefix it would save.
            if (matched < 0 ||
                plannedGain(false, total_blocks) < 0)
                return false;
            spare_match = false;
            matched = -1;
            shared = 0;
            shared_blocks = 0;
            needed = total_blocks;
        }
        size_t e = 0;
        while (freeCount_ - reservedTotal_ < needed &&
               e < prefixIndex_.size()) {
            if (spare_match && static_cast<ptrdiff_t>(e) == matched) {
                ++e;
                continue;
            }
            evictPrefixEntry(e);
            if (matched > static_cast<ptrdiff_t>(e))
                --matched;
            // Do not advance: erase shifted the next entry into slot e.
        }
        DFX_ASSERT(freeCount_ - reservedTotal_ >= needed,
                   "eviction plan promised %zu blocks the evictions "
                   "did not free", needed);
    }

    // Map the shared blocks. Aliasing may include a partially-filled
    // tail block: the borrower's first divergent write forks it, paid
    // for out of the reservation made here.
    if (shared > 0) {
        ++prefixHits_;
        const std::vector<int32_t> &blocks =
            prefixIndex_[static_cast<size_t>(matched)].blocks;
        DFX_ASSERT(shared_blocks <= blocks.size(),
                   "prefix entry of %zu blocks cannot cover %zu shared",
                   blocks.size(), shared_blocks);
        for (size_t bi = 0; bi < shared_blocks; ++bi) {
            incref(blocks[bi]);
            table_[ctx][bi] = blocks[bi];
        }
    }

    reservedRemaining_[ctx] = needed;
    reservedTotal_ += needed;
    active_[ctx] = true;
    promptLen_[ctx] = prompt.size();
    prompt_[ctx] = prompt;
    ++activeCount_;
    peakActive_ = std::max(peakActive_, activeCount_);
    sharedTokensTotal_ += shared;
    promptTokensTotal_ += prompt.size();
    if (shared_tokens != nullptr)
        *shared_tokens = shared;
    return true;
}

void
KvPager::ensureWritable(size_t ctx, size_t pos)
{
    DFX_ASSERT(ctx < cfg_.maxContexts && active_[ctx],
               "ensureWritable on closed context %zu", ctx);
    DFX_ASSERT(pos < cfg_.maxSeq, "token %zu beyond maxSeq %zu", pos,
               cfg_.maxSeq);
    const size_t bi = pos / cfg_.blockTokens;
    int32_t b = table_[ctx][bi];
    if (b < 0) {
        table_[ctx][bi] = allocBlock();
        consumeReservation(ctx);
        return;
    }
    if (refcount_[b] > 1) {
        // Copy-on-write fork: this context diverges from its prefix
        // siblings inside block `b` — give it a private copy and
        // leave every other holder untouched.
        const int32_t fresh = allocBlock();
        copyBlock(b, fresh);
        decref(b);
        table_[ctx][bi] = fresh;
        consumeReservation(ctx);
    }
}

void
KvPager::onTokenWritten(size_t ctx, size_t pos)
{
    DFX_ASSERT(ctx < cfg_.maxContexts && active_[ctx],
               "onTokenWritten on closed context %zu", ctx);
    if (!cfg_.prefixSharing || pos + 1 != promptLen_[ctx])
        return;
    // The prompt's K/V just became fully resident — registration
    // happens here (not at open) so the index only ever references
    // blocks whose contents are final.
    const size_t B = cfg_.blockTokens;
    const size_t len = promptLen_[ctx];
    size_t reg_tokens = len;
    size_t reg_blocks = (len + B - 1) / B;
    if (len % B != 0) {
        // Pinning the partially-filled tail block means this context
        // itself forks it on its next write. That costs one extra
        // block beyond the admission reservation — take it only if
        // the pool can spare it, else register full blocks only.
        if (freeCount_ - reservedTotal_ >= 1) {
            ++reservedRemaining_[ctx];
            ++reservedTotal_;
        } else {
            reg_blocks = len / B;
            reg_tokens = reg_blocks * B;
        }
    }
    if (reg_blocks == 0)
        return;

    PrefixEntry entry;
    entry.tokens.assign(prompt_[ctx].begin(),
                        prompt_[ctx].begin() +
                            static_cast<ptrdiff_t>(reg_tokens));
    // Identical registration already present? Keep the older entry —
    // its blocks are the ones later requests already alias.
    for (const PrefixEntry &existing : prefixIndex_) {
        if (existing.tokens == entry.tokens)
            return;
    }
    entry.blocks.reserve(reg_blocks);
    for (size_t bi = 0; bi < reg_blocks; ++bi) {
        const int32_t b = table_[ctx][bi];
        DFX_ASSERT(b >= 0, "prompt block %zu of context %zu unmapped "
                   "at registration", bi, ctx);
        incref(b);
        entry.blocks.push_back(b);
    }
    prefixIndex_.push_back(std::move(entry));
    while (prefixIndex_.size() > cfg_.maxPrefixEntries)
        evictPrefixEntry(0);
}

void
KvPager::close(size_t ctx)
{
    DFX_ASSERT(ctx < cfg_.maxContexts && active_[ctx],
               "close of context %zu that is not open", ctx);
    for (int32_t &b : table_[ctx]) {
        if (b >= 0)
            decref(b);
        b = -1;
    }
    DFX_ASSERT(reservedTotal_ >= reservedRemaining_[ctx],
               "reservation accounting broken");
    reservedTotal_ -= reservedRemaining_[ctx];
    reservedRemaining_[ctx] = 0;
    promptLen_[ctx] = 0;
    prompt_[ctx].clear();
    active_[ctx] = false;
    --activeCount_;
}

int32_t
KvPager::blockAt(size_t ctx, size_t token_block) const
{
    DFX_ASSERT(ctx < cfg_.maxContexts &&
                   token_block < blocksPerContext(),
               "block lookup (ctx %zu, block %zu) out of (%zu, %zu)",
               ctx, token_block, cfg_.maxContexts, blocksPerContext());
    return table_[ctx][token_block];
}

void
KvPager::debugSetFreeOrder(std::vector<int32_t> order)
{
    freeOrder_ = std::move(order);
}

}  // namespace dfx
