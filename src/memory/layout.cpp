/**
 * @file
 * Memory layout construction.
 */
#include "memory/layout.hpp"

#include "common/logging.hpp"

namespace dfx {

void
ClusterGeometry::validateFor(const GptConfig &c) const
{
    if (nCores == 0)
        DFX_FATAL("cluster needs at least one core");
    if (c.heads % nCores != 0) {
        DFX_FATAL("model %s: %zu attention heads not divisible by %zu "
                  "cores (the paper adjusts head counts for exactly this "
                  "reason)",
                  c.name.c_str(), c.heads, nCores);
    }
    if (c.embedding % nCores != 0 || c.ffnHidden() % nCores != 0) {
        DFX_FATAL("model %s: FC dimensions not divisible by %zu cores",
                  c.name.c_str(), nCores);
    }
}

uint64_t
MemoryLayout::keyHeadBase(size_t layer, size_t lh, size_t ctx) const
{
    const size_t hd = config.headDim;
    const uint64_t heads = geometry.localHeads(config);
    return layers[layer].keyBase +
           (ctx * heads + static_cast<uint64_t>(lh)) * config.maxSeq *
               hd * 2;
}

uint64_t
MemoryLayout::keyRowAddr(size_t layer, size_t lh, size_t pos,
                         size_t ctx) const
{
    return keyHeadBase(layer, lh, ctx) +
           static_cast<uint64_t>(pos) * config.headDim * 2;
}

uint64_t
MemoryLayout::vtHeadBase(size_t layer, size_t lh, size_t ctx) const
{
    const size_t hd = config.headDim;
    const uint64_t heads = geometry.localHeads(config);
    return layers[layer].vtBase +
           (ctx * heads + static_cast<uint64_t>(lh)) * hd *
               config.maxSeq * 2;
}

uint64_t
MemoryLayout::vtAddr(size_t layer, size_t lh, size_t j, size_t t,
                     size_t ctx) const
{
    return vtHeadBase(layer, lh, ctx) +
           (static_cast<uint64_t>(j) * config.maxSeq + t) * 2;
}

ChannelMask
MemoryLayout::kvStreamMask(size_t index) const
{
    // Streams enumerate (context, head, {K, V^T}); each gets the next
    // kvStreamChannels-wide contiguous set, wrapping over the device's
    // channels — distinct contexts/heads stay disjoint until the wrap.
    return contiguousChannels(index * kvStreamChannels % hbmChannels,
                              kvStreamChannels, hbmChannels);
}

ChannelMask
MemoryLayout::keyChannelMask(size_t lh, size_t ctx) const
{
    return kvStreamMask((ctx * geometry.localHeads(config) + lh) * 2);
}

ChannelMask
MemoryLayout::vtChannelMask(size_t lh, size_t ctx) const
{
    return kvStreamMask((ctx * geometry.localHeads(config) + lh) * 2 +
                        1);
}

MemoryLayout
MemoryLayout::build(const GptConfig &config,
                    const ClusterGeometry &geometry, size_t lanes,
                    OffchipMemory &hbm, OffchipMemory &ddr,
                    size_t kv_contexts, size_t hbm_channels,
                    size_t kv_stream_channels)
{
    config.validate();
    geometry.validateFor(config);
    DFX_ASSERT(kv_contexts >= 1, "layout needs at least one KV context");
    DFX_ASSERT(hbm_channels >= 1 &&
                   hbm_channels <= static_cast<size_t>(HbmSpec::kChannels),
               "HBM channel count %zu out of [1, %d]", hbm_channels,
               HbmSpec::kChannels);
    DFX_ASSERT(kv_stream_channels >= 1 &&
                   kv_stream_channels <= hbm_channels,
               "KV stream width %zu out of [1, %zu]", kv_stream_channels,
               hbm_channels);

    MemoryLayout ml;
    ml.config = config;
    ml.geometry = geometry;
    ml.lanes = lanes;
    ml.kvContexts = kv_contexts;
    ml.hbmChannels = hbm_channels;
    ml.kvStreamChannels = kv_stream_channels;

    const uint64_t emb = config.embedding;
    const uint64_t emb_shard = geometry.embShard(config);
    const uint64_t ffn_shard = geometry.ffnShard(config);
    const uint64_t vocab_shard = geometry.vocabShard(config, lanes);
    const uint64_t hd = config.headDim;
    const uint64_t local_heads = geometry.localHeads(config);

    const uint64_t hbm_before = hbm.allocated();
    const uint64_t ddr_before = ddr.allocated();

    ml.layers.resize(config.layers);
    for (size_t l = 0; l < config.layers; ++l) {
        LayerAddrs &a = ml.layers[l];
        // Q/K/V are head-wise shards: emb rows x emb_shard cols.
        a.wq = hbm.alloc(emb * emb_shard * 2, "wq");
        a.wk = hbm.alloc(emb * emb_shard * 2, "wk");
        a.wv = hbm.alloc(emb * emb_shard * 2, "wv");
        // Attention projection: column split, full emb input.
        a.wproj = hbm.alloc(emb * emb_shard * 2, "wproj");
        // FFN: fc1 column split; fc2 column split with full 4emb input.
        a.wfc1 = hbm.alloc(emb * ffn_shard * 2, "wfc1");
        a.wfc2 = hbm.alloc(4 * emb * emb_shard * 2, "wfc2");
        // KV cache regions for the local heads: one full region per
        // resident context, stacked contiguously.
        a.keyBase = hbm.alloc(
            kv_contexts * local_heads * config.maxSeq * hd * 2, "K");
        a.vtBase = hbm.alloc(
            kv_contexts * local_heads * hd * config.maxSeq * 2, "VT");
        // DDR: bias shards and LN parameters.
        a.bq = ddr.alloc(emb_shard * 2, "bq");
        a.bk = ddr.alloc(emb_shard * 2, "bk");
        a.bv = ddr.alloc(emb_shard * 2, "bv");
        a.bproj = ddr.alloc(emb_shard * 2, "bproj");
        a.bfc1 = ddr.alloc(ffn_shard * 2, "bfc1");
        a.bfc2 = ddr.alloc(emb_shard * 2, "bfc2");
        a.ln1Gamma = ddr.alloc(emb * 2, "ln1g");
        a.ln1Beta = ddr.alloc(emb * 2, "ln1b");
        a.ln2Gamma = ddr.alloc(emb * 2, "ln2g");
        a.ln2Beta = ddr.alloc(emb * 2, "ln2b");
    }

    // LM head: transposed WTE shard in HBM (emb rows x vocab_shard).
    ml.lmHeadW = hbm.alloc(emb * vocab_shard * 2, "lm_head");
    // Embedding tables and final LN in DDR.
    ml.wte = ddr.alloc(config.vocabSize * emb * 2, "wte");
    ml.wpe = ddr.alloc(config.maxSeq * emb * 2, "wpe");
    ml.lnfGamma = ddr.alloc(emb * 2, "lnfg");
    ml.lnfBeta = ddr.alloc(emb * 2, "lnfb");

    ml.hbmBytes_ = hbm.allocated() - hbm_before;
    ml.ddrBytes_ = ddr.allocated() - ddr_before;
    return ml;
}

}  // namespace dfx
