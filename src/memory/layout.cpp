/**
 * @file
 * Memory layout construction.
 */
#include "memory/layout.hpp"

#include <cstring>

#include "common/logging.hpp"
#include "memory/kv_pager.hpp"
#include "model/weight_store.hpp"

namespace dfx {

void
ClusterGeometry::validateFor(const GptConfig &c) const
{
    if (nCores == 0)
        DFX_FATAL("cluster needs at least one core");
    if (c.heads % nCores != 0) {
        DFX_FATAL("model %s: %zu attention heads not divisible by %zu "
                  "cores (the paper adjusts head counts for exactly this "
                  "reason)",
                  c.name.c_str(), c.heads, nCores);
    }
    if (c.embedding % nCores != 0 || c.ffnHidden() % nCores != 0) {
        DFX_FATAL("model %s: FC dimensions not divisible by %zu cores",
                  c.name.c_str(), nCores);
    }
}

uint64_t
MemoryLayout::keyHeadBase(size_t layer, size_t lh, size_t ctx) const
{
    const size_t hd = config.headDim;
    const uint64_t heads = geometry.localHeads(config);
    return layers[layer].keyBase +
           (ctx * heads + static_cast<uint64_t>(lh)) * config.maxSeq *
               hd * 2;
}

uint64_t
MemoryLayout::keyRowAddr(size_t layer, size_t lh, size_t pos,
                         size_t ctx) const
{
    return keyHeadBase(layer, lh, ctx) +
           static_cast<uint64_t>(pos) * config.headDim * 2;
}

uint64_t
MemoryLayout::vtHeadBase(size_t layer, size_t lh, size_t ctx) const
{
    const size_t hd = config.headDim;
    const uint64_t heads = geometry.localHeads(config);
    return layers[layer].vtBase +
           (ctx * heads + static_cast<uint64_t>(lh)) * hd *
               config.maxSeq * 2;
}

uint64_t
MemoryLayout::vtAddr(size_t layer, size_t lh, size_t j, size_t t,
                     size_t ctx) const
{
    return vtHeadBase(layer, lh, ctx) +
           (static_cast<uint64_t>(j) * config.maxSeq + t) * 2;
}

ChannelMask
MemoryLayout::kvStreamMask(size_t index) const
{
    // Streams enumerate (context, head, {K, V^T}); each gets the next
    // kvStreamChannels-wide contiguous set, wrapping over the device's
    // channels — distinct contexts/heads stay disjoint until the wrap.
    return contiguousChannels(index * kvStreamChannels % hbmChannels,
                              kvStreamChannels, hbmChannels);
}

ChannelMask
MemoryLayout::keyChannelMask(size_t lh, size_t ctx) const
{
    return kvStreamMask((ctx * geometry.localHeads(config) + lh) * 2);
}

ChannelMask
MemoryLayout::vtChannelMask(size_t lh, size_t ctx) const
{
    return kvStreamMask((ctx * geometry.localHeads(config) + lh) * 2 +
                        1);
}

namespace {

/**
 * Installs the K and V^T virtual windows for one layer. The windows
 * keep the unpaged virtual layout ([ctx][localHead][seq][headDim] for
 * K, [ctx][localHead][headDim][maxSeq] for V^T); the translators map
 * each access onto the layer's block pools through the pager's block
 * table. Physical chunk order inside a block: K [lh][tok][headDim],
 * V^T [lh][headDim][tok].
 */
void
allocPagedKvWindows(LayerAddrs &a, OffchipMemory &hbm, KvPager *pager,
                    uint64_t kv_contexts, uint64_t local_heads,
                    uint64_t max_seq, uint64_t hd,
                    uint64_t *key_pool_out, uint64_t *vt_pool_out)
{
    const uint64_t B = pager->blockTokens();
    const uint64_t blocks = pager->physBlocks();
    const uint64_t key_pool =
        hbm.alloc(blocks * local_heads * B * hd * 2, "Kpool");
    const uint64_t vt_pool =
        hbm.alloc(blocks * local_heads * hd * B * 2, "VTpool");
    *key_pool_out = key_pool;
    *vt_pool_out = vt_pool;
    a.keyBase = hbm.allocVirtual(
        kv_contexts * local_heads * max_seq * hd * 2, "K",
        [pager, key_pool, local_heads, max_seq, hd,
         B](uint64_t off, bool) {
            OffchipMemory::PagedRun run;
            const uint64_t d = off % hd;
            const uint64_t t = off / hd % max_seq;
            const uint64_t lh = off / (hd * max_seq) % local_heads;
            const uint64_t ctx = off / (hd * max_seq * local_heads);
            run.halves = (B - t % B) * hd - d;
            const int32_t b = pager->blockAt(ctx, t / B);
            if (b < 0) {
                run.mapped = false;
                return run;
            }
            run.physAddr =
                key_pool +
                2 * (((static_cast<uint64_t>(b) * local_heads + lh) *
                          B +
                      t % B) *
                         hd +
                     d);
            return run;
        });
    a.vtBase = hbm.allocVirtual(
        kv_contexts * local_heads * hd * max_seq * 2, "VT",
        [pager, vt_pool, local_heads, max_seq, hd,
         B](uint64_t off, bool) {
            OffchipMemory::PagedRun run;
            const uint64_t t = off % max_seq;
            const uint64_t j = off / max_seq % hd;
            const uint64_t lh = off / (max_seq * hd) % local_heads;
            const uint64_t ctx = off / (max_seq * hd * local_heads);
            run.halves = B - t % B;
            const int32_t b = pager->blockAt(ctx, t / B);
            if (b < 0) {
                run.mapped = false;
                return run;
            }
            run.physAddr =
                vt_pool +
                2 * (((static_cast<uint64_t>(b) * local_heads + lh) *
                          hd +
                      j) *
                         B +
                     t % B);
            return run;
        });
    // Note the two pools store a block's chunk at the same offset
    // (chunks are equal-sized), which is what lets the pager fork a
    // block with two flat chunk copies.
}

}  // namespace

MemoryLayout
MemoryLayout::build(const GptConfig &config,
                    const ClusterGeometry &geometry, size_t lanes,
                    OffchipMemory &hbm, OffchipMemory &ddr,
                    size_t kv_contexts, size_t hbm_channels,
                    size_t kv_stream_channels, KvPager *pager)
{
    config.validate();
    geometry.validateFor(config);
    DFX_ASSERT(kv_contexts >= 1, "layout needs at least one KV context");
    DFX_ASSERT(hbm_channels >= 1 &&
                   hbm_channels <= static_cast<size_t>(HbmSpec::kChannels),
               "HBM channel count %zu out of [1, %d]", hbm_channels,
               HbmSpec::kChannels);
    DFX_ASSERT(kv_stream_channels >= 1 &&
                   kv_stream_channels <= hbm_channels,
               "KV stream width %zu out of [1, %zu]", kv_stream_channels,
               hbm_channels);

    MemoryLayout ml;
    ml.config = config;
    ml.geometry = geometry;
    ml.lanes = lanes;
    ml.kvContexts = kv_contexts;
    ml.hbmChannels = hbm_channels;
    ml.kvStreamChannels = kv_stream_channels;
    if (pager != nullptr) {
        DFX_ASSERT(pager->blockTokens() > 0 &&
                       config.maxSeq % pager->blockTokens() == 0,
                   "block size %zu must divide maxSeq %zu",
                   pager->blockTokens(), config.maxSeq);
        ml.pager = pager;
        ml.kvBlockTokens = pager->blockTokens();
    }

    const uint64_t emb = config.embedding;
    const uint64_t emb_shard = geometry.embShard(config);
    const uint64_t ffn_shard = geometry.ffnShard(config);
    const uint64_t vocab_shard = geometry.vocabShard(config, lanes);
    const uint64_t hd = config.headDim;
    const uint64_t local_heads = geometry.localHeads(config);

    const uint64_t hbm_before = hbm.allocated();
    const uint64_t ddr_before = ddr.allocated();

    ml.layers.resize(config.layers);
    for (size_t l = 0; l < config.layers; ++l) {
        LayerAddrs &a = ml.layers[l];
        // Q/K/V are head-wise shards: emb rows x emb_shard cols.
        a.wq = hbm.alloc(emb * emb_shard * 2, "wq");
        a.wk = hbm.alloc(emb * emb_shard * 2, "wk");
        a.wv = hbm.alloc(emb * emb_shard * 2, "wv");
        // Attention projection: column split, full emb input.
        a.wproj = hbm.alloc(emb * emb_shard * 2, "wproj");
        // FFN: fc1 column split; fc2 column split with full 4emb input.
        a.wfc1 = hbm.alloc(emb * ffn_shard * 2, "wfc1");
        a.wfc2 = hbm.alloc(4 * emb * emb_shard * 2, "wfc2");
        // KV cache regions for the local heads: either one full
        // region per resident context, stacked contiguously, or (in
        // paged mode) block pools behind virtual windows with the
        // same per-context virtual layout.
        if (pager != nullptr) {
            uint64_t key_pool = 0, vt_pool = 0;
            allocPagedKvWindows(a, hbm, pager, kv_contexts,
                                local_heads, config.maxSeq, hd,
                                &key_pool, &vt_pool);
            ml.keyPoolBase.push_back(key_pool);
            ml.vtPoolBase.push_back(vt_pool);
        } else {
            a.keyBase = hbm.alloc(
                kv_contexts * local_heads * config.maxSeq * hd * 2,
                "K");
            a.vtBase = hbm.alloc(
                kv_contexts * local_heads * hd * config.maxSeq * 2,
                "VT");
        }
        // DDR: bias shards and LN parameters.
        a.bq = ddr.alloc(emb_shard * 2, "bq");
        a.bk = ddr.alloc(emb_shard * 2, "bk");
        a.bv = ddr.alloc(emb_shard * 2, "bv");
        a.bproj = ddr.alloc(emb_shard * 2, "bproj");
        a.bfc1 = ddr.alloc(ffn_shard * 2, "bfc1");
        a.bfc2 = ddr.alloc(emb_shard * 2, "bfc2");
        a.ln1Gamma = ddr.alloc(emb * 2, "ln1g");
        a.ln1Beta = ddr.alloc(emb * 2, "ln1b");
        a.ln2Gamma = ddr.alloc(emb * 2, "ln2g");
        a.ln2Beta = ddr.alloc(emb * 2, "ln2b");
    }

    // LM head: transposed WTE shard in HBM (emb rows x vocab_shard).
    ml.lmHeadW = hbm.alloc(emb * vocab_shard * 2, "lm_head");
    // Embedding tables and final LN in DDR.
    ml.wte = ddr.alloc(config.vocabSize * emb * 2, "wte");
    ml.wpe = ddr.alloc(config.maxSeq * emb * 2, "wpe");
    ml.lnfGamma = ddr.alloc(emb * 2, "lnfg");
    ml.lnfBeta = ddr.alloc(emb * 2, "lnfb");

    ml.hbmBytes_ = hbm.allocated() - hbm_before;
    ml.ddrBytes_ = ddr.allocated() - ddr_before;
    return ml;
}

void
MemoryLayout::bindWeightStore(const std::shared_ptr<WeightStore> &store,
                              OffchipMemory &hbm, OffchipMemory &ddr,
                              size_t core_id) const
{
    DFX_ASSERT(store != nullptr, "bindWeightStore: null store");
    const GptConfig &sc = store->spec().config;
    DFX_ASSERT(store->nShards() == geometry.nCores &&
                   store->lanes() == lanes,
               "weight store geometry (%zu shards, %zu lanes) does not "
               "match layout (%zu cores, %zu lanes)",
               store->nShards(), store->lanes(), geometry.nCores, lanes);
    DFX_ASSERT(sc.embedding == config.embedding &&
                   sc.layers == config.layers &&
                   sc.vocabSize == config.vocabSize &&
                   sc.maxSeq == config.maxSeq &&
                   sc.heads == config.heads,
               "weight store model '%s' does not match layout model '%s'",
               sc.name.c_str(), config.name.c_str());
    DFX_ASSERT(core_id < geometry.nCores, "core %zu out of %zu", core_id,
               geometry.nCores);
    // The store derives its LM-head block stride independently; it
    // must agree with this layout's lane-padded vocab shard or cores
    // would read logits from a neighbouring shard's bytes.
    DFX_ASSERT(store->vocabShardCols() ==
                   geometry.vocabShard(config, lanes),
               "weight store vocab shard %zu != layout vocab shard %zu",
               store->vocabShardCols(),
               geometry.vocabShard(config, lanes));

    // Every lambda captures the shared_ptr: the image outlives every
    // device bound to it. Resolution happens on the region's first
    // access, which is what defers generation to first touch.
    auto bind = [&](OffchipMemory &mem, uint64_t addr, uint64_t halves,
                    int layer, WeightId id) {
        std::shared_ptr<WeightStore> s = store;
        mem.bindRegion(addr, halves * 2, [s, layer, id, core_id]() {
            return s->shardPtr(layer, id, core_id);
        });
    };

    const uint64_t emb = config.embedding;
    const uint64_t emb_shard = geometry.embShard(config);
    const uint64_t ffn_shard = geometry.ffnShard(config);
    const uint64_t vocab_shard = geometry.vocabShard(config, lanes);
    for (size_t l = 0; l < config.layers; ++l) {
        const LayerAddrs &a = layers[l];
        const int li = static_cast<int>(l);
        bind(hbm, a.wq, emb * emb_shard, li, WeightId::kWq);
        bind(hbm, a.wk, emb * emb_shard, li, WeightId::kWk);
        bind(hbm, a.wv, emb * emb_shard, li, WeightId::kWv);
        bind(hbm, a.wproj, emb * emb_shard, li, WeightId::kWproj);
        bind(hbm, a.wfc1, emb * ffn_shard, li, WeightId::kWfc1);
        bind(hbm, a.wfc2, 4 * emb * emb_shard, li, WeightId::kWfc2);
        bind(ddr, a.bq, emb_shard, li, WeightId::kBq);
        bind(ddr, a.bk, emb_shard, li, WeightId::kBk);
        bind(ddr, a.bv, emb_shard, li, WeightId::kBv);
        bind(ddr, a.bproj, emb_shard, li, WeightId::kBproj);
        bind(ddr, a.bfc1, ffn_shard, li, WeightId::kBfc1);
        bind(ddr, a.bfc2, emb_shard, li, WeightId::kBfc2);
        bind(ddr, a.ln1Gamma, emb, li, WeightId::kLn1Gamma);
        bind(ddr, a.ln1Beta, emb, li, WeightId::kLn1Beta);
        bind(ddr, a.ln2Gamma, emb, li, WeightId::kLn2Gamma);
        bind(ddr, a.ln2Beta, emb, li, WeightId::kLn2Beta);
    }
    bind(hbm, lmHeadW, emb * vocab_shard, -1, WeightId::kLmHead);
    bind(ddr, wte, config.vocabSize * emb, -1, WeightId::kWte);
    bind(ddr, wpe, config.maxSeq * emb, -1, WeightId::kWpe);
    bind(ddr, lnfGamma, emb, -1, WeightId::kLnfGamma);
    bind(ddr, lnfBeta, emb, -1, WeightId::kLnfBeta);
}

uint64_t
MemoryLayout::addressingHash() const
{
    // FNV-1a, 64-bit.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(config.vocabSize);
    mix(config.embedding);
    mix(config.heads);
    mix(config.headDim);
    mix(config.layers);
    mix(config.maxSeq);
    // lnEpsilon reaches the instruction stream as an immediate.
    uint32_t eps_bits;
    static_assert(sizeof(eps_bits) == sizeof(config.lnEpsilon));
    std::memcpy(&eps_bits, &config.lnEpsilon, sizeof(eps_bits));
    mix(eps_bits);
    mix(geometry.nCores);
    mix(lanes);
    mix(kvContexts);
    mix(hbmChannels);
    mix(kvStreamChannels);
    mix(paged() ? 1 : 0);
    mix(kvBlockTokens);
    for (uint64_t b : keyPoolBase)
        mix(b);
    for (uint64_t b : vtPoolBase)
        mix(b);
    for (const LayerAddrs &a : layers) {
        mix(a.wq); mix(a.wk); mix(a.wv); mix(a.wproj);
        mix(a.wfc1); mix(a.wfc2);
        mix(a.keyBase); mix(a.vtBase);
        mix(a.bq); mix(a.bk); mix(a.bv); mix(a.bproj);
        mix(a.bfc1); mix(a.bfc2);
        mix(a.ln1Gamma); mix(a.ln1Beta);
        mix(a.ln2Gamma); mix(a.ln2Beta);
    }
    mix(lmHeadW);
    mix(wte);
    mix(wpe);
    mix(lnfGamma);
    mix(lnfBeta);
    return h;
}

}  // namespace dfx
