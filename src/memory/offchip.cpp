/**
 * @file
 * Off-chip memory model implementation.
 */
#include "memory/offchip.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/logging.hpp"

namespace dfx {
namespace {

/** Human-readable byte count for allocation diagnostics. */
std::string
fmtBytes(uint64_t b)
{
    if (b >= (uint64_t{1} << 30))
        return strFormat("%.2f GB", static_cast<double>(b) / (1 << 30));
    if (b >= (uint64_t{1} << 20))
        return strFormat("%.2f MB", static_cast<double>(b) / (1 << 20));
    if (b >= (uint64_t{1} << 10))
        return strFormat("%.2f KB", static_cast<double>(b) / (1 << 10));
    return strFormat("%llu B", static_cast<unsigned long long>(b));
}

}  // namespace

OffchipMemory::OffchipMemory(std::string name, uint64_t capacity_bytes,
                             double peak_bw_bytes_per_sec,
                             double efficiency, bool functional)
    : name_(std::move(name)), capacity_(capacity_bytes),
      peakBw_(peak_bw_bytes_per_sec), efficiency_(efficiency),
      functional_(functional)
{
    DFX_ASSERT(efficiency_ > 0.0 && efficiency_ <= 1.0,
               "bandwidth efficiency %f out of (0,1]", efficiency_);
}

uint64_t
OffchipMemory::alloc(uint64_t bytes, const char *tag)
{
    uint64_t addr = (next_ + 15) & ~uint64_t{15};
    if (addr + bytes > capacity_) {
        // Name the culprits: aggregate existing allocations by tag and
        // report the largest, so a 1.5B bring-up failure says "K and
        // VT want 12 GB" instead of a bare number.
        std::map<std::string, uint64_t> by_tag;
        for (const Segment &s : segments_)
            by_tag[s.tag] += s.bytes;
        std::vector<std::pair<std::string, uint64_t>> top(by_tag.begin(),
                                                          by_tag.end());
        std::sort(top.begin(), top.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        std::string detail;
        const size_t n = std::min<size_t>(top.size(), 5);
        for (size_t i = 0; i < n; ++i) {
            detail += strFormat("%s%s %s", i ? ", " : "",
                                top[i].first.c_str(),
                                fmtBytes(top[i].second).c_str());
        }
        DFX_FATAL("%s: allocation '%s' of %s exceeds capacity "
                  "(%s used of %s); top allocations: %s",
                  name_.c_str(), tag, fmtBytes(bytes).c_str(),
                  fmtBytes(addr).c_str(), fmtBytes(capacity_).c_str(),
                  detail.empty() ? "none" : detail.c_str());
    }
    next_ = addr + bytes;
    Segment seg;
    seg.base = addr;
    seg.bytes = bytes;
    seg.tag = tag;
    segments_.push_back(std::move(seg));
    return addr;
}

void
OffchipMemory::bindRegion(uint64_t addr, uint64_t bytes,
                          std::function<const Half *()> provider)
{
    DFX_ASSERT(functional_, "%s: bindRegion in timing-only mode",
               name_.c_str());
    Segment &seg = find(addr, bytes);
    DFX_ASSERT(seg.base == addr && seg.bytes == bytes,
               "%s: binding [0x%llx, +%llu) does not match allocated "
               "region '%s' [0x%llx, +%llu)",
               name_.c_str(), static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(bytes), seg.tag,
               static_cast<unsigned long long>(seg.base),
               static_cast<unsigned long long>(seg.bytes));
    DFX_ASSERT(!seg.local && !seg.provider,
               "%s: region '%s' already has data", name_.c_str(),
               seg.tag);
    seg.provider = std::move(provider);
}

uint64_t
OffchipMemory::allocVirtual(uint64_t bytes, const char *tag,
                            PageTranslator translate)
{
    DFX_ASSERT(translate != nullptr,
               "%s: virtual region '%s' needs a translator",
               name_.c_str(), tag);
    uint64_t addr = (virtualNext_ + 15) & ~uint64_t{15};
    virtualNext_ = addr + bytes;
    VirtualSegment seg;
    seg.base = addr;
    seg.bytes = bytes;
    seg.tag = tag;
    seg.translate = std::move(translate);
    virtualSegments_.push_back(std::move(seg));
    return addr;
}

double
OffchipMemory::streamSeconds(uint64_t bytes) const
{
    return static_cast<double>(bytes) / effectiveBandwidth();
}

Cycles
OffchipMemory::streamCycles(uint64_t bytes, double freq_hz) const
{
    return units::secondsToCycles(streamSeconds(bytes), freq_hz);
}

OffchipMemory::Segment *
OffchipMemory::findOrNull(uint64_t addr)
{
    // Segments are created by a bump allocator, so they are sorted by
    // base; binary-search the last segment starting at or before addr.
    auto it = std::upper_bound(
        segments_.begin(), segments_.end(), addr,
        [](uint64_t a, const Segment &s) { return a < s.base; });
    if (it == segments_.begin())
        return nullptr;
    --it;
    return addr < it->base + it->bytes ? &*it : nullptr;
}

OffchipMemory::Segment &
OffchipMemory::find(uint64_t addr, uint64_t bytes)
{
    Segment *seg = findOrNull(addr);
    DFX_ASSERT(seg != nullptr && addr + bytes <= seg->base + seg->bytes,
               "%s: access [0x%llx, +%llu) outside any allocated region",
               name_.c_str(), static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(bytes));
    return *seg;
}

OffchipMemory::VirtualSegment &
OffchipMemory::findVirtual(uint64_t addr, uint64_t bytes)
{
    auto it = std::upper_bound(
        virtualSegments_.begin(), virtualSegments_.end(), addr,
        [](uint64_t a, const VirtualSegment &s) { return a < s.base; });
    DFX_ASSERT(it != virtualSegments_.begin(),
               "%s: paged access at 0x%llx below any virtual window",
               name_.c_str(), static_cast<unsigned long long>(addr));
    --it;
    DFX_ASSERT(addr + bytes <= it->base + it->bytes,
               "%s: paged access [0x%llx, +%llu) outside virtual "
               "window '%s' [0x%llx, +%llu)",
               name_.c_str(), static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(bytes), it->tag,
               static_cast<unsigned long long>(it->base),
               static_cast<unsigned long long>(it->bytes));
    return *it;
}

void
OffchipMemory::readPaged(uint64_t addr, Half *dst, size_t n)
{
    VirtualSegment &seg = findVirtual(addr, 2 * n);
    uint64_t off = (addr - seg.base) / 2;
    while (n > 0) {
        PagedRun run = seg.translate(off, /*for_write=*/false);
        DFX_ASSERT(run.halves > 0, "%s: empty run in window '%s'",
                   name_.c_str(), seg.tag);
        const size_t take = std::min<size_t>(n, run.halves);
        if (run.mapped) {
            readHalf(run.physAddr, dst, take);
        } else {
            // Never-written space inside a paged window — the dead
            // tail of a context's K/V beyond its sequence — reads
            // zero like unallocated DRAM.
            for (size_t i = 0; i < take; ++i)
                dst[i] = Half::zero();
        }
        dst += take;
        off += take;
        n -= take;
    }
}

void
OffchipMemory::writePaged(uint64_t addr, const Half *src, size_t n)
{
    VirtualSegment &seg = findVirtual(addr, 2 * n);
    uint64_t off = (addr - seg.base) / 2;
    while (n > 0) {
        PagedRun run = seg.translate(off, /*for_write=*/true);
        DFX_ASSERT(run.halves > 0, "%s: empty run in window '%s'",
                   name_.c_str(), seg.tag);
        DFX_ASSERT(run.mapped,
                   "%s: write at half offset %llu of window '%s' hit "
                   "an unmapped block (ensureWritable not called?)",
                   name_.c_str(), static_cast<unsigned long long>(off),
                   seg.tag);
        const size_t take = std::min<size_t>(n, run.halves);
        writeHalf(run.physAddr, src, take);
        src += take;
        off += take;
        n -= take;
    }
}

void
OffchipMemory::allocLocal(Segment &seg)
{
    // calloc: the kernel hands out zero pages lazily, so untouched
    // parts of a big KV region never become resident.
    auto *p = static_cast<Half *>(
        std::calloc(seg.bytes / 2 + (seg.bytes % 2 != 0), sizeof(Half)));
    DFX_ASSERT(p != nullptr, "%s: cannot back region '%s' (%llu bytes)",
               name_.c_str(), seg.tag,
               static_cast<unsigned long long>(seg.bytes));
    seg.local.reset(p);
}

const Half *
OffchipMemory::readPtr(Segment &seg)
{
    DFX_ASSERT(functional_, "%s: data access in timing-only mode",
               name_.c_str());
    if (seg.local)
        return seg.local.get();
    if (seg.provider) {
        if (seg.shared == nullptr)
            seg.shared = seg.provider();
        return seg.shared;
    }
    allocLocal(seg);
    return seg.local.get();
}

Half *
OffchipMemory::writePtr(Segment &seg)
{
    DFX_ASSERT(functional_, "%s: data access in timing-only mode",
               name_.c_str());
    if (!seg.local) {
        if (seg.provider) {
            // Copy-on-write: pull the shared bytes into private
            // storage; the shared image stays untouched.
            const Half *src = seg.shared ? seg.shared : seg.provider();
            allocLocal(seg);
            std::memcpy(seg.local.get(), src, seg.bytes);
            seg.provider = nullptr;
            seg.shared = nullptr;
        } else {
            allocLocal(seg);
        }
    }
    return seg.local.get();
}

void
OffchipMemory::writeHalf(uint64_t addr, const Half *src, size_t n)
{
    DFX_ASSERT(functional_, "%s: data access in timing-only mode",
               name_.c_str());
    DFX_ASSERT(addr % 2 == 0, "%s: unaligned half write at 0x%llx",
               name_.c_str(), static_cast<unsigned long long>(addr));
    if (isPaged(addr)) {
        writePaged(addr, src, n);
        return;
    }
    Segment &seg = find(addr, 2 * n);
    Half *base = writePtr(seg);
    std::memcpy(base + (addr - seg.base) / 2, src, 2 * n);
}

void
OffchipMemory::readHalf(uint64_t addr, Half *dst, size_t n)
{
    DFX_ASSERT(functional_, "%s: data access in timing-only mode",
               name_.c_str());
    DFX_ASSERT(addr % 2 == 0, "%s: unaligned half read at 0x%llx",
               name_.c_str(), static_cast<unsigned long long>(addr));
    if (isPaged(addr)) {
        readPaged(addr, dst, n);
        return;
    }
    // Reads tolerate unallocated / unwritten addresses and return
    // zero, like real DRAM after init — tests probe layouts this way.
    // Semantics are element-wise: a read straddling a region's end
    // returns the stored prefix and zeros beyond it.
    while (n > 0) {
        Segment *seg = findOrNull(addr);
        if (seg == nullptr) {
            *dst++ = Half::zero();
            addr += 2;
            --n;
            continue;
        }
        const size_t in_seg = std::min<uint64_t>(
            n, (seg->base + seg->bytes - addr) / 2);
        if (in_seg == 0) {
            // Trailing odd byte of an odd-sized region: no room for a
            // half there, so it reads as zero like unallocated space.
            *dst++ = Half::zero();
            addr += 2;
            --n;
            continue;
        }
        if (!seg->local && !seg->provider) {
            for (size_t i = 0; i < in_seg; ++i)
                dst[i] = Half::zero();
        } else {
            const Half *base = readPtr(*seg);
            std::memcpy(dst, base + (addr - seg->base) / 2, 2 * in_seg);
        }
        dst += in_seg;
        addr += 2 * in_seg;
        n -= in_seg;
    }
}

Half
OffchipMemory::loadHalf(uint64_t addr)
{
    Half h;
    readHalf(addr, &h, 1);
    return h;
}

void
OffchipMemory::storeHalf(uint64_t addr, Half value)
{
    writeHalf(addr, &value, 1);
}

const Half *
OffchipMemory::loadSpan(uint64_t addr, size_t n)
{
    DFX_ASSERT(functional_, "%s: data access in timing-only mode",
               name_.c_str());
    DFX_ASSERT(addr % 2 == 0, "%s: unaligned span at 0x%llx",
               name_.c_str(), static_cast<unsigned long long>(addr));
    if (isPaged(addr)) {
        // Gather the window's runs into scratch so the caller still
        // sees one contiguous span; valid until the next loadSpan.
        gather_.resize(n);
        readPaged(addr, gather_.data(), n);
        return gather_.data();
    }
    Segment &seg = find(addr, 2 * n);
    return readPtr(seg) + (addr - seg.base) / 2;
}

Half *
OffchipMemory::storeSpan(uint64_t addr, size_t n)
{
    DFX_ASSERT(functional_, "%s: data access in timing-only mode",
               name_.c_str());
    DFX_ASSERT(addr % 2 == 0, "%s: unaligned span at 0x%llx",
               name_.c_str(), static_cast<unsigned long long>(addr));
    DFX_ASSERT(!isPaged(addr),
               "%s: storeSpan cannot expose a mutable view of a paged "
               "window (runs are discontiguous); use writeHalf",
               name_.c_str());
    Segment &seg = find(addr, 2 * n);
    return writePtr(seg) + (addr - seg.base) / 2;
}

OffchipMemory
makeHbm(int core_id, double efficiency, bool functional)
{
    return OffchipMemory("hbm" + std::to_string(core_id),
                         HbmSpec::kCapacity, HbmSpec::kPeakBandwidth,
                         efficiency, functional);
}

OffchipMemory
makeDdr(int core_id, double efficiency, bool functional)
{
    return OffchipMemory("ddr" + std::to_string(core_id),
                         DdrSpec::kCapacity, DdrSpec::kPeakBandwidth,
                         efficiency, functional);
}

}  // namespace dfx
