/**
 * @file
 * Off-chip memory model implementation.
 */
#include "memory/offchip.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dfx {

OffchipMemory::OffchipMemory(std::string name, uint64_t capacity_bytes,
                             double peak_bw_bytes_per_sec,
                             double efficiency, bool functional)
    : name_(std::move(name)), capacity_(capacity_bytes),
      peakBw_(peak_bw_bytes_per_sec), efficiency_(efficiency),
      functional_(functional)
{
    DFX_ASSERT(efficiency_ > 0.0 && efficiency_ <= 1.0,
               "bandwidth efficiency %f out of (0,1]", efficiency_);
}

uint64_t
OffchipMemory::alloc(uint64_t bytes, const char *tag)
{
    uint64_t addr = (next_ + 15) & ~uint64_t{15};
    if (addr + bytes > capacity_) {
        DFX_FATAL("%s: allocation '%s' of %llu bytes exceeds capacity "
                  "(%llu used of %llu)",
                  name_.c_str(), tag,
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(capacity_));
    }
    next_ = addr + bytes;
    // Grow the functional backing eagerly to the watermark: spans
    // handed out between allocations then never dangle, and steady-
    // state accesses never pay a resize check.
    if (functional_)
        ensureBacking(next_);
    return addr;
}

double
OffchipMemory::streamSeconds(uint64_t bytes) const
{
    return static_cast<double>(bytes) / effectiveBandwidth();
}

Cycles
OffchipMemory::streamCycles(uint64_t bytes, double freq_hz) const
{
    return units::secondsToCycles(streamSeconds(bytes), freq_hz);
}

void
OffchipMemory::ensureBacking(uint64_t addr_end)
{
    DFX_ASSERT(functional_, "%s: data access in timing-only mode",
               name_.c_str());
    size_t words = static_cast<size_t>((addr_end + 1) / 2);
    if (backing_.size() < words)
        backing_.resize(words, Half::zero());
}

void
OffchipMemory::writeHalf(uint64_t addr, const Half *src, size_t n)
{
    DFX_ASSERT(addr % 2 == 0, "%s: unaligned half write at 0x%llx",
               name_.c_str(), static_cast<unsigned long long>(addr));
    ensureBacking(addr + 2 * n);
    for (size_t i = 0; i < n; ++i)
        backing_[addr / 2 + i] = src[i];
}

void
OffchipMemory::readHalf(uint64_t addr, Half *dst, size_t n) const
{
    DFX_ASSERT(functional_, "%s: data access in timing-only mode",
               name_.c_str());
    DFX_ASSERT(addr % 2 == 0, "%s: unaligned half read at 0x%llx",
               name_.c_str(), static_cast<unsigned long long>(addr));
    for (size_t i = 0; i < n; ++i) {
        size_t word = addr / 2 + i;
        dst[i] = word < backing_.size() ? backing_[word] : Half::zero();
    }
}

Half
OffchipMemory::loadHalf(uint64_t addr) const
{
    Half h;
    readHalf(addr, &h, 1);
    return h;
}

void
OffchipMemory::storeHalf(uint64_t addr, Half value)
{
    writeHalf(addr, &value, 1);
}

const Half *
OffchipMemory::loadSpan(uint64_t addr, size_t n)
{
    return storeSpan(addr, n);
}

Half *
OffchipMemory::storeSpan(uint64_t addr, size_t n)
{
    DFX_ASSERT(addr % 2 == 0, "%s: unaligned span at 0x%llx",
               name_.c_str(), static_cast<unsigned long long>(addr));
    ensureBacking(addr + 2 * n);
    return backing_.data() + addr / 2;
}

OffchipMemory
makeHbm(int core_id, double efficiency, bool functional)
{
    return OffchipMemory("hbm" + std::to_string(core_id),
                         HbmSpec::kCapacity, HbmSpec::kPeakBandwidth,
                         efficiency, functional);
}

OffchipMemory
makeDdr(int core_id, double efficiency, bool functional)
{
    return OffchipMemory("ddr" + std::to_string(core_id),
                         DdrSpec::kCapacity, DdrSpec::kPeakBandwidth,
                         efficiency, functional);
}

}  // namespace dfx
