/**
 * @file
 * HBM pseudo-channel sets (paper §IV-B, §V-B).
 *
 * The U280's HBM presents 32 pseudo-channels; aggregate bandwidth is
 * only reachable by an access pattern that keeps all of them busy.
 * The DFX memory map exploits that asymmetry: bulk weight matrices
 * are address-interleaved across every channel (one tile row touches
 * them all), while each head's Key cache and transposed Value cache
 * are pinned to a few channels so the per-token append stays a single
 * linear burst.
 *
 * A channel set is a bit mask over the pseudo-channels, bit c =
 * channel c. Mask 0 is reserved to mean "address-interleaved across
 * all channels" — the degenerate set that streams at aggregate
 * bandwidth — so default-initialized instructions keep the historic
 * single-stream timing.
 */
#ifndef DFX_MEMORY_HBM_CHANNELS_HPP
#define DFX_MEMORY_HBM_CHANNELS_HPP

#include <bit>
#include <cstddef>
#include <cstdint>

namespace dfx {

/** Bit mask over HBM pseudo-channels; 0 = striped across all. */
using ChannelMask = uint32_t;

/** Number of channels in a mask. */
constexpr size_t
channelCount(ChannelMask mask)
{
    return static_cast<size_t>(std::popcount(mask));
}

/**
 * A contiguous run of `width` channels starting at `start`, wrapping
 * modulo `total` (the device's channel count). `width >= total`
 * yields the full mask.
 */
constexpr ChannelMask
contiguousChannels(size_t start, size_t width, size_t total)
{
    if (width >= total)
        return total >= 32 ? ~ChannelMask{0}
                           : (ChannelMask{1} << total) - 1;
    ChannelMask mask = 0;
    for (size_t i = 0; i < width; ++i)
        mask |= ChannelMask{1} << ((start + i) % total);
    return mask;
}

/** True when the two sets share at least one channel. */
constexpr bool
channelsOverlap(ChannelMask a, ChannelMask b)
{
    return (a & b) != 0;
}

}  // namespace dfx

#endif  // DFX_MEMORY_HBM_CHANNELS_HPP
