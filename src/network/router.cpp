/**
 * @file
 * Router functional implementation.
 */
#include "network/router.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dfx {

VecH
Router::reorder(std::vector<RouterChunk> chunks)
{
    DFX_ASSERT(!chunks.empty(), "reorder of zero chunks");
    const size_t n = chunks.size();
    const size_t chunk_len = chunks[0].payload.size();
    std::vector<bool> seen(n, false);
    for (const auto &c : chunks) {
        DFX_ASSERT(c.sourceCore < n, "chunk from core %zu of %zu",
                   c.sourceCore, n);
        DFX_ASSERT(!seen[c.sourceCore], "duplicate chunk from core %zu",
                   c.sourceCore);
        DFX_ASSERT(c.payload.size() == chunk_len,
                   "ragged chunk sizes %zu vs %zu", c.payload.size(),
                   chunk_len);
        seen[c.sourceCore] = true;
    }
    VecH full(n * chunk_len);
    for (const auto &c : chunks) {
        for (size_t i = 0; i < chunk_len; ++i)
            full[c.sourceCore * chunk_len + i] = c.payload[i];
    }
    return full;
}

std::vector<size_t>
Router::arrivalOrder(size_t self, size_t n)
{
    DFX_ASSERT(self < n, "node %zu of %zu", self, n);
    std::vector<size_t> order;
    order.reserve(n);
    for (size_t hop = 0; hop < n; ++hop)
        order.push_back((self + n - hop) % n);
    return order;
}

}  // namespace dfx
