/**
 * @file
 * Lightweight router (paper §V-E, Fig. 11).
 *
 * The router moves 64x16-bit vectors between peer devices over the
 * ring and reorders received chunks by core id so every core ends up
 * with an identically-ordered synchronized vector. There is no packet
 * encode/decode — the Aurora link layer carries raw flits with a
 * (core id, type, src, dst, size) control word.
 *
 * This class implements the functional data plane used by the cluster
 * at sync points; link timing lives in RingNetwork.
 */
#ifndef DFX_NETWORK_ROUTER_HPP
#define DFX_NETWORK_ROUTER_HPP

#include <cstdint>
#include <vector>

#include "numeric/tensor.hpp"

namespace dfx {

/** One in-flight chunk with its control word. */
struct RouterChunk
{
    size_t sourceCore = 0;
    VecH payload;
};

/** Functional reorder logic of the router's RX side. */
class Router
{
  public:
    /**
     * Gathers chunks (arriving in arbitrary ring order) into the full
     * vector ordered by source core id. All chunks must be equally
     * sized and each core id must appear exactly once.
     */
    static VecH reorder(std::vector<RouterChunk> chunks);

    /**
     * Ring arrival order at `self` for a clockwise ring of n nodes:
     * own chunk first, then neighbours by increasing hop distance.
     * Exposed for tests; reorder() must be invariant to it.
     */
    static std::vector<size_t> arrivalOrder(size_t self, size_t n);
};

}  // namespace dfx

#endif  // DFX_NETWORK_ROUTER_HPP
