/**
 * @file
 * Ring network timing model implementation.
 */
#include "network/ring.hpp"

#include "common/logging.hpp"

namespace dfx {

RingNetwork::RingNetwork(const RingParams &params, size_t n_nodes)
    : params_(params), nodes_(n_nodes)
{
    DFX_ASSERT(n_nodes >= 1, "ring needs at least one node");
}

double
RingNetwork::hopSeconds(uint64_t bytes) const
{
    return static_cast<double>(bytes) / params_.effectiveBytesPerSec() +
           params_.hopLatencySec;
}

double
RingNetwork::allGatherSeconds(uint64_t bytes_per_node) const
{
    if (nodes_ <= 1)
        return 0.0;
    // N-1 pipelined steps; all links are active simultaneously, so the
    // wall time is (N-1) hops of one chunk each.
    return static_cast<double>(nodes_ - 1) * hopSeconds(bytes_per_node);
}

double
RingNetwork::argmaxReduceSeconds() const
{
    if (nodes_ <= 1)
        return 0.0;
    return static_cast<double>(nodes_ - 1) * hopSeconds(8);
}

}  // namespace dfx
