/**
 * @file
 * Multi-FPGA ring network model (paper §IV-A, §V-E).
 *
 * Each FPGA has two QSFP ports driven by the Aurora 64b/66b IP at
 * 100 Gb/s; four FPGAs form a ring. Data synchronization is a ring
 * all-gather: in each of the (N-1) steps every core forwards a chunk
 * to its right neighbour, so after N-1 steps every core holds every
 * chunk. Aurora's 64b/66b line code costs 3% of raw bandwidth; a
 * fixed per-hop latency covers the router control word, TX/RX
 * buffering and the register-file drain/fill on both ends.
 */
#ifndef DFX_NETWORK_RING_HPP
#define DFX_NETWORK_RING_HPP

#include <cstddef>
#include <cstdint>

namespace dfx {

/** Ring link and hop parameters. */
struct RingParams
{
    /** Raw link rate: QSFP28, 100 Gb/s. */
    double linkBitsPerSec = 100e9;
    /** Aurora 64b/66b transmission overhead (paper: "only 3%"). */
    double encodingOverhead = 0.03;
    /**
     * Fixed per-hop latency (seconds): router control, Aurora
     * framing, serdes, and RF drain/fill. Calibration constant; the
     * paper's 17.3% sync share on the 1.5B/4-FPGA run (Fig. 15)
     * implies roughly 1.5-2 us per hop at 4 syncs/layer.
     */
    double hopLatencySec = 1.8e-6;

    /** Effective payload bandwidth in bytes/second. */
    double
    effectiveBytesPerSec() const
    {
        return linkBitsPerSec * (1.0 - encodingOverhead) / 8.0;
    }
};

/** Timing model of the FPGA ring. */
class RingNetwork
{
  public:
    explicit RingNetwork(const RingParams &params, size_t n_nodes);

    size_t nodes() const { return nodes_; }
    const RingParams &params() const { return params_; }

    /**
     * Seconds for a ring all-gather in which each node contributes
     * `bytes_per_node`. N == 1 costs nothing (no network involved).
     */
    double allGatherSeconds(uint64_t bytes_per_node) const;

    /**
     * Seconds for an 8-byte-per-node all-reduce (the LM-head argmax
     * exchange of (value, index) pairs).
     */
    double argmaxReduceSeconds() const;

    /** Seconds for a single point-to-point hop of `bytes`. */
    double hopSeconds(uint64_t bytes) const;

  private:
    RingParams params_;
    size_t nodes_;
};

}  // namespace dfx

#endif  // DFX_NETWORK_RING_HPP
