/**
 * @file
 * GPT-2 model configurations (paper Table I) plus reduced test models.
 */
#ifndef DFX_MODEL_CONFIG_HPP
#define DFX_MODEL_CONFIG_HPP

#include <cstddef>
#include <string>

namespace dfx {

/**
 * Hyperparameters of a GPT-2 style decoder-only transformer.
 *
 * Matches the paper's Table I; `embedding = heads * headDim` and the
 * FFN hidden size is 4x the embedding, as in GPT-2.
 */
struct GptConfig
{
    std::string name;
    size_t vocabSize = 50257;
    size_t embedding = 1024;   ///< embedding dimension (emb)
    size_t heads = 16;         ///< number of attention heads (H)
    size_t headDim = 64;       ///< per-head dimension
    size_t layers = 24;        ///< number of decoder layers (N)
    size_t maxSeq = 1024;      ///< maximum context length
    float lnEpsilon = 1e-5f;   ///< layer-norm epsilon

    /** FFN hidden dimension (4 * emb for GPT-2). */
    size_t ffnHidden() const { return 4 * embedding; }

    /** Total parameter count (decoder layers + embeddings + final LN). */
    size_t parameterCount() const;

    /** Parameter bytes at FP16. */
    size_t parameterBytes() const { return parameterCount() * 2; }

    /** Per-decoder-layer weight parameters (the 12*emb^2 of §IV-B). */
    size_t layerMatrixParams() const;

    /** Validates internal consistency; fatal on error. */
    void validate() const;

    // --- Paper Table I configurations -------------------------------
    /** GPT-2 345M: emb 1024, 16 heads, 24 layers. */
    static GptConfig gpt2_345M();
    /** GPT-2 774M: emb 1280, 20 heads, 36 layers. */
    static GptConfig gpt2_774M();
    /** GPT-2 1.5B: emb 1536, 24 heads, 48 layers (paper adjusts OpenAI's
     *  25 heads to 24 for parallelizability). */
    static GptConfig gpt2_1_5B();

    // --- Reduced configurations for functional tests ----------------
    /** Tiny model: emb 128, 2x64 heads, 2 layers, vocab 97. */
    static GptConfig toy();
    /** Small model with hardware-sized heads: emb 256, 4x64 heads. */
    static GptConfig mini();
    /** Look up any of the above by name ("345M", "774M", "1.5B", ...). */
    static GptConfig byName(const std::string &name);
};

}  // namespace dfx

#endif  // DFX_MODEL_CONFIG_HPP
