/**
 * @file
 * Shared on-demand weight store: one immutable FP16 weight image per
 * appliance, materialized lazily per (layer, tensor) shard.
 *
 * The eager path (`GptWeights::random` + `Partitioner`) materializes
 * the full model as host tensors and then *copies* every core's shard
 * into that core's off-chip backing — ~2x the model size per cluster.
 * The store replaces both copies with a single image:
 *
 *  - **One image.** All weight bytes live in one mmap'd region, laid
 *    out shard-major (each core's column slice of each tensor is a
 *    contiguous block), so every core's `OffchipMemory` weight region
 *    aliases directly into the image (`OffchipMemory::bindRegion`) —
 *    cores, clusters and appliances sharing the store share the bytes.
 *
 *  - **Lazy, order-independent generation.** A tensor is generated on
 *    first touch by entering the model's single weight stream at the
 *    tensor's precomputed offset (`WeightTensorDesc::streamOffset`),
 *    fast-forwarding the PRNG by replaying its uniform-consumption
 *    pattern. A shard is therefore bit-identical whether it is
 *    generated alone, in sequence, or concurrently — and identical to
 *    the eager `GptWeights::random` values (regression-tested).
 *
 *  - **Optional file cache.** When `DFX_WEIGHT_CACHE` names a
 *    directory, the image is backed by a file there (keyed on
 *    config + seed + geometry), with a per-tensor validity bitmap, so
 *    repeated runs mmap the finished image instead of regenerating.
 *    The cache is not safe against *concurrent* writers; CI runs the
 *    benches sequentially.
 *
 * Thread safety: all accessors may be called concurrently (cluster
 * worker threads fault tensors in during a phase); materialization is
 * serialized on an internal mutex. The image itself is immutable once
 * a tensor is materialized — writers (tests poking weights) go through
 * `OffchipMemory`'s copy-on-write instead.
 */
#ifndef DFX_MODEL_WEIGHT_STORE_HPP
#define DFX_MODEL_WEIGHT_STORE_HPP

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/fp16.hpp"
#include "common/random.hpp"
#include "model/weight_spec.hpp"

namespace dfx {

class ThreadPool;

/** Lazily generated, shard-major, shared weight image. */
class WeightStore
{
  public:
    /**
     * @param spec model config + seed
     * @param n_shards cores the column-parallel tensors split across
     * @param lanes MPU lane count (LM-head vocab shard padding)
     */
    WeightStore(WeightSpec spec, size_t n_shards, size_t lanes);
    ~WeightStore();

    WeightStore(const WeightStore &) = delete;
    WeightStore &operator=(const WeightStore &) = delete;

    /** Convenience factory (the config-level hook is
     *  `makeWeightStore` in appliance/cluster.hpp). */
    static std::shared_ptr<WeightStore> create(const WeightSpec &spec,
                                               size_t n_shards,
                                               size_t lanes);

    const WeightSpec &spec() const { return spec_; }
    size_t nShards() const { return nShards_; }
    size_t lanes() const { return lanes_; }
    /** Lane-padded LM-head vocab columns per shard. */
    size_t vocabShardCols() const { return vocabShard_; }
    /** Total image size (all tensors + derived LM head), in bytes. */
    uint64_t imageBytes() const { return imageBytes_; }

    /**
     * Pointer to shard `shard` of tensor (`layer`, `id`) inside the
     * image, materializing the tensor on first touch. Replicated
     * tensors ignore `shard`. The pointer stays valid for the store's
     * lifetime and the data behind it never changes.
     */
    const Half *shardPtr(int layer, WeightId id, size_t shard);

    /** Tensor descriptor lookup (layer = -1 for globals). */
    const WeightTensorDesc &desc(int layer, WeightId id) const;

    /**
     * Materializes every tensor. With a pool, generation fans out over
     * contiguous stream ranges (each worker fast-forwards to its range
     * start); the resulting bytes are identical to sequential
     * generation by construction.
     */
    void materializeAll(ThreadPool *pool = nullptr);

    /** Tensors whose data is present (generated or cache-loaded). */
    size_t materializedTensors() const;
    /** Tensors this instance actually generated (cache hits excluded). */
    size_t generatedTensors() const;
    /** True when the image is backed by a DFX_WEIGHT_CACHE file. */
    bool cacheBacked() const { return cacheBacked_; }
    const std::string &cachePath() const { return cachePath_; }

  private:
    size_t tensorIndex(int layer, WeightId id) const;
    bool flagSet(size_t index) const { return flags_[index] != 0; }
    void setFlag(size_t index) { flags_[index] = 1; }
    void materializeLocked(size_t index);
    /** Draws tensor `d` from `rng` and scatters it shard-major. */
    void generateTensor(const WeightTensorDesc &d, Rng &rng);
    void deriveLmHead();
    void openImage();

    WeightSpec spec_;
    size_t nShards_;
    size_t lanes_;
    size_t vocabShard_ = 0;
    std::vector<WeightTensorDesc> table_;
    std::vector<uint64_t> imageOff_;  ///< per-tensor halves offset
    uint64_t imageBytes_ = 0;

    // Image mapping: either a DFX_WEIGHT_CACHE file (header + flags +
    // image) or an anonymous zero-fill-on-demand region.
    void *map_ = nullptr;
    size_t mapBytes_ = 0;
    int fd_ = -1;
    Half *image_ = nullptr;
    uint8_t *flags_ = nullptr;           ///< per-tensor validity
    std::vector<uint8_t> flagsLocal_;    ///< backing when anonymous
    bool cacheBacked_ = false;
    std::string cachePath_;

    mutable std::mutex mutex_;
    std::map<uint64_t, Rng> streamStates_;  ///< offset -> PRNG state
    size_t generated_ = 0;
};

}  // namespace dfx

#endif  // DFX_MODEL_WEIGHT_STORE_HPP
