/**
 * @file
 * Token sampling strategies.
 *
 * DFX's LM head implements greedy decoding in hardware (the SFU_M
 * reduce-max unit "finds either max or argmax of the given vector",
 * §V-C). The reference engine and examples also support top-k sampling
 * for more interesting generated text; both are deterministic under a
 * fixed seed.
 */
#ifndef DFX_MODEL_SAMPLER_HPP
#define DFX_MODEL_SAMPLER_HPP

#include <cstdint>

#include "common/random.hpp"
#include "model/reference.hpp"
#include "numeric/tensor.hpp"

namespace dfx {

/** Greedy argmax over logits (hardware behaviour). */
TokenId sampleGreedy(const VecF &logits);

/**
 * Top-k sampling with temperature over logits; deterministic for a
 * given RNG state. k == 1 degenerates to greedy.
 */
TokenId sampleTopK(const VecF &logits, size_t k, float temperature,
                   Rng &rng);

}  // namespace dfx

#endif  // DFX_MODEL_SAMPLER_HPP
