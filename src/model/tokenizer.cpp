/**
 * @file
 * Word-level tokenizer implementation.
 */
#include "model/tokenizer.hpp"

#include <cctype>

#include "common/logging.hpp"

namespace dfx {
namespace {

/** Built-in vocabulary: common words and punctuation. */
const char *const kBuiltinWords[] = {
    ".", ",", "!", "?", ":", ";", "'", "\"", "-", "(", ")",
    "the", "a", "an", "and", "or", "but", "of", "to", "in", "on", "at",
    "for", "with", "by", "from", "as", "is", "are", "was", "were", "be",
    "been", "being", "it", "its", "this", "that", "these", "those", "he",
    "she", "they", "we", "you", "i", "my", "your", "his", "her", "their",
    "our", "me", "him", "them", "us", "who", "what", "when", "where",
    "why", "how", "which", "all", "any", "both", "each", "few", "more",
    "most", "other", "some", "such", "no", "not", "only", "own", "same",
    "so", "than", "too", "very", "can", "will", "just", "should", "now",
    "hello", "name", "world", "time", "year", "day", "man", "woman",
    "child", "people", "way", "thing", "life", "hand", "part", "eye",
    "place", "work", "week", "case", "point", "company", "number",
    "group", "problem", "fact", "model", "system", "computer", "data",
    "memory", "chip", "silicon", "language", "text", "token", "word",
    "sentence", "machine", "learning", "neural", "network", "deep",
    "attention", "transformer", "generation", "hardware", "software",
    "design", "architecture", "performance", "latency", "throughput",
    "energy", "power", "cost", "cloud", "server", "datacenter", "fpga",
    "gpu", "cpu", "accelerator", "bandwidth", "parallel", "sequential",
    "fast", "slow", "large", "small", "new", "old", "good", "great",
    "high", "low", "long", "short", "first", "last", "next", "early",
    "late", "big", "little", "right", "left", "write", "read", "run",
    "make", "take", "give", "find", "tell", "ask", "seem", "feel",
    "leave", "call", "think", "know", "want", "look", "use", "go",
    "come", "see", "get", "say", "james", "smith", "story", "about",
    "once", "upon", "there", "lived", "happy", "end", "begin", "start",
    "king", "queen", "city", "river", "mountain", "forest", "ocean",
    "light", "dark", "sun", "moon", "star", "sky", "earth", "water",
    "fire", "air", "house", "home", "door", "window", "road", "garden",
    "friend", "family", "mother", "father", "brother", "sister", "love",
    "hope", "dream", "idea", "question", "answer", "because", "before",
    "after", "during", "between", "under", "over", "through", "into",
    "out", "up", "down", "one", "two", "three", "four", "five", "six",
    "seven", "eight", "nine", "ten", "hundred", "thousand", "million",
};

constexpr size_t kBuiltinCount =
    sizeof(kBuiltinWords) / sizeof(kBuiltinWords[0]);

bool
isWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Tokenizer::Tokenizer(size_t vocab_size) : vocabSize_(vocab_size)
{
    DFX_ASSERT(vocab_size >= 64, "vocab too small: %zu", vocab_size);
    const size_t n_words = std::min(kBuiltinCount, vocab_size - 16);
    words_.reserve(n_words);
    for (size_t i = 0; i < n_words; ++i) {
        words_.emplace_back(kBuiltinWords[i]);
        index_[words_.back()] = static_cast<TokenId>(i);
    }
}

std::vector<TokenId>
Tokenizer::encode(const std::string &text) const
{
    std::vector<TokenId> out;
    size_t i = 0;
    const size_t n_oov = vocabSize_ - words_.size();
    while (i < text.size()) {
        char c = text[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        std::string tok;
        if (isWordChar(c)) {
            while (i < text.size() && isWordChar(text[i]))
                tok += static_cast<char>(
                    std::tolower(static_cast<unsigned char>(text[i++])));
        } else {
            tok += c;
            ++i;
        }
        auto it = index_.find(tok);
        if (it != index_.end()) {
            out.push_back(it->second);
        } else {
            // Deterministic OOV hashing into the reserved bucket range.
            uint64_t h = 1469598103934665603ull;  // FNV-1a
            for (char ch : tok)
                h = (h ^ static_cast<unsigned char>(ch)) *
                    1099511628211ull;
            out.push_back(static_cast<TokenId>(words_.size() + h % n_oov));
        }
    }
    return out;
}

std::string
Tokenizer::wordFor(TokenId id) const
{
    DFX_ASSERT(id >= 0 && static_cast<size_t>(id) < vocabSize_,
               "token id %d out of vocab %zu", id, vocabSize_);
    if (static_cast<size_t>(id) < words_.size())
        return words_[static_cast<size_t>(id)];
    return "<tok" + std::to_string(id) + ">";
}

std::string
Tokenizer::decode(const std::vector<TokenId> &tokens) const
{
    std::string out;
    for (TokenId id : tokens) {
        std::string w = wordFor(id);
        bool is_punct = w.size() == 1 &&
                        !isWordChar(w[0]);
        if (!out.empty() && !is_punct)
            out += ' ';
        out += w;
    }
    return out;
}

}  // namespace dfx
