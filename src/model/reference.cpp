/**
 * @file
 * Reference GPT-2 engine implementation.
 */
#include "model/reference.hpp"

#include <cmath>

#include "numeric/functions.hpp"

namespace dfx {
namespace {

/** y = W^T x + b with FP16 weights widened to float. */
VecF
halfMatVec(const MatH &w, const VecF &x, const VecH &b)
{
    DFX_ASSERT(w.rows() == x.size(), "halfMatVec dims");
    VecF y(w.cols());
    for (size_t c = 0; c < w.cols(); ++c) {
        double acc = 0.0;
        for (size_t r = 0; r < w.rows(); ++r)
            acc += static_cast<double>(w.at(r, c).toFloat()) * x[r];
        y[c] = static_cast<float>(acc + b[c].toFloat());
    }
    return y;
}

VecF
widen(const VecH &v)
{
    VecF out(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = v[i].toFloat();
    return out;
}

}  // namespace

ReferenceModel::ReferenceModel(const GptWeights &weights) : w_(weights)
{
    const auto &cfg = w_.config;
    keyCache_.resize(cfg.layers);
    valueCache_.resize(cfg.layers);
    reset();
}

void
ReferenceModel::reset()
{
    const auto &cfg = w_.config;
    position_ = 0;
    for (size_t l = 0; l < cfg.layers; ++l) {
        keyCache_[l].resize(cfg.maxSeq, cfg.embedding);
        valueCache_[l].resize(cfg.maxSeq, cfg.embedding);
    }
}

void
ReferenceModel::decoderLayer(size_t layer, VecF &x)
{
    const auto &cfg = w_.config;
    const auto &lw = w_.layers[layer];
    const size_t emb = cfg.embedding;
    const size_t hd = cfg.headDim;
    const size_t seq = position_ + 1;  // including the current token

    // --- LayerNorm 1 + self-attention --------------------------------
    VecF ln1 = layerNorm(x, widen(lw.ln1Gamma), widen(lw.ln1Beta),
                         cfg.lnEpsilon);
    VecF q = halfMatVec(lw.wq, ln1, lw.bq);
    VecF k = halfMatVec(lw.wk, ln1, lw.bk);
    VecF v = halfMatVec(lw.wv, ln1, lw.bv);

    // Append K/V for the current position.
    for (size_t i = 0; i < emb; ++i) {
        keyCache_[layer].at(position_, i) = k[i];
        valueCache_[layer].at(position_, i) = v[i];
    }

    // Multi-head attention over the cache (causal: the single query is
    // the newest token, so the whole cache is visible).
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    VecF attn(emb, 0.0f);
    for (size_t h = 0; h < cfg.heads; ++h) {
        const size_t off = h * hd;
        VecF score(seq);
        for (size_t t = 0; t < seq; ++t) {
            double dot = 0.0;
            for (size_t i = 0; i < hd; ++i)
                dot += static_cast<double>(q[off + i]) *
                       keyCache_[layer].at(t, off + i);
            score[t] = static_cast<float>(dot) * scale;
        }
        softmaxInPlace(score);
        for (size_t i = 0; i < hd; ++i) {
            double acc = 0.0;
            for (size_t t = 0; t < seq; ++t)
                acc += static_cast<double>(score[t]) *
                       valueCache_[layer].at(t, off + i);
            attn[off + i] = static_cast<float>(acc);
        }
    }
    VecF proj = halfMatVec(lw.wproj, attn, lw.bproj);

    // --- Residual 1 ---------------------------------------------------
    for (size_t i = 0; i < emb; ++i)
        x[i] += proj[i];

    // --- LayerNorm 2 + feed-forward network ---------------------------
    VecF ln2 = layerNorm(x, widen(lw.ln2Gamma), widen(lw.ln2Beta),
                         cfg.lnEpsilon);
    VecF h1 = halfMatVec(lw.wfc1, ln2, lw.bfc1);
    geluInPlace(h1);
    VecF h2 = halfMatVec(lw.wfc2, h1, lw.bfc2);

    // --- Residual 2 ---------------------------------------------------
    for (size_t i = 0; i < emb; ++i)
        x[i] += h2[i];
}

VecF
ReferenceModel::step(TokenId token)
{
    const auto &cfg = w_.config;
    DFX_ASSERT(token >= 0 && static_cast<size_t>(token) < cfg.vocabSize,
               "token %d out of vocab %zu", token, cfg.vocabSize);
    DFX_ASSERT(position_ < cfg.maxSeq, "context overflow at %zu", position_);

    // Token embedding: WTE[token] + WPE[position].
    VecF x(cfg.embedding);
    for (size_t i = 0; i < cfg.embedding; ++i) {
        x[i] = w_.wte.at(static_cast<size_t>(token), i).toFloat() +
               w_.wpe.at(position_, i).toFloat();
    }

    for (size_t l = 0; l < cfg.layers; ++l)
        decoderLayer(l, x);

    position_ += 1;

    // Final layer norm, then LM head: logits = WTE * x.
    VecF xf = layerNorm(x, widen(w_.lnfGamma), widen(w_.lnfBeta),
                        cfg.lnEpsilon);
    last_embedding_ = xf;
    VecF logits(cfg.vocabSize);
    for (size_t t = 0; t < cfg.vocabSize; ++t) {
        double acc = 0.0;
        for (size_t i = 0; i < cfg.embedding; ++i)
            acc += static_cast<double>(w_.wte.at(t, i).toFloat()) * xf[i];
        logits[t] = static_cast<float>(acc);
    }
    return logits;
}

std::vector<TokenId>
ReferenceModel::generate(const std::vector<TokenId> &prompt, size_t n_out)
{
    DFX_ASSERT(!prompt.empty(), "empty prompt");
    reset();
    VecF logits;
    // Summarization stage: one token at a time, as DFX does.
    for (TokenId t : prompt)
        logits = step(t);

    std::vector<TokenId> out;
    out.reserve(n_out);
    for (size_t i = 0; i < n_out; ++i) {
        TokenId next = static_cast<TokenId>(argmax(logits));
        out.push_back(next);
        if (i + 1 < n_out)
            logits = step(next);
    }
    return out;
}

}  // namespace dfx
