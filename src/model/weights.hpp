/**
 * @file
 * GPT-2 weight container with deterministic synthetic initialization.
 *
 * We have no access to trained checkpoints in this environment, so
 * weights are generated from a seeded PRNG with GPT-2's published
 * initialization statistics (normal(0, 0.02) for matrices). All
 * experiments that depend on *numerics* (accuracy, FP16 fidelity,
 * functional equivalence across cluster sizes) are invariant to the
 * specific trained values; see DESIGN.md §1 for the substitution note.
 *
 * Weights are stored in FP16, exactly as DFX keeps them in HBM/DDR and
 * as the GPU baseline keeps them for FP16 kernels.
 *
 * This is the *eager* container: it materializes every tensor as host
 * vectors, which the reference model and small-model tests need. The
 * serving/bench path uses `WeightSpec` + `WeightStore`
 * (model/weight_store.hpp) instead — one lazily generated image shared
 * by every core — with values bit-identical to this path: `random()`
 * is the reference implementation of the weight stream whose layout
 * `weightTensorTable` (model/weight_spec.hpp) describes, and the
 * equivalence is regression-tested. Changing the draw order or
 * statistics here requires the same change in the table.
 */
#ifndef DFX_MODEL_WEIGHTS_HPP
#define DFX_MODEL_WEIGHTS_HPP

#include <vector>

#include "model/config.hpp"
#include "numeric/tensor.hpp"

namespace dfx {

/** Weights of a single decoder layer. Matrices are (in x out). */
struct LayerWeights
{
    VecH ln1Gamma, ln1Beta;
    MatH wq, wk, wv;         ///< emb x emb each
    VecH bq, bk, bv;
    MatH wproj;              ///< emb x emb
    VecH bproj;
    VecH ln2Gamma, ln2Beta;
    MatH wfc1;               ///< emb x 4emb
    VecH bfc1;
    MatH wfc2;               ///< 4emb x emb
    VecH bfc2;
};

/** Full model weights. */
struct GptWeights
{
    GptConfig config;
    MatH wte;                ///< vocab x emb word-token embedding
    MatH wpe;                ///< maxSeq x emb word-position embedding
    VecH lnfGamma, lnfBeta;  ///< final layer norm
    std::vector<LayerWeights> layers;

    /**
     * Builds deterministic synthetic weights for `config` from `seed`.
     * Matrices ~ N(0, 0.02), biases ~ N(0, 0.002), LN gamma ~ 1 +/-
     * 0.02, LN beta ~ N(0, 0.002) — small perturbations so the layer
     * norms are non-trivial.
     */
    static GptWeights random(const GptConfig &config, uint64_t seed);

    /** Total stored parameter count (must match config accounting). */
    size_t parameterCount() const;
};

}  // namespace dfx

#endif  // DFX_MODEL_WEIGHTS_HPP
