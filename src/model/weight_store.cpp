/**
 * @file
 * Shared weight store implementation.
 */
#include "model/weight_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"
#include "common/threadpool.hpp"

namespace dfx {
namespace {

static_assert(sizeof(Half) == 2 && std::is_trivially_copyable_v<Half>,
              "the weight image stores raw Half words");

/** Bump when the stream layout or image format changes. */
constexpr uint64_t kFormatVersion = 1;
/** Cache file: header + validity flags, then the image. */
constexpr size_t kHeaderBytes = 4096;
constexpr size_t kFlagsOffset = 64;

struct CacheHeader
{
    char magic[8];
    uint64_t key;
    uint64_t imageBytes;
    uint64_t nTensors;
};
constexpr char kMagic[8] = {'D', 'F', 'X', 'W', 'I', 'M', 'G', '1'};

uint64_t
fnv1a(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Advances `rng` past `normals` normal draws by replaying the exact
 * uniform consumption of `Rng::normal` (one Box-Muller pair per two
 * normals, including the u1 > 0 rejection loop) without paying for
 * log/sqrt/sin — the fast-forward that makes per-tensor streams
 * enterable at any even offset.
 */
void
skipDraws(Rng &rng, uint64_t normals)
{
    DFX_ASSERT(normals % 2 == 0, "stream skip of odd draw count %llu",
               static_cast<unsigned long long>(normals));
    for (uint64_t i = 0; i < normals; i += 2) {
        double u1;
        do {
            u1 = rng.uniform();
        } while (u1 <= 0.0);
        rng.uniform();
    }
}

}  // namespace

WeightStore::WeightStore(WeightSpec spec, size_t n_shards, size_t lanes)
    : spec_(std::move(spec)), nShards_(n_shards), lanes_(lanes)
{
    spec_.config.validate();
    DFX_ASSERT(nShards_ >= 1, "weight store needs at least one shard");
    table_ = weightTensorTable(spec_.config);

    const size_t vocab = spec_.config.vocabSize;
    const size_t per_core = (vocab + nShards_ - 1) / nShards_;
    vocabShard_ = (per_core + lanes_ - 1) / lanes_ * lanes_;

    imageOff_.reserve(table_.size());
    uint64_t halves = 0;
    for (const WeightTensorDesc &d : table_) {
        imageOff_.push_back(halves);
        if (d.sharding == WeightSharding::kColumns) {
            DFX_ASSERT(d.cols % nShards_ == 0,
                       "tensor cols %zu not divisible by %zu shards",
                       d.cols, nShards_);
        }
        halves += d.sharding == WeightSharding::kLmHead
                      ? d.rows * vocabShard_ * nShards_
                      : d.elements();
    }
    imageBytes_ = halves * 2;
    streamStates_.emplace(0, Rng(spec_.seed));
    openImage();
}

WeightStore::~WeightStore()
{
    if (map_ != nullptr)
        ::munmap(map_, mapBytes_);
    if (fd_ >= 0)
        ::close(fd_);
}

std::shared_ptr<WeightStore>
WeightStore::create(const WeightSpec &spec, size_t n_shards, size_t lanes)
{
    return std::make_shared<WeightStore>(spec, n_shards, lanes);
}

void
WeightStore::openImage()
{
    const char *dir = std::getenv("DFX_WEIGHT_CACHE");
    if (dir != nullptr && dir[0] != '\0') {
        uint64_t key = 0xcbf29ce484222325ull;
        const GptConfig &c = spec_.config;
        for (uint64_t v :
             {static_cast<uint64_t>(c.vocabSize),
              static_cast<uint64_t>(c.embedding),
              static_cast<uint64_t>(c.heads),
              static_cast<uint64_t>(c.headDim),
              static_cast<uint64_t>(c.layers),
              static_cast<uint64_t>(c.maxSeq), spec_.seed,
              static_cast<uint64_t>(nShards_),
              static_cast<uint64_t>(lanes_), kFormatVersion})
            key = fnv1a(key, v);
        cachePath_ = strFormat("%s/dfx-weights-%s-%zuc-%016llx.img", dir,
                               c.name.c_str(), nShards_,
                               static_cast<unsigned long long>(key));
        DFX_ASSERT(kFlagsOffset + table_.size() <= kHeaderBytes,
                   "tensor count %zu overflows the cache header",
                   table_.size());
        const uint64_t total = kHeaderBytes + imageBytes_;
        int fd = ::open(cachePath_.c_str(), O_RDWR | O_CREAT, 0644);
        struct stat st{};
        if (fd >= 0 && ::fstat(fd, &st) == 0) {
            if (static_cast<uint64_t>(st.st_size) != total &&
                (::ftruncate(fd, 0) != 0 ||
                 ::ftruncate(fd, static_cast<off_t>(total)) != 0)) {
                ::close(fd);
                fd = -1;
            }
        }
        void *map = fd >= 0 ? ::mmap(nullptr, total,
                                     PROT_READ | PROT_WRITE, MAP_SHARED,
                                     fd, 0)
                            : MAP_FAILED;
        if (map != MAP_FAILED) {
            fd_ = fd;
            map_ = map;
            mapBytes_ = total;
            auto *base = static_cast<uint8_t *>(map);
            auto *h = reinterpret_cast<CacheHeader *>(base);
            flags_ = base + kFlagsOffset;
            image_ = reinterpret_cast<Half *>(base + kHeaderBytes);
            cacheBacked_ = true;
            if (std::memcmp(h->magic, kMagic, sizeof(kMagic)) != 0 ||
                h->key != key || h->imageBytes != imageBytes_ ||
                h->nTensors != table_.size()) {
                // Fresh or stale file: reset the validity flags and
                // stamp the header (the image region is rewritten as
                // tensors materialize).
                std::memset(flags_, 0, table_.size());
                std::memcpy(h->magic, kMagic, sizeof(kMagic));
                h->key = key;
                h->imageBytes = imageBytes_;
                h->nTensors = table_.size();
            }
            return;
        }
        DFX_WARN("weight cache '%s' unavailable; generating in memory",
                 cachePath_.c_str());
        if (fd >= 0)
            ::close(fd);
        cachePath_.clear();
    }

    // Anonymous zero-fill-on-demand image: pages become resident only
    // as tensors materialize, so a partially-touched large model costs
    // only what it reads.
    void *map = ::mmap(nullptr, imageBytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    DFX_ASSERT(map != MAP_FAILED, "cannot map %llu-byte weight image",
               static_cast<unsigned long long>(imageBytes_));
    map_ = map;
    mapBytes_ = imageBytes_;
    image_ = static_cast<Half *>(map);
    flagsLocal_.assign(table_.size(), 0);
    flags_ = flagsLocal_.data();
}

size_t
WeightStore::tensorIndex(int layer, WeightId id) const
{
    size_t idx;
    if (id == WeightId::kLmHead) {
        idx = table_.size() - 1;
    } else if (layer < 0) {
        idx = static_cast<size_t>(id);
    } else {
        idx = 4 +
              static_cast<size_t>(layer) * 16 +
              (static_cast<size_t>(id) -
               static_cast<size_t>(WeightId::kLn1Gamma));
    }
    DFX_ASSERT(idx < table_.size() && table_[idx].id == id &&
                   table_[idx].layer == (id == WeightId::kLmHead ? -1
                                                                 : layer),
               "bad tensor lookup (layer %d, id %d)", layer,
               static_cast<int>(id));
    return idx;
}

const WeightTensorDesc &
WeightStore::desc(int layer, WeightId id) const
{
    return table_[tensorIndex(layer, id)];
}

const Half *
WeightStore::shardPtr(int layer, WeightId id, size_t shard)
{
    DFX_ASSERT(shard < nShards_, "shard %zu out of %zu", shard, nShards_);
    const size_t idx = tensorIndex(layer, id);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        materializeLocked(idx);
    }
    const WeightTensorDesc &d = table_[idx];
    const Half *base = image_ + imageOff_[idx];
    switch (d.sharding) {
    case WeightSharding::kReplicated:
        return base;
    case WeightSharding::kColumns:
        return base + shard * d.rows * (d.cols / nShards_);
    case WeightSharding::kLmHead:
        return base + shard * d.rows * vocabShard_;
    }
    DFX_PANIC("unreachable sharding kind");
}

void
WeightStore::materializeLocked(size_t index)
{
    if (flagSet(index))
        return;
    const WeightTensorDesc &d = table_[index];
    if (d.derived) {
        materializeLocked(tensorIndex(-1, WeightId::kWte));
        deriveLmHead();
        setFlag(index);
        ++generated_;
        return;
    }
    // Enter the stream at this tensor: copy the nearest earlier
    // checkpointed PRNG state and fast-forward the difference.
    auto it = streamStates_.upper_bound(d.streamOffset);
    DFX_ASSERT(it != streamStates_.begin(), "no stream state at 0");
    --it;
    Rng rng = it->second;
    skipDraws(rng, d.streamOffset - it->first);
    generateTensor(d, rng);
    streamStates_.emplace(d.streamOffset + d.elements(), rng);
    setFlag(index);
    ++generated_;
}

void
WeightStore::generateTensor(const WeightTensorDesc &d, Rng &rng)
{
    const size_t idx = tensorIndex(d.layer, d.id);
    Half *base = image_ + imageOff_[idx];
    // Draw in canonical (row, col) order — the eager path's order —
    // scattering into shard-major storage so each core's column slice
    // is one contiguous block. Replicated tensors are the one-shard
    // case of the same formula.
    const size_t shards =
        d.sharding == WeightSharding::kColumns ? nShards_ : 1;
    const size_t shard_w = d.cols / shards;
    for (size_t r = 0; r < d.rows; ++r) {
        for (size_t c = 0; c < d.cols; ++c) {
            const Half v =
                Half::fromDouble(rng.normal(d.mean, d.stddev));
            base[(c / shard_w) * d.rows * shard_w + r * shard_w +
                 c % shard_w] = v;
        }
    }
}

void
WeightStore::deriveLmHead()
{
    const size_t wte_idx = tensorIndex(-1, WeightId::kWte);
    const size_t lm_idx = tensorIndex(-1, WeightId::kLmHead);
    const Half *wte = image_ + imageOff_[wte_idx];
    Half *lm = image_ + imageOff_[lm_idx];
    const size_t emb = spec_.config.embedding;
    const size_t vocab = spec_.config.vocabSize;
    // Per shard: emb rows x vocabShard_ cols of WTE^T, zero-padded past
    // the real vocabulary (identical to Partitioner's LM-head layout).
    for (size_t s = 0; s < nShards_; ++s) {
        const size_t off = s * vocabShard_;
        Half *block = lm + s * emb * vocabShard_;
        for (size_t r = 0; r < emb; ++r) {
            for (size_t c = 0; c < vocabShard_; ++c) {
                block[r * vocabShard_ + c] =
                    off + c < vocab ? wte[(off + c) * emb + r]
                                    : Half::zero();
            }
        }
    }
}

void
WeightStore::materializeAll(ThreadPool *pool)
{
    // The lock spans the whole fan-out: pool workers write disjoint
    // image ranges without synchronization among themselves, and any
    // concurrent shardPtr caller blocks here until every range is
    // complete — which is what keeps the header's "all accessors may
    // be called concurrently" contract true for this path too.
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t lm_idx = table_.size() - 1;
    if (pool != nullptr && pool->threads() > 1) {
        // Partition the stream into contiguous ranges balanced by draw
        // count; each worker fast-forwards from the seed to its range
        // start and generates in stream order. Tensors already present
        // (cache hits) are skipped over cheaply. All workers write
        // disjoint image blocks, so the result is bit-identical to the
        // sequential walk.
        const uint64_t total_draws =
            table_[lm_idx].streamOffset;  // lm head draws nothing
        const size_t n_ranges = pool->threads();
        std::vector<size_t> range_begin(n_ranges + 1, lm_idx);
        size_t t = 0;
        for (size_t r = 0; r < n_ranges; ++r) {
            range_begin[r] = t;
            const uint64_t target =
                total_draws * (r + 1) / n_ranges;
            while (t < lm_idx && table_[t].streamOffset < target)
                ++t;
        }
        // Pre-position one PRNG per range with a single forward pass
        // (skips are cheap but not free; per-worker skips from the
        // seed would replay ~half the stream per worker).
        std::vector<Rng> range_rng;
        range_rng.reserve(n_ranges);
        Rng cursor(spec_.seed);
        uint64_t cursor_at = 0;
        for (size_t r = 0; r < n_ranges; ++r) {
            const uint64_t begin_off =
                range_begin[r] < lm_idx
                    ? table_[range_begin[r]].streamOffset
                    : total_draws;
            skipDraws(cursor, begin_off - cursor_at);
            cursor_at = begin_off;
            range_rng.push_back(cursor);
        }
        pool->run(n_ranges, [&](size_t r) {
            const size_t begin = range_begin[r], end = range_begin[r + 1];
            if (begin >= end)
                return;
            Rng rng = range_rng[r];
            for (size_t i = begin; i < end; ++i) {
                if (flagSet(i))
                    skipDraws(rng, table_[i].elements());
                else
                    generateTensor(table_[i], rng);
            }
        });
        for (size_t i = 0; i < lm_idx; ++i) {
            if (!flagSet(i)) {
                setFlag(i);
                ++generated_;
            }
        }
        materializeLocked(lm_idx);
        return;
    }
    for (size_t i = 0; i < table_.size(); ++i)
        materializeLocked(i);
}

size_t
WeightStore::materializedTensors() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (size_t i = 0; i < table_.size(); ++i)
        n += flagSet(i);
    return n;
}

size_t
WeightStore::generatedTensors() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return generated_;
}

}  // namespace dfx
