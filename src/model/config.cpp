/**
 * @file
 * GPT-2 configuration presets.
 */
#include "model/config.hpp"

#include "common/logging.hpp"

namespace dfx {

size_t
GptConfig::layerMatrixParams() const
{
    // Q, K, V, attention-projection: 4 * emb^2.
    // FFN: emb*4emb + 4emb*emb = 8 * emb^2.
    return 12 * embedding * embedding;
}

size_t
GptConfig::parameterCount() const
{
    size_t per_layer = layerMatrixParams()   // q/k/v/proj + ffn matrices
        + 3 * embedding                      // q,k,v biases
        + embedding                          // proj bias
        + ffnHidden() + embedding            // fc1, fc2 biases
        + 4 * embedding;                     // ln1/ln2 gamma+beta
    size_t emb_params = vocabSize * embedding + maxSeq * embedding;
    size_t final_ln = 2 * embedding;
    return layers * per_layer + emb_params + final_ln;
}

void
GptConfig::validate() const
{
    if (embedding != heads * headDim) {
        DFX_FATAL("config %s: embedding %zu != heads %zu * headDim %zu",
                  name.c_str(), embedding, heads, headDim);
    }
    if (layers == 0 || vocabSize == 0 || maxSeq == 0)
        DFX_FATAL("config %s: zero-sized dimension", name.c_str());
}

GptConfig
GptConfig::gpt2_345M()
{
    GptConfig c;
    c.name = "345M";
    c.vocabSize = 50257;
    c.embedding = 1024;
    c.heads = 16;
    c.headDim = 64;
    c.layers = 24;
    c.maxSeq = 1024;
    return c;
}

GptConfig
GptConfig::gpt2_774M()
{
    GptConfig c;
    c.name = "774M";
    c.vocabSize = 50257;
    c.embedding = 1280;
    c.heads = 20;
    c.headDim = 64;
    c.layers = 36;
    c.maxSeq = 1024;
    return c;
}

GptConfig
GptConfig::gpt2_1_5B()
{
    GptConfig c;
    c.name = "1.5B";
    c.vocabSize = 50257;
    c.embedding = 1536;
    c.heads = 24;
    c.headDim = 64;
    c.layers = 48;
    c.maxSeq = 1024;
    return c;
}

GptConfig
GptConfig::toy()
{
    GptConfig c;
    c.name = "toy";
    c.vocabSize = 97;
    c.embedding = 128;
    c.heads = 2;
    c.headDim = 64;
    c.layers = 2;
    c.maxSeq = 64;
    return c;
}

GptConfig
GptConfig::mini()
{
    GptConfig c;
    c.name = "mini";
    c.vocabSize = 211;
    c.embedding = 256;
    c.heads = 4;
    c.headDim = 64;
    c.layers = 3;
    c.maxSeq = 128;
    return c;
}

GptConfig
GptConfig::byName(const std::string &name)
{
    if (name == "345M")
        return gpt2_345M();
    if (name == "774M")
        return gpt2_774M();
    if (name == "1.5B")
        return gpt2_1_5B();
    if (name == "toy")
        return toy();
    if (name == "mini")
        return mini();
    DFX_FATAL("unknown model config '%s'", name.c_str());
}

}  // namespace dfx
