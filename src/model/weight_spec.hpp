/**
 * @file
 * Weight specification: the cheap, never-materialized description of a
 * model's synthetic weights.
 *
 * A `WeightSpec` is just (config, seed). Everything else — which
 * tensors exist, how many PRNG draws each consumes, how each is carved
 * across cores — is derived arithmetic, captured in a
 * `WeightTensorDesc` table. The table is the single source of truth
 * for the weight *stream layout*: `GptWeights::random` walks it
 * front-to-back with one PRNG, and `WeightStore` materializes
 * individual entries on demand by fast-forwarding the same stream to
 * `streamOffset` — which is what makes a shard bit-identical whether
 * it is generated alone or in sequence (the shared-weight-store
 * determinism invariant, see docs/ARCHITECTURE.md).
 *
 * Stream accounting relies on two properties of `Rng::normal`:
 * Box-Muller consumes exactly two uniforms per pair of normals (the
 * u1 > 0 rejection is replayed, not assumed away), and every tensor in
 * the table has an even element count (asserted), so tensor boundaries
 * never carry a cached spare across entries.
 */
#ifndef DFX_MODEL_WEIGHT_SPEC_HPP
#define DFX_MODEL_WEIGHT_SPEC_HPP

#include <cstdint>
#include <vector>

#include "model/config.hpp"

namespace dfx {

/** Identity of one model tensor (per layer where applicable). */
enum class WeightId : uint8_t {
    // Model-global tensors, in generation order.
    kWte,       ///< vocab x emb token embedding (DDR full copy)
    kWpe,       ///< maxSeq x emb position embedding (DDR full copy)
    kLnfGamma,  ///< final LN scale
    kLnfBeta,   ///< final LN shift
    // Per-layer tensors, in generation order.
    kLn1Gamma, kLn1Beta,
    kWq, kWk, kWv,
    kBq, kBk, kBv,
    kWproj, kBproj,
    kLn2Gamma, kLn2Beta,
    kWfc1, kBfc1,
    kWfc2, kBfc2,
    // Derived (not drawn from the stream): transposed-WTE LM head.
    kLmHead,
};

/** How a tensor is carved across the cluster's cores (Fig. 6). */
enum class WeightSharding : uint8_t {
    kReplicated,  ///< full copy visible to every core (LN, WTE, WPE)
    kColumns,     ///< contiguous column slice per core (matrices, biases)
    kLmHead,      ///< vocab-sharded transposed WTE with zero padding
};

/** One entry of the weight generation stream. */
struct WeightTensorDesc
{
    WeightId id;
    int layer = -1;        ///< decoder layer, -1 for model-global
    size_t rows = 1;       ///< 1 for vectors
    size_t cols = 0;       ///< elements per row
    double mean = 0.0;     ///< generation mean
    double stddev = 0.0;   ///< generation standard deviation
    WeightSharding sharding = WeightSharding::kReplicated;
    bool derived = false;  ///< computed from other tensors, not drawn
    uint64_t streamOffset = 0;  ///< normals drawn before this tensor

    size_t elements() const { return rows * cols; }
};

/**
 * The full tensor table for `config`, in exact generation order:
 * wte, wpe, lnfGamma, lnfBeta, then for each layer ln1{g,b}, wq, wk,
 * wv, bq, bk, bv, wproj, bproj, ln2{g,b}, wfc1, bfc1, wfc2, bfc2 —
 * matching `GptWeights::random` draw for draw — and finally the
 * derived LM head (stream offset equal to the total draw count).
 */
std::vector<WeightTensorDesc> weightTensorTable(const GptConfig &config);

/**
 * A model's synthetic weights, by description only: the config and the
 * PRNG seed. Carrying a WeightSpec costs nothing; a `WeightStore`
 * turns it into an on-demand weight image.
 */
struct WeightSpec
{
    GptConfig config;
    uint64_t seed = 0;

    /**
     * Total stored parameters, accounted from the tensor table (the
     * derived LM head re-reads WTE and is not counted, matching
     * `GptConfig::parameterCount`). Pure arithmetic — nothing is
     * materialized.
     */
    size_t parameterCount() const;

    /** Parameter bytes at FP16. */
    size_t parameterBytes() const { return parameterCount() * 2; }
};

}  // namespace dfx

#endif  // DFX_MODEL_WEIGHT_SPEC_HPP
