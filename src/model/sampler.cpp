/**
 * @file
 * Token sampling implementation.
 */
#include "model/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "numeric/functions.hpp"

namespace dfx {

TokenId
sampleGreedy(const VecF &logits)
{
    return static_cast<TokenId>(argmax(logits));
}

TokenId
sampleTopK(const VecF &logits, size_t k, float temperature, Rng &rng)
{
    DFX_ASSERT(k >= 1, "top-k requires k >= 1");
    DFX_ASSERT(temperature > 0.0f, "temperature must be positive");
    if (k == 1)
        return sampleGreedy(logits);
    k = std::min(k, logits.size());

    // Collect indices of the k largest logits.
    std::vector<size_t> idx(logits.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k),
                      idx.end(), [&](size_t a, size_t b) {
                          return logits[a] > logits[b];
                      });

    // Softmax over the top-k at the given temperature.
    std::vector<double> p(k);
    double mx = logits[idx[0]];
    double sum = 0.0;
    for (size_t i = 0; i < k; ++i) {
        p[i] = std::exp((logits[idx[i]] - mx) / temperature);
        sum += p[i];
    }
    double r = rng.uniform() * sum;
    double acc = 0.0;
    for (size_t i = 0; i < k; ++i) {
        acc += p[i];
        if (r <= acc)
            return static_cast<TokenId>(idx[i]);
    }
    return static_cast<TokenId>(idx[k - 1]);
}

}  // namespace dfx
