/**
 * @file
 * High-precision reference GPT-2 inference engine.
 *
 * Computes the exact model function (float32 activations over
 * FP16-quantized weights) with a KV cache, one token per step — the
 * same dataflow DFX executes. The simulated hardware is validated
 * against this engine: logits within FP16 tolerance and matching
 * greedy tokens.
 */
#ifndef DFX_MODEL_REFERENCE_HPP
#define DFX_MODEL_REFERENCE_HPP

#include <cstdint>
#include <vector>

#include "model/weights.hpp"

namespace dfx {

using TokenId = int32_t;

/** Reference decoder with per-layer KV cache. */
class ReferenceModel
{
  public:
    explicit ReferenceModel(const GptWeights &weights);

    /** Clears the KV cache (new conversation). */
    void reset();

    /** Number of tokens currently in the context. */
    size_t position() const { return position_; }

    /**
     * Runs one token through all decoder layers, appending its K/V to
     * the cache, and returns the logits over the vocabulary.
     */
    VecF step(TokenId token);

    /**
     * Text-generation service: feeds the prompt token by token
     * (summarization stage), then greedily generates `n_out` tokens
     * (generation stage). Returns the generated tokens.
     */
    std::vector<TokenId> generate(const std::vector<TokenId> &prompt,
                                  size_t n_out);

    /**
     * Returns the pre-LM-head embedding for the last step (used by
     * tests to compare against DFX register-file contents).
     */
    const VecF &lastEmbedding() const { return last_embedding_; }

  private:
    /** One decoder layer; x is updated in place. */
    void decoderLayer(size_t layer, VecF &x);

    const GptWeights &w_;
    size_t position_ = 0;
    /** Per layer: K and V caches, row t = token t, emb columns. */
    std::vector<MatF> keyCache_;
    std::vector<MatF> valueCache_;
    VecF last_embedding_;
};

}  // namespace dfx

#endif  // DFX_MODEL_REFERENCE_HPP
