/**
 * @file
 * Word-level tokenizer for the example applications.
 *
 * GPT-2 proper uses byte-pair encoding with a trained merge table we
 * do not have offline; the examples instead use a deterministic
 * word-level tokenizer over a built-in vocabulary (common English
 * words + punctuation), with out-of-vocabulary words hashed into a
 * reserved bucket range. Tokenization is irrelevant to every
 * performance experiment (which are parameterized by token *counts*);
 * this exists so the examples produce readable round-trip text.
 */
#ifndef DFX_MODEL_TOKENIZER_HPP
#define DFX_MODEL_TOKENIZER_HPP

#include <string>
#include <unordered_map>
#include <vector>

#include "model/reference.hpp"

namespace dfx {

/** Deterministic word-level tokenizer. */
class Tokenizer
{
  public:
    /**
     * Builds the tokenizer for a given vocabulary size. The built-in
     * word list fills ids [0, nWords); the remainder of the vocabulary
     * is reserved for OOV hash buckets named "<tokN>".
     */
    explicit Tokenizer(size_t vocab_size);

    /** Splits text on whitespace/punctuation and maps words to ids. */
    std::vector<TokenId> encode(const std::string &text) const;

    /** Maps ids back to words and joins with spaces. */
    std::string decode(const std::vector<TokenId> &tokens) const;

    /** The word for one id. */
    std::string wordFor(TokenId id) const;

    size_t vocabSize() const { return vocabSize_; }

  private:
    size_t vocabSize_;
    std::vector<std::string> words_;
    std::unordered_map<std::string, TokenId> index_;
};

}  // namespace dfx

#endif  // DFX_MODEL_TOKENIZER_HPP
