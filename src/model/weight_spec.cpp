/**
 * @file
 * Weight tensor table construction and spec accounting.
 */
#include "model/weight_spec.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dfx {

std::vector<WeightTensorDesc>
weightTensorTable(const GptConfig &config)
{
    config.validate();
    const size_t emb = config.embedding;
    const size_t hidden = config.ffnHidden();
    // GPT-2 init statistics; residual projections are scaled by
    // 1/sqrt(2*layers) (see GptWeights::random, which must draw in
    // exactly this order with exactly these parameters).
    const double mat_std = 0.02;
    const double resid_std =
        0.02 / std::sqrt(2.0 * static_cast<double>(config.layers));

    std::vector<WeightTensorDesc> table;
    table.reserve(4 + config.layers * 16 + 1);
    uint64_t offset = 0;
    auto push = [&](WeightId id, int layer, size_t rows, size_t cols,
                    double mean, double stddev, WeightSharding sharding) {
        WeightTensorDesc d;
        d.id = id;
        d.layer = layer;
        d.rows = rows;
        d.cols = cols;
        d.mean = mean;
        d.stddev = stddev;
        d.sharding = sharding;
        d.streamOffset = offset;
        // Even element counts keep Box-Muller pair boundaries aligned
        // with tensor boundaries, which is what lets the stream be
        // entered at any tensor's offset (see file comment in the hpp).
        DFX_ASSERT(d.elements() % 2 == 0,
                   "tensor with odd element count %zu breaks stream "
                   "pair accounting",
                   d.elements());
        offset += d.elements();
        table.push_back(d);
    };

    using S = WeightSharding;
    push(WeightId::kWte, -1, config.vocabSize, emb, 0.0, mat_std,
         S::kReplicated);
    push(WeightId::kWpe, -1, config.maxSeq, emb, 0.0, 0.01,
         S::kReplicated);
    push(WeightId::kLnfGamma, -1, 1, emb, 1.0, 0.02, S::kReplicated);
    push(WeightId::kLnfBeta, -1, 1, emb, 0.0, 0.002, S::kReplicated);
    for (size_t l = 0; l < config.layers; ++l) {
        const int li = static_cast<int>(l);
        push(WeightId::kLn1Gamma, li, 1, emb, 1.0, 0.02, S::kReplicated);
        push(WeightId::kLn1Beta, li, 1, emb, 0.0, 0.002, S::kReplicated);
        push(WeightId::kWq, li, emb, emb, 0.0, mat_std, S::kColumns);
        push(WeightId::kWk, li, emb, emb, 0.0, mat_std, S::kColumns);
        push(WeightId::kWv, li, emb, emb, 0.0, mat_std, S::kColumns);
        push(WeightId::kBq, li, 1, emb, 0.0, 0.002, S::kColumns);
        push(WeightId::kBk, li, 1, emb, 0.0, 0.002, S::kColumns);
        push(WeightId::kBv, li, 1, emb, 0.0, 0.002, S::kColumns);
        push(WeightId::kWproj, li, emb, emb, 0.0, resid_std, S::kColumns);
        push(WeightId::kBproj, li, 1, emb, 0.0, 0.002, S::kColumns);
        push(WeightId::kLn2Gamma, li, 1, emb, 1.0, 0.02, S::kReplicated);
        push(WeightId::kLn2Beta, li, 1, emb, 0.0, 0.002, S::kReplicated);
        push(WeightId::kWfc1, li, emb, hidden, 0.0, mat_std, S::kColumns);
        push(WeightId::kBfc1, li, 1, hidden, 0.0, 0.002, S::kColumns);
        push(WeightId::kWfc2, li, hidden, emb, 0.0, resid_std,
             S::kColumns);
        push(WeightId::kBfc2, li, 1, emb, 0.0, 0.002, S::kColumns);
    }

    // LM head: transposed WTE, vocab-sharded — derived, no draws. Its
    // stored width is geometry-dependent (lane-padded vocab shards),
    // so rows/cols here are the logical emb x vocab shape.
    WeightTensorDesc lm;
    lm.id = WeightId::kLmHead;
    lm.layer = -1;
    lm.rows = emb;
    lm.cols = config.vocabSize;
    lm.sharding = WeightSharding::kLmHead;
    lm.derived = true;
    lm.streamOffset = offset;
    table.push_back(lm);
    return table;
}

size_t
WeightSpec::parameterCount() const
{
    size_t total = 0;
    for (const WeightTensorDesc &d : weightTensorTable(config)) {
        if (!d.derived)
            total += d.elements();
    }
    return total;
}

}  // namespace dfx
