/**
 * @file
 * Synthetic GPT-2 weight generation.
 */
#include "model/weights.hpp"

#include <cmath>

#include "common/random.hpp"

namespace dfx {
namespace {

MatH
randomMatrix(Rng &rng, size_t rows, size_t cols, double stddev)
{
    MatH m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            m.at(r, c) = Half::fromDouble(rng.normal(0.0, stddev));
    return m;
}

VecH
randomVector(Rng &rng, size_t n, double mean, double stddev)
{
    VecH v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = Half::fromDouble(rng.normal(mean, stddev));
    return v;
}

}  // namespace

GptWeights
GptWeights::random(const GptConfig &config, uint64_t seed)
{
    config.validate();
    Rng rng(seed);
    GptWeights w;
    w.config = config;
    const size_t emb = config.embedding;
    const size_t hidden = config.ffnHidden();
    // GPT-2 init: N(0, 0.02) for embeddings and matrices. Residual
    // projections are scaled by 1/sqrt(2*layers) in GPT-2's init, which
    // also keeps activations bounded at depth 48 — important here so
    // FP16 does not saturate on random weights.
    const double mat_std = 0.02;
    const double resid_std =
        0.02 / std::sqrt(2.0 * static_cast<double>(config.layers));

    w.wte = randomMatrix(rng, config.vocabSize, emb, mat_std);
    w.wpe = randomMatrix(rng, config.maxSeq, emb, 0.01);
    w.lnfGamma = randomVector(rng, emb, 1.0, 0.02);
    w.lnfBeta = randomVector(rng, emb, 0.0, 0.002);

    w.layers.resize(config.layers);
    for (auto &layer : w.layers) {
        layer.ln1Gamma = randomVector(rng, emb, 1.0, 0.02);
        layer.ln1Beta = randomVector(rng, emb, 0.0, 0.002);
        layer.wq = randomMatrix(rng, emb, emb, mat_std);
        layer.wk = randomMatrix(rng, emb, emb, mat_std);
        layer.wv = randomMatrix(rng, emb, emb, mat_std);
        layer.bq = randomVector(rng, emb, 0.0, 0.002);
        layer.bk = randomVector(rng, emb, 0.0, 0.002);
        layer.bv = randomVector(rng, emb, 0.0, 0.002);
        layer.wproj = randomMatrix(rng, emb, emb, resid_std);
        layer.bproj = randomVector(rng, emb, 0.0, 0.002);
        layer.ln2Gamma = randomVector(rng, emb, 1.0, 0.02);
        layer.ln2Beta = randomVector(rng, emb, 0.0, 0.002);
        layer.wfc1 = randomMatrix(rng, emb, hidden, mat_std);
        layer.bfc1 = randomVector(rng, hidden, 0.0, 0.002);
        layer.wfc2 = randomMatrix(rng, hidden, emb, resid_std);
        layer.bfc2 = randomVector(rng, emb, 0.0, 0.002);
    }
    return w;
}

size_t
GptWeights::parameterCount() const
{
    size_t total = wte.size() + wpe.size() + lnfGamma.size() +
                   lnfBeta.size();
    for (const auto &l : layers) {
        total += l.ln1Gamma.size() + l.ln1Beta.size() + l.ln2Gamma.size() +
                 l.ln2Beta.size();
        total += l.wq.size() + l.wk.size() + l.wv.size() + l.wproj.size();
        total += l.bq.size() + l.bk.size() + l.bv.size() + l.bproj.size();
        total += l.wfc1.size() + l.wfc2.size() + l.bfc1.size() +
                 l.bfc2.size();
    }
    return total;
}

}  // namespace dfx
