/**
 * @file
 * Analytic performance model of the baseline GPU appliance
 * (4x NVIDIA V100, Megatron-LM, CUDA 11.1 — paper §VII).
 *
 * The paper's own measurements pin down the mechanism:
 *  - generation-stage latency grows ~75-78 ms per output token on the
 *    1.5B model (Fig. 3) while each input token adds only ~0.02 ms:
 *    the per-step cost is dominated by fixed per-kernel overhead
 *    (launch + synchronization in the sampling loop), not by math;
 *  - layer normalization and residual consume 22.8% of the time for
 *    0.11% of the FLOPs (Fig. 4): tiny elementwise kernels pay the
 *    same fixed overhead as the big GEMMs;
 *  - throughput stays flat as output length scales (Fig. 16),
 *    confirming the launch-bound regime.
 *
 * The model prices one forward pass as a sum over op groups
 * (attention, FFN, LN, residual, all-reduce, LM head), each costing
 *     max(n_ops * op_overhead, flops / tensor_peak_eff, bytes / bw_eff)
 * which reproduces both regimes: overhead-bound for single-token
 * steps, compute-bound for large batched summarization.
 *
 * Latency accounting matches the measured series: the summarization
 * stage is ONE batched pass over the prompt (producing the first
 * output token); each additional output token is one generation pass.
 *
 * Calibration constants live in GpuParams with provenance comments.
 */
#ifndef DFX_BASELINE_GPU_HPP
#define DFX_BASELINE_GPU_HPP

#include <array>
#include <cstddef>

#include "isa/instruction.hpp"
#include "model/config.hpp"

namespace dfx {

/** V100 device and software-stack parameters. */
struct GpuParams
{
    // --- device (NVIDIA V100 SXM2 32GB datasheet) ---------------------
    double tensorPeakFlops = 112e12;  ///< FP16 tensor-core peak
    double tensorEfficiency = 0.50;   ///< sustained GEMM fraction
    double memBandwidth = 900e9;      ///< HBM2
    double memEfficiency = 0.65;
    double nvlinkBandwidth = 150e9;   ///< per direction

    // --- software stack (calibrated to the paper's curves) ------------
    /**
     * Fixed cost per kernel in the token-generation loop (launch,
     * sync, framework). 80 us reproduces the measured 37.1 / 62 /
     * 77.6 ms-per-token slopes for 345M/774M/1.5B.
     */
    double opOverheadSec = 80e-6;
    /** All-reduce latency per call (NVLink ring, small payload). */
    double allReduceLatencySec = 90e-6;

    // --- op-graph shape (Megatron-LM decoder layer) --------------------
    int attentionOps = 11;  ///< qkv gemm, splits, QK^T, scale+mask,
                            ///< softmax, SV, merge, proj, biases
    int ffnOps = 4;         ///< fc1, gelu, fc2, bias
    int lnOps = 2;          ///< one fused kernel per LayerNorm
    int residualOps = 2;
    int lmHeadOps = 3;      ///< final LN, logits GEMM, argmax
    int embedOps = 2;
    int allReducesPerLayer = 2;  ///< Megatron intra-layer parallelism
};

/** Per-category time breakdown (same categories as the DFX side). */
using GpuBreakdown =
    std::array<double, static_cast<size_t>(isa::Category::kNumCategories)>;

/** Latency estimate of one request on the GPU appliance. */
struct GpuEstimate
{
    double summarizationSeconds = 0.0;
    double generationSeconds = 0.0;
    double summarizationFlops = 0.0;
    double generationFlops = 0.0;
    GpuBreakdown breakdown{};

    double
    totalSeconds() const
    {
        return summarizationSeconds + generationSeconds;
    }

    double
    tokensPerSecond(size_t n_out) const
    {
        return static_cast<double>(n_out) / totalSeconds();
    }
};

/** The baseline multi-GPU appliance model. */
class GpuApplianceModel
{
  public:
    GpuApplianceModel(const GptConfig &config, size_t n_gpus,
                      const GpuParams &params = GpuParams());

    /**
     * One forward pass over `batch_tokens` new tokens with `kv_len`
     * cached positions. Returns seconds; adds per-category seconds
     * and model FLOPs to the optional accumulators.
     */
    double passSeconds(size_t batch_tokens, size_t kv_len,
                       GpuBreakdown *breakdown, double *flops) const;

    /** Full request: batched summarization + per-token generation. */
    GpuEstimate estimate(size_t n_in, size_t n_out) const;

    const GpuParams &params() const { return params_; }
    size_t nGpus() const { return nGpus_; }

  private:
    GptConfig config_;
    size_t nGpus_;
    GpuParams params_;
};

}  // namespace dfx

#endif  // DFX_BASELINE_GPU_HPP
