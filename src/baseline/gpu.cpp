/**
 * @file
 * GPU appliance model implementation.
 */
#include "baseline/gpu.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dfx {
namespace {

using isa::Category;

constexpr size_t
idx(Category c)
{
    return static_cast<size_t>(c);
}

}  // namespace

GpuApplianceModel::GpuApplianceModel(const GptConfig &config, size_t n_gpus,
                                     const GpuParams &params)
    : config_(config), nGpus_(n_gpus), params_(params)
{
    config.validate();
    DFX_ASSERT(n_gpus >= 1, "need at least one GPU");
    DFX_ASSERT(config.heads % n_gpus == 0,
               "heads %zu not divisible by %zu GPUs", config.heads,
               n_gpus);
}

double
GpuApplianceModel::passSeconds(size_t batch_tokens, size_t kv_len,
                               GpuBreakdown *breakdown,
                               double *flops) const
{
    const double emb = static_cast<double>(config_.embedding);
    const double hidden = static_cast<double>(config_.ffnHidden());
    const double vocab = static_cast<double>(config_.vocabSize);
    const double n = static_cast<double>(batch_tokens);
    const double seq = static_cast<double>(kv_len + batch_tokens);
    const double gpus = static_cast<double>(nGpus_);

    const double peak =
        params_.tensorPeakFlops * params_.tensorEfficiency * gpus;
    const double bw = params_.memBandwidth * params_.memEfficiency;

    // Cost of one op group on one GPU's shard.
    auto group = [&](int n_ops, double group_flops,
                     double group_bytes) {
        double overhead = n_ops * params_.opOverheadSec;
        double compute = group_flops / peak;
        double memory = group_bytes / (bw);  // per-GPU shard bytes
        return std::max({overhead, compute, memory});
    };

    double total = 0.0;
    double total_flops = 0.0;
    auto charge = [&](Category cat, double sec, double fl) {
        total += sec;
        total_flops += fl;
        if (breakdown)
            (*breakdown)[idx(cat)] += sec;
    };

    const size_t layers = config_.layers;
    for (size_t l = 0; l < layers; ++l) {
        (void)l;
        // Attention: QKV + proj GEMMs (weights sharded), per-head
        // score/value matmuls over the KV cache.
        double attn_flops = 2.0 * 4.0 * emb * emb * n +
                            2.0 * 2.0 * emb * seq * n;
        double attn_bytes = 4.0 * emb * emb * 2.0 / gpus +
                            2.0 * emb * seq * 2.0 / gpus;
        charge(Category::kAttention,
               group(params_.attentionOps, attn_flops, attn_bytes),
               attn_flops);
        // FFN.
        double ffn_flops = 2.0 * 2.0 * emb * hidden * n;
        double ffn_bytes = 2.0 * emb * hidden * 2.0 / gpus;
        charge(Category::kFfn,
               group(params_.ffnOps, ffn_flops, ffn_bytes), ffn_flops);
        // LayerNorm and residual: tiny math, full fixed overhead —
        // the paper's Fig. 4 point.
        double ln_flops = 2.0 * 8.0 * emb * n;
        charge(Category::kLayerNorm,
               group(params_.lnOps, ln_flops, 4.0 * emb * n * 2.0),
               ln_flops);
        double res_flops = 2.0 * emb * n;
        charge(Category::kResidual,
               group(params_.residualOps, res_flops, 3.0 * emb * n * 2.0),
               res_flops);
        // Megatron all-reduces.
        if (nGpus_ > 1) {
            double payload = n * emb * 2.0;
            double ar = params_.allReducesPerLayer *
                        (params_.allReduceLatencySec +
                         payload / params_.nvlinkBandwidth);
            charge(Category::kSync, ar, 0.0);
        }
    }

    // Embedding lookup + LM head (logits for the last position only).
    charge(Category::kEmbed,
           group(params_.embedOps, 2.0 * emb * n, emb * n * 2.0),
           2.0 * emb * n);
    double head_flops = 2.0 * emb * vocab;
    charge(Category::kLmHead,
           group(params_.lmHeadOps, head_flops, emb * vocab * 2.0 / gpus),
           head_flops);

    if (flops)
        *flops += total_flops;
    return total;
}

GpuEstimate
GpuApplianceModel::estimate(size_t n_in, size_t n_out) const
{
    DFX_ASSERT(n_in >= 1 && n_out >= 1, "need tokens on both stages");
    GpuEstimate est;
    // Summarization: one batched pass over the whole prompt; its
    // logits yield the first output token.
    est.summarizationSeconds = passSeconds(n_in, 0, &est.breakdown,
                                           &est.summarizationFlops);
    // Generation: one pass per additional output token.
    for (size_t i = 1; i < n_out; ++i) {
        est.generationSeconds += passSeconds(1, n_in + i - 1,
                                             &est.breakdown,
                                             &est.generationFlops);
    }
    return est;
}

}  // namespace dfx
