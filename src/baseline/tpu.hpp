/**
 * @file
 * Analytic model of the cloud-TPU baseline (paper Fig. 17).
 *
 * The paper runs the 345M model on a cloud TPU and reports sustained
 * GFLOPS of 674.5 (summarization), 8.2 (generation) and 16.1 (total)
 * for a 64:64 request: the systolic array batches the prompt well but
 * collapses on single-token steps, where the per-step dispatch
 * (host round trip + XLA executable invocation) dominates.
 *
 * Model: one forward pass costs a fixed dispatch overhead plus
 * compute/memory terms; generation pays a larger per-step overhead
 * than the one-shot summarization pass (feed/fetch in the token
 * loop). Constants calibrated to the three published GFLOPS numbers.
 */
#ifndef DFX_BASELINE_TPU_HPP
#define DFX_BASELINE_TPU_HPP

#include <cstddef>

#include "model/config.hpp"

namespace dfx {

/** Cloud TPU (v3-class) parameters. */
struct TpuParams
{
    double peakFlops = 123e12;        ///< bf16 systolic peak
    double computeEfficiency = 0.45;
    double memBandwidth = 900e9;
    double memEfficiency = 0.6;
    /** One-shot (summarization) dispatch overhead. */
    double prefillOverheadSec = 62e-3;
    /** Per-token dispatch overhead in the generation loop. */
    double stepOverheadSec = 85e-3;
};

/** Latency estimate on the TPU baseline. */
struct TpuEstimate
{
    double summarizationSeconds = 0.0;
    double generationSeconds = 0.0;
    double summarizationFlops = 0.0;
    double generationFlops = 0.0;

    double
    totalSeconds() const
    {
        return summarizationSeconds + generationSeconds;
    }
};

/** Single-device TPU inference model. */
class TpuModel
{
  public:
    TpuModel(const GptConfig &config, const TpuParams &params = TpuParams());

    /** Full request: batched prefill + per-token generation. */
    TpuEstimate estimate(size_t n_in, size_t n_out) const;

  private:
    double passSeconds(size_t batch_tokens, double overhead,
                       double *flops) const;

    GptConfig config_;
    TpuParams params_;
};

}  // namespace dfx

#endif  // DFX_BASELINE_TPU_HPP
