/**
 * @file
 * TPU baseline model implementation.
 */
#include "baseline/tpu.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dfx {

TpuModel::TpuModel(const GptConfig &config, const TpuParams &params)
    : config_(config), params_(params)
{
    config.validate();
}

double
TpuModel::passSeconds(size_t batch_tokens, double overhead,
                      double *flops) const
{
    const double emb = static_cast<double>(config_.embedding);
    const double hidden = static_cast<double>(config_.ffnHidden());
    const double n = static_cast<double>(batch_tokens);
    const double layers = static_cast<double>(config_.layers);

    const double pass_flops =
        layers * (2.0 * 4.0 * emb * emb + 2.0 * 2.0 * emb * hidden) * n +
        2.0 * emb * static_cast<double>(config_.vocabSize);
    const double weight_bytes =
        layers * 12.0 * emb * emb * 2.0 +
        emb * static_cast<double>(config_.vocabSize) * 2.0;

    const double compute =
        pass_flops / (params_.peakFlops * params_.computeEfficiency);
    const double memory =
        weight_bytes / (params_.memBandwidth * params_.memEfficiency);
    if (flops)
        *flops += pass_flops;
    return overhead + std::max(compute, memory);
}

TpuEstimate
TpuModel::estimate(size_t n_in, size_t n_out) const
{
    DFX_ASSERT(n_in >= 1 && n_out >= 1, "need tokens on both stages");
    TpuEstimate est;
    est.summarizationSeconds = passSeconds(
        n_in, params_.prefillOverheadSec, &est.summarizationFlops);
    for (size_t i = 1; i < n_out; ++i) {
        est.generationSeconds += passSeconds(1, params_.stepOverheadSec,
                                             &est.generationFlops);
    }
    return est;
}

}  // namespace dfx
