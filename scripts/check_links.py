#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation layer.

Scans ``README.md``, ``ROADMAP.md`` and everything under ``docs/`` for
markdown links and validates the ones CI can check offline:

- relative file links must point at an existing file or directory
  (resolved against the linking file's own directory);
- ``#fragment`` anchors — bare or attached to a relative ``.md``
  link — must match a heading in the target file (GitHub slug rules:
  lowercase, spaces to dashes, punctuation stripped);
- ``http(s)``/``mailto`` links are skipped (CI runs offline).

Exit status is non-zero if any link is broken, listing every offender.

Usage:
  scripts/check_links.py [--root REPO_ROOT]
"""

import argparse
import functools
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links: [text](target) — target may carry a #fragment and an
# optional "title"; space-containing targets must be <>-wrapped (as
# on GitHub). Images (![alt](target)) are matched too.
LINK_RE = re.compile(
    r"\[[^\]]*\]\((?:<([^>]+)>|([^)\s]+))(?:\s+\"[^\"]*\")?\)")
# A link-ish construct whose target has unwrapped spaces: LINK_RE
# cannot parse it, and silently skipping would hide a broken link.
UNPARSEABLE_RE = re.compile(r"\[[^\]]*\]\((?!<)[^)]*\s[^)]*\)")
# Fenced code blocks must not contribute false links.
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markdown emphasis/code markers and
    punctuation, lowercase, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def heading_slugs(md_path: Path) -> set:
    slugs = set()
    counts: dict = {}
    in_fence = False
    for line in md_path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(md_path: Path, failures: list):
    in_fence = False
    for lineno, line in enumerate(
            md_path.read_text(encoding="utf-8").splitlines(), start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = LINK_RE.sub("", line)
        m = UNPARSEABLE_RE.search(stripped)
        if m:
            failures.append(f"{md_path.relative_to(REPO_ROOT)}:"
                            f"{lineno}: unparseable link target "
                            f"'{m.group(0)}' (wrap space-containing "
                            f"targets in <>)")
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1) or m.group(2)


def check_file(md_path: Path, failures: list) -> int:
    checked = 0
    for lineno, target in iter_links(md_path, failures):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        checked += 1
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (md_path.parent / path_part).resolve()
            if not resolved.exists():
                failures.append(f"{md_path.relative_to(REPO_ROOT)}:"
                                f"{lineno}: broken link '{target}' "
                                f"({resolved} does not exist)")
                continue
        else:
            resolved = md_path
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                continue  # anchors into non-markdown: not checkable
            if fragment.lower() not in heading_slugs(resolved):
                failures.append(f"{md_path.relative_to(REPO_ROOT)}:"
                                f"{lineno}: anchor '#{fragment}' not "
                                f"found in {resolved.name}")
    return checked


def main() -> int:
    global REPO_ROOT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=REPO_ROOT)
    args = parser.parse_args()
    REPO_ROOT = args.root.resolve()

    targets = []
    for name in ("README.md", "ROADMAP.md"):
        p = REPO_ROOT / name
        if p.exists():
            targets.append(p)
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        targets.extend(sorted(docs.rglob("*.md")))
    if not targets:
        print("error: no markdown files found to check")
        return 1

    failures: list = []
    total = 0
    for md in targets:
        n = check_file(md, failures)
        total += n
        print(f"  {md.relative_to(REPO_ROOT)}: {n} offline link(s) "
              f"checked")
    if failures:
        print("\nBROKEN LINKS:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nlink check passed ({total} links over {len(targets)} "
          f"files).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
