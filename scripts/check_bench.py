#!/usr/bin/env python3
"""Perf-trajectory gate for the cross-PR benchmark records.

Runs the host-perf benches (``bench_sim_speed``, ``bench_serving``,
``bench_fleet``) in the build directory, compares the fresh numbers
against the committed ``BENCH_*.json`` baselines at the repo root, and
fails on a steps-per-second (or tokens-per-second) regression beyond
the threshold. Sim-speed host numbers are gated like-for-like on the
SIMD kernel (``simd`` section): the forced-scalar A/B steps/sec is
compared on every machine, while the headline sweep and the vector
number are compared only when the fresh run resolved the same kernel
as the baseline. The sim-speed record also carries the program-cache A/B
(``codegen``: warm cache hit rate >= 0.95, cached steps/sec vs.
baseline, and the timing-only codegen share at most half the
fresh-codegen share). The serving record is also checked for a non-monotonic
batching sweep, an open-loop TTFT regression (``latency_vs_load``:
TTFT beyond (1+threshold) x baseline at any offered load, or a TTFT
p99 curve that stopped being monotone in offered load), a
work-stealing makespan that no longer strictly beats static
placement, and the fault-injection section (``faults``: empty-plan
bit-identity, every kill-scenario request completed with
serial-identical tokens, recovery makespan beating the naive
no-failover bound, shed requests reported), and the paged-KV
capacity section (``capacity``: at least 2x the unpaged resident
contexts at the same HBM, prefix cache hitting, serial-identical
tokens). The fleet record (``bench_fleet``) is gated on the
functional token-identity booleans (serial-identical and
disaggregated == colocated at every load), per-topology saturation
throughput, a monotone TTFT-p99-vs-load curve, and KV transfers
actually happening on the disaggregated topology. Modeled serving metrics
are deterministic, so any drop
there is a real model/scheduler regression; host steps/sec vary with
the machine, which is what the (generous) threshold absorbs.

Usage:
  scripts/check_bench.py [--build-dir build] [--threshold 0.25]
                         [--skip-run] [--update]

``--update`` copies the fresh JSON over the committed baselines
(run it after an intentional perf change, then commit the files).
"""

import argparse
import json
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

BENCHES = ["bench_sim_speed", "bench_serving", "bench_fleet"]

# Run-only smoke benches: no committed baseline to compare against,
# but they must keep executing successfully (a non-zero exit fails the
# gate). bench_fig08 exercises the per-channel HBM timing path of the
# tiling DSE, which no unit test sweeps end to end. bench_fig18 is the
# large-model gate: it decodes GPT-2 774M functionally (tokens must
# match across cluster sizes) and runs a 1.5B spot-functional step,
# hard-failing when peak RSS exceeds 1.5x the model's parameter bytes
# (i.e. when the shared weight image gets duplicated). Set
# DFX_WEIGHT_CACHE to skip weight regeneration across runs.
SMOKE_BENCHES = ["bench_fig08_tiling_dse", "bench_fig18_scalability"]


def run_benches(build_dir: Path) -> None:
    for bench in BENCHES + SMOKE_BENCHES:
        exe = build_dir / bench
        if not exe.exists():
            sys.exit(f"error: {exe} not built (build the repo first)")
        print(f"== running {bench} ==", flush=True)
        subprocess.run([f"./{bench}"], cwd=build_dir, check=True)


def load(path: Path) -> dict:
    if not path.exists():
        sys.exit(f"error: {path} missing")
    with path.open() as f:
        return json.load(f)


def check_metric(name: str, base: float, fresh: float,
                 threshold: float, failures: list) -> None:
    floor = base * (1.0 - threshold)
    verdict = "ok" if fresh >= floor else "REGRESSION"
    print(f"  {name:40s} base {base:10.2f}  fresh {fresh:10.2f}  "
          f"floor {floor:10.2f}  {verdict}")
    if fresh < floor:
        failures.append(f"{name}: {fresh:.2f} < {floor:.2f} "
                        f"(baseline {base:.2f})")


def check_metric_lower_better(name: str, base: float, fresh: float,
                              threshold: float, failures: list) -> None:
    """Latency-style metric: regression means the fresh number grew
    past (1 + threshold) x baseline."""
    ceiling = base * (1.0 + threshold)
    verdict = "ok" if fresh <= ceiling else "REGRESSION"
    print(f"  {name:40s} base {base:10.4f}  fresh {fresh:10.4f}  "
          f"ceil {ceiling:10.4f}  {verdict}")
    if fresh > ceiling:
        failures.append(f"{name}: {fresh:.4f} > {ceiling:.4f} "
                        f"(baseline {base:.4f})")


def simd_kernel(record: dict) -> str:
    """Kernel the record's headline numbers were measured with.
    Records predating the SIMD dispatch are scalar by construction."""
    return record.get("simd", {}).get("kernel", "scalar")


def check_simd(base: dict, fresh: dict, threshold: float,
               failures: list) -> None:
    """SIMD A/B gate (``simd`` section): the forced-scalar steps/sec is
    the one host-speed number that is comparable on every machine and
    under every dispatch outcome, so it is gated unconditionally.
    The vector number is gated only when both records ran the same
    vector kernel (a scalar-only host or a DFX_FORCE_SCALAR=1 CI leg
    legitimately has none)."""
    print("bench_sim_speed simd (kernel A/B):")
    b, f = base.get("simd"), fresh.get("simd")
    if b is None:
        return
    if f is None:
        failures.append("simd: fresh JSON lacks the 'simd' section "
                        "the baseline has")
        return
    print(f"  kernel: baseline {b['kernel']}, fresh {f['kernel']}")
    check_metric("simd forced-scalar steps/sec",
                 b["scalar_steps_per_sec"], f["scalar_steps_per_sec"],
                 threshold, failures)
    if b["kernel"] == f["kernel"] and "vector_steps_per_sec" in b:
        if "vector_steps_per_sec" not in f:
            failures.append(f"simd: fresh JSON lacks the vector A/B "
                            f"for kernel {f['kernel']}")
        else:
            check_metric(f"simd {f['kernel']} steps/sec",
                         b["vector_steps_per_sec"],
                         f["vector_steps_per_sec"], threshold, failures)
    elif b["kernel"] != f["kernel"]:
        print(f"  (kernels differ — vector A/B not compared)")


def check_sim_speed(base: dict, fresh: dict, threshold: float,
                    failures: list, like_for_like: bool) -> None:
    """Host steps/sec: machine-dependent, so CI passes a looser
    --host-threshold than the local default. The headline sweep is
    compared only like-for-like (fresh kernel == baseline kernel);
    a forced-scalar or scalar-only-host run is gated through the
    ``simd`` section's scalar A/B number instead."""
    print("bench_sim_speed (host decode steps/sec):")
    if not like_for_like:
        print(f"  (baseline kernel {simd_kernel(base)} != fresh kernel "
              f"{simd_kernel(fresh)} — sweep gated via the simd "
              f"section's scalar A/B instead)")
    else:
        fresh_by_threads = {e["host_threads"]: e["steps_per_sec"]
                            for e in fresh["decode_steps_per_sec"]}
        for entry in base["decode_steps_per_sec"]:
            threads = entry["host_threads"]
            if threads not in fresh_by_threads:
                failures.append(f"sim_speed: no fresh sample for "
                                f"{threads} host threads")
                continue
            check_metric(f"steps/sec @ {threads} host threads",
                         entry["steps_per_sec"],
                         fresh_by_threads[threads], threshold, failures)
    # Peak RSS rides next to steps/sec so weight-image duplication
    # (per-core or per-appliance weight copies creeping back in)
    # cannot regress silently. Lower is better; the host threshold
    # absorbs allocator noise across machines.
    if "peak_rss_bytes" in base:
        if "peak_rss_bytes" not in fresh:
            failures.append("sim_speed: fresh JSON lacks the "
                            "'peak_rss_bytes' record the baseline has")
        else:
            check_metric_lower_better(
                "peak RSS (MB)", base["peak_rss_bytes"] / 2**20,
                fresh["peak_rss_bytes"] / 2**20, threshold, failures)


def check_codegen(base: dict, fresh: dict, host_threshold: float,
                  failures: list, like_for_like: bool) -> None:
    """Program-cache gate (``codegen`` section): the warm decode loop
    must run from the template cache (hit rate >= 0.95 — below that,
    templates are being recompiled per step and the compile-once/
    patch-per-token contract is broken), cached steps/sec must not
    regress vs. baseline, and on the timing-only path — where host
    codegen is a visible share of a step — the cached share must stay
    at most half the fresh share (the within-run ratio is machine-
    independent, unlike the absolute steps/sec)."""
    print("bench_sim_speed codegen (program cache A/B):")
    for mode in ("functional", "timing"):
        if mode not in base:
            continue
        if mode not in fresh:
            failures.append(f"codegen: fresh JSON lacks the '{mode}' "
                            f"A/B record the baseline has")
            continue
        f = fresh[mode]
        print(f"  {mode}: warm hit {f['warm_hit_rate']:.3f}, codegen "
              f"share {f['codegen_share_fresh']:.4f} fresh -> "
              f"{f['codegen_share_cached']:.4f} cached, "
              f"{f['speedup']:.3f}x steps/sec")
        if f["warm_hit_rate"] < 0.95:
            failures.append(
                f"codegen: {mode} warm hit rate "
                f"{f['warm_hit_rate']:.3f} below the 0.95 floor "
                f"(templates are being recompiled inside the decode "
                f"loop)")
        if like_for_like:
            check_metric(f"codegen {mode} cached steps/sec",
                         base[mode]["cache_enabled_steps_per_sec"],
                         f["cache_enabled_steps_per_sec"], host_threshold,
                         failures)
        else:
            print(f"  (kernels differ — {mode} cached steps/sec not "
                  f"compared; hit-rate and share gates still apply)")
    if "timing" in fresh:
        f = fresh["timing"]
        if f["codegen_share_cached"] > 0.5 * f["codegen_share_fresh"]:
            failures.append(
                f"codegen: timing-only cached codegen share "
                f"{f['codegen_share_cached']:.4f} is more than half "
                f"the fresh share {f['codegen_share_fresh']:.4f} — "
                f"the cache is no longer removing codegen from the "
                f"step")


def check_serving_sweep(label: str, base_sweep: list, fresh_sweep: list,
                        threshold: float, failures: list) -> None:
    fresh_by_inflight = {e["in_flight"]: e for e in fresh_sweep}
    prev_tp = 0.0
    for entry in base_sweep:
        in_flight = entry["in_flight"]
        fresh = fresh_by_inflight.get(in_flight)
        if fresh is None:
            failures.append(f"{label}: no fresh sample for "
                            f"{in_flight} in-flight")
            continue
        tp = fresh["throughput_tok_per_sec"]
        check_metric(f"{label} tok/s @ {in_flight} in-flight",
                     entry["throughput_tok_per_sec"], tp, threshold,
                     failures)
        if tp <= prev_tp:
            failures.append(f"{label}: throughput not monotonic at "
                            f"{in_flight} in-flight "
                            f"({tp:.1f} <= {prev_tp:.1f})")
        prev_tp = tp


def check_latency_vs_load(base: dict, fresh: dict, threshold: float,
                          failures: list) -> None:
    """Open-loop serving gate: TTFT must not regress beyond the
    threshold at any offered load, and the fresh TTFT p99 curve must
    be monotone non-decreasing with offered load (the arrival pattern
    is seed-fixed and rate-scaled, so heavier traffic can only queue
    longer — a dip means the scheduler's clock accounting broke)."""
    print("bench_serving latency_vs_load (open-loop TTFT):")
    fresh_by_rps = {e["offered_rps"]: e for e in fresh["sweep"]}
    for entry in base["sweep"]:
        rps = entry["offered_rps"]
        f = fresh_by_rps.get(rps)
        if f is None:
            failures.append(f"latency_vs_load: no fresh sample for "
                            f"{rps} req/s")
            continue
        check_metric_lower_better(
            f"ttft mean (s) @ {rps:g} req/s",
            entry["ttft_mean_sec"], f["ttft_mean_sec"], threshold,
            failures)
        check_metric_lower_better(
            f"ttft p99 (s) @ {rps:g} req/s",
            entry["ttft_p99_sec"], f["ttft_p99_sec"], threshold,
            failures)
    prev_rps, prev_p99 = None, None
    for e in sorted(fresh["sweep"], key=lambda e: e["offered_rps"]):
        if prev_p99 is not None and e["ttft_p99_sec"] < prev_p99:
            failures.append(
                f"latency_vs_load: ttft p99 not monotone with offered "
                f"load ({e['offered_rps']:g} req/s "
                f"{e['ttft_p99_sec']:.4f} < {prev_rps:g} req/s "
                f"{prev_p99:.4f})")
        prev_rps, prev_p99 = e["offered_rps"], e["ttft_p99_sec"]


def check_work_stealing(base: dict, fresh: dict, threshold: float,
                        failures: list) -> None:
    """Work stealing must strictly beat static placement on the
    imbalanced scenario, and the stolen makespan must not regress."""
    print("bench_serving work_stealing (imbalanced makespan):")
    static_s = fresh["makespan_static_sec"]
    steal_s = fresh["makespan_steal_sec"]
    print(f"  static {static_s:.4f}s -> steal {steal_s:.4f}s "
          f"({fresh['steals']} steals)")
    if steal_s >= static_s:
        failures.append(f"work_stealing: stealing did not improve the "
                        f"imbalanced makespan ({steal_s:.4f}s >= "
                        f"{static_s:.4f}s)")
    check_metric_lower_better("steal makespan (s)",
                              base["makespan_steal_sec"], steal_s,
                              threshold, failures)


def check_faults(base: dict, fresh: dict, threshold: float,
                 failures: list) -> None:
    """Fault-injection gate: an empty plan must leave the serve
    bit-identical, every kill-one-of-two request must complete with
    serial-identical tokens, recovery makespan must beat the naive
    no-failover bound (survivor draining everything from scratch) and
    not regress vs. baseline, the straggler window must cost between
    1x and the slowdown factor x the healthy makespan, and the shed
    scenario must shed (reported, never failed or dropped)."""
    print("bench_serving faults (failover + degradation):")
    if not fresh.get("empty_plan_identical", False):
        failures.append("faults: an empty FaultPlan perturbed the "
                        "closed-loop serve (bit-identity broken)")
    for name in ("kill_petite", "kill_345m"):
        if name not in fresh:
            failures.append(f"faults: fresh JSON lacks '{name}'")
            continue
        k = fresh[name]
        print(f"  {name}: healthy {k['makespan_healthy_sec']:.4f}s -> "
              f"faulted {k['makespan_faulted_sec']:.4f}s "
              f"(naive {k['makespan_naive_sec']:.4f}s, "
              f"{k['failovers']} failovers, {k['retries']} retries)")
        if not k["makespan_faulted_sec"] < k["makespan_naive_sec"]:
            failures.append(
                f"faults: {name} recovery makespan "
                f"{k['makespan_faulted_sec']:.4f}s does not beat the "
                f"naive no-failover bound "
                f"{k['makespan_naive_sec']:.4f}s")
        if k["failovers"] < 1:
            failures.append(f"faults: {name} recorded no failovers")
        if "tokens_match_serial" in k and not k["tokens_match_serial"]:
            failures.append(f"faults: {name} tokens diverged from the "
                            f"serial reference")
        if name in base:
            check_metric_lower_better(
                f"{name} recovery makespan (s)",
                base[name]["makespan_faulted_sec"],
                k["makespan_faulted_sec"], threshold, failures)
    if "straggler_345m" in fresh:
        s = fresh["straggler_345m"]
        lo = s["makespan_healthy_sec"]
        hi = s["slowdown_factor"] * lo
        print(f"  straggler_345m: healthy {lo:.4f}s -> "
              f"faulted {s['makespan_faulted_sec']:.4f}s")
        if not lo < s["makespan_faulted_sec"] < hi:
            failures.append(
                f"faults: straggler makespan "
                f"{s['makespan_faulted_sec']:.4f}s outside "
                f"({lo:.4f}s, {hi:.4f}s)")
        if "straggler_345m" in base:
            check_metric_lower_better(
                "straggler makespan (s)",
                base["straggler_345m"]["makespan_faulted_sec"],
                s["makespan_faulted_sec"], threshold, failures)
    else:
        failures.append("faults: fresh JSON lacks 'straggler_345m'")
    if "shed_petite" in fresh:
        d = fresh["shed_petite"]
        print(f"  shed_petite: {d['shed']} shed, {d['completed']} "
              f"completed, {d['failed']} failed")
        if d["shed"] < 1:
            failures.append("faults: shed scenario shed nothing")
        if d["failed"] != 0:
            failures.append(f"faults: shed scenario failed "
                            f"{d['failed']} requests")
        if not d.get("tokens_match_serial", False):
            failures.append("faults: shed scenario's completed tokens "
                            "diverged from the serial reference")
    else:
        failures.append("faults: fresh JSON lacks 'shed_petite'")


def check_capacity(base: dict, fresh: dict, threshold: float,
                   failures: list) -> None:
    """Paged-KV capacity gate: at an HBM budget that holds
    ``hbm_parity_contexts`` unpaged contexts, block tables plus prefix
    sharing must keep at least 2x that many contexts resident under the
    shared-system-prompt workload (hard floor, not thresholded), the
    prefix cache must actually hit, tokens must stay serial-identical,
    and the modeled throughput/makespan must not regress."""
    print("bench_serving capacity (paged-KV consolidation):")
    peak = fresh["peak_resident_paged"]
    parity = fresh["hbm_parity_contexts"]
    print(f"  peak resident {peak} paged vs {parity} unpaged "
          f"({fresh['resident_ratio']:.2f}x), prefix hit rate "
          f"{fresh['prefix_hit_rate']:.3f}, shared tokens "
          f"{fresh['shared_token_fraction']:.3f}")
    if fresh["resident_ratio"] < 2.0:
        failures.append(
            f"capacity: resident ratio {fresh['resident_ratio']:.2f}x "
            f"below the 2x consolidation floor ({peak} paged vs "
            f"{parity} unpaged contexts at the same HBM)")
    if peak < base["peak_resident_paged"]:
        failures.append(
            f"capacity: peak resident contexts dropped to {peak} from "
            f"the baseline {base['peak_resident_paged']}")
    if "prefix_hit_rate" not in fresh:
        failures.append("capacity: fresh JSON lacks 'prefix_hit_rate'")
    elif fresh["prefix_hit_rate"] <= 0.0:
        failures.append("capacity: the prefix cache never hit under a "
                        "fully shared system prompt")
    if not fresh.get("tokens_match_serial", False):
        failures.append("capacity: paged tokens diverged from the "
                        "serial reference")
    check_metric("capacity paged tok/s",
                 base["throughput_paged_tok_per_sec"],
                 fresh["throughput_paged_tok_per_sec"], threshold,
                 failures)
    check_metric_lower_better("capacity paged makespan (s)",
                              base["makespan_paged_sec"],
                              fresh["makespan_paged_sec"], threshold,
                              failures)


def check_fleet(base: dict, fresh: dict, threshold: float,
                failures: list) -> None:
    """Fleet-scale serving gate: the functional identity section must
    report serial-identical tokens (and disaggregated == colocated)
    at every offered load, each topology's saturation throughput must
    not regress beyond the threshold, the fresh TTFT-p99 curve must
    be monotone non-decreasing with offered load (one seed-fixed
    arrival pattern at different intensities — a dip means the event
    queue or router clock accounting broke), and the disaggregated
    topology must actually move KV over the modeled link."""
    print("bench_fleet (fleet topology sweeps):")
    ident = fresh.get("identity", {})
    if not ident.get("tokens_match_serial", False):
        failures.append("fleet: tokens diverged from the serial "
                        "single-node reference (invariant 10)")
    if not ident.get("disagg_matches_colocated", False):
        failures.append("fleet: disaggregated tokens diverged from "
                        "the colocated run")
    fresh_topos = {t["name"]: t
                   for t in fresh["calibrated"]["topologies"]}
    for entry in base["calibrated"]["topologies"]:
        name = entry["name"]
        t = fresh_topos.get(name)
        if t is None:
            failures.append(f"fleet: no fresh sweep for topology "
                            f"{name}")
            continue
        check_metric(f"fleet {name} saturation tok/s",
                     entry["saturation_throughput_tok_per_sec"],
                     t["saturation_throughput_tok_per_sec"],
                     threshold, failures)
        prev_frac, prev_p99 = None, None
        for p in sorted(t["ttft_vs_load"],
                        key=lambda p: p["load_fraction"]):
            if prev_p99 is not None and p["ttft_p99_sec"] < prev_p99:
                failures.append(
                    f"fleet: {name} ttft p99 not monotone with load "
                    f"({p['load_fraction']:g}x "
                    f"{p['ttft_p99_sec']:.4f} < {prev_frac:g}x "
                    f"{prev_p99:.4f})")
            prev_frac = p["load_fraction"]
            prev_p99 = p["ttft_p99_sec"]
        if t.get("disaggregated", False) and t["kv_transfers"] < 1:
            failures.append(f"fleet: disaggregated topology {name} "
                            f"recorded no KV transfers")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", type=Path,
                        default=REPO_ROOT / "build")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression for the "
                             "deterministic modeled metrics (0.25 = "
                             "fail below 75%% of baseline)")
    parser.add_argument("--host-threshold", type=float, default=None,
                        help="allowed fractional regression for "
                             "host-machine-dependent metrics (steps/sec)."
                             " Defaults to --threshold; CI passes a "
                             "looser value because runner hardware "
                             "differs from the baseline machine")
    parser.add_argument("--skip-run", action="store_true",
                        help="compare existing JSON in the build dir "
                             "instead of re-running the benches")
    parser.add_argument("--update", action="store_true",
                        help="copy fresh JSON over the committed "
                             "baselines instead of comparing")
    args = parser.parse_args()

    if not args.skip_run:
        run_benches(args.build_dir)

    if args.update:
        for name in ("BENCH_sim_speed.json", "BENCH_serving.json",
                     "BENCH_fleet.json"):
            shutil.copy(args.build_dir / name, REPO_ROOT / name)
            print(f"updated {REPO_ROOT / name}")
        return 0

    host_threshold = (args.host_threshold
                      if args.host_threshold is not None
                      else args.threshold)

    failures: list = []
    base_sim = load(REPO_ROOT / "BENCH_sim_speed.json")
    fresh_sim = load(args.build_dir / "BENCH_sim_speed.json")
    like_for_like = simd_kernel(base_sim) == simd_kernel(fresh_sim)
    check_sim_speed(base_sim, fresh_sim, host_threshold, failures,
                    like_for_like)
    check_simd(base_sim, fresh_sim, host_threshold, failures)
    if "codegen" in base_sim:
        if "codegen" in fresh_sim:
            check_codegen(base_sim["codegen"], fresh_sim["codegen"],
                          host_threshold, failures, like_for_like)
        else:
            failures.append("sim_speed: fresh JSON lacks the 'codegen' "
                            "section the baseline has")

    base_serving = load(REPO_ROOT / "BENCH_serving.json")
    fresh_serving = load(args.build_dir / "BENCH_serving.json")
    print("bench_serving (modeled serving throughput):")
    check_serving_sweep("serving", base_serving["sweep"],
                        fresh_serving["sweep"], args.threshold, failures)
    if "paper_scale" in base_serving:
        if "paper_scale" in fresh_serving:
            check_serving_sweep("serving-345M",
                                base_serving["paper_scale"]["sweep"],
                                fresh_serving["paper_scale"]["sweep"],
                                args.threshold, failures)
        else:
            failures.append("serving: fresh JSON lacks the "
                            "'paper_scale' sweep the baseline has")
    for section, checker in (("latency_vs_load", check_latency_vs_load),
                             ("work_stealing", check_work_stealing),
                             ("faults", check_faults),
                             ("capacity", check_capacity)):
        if section in base_serving:
            if section in fresh_serving:
                checker(base_serving[section], fresh_serving[section],
                        args.threshold, failures)
            else:
                failures.append(f"serving: fresh JSON lacks the "
                                f"'{section}' section the baseline has")

    base_fleet = load(REPO_ROOT / "BENCH_fleet.json")
    fresh_fleet = load(args.build_dir / "BENCH_fleet.json")
    check_fleet(base_fleet, fresh_fleet, args.threshold, failures)

    if failures:
        print("\nPERF GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        print("\nIf the change is intentional, refresh the baselines "
              "with scripts/check_bench.py --update and commit them.")
        return 1
    print("\nperf gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
