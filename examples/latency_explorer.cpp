/**
 * @file
 * Command-line latency explorer: run any (model, cluster size,
 * input:output) point on the DFX timing simulator and the GPU
 * baseline, with the full per-category breakdown.
 *
 * Usage:
 *   latency_explorer [model] [fpgas] [n_in] [n_out]
 *   latency_explorer 1.5B 4 32 256
 *
 * Models: 345M, 774M, 1.5B, mini, toy.
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "appliance/appliance.hpp"
#include "baseline/gpu.hpp"
#include "perf/energy.hpp"

using namespace dfx;

int
main(int argc, char **argv)
{
    std::string model_name = argc > 1 ? argv[1] : "1.5B";
    size_t fpgas = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
    size_t n_in = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 32;
    size_t n_out = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 64;

    GptConfig model = GptConfig::byName(model_name);
    std::printf("model %s | %zu FPGA(s) | [%zu:%zu]\n\n",
                model.name.c_str(), fpgas, n_in, n_out);

    DfxSystemConfig cfg;
    cfg.model = model;
    cfg.nCores = fpgas;
    cfg.functional = false;
    DfxAppliance appliance(cfg);
    GenerationResult r =
        appliance.generate(std::vector<int32_t>(n_in, 0), n_out);

    std::printf("DFX (simulated):\n");
    std::printf("  summarization  %10.2f ms\n",
                r.summarizationSeconds * 1e3);
    std::printf("  generation     %10.2f ms\n",
                r.generationSeconds * 1e3);
    std::printf("  PCIe           %10.3f ms\n", r.pcieSeconds * 1e3);
    std::printf("  total          %10.2f ms  (%.1f tokens/s)\n",
                r.totalSeconds() * 1e3, r.tokensPerSecond(n_out));
    std::printf("  breakdown:\n");
    double stage = r.summarizationSeconds + r.generationSeconds;
    for (size_t c = 0; c < kNumCategories; ++c) {
        if (r.categorySeconds[c] <= 0.0)
            continue;
        std::printf("    %-22s %8.2f ms (%4.1f%%)\n",
                    isa::categoryName(static_cast<isa::Category>(c)),
                    r.categorySeconds[c] * 1e3,
                    100.0 * r.categorySeconds[c] / stage);
    }

    if (model.heads % fpgas == 0) {
        GpuEstimate g =
            GpuApplianceModel(model, fpgas).estimate(n_in, n_out);
        std::printf("\nGPU appliance (%zu V100s, modeled):\n", fpgas);
        std::printf("  total          %10.2f ms  (%.1f tokens/s)\n",
                    g.totalSeconds() * 1e3, g.tokensPerSecond(n_out));
        std::printf("  DFX speedup    %10.2fx\n",
                    g.totalSeconds() / r.totalSeconds());
        EnergyModel energy;
        double dfx_eff = EnergyModel::tokensPerSecPerWatt(
            r.tokensPerSecond(n_out), energy.dfxPowerWatts(fpgas));
        double gpu_eff = EnergyModel::tokensPerSecPerWatt(
            g.tokensPerSecond(n_out),
            energy.gpuPowerWatts(fpgas, 0.03));
        std::printf("  energy-efficiency ratio %.2fx\n",
                    dfx_eff / gpu_eff);
    }
    return 0;
}
