/**
 * @file
 * Dialogue-system example (paper §II-A: "the chatbot service has an
 * average input token request of length 50, then produces an output
 * token of length 50, having a ratio of 1:1").
 *
 * Runs a short multi-turn conversation on a functional mini-model
 * cluster, then reports what the same 1:1 workload costs at full
 * GPT-2 1.5B scale on the 4-FPGA timing simulation vs the 4-GPU
 * baseline — the deployment question a datacenter operator would ask.
 */
#include <cstdio>

#include "appliance/appliance.hpp"
#include "baseline/gpu.hpp"
#include "model/tokenizer.hpp"

using namespace dfx;

int
main()
{
    // --- interactive-style conversation on the functional simulator --
    GptConfig model = GptConfig::mini();
    GptWeights weights = GptWeights::random(model, 7);
    DfxSystemConfig config;
    config.model = model;
    config.nCores = 4;
    config.functional = true;
    DfxAppliance appliance(config);
    appliance.loadWeights(weights);
    Tokenizer tok(model.vocabSize);

    const char *user_turns[] = {
        "hello ! how are you ?",
        "tell me a story about a king and a river",
        "what happens at the end ?",
    };
    std::printf("=== chatbot on a 4-FPGA DFX cluster (mini model) ===\n");
    for (const char *turn : user_turns) {
        std::vector<int32_t> prompt = tok.encode(turn);
        GenerationResult r = appliance.generate(prompt, prompt.size());
        std::printf("\nuser: %s\n", turn);
        std::printf("bot:  %s\n", tok.decode(r.tokens).c_str());
        std::printf("      (%zu in / %zu out, %.2f ms simulated)\n",
                    prompt.size(), r.tokens.size(),
                    r.totalSeconds() * 1e3);
    }

    // --- the same workload at datacenter scale ------------------------
    std::printf("\n=== 1:1 chatbot workload at GPT-2 1.5B scale ===\n");
    GptConfig big = GptConfig::gpt2_1_5B();
    DfxSystemConfig big_cfg;
    big_cfg.model = big;
    big_cfg.nCores = 4;
    big_cfg.functional = false;
    DfxAppliance dfx(big_cfg);
    GpuApplianceModel gpu(big, 4);
    for (size_t tokens : {16u, 50u, 64u}) {
        double dfx_ms =
            dfx.generate(std::vector<int32_t>(tokens, 0), tokens)
                .totalSeconds() * 1e3;
        double gpu_ms = gpu.estimate(tokens, tokens).totalSeconds() * 1e3;
        std::printf("  [%zu:%zu]  DFX %8.1f ms   GPU %8.1f ms   "
                    "speedup %.2fx\n",
                    tokens, tokens, dfx_ms, gpu_ms, gpu_ms / dfx_ms);
    }
    std::printf("(the paper's representative chatbot point, 64:64, "
                "motivates Table II's cost analysis)\n");
    return 0;
}
