/**
 * @file
 * A guided tour of the DFX stack for new users: what the codegen
 * emits for a decoder layer (assembly listing), how the model is laid
 * out in HBM/DDR, what one token costs where, and what the core
 * would occupy on a real U280.
 */
#include <cstdio>

#include "appliance/appliance.hpp"
#include "isa/assembler.hpp"
#include "isa/codegen.hpp"
#include "perf/resource.hpp"

using namespace dfx;

int
main()
{
    GptConfig model = GptConfig::gpt2_1_5B();
    DfxSystemConfig config;
    config.model = model;
    config.nCores = 4;
    config.functional = false;
    DfxCluster cluster(config);

    // --- 1. the instruction stream ------------------------------------
    std::printf("=== 1. Decoder-layer phase A for core 0 "
                "(layer 0, position 4) ===\n\n");
    ClusterGeometry geometry{config.nCores};
    isa::ProgramBuilder builder(model, geometry, cluster.layout(), 0);
    auto phases = builder.layerPhases(0, 4);
    std::string listing = isa::formatProgram(phases[0].program);
    // Print the first 24 lines — LN chain, V/K/Q Conv1Ds, first head.
    size_t shown = 0, pos = 0;
    while (shown < 24 && pos < listing.size()) {
        size_t nl = listing.find('\n', pos);
        std::printf("  %s\n", listing.substr(pos, nl - pos).c_str());
        pos = nl + 1;
        ++shown;
    }
    std::printf("  ... (%zu instructions in phase A; %zu phases, 4 "
                "ring syncs per layer)\n\n",
                phases[0].program.size(), phases.size());

    // --- 2. the memory map ---------------------------------------------
    std::printf("=== 2. Per-FPGA memory map (1.5B over 4 FPGAs) ===\n\n");
    const MemoryLayout &ml = cluster.layout();
    std::printf("  HBM per core: %.2f GB of %d GB (weight shards, KV "
                "cache, LM head)\n",
                static_cast<double>(ml.hbmBytes()) / 1e9, 8);
    std::printf("  DDR per core: %.2f GB of %d GB (biases, LN params, "
                "WTE/WPE)\n",
                static_cast<double>(ml.ddrBytes()) / 1e9, 32);
    std::printf("  layer 0 shard: wq@0x%llx wfc1@0x%llx K-cache@0x%llx\n\n",
                static_cast<unsigned long long>(ml.layers[0].wq),
                static_cast<unsigned long long>(ml.layers[0].wfc1),
                static_cast<unsigned long long>(ml.layers[0].keyBase));

    // --- 3. what one token costs ----------------------------------------
    std::printf("=== 3. One token through 48 layers on 4 FPGAs ===\n\n");
    TokenStats stats;
    cluster.stepToken(0, &stats);
    std::printf("  %.3f ms total (%llu instructions/core-step, %.1f MB "
                "HBM streamed)\n",
                stats.seconds * 1e3,
                static_cast<unsigned long long>(stats.instructions),
                static_cast<double>(stats.hbmBytes) / 1e6);
    for (size_t c = 0; c < kNumCategories; ++c) {
        if (stats.categorySeconds[c] <= 0.0)
            continue;
        std::printf("    %-22s %7.1f us (%4.1f%%)\n",
                    isa::categoryName(static_cast<isa::Category>(c)),
                    stats.categorySeconds[c] * 1e6,
                    100.0 * stats.categorySeconds[c] / stats.seconds);
    }

    // --- 4. the silicon -------------------------------------------------
    std::printf("\n=== 4. U280 resource footprint of one core ===\n\n");
    ResourceModel rm(64, 16);
    ResourceUsage t = rm.total();
    std::printf("  LUT %.1f%%  FF %.1f%%  BRAM %.1f%%  URAM %.1f%%  "
                "DSP %.1f%%  -> fits: %s\n",
                ResourceModel::lutPct(t), ResourceModel::ffPct(t),
                ResourceModel::bramPct(t), ResourceModel::uramPct(t),
                ResourceModel::dspPct(t), rm.fits() ? "yes" : "no");
    return 0;
}
