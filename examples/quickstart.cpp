/**
 * @file
 * Quickstart: bring up a DFX appliance, load a model, generate text.
 *
 * Uses the reduced `mini` configuration with synthetic weights so the
 * functional simulation (real FP16 arithmetic through the whole
 * MPU/VPU/ring stack) runs in seconds. Swap in
 * GptConfig::gpt2_1_5B() with functional=false for full-scale timing
 * studies.
 */
#include <cstdio>

#include "appliance/appliance.hpp"
#include "model/tokenizer.hpp"

using namespace dfx;

int
main()
{
    // 1. Pick a model and a cluster size (heads must divide evenly).
    GptConfig model = GptConfig::mini();

    // 2. Configure the appliance: 2 simulated U280 FPGAs in a ring,
    //    functional mode (real data plane). Weights come from the
    //    shared on-demand store — one image for the whole appliance,
    //    tensors generated on first touch (set DFX_WEIGHT_CACHE to a
    //    directory to reuse the image across runs).
    DfxSystemConfig config;
    config.model = model;
    config.nCores = 2;
    config.functional = true;
    config.weightStore = makeWeightStore(config, /*seed=*/2022);
    DfxAppliance appliance(config);

    // 3. Tokenize a prompt and run the text-generation service.
    Tokenizer tokenizer(model.vocabSize);
    std::string prompt_text = "hello , my name is";
    std::vector<int32_t> prompt = tokenizer.encode(prompt_text);
    std::printf("prompt: \"%s\" (%zu tokens)\n", prompt_text.c_str(),
                prompt.size());

    GenerationResult result = appliance.generate(prompt, 12);

    // 4. Inspect the output and the simulated hardware's accounting.
    std::printf("generated: \"%s\"\n",
                tokenizer.decode(result.tokens).c_str());
    std::printf("\nsimulated DFX timing (2 FPGAs):\n");
    std::printf("  summarization stage: %.3f ms\n",
                result.summarizationSeconds * 1e3);
    std::printf("  generation stage:    %.3f ms\n",
                result.generationSeconds * 1e3);
    std::printf("  PCIe:                %.3f ms\n",
                result.pcieSeconds * 1e3);
    std::printf("  throughput:          %.1f tokens/s\n",
                result.tokensPerSecond(result.tokens.size()));
    std::printf("  instructions issued: %llu\n",
                static_cast<unsigned long long>(result.instructions));
    std::printf("  HBM bytes streamed:  %.1f MB\n",
                static_cast<double>(result.hbmBytes) / 1e6);
    return 0;
}
