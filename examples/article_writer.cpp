/**
 * @file
 * Topic-to-essay example (paper §II-A: the article-writing
 * application takes up to 50 input tokens and produces up to 150,
 * i.e. generation-heavy ratios up to 1:150 — exactly the regime
 * where the GPU collapses and DFX shines).
 *
 * Generates a (synthetic-model) "article" from a topic prompt, then
 * sweeps the input:output ratio at 1.5B scale to show where the
 * DFX-vs-GPU crossover sits (paper: DFX wins whenever the ratio is
 * below 4:1 input:output).
 */
#include <cstdio>

#include "appliance/appliance.hpp"
#include "baseline/gpu.hpp"
#include "model/tokenizer.hpp"

using namespace dfx;

int
main()
{
    // --- write an "article" with the functional simulator ------------
    GptConfig model = GptConfig::mini();
    GptWeights weights = GptWeights::random(model, 11);
    DfxSystemConfig config;
    config.model = model;
    config.nCores = 2;
    config.functional = true;
    DfxAppliance appliance(config);
    appliance.loadWeights(weights);
    Tokenizer tok(model.vocabSize);

    std::string topic = "the story of machine learning in the datacenter";
    std::vector<int32_t> prompt = tok.encode(topic);
    GenerationResult r = appliance.generate(prompt, 48);
    std::printf("topic: %s\n\n", topic.c_str());
    std::printf("article (%zu tokens):\n%s\n", r.tokens.size(),
                tok.decode(r.tokens).c_str());
    std::printf("\nsimulated latency: %.2f ms (%.1f tokens/s)\n",
                r.totalSeconds() * 1e3,
                r.tokensPerSecond(r.tokens.size()));

    // --- ratio sweep at 1.5B scale: where does DFX win? ---------------
    std::printf("\n=== input:output ratio sweep, GPT-2 1.5B, 4v4 ===\n");
    GptConfig big = GptConfig::gpt2_1_5B();
    DfxSystemConfig big_cfg;
    big_cfg.model = big;
    big_cfg.nCores = 4;
    big_cfg.functional = false;
    DfxAppliance dfx(big_cfg);
    GpuApplianceModel gpu(big, 4);
    struct Ratio { size_t in, out; };
    Ratio ratios[] = {{256, 16}, {128, 16}, {64, 16}, {64, 32},
                      {50, 50}, {50, 150}, {32, 256}};
    for (const auto &[n_in, n_out] : ratios) {
        double dfx_ms = dfx.generate(std::vector<int32_t>(n_in, 0), n_out)
                            .totalSeconds() * 1e3;
        double gpu_ms = gpu.estimate(n_in, n_out).totalSeconds() * 1e3;
        std::printf("  [%3zu:%3zu]  DFX %8.1f ms   GPU %8.1f ms   %s "
                    "(%.2fx)\n",
                    n_in, n_out, dfx_ms, gpu_ms,
                    gpu_ms > dfx_ms ? "DFX wins" : "GPU wins",
                    gpu_ms / dfx_ms);
    }
    std::printf("(paper: DFX is faster whenever input:output < 4:1 — "
                "all realistic text-generation services)\n");
    return 0;
}
