/**
 * @file
 * Fleet serving tests: router determinism (same seed + topology =>
 * bit-identical placement and tokens), determinism invariant 10
 * (every routing policy yields tokens bit-identical to a serial
 * single-node reference), disaggregated == colocated token identity
 * with exact KV-transfer accounting, fleet fail-stop rerouting that
 * completes every request, deterministic same-instant tie-breaks, a
 * calibrated 10^4-request smoke sweep under a wall-clock ceiling, and
 * the zero-request epoch with faults armed.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "appliance/fleet.hpp"
#include "appliance/workload.hpp"
#include "model/weights.hpp"

namespace dfx {
namespace {

/** Functional toy config with a shared weight image: every appliance
 *  built from it (fleet nodes, serial reference) maps the same
 *  weights, so token comparisons are meaningful and cheap. */
DfxSystemConfig
functionalConfig(size_t kv_contexts)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 2;
    cfg.functional = true;
    cfg.kvContexts = kv_contexts;
    cfg.weightStore = makeWeightStore(cfg, 901);
    return cfg;
}

/** Distinct deterministic prompts within the toy vocab (97), arrivals
 *  staggered so admission interleaves across rounds. */
std::vector<ServerRequest>
distinctRequests(size_t n, size_t n_in, size_t n_out,
                 double inter_arrival = 0.0)
{
    std::vector<ServerRequest> reqs;
    for (size_t i = 0; i < n; ++i) {
        ServerRequest r;
        for (size_t j = 0; j < n_in; ++j)
            r.prompt.push_back(
                static_cast<int32_t>((i * 31 + j * 7 + 3) % 97));
        r.nOut = n_out;
        r.arrivalSeconds = inter_arrival * static_cast<double>(i);
        reqs.push_back(std::move(r));
    }
    return reqs;
}

/** The invariant-10 reference: each request generated alone on one
 *  appliance sharing the fleet's weight image. */
std::vector<std::vector<int32_t>>
serialReference(const DfxSystemConfig &cfg,
                const std::vector<ServerRequest> &reqs)
{
    DfxAppliance serial(cfg);
    std::vector<std::vector<int32_t>> tokens;
    for (const ServerRequest &r : reqs)
        tokens.push_back(serial.generate(r.prompt, r.nOut).tokens);
    return tokens;
}

TEST(Fleet, IdenticalRunsAreBitIdentical)
{
    // Same config, topology, options and workload => identical
    // placement, timestamps, tokens and event counts — across two
    // fleet instances AND across epochs of the same instance.
    const DfxSystemConfig cfg = functionalConfig(2);
    FleetTopology topo;
    topo.nNodes = 2;
    const auto reqs = distinctRequests(6, 5, 8, 1e-4);

    DfxFleet a(cfg, topo), b(cfg, topo);
    FleetStats sa = a.serve(reqs);
    FleetStats sb = b.serve(reqs);
    FleetStats sa2 = a.serve(reqs);  // epoch reset determinism

    for (const FleetStats *s : {&sb, &sa2}) {
        ASSERT_EQ(s->results.size(), sa.results.size());
        EXPECT_EQ(s->eventsProcessed, sa.eventsProcessed);
        EXPECT_DOUBLE_EQ(s->makespanSeconds, sa.makespanSeconds);
        for (size_t i = 0; i < sa.results.size(); ++i) {
            const RequestResult &x = sa.results[i];
            const RequestResult &y = s->results[i];
            EXPECT_EQ(y.id, x.id);
            EXPECT_EQ(y.cluster, x.cluster) << "placement diverged";
            EXPECT_EQ(y.stolen, x.stolen);
            EXPECT_EQ(y.tokens, x.tokens);
            EXPECT_DOUBLE_EQ(y.admitSimSeconds, x.admitSimSeconds);
            EXPECT_DOUBLE_EQ(y.firstTokenSimSeconds,
                             x.firstTokenSimSeconds);
            EXPECT_DOUBLE_EQ(y.finishSimSeconds, x.finishSimSeconds);
        }
    }
}

TEST(Fleet, EveryPolicyMatchesSerialReference)
{
    // Determinism invariant 10: routing decides where and when a
    // request runs, never what it generates.
    const DfxSystemConfig cfg = functionalConfig(2);
    const auto reqs = distinctRequests(6, 4, 8, 5e-5);
    const auto expected = serialReference(cfg, reqs);

    for (FleetRoutePolicy policy : {FleetRoutePolicy::RoundRobin,
                                    FleetRoutePolicy::LeastLoaded,
                                    FleetRoutePolicy::ProjectedTtft}) {
        FleetTopology topo;
        topo.nNodes = 2;
        FleetOptions opt;
        opt.policy = policy;
        DfxFleet fleet(cfg, topo, opt);
        FleetStats stats = fleet.serve(reqs);
        ASSERT_EQ(stats.results.size(), reqs.size());
        EXPECT_EQ(stats.completedRequests, reqs.size());
        for (size_t i = 0; i < reqs.size(); ++i) {
            EXPECT_EQ(stats.results[i].id, i);
            EXPECT_EQ(stats.results[i].outcome,
                      RequestOutcome::Completed);
            EXPECT_EQ(stats.results[i].tokens, expected[i])
                << "request " << i << " diverged under "
                << toString(policy);
        }
    }
}

TEST(Fleet, DisaggregatedMatchesColocatedTokens)
{
    const DfxSystemConfig cfg = functionalConfig(2);
    const size_t n = 6, n_in = 6, n_out = 8;
    const auto reqs = distinctRequests(n, n_in, n_out, 1e-4);
    const auto expected = serialReference(cfg, reqs);

    FleetTopology colocated;
    colocated.nNodes = 2;
    DfxFleet co(cfg, colocated);
    FleetStats co_stats = co.serve(reqs);
    EXPECT_EQ(co_stats.kvTransfers, 0u);
    EXPECT_EQ(co_stats.kvTransferBytes, 0u);

    FleetTopology disagg;
    disagg.nNodes = 2;
    disagg.roles = {FleetNodeRole::Prefill, FleetNodeRole::Decode};
    ASSERT_TRUE(disagg.disaggregated());
    DfxFleet pd(cfg, disagg);
    FleetStats pd_stats = pd.serve(reqs);

    ASSERT_EQ(pd_stats.results.size(), n);
    EXPECT_EQ(pd_stats.completedRequests, n);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(pd_stats.results[i].tokens, expected[i])
            << "request " << i << " diverged under disaggregation";
        EXPECT_EQ(pd_stats.results[i].tokens,
                  co_stats.results[i].tokens);
        // Decode (and thus retirement) happens on the decode node.
        EXPECT_EQ(pd_stats.results[i].cluster, 1u);
    }

    // Exact transfer accounting: one handoff per request, bytes =
    // prompt tokens * 4 * layers * embedding (unpaged => block
    // granularity 1), strictly positive modeled wire time.
    const GptConfig &m = cfg.model;
    const uint64_t per_token =
        static_cast<uint64_t>(4 * m.layers * m.embedding);
    EXPECT_EQ(pd_stats.kvTransfers, n);
    EXPECT_EQ(pd_stats.kvTransferBytes, n * n_in * per_token);
    EXPECT_GT(pd_stats.kvTransferSeconds, 0.0);
    EXPECT_EQ(pd_stats.nodes[0].kvTransfersOut, n);
    EXPECT_EQ(pd_stats.nodes[1].kvTransfersIn, n);
    EXPECT_EQ(pd_stats.nodes[0].kvTransfersIn, 0u);
    EXPECT_EQ(pd_stats.nodes[1].kvTransfersOut, 0u);
}

TEST(Fleet, FailStopReroutesAndCompletesEveryRequest)
{
    const DfxSystemConfig cfg = functionalConfig(2);
    const auto reqs = distinctRequests(8, 4, 10, 1e-5);
    const auto expected = serialReference(cfg, reqs);

    FleetTopology topo;
    topo.nNodes = 2;
    DfxFleet baseline(cfg, topo);
    const double makespan = baseline.serve(reqs).makespanSeconds;
    ASSERT_GT(makespan, 0.0);

    // Kill node 0 mid-serve: before the fault the run is identical to
    // the baseline, so node 0 still holds work at 40% of its makespan.
    FleetOptions opt;
    opt.faultPlan.failStops.push_back({0, 0.4 * makespan});
    DfxFleet fleet(cfg, topo, opt);
    FleetStats stats = fleet.serve(reqs);

    EXPECT_EQ(stats.completedRequests, reqs.size());
    EXPECT_EQ(stats.totalFailed, 0u);
    EXPECT_GE(stats.totalFailovers, 1u);
    EXPECT_EQ(stats.nodes[0].health, ClusterHealth::Failed);
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(stats.results[i].tokens, expected[i])
            << "request " << i << " diverged across failover";
        // Everything that retired after the fault retired on node 1.
        if (stats.results[i].finishSimSeconds > 0.4 * makespan) {
            EXPECT_EQ(stats.results[i].cluster, 1u);
        }
    }
    // Rerouted requests surface in the per-node and stolen counters.
    size_t stolen = 0;
    for (const RequestResult &r : stats.results)
        stolen += r.stolen ? 1 : 0;
    EXPECT_EQ(stolen, stats.nodes[1].requestsRerouted);
    EXPECT_GE(stolen, 1u);
}

TEST(Fleet, SameInstantArrivalsPlaceDeterministically)
{
    // Four arrivals at the exact same instant: the event queue's
    // (kind, node, seq) tie-break fires them in submission order, so
    // round-robin placement is the alternating pattern — on every run.
    const DfxSystemConfig cfg = functionalConfig(2);
    const auto reqs = distinctRequests(4, 4, 6, 0.0);
    FleetTopology topo;
    topo.nNodes = 2;
    FleetOptions opt;
    opt.policy = FleetRoutePolicy::RoundRobin;

    DfxFleet fleet(cfg, topo, opt);
    FleetStats first = fleet.serve(reqs);
    FleetStats second = fleet.serve(reqs);
    ASSERT_EQ(first.results.size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(first.results[i].cluster, i % 2)
            << "same-instant arrival " << i
            << " broke round-robin order";
        EXPECT_EQ(second.results[i].cluster, first.results[i].cluster);
    }
}

TEST(Fleet, CalibratedSweepCompletesTenThousandRequests)
{
    // The fleet-scale smoke test: calibrate a round-cost model from a
    // timing-only toy cluster, then sweep 10^4 Poisson requests over
    // a 4-node x 2-cluster fleet. The DES must finish well inside the
    // wall-clock ceiling (the bench runs 10x this volume).
    DfxSystemConfig cal;
    cal.model = GptConfig::toy();
    cal.nCores = 2;
    cal.kvContexts = 4;
    const RoundCostModel model = RoundCostModel::calibrate(cal);
    EXPECT_EQ(model.alpha.size(), 4u);
    EXPECT_GT(model.roundSeconds(4, 16.0), model.roundSeconds(1, 16.0));

    WorkloadSpec spec;
    spec.nRequests = 10000;
    spec.nIn = 8;
    spec.nOut = 16;
    spec.vocab = 97;
    spec.seed = 7;
    const auto reqs = poissonWorkload(spec, 2000.0);

    FleetTopology topo;
    topo.nNodes = 4;
    topo.clustersPerNode = 2;
    FleetOptions opt;
    opt.serveDeadlineHostSeconds = 30.0;
    DfxFleet fleet(model, topo, opt);

    const auto start = std::chrono::steady_clock::now();
    FleetStats stats = fleet.serve(reqs);
    const std::chrono::duration<double> host =
        std::chrono::steady_clock::now() - start;

    EXPECT_EQ(stats.requests, spec.nRequests);
    EXPECT_EQ(stats.completedRequests, spec.nRequests);
    EXPECT_EQ(stats.totalOutputTokens, spec.nRequests * spec.nOut);
    EXPECT_GT(stats.makespanSeconds, 0.0);
    EXPECT_GE(stats.eventsProcessed, spec.nRequests);
    EXPECT_LT(host.count(), 30.0) << "DES too slow for fleet scale";
    // Every node took a share of the load.
    for (const FleetNodeStats &node : stats.nodes)
        EXPECT_GT(node.requestsServed, 0u);
}

TEST(Fleet, ZeroRequestServeWithFaultsArmedReturnsEmptyStats)
{
    const DfxSystemConfig cfg = functionalConfig(2);
    FleetTopology topo;
    topo.nNodes = 2;
    FleetOptions opt;
    opt.faultPlan.failStops.push_back({0, 0.0});
    opt.faultPlan.failStops.push_back({1, 1.0});
    DfxFleet fleet(cfg, topo, opt);
    FleetStats stats = fleet.serve({});
    EXPECT_EQ(stats.requests, 0u);
    EXPECT_EQ(stats.completedRequests, 0u);
    EXPECT_EQ(stats.totalOutputTokens, 0u);
    EXPECT_DOUBLE_EQ(stats.makespanSeconds, 0.0);
    EXPECT_DOUBLE_EQ(stats.throughputTokensPerSec(), 0.0);
    EXPECT_EQ(stats.eventsProcessed, 0u);
    // The armed plan must not wedge the next (real) epoch either.
    FleetStats real = fleet.serve(distinctRequests(3, 4, 6));
    EXPECT_EQ(real.completedRequests + real.totalFailed, 3u);
}

}  // namespace
}  // namespace dfx
