/**
 * @file
 * GPU/TPU baseline model tests: the analytic models must reproduce
 * the paper's measured GPU behaviour (per-token slopes, stage split,
 * breakdown shape) within tolerance.
 */
#include <gtest/gtest.h>

#include "baseline/gpu.hpp"
#include "baseline/tpu.hpp"

namespace dfx {
namespace {

using isa::Category;

TEST(GpuModel, PerTokenSlopeMatchesPaper)
{
    // Paper Fig. 14 slopes: ~37.1 (345M/1GPU), ~62 (774M/2GPU),
    // ~77.6 ms per output token (1.5B/4GPU). Accept +/-15%.
    struct Case { GptConfig cfg; size_t gpus; double paper_ms; };
    Case cases[] = {{GptConfig::gpt2_345M(), 1, 37.1},
                    {GptConfig::gpt2_774M(), 2, 62.0},
                    {GptConfig::gpt2_1_5B(), 4, 77.6}};
    for (const auto &c : cases) {
        GpuApplianceModel gpu(c.cfg, c.gpus);
        GpuEstimate a = gpu.estimate(32, 1);
        GpuEstimate b = gpu.estimate(32, 65);
        double slope_ms = (b.totalSeconds() - a.totalSeconds()) / 64 * 1e3;
        EXPECT_NEAR(slope_ms, c.paper_ms, c.paper_ms * 0.15)
            << c.cfg.name;
    }
}

TEST(GpuModel, InputTokensAreCheap)
{
    // Paper Fig. 3: each additional input token costs ~0.02 ms vs
    // ~75 ms per output token (1.5B).
    GpuApplianceModel gpu(GptConfig::gpt2_1_5B(), 4);
    double in_slope = (gpu.estimate(128, 1).totalSeconds() -
                       gpu.estimate(32, 1).totalSeconds()) / 96.0;
    double out_slope = (gpu.estimate(32, 5).totalSeconds() -
                        gpu.estimate(32, 1).totalSeconds()) / 4.0;
    EXPECT_LT(in_slope * 1e3, 0.2);   // well under a millisecond
    EXPECT_GT(out_slope / in_slope, 100.0);
}

TEST(GpuModel, Fig14AbsoluteAnchors)
{
    // [32:256] on the 1.5B model measured 19873.6 ms; accept 15%.
    GpuApplianceModel gpu(GptConfig::gpt2_1_5B(), 4);
    double ms = gpu.estimate(32, 256).totalSeconds() * 1e3;
    EXPECT_NEAR(ms, 19873.6, 19873.6 * 0.15);
    // [32:1] measured 86.7 ms.
    double first = gpu.estimate(32, 1).totalSeconds() * 1e3;
    EXPECT_NEAR(first, 86.7, 86.7 * 0.15);
}

TEST(GpuModel, BreakdownMatchesFig4Shape)
{
    // Fig. 4 (GPU latency shares): LN 9.9%, attention 56.5%,
    // residual 12.9%, FFN 20.7%. Check the generation-stage shares of
    // the decoder-layer categories within a few points.
    GpuApplianceModel gpu(GptConfig::gpt2_1_5B(), 1);  // Fig.4 is 1 GPU
    GpuEstimate est = gpu.estimate(32, 129);
    double ln = est.breakdown[static_cast<size_t>(Category::kLayerNorm)];
    double at = est.breakdown[static_cast<size_t>(Category::kAttention)];
    double ff = est.breakdown[static_cast<size_t>(Category::kFfn)];
    double re = est.breakdown[static_cast<size_t>(Category::kResidual)];
    double sum = ln + at + ff + re;
    EXPECT_NEAR(at / sum * 100.0, 56.5, 5.0);
    EXPECT_NEAR(ff / sum * 100.0, 20.7, 5.0);
    EXPECT_NEAR(ln / sum * 100.0, 9.9, 3.0);
    EXPECT_NEAR(re / sum * 100.0, 12.9, 4.0);
}

TEST(GpuModel, SummarizationEfficientGenerationNot)
{
    // Fig. 17 shape: summarization GFLOPS orders of magnitude above
    // generation GFLOPS.
    GpuApplianceModel gpu(GptConfig::gpt2_345M(), 1);
    GpuEstimate est = gpu.estimate(64, 64);
    double summ = est.summarizationFlops / est.summarizationSeconds;
    double gen = est.generationFlops / est.generationSeconds;
    EXPECT_GT(summ / gen, 20.0);
    EXPECT_GT(summ, 500e9);   // paper: 1632 GFLOPS
    EXPECT_LT(gen, 100e9);    // paper: 40.6 GFLOPS
}

TEST(GpuModel, LargeBatchBecomesComputeBound)
{
    // For very large prompt batches the pass cost must leave the
    // launch-overhead floor and scale with n (compute-bound). In the
    // paper's measured range (n <= 128) the GPU stays launch-bound —
    // its input-token slope is only ~0.02 ms — so the transition sits
    // in the thousands of tokens.
    GpuApplianceModel gpu(GptConfig::gpt2_345M(), 1);
    GpuBreakdown bd{};
    double flops = 0.0;
    double t_4k = gpu.passSeconds(4096, 0, &bd, &flops);
    double t_8k = gpu.passSeconds(8192, 0, &bd, &flops);
    double t_small = gpu.passSeconds(32, 0, &bd, &flops);
    EXPECT_GT(t_4k, t_small * 1.2);
    EXPECT_GT(t_8k, t_4k * 1.3);  // scaling regime
}

TEST(GpuModel, ThroughputFlatInOutputLength)
{
    // Fig. 16: GPU tokens/sec roughly constant vs output length.
    GpuApplianceModel gpu(GptConfig::gpt2_1_5B(), 4);
    double tp16 = gpu.estimate(32, 16).tokensPerSecond(16);
    double tp256 = gpu.estimate(32, 256).tokensPerSecond(256);
    EXPECT_NEAR(tp256 / tp16, 1.0, 0.35);
    // And close to the paper's ~13 tokens/sec at 64:64.
    double tp = gpu.estimate(64, 64).tokensPerSecond(64);
    EXPECT_NEAR(tp, 13.01, 13.01 * 0.2);
}

TEST(TpuModel, Fig17Shape)
{
    // 345M, 64:64: summarization ~674.5 GFLOPS, generation ~8.2.
    TpuModel tpu(GptConfig::gpt2_345M());
    TpuEstimate est = tpu.estimate(64, 64);
    double summ = est.summarizationFlops / est.summarizationSeconds;
    double gen = est.generationFlops / est.generationSeconds;
    EXPECT_NEAR(summ / 1e9, 674.5, 674.5 * 0.25);
    EXPECT_NEAR(gen / 1e9, 8.2, 8.2 * 0.35);
    EXPECT_GT(summ / gen, 10.0);
}

TEST(GpuModel, MultiGpuReducesComputeBoundPasses)
{
    // Parallel speedup only shows once passes are compute-bound; in
    // the launch-bound regime extra GPUs only add all-reduce cost
    // (which is why the paper's GPU appliance sees no generation-stage
    // benefit from more devices).
    GptConfig cfg = GptConfig::gpt2_345M();
    GpuBreakdown bd{};
    double t1 = GpuApplianceModel(cfg, 1).passSeconds(8192, 0, &bd,
                                                      nullptr);
    double t4 = GpuApplianceModel(cfg, 4).passSeconds(8192, 0, &bd,
                                                      nullptr);
    EXPECT_LT(t4, t1);
}

}  // namespace
}  // namespace dfx
