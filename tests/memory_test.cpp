/**
 * @file
 * Off-chip memory and layout tests.
 */
#include <gtest/gtest.h>

#include "memory/layout.hpp"
#include "memory/offchip.hpp"

namespace dfx {
namespace {

TEST(OffchipMemory, AllocAlignsAndAdvances)
{
    OffchipMemory mem("m", 1 << 20, 460e9, 0.6, false);
    uint64_t a = mem.alloc(10, "a");
    uint64_t b = mem.alloc(10, "b");
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(b % 16, 0u);
    EXPECT_GE(b, a + 10);
    EXPECT_GE(mem.allocated(), b + 10);
}

TEST(OffchipMemory, FunctionalReadWrite)
{
    OffchipMemory mem("m", 1 << 20, 460e9, 0.6, true);
    uint64_t addr = mem.alloc(64, "buf");
    Half vals[4] = {Half::fromDouble(1.0), Half::fromDouble(-2.0),
                    Half::fromDouble(0.5), Half::fromDouble(3.25)};
    mem.writeHalf(addr, vals, 4);
    Half back[4];
    mem.readHalf(addr, back, 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(back[i].bits(), vals[i].bits());
    // Unwritten memory reads as zero.
    EXPECT_TRUE(mem.loadHalf(addr + 32).isZero());
}

TEST(OffchipMemory, StreamTiming)
{
    OffchipMemory mem("m", 1 << 30, 460e9, 0.5, false);
    // 230 GB/s effective: 230 bytes per ns.
    EXPECT_NEAR(mem.streamSeconds(230'000'000), 1e-3, 1e-9);
    // Cycles at 200 MHz: 1150 bytes/cycle.
    EXPECT_EQ(mem.streamCycles(1150, 200e6), 1u);
    EXPECT_EQ(mem.streamCycles(1151, 200e6), 2u);
}

TEST(OffchipMemory, HbmDdrSpecs)
{
    OffchipMemory hbm = makeHbm(0, 0.6, false);
    OffchipMemory ddr = makeDdr(0, 0.7, false);
    EXPECT_DOUBLE_EQ(hbm.peakBandwidth(), 460e9);
    EXPECT_DOUBLE_EQ(ddr.peakBandwidth(), 38e9);
    EXPECT_EQ(hbm.capacity(), 8ull << 30);
    EXPECT_EQ(ddr.capacity(), 32ull << 30);
}

TEST(ClusterGeometry, Shards)
{
    GptConfig c = GptConfig::gpt2_1_5B();
    ClusterGeometry g{4};
    EXPECT_EQ(g.localHeads(c), 6u);
    EXPECT_EQ(g.embShard(c), 384u);
    EXPECT_EQ(g.ffnShard(c), 1536u);
    // 50257 / 4 = 12564.25 -> 12565 -> padded to 16: 12576.
    EXPECT_EQ(g.vocabShard(c, 16), 12576u);
    EXPECT_GE(4 * g.vocabShard(c, 16), c.vocabSize);
}

TEST(ClusterGeometry, RejectsIndivisibleHeads)
{
    GptConfig c = GptConfig::toy();  // 2 heads
    ClusterGeometry g{4};
    EXPECT_DEATH(g.validateFor(c), "not divisible");
}

TEST(MemoryLayout, DeterministicAcrossCores)
{
    GptConfig c = GptConfig::mini();
    ClusterGeometry g{2};
    OffchipMemory h0("h0", 1ull << 33, 460e9, 0.6, false);
    OffchipMemory d0("d0", 1ull << 33, 38e9, 0.7, false);
    OffchipMemory h1("h1", 1ull << 33, 460e9, 0.6, false);
    OffchipMemory d1("d1", 1ull << 33, 38e9, 0.7, false);
    MemoryLayout a = MemoryLayout::build(c, g, 16, h0, d0);
    MemoryLayout b = MemoryLayout::build(c, g, 16, h1, d1);
    EXPECT_EQ(a.lmHeadW, b.lmHeadW);
    EXPECT_EQ(a.wte, b.wte);
    for (size_t l = 0; l < c.layers; ++l) {
        EXPECT_EQ(a.layers[l].wq, b.layers[l].wq);
        EXPECT_EQ(a.layers[l].keyBase, b.layers[l].keyBase);
        EXPECT_EQ(a.layers[l].bfc1, b.layers[l].bfc1);
    }
}

TEST(MemoryLayout, RegionsDisjoint)
{
    GptConfig c = GptConfig::mini();
    ClusterGeometry g{1};
    OffchipMemory h("h", 1ull << 33, 460e9, 0.6, false);
    OffchipMemory d("d", 1ull << 33, 38e9, 0.7, false);
    MemoryLayout ml = MemoryLayout::build(c, g, 16, h, d);
    const uint64_t emb = c.embedding;
    // Weight shard regions must not overlap: check a few adjacencies.
    EXPECT_GE(ml.layers[0].wk, ml.layers[0].wq + emb * emb * 2);
    EXPECT_GE(ml.layers[0].wv, ml.layers[0].wk + emb * emb * 2);
    EXPECT_GE(ml.layers[1].wq,
              ml.layers[0].vtBase + c.heads * 64 * c.maxSeq * 2);
}

TEST(MemoryLayout, KvAddressing)
{
    GptConfig c = GptConfig::mini();
    ClusterGeometry g{2};
    OffchipMemory h("h", 1ull << 33, 460e9, 0.6, false);
    OffchipMemory d("d", 1ull << 33, 38e9, 0.7, false);
    MemoryLayout ml = MemoryLayout::build(c, g, 16, h, d);
    const size_t hd = c.headDim;
    // Consecutive K rows are hd apart.
    EXPECT_EQ(ml.keyRowAddr(0, 0, 1) - ml.keyRowAddr(0, 0, 0), hd * 2);
    // Head regions are maxSeq rows apart.
    EXPECT_EQ(ml.keyHeadBase(0, 1) - ml.keyHeadBase(0, 0),
              c.maxSeq * hd * 2);
    // V^T: element (j, t+1) is adjacent; (j+1, t) is maxSeq away.
    EXPECT_EQ(ml.vtAddr(0, 0, 0, 1) - ml.vtAddr(0, 0, 0, 0), 2u);
    EXPECT_EQ(ml.vtAddr(0, 0, 1, 0) - ml.vtAddr(0, 0, 0, 0),
              c.maxSeq * 2);
}

TEST(MemoryLayout, KvChannelSetsSpreadAndStayDisjointUntilWrap)
{
    GptConfig c = GptConfig::mini();
    ClusterGeometry g{2};
    OffchipMemory h("h", 1ull << 33, 460e9, 0.6, false);
    OffchipMemory d("d", 1ull << 33, 38e9, 0.7, false);
    MemoryLayout ml = MemoryLayout::build(c, g, 16, h, d,
                                          /*kv_contexts=*/4,
                                          /*hbm_channels=*/32,
                                          /*kv_stream_channels=*/2);
    const size_t local_heads = g.localHeads(c);
    // Every set has the configured width...
    for (size_t ctx = 0; ctx < 4; ++ctx) {
        for (size_t lh = 0; lh < local_heads; ++lh) {
            EXPECT_EQ(channelCount(ml.keyChannelMask(lh, ctx)), 2u);
            EXPECT_EQ(channelCount(ml.vtChannelMask(lh, ctx)), 2u);
        }
    }
    // ...K and V^T of one head are distinct, and distinct contexts
    // occupy disjoint channels while sets remain available.
    EXPECT_FALSE(channelsOverlap(ml.keyChannelMask(0, 0),
                                 ml.vtChannelMask(0, 0)));
    EXPECT_FALSE(channelsOverlap(ml.keyChannelMask(0, 0),
                                 ml.keyChannelMask(0, 1)));
    // 4 contexts x localHeads x {K, V^T} x 2 channels fills 32 exactly
    // when localHeads == 2: the next context would wrap back onto
    // context 0's channels.
    if (local_heads == 2) {
        uint32_t all = 0;
        for (size_t ctx = 0; ctx < 4; ++ctx) {
            for (size_t lh = 0; lh < local_heads; ++lh) {
                all |= ml.keyChannelMask(lh, ctx);
                all |= ml.vtChannelMask(lh, ctx);
            }
        }
        EXPECT_EQ(channelCount(all), 32u);
    }
}

TEST(OffchipMemory, BoundRegionAliasesSharedDataLazily)
{
    OffchipMemory mem("m", 1 << 20, 460e9, 0.6, true);
    uint64_t addr = mem.alloc(32, "w");
    static std::vector<Half> image(16, Half::fromDouble(2.5));
    int resolves = 0;
    mem.bindRegion(addr, 32, [&resolves]() {
        ++resolves;
        return image.data();
    });
    EXPECT_EQ(resolves, 0);  // binding alone materializes nothing
    const Half *span = mem.loadSpan(addr, 16);
    EXPECT_EQ(span, image.data());  // true aliasing, not a copy
    EXPECT_EQ(resolves, 1);
    mem.loadSpan(addr + 8, 4);
    EXPECT_EQ(resolves, 1);  // resolved pointer is cached
    EXPECT_EQ(mem.loadHalf(addr + 2).bits(), Half::fromDouble(2.5).bits());
}

TEST(OffchipMemory, CopyOnWriteLeavesSharedImageIntact)
{
    std::vector<Half> image(16, Half::fromDouble(1.0));
    OffchipMemory a("a", 1 << 20, 460e9, 0.6, true);
    OffchipMemory b("b", 1 << 20, 460e9, 0.6, true);
    uint64_t addr_a = a.alloc(32, "w");
    uint64_t addr_b = b.alloc(32, "w");
    a.bindRegion(addr_a, 32, [&image]() { return image.data(); });
    b.bindRegion(addr_b, 32, [&image]() { return image.data(); });

    a.storeHalf(addr_a + 4, Half::fromDouble(-3.0));
    // Device a sees its write, with the rest of the region preserved.
    EXPECT_EQ(a.loadHalf(addr_a + 4).bits(),
              Half::fromDouble(-3.0).bits());
    EXPECT_EQ(a.loadHalf(addr_a).bits(), Half::fromDouble(1.0).bits());
    // The image and every other device bound to it are untouched.
    EXPECT_EQ(image[2].bits(), Half::fromDouble(1.0).bits());
    EXPECT_EQ(b.loadHalf(addr_b + 4).bits(),
              Half::fromDouble(1.0).bits());
    EXPECT_NE(a.loadSpan(addr_a, 16), image.data());
    EXPECT_EQ(b.loadSpan(addr_b, 16), image.data());
}

TEST(OffchipMemory, ReadsOutsideAllocationsReturnZero)
{
    OffchipMemory mem("m", 1 << 20, 460e9, 0.6, true);
    uint64_t addr = mem.alloc(16, "a");
    EXPECT_TRUE(mem.loadHalf(addr + 4096).isZero());
    EXPECT_TRUE(mem.loadHalf(addr).isZero());  // allocated, unwritten
}

TEST(OffchipMemory, StraddlingReadKeepsStoredPrefix)
{
    // readHalf is element-wise: a read running past a region's end
    // returns the stored prefix and zeros beyond it (spans, the hot
    // path, assert containment instead).
    OffchipMemory mem("m", 1 << 20, 460e9, 0.6, true);
    uint64_t addr = mem.alloc(32, "a");
    Half v = Half::fromDouble(4.5);
    mem.writeHalf(addr + 30, &v, 1);
    Half out[2];
    mem.readHalf(addr + 30, out, 2);
    EXPECT_EQ(out[0].bits(), v.bits());
    EXPECT_TRUE(out[1].isZero());
}

TEST(OffchipMemory, SpansMustStayInsideOneRegion)
{
    OffchipMemory mem("m", 1 << 20, 460e9, 0.6, true);
    uint64_t a = mem.alloc(32, "a");
    mem.alloc(32, "b");
    EXPECT_DEATH(mem.loadSpan(a, 64), "outside any allocated region");
}

TEST(OffchipMemory, OomReportsTopAllocationTags)
{
    OffchipMemory mem("m", 4096, 460e9, 0.6, false);
    mem.alloc(2048, "K");
    mem.alloc(1024, "wq");
    mem.alloc(512, "bias");
    // The overflow report must name the biggest existing regions so a
    // failed large-model bring-up points at its culprit.
    EXPECT_DEATH(mem.alloc(4096, "VT"),
                 "top allocations: K .*wq .*bias");
}

TEST(MemoryLayout, FullModelsFitDevices)
{
    // The paper's three models must fit 8 GB HBM / 32 GB DDR at their
    // paper cluster sizes (345M:1, 774M:2, 1.5B:4).
    struct Case { GptConfig cfg; size_t cores; };
    Case cases[] = {{GptConfig::gpt2_345M(), 1},
                    {GptConfig::gpt2_774M(), 2},
                    {GptConfig::gpt2_1_5B(), 4}};
    for (const auto &cs : cases) {
        OffchipMemory h = makeHbm(0, 0.6, false);
        OffchipMemory d = makeDdr(0, 0.7, false);
        MemoryLayout ml =
            MemoryLayout::build(cs.cfg, ClusterGeometry{cs.cores}, 16, h,
                                d);
        EXPECT_LT(ml.hbmBytes(), 8ull << 30) << cs.cfg.name;
        EXPECT_LT(ml.ddrBytes(), 32ull << 30) << cs.cfg.name;
    }
}

}  // namespace
}  // namespace dfx
