/**
 * @file
 * Property-style tests for the fleet event queue: random push/pop
 * interleavings checked against a sorted-vector oracle, monotone pop
 * order, and the deterministic tie-break (time, kind, node, seq).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "appliance/event_queue.hpp"

namespace dfx {
namespace {

bool
sameEvent(const FleetEvent &a, const FleetEvent &b)
{
    return a.time == b.time && a.kind == b.kind && a.node == b.node &&
           a.sub == b.sub && a.payload == b.payload && a.seq == b.seq;
}

/** Oracle: a plain vector re-sorted with the public ordering after
 *  every mutation. Deliberately O(n log n) per op — correctness
 *  reference only. */
class OracleQueue
{
  public:
    void
    push(double time, FleetEventKind kind, uint32_t node, uint32_t sub,
         uint64_t payload)
    {
        events_.push_back({time, kind, node, sub, payload, nextSeq_++});
        std::sort(events_.begin(), events_.end(), fleetEventBefore);
    }

    FleetEvent
    pop()
    {
        FleetEvent e = events_.front();
        events_.erase(events_.begin());
        return e;
    }

    bool empty() const { return events_.empty(); }

  private:
    std::vector<FleetEvent> events_;
    uint64_t nextSeq_ = 0;
};

TEST(EventQueue, RandomInterleavingsMatchSortedVectorOracle)
{
    std::mt19937_64 rng(7);
    // Coarse time grid so equal timestamps (and thus tie-breaks) are
    // exercised constantly, not just by luck.
    std::uniform_int_distribution<int> timeGrid(0, 19);
    std::uniform_int_distribution<int> kindDist(0, 3);
    std::uniform_int_distribution<uint32_t> nodeDist(0, 6);
    std::uniform_real_distribution<double> coin(0.0, 1.0);

    for (int trial = 0; trial < 50; ++trial) {
        FleetEventQueue q;
        OracleQueue oracle;
        size_t live = 0;
        for (int op = 0; op < 400; ++op) {
            const bool doPush = live == 0 || coin(rng) < 0.55;
            if (doPush) {
                const double t = 0.25 * timeGrid(rng);
                const auto kind =
                    static_cast<FleetEventKind>(kindDist(rng));
                const uint32_t node = nodeDist(rng);
                const uint32_t sub = node % 2;
                const uint64_t payload = static_cast<uint64_t>(op);
                q.push(t, kind, node, sub, payload);
                oracle.push(t, kind, node, sub, payload);
                ++live;
            } else {
                ASSERT_FALSE(q.empty());
                const FleetEvent got = q.pop();
                const FleetEvent want = oracle.pop();
                ASSERT_TRUE(sameEvent(got, want))
                    << "trial " << trial << " op " << op << ": heap "
                    << got.time << "/" << int(got.kind) << "/"
                    << got.node << " vs oracle " << want.time << "/"
                    << int(want.kind) << "/" << want.node;
                --live;
            }
        }
        // Drain the rest in lockstep.
        while (!q.empty()) {
            ASSERT_FALSE(oracle.empty());
            ASSERT_TRUE(sameEvent(q.pop(), oracle.pop()));
        }
        EXPECT_TRUE(oracle.empty());
    }
}

TEST(EventQueue, PopOrderIsMonotoneInTime)
{
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> timeDist(0.0, 100.0);
    FleetEventQueue q;
    for (int i = 0; i < 2000; ++i)
        q.push(timeDist(rng), FleetEventKind::Round,
               static_cast<uint32_t>(i % 5));
    double last = -1.0;
    while (!q.empty()) {
        const FleetEvent e = q.pop();
        EXPECT_GE(e.time, last);
        last = e.time;
    }
}

TEST(EventQueue, TieBreakIsKindThenNodeThenInsertionOrder)
{
    FleetEventQueue q;
    // All at the same instant, pushed in scrambled order.
    q.push(1.0, FleetEventKind::Round, 2, 0, 100);
    q.push(1.0, FleetEventKind::Arrival, 5, 0, 101);
    q.push(1.0, FleetEventKind::Round, 0, 0, 102);
    q.push(1.0, FleetEventKind::FailStop, 3, 0, 103);
    q.push(1.0, FleetEventKind::TransferDone, 1, 0, 104);
    q.push(1.0, FleetEventKind::Arrival, 0, 0, 105);
    q.push(1.0, FleetEventKind::Round, 0, 1, 106);  // same node as 102

    std::vector<uint64_t> order;
    while (!q.empty())
        order.push_back(q.pop().payload);
    // FailStop first, then arrivals by node, then the transfer, then
    // rounds by node with the equal-node pair in insertion order.
    EXPECT_EQ(order, (std::vector<uint64_t>{103, 105, 101, 104, 102,
                                            106, 100}));
}

TEST(EventQueue, IdenticalPushSequencesPopIdentically)
{
    // Determinism across instances: the pop sequence is a pure
    // function of the push sequence.
    auto feed = [](FleetEventQueue &q) {
        std::mt19937_64 rng(23);
        std::uniform_int_distribution<int> timeGrid(0, 9);
        std::uniform_int_distribution<int> kindDist(0, 3);
        for (int i = 0; i < 500; ++i)
            q.push(0.5 * timeGrid(rng),
                   static_cast<FleetEventKind>(kindDist(rng)),
                   static_cast<uint32_t>(i % 4), 0,
                   static_cast<uint64_t>(i));
    };
    FleetEventQueue a, b;
    feed(a);
    feed(b);
    while (!a.empty()) {
        ASSERT_FALSE(b.empty());
        ASSERT_TRUE(sameEvent(a.pop(), b.pop()));
    }
    EXPECT_TRUE(b.empty());
}

TEST(EventQueue, IndependentQueuesAreThreadSafePerInstance)
{
    // The queue is single-owner by design; what must hold under TSan
    // is that two threads driving *separate* queues share nothing.
    auto work = [](int seed, std::vector<double> *out) {
        std::mt19937_64 rng(seed);
        std::uniform_real_distribution<double> timeDist(0.0, 10.0);
        FleetEventQueue q;
        for (int i = 0; i < 1000; ++i)
            q.push(timeDist(rng), FleetEventKind::Round, 0);
        while (!q.empty())
            out->push_back(q.pop().time);
    };
    std::vector<double> a, b;
    std::thread ta(work, 3, &a);
    std::thread tb(work, 3, &b);
    ta.join();
    tb.join();
    EXPECT_EQ(a, b);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

}  // namespace
}  // namespace dfx
