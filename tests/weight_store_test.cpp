/**
 * @file
 * Shared weight store tests: the lazily generated, shard-major image
 * must be bit-identical to the eager `GptWeights::random` path no
 * matter which tensor is touched first (the per-shard seeding
 * determinism invariant), accounting must match the config without
 * materializing anything, and the DFX_WEIGHT_CACHE file must round-trip
 * the image across store instances.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <unistd.h>

#include "common/threadpool.hpp"
#include "model/weight_store.hpp"
#include "model/weights.hpp"

namespace dfx {
namespace {

/** Compares every tensor of `store` against eager weights `w`. */
void
expectStoreMatchesEager(WeightStore &store, const GptWeights &w)
{
    const GptConfig &cfg = w.config;
    const size_t n = store.nShards();
    const size_t emb = cfg.embedding;
    const size_t emb_shard = emb / n;
    const size_t ffn_shard = cfg.ffnHidden() / n;
    auto expect_matrix = [&](int layer, WeightId id, const MatH &m) {
        const size_t shard_w = m.cols() / n;
        for (size_t s = 0; s < n; ++s) {
            const Half *p = store.shardPtr(layer, id, s);
            for (size_t r = 0; r < m.rows(); r += 7) {
                for (size_t c = 0; c < shard_w; c += 5) {
                    ASSERT_EQ(p[r * shard_w + c].bits(),
                              m.at(r, s * shard_w + c).bits())
                        << "layer " << layer << " id "
                        << static_cast<int>(id) << " shard " << s;
                }
            }
        }
    };
    auto expect_matrix_full = [&](int layer, WeightId id, const MatH &m) {
        // Replicated matrices (WTE, WPE) store the canonical row-major
        // full tensor once, shared by every core.
        const Half *p = store.shardPtr(layer, id, 0);
        for (size_t r = 0; r < m.rows(); r += 7) {
            for (size_t c = 0; c < m.cols(); c += 5) {
                ASSERT_EQ(p[r * m.cols() + c].bits(), m.at(r, c).bits())
                    << "id " << static_cast<int>(id);
            }
        }
    };
    auto expect_vec_sharded = [&](int layer, WeightId id, const VecH &v,
                                  size_t shard_w) {
        for (size_t s = 0; s < n; ++s) {
            const Half *p = store.shardPtr(layer, id, s);
            for (size_t c = 0; c < shard_w; c += 3)
                ASSERT_EQ(p[c].bits(), v[s * shard_w + c].bits());
        }
    };
    auto expect_vec_full = [&](int layer, WeightId id, const VecH &v) {
        const Half *p = store.shardPtr(layer, id, 0);
        for (size_t i = 0; i < v.size(); i += 3)
            ASSERT_EQ(p[i].bits(), v[i].bits());
    };

    for (size_t l = 0; l < cfg.layers; ++l) {
        const LayerWeights &lw = w.layers[l];
        const int li = static_cast<int>(l);
        expect_matrix(li, WeightId::kWq, lw.wq);
        expect_matrix(li, WeightId::kWk, lw.wk);
        expect_matrix(li, WeightId::kWv, lw.wv);
        expect_matrix(li, WeightId::kWproj, lw.wproj);
        expect_matrix(li, WeightId::kWfc1, lw.wfc1);
        expect_matrix(li, WeightId::kWfc2, lw.wfc2);
        expect_vec_sharded(li, WeightId::kBq, lw.bq, emb_shard);
        expect_vec_sharded(li, WeightId::kBk, lw.bk, emb_shard);
        expect_vec_sharded(li, WeightId::kBv, lw.bv, emb_shard);
        expect_vec_sharded(li, WeightId::kBproj, lw.bproj, emb_shard);
        expect_vec_sharded(li, WeightId::kBfc1, lw.bfc1, ffn_shard);
        expect_vec_sharded(li, WeightId::kBfc2, lw.bfc2, emb_shard);
        expect_vec_full(li, WeightId::kLn1Gamma, lw.ln1Gamma);
        expect_vec_full(li, WeightId::kLn1Beta, lw.ln1Beta);
        expect_vec_full(li, WeightId::kLn2Gamma, lw.ln2Gamma);
        expect_vec_full(li, WeightId::kLn2Beta, lw.ln2Beta);
    }
    expect_matrix_full(-1, WeightId::kWte, w.wte);
    expect_matrix_full(-1, WeightId::kWpe, w.wpe);
    expect_vec_full(-1, WeightId::kLnfGamma, w.lnfGamma);
    expect_vec_full(-1, WeightId::kLnfBeta, w.lnfBeta);

    // LM head: transposed WTE per vocab shard, zero-padded.
    const size_t vshard = store.vocabShardCols();
    for (size_t s = 0; s < n; ++s) {
        const Half *p = store.shardPtr(-1, WeightId::kLmHead, s);
        const size_t off = s * vshard;
        for (size_t r = 0; r < emb; r += 31) {
            for (size_t c = 0; c < vshard; c += 97) {
                const Half expect = off + c < cfg.vocabSize
                                        ? w.wte.at(off + c, r)
                                        : Half::zero();
                ASSERT_EQ(p[r * vshard + c].bits(), expect.bits())
                    << "lm head shard " << s;
            }
        }
    }
}

TEST(WeightStore, BitIdenticalToEagerGeneration)
{
    // The store's lazily entered per-tensor streams must reproduce the
    // eager single-stream generation draw for draw — this is the
    // anchor that keeps store-backed tokens identical to the PR-4
    // loadWeights path.
    const GptConfig cfg = GptConfig::mini();
    GptWeights w = GptWeights::random(cfg, 61);
    WeightStore store(WeightSpec{cfg, 61}, /*n_shards=*/2, /*lanes=*/16);
    expectStoreMatchesEager(store, w);
}

TEST(WeightStore, SingleShardToyMatchesEager)
{
    const GptConfig cfg = GptConfig::toy();
    GptWeights w = GptWeights::random(cfg, 42);
    WeightStore store(WeightSpec{cfg, 42}, 1, 16);
    expectStoreMatchesEager(store, w);
}

TEST(WeightStore, MaterializationOrderIsIrrelevant)
{
    // Touching a late tensor first must produce the same bytes as
    // sequential materialization: the stream is entered at the
    // tensor's offset either way.
    const GptConfig cfg = GptConfig::mini();
    WeightSpec spec{cfg, 7};
    WeightStore seq(spec, 2, 16);
    seq.materializeAll();

    WeightStore lazy(spec, 2, 16);
    const WeightTensorDesc &d = lazy.desc(2, WeightId::kWfc2);
    const Half *p_lazy = lazy.shardPtr(2, WeightId::kWfc2, 1);
    const Half *p_seq = seq.shardPtr(2, WeightId::kWfc2, 1);
    const size_t shard_elems = d.rows * d.cols / 2;
    for (size_t i = 0; i < shard_elems; ++i)
        ASSERT_EQ(p_lazy[i].bits(), p_seq[i].bits()) << "elem " << i;
    // Earlier tensors generated afterwards also agree.
    const Half *q_lazy = lazy.shardPtr(0, WeightId::kWq, 0);
    const Half *q_seq = seq.shardPtr(0, WeightId::kWq, 0);
    for (size_t i = 0; i < cfg.embedding; ++i)
        ASSERT_EQ(q_lazy[i].bits(), q_seq[i].bits());
}

TEST(WeightStore, ParallelMaterializationMatchesSequential)
{
    const GptConfig cfg = GptConfig::mini();
    WeightSpec spec{cfg, 19};
    WeightStore seq(spec, 2, 16);
    seq.materializeAll();
    WeightStore par(spec, 2, 16);
    ThreadPool pool(4);
    par.materializeAll(&pool);
    EXPECT_EQ(par.materializedTensors(), seq.materializedTensors());
    for (size_t l = 0; l < cfg.layers; ++l) {
        const Half *a = seq.shardPtr(static_cast<int>(l), WeightId::kWfc1,
                                     1);
        const Half *b = par.shardPtr(static_cast<int>(l), WeightId::kWfc1,
                                     1);
        for (size_t i = 0; i < 64; ++i)
            ASSERT_EQ(a[i].bits(), b[i].bits()) << "layer " << l;
    }
}

TEST(WeightStore, LazySpotTouchMaterializesOnlyWhatItReads)
{
    // Touching one matrix must not materialize the model — the
    // property that makes 1.5B spot-functional runs affordable.
    const GptConfig cfg = GptConfig::mini();
    WeightStore store(WeightSpec{cfg, 3}, 2, 16);
    EXPECT_EQ(store.materializedTensors(), 0u);
    store.shardPtr(1, WeightId::kWv, 0);
    EXPECT_EQ(store.materializedTensors(), 1u);
    // The LM head pulls in WTE (it derives from it), nothing else.
    store.shardPtr(-1, WeightId::kLmHead, 1);
    EXPECT_EQ(store.materializedTensors(), 3u);
}

TEST(WeightStore, SpecAccountingNeedsNoMaterialization)
{
    // WeightSpec accounts parameters from the tensor table alone; the
    // totals must agree with the config's closed-form accounting for
    // the big paper models (and the image adds only the derived
    // lane-padded LM head on top).
    for (const GptConfig &cfg :
         {GptConfig::gpt2_774M(), GptConfig::gpt2_1_5B()}) {
        WeightSpec spec{cfg, 0};
        EXPECT_EQ(spec.parameterCount(), cfg.parameterCount())
            << cfg.name;
        EXPECT_EQ(spec.parameterBytes(), cfg.parameterBytes())
            << cfg.name;
    }
    // Sanity: a store sized for 1.5B reports image bytes close to the
    // parameter bytes (the delta is the derived LM head copy).
    const GptConfig big = GptConfig::gpt2_1_5B();
    WeightStore store(WeightSpec{big, 0}, 4, 16);
    EXPECT_GE(store.imageBytes(), big.parameterBytes());
    EXPECT_LT(store.imageBytes(),
              big.parameterBytes() +
                  uint64_t{2} * big.embedding *
                      (big.vocabSize + 4 * 16));
    EXPECT_EQ(store.materializedTensors(), 0u);
}

class WeightStoreCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/dfx-weight-cache-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        ::setenv("DFX_WEIGHT_CACHE", dir_.c_str(), 1);
    }

    void
    TearDown() override
    {
        ::unsetenv("DFX_WEIGHT_CACHE");
        // Best-effort cleanup of the cache files + dir.
        std::string cmd = "rm -rf '" + dir_ + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }

    std::string dir_;
};

TEST_F(WeightStoreCacheTest, CacheRoundTripSkipsRegeneration)
{
    const GptConfig cfg = GptConfig::toy();
    WeightSpec spec{cfg, 99};
    std::string path;
    {
        WeightStore first(spec, 2, 16);
        ASSERT_TRUE(first.cacheBacked());
        path = first.cachePath();
        first.materializeAll();
        EXPECT_GT(first.generatedTensors(), 0u);
    }
    // A second store over the same (config, seed, geometry) must adopt
    // the finished image without generating anything.
    WeightStore second(spec, 2, 16);
    ASSERT_TRUE(second.cacheBacked());
    EXPECT_EQ(second.cachePath(), path);
    EXPECT_EQ(second.materializedTensors(),
              4 + cfg.layers * 16 + 1);  // everything already valid
    second.materializeAll();
    EXPECT_EQ(second.generatedTensors(), 0u);

    GptWeights w = GptWeights::random(cfg, 99);
    expectStoreMatchesEager(second, w);
}

TEST_F(WeightStoreCacheTest, CacheKeyedOnSeedAndGeometry)
{
    const GptConfig cfg = GptConfig::toy();
    WeightStore a(WeightSpec{cfg, 1}, 2, 16);
    WeightStore b(WeightSpec{cfg, 2}, 2, 16);   // different seed
    WeightStore c(WeightSpec{cfg, 1}, 1, 16);   // different geometry
    EXPECT_NE(a.cachePath(), b.cachePath());
    EXPECT_NE(a.cachePath(), c.cachePath());
    // Distinct seeds generate distinct values.
    const Half *pa = a.shardPtr(-1, WeightId::kWte, 0);
    const Half *pb = b.shardPtr(-1, WeightId::kWte, 0);
    bool any_diff = false;
    for (size_t i = 0; i < 64; ++i)
        any_diff |= pa[i].bits() != pb[i].bits();
    EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace dfx
