/**
 * @file
 * Reference GPT-2 engine tests: KV-cache correctness, determinism,
 * causality and generation behaviour.
 */
#include <gtest/gtest.h>

#include "model/reference.hpp"
#include "model/sampler.hpp"

namespace dfx {
namespace {

TEST(ReferenceModel, DeterministicLogits)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 5);
    ReferenceModel a(w), b(w);
    VecF la = a.step(3);
    VecF lb = b.step(3);
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i)
        EXPECT_FLOAT_EQ(la[i], lb[i]);
}

TEST(ReferenceModel, LogitsDependOnContext)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 5);
    ReferenceModel a(w), b(w);
    a.step(3);
    VecF la = a.step(7);
    b.step(4);  // different first token
    VecF lb = b.step(7);
    EXPECT_GT(maxAbsDiff(la, lb), 1e-6f);
}

TEST(ReferenceModel, PositionAdvances)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 5);
    ReferenceModel m(w);
    EXPECT_EQ(m.position(), 0u);
    m.step(1);
    EXPECT_EQ(m.position(), 1u);
    m.step(2);
    EXPECT_EQ(m.position(), 2u);
    m.reset();
    EXPECT_EQ(m.position(), 0u);
}

TEST(ReferenceModel, ResetForgetsContext)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 5);
    ReferenceModel m(w);
    m.step(3);
    m.step(9);
    m.reset();
    VecF after_reset = m.step(3);
    ReferenceModel fresh(w);
    VecF fresh_logits = fresh.step(3);
    EXPECT_FLOAT_EQ(maxAbsDiff(after_reset, fresh_logits), 0.0f);
}

TEST(ReferenceModel, PositionMattersViaWpe)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 5);
    ReferenceModel m(w);
    VecF first = m.step(3);
    // The same token at position 1 after itself: different logits.
    VecF second = m.step(3);
    EXPECT_GT(maxAbsDiff(first, second), 1e-6f);
}

TEST(ReferenceModel, GenerateProducesRequestedTokens)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 5);
    ReferenceModel m(w);
    std::vector<TokenId> prompt = {1, 2, 3, 4};
    auto out = m.generate(prompt, 6);
    EXPECT_EQ(out.size(), 6u);
    for (TokenId t : out) {
        EXPECT_GE(t, 0);
        EXPECT_LT(static_cast<size_t>(t), w.config.vocabSize);
    }
}

TEST(ReferenceModel, GenerateIsGreedyConsistent)
{
    // generate() must equal manual greedy stepping.
    GptWeights w = GptWeights::random(GptConfig::toy(), 8);
    ReferenceModel gen(w);
    auto out = gen.generate({5, 6}, 4);

    ReferenceModel manual(w);
    VecF logits = manual.step(5);
    logits = manual.step(6);
    std::vector<TokenId> expect;
    for (int i = 0; i < 4; ++i) {
        TokenId next = sampleGreedy(logits);
        expect.push_back(next);
        if (i + 1 < 4)
            logits = manual.step(next);
    }
    EXPECT_EQ(out, expect);
}

TEST(ReferenceModel, MiniModelRuns)
{
    GptWeights w = GptWeights::random(GptConfig::mini(), 21);
    ReferenceModel m(w);
    auto out = m.generate({10, 20, 30}, 5);
    EXPECT_EQ(out.size(), 5u);
    EXPECT_EQ(m.lastEmbedding().size(), w.config.embedding);
}

TEST(Sampler, GreedyPicksMax)
{
    VecF logits(5, 0.0f);
    logits[3] = 2.0f;
    EXPECT_EQ(sampleGreedy(logits), 3);
}

TEST(Sampler, TopKOneIsGreedy)
{
    VecF logits(5, 0.0f);
    logits[2] = 4.0f;
    Rng rng(1);
    EXPECT_EQ(sampleTopK(logits, 1, 1.0f, rng), 2);
}

TEST(Sampler, TopKStaysInTopK)
{
    VecF logits(10, 0.0f);
    logits[1] = 5.0f;
    logits[4] = 4.5f;
    logits[7] = 4.0f;
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        TokenId t = sampleTopK(logits, 3, 1.0f, rng);
        EXPECT_TRUE(t == 1 || t == 4 || t == 7) << t;
    }
}

}  // namespace
}  // namespace dfx
