/**
 * @file
 * IEEE-754 binary16 conformance tests.
 *
 * The FP16 soft-float underpins every numerical result in the
 * simulator, so it is tested exhaustively: round-trip over all 65536
 * bit patterns, rounding boundaries, subnormals, and arithmetic
 * against hardware-independent expectations.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/fp16.hpp"

namespace dfx {
namespace {

TEST(Fp16, KnownEncodings)
{
    EXPECT_EQ(Half::fromDouble(0.0).bits(), 0x0000);
    EXPECT_EQ(Half::fromDouble(-0.0).bits(), 0x8000);
    EXPECT_EQ(Half::fromDouble(1.0).bits(), 0x3c00);
    EXPECT_EQ(Half::fromDouble(-1.0).bits(), 0xbc00);
    EXPECT_EQ(Half::fromDouble(2.0).bits(), 0x4000);
    EXPECT_EQ(Half::fromDouble(0.5).bits(), 0x3800);
    EXPECT_EQ(Half::fromDouble(65504.0).bits(), 0x7bff);   // max finite
    EXPECT_EQ(Half::fromDouble(-65504.0).bits(), 0xfbff);
    EXPECT_EQ(Half::fromDouble(6.103515625e-05).bits(), 0x0400);  // 2^-14
    EXPECT_EQ(Half::fromDouble(5.960464477539063e-08).bits(),
              0x0001);  // smallest subnormal 2^-24
}

TEST(Fp16, SpecialValues)
{
    EXPECT_EQ(Half::fromDouble(INFINITY).bits(), 0x7c00);
    EXPECT_EQ(Half::fromDouble(-INFINITY).bits(), 0xfc00);
    EXPECT_TRUE(Half::fromDouble(NAN).isNan());
    EXPECT_TRUE(Half::infinity().isInf());
    EXPECT_FALSE(Half::infinity().isNan());
    EXPECT_TRUE(Half::zero().isZero());
    EXPECT_TRUE(Half::fromBits(0x8000).isZero());
    EXPECT_TRUE(Half::minSubnormal().isSubnormal());
    EXPECT_FALSE(Half::minNormal().isSubnormal());
}

TEST(Fp16, OverflowBoundary)
{
    // Values below 65520 round down to 65504; 65520 ties to even ->
    // 65536 which overflows to infinity.
    EXPECT_EQ(Half::fromDouble(65519.999).bits(), 0x7bff);
    EXPECT_EQ(Half::fromDouble(65520.0).bits(), 0x7c00);
    EXPECT_EQ(Half::fromDouble(65536.0).bits(), 0x7c00);
    EXPECT_EQ(Half::fromDouble(1e30).bits(), 0x7c00);
    EXPECT_EQ(Half::fromDouble(-1e30).bits(), 0xfc00);
}

TEST(Fp16, UnderflowBoundary)
{
    // 2^-25 ties to even -> 0; slightly above rounds to the smallest
    // subnormal.
    EXPECT_EQ(Half::fromDouble(std::ldexp(1.0, -25)).bits(), 0x0000);
    EXPECT_EQ(Half::fromDouble(std::ldexp(1.0, -25) * 1.0001).bits(),
              0x0001);
    EXPECT_EQ(Half::fromDouble(-std::ldexp(1.0, -25)).bits(), 0x8000);
    EXPECT_EQ(Half::fromDouble(1e-30).bits(), 0x0000);
}

TEST(Fp16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to
    // even (1.0).
    EXPECT_EQ(Half::fromDouble(1.0 + std::ldexp(1.0, -11)).bits(), 0x3c00);
    // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even
    // (1+2^-9, bits 0x3c02).
    EXPECT_EQ(Half::fromDouble(1.0 + 3 * std::ldexp(1.0, -11)).bits(),
              0x3c02);
    // Just above / below the tie round correctly.
    EXPECT_EQ(Half::fromDouble(1.0 + std::ldexp(1.0, -11) * 1.01).bits(),
              0x3c01);
    EXPECT_EQ(Half::fromDouble(1.0 + std::ldexp(1.0, -11) * 0.99).bits(),
              0x3c00);
}

TEST(Fp16, RoundTripAllBitPatterns)
{
    // Every finite half value must survive half -> float -> half.
    for (uint32_t b = 0; b <= 0xffff; ++b) {
        Half h = Half::fromBits(static_cast<uint16_t>(b));
        if (h.isNan()) {
            EXPECT_TRUE(Half::fromFloat(h.toFloat()).isNan());
            continue;
        }
        Half back = Half::fromFloat(h.toFloat());
        EXPECT_EQ(back.bits(), h.bits()) << "bit pattern " << b;
    }
}

TEST(Fp16, TableToFloatMatchesReferenceExhaustively)
{
    // The table-driven half -> float fast path must be bit-identical
    // to the original branchy implementation for all 2^16 encodings
    // (including every NaN payload).
    for (uint32_t b = 0; b <= 0xffff; ++b) {
        const uint16_t bits = static_cast<uint16_t>(b);
        const uint32_t fast =
            std::bit_cast<uint32_t>(fp16::halfBitsToFloat(bits));
        const uint32_t ref =
            std::bit_cast<uint32_t>(fp16::referenceHalfBitsToFloat(bits));
        ASSERT_EQ(fast, ref) << "bit pattern " << b;
    }
}

TEST(Fp16, FastFromFloatMatchesReferenceOnBoundaries)
{
    // Exact equivalence of the fast float -> half rounding against
    // the double-path reference on every rounding boundary: for each
    // half value h, the float values just below, at, and just above
    // the midpoints (h - ulp/2, h, h + ulp/2) and their neighbours.
    for (uint32_t b = 0; b <= 0xffff; ++b) {
        const uint16_t bits = static_cast<uint16_t>(b);
        Half h = Half::fromBits(bits);
        if (h.isNan() || h.isInf())
            continue;
        const uint32_t fb = std::bit_cast<uint32_t>(h.toFloat());
        // Probe a window of float encodings around the half value and
        // around its upper rounding midpoint.
        for (int32_t delta : {-1, 0, 1}) {
            const uint32_t probe = fb + static_cast<uint32_t>(delta);
            const float f = std::bit_cast<float>(probe);
            ASSERT_EQ(fp16::floatToHalfBits(f),
                      fp16::referenceFloatToHalfBits(f))
                << "float bits " << probe;
        }
        // Midpoint to the next half up: representable exactly in float
        // for all finite halves (one extra significand bit needed).
        const float next =
            fp16::referenceHalfBitsToFloat(
                static_cast<uint16_t>((bits & 0x7fffu) == 0x7bffu
                                          ? bits
                                          : bits + 1));
        const float mid = 0.5f * (h.toFloat() + next);
        const uint32_t mb = std::bit_cast<uint32_t>(mid);
        for (int32_t delta : {-1, 0, 1}) {
            const uint32_t probe = mb + static_cast<uint32_t>(delta);
            const float f = std::bit_cast<float>(probe);
            ASSERT_EQ(fp16::floatToHalfBits(f),
                      fp16::referenceFloatToHalfBits(f))
                << "midpoint float bits " << probe;
        }
    }
}

TEST(Fp16, QuantizeMatchesConversionPairExhaustively)
{
    // The MAC-tree requantization primitive must equal the exact
    // float -> half -> float conversion pair bit for bit. Exhaustive
    // over all widened halves, strided over the full float space, and
    // dense over the normal/subnormal/overflow transition bands.
    for (uint32_t b = 0; b <= 0xffff; ++b) {
        const float f =
            fp16::halfBitsToFloat(static_cast<uint16_t>(b));
        const float q = fp16::quantize(f);
        const float ref =
            fp16::halfBitsToFloat(fp16::floatToHalfBits(f));
        ASSERT_EQ(std::bit_cast<uint32_t>(q),
                  std::bit_cast<uint32_t>(ref))
            << "half bits " << b;
    }
    for (uint64_t u = 0; u <= 0xffffffffull; u += 4099) {
        const float f = std::bit_cast<float>(static_cast<uint32_t>(u));
        const float q = fp16::quantize(f);
        const float ref =
            fp16::halfBitsToFloat(fp16::floatToHalfBits(f));
        ASSERT_EQ(std::bit_cast<uint32_t>(q),
                  std::bit_cast<uint32_t>(ref))
            << "float bits " << u;
    }
    for (uint32_t e : {96u, 102u, 103u, 112u, 113u, 142u, 143u}) {
        for (uint32_t m = 0; m < (1u << 23); m += 11) {
            for (uint32_t s : {0u, 0x80000000u}) {
                const uint32_t bits = s | (e << 23) | m;
                const float f = std::bit_cast<float>(bits);
                const float q = fp16::quantize(f);
                const float ref =
                    fp16::halfBitsToFloat(fp16::floatToHalfBits(f));
                ASSERT_EQ(std::bit_cast<uint32_t>(q),
                          std::bit_cast<uint32_t>(ref))
                    << "float bits " << bits;
            }
        }
    }
}

TEST(Fp16, FastFromFloatMatchesReferenceSweep)
{
    // Strided sweep across the full float encoding space (all
    // exponents, both signs): overflow, normal, subnormal-result and
    // underflow-to-zero regimes all agree with the reference.
    for (uint64_t u = 0; u <= 0xffffffffull; u += 99991) {
        const float f = std::bit_cast<float>(static_cast<uint32_t>(u));
        ASSERT_EQ(fp16::floatToHalfBits(f),
                  fp16::referenceFloatToHalfBits(f))
            << "float bits " << u;
    }
    // Dense sweep of the exponent band where half results transition
    // normal -> subnormal -> zero (float exponents 96..116), plus the
    // overflow band (140..144), every 9th mantissa.
    auto sweep_band = [](uint32_t e_lo, uint32_t e_hi) {
        for (uint32_t e = e_lo; e <= e_hi; ++e) {
            for (uint32_t m = 0; m < (1u << 23); m += 9) {
                const uint32_t pos = (e << 23) | m;
                for (uint32_t s : {0u, 0x80000000u}) {
                    const float f = std::bit_cast<float>(pos | s);
                    ASSERT_EQ(fp16::floatToHalfBits(f),
                              fp16::referenceFloatToHalfBits(f))
                        << "float bits " << (pos | s);
                }
            }
        }
    };
    sweep_band(96, 116);
    sweep_band(140, 144);
    // Float subnormals and NaN payloads.
    for (uint32_t u :
         {0x00000001u, 0x007fffffu, 0x80000001u, 0x807fffffu,
          0x7f800001u, 0x7fc00000u, 0x7fffffffu, 0xff800001u,
          0xffffffffu}) {
        const float f = std::bit_cast<float>(u);
        ASSERT_EQ(fp16::floatToHalfBits(f),
                  fp16::referenceFloatToHalfBits(f))
            << "float bits " << u;
    }
}

TEST(Fp16, ConversionMatchesCompilerFloat16)
{
#ifdef __FLT16_MAX__
    // Cross-check against the compiler's _Float16 on a dense sample.
    for (uint32_t b = 0; b <= 0xffff; b += 7) {
        Half h = Half::fromBits(static_cast<uint16_t>(b));
        if (h.isNan())
            continue;
        _Float16 native;
        __builtin_memcpy(&native, &b, 2);
        EXPECT_EQ(h.toFloat(), static_cast<float>(native))
            << "bits " << b;
    }
#else
    GTEST_SKIP() << "no _Float16 support";
#endif
}

TEST(Fp16, ArithmeticMatchesNativeHalf)
{
#ifdef __FLT16_MAX__
    // Our "+ - * /" must round identically to the compiler's _Float16
    // arithmetic (which is IEEE on x86 via soft-float / F16C).
    uint64_t state = 12345;
    auto next_bits = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<uint16_t>(state >> 33);
    };
    int checked = 0;
    for (int i = 0; i < 200000; ++i) {
        uint16_t ab = next_bits(), bb = next_bits();
        Half a = Half::fromBits(ab), b = Half::fromBits(bb);
        if (a.isNan() || b.isNan())
            continue;
        _Float16 na, nb;
        __builtin_memcpy(&na, &ab, 2);
        __builtin_memcpy(&nb, &bb, 2);
        struct Case { Half ours; _Float16 native; const char *op; };
        _Float16 ns = na + nb, nd = na - nb, np = na * nb;
        Case cases[] = {
            {a + b, ns, "+"},
            {a - b, nd, "-"},
            {a * b, np, "*"},
        };
        for (const auto &c : cases) {
            uint16_t nbits;
            __builtin_memcpy(&nbits, &c.native, 2);
            Half nh = Half::fromBits(nbits);
            if (nh.isNan()) {
                EXPECT_TRUE(c.ours.isNan()) << c.op;
            } else {
                EXPECT_EQ(c.ours.bits(), nbits)
                    << a.toFloat() << " " << c.op << " " << b.toFloat();
            }
            ++checked;
        }
    }
    EXPECT_GT(checked, 100000);
#else
    GTEST_SKIP() << "no _Float16 support";
#endif
}

TEST(Fp16, BasicArithmetic)
{
    Half a = Half::fromDouble(1.5), b = Half::fromDouble(2.25);
    EXPECT_FLOAT_EQ((a + b).toFloat(), 3.75f);
    EXPECT_FLOAT_EQ((a - b).toFloat(), -0.75f);
    EXPECT_FLOAT_EQ((a * b).toFloat(), 3.375f);
    EXPECT_FLOAT_EQ((b / a).toFloat(), 1.5f);
    EXPECT_FLOAT_EQ((-a).toFloat(), -1.5f);
}

TEST(Fp16, ArithmeticRounds)
{
    // 2048 + 1 is not representable (ULP at 2048 is 2): rounds to 2048.
    Half big = Half::fromDouble(2048.0), one = Half::one();
    EXPECT_FLOAT_EQ((big + one).toFloat(), 2048.0f);
    // 2048 + 3 = 2051 is exactly halfway (ULP is 2 here); ties to the
    // even significand, 2052.
    EXPECT_FLOAT_EQ((big + Half::fromDouble(3.0)).toFloat(), 2052.0f);
    // 2048 + 5 = 2053 rounds to the nearest, 2052.
    EXPECT_FLOAT_EQ((big + Half::fromDouble(5.0)).toFloat(), 2052.0f);
    // Overflow in arithmetic saturates to infinity.
    EXPECT_TRUE((Half::max() * Half::fromDouble(2.0)).isInf());
    EXPECT_TRUE((Half::lowest() * Half::fromDouble(2.0)).isInf());
}

TEST(Fp16, Comparisons)
{
    Half a = Half::fromDouble(1.0), b = Half::fromDouble(2.0);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a <= a);
    EXPECT_TRUE(a == Half::one());
    EXPECT_TRUE(a != b);
    // -0 == +0 per IEEE.
    EXPECT_TRUE(Half::fromBits(0x8000) == Half::zero());
    // NaN compares false with everything.
    EXPECT_FALSE(Half::quietNan() == Half::quietNan());
    EXPECT_FALSE(Half::quietNan() < a);
}

TEST(Fp16, HelperFunctions)
{
    EXPECT_FLOAT_EQ(hexp(Half::zero()).toFloat(), 1.0f);
    EXPECT_NEAR(hexp(Half::one()).toFloat(), 2.71828f, 2e-3);
    EXPECT_FLOAT_EQ(hrecip(Half::fromDouble(4.0)).toFloat(), 0.25f);
    EXPECT_FLOAT_EQ(hrsqrt(Half::fromDouble(4.0)).toFloat(), 0.5f);
    EXPECT_FLOAT_EQ(hsqrt(Half::fromDouble(9.0)).toFloat(), 3.0f);
    EXPECT_FLOAT_EQ(habs(Half::fromDouble(-3.5)).toFloat(), 3.5f);
    EXPECT_FLOAT_EQ(hmax(Half::one(), Half::fromDouble(2.0)).toFloat(),
                    2.0f);
    EXPECT_FLOAT_EQ(hmin(Half::one(), Half::fromDouble(2.0)).toFloat(),
                    1.0f);
    // maxNum semantics: prefer the number over NaN.
    EXPECT_FLOAT_EQ(hmax(Half::quietNan(), Half::one()).toFloat(), 1.0f);
}

TEST(Fp16, SubnormalArithmetic)
{
    Half tiny = Half::minSubnormal();
    EXPECT_FLOAT_EQ((tiny + tiny).toFloat(), 2 * 5.960464477539063e-08f);
    // Gradual underflow: min normal / 2 is a subnormal, not zero.
    Half half_min = Half::minNormal() / Half::fromDouble(2.0);
    EXPECT_TRUE(half_min.isSubnormal());
    EXPECT_GT(half_min.toFloat(), 0.0f);
}

}  // namespace
}  // namespace dfx
