/**
 * @file
 * Energy, cost, resource-model and report tests.
 */
#include <gtest/gtest.h>

#include "perf/cost.hpp"
#include "perf/energy.hpp"
#include "perf/percentile.hpp"
#include "perf/report.hpp"
#include "perf/resource.hpp"

namespace dfx {
namespace {

TEST(EnergyModel, DfxPower)
{
    EnergyModel e;
    EXPECT_DOUBLE_EQ(e.dfxPowerWatts(1), 45.0);
    EXPECT_DOUBLE_EQ(e.dfxPowerWatts(4), 180.0);
}

TEST(EnergyModel, GpuPowerAtLowUtilizationMatchesMeasured)
{
    EnergyModel e;
    // At text-generation utilization (~3%) the model should land near
    // the paper's measured 47.5 W per V100.
    double p = e.gpuPowerWatts(1, 0.033);
    EXPECT_NEAR(p, 47.5, 2.0);
    // Clamped at the extremes.
    EXPECT_DOUBLE_EQ(e.gpuPowerWatts(1, 2.0), 300.0);
    EXPECT_DOUBLE_EQ(e.gpuPowerWatts(1, -1.0), 39.0);
}

TEST(EnergyModel, EfficiencyMetric)
{
    EXPECT_DOUBLE_EQ(EnergyModel::tokensPerSecPerWatt(72.68, 180.0),
                     72.68 / 180.0);
    EXPECT_DOUBLE_EQ(EnergyModel::energyJoules(100.0, 2.0), 200.0);
}

TEST(CostModel, TableIIValues)
{
    CostModel cost;
    CostRow gpu = cost.gpuAppliance(4, 13.01);
    CostRow dfx = cost.dfxAppliance(4, 72.68);
    EXPECT_DOUBLE_EQ(gpu.totalCost(), 45832.0);   // paper: $45,832
    EXPECT_DOUBLE_EQ(dfx.totalCost(), 31180.0);   // paper: $31,180
    EXPECT_NEAR(gpu.perfPerMillionDollars(), 283.86, 0.5);
    EXPECT_NEAR(dfx.perfPerMillionDollars(), 2330.98, 1.0);
    // Cost-effectiveness ratio: 8.21x.
    EXPECT_NEAR(dfx.perfPerMillionDollars() / gpu.perfPerMillionDollars(),
                8.21, 0.05);
}

TEST(ResourceModel, MatchesFig13Anchors)
{
    ResourceModel rm(64, 16);
    auto mods = rm.modules();
    ASSERT_EQ(mods.size(), 6u);
    // MPU DSP count is the paper's exact formula result.
    EXPECT_NEAR(mods[1].dsp, 3136.0, 1.0);
    EXPECT_NEAR(mods[2].dsp, 390.0, 1.0);
    // LUT/FF anchors within 10%.
    EXPECT_NEAR(mods[1].lut, 170000.0, 17000.0);
    EXPECT_NEAR(mods[1].ff, 381000.0, 38100.0);
    EXPECT_NEAR(mods[0].ff, 110000.0, 11000.0);
    EXPECT_NEAR(mods[3].bram, 134.5, 13.0);
    EXPECT_NEAR(mods[3].uram, 52.0, 1.0);
}

TEST(ResourceModel, TotalsFitU280)
{
    ResourceModel rm(64, 16);
    EXPECT_TRUE(rm.fits());
    ResourceUsage t = rm.total();
    // Paper: ~40% LUT, ~43% FF, ~59% BRAM, ~11% URAM, ~39% DSP.
    EXPECT_LT(ResourceModel::lutPct(t), 55.0);
    EXPECT_GT(ResourceModel::lutPct(t), 25.0);
    EXPECT_LT(ResourceModel::dspPct(t), 50.0);
    EXPECT_GT(ResourceModel::dspPct(t), 30.0);
}

TEST(ResourceModel, D64L16IsCheapestEqualThroughputPoint)
{
    // Fig. 8(b): among the equal-throughput tilings (16,64), (32,32),
    // (64,16), the (64,16) point uses the least logic.
    ResourceModel a(16, 64), b(32, 32), c(64, 16);
    EXPECT_GT(a.total().lut, b.total().lut);
    EXPECT_GT(b.total().lut, c.total().lut);
    EXPECT_GT(a.total().ff, b.total().ff);
    EXPECT_GT(b.total().ff, c.total().ff);
    // DSP stays roughly constant (same MAC count).
    EXPECT_NEAR(a.total().dsp / c.total().dsp, 1.0, 0.1);
}

TEST(Percentile, InterpolatedPercentileIsStableForSmallSamples)
{
    // Regression: p99 used to index-clamp to the maximum, so with
    // n=3 it reported the max outright. The interpolated helper
    // blends the neighbouring order statistics instead.
    EXPECT_NEAR(perf::percentile({1.0, 2.0, 3.0}, 0.99), 2.98, 1e-12);
    EXPECT_NEAR(perf::percentile({3.0, 1.0, 2.0}, 0.5), 2.0,
                1e-12);  // unsorted input is sorted internally
    EXPECT_DOUBLE_EQ(perf::percentile({1.0, 2.0, 3.0}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(perf::percentile({1.0, 2.0, 3.0}, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(perf::percentile({7.5}, 0.99), 7.5);
    EXPECT_DOUBLE_EQ(perf::percentile({}, 0.99), 0.0);
    // Out-of-range quantiles clamp instead of indexing out of bounds.
    EXPECT_DOUBLE_EQ(perf::percentile({1.0, 2.0}, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(perf::percentile({1.0, 2.0}, 1.5), 2.0);
}

TEST(Report, TableRendersAligned)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22.5"});
    std::string out = t.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22.5"), std::string::npos);
    // CSV form.
    EXPECT_EQ(t.csv(), "name,value\nalpha,1\nb,22.5\n");
}

TEST(Report, Formatters)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(workloadLabel(32, 256), "[32:256]");
}

}  // namespace
}  // namespace dfx
