/**
 * @file
 * Paged KV-cache tests: the pager's block/reservation/prefix
 * accounting in isolation, and the cluster-level invariants the
 * design is built on — paged execution produces bit-identical tokens
 * (and 1-in-flight timing) to the unpaged layout under arbitrary
 * physical block permutations, copy-on-write forks exactly the
 * divergent block, and prefix-sharing admission skips resident prompt
 * tokens without changing any generated id.
 */
#include <gtest/gtest.h>

#include "appliance/server.hpp"
#include "memory/kv_pager.hpp"
#include "model/weights.hpp"

namespace dfx {
namespace {

// --- pager unit tests (no cluster, no mirrors) -----------------------

KvPager::Config
pagerConfig(size_t block_tokens, size_t phys_blocks, size_t contexts)
{
    KvPager::Config cfg;
    cfg.blockTokens = block_tokens;
    cfg.physBlocks = phys_blocks;
    cfg.maxContexts = contexts;
    cfg.maxSeq = 16;
    cfg.localHeads = 1;
    cfg.headDim = 4;
    cfg.layers = 1;
    return cfg;
}

/** Drives `ctx` through its whole prompt like the cluster would. */
void
writePrompt(KvPager &pager, size_t ctx, size_t prompt_len)
{
    for (size_t pos = 0; pos < prompt_len; ++pos) {
        pager.ensureWritable(ctx, pos);
        pager.onTokenWritten(ctx, pos);
    }
}

TEST(KvPager, ReservationAndPrefixLifecycle)
{
    // B=4, 8-block pool, maxSeq 16 (4 blocks per context).
    KvPager pager(pagerConfig(4, 8, 4));
    const std::vector<int32_t> prompt = {1, 2, 3, 4, 5, 6};

    size_t shared = 99;
    ASSERT_TRUE(pager.tryOpen(0, prompt, 2, true, &shared));
    EXPECT_EQ(shared, 0u);  // empty index: nothing to alias
    EXPECT_EQ(pager.activeContexts(), 1u);

    writePrompt(pager, 0, prompt.size());
    // Prompt registered: ceil(6/4) = 2 blocks pinned by the index.
    EXPECT_EQ(pager.prefixLookups(), 1u);
    EXPECT_EQ(pager.prefixHits(), 0u);
    const int32_t b0 = pager.blockAt(0, 0);
    const int32_t b1 = pager.blockAt(0, 1);
    ASSERT_GE(b0, 0);
    ASSERT_GE(b1, 0);

    // A second request with the same prompt aliases the prefix. The
    // share is capped at prompt.size() - 1 = 5 tokens: the final
    // prompt token is always stepped fresh so prefill still produces
    // the logits that choose the first generated token.
    ASSERT_TRUE(pager.tryOpen(1, prompt, 2, true, &shared));
    EXPECT_EQ(shared, 5u);
    EXPECT_EQ(pager.prefixHits(), 1u);
    EXPECT_EQ(pager.blockAt(1, 0), b0);
    EXPECT_EQ(pager.blockAt(1, 1), b1);

    // First divergent write (pos 5 lies in the shared partial tail
    // block): context 1 forks exactly that block; context 0 and the
    // index keep theirs.
    pager.ensureWritable(1, 5);
    EXPECT_EQ(pager.blockAt(1, 0), b0);
    EXPECT_NE(pager.blockAt(1, 1), b1);
    EXPECT_EQ(pager.blockAt(0, 0), b0);
    EXPECT_EQ(pager.blockAt(0, 1), b1);

    pager.close(0);
    pager.close(1);
    EXPECT_EQ(pager.activeContexts(), 0u);
    // Everything returned except the 2 blocks the index still pins.
    EXPECT_EQ(pager.freeBlocks(), 6u);
}

TEST(KvPager, EvictsPrefixEntriesUnderPressure)
{
    KvPager pager(pagerConfig(4, 8, 4));
    // Register two disjoint 8-token prompts: 2 pinned blocks each.
    for (size_t r = 0; r < 2; ++r) {
        std::vector<int32_t> prompt(8);
        for (size_t j = 0; j < prompt.size(); ++j)
            prompt[j] = static_cast<int32_t>(100 * r + j);
        size_t shared = 0;
        ASSERT_TRUE(pager.tryOpen(0, prompt, 4, true, &shared));
        writePrompt(pager, 0, prompt.size());
        pager.close(0);
    }
    EXPECT_EQ(pager.freeBlocks(), 4u);

    // A 16-token request needs all 4 context blocks; with only 4 free
    // the pager evicts index entries (FIFO) until it fits.
    std::vector<int32_t> big(12, 7);
    size_t shared = 0;
    ASSERT_TRUE(pager.tryOpen(0, big, 4, true, &shared));
    EXPECT_EQ(shared, 0u);
    writePrompt(pager, 0, big.size());
    pager.close(0);

    // A request larger than the whole pool can never be admitted.
    KvPager small(pagerConfig(4, 4, 2));
    std::vector<int32_t> full(12, 3);
    ASSERT_TRUE(small.tryOpen(0, full, 4, false, &shared));
    std::vector<int32_t> more(12, 5);
    EXPECT_FALSE(small.tryOpen(1, more, 4, false, &shared));
    small.close(0);
    // Once the holder leaves, the same request fits.
    EXPECT_TRUE(small.tryOpen(1, more, 4, false, &shared));
    small.close(1);
}

TEST(KvPager, FailedOpenLeavesPrefixIndexIntact)
{
    // Two live contexts fill the whole 8-block pool (4 blocks each),
    // both prompts registered in the index.
    KvPager pager(pagerConfig(4, 8, 4));
    std::vector<int32_t> prompt(8);
    for (size_t j = 0; j < prompt.size(); ++j)
        prompt[j] = static_cast<int32_t>(j + 1);
    size_t shared = 0;
    ASSERT_TRUE(pager.tryOpen(0, prompt, 8, true, &shared));
    writePrompt(pager, 0, prompt.size());
    for (size_t pos = prompt.size(); pos < 16; ++pos)
        pager.ensureWritable(0, pos);
    std::vector<int32_t> other(8);
    for (size_t j = 0; j < other.size(); ++j)
        other[j] = static_cast<int32_t>(200 + j);
    ASSERT_TRUE(pager.tryOpen(1, other, 8, true, &shared));
    EXPECT_EQ(shared, 0u);  // disjoint prompts
    writePrompt(pager, 1, other.size());

    // A prefix-sharing request cannot fit, and evicting the index
    // would free *nothing* — every pinned block is still held by a
    // live context. The failed open must leave the index untouched;
    // wiping it here was the bug that zeroed the prefix hit rate
    // whenever admission ran into a momentarily full pool.
    std::vector<int32_t> big = prompt;
    big.resize(12, 42);
    EXPECT_FALSE(pager.tryOpen(2, big, 4, true, &shared));

    pager.close(0);
    // The surviving index still serves the prefix: the same request
    // now admits against context 0's registered blocks, not from
    // scratch.
    ASSERT_TRUE(pager.tryOpen(2, big, 4, true, &shared));
    EXPECT_EQ(shared, prompt.size());
    EXPECT_EQ(pager.prefixHits(), 1u);
    pager.close(1);
    pager.close(2);
}

// --- cluster-level invariants ----------------------------------------

DfxSystemConfig
toyConfig(size_t kv_contexts, bool paged)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();  // maxSeq 64
    cfg.nCores = 2;
    cfg.functional = true;
    cfg.kvContexts = kv_contexts;
    cfg.pagedKv.enabled = paged;
    cfg.pagedKv.blockTokens = 16;
    return cfg;
}

std::vector<int32_t>
toyPrompt(size_t n, int32_t seed)
{
    std::vector<int32_t> p(n);
    for (size_t j = 0; j < n; ++j)
        p[j] = static_cast<int32_t>((seed * 31 + j * 7 + 3) % 97);
    return p;
}

/** Drives a leased request exactly like DfxAppliance::generate. */
std::vector<int32_t>
driveLease(DfxAppliance &ap, const KvLease &lease,
           const std::vector<int32_t> &prompt, size_t n_out)
{
    StepOutcome pre = ap.prefill(lease, prompt);
    std::vector<int32_t> out;
    int32_t next = pre.next;
    for (size_t i = 0; i < n_out; ++i) {
        out.push_back(next);
        next = ap.decodeStep(lease.ctx(), next).next;
    }
    return out;
}

TEST(PagedKv, TokensAndTimingMatchUnpaged)
{
    // The tentpole invariant: paging changes where KV bytes live, not
    // what any request computes or how long the model says it takes.
    // codegen emits the same virtual addresses either way, so tokens
    // AND modeled seconds are bit-identical — not merely close.
    GptWeights w = GptWeights::random(GptConfig::toy(), 301);
    DfxAppliance unpaged(toyConfig(2, false));
    DfxAppliance paged(toyConfig(2, true));
    unpaged.loadWeights(w);
    paged.loadWeights(w);

    for (int32_t seed = 0; seed < 3; ++seed) {
        const auto prompt = toyPrompt(12, seed);
        GenerationResult a = unpaged.generate(prompt, 10);
        GenerationResult b = paged.generate(prompt, 10);
        EXPECT_EQ(a.tokens, b.tokens) << "seed " << seed;
        EXPECT_EQ(a.summarizationSeconds, b.summarizationSeconds);
        EXPECT_EQ(a.generationSeconds, b.generationSeconds);
        EXPECT_EQ(a.hbmBytes, b.hbmBytes);
        EXPECT_EQ(a.instructions, b.instructions);
    }
}

TEST(PagedKv, TokensMatchUnpagedAcross1_2_4Cores)
{
    // mini has 4 heads, so 1/2/4 cores all divide; the paged==unpaged
    // identity must hold at every intra-layer parallelism degree.
    GptWeights w = GptWeights::random(GptConfig::mini(), 302);
    const auto prompt = toyPrompt(9, 5);
    for (size_t cores : {1u, 2u, 4u}) {
        DfxSystemConfig cfg;
        cfg.model = GptConfig::mini();
        cfg.nCores = cores;
        cfg.functional = true;
        cfg.kvContexts = 2;

        DfxAppliance unpaged(cfg);
        unpaged.loadWeights(w);
        auto expected = unpaged.generate(prompt, 6).tokens;

        cfg.pagedKv.enabled = true;
        cfg.pagedKv.blockTokens = 16;
        DfxAppliance paged(cfg);
        paged.loadWeights(w);
        EXPECT_EQ(paged.generate(prompt, 6).tokens, expected)
            << cores << " cores diverged";
    }
}

TEST(PagedKv, ArbitraryBlockPermutationDecodesIdentically)
{
    // Property: the physical placement of blocks is invisible. Force
    // the allocator through an arbitrary permutation of the pool and
    // require bit-identical tokens to both the default paged order
    // and the linear unpaged layout.
    GptWeights w = GptWeights::random(GptConfig::toy(), 303);
    const std::vector<int32_t> permutation = {7, 2, 5, 0, 6, 1, 3, 4};

    // The permutation really takes effect: first allocation lands on
    // physical block 7, not 0.
    {
        DfxAppliance probe(toyConfig(2, true));
        probe.loadWeights(w);
        probe.cluster().pager()->debugSetFreeOrder(permutation);
        KvLease lease = probe.acquireLease({toyPrompt(4, 9), 2, false});
        probe.prefill(lease, toyPrompt(4, 9));
        EXPECT_EQ(probe.cluster().pager()->blockAt(lease.ctx(), 0), 7);
    }

    DfxAppliance unpaged(toyConfig(2, false));
    DfxAppliance linear(toyConfig(2, true));
    DfxAppliance permuted(toyConfig(2, true));
    unpaged.loadWeights(w);
    linear.loadWeights(w);
    permuted.loadWeights(w);
    permuted.cluster().pager()->debugSetFreeOrder(permutation);

    for (int32_t seed = 0; seed < 4; ++seed) {
        const auto prompt = toyPrompt(10 + static_cast<size_t>(seed),
                                      seed);
        auto expected = unpaged.generate(prompt, 8).tokens;
        EXPECT_EQ(linear.generate(prompt, 8).tokens, expected);
        EXPECT_EQ(permuted.generate(prompt, 8).tokens, expected)
            << "permuted layout diverged at seed " << seed;
    }
}

TEST(PagedKv, CowForksExactlyTheDivergentBlock)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 304);
    DfxAppliance ap(toyConfig(2, true));
    ap.loadWeights(w);
    KvPager *pager = ap.cluster().pager();
    ASSERT_NE(pager, nullptr);

    // Baseline run registers the 20-token prompt in the prefix index
    // (generate() itself never aliases, but it does register).
    const auto prompt = toyPrompt(20, 1);
    const auto expected = ap.generate(prompt, 4).tokens;

    // Two borrowers alias the registered blocks: 19 shared tokens
    // (cap: prompt len - 1), i.e. block 0 fully and block 1 partially.
    KvLease lc = ap.acquireLease({prompt, 4, true});
    KvLease ld = ap.acquireLease({prompt, 4, true});
    EXPECT_EQ(lc.sharedTokens(), 19u);
    EXPECT_EQ(ld.sharedTokens(), 19u);
    const int32_t b0 = pager->blockAt(lc.ctx(), 0);
    const int32_t b1 = pager->blockAt(lc.ctx(), 1);
    EXPECT_EQ(pager->blockAt(ld.ctx(), 0), b0);
    EXPECT_EQ(pager->blockAt(ld.ctx(), 1), b1);

    // C's prefill resumes at pos 19, inside shared block 1: the write
    // forks block 1 and only block 1, leaving D's view untouched.
    const auto c_tokens = driveLease(ap, lc, prompt, 4);
    EXPECT_EQ(pager->blockAt(lc.ctx(), 0), b0);
    EXPECT_NE(pager->blockAt(lc.ctx(), 1), b1);
    EXPECT_EQ(pager->blockAt(ld.ctx(), 0), b0);
    EXPECT_EQ(pager->blockAt(ld.ctx(), 1), b1);

    // Both borrowers reproduce the baseline bit-for-bit: the aliased
    // prefix K/V is the real data, and C's fork did not leak into D.
    EXPECT_EQ(c_tokens, expected);
    EXPECT_EQ(driveLease(ap, ld, prompt, 4), expected);
}

TEST(PagedKv, OversubscribedServerBackpressuresAndMatchesUnpaged)
{
    // 4 virtual contexts over a pool that holds only 2 fully-expanded
    // contexts: admission must wait for blocks, never wedge, and every
    // request's tokens must match the unpaged server's.
    GptWeights w = GptWeights::random(GptConfig::toy(), 305);
    std::vector<ServerRequest> reqs;
    for (int32_t i = 0; i < 6; ++i) {
        ServerRequest r;
        r.prompt = toyPrompt(24, i);
        r.nOut = 6;
        reqs.push_back(std::move(r));
    }

    DfxSystemConfig up = toyConfig(4, false);
    DfxServer unpaged(up, 1);
    unpaged.loadWeights(w);
    ServerStats expected = unpaged.serve(reqs);

    DfxSystemConfig pp = toyConfig(4, true);
    pp.pagedKv.physBlocks = 8;  // 2 contexts' worth (64/16 * 2)
    ServerOptions opts;
    opts.drainDeadlineHostSeconds = 120.0;
    DfxServer paged(pp, 1, opts);
    paged.loadWeights(w);
    ServerStats stats = paged.serve(reqs);

    ASSERT_EQ(stats.results.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(stats.results[i].outcome, RequestOutcome::Completed);
        EXPECT_EQ(stats.results[i].tokens, expected.results[i].tokens)
            << "request " << i << " diverged under block backpressure";
    }
}

}  // namespace
}  // namespace dfx
