/**
 * @file
 * Tensor and reference NN math tests.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/functions.hpp"
#include "numeric/tensor.hpp"

namespace dfx {
namespace {

TEST(Tensor, VectorBasics)
{
    VecF v(4, 1.5f);
    EXPECT_EQ(v.size(), 4u);
    v[2] = 3.0f;
    EXPECT_FLOAT_EQ(v[2], 3.0f);
    EXPECT_FLOAT_EQ(v[0], 1.5f);
}

TEST(Tensor, MatrixBasics)
{
    MatF m(2, 3);
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 3; ++c)
            m.at(r, c) = static_cast<float>(r * 3 + c);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    VecF row1 = m.row(1);
    EXPECT_FLOAT_EQ(row1[0], 3.0f);
    EXPECT_FLOAT_EQ(row1[2], 5.0f);
    VecF col2 = m.col(2);
    EXPECT_FLOAT_EQ(col2[0], 2.0f);
    EXPECT_FLOAT_EQ(col2[1], 5.0f);
}

TEST(Tensor, Slices)
{
    MatF m(3, 4);
    for (size_t r = 0; r < 3; ++r)
        for (size_t c = 0; c < 4; ++c)
            m.at(r, c) = static_cast<float>(10 * r + c);
    MatF cs = m.colSlice(1, 2);
    EXPECT_EQ(cs.rows(), 3u);
    EXPECT_EQ(cs.cols(), 2u);
    EXPECT_FLOAT_EQ(cs.at(2, 0), 21.0f);
    MatF rs = m.rowSlice(1, 2);
    EXPECT_EQ(rs.rows(), 2u);
    EXPECT_FLOAT_EQ(rs.at(0, 3), 13.0f);
}

TEST(Tensor, Transpose)
{
    MatF m(2, 3);
    m.at(0, 1) = 7.0f;
    m.at(1, 2) = -2.0f;
    MatF t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_FLOAT_EQ(t.at(1, 0), 7.0f);
    EXPECT_FLOAT_EQ(t.at(2, 1), -2.0f);
}

TEST(Tensor, HalfConversions)
{
    VecF v(3);
    v[0] = 1.0f;
    v[1] = -2.5f;
    v[2] = 0.1f;
    VecH h = toHalf(v);
    VecF back = toFloat(h);
    EXPECT_FLOAT_EQ(back[0], 1.0f);
    EXPECT_FLOAT_EQ(back[1], -2.5f);
    EXPECT_NEAR(back[2], 0.1f, 1e-4f);
}

TEST(Functions, GeluKnownValues)
{
    EXPECT_NEAR(geluExact(0.0f), 0.0f, 1e-7f);
    // GELU(x) -> x for large x, -> 0 for very negative x.
    EXPECT_NEAR(geluExact(8.0f), 8.0f, 1e-4f);
    EXPECT_NEAR(geluExact(-8.0f), 0.0f, 1e-4f);
    // Published value: GELU(1) ~= 0.8412 (tanh approximation).
    EXPECT_NEAR(geluExact(1.0f), 0.84119f, 1e-4f);
    EXPECT_NEAR(geluExact(-1.0f), -0.15881f, 1e-4f);
}

TEST(Functions, GeluMonotoneAboveZero)
{
    float prev = geluExact(0.0f);
    for (float x = 0.05f; x < 8.0f; x += 0.05f) {
        float y = geluExact(x);
        EXPECT_GE(y, prev);
        prev = y;
    }
}

TEST(Functions, SoftmaxSumsToOne)
{
    VecF v(5);
    v[0] = 1.0f; v[1] = -2.0f; v[2] = 0.5f; v[3] = 3.0f; v[4] = 3.0f;
    VecF s = softmax(v);
    float sum = 0.0f;
    for (size_t i = 0; i < s.size(); ++i) {
        EXPECT_GT(s[i], 0.0f);
        sum += s[i];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    // Equal logits get equal probability.
    EXPECT_FLOAT_EQ(s[3], s[4]);
    // Ordering is preserved.
    EXPECT_GT(s[3], s[0]);
    EXPECT_GT(s[0], s[1]);
}

TEST(Functions, SoftmaxStableForLargeInputs)
{
    VecF v(3);
    v[0] = 1000.0f; v[1] = 1001.0f; v[2] = 999.0f;
    VecF s = softmax(v);
    EXPECT_FALSE(std::isnan(s[0]));
    float sum = s[0] + s[1] + s[2];
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(s[1], s[0]);
}

TEST(Functions, LayerNormZeroMeanUnitVar)
{
    const size_t n = 64;
    VecF x(n), gamma(n, 1.0f), beta(n, 0.0f);
    for (size_t i = 0; i < n; ++i)
        x[i] = static_cast<float>(i) * 0.25f - 3.0f;
    VecF y = layerNorm(x, gamma, beta);
    double mean = 0.0, var = 0.0;
    for (size_t i = 0; i < n; ++i)
        mean += y[i];
    mean /= n;
    for (size_t i = 0; i < n; ++i)
        var += (y[i] - mean) * (y[i] - mean);
    var /= n;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
}

TEST(Functions, LayerNormGammaBeta)
{
    const size_t n = 8;
    VecF x(n), gamma(n, 2.0f), beta(n, 1.0f);
    for (size_t i = 0; i < n; ++i)
        x[i] = static_cast<float>(i);
    VecF y = layerNorm(x, gamma, beta);
    // Mean of y should be beta (gamma scales zero-mean values).
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i)
        mean += y[i];
    EXPECT_NEAR(mean / n, 1.0, 1e-5);
}

TEST(Functions, MatVec)
{
    // W is (in=2 x out=3); y = W^T x + b.
    MatF w(2, 3);
    w.at(0, 0) = 1; w.at(0, 1) = 2; w.at(0, 2) = 3;
    w.at(1, 0) = 4; w.at(1, 1) = 5; w.at(1, 2) = 6;
    VecF x(2); x[0] = 1.0f; x[1] = 2.0f;
    VecF b(3); b[0] = 0.5f; b[1] = -0.5f; b[2] = 0.0f;
    VecF y = matVec(w, x, b);
    EXPECT_FLOAT_EQ(y[0], 1 * 1 + 4 * 2 + 0.5f);
    EXPECT_FLOAT_EQ(y[1], 2 * 1 + 5 * 2 - 0.5f);
    EXPECT_FLOAT_EQ(y[2], 3 * 1 + 6 * 2);
}

TEST(Functions, Argmax)
{
    VecF v(4);
    v[0] = 0.5f; v[1] = 3.0f; v[2] = 3.0f; v[3] = -1.0f;
    EXPECT_EQ(argmax(v), 1u);  // first max wins
}

TEST(Tensor, MaxAbsDiff)
{
    VecF a(3), b(3);
    a[0] = 1; a[1] = 2; a[2] = 3;
    b[0] = 1; b[1] = 2.5f; b[2] = 2.9f;
    EXPECT_FLOAT_EQ(maxAbsDiff(a, b), 0.5f);
}

}  // namespace
}  // namespace dfx
