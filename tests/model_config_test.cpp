/**
 * @file
 * GPT-2 configuration tests (paper Table I).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "model/config.hpp"
#include "model/weights.hpp"

namespace dfx {
namespace {

TEST(GptConfig, TableI_345M)
{
    GptConfig c = GptConfig::gpt2_345M();
    EXPECT_EQ(c.embedding, 1024u);
    EXPECT_EQ(c.heads, 16u);
    EXPECT_EQ(c.headDim, 64u);
    EXPECT_EQ(c.layers, 24u);
    // "345M" counts parameters: should land within 10% of the name.
    double params = static_cast<double>(c.parameterCount());
    EXPECT_NEAR(params / 1e6, 345.0, 45.0);
}

TEST(GptConfig, TableI_774M)
{
    GptConfig c = GptConfig::gpt2_774M();
    EXPECT_EQ(c.embedding, 1280u);
    EXPECT_EQ(c.heads, 20u);
    EXPECT_EQ(c.headDim, 64u);
    EXPECT_EQ(c.layers, 36u);
    double params = static_cast<double>(c.parameterCount());
    EXPECT_NEAR(params / 1e6, 774.0, 80.0);
}

TEST(GptConfig, TableI_1_5B)
{
    GptConfig c = GptConfig::gpt2_1_5B();
    EXPECT_EQ(c.embedding, 1536u);
    EXPECT_EQ(c.heads, 24u);
    EXPECT_EQ(c.headDim, 64u);
    EXPECT_EQ(c.layers, 48u);
    double params = static_cast<double>(c.parameterCount());
    EXPECT_NEAR(params / 1e9, 1.5, 0.2);
}

TEST(GptConfig, DerivedQuantities)
{
    GptConfig c = GptConfig::gpt2_1_5B();
    EXPECT_EQ(c.ffnHidden(), 4 * 1536u);
    EXPECT_EQ(c.layerMatrixParams(), 12 * 1536u * 1536u);
    EXPECT_EQ(c.parameterBytes(), c.parameterCount() * 2);
}

TEST(GptConfig, ByName)
{
    EXPECT_EQ(GptConfig::byName("345M").embedding, 1024u);
    EXPECT_EQ(GptConfig::byName("774M").layers, 36u);
    EXPECT_EQ(GptConfig::byName("1.5B").heads, 24u);
    EXPECT_EQ(GptConfig::byName("toy").name, "toy");
    EXPECT_EQ(GptConfig::byName("mini").headDim, 64u);
}

TEST(GptConfig, TestConfigsConsistent)
{
    GptConfig::toy().validate();
    GptConfig::mini().validate();
}

TEST(GptConfig, ByNameRejectsUnknownNames)
{
    EXPECT_DEATH(GptConfig::byName("gpt5"), "unknown model config");
    EXPECT_DEATH(GptConfig::byName(""), "unknown model config");
    EXPECT_DEATH(GptConfig::byName("345m"), "unknown model config");
}

TEST(GptWeights, CountMatchesConfig)
{
    GptConfig c = GptConfig::toy();
    GptWeights w = GptWeights::random(c, 1);
    EXPECT_EQ(w.parameterCount(), c.parameterCount());
}

TEST(GptWeights, DeterministicForSeed)
{
    GptConfig c = GptConfig::toy();
    GptWeights a = GptWeights::random(c, 99);
    GptWeights b = GptWeights::random(c, 99);
    EXPECT_EQ(a.wte.at(5, 7).bits(), b.wte.at(5, 7).bits());
    EXPECT_EQ(a.layers[1].wfc1.at(3, 11).bits(),
              b.layers[1].wfc1.at(3, 11).bits());
    GptWeights d = GptWeights::random(c, 100);
    EXPECT_NE(a.wte.at(5, 7).bits(), d.wte.at(5, 7).bits());
}

TEST(GptWeights, InitStatistics)
{
    GptConfig c = GptConfig::mini();
    GptWeights w = GptWeights::random(c, 3);
    // Matrix entries ~ N(0, 0.02): check sample std on a big matrix.
    double sq = 0.0;
    size_t n = 0;
    for (size_t r = 0; r < w.wte.rows(); ++r) {
        for (size_t col = 0; col < w.wte.cols(); ++col) {
            double v = w.wte.at(r, col).toFloat();
            sq += v * v;
            ++n;
        }
    }
    double std = std::sqrt(sq / static_cast<double>(n));
    EXPECT_NEAR(std, 0.02, 0.002);
    // LN gamma near 1.
    double gsum = 0.0;
    for (size_t i = 0; i < w.lnfGamma.size(); ++i)
        gsum += w.lnfGamma[i].toFloat();
    EXPECT_NEAR(gsum / static_cast<double>(w.lnfGamma.size()), 1.0, 0.02);
}

}  // namespace
}  // namespace dfx
