/**
 * @file
 * Fault-injection and failover tests: plan validation, deterministic
 * fail-stop failover (tokens bit-identical to serial, every request
 * finishes), straggler and link-degrade timing, SLO shedding,
 * retry-budget exhaustion, whole-fleet death, the drain watchdog,
 * and determinism invariant 7 (empty-plan bit-identity; faulted-run
 * reproducibility from (plan, seed)).
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "appliance/faults.hpp"
#include "appliance/server.hpp"
#include "appliance/workload.hpp"
#include "model/weights.hpp"

namespace dfx {
namespace {

DfxSystemConfig
functionalConfig(size_t kv_contexts)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 2;
    cfg.functional = true;
    cfg.kvContexts = kv_contexts;
    return cfg;
}

DfxSystemConfig
timingConfig(size_t kv_contexts)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::mini();
    cfg.nCores = 2;
    cfg.functional = false;
    cfg.kvContexts = kv_contexts;
    return cfg;
}

/** Distinct deterministic prompts, all within the toy vocab (97). */
std::vector<ServerRequest>
distinctRequests(size_t n, size_t n_in, size_t n_out)
{
    std::vector<ServerRequest> reqs;
    for (size_t i = 0; i < n; ++i) {
        ServerRequest r;
        for (size_t j = 0; j < n_in; ++j)
            r.prompt.push_back(
                static_cast<int32_t>((i * 31 + j * 7 + 3) % 97));
        r.nOut = n_out;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

/** Serial single-request reference tokens for `reqs`. */
std::vector<std::vector<int32_t>>
serialTokens(const GptWeights &w,
             const std::vector<ServerRequest> &reqs)
{
    DfxAppliance serial(functionalConfig(1));
    serial.loadWeights(w);
    std::vector<std::vector<int32_t>> expected;
    for (const auto &r : reqs)
        expected.push_back(serial.generate(r.prompt, r.nOut).tokens);
    return expected;
}

TEST(FaultPlanValidation, RejectsMalformedPlans)
{
    {
        FaultPlan p;
        p.failStops.push_back({3, 1.0});  // only 2 clusters
        EXPECT_DEATH(p.validate(2), "out of range");
    }
    {
        FaultPlan p;
        p.failStops.push_back({0, -1.0});
        EXPECT_DEATH(p.validate(2), "finite and non-negative");
    }
    {
        FaultPlan p;
        p.slowdowns.push_back({0, 2.0, 2.0, 4.0});  // empty window
        EXPECT_DEATH(p.validate(2), "empty or ill-formed");
    }
    {
        FaultPlan p;
        p.slowdowns.push_back({0, 0.0, 1.0, 0.5});  // speedup
        EXPECT_DEATH(p.validate(2), "must be >= 1");
    }
    {
        FaultPlan p;
        p.linkDegrades.push_back({1.0, 0.5, 2.0});  // backwards
        EXPECT_DEATH(p.validate(2), "empty or ill-formed");
    }
    // The server validates its plan at construction.
    FaultPlan bad;
    bad.failStops.push_back({7, 1.0});
    ServerOptions opts;
    opts.faultPlan = bad;
    EXPECT_DEATH(DfxServer(functionalConfig(1), 2, opts),
                 "out of range");
}

TEST(FaultPlanValidation, WindowLookups)
{
    FaultPlan p;
    p.slowdowns.push_back({0, 1.0, 2.0, 4.0});
    p.slowdowns.push_back({0, 1.5, 3.0, 2.0});  // overlaps the first
    p.slowdowns.push_back({1, 0.0, 10.0, 8.0});
    p.linkDegrades.push_back({5.0, 6.0, 3.0});
    // Outside every window the factor is exactly 1 (bit-identity).
    EXPECT_EQ(p.slowdownFactor(0, 0.5), 1.0);
    EXPECT_EQ(p.slowdownFactor(0, 2.0), 2.0);  // half-open: [from, to)
    EXPECT_EQ(p.slowdownFactor(0, 1.0), 4.0);
    EXPECT_EQ(p.slowdownFactor(0, 1.75), 8.0);  // windows multiply
    EXPECT_EQ(p.slowdownFactor(1, 1.75), 8.0);
    EXPECT_EQ(p.linkFactor(4.9), 1.0);
    EXPECT_EQ(p.linkFactor(5.0), 3.0);
    EXPECT_EQ(p.linkFactor(6.0), 1.0);
}

TEST(FaultPlanValidation, RandomPlanIsSeedStable)
{
    const FaultPlan a = FaultPlan::random(9, 4, 10.0, 12);
    const FaultPlan b = FaultPlan::random(9, 4, 10.0, 12);
    ASSERT_EQ(a.failStops.size(), b.failStops.size());
    for (size_t i = 0; i < a.failStops.size(); ++i) {
        EXPECT_EQ(a.failStops[i].cluster, b.failStops[i].cluster);
        EXPECT_EQ(a.failStops[i].atSeconds, b.failStops[i].atSeconds);
    }
    ASSERT_EQ(a.slowdowns.size(), b.slowdowns.size());
    for (size_t i = 0; i < a.slowdowns.size(); ++i) {
        EXPECT_EQ(a.slowdowns[i].cluster, b.slowdowns[i].cluster);
        EXPECT_EQ(a.slowdowns[i].factor, b.slowdowns[i].factor);
    }
    ASSERT_EQ(a.linkDegrades.size(), b.linkDegrades.size());
    a.validate(4);
    // A generated plan never fail-stops every cluster: at least one
    // survivor exists so failover always has a target.
    std::vector<bool> killed(4, false);
    for (const auto &fs : a.failStops)
        killed[fs.cluster] = true;
    EXPECT_TRUE(std::find(killed.begin(), killed.end(), false) !=
                killed.end());
}

TEST(Faults, FailStopFailoverFinishesEveryRequestBitIdentical)
{
    // Kill 1 of 2 clusters mid-pool: every displaced or waiting
    // request re-homes onto the survivor and the tokens still match
    // the serial single-request reference bit for bit.
    GptWeights w = GptWeights::random(GptConfig::toy(), 301);
    auto reqs = distinctRequests(10, 4, 12);
    auto expected = serialTokens(w, reqs);

    DfxServer healthy(functionalConfig(2), 2);
    healthy.loadWeights(w);
    const double healthy_makespan =
        healthy.serve(reqs).makespanSeconds;
    ASSERT_GT(healthy_makespan, 0.0);

    ServerOptions opts;
    opts.faultPlan.failStops.push_back({0, 0.45 * healthy_makespan});
    opts.drainDeadlineHostSeconds = 120.0;
    DfxServer server(functionalConfig(2), 2, opts);
    server.loadWeights(w);
    ServerStats stats = server.serve(reqs);

    ASSERT_EQ(stats.results.size(), reqs.size());
    EXPECT_EQ(stats.completedRequests, reqs.size());
    EXPECT_EQ(stats.totalFailed, 0u);
    EXPECT_EQ(stats.totalShed, 0u);
    EXPECT_GE(stats.totalFailovers, 1u);
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(stats.results[i].outcome, RequestOutcome::Completed);
        EXPECT_EQ(stats.results[i].tokens, expected[i])
            << "request " << i << " diverged across failover";
        // The dead cluster serves nothing after the fail-stop; any
        // request that finished after it must have run on cluster 1.
        if (stats.results[i].finishSimSeconds >
            0.45 * healthy_makespan) {
            EXPECT_EQ(stats.results[i].cluster, 1u);
        }
    }
    ASSERT_EQ(stats.clusters.size(), 2u);
    EXPECT_EQ(stats.clusters[0].health, ClusterHealth::Failed);
    EXPECT_EQ(stats.clusters[1].health, ClusterHealth::Healthy);
    // Losing half the fleet mid-serve must cost simulated time, but
    // failover must beat serving the whole pool on one cluster from
    // scratch (the naive no-failover bound).
    EXPECT_GT(stats.makespanSeconds, healthy_makespan);
    DfxServer naive(functionalConfig(2), 1);
    naive.loadWeights(w);
    EXPECT_LT(stats.makespanSeconds,
              naive.serve(reqs).makespanSeconds);
}

TEST(Faults, FaultedRunIsReproducible)
{
    // Invariant 7, second half: a faulted run is a pure function of
    // (plan, workload) — same placements, clocks and counters on
    // every run.
    GptWeights w = GptWeights::random(GptConfig::toy(), 302);
    auto reqs = distinctRequests(8, 4, 10);
    ServerOptions opts;
    opts.faultPlan.failStops.push_back({1, 0.002});
    opts.faultPlan.slowdowns.push_back({0, 0.0, 0.01, 3.0});

    auto run = [&] {
        DfxServer server(functionalConfig(2), 2, opts);
        server.loadWeights(w);
        return server.serve(reqs);
    };
    ServerStats a = run();
    ServerStats b = run();
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].cluster, b.results[i].cluster);
        EXPECT_EQ(a.results[i].outcome, b.results[i].outcome);
        EXPECT_EQ(a.results[i].retries, b.results[i].retries);
        EXPECT_EQ(a.results[i].tokens, b.results[i].tokens);
        EXPECT_EQ(a.results[i].admitSimSeconds,
                  b.results[i].admitSimSeconds);
        EXPECT_EQ(a.results[i].finishSimSeconds,
                  b.results[i].finishSimSeconds);
    }
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.totalFailovers, b.totalFailovers);
    EXPECT_EQ(a.totalRetries, b.totalRetries);
    EXPECT_EQ(a.requeuedTokens, b.requeuedTokens);
}

TEST(Faults, EmptyPlanIsBitIdentical)
{
    // Invariant 7, first half: an explicitly-empty plan (plus the
    // other fault knobs at rest, plus the drain watchdog) leaves
    // every timestamp and token bit-identical to the default server.
    GptWeights w = GptWeights::random(GptConfig::toy(), 303);
    WorkloadSpec spec;
    spec.nRequests = 8;
    spec.nIn = 4;
    spec.nOut = 10;
    spec.vocab = 97;
    spec.seed = 11;
    auto reqs = poissonWorkload(spec, 500.0);

    DfxServer plain(functionalConfig(2), 2);
    plain.loadWeights(w);
    ServerStats base = plain.serve(reqs);

    ServerOptions opts;
    opts.faultPlan = FaultPlan{};
    opts.retryBudget = 5;
    opts.drainDeadlineHostSeconds = 120.0;
    DfxServer armed(functionalConfig(2), 2, opts);
    armed.loadWeights(w);
    ServerStats same = armed.serve(reqs);

    ASSERT_EQ(base.results.size(), same.results.size());
    for (size_t i = 0; i < base.results.size(); ++i) {
        EXPECT_EQ(base.results[i].cluster, same.results[i].cluster);
        EXPECT_EQ(base.results[i].tokens, same.results[i].tokens);
        EXPECT_EQ(base.results[i].admitSimSeconds,
                  same.results[i].admitSimSeconds);
        EXPECT_EQ(base.results[i].firstTokenSimSeconds,
                  same.results[i].firstTokenSimSeconds);
        EXPECT_EQ(base.results[i].finishSimSeconds,
                  same.results[i].finishSimSeconds);
    }
    EXPECT_EQ(base.makespanSeconds, same.makespanSeconds);
    EXPECT_EQ(same.totalFailovers, 0u);
    EXPECT_EQ(same.totalShed, 0u);
    for (const auto &cs : same.clusters) {
        EXPECT_EQ(cs.health, ClusterHealth::Healthy);
        EXPECT_EQ(cs.busyDegradedSeconds, 0.0);
        EXPECT_EQ(cs.utilizationHealthy, cs.utilization);
    }
}

TEST(Faults, SlowdownWindowInflatesMakespanOnly)
{
    // A straggler window charges time, never changes tokens: the
    // faulted makespan lands strictly between healthy and the naive
    // factor x healthy bound, and busyDegradedSeconds accounts for
    // the degraded rounds.
    auto run = [&](const FaultPlan &plan) {
        ServerOptions opts;
        opts.faultPlan = plan;
        DfxServer server(timingConfig(2), 1, opts);
        return server.serve(distinctRequests(6, 8, 16));
    };
    ServerStats healthy = run(FaultPlan{});
    FaultPlan plan;
    plan.slowdowns.push_back(
        {0, 0.25 * healthy.makespanSeconds,
         0.75 * healthy.makespanSeconds, 4.0});
    ServerStats slow = run(plan);
    EXPECT_GT(slow.makespanSeconds, healthy.makespanSeconds);
    EXPECT_LT(slow.makespanSeconds, 4.0 * healthy.makespanSeconds);
    EXPECT_GT(slow.clusters[0].busyDegradedSeconds, 0.0);
    EXPECT_GT(slow.clusters[0].utilizationDegraded, 0.0);
    EXPECT_EQ(healthy.clusters[0].busyDegradedSeconds, 0.0);
    EXPECT_EQ(slow.completedRequests, healthy.completedRequests);
}

TEST(Faults, LinkDegradeChargesPcieTransfers)
{
    auto run = [&](const FaultPlan &plan) {
        ServerOptions opts;
        opts.faultPlan = plan;
        DfxServer server(timingConfig(2), 1, opts);
        return server.serve(distinctRequests(6, 8, 16)).makespanSeconds;
    };
    const double healthy = run(FaultPlan{});
    FaultPlan plan;
    plan.linkDegrades.push_back({0.0, 1e9, 50.0});
    EXPECT_GT(run(plan), healthy);
}

TEST(Faults, ShedsNewestWaitersUnderOverload)
{
    // One cluster, one slot, a pool of identical requests and a tight
    // TTFT budget: the oldest waiters still finish (bit-identical
    // tokens), the newest are shed — and reported, never dropped.
    GptWeights w = GptWeights::random(GptConfig::toy(), 304);
    auto reqs = distinctRequests(1, 4, 8);
    reqs.assign(12, reqs[0]);  // identical requests, all arrive at t=0
    auto expected = serialTokens(w, {reqs[0]});

    DfxServer probe(functionalConfig(1), 1);
    probe.loadWeights(w);
    const double one =
        probe.serve({reqs[0]}).results[0].latencySeconds();

    ServerOptions opts;
    opts.sloTtftBudgetSeconds = 3.0 * one;
    DfxServer server(functionalConfig(1), 1, opts);
    server.loadWeights(w);
    ServerStats stats = server.serve(reqs);

    ASSERT_EQ(stats.results.size(), reqs.size());
    EXPECT_GE(stats.totalShed, 1u);
    EXPECT_EQ(stats.totalFailed, 0u);
    EXPECT_EQ(stats.completedRequests + stats.totalShed, reqs.size());
    uint64_t max_completed = 0, min_shed = UINT64_MAX;
    for (const RequestResult &r : stats.results) {
        if (r.outcome == RequestOutcome::Completed) {
            EXPECT_EQ(r.tokens, expected[0]);
            max_completed = std::max(max_completed, r.id);
        } else {
            ASSERT_EQ(r.outcome, RequestOutcome::Shed);
            EXPECT_TRUE(r.tokens.empty());
            min_shed = std::min(min_shed, r.id);
        }
    }
    // Newest-first: every shed request is newer than every completed
    // one (equal arrivals tie-break by submission id).
    EXPECT_GT(min_shed, max_completed);
}

TEST(Faults, RetryBudgetZeroSurfacesFailedResults)
{
    // With no retries allowed, requests displaced mid-generation by
    // the fail-stop surface as Failed results; untouched requests and
    // never-started waiters still complete.
    GptWeights w = GptWeights::random(GptConfig::toy(), 305);
    auto reqs = distinctRequests(10, 4, 12);

    DfxServer healthy(functionalConfig(2), 2);
    healthy.loadWeights(w);
    const double mid = 0.5 * healthy.serve(reqs).makespanSeconds;

    ServerOptions opts;
    opts.retryBudget = 0;
    opts.faultPlan.failStops.push_back({0, mid});
    DfxServer server(functionalConfig(2), 2, opts);
    server.loadWeights(w);
    ServerStats stats = server.serve(reqs);

    ASSERT_EQ(stats.results.size(), reqs.size());
    EXPECT_GE(stats.totalFailed, 1u);
    EXPECT_EQ(stats.completedRequests + stats.totalFailed,
              reqs.size());
    for (const RequestResult &r : stats.results) {
        if (r.outcome == RequestOutcome::Failed) {
            EXPECT_EQ(r.retries, 1u);  // the one displacement
            EXPECT_TRUE(r.tokens.empty());
        }
    }
}

TEST(Faults, WholeFleetDeathFailsEveryRequestWithoutHanging)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 306);
    auto reqs = distinctRequests(6, 4, 8);
    ServerOptions opts;
    opts.faultPlan.failStops.push_back({0, 0.0});
    opts.faultPlan.failStops.push_back({1, 0.0});
    opts.drainDeadlineHostSeconds = 60.0;
    DfxServer server(functionalConfig(2), 2, opts);
    server.loadWeights(w);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), reqs.size());
    EXPECT_EQ(stats.totalFailed, reqs.size());
    EXPECT_EQ(stats.completedRequests, 0u);
    for (const RequestResult &r : stats.results)
        EXPECT_EQ(r.outcome, RequestOutcome::Failed);
}

TEST(Faults, DoubleFailStopIsIdempotent)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 307);
    auto reqs = distinctRequests(8, 4, 10);
    auto expected = serialTokens(w, reqs);

    ServerOptions opts;
    opts.faultPlan.failStops.push_back({0, 0.001});
    opts.faultPlan.failStops.push_back({0, 0.002});  // same cluster
    DfxServer server(functionalConfig(2), 2, opts);
    server.loadWeights(w);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), reqs.size());
    EXPECT_EQ(stats.completedRequests, reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(stats.results[i].tokens, expected[i]);
    // The second event on an already-dead cluster must not double-
    // count displacements.
    EXPECT_EQ(stats.clusters[0].health, ClusterHealth::Failed);
}

TEST(Faults, EpochResetReplaysThePlan)
{
    // The plan re-arms per drain epoch: a second serve on the same
    // server sees the same fail-stop and the same failover behavior.
    GptWeights w = GptWeights::random(GptConfig::toy(), 308);
    auto reqs = distinctRequests(8, 4, 10);
    ServerOptions opts;
    opts.faultPlan.failStops.push_back({0, 0.002});
    DfxServer server(functionalConfig(2), 2, opts);
    server.loadWeights(w);
    ServerStats first = server.serve(reqs);
    ServerStats second = server.serve(reqs);
    EXPECT_EQ(first.makespanSeconds, second.makespanSeconds);
    EXPECT_EQ(first.totalFailovers, second.totalFailovers);
    ASSERT_EQ(first.results.size(), second.results.size());
    for (size_t i = 0; i < first.results.size(); ++i) {
        EXPECT_EQ(first.results[i].cluster, second.results[i].cluster);
        EXPECT_EQ(first.results[i].finishSimSeconds,
                  second.results[i].finishSimSeconds);
    }
}

TEST(Faults, DrainDeadlineFailsLoudlyWithDiagnostics)
{
    // A deadline far too short for the workload must die with the
    // watchdog report, not hang: the message names the deadline and
    // carries per-cluster health.
    EXPECT_DEATH(
        {
            ServerOptions opts;
            opts.drainDeadlineHostSeconds = 1e-4;
            DfxServer server(functionalConfig(1), 1, opts);
            GptWeights w = GptWeights::random(GptConfig::toy(), 309);
            server.loadWeights(w);
            server.serve(distinctRequests(16, 8, 40));
        },
        "drain deadline");
}

}  // namespace
}  // namespace dfx
