/**
 * @file
 * End-to-end integration tests: the simulated DFX cluster executes
 * GPT-2 in FP16 through the full ISA/core/ring stack and must agree
 * with the high-precision reference model — for every cluster size.
 * This is the central correctness claim of the reproduction.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "appliance/appliance.hpp"
#include "model/reference.hpp"
#include "numeric/functions.hpp"

namespace dfx {
namespace {

DfxSystemConfig
functionalConfig(const GptConfig &model, size_t n_cores)
{
    DfxSystemConfig cfg;
    cfg.model = model;
    cfg.nCores = n_cores;
    cfg.functional = true;
    return cfg;
}

/** Fraction of positions where the two token streams agree. */
double
agreement(const std::vector<int32_t> &a, const std::vector<int32_t> &b)
{
    EXPECT_EQ(a.size(), b.size());
    size_t same = 0;
    for (size_t i = 0; i < a.size(); ++i)
        same += a[i] == b[i];
    return static_cast<double>(same) / static_cast<double>(a.size());
}

TEST(ClusterFunctional, ToyModelMatchesReferenceSingleCore)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 42);
    DfxAppliance appliance(functionalConfig(w.config, 1));
    appliance.loadWeights(w);
    ReferenceModel ref(w);

    std::vector<int32_t> prompt = {3, 14, 15, 92, 6};
    auto dfx_out = appliance.generate(prompt, 8).tokens;
    auto ref_out = ref.generate(prompt, 8);
    // FP16 vs FP32 can diverge on near-ties; with seeded weights the
    // greedy paths coincide.
    EXPECT_GE(agreement(dfx_out, ref_out), 0.99)
        << "dfx and reference disagree";
}

TEST(ClusterFunctional, ToyModelMatchesReferenceTwoCores)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 43);
    DfxAppliance appliance(functionalConfig(w.config, 2));
    appliance.loadWeights(w);
    ReferenceModel ref(w);

    std::vector<int32_t> prompt = {10, 20, 30};
    auto dfx_out = appliance.generate(prompt, 10).tokens;
    auto ref_out = ref.generate(prompt, 10);
    EXPECT_GE(agreement(dfx_out, ref_out), 0.99);
}

TEST(ClusterFunctional, MiniModelMatchesReferenceFourCores)
{
    GptWeights w = GptWeights::random(GptConfig::mini(), 44);
    DfxAppliance appliance(functionalConfig(w.config, 4));
    appliance.loadWeights(w);
    ReferenceModel ref(w);

    std::vector<int32_t> prompt = {7, 77, 177, 17};
    auto dfx_out = appliance.generate(prompt, 6).tokens;
    auto ref_out = ref.generate(prompt, 6);
    EXPECT_GE(agreement(dfx_out, ref_out), 0.99);
}

TEST(ClusterFunctional, ClusterSizesAgreeWithEachOther)
{
    // Model parallelism must be numerically transparent: 1, 2 and 4
    // core runs of the same model produce identical tokens (the FP16
    // reduction order within each output element is identical because
    // tiling is column-local).
    GptWeights w = GptWeights::random(GptConfig::mini(), 45);
    std::vector<int32_t> prompt = {1, 2, 3, 5, 8, 13};
    std::vector<std::vector<int32_t>> outs;
    for (size_t cores : {1u, 2u, 4u}) {
        DfxAppliance appliance(functionalConfig(w.config, cores));
        appliance.loadWeights(w);
        outs.push_back(appliance.generate(prompt, 8).tokens);
    }
    EXPECT_EQ(outs[0], outs[1]);
    EXPECT_EQ(outs[0], outs[2]);
}

TEST(ClusterFunctional, DeterministicAcrossRuns)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 46);
    DfxAppliance a(functionalConfig(w.config, 2));
    a.loadWeights(w);
    DfxAppliance b(functionalConfig(w.config, 2));
    b.loadWeights(w);
    std::vector<int32_t> prompt = {9, 8, 7};
    EXPECT_EQ(a.generate(prompt, 12).tokens, b.generate(prompt, 12).tokens);
}

TEST(ClusterFunctional, LogitsCloseToReference)
{
    // Beyond token agreement: the LM-head input embedding on the DFX
    // side must match the reference within FP16 accumulation error.
    GptWeights w = GptWeights::random(GptConfig::toy(), 47);
    DfxSystemConfig cfg = functionalConfig(w.config, 2);
    DfxCluster cluster(cfg);
    cluster.loadWeights(w);
    ReferenceModel ref(w);

    cluster.stepToken(5, nullptr);
    int32_t dfx_next = cluster.stepToken(11, nullptr);
    ref.step(5);
    VecF ref_logits = ref.step(11);
    int32_t ref_next = static_cast<int32_t>(argmax(ref_logits));
    EXPECT_EQ(dfx_next, ref_next);
}

TEST(ClusterFunctional, KvCacheAppendsPerToken)
{
    // Each token step must append a distinct K row and V^T column in
    // the HBM cache regions of every layer.
    GptWeights w = GptWeights::random(GptConfig::toy(), 48);
    DfxSystemConfig cfg = functionalConfig(w.config, 2);
    DfxCluster cluster(cfg);
    cluster.loadWeights(w);
    cluster.stepToken(1, nullptr);
    cluster.stepToken(2, nullptr);

    const MemoryLayout &ml = cluster.layout();
    const size_t hd = w.config.headDim;
    for (size_t layer = 0; layer < w.config.layers; ++layer) {
        VecH row0(hd), row1(hd);
        cluster.core(0).hbm().readHalf(ml.keyRowAddr(layer, 0, 0),
                                       row0.data(), hd);
        cluster.core(0).hbm().readHalf(ml.keyRowAddr(layer, 0, 1),
                                       row1.data(), hd);
        bool nonzero0 = false, differs = false;
        for (size_t i = 0; i < hd; ++i) {
            nonzero0 |= !row0[i].isZero();
            differs |= row0[i].bits() != row1[i].bits();
        }
        EXPECT_TRUE(nonzero0) << "layer " << layer;
        EXPECT_TRUE(differs) << "layer " << layer;
        // V^T column for position 0 is populated.
        EXPECT_FALSE(
            cluster.core(0).hbm().loadHalf(ml.vtAddr(layer, 0, 0, 0))
                .isZero());
    }
}

TEST(ClusterFunctional, ResetClearsContext)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 49);
    DfxAppliance appliance(functionalConfig(w.config, 1));
    appliance.loadWeights(w);
    auto first = appliance.generate({4, 5, 6}, 5).tokens;
    // generate() resets internally; a second identical call matches.
    auto second = appliance.generate({4, 5, 6}, 5).tokens;
    EXPECT_EQ(first, second);
}

TEST(ClusterTiming, LatencyLinearInTokenCounts)
{
    // Timing-only runs: latency must be linear in n_in + n_out (the
    // paper's Fig. 14 shape).
    DfxSystemConfig cfg;
    cfg.model = GptConfig::mini();
    cfg.nCores = 2;
    cfg.functional = false;
    DfxAppliance appliance(cfg);
    double t_8_8 = appliance.generate(std::vector<int32_t>(8, 0), 8)
                       .totalSeconds();
    double t_16_16 = appliance.generate(std::vector<int32_t>(16, 0), 16)
                         .totalSeconds();
    // Attention grows slightly with sequence length, so allow 2.0-2.6x.
    EXPECT_GT(t_16_16 / t_8_8, 1.9);
    EXPECT_LT(t_16_16 / t_8_8, 2.7);
}

TEST(ClusterTiming, MoreCoresReduceLatencyOnRealModels)
{
    // On paper-scale models parallelism wins despite sync overhead
    // (Fig. 18); on the tiny mini model the sync cost can dominate —
    // which is exactly the "even larger synchronization overhead"
    // trade-off the paper cites for not parallelizing small work.
    DfxSystemConfig cfg;
    cfg.model = GptConfig::gpt2_345M();
    cfg.functional = false;
    std::vector<int32_t> prompt(4, 0);

    cfg.nCores = 1;
    double t1 = DfxAppliance(cfg).generate(prompt, 4).totalSeconds();
    cfg.nCores = 4;
    double t4 = DfxAppliance(cfg).generate(prompt, 4).totalSeconds();
    EXPECT_LT(t4, t1);           // parallelism helps...
    EXPECT_GT(t4, t1 / 4.0);     // ...but sublinearly (sync overhead)
}

TEST(ClusterTiming, BreakdownCategoriesSumToStepTime)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::mini();
    cfg.nCores = 4;
    cfg.functional = false;
    DfxCluster cluster(cfg);
    TokenStats stats;
    cluster.stepToken(0, &stats);
    double sum = 0.0;
    for (double s : stats.categorySeconds)
        sum += s;
    EXPECT_NEAR(sum, stats.seconds, stats.seconds * 1e-6);
}

TEST(ClusterTiming, SyncShareGrowsWithCores)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::mini();
    cfg.functional = false;
    auto sync_share = [&cfg](size_t cores) {
        cfg.nCores = cores;
        DfxCluster cluster(cfg);
        TokenStats stats;
        cluster.stepToken(0, &stats);
        return stats.categorySeconds[static_cast<size_t>(
                   isa::Category::kSync)] /
               stats.seconds;
    };
    EXPECT_DOUBLE_EQ(sync_share(1), 0.0);
    EXPECT_GT(sync_share(4), sync_share(2));
}

TEST(ClusterFunctional, MultiThreadedExecutionIsBitIdentical)
{
    // Parallel core stepping must be numerically invisible: for every
    // host thread count, the generated tokens AND the modeled timing
    // must match the sequential (nThreads=1) run bit for bit. Cores
    // share no mutable state between syncs and stats reduce in core
    // order, so this holds by construction — this test is the guard.
    GptWeights w = GptWeights::random(GptConfig::mini(), 52);
    std::vector<int32_t> prompt = {3, 5, 21, 34};

    DfxSystemConfig cfg = functionalConfig(w.config, 4);
    cfg.nThreads = 1;
    DfxAppliance sequential(cfg);
    sequential.loadWeights(w);
    GenerationResult ref = sequential.generate(prompt, 10);

    for (size_t threads : {2u, 3u, 4u, 8u}) {
        cfg.nThreads = threads;
        DfxAppliance parallel(cfg);
        parallel.loadWeights(w);
        GenerationResult r = parallel.generate(prompt, 10);
        EXPECT_EQ(r.tokens, ref.tokens) << threads << " threads";
        EXPECT_EQ(r.totalSeconds(), ref.totalSeconds())
            << threads << " threads";
        EXPECT_EQ(r.instructions, ref.instructions)
            << threads << " threads";
        for (size_t c = 0; c < ref.categorySeconds.size(); ++c) {
            EXPECT_EQ(r.categorySeconds[c], ref.categorySeconds[c])
                << threads << " threads, category " << c;
        }
    }
}

TEST(ClusterFunctional, MultiThreadedRunsAreStableAcrossRepeats)
{
    // Repeated multi-threaded generations of the same appliance (with
    // different worker interleavings every run) stay self-identical.
    GptWeights w = GptWeights::random(GptConfig::toy(), 53);
    DfxSystemConfig cfg = functionalConfig(w.config, 2);
    cfg.nThreads = 4;
    DfxAppliance appliance(cfg);
    appliance.loadWeights(w);
    std::vector<int32_t> prompt = {11, 22, 33};
    auto first = appliance.generate(prompt, 12).tokens;
    for (int rep = 0; rep < 3; ++rep)
        EXPECT_EQ(appliance.generate(prompt, 12).tokens, first);
}

TEST(ClusterFunctional, BinaryInstructionPathPreservesSemantics)
{
    // Routing every phase through the 56-byte binary encoding (the
    // host PCIe upload path) must not change tokens or timing.
    GptWeights w = GptWeights::random(GptConfig::toy(), 51);
    DfxSystemConfig cfg = functionalConfig(w.config, 2);
    DfxAppliance plain(cfg);
    plain.loadWeights(w);
    cfg.binaryInstructionPath = true;
    DfxAppliance encoded(cfg);
    encoded.loadWeights(w);
    std::vector<int32_t> prompt = {8, 16, 24};
    GenerationResult a = plain.generate(prompt, 6);
    GenerationResult b = encoded.generate(prompt, 6);
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_NEAR(a.totalSeconds(), b.totalSeconds(),
                a.totalSeconds() * 1e-9);
}

TEST(ClusterFunctional, WeightStoreTokensMatchEagerLoadAcrossCores)
{
    // The shared on-demand weight image must be numerically invisible:
    // a store-backed appliance generates bit-identical tokens (and
    // identical modeled timing) to the eager GptWeights::random +
    // loadWeights path, for every cluster size. This is the regression
    // gate that pins store-backed runs to the PR-4 baseline tokens.
    GptWeights w = GptWeights::random(GptConfig::mini(), 45);
    std::vector<int32_t> prompt = {1, 2, 3, 5, 8, 13};
    for (size_t cores : {1u, 2u, 4u}) {
        DfxSystemConfig cfg = functionalConfig(w.config, cores);
        DfxAppliance eager(cfg);
        eager.loadWeights(w);
        GenerationResult a = eager.generate(prompt, 8);

        cfg.weightStore = makeWeightStore(cfg, 45);
        DfxAppliance shared(cfg);  // no loadWeights: image on demand
        GenerationResult b = shared.generate(prompt, 8);

        EXPECT_EQ(a.tokens, b.tokens) << cores << " cores";
        EXPECT_EQ(a.totalSeconds(), b.totalSeconds()) << cores
                                                      << " cores";
        EXPECT_EQ(a.instructions, b.instructions) << cores << " cores";
    }
}

TEST(ClusterFunctional, WeightStoreSharedAcrossAppliances)
{
    // Two appliances sharing one store (the multi-cluster server
    // arrangement) must behave exactly like appliances with private
    // stores — and actually share: after the first appliance ran, the
    // second triggers no further tensor generation.
    DfxSystemConfig cfg = functionalConfig(GptConfig::toy(), 2);
    cfg.weightStore = makeWeightStore(cfg, 46);
    std::vector<int32_t> prompt = {9, 8, 7};

    DfxAppliance first(cfg);
    auto tokens_first = first.generate(prompt, 12).tokens;
    const size_t generated = cfg.weightStore->generatedTensors();
    EXPECT_GT(generated, 0u);

    DfxAppliance second(cfg);
    auto tokens_second = second.generate(prompt, 12).tokens;
    EXPECT_EQ(tokens_first, tokens_second);
    EXPECT_EQ(cfg.weightStore->generatedTensors(), generated);
}

TEST(ClusterFunctional, WeightStoreMultiThreadedSteppingIsDeterministic)
{
    // Worker threads fault weight tensors in concurrently during the
    // first token step; materialization is serialized inside the store
    // and must stay bit-transparent for every host thread count.
    GptWeights w = GptWeights::random(GptConfig::mini(), 52);
    std::vector<int32_t> prompt = {3, 5, 21, 34};
    DfxSystemConfig cfg = functionalConfig(w.config, 4);
    cfg.nThreads = 1;
    cfg.weightStore = makeWeightStore(cfg, 52);
    DfxAppliance sequential(cfg);
    GenerationResult ref = sequential.generate(prompt, 10);

    for (size_t threads : {2u, 4u, 8u}) {
        DfxSystemConfig tcfg = functionalConfig(w.config, 4);
        tcfg.nThreads = threads;
        tcfg.weightStore = makeWeightStore(tcfg, 52);  // fresh image
        DfxAppliance parallel(tcfg);
        GenerationResult r = parallel.generate(prompt, 10);
        EXPECT_EQ(r.tokens, ref.tokens) << threads << " threads";
        EXPECT_EQ(r.totalSeconds(), ref.totalSeconds())
            << threads << " threads";
    }
    // And the store path agrees with the eager path entirely.
    DfxSystemConfig ecfg = functionalConfig(w.config, 4);
    DfxAppliance eager(ecfg);
    eager.loadWeights(w);
    EXPECT_EQ(eager.generate(prompt, 10).tokens, ref.tokens);
}

TEST(ClusterTiming, TimingAgreesAcrossFunctionalModes)
{
    // The timing model must not depend on whether data planes exist.
    std::vector<int32_t> prompt = {5, 6, 7};
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 2;

    cfg.functional = true;
    DfxAppliance f(cfg);
    GptWeights w = GptWeights::random(cfg.model, 50);
    f.loadWeights(w);
    double t_func = f.generate(prompt, 4).totalSeconds();

    cfg.functional = false;
    DfxAppliance t(cfg);
    double t_timing = t.generate(prompt, 4).totalSeconds();
    EXPECT_NEAR(t_func, t_timing, t_func * 1e-9);
}

}  // namespace
}  // namespace dfx
