/**
 * @file
 * Multi-cluster server tests (paper §VI: two independent 4-FPGA
 * clusters per 4U appliance).
 */
#include <gtest/gtest.h>

#include "appliance/server.hpp"
#include "model/reference.hpp"

namespace dfx {
namespace {

DfxSystemConfig
timingConfig()
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::mini();
    cfg.nCores = 2;
    cfg.functional = false;
    return cfg;
}

std::vector<ServerRequest>
makeRequests(size_t n)
{
    std::vector<ServerRequest> reqs;
    for (size_t i = 0; i < n; ++i)
        reqs.push_back({std::vector<int32_t>(8, 0), 8});
    return reqs;
}

TEST(DfxServer, TwoClustersHalveMakespan)
{
    auto reqs = makeRequests(8);
    DfxServer one(timingConfig(), 1);
    DfxServer two(timingConfig(), 2);
    ServerStats s1 = one.serve(reqs);
    ServerStats s2 = two.serve(reqs);
    EXPECT_NEAR(s2.makespanSeconds, s1.makespanSeconds / 2.0,
                s1.makespanSeconds * 0.05);
    // Per-request latency is unchanged — clusters are independent.
    EXPECT_NEAR(s2.meanLatencySeconds(), s1.meanLatencySeconds(),
                s1.meanLatencySeconds() * 1e-6);
}

TEST(DfxServer, ThroughputScalesWithClusters)
{
    auto reqs = makeRequests(12);
    double tp1 = DfxServer(timingConfig(), 1).serve(reqs)
                     .throughputTokensPerSec();
    double tp3 = DfxServer(timingConfig(), 3).serve(reqs)
                     .throughputTokensPerSec();
    EXPECT_NEAR(tp3 / tp1, 3.0, 0.15);
}

TEST(DfxServer, CountsTokensAndRequests)
{
    DfxServer server(timingConfig(), 2);
    ServerStats s = server.serve(makeRequests(5));
    EXPECT_EQ(s.requests, 5u);
    EXPECT_EQ(s.totalOutputTokens, 40u);
    EXPECT_GT(s.makespanSeconds, 0.0);
    EXPECT_GE(s.totalLatencySeconds, s.makespanSeconds);
}

TEST(DfxServer, UnevenQueueMakespanIsLongestQueue)
{
    // 3 requests over 2 clusters: cluster 0 gets 2, cluster 1 gets 1.
    DfxServer server(timingConfig(), 2);
    ServerStats s = server.serve(makeRequests(3));
    DfxServer single(timingConfig(), 1);
    ServerStats one = single.serve(makeRequests(1));
    EXPECT_NEAR(s.makespanSeconds, 2.0 * one.makespanSeconds,
                one.makespanSeconds * 0.05);
}

TEST(DfxServer, EmptyServeReturnsZeroStats)
{
    // Regression: throughput/mean-latency used to divide by zero on
    // an empty request vector, and makespan reported whatever the
    // per-cluster simulated clocks held instead of 0.0 — drain() must
    // not trust the clocks when no request completed this epoch.
    DfxServer server(timingConfig(), 2);
    ServerStats s = server.serve({});
    EXPECT_EQ(s.requests, 0u);
    EXPECT_EQ(s.totalOutputTokens, 0u);
    EXPECT_EQ(s.makespanSeconds, 0.0);
    EXPECT_EQ(s.throughputTokensPerSec(), 0.0);
    EXPECT_EQ(s.meanLatencySeconds(), 0.0);
    EXPECT_EQ(s.p99LatencySeconds, 0.0);
    // The same must hold for an empty epoch *after* a busy one (the
    // clocks were non-zero mid-epoch and reset on drain).
    ServerStats busy = server.serve(makeRequests(3));
    EXPECT_GT(busy.makespanSeconds, 0.0);
    ServerStats again = server.serve({});
    EXPECT_EQ(again.makespanSeconds, 0.0);
    EXPECT_EQ(again.throughputTokensPerSec(), 0.0);
}

TEST(DfxServer, FunctionalClustersProduceIdenticalTokens)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 2;
    cfg.functional = true;
    GptWeights w = GptWeights::random(cfg.model, 31);
    DfxServer server(cfg, 2);
    server.loadWeights(w);
    // The same request dispatched to either cluster must yield the
    // same continuation.
    auto a = server.cluster(0).generate({4, 5, 6}, 6).tokens;
    auto b = server.cluster(1).generate({4, 5, 6}, 6).tokens;
    EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dfx
