/**
 * @file
 * Program-cache tests: the compile-once/patch-per-use pipeline must be
 * invisible. Patched templates are bit-identical to fresh codegen —
 * instructions, binary encodings, generated tokens and modeled timing
 * — across positions, contexts, layers and paged-block permutations;
 * the cache itself counts hits/misses, evicts LRU under a capacity,
 * and drops everything when the config generation changes.
 */
#include <gtest/gtest.h>

#include "appliance/server.hpp"
#include "isa/encoding.hpp"
#include "isa/program_cache.hpp"
#include "memory/kv_pager.hpp"
#include "model/weights.hpp"

namespace dfx {
namespace {

// --- builder-level bit-identity --------------------------------------

class ProgramTemplateTest : public ::testing::Test
{
  protected:
    void
    build(size_t n_cores, size_t kv_contexts)
    {
        config = GptConfig::toy();  // 2 layers, maxSeq 64
        geometry = ClusterGeometry{n_cores};
        hbm = std::make_unique<OffchipMemory>("h", 1ull << 32, 460e9,
                                              0.6, false);
        ddr = std::make_unique<OffchipMemory>("d", 1ull << 32, 38e9, 0.7,
                                              false);
        layout = MemoryLayout::build(config, geometry, 16, *hbm, *ddr,
                                     kv_contexts);
        builder = std::make_unique<isa::ProgramBuilder>(config, geometry,
                                                        layout, 0);
    }

    GptConfig config;
    ClusterGeometry geometry;
    std::unique_ptr<OffchipMemory> hbm, ddr;
    MemoryLayout layout;
    std::unique_ptr<isa::ProgramBuilder> builder;
};

TEST_F(ProgramTemplateTest, PatchedLayerMatchesFreshAcrossInputs)
{
    build(2, 3);
    for (size_t layer = 0; layer < config.layers; ++layer) {
        isa::ProgramTemplate tpl = builder->layerTemplate(layer);
        EXPECT_FALSE(tpl.patches.empty());
        // One shared template, patched in arbitrary input order: each
        // application must be exact, independent of the previous one.
        for (size_t pos : {size_t{17}, size_t{0}, size_t{63}, size_t{3},
                           size_t{17}}) {
            for (size_t ctx : {size_t{2}, size_t{0}, size_t{1}}) {
                builder->applyPatches(tpl, {0, pos, ctx});
                auto fresh = builder->layerPhases(layer, pos, ctx);
                ASSERT_EQ(tpl.phases.size(), fresh.size());
                for (size_t p = 0; p < fresh.size(); ++p) {
                    EXPECT_EQ(tpl.phases[p].program, fresh[p].program)
                        << "layer " << layer << " pos " << pos
                        << " ctx " << ctx << " phase " << p;
                }
            }
        }
    }
}

TEST_F(ProgramTemplateTest, PatchedEmbedAndStaticLmHeadMatchFresh)
{
    build(2, 2);
    isa::ProgramTemplate embed = builder->embedTemplate();
    EXPECT_EQ(embed.patches.size(), 2u);  // WTE row + WPE row
    for (int32_t token : {0, 5, 96}) {
        for (size_t pos : {size_t{0}, size_t{9}, size_t{63}}) {
            builder->applyPatches(embed, {token, pos, 0});
            ASSERT_EQ(embed.phases.size(), 1u);
            EXPECT_EQ(embed.phases[0].program,
                      builder->embedPhase(token, pos).program)
                << "token " << token << " pos " << pos;
        }
    }

    isa::ProgramTemplate head = builder->lmHeadTemplate();
    EXPECT_TRUE(head.patches.empty());  // fully static per core
    ASSERT_EQ(head.phases.size(), 1u);
    EXPECT_EQ(head.phases[0].program, builder->lmHeadPhase().program);
}

TEST_F(ProgramTemplateTest, InPlaceEncodedPatchMatchesFreshEncoding)
{
    build(2, 2);
    isa::ProgramTemplate tpl = builder->layerTemplate(1);
    builder->applyPatches(tpl, {0, 4, 0});
    // Encode every phase at (pos 4, ctx 0)...
    std::vector<std::vector<uint8_t>> bytes;
    for (const auto &phase : tpl.phases)
        bytes.push_back(isa::encodeProgram(phase.program));
    // ...then re-parameterize to (pos 41, ctx 1) through the in-place
    // byte patch path only.
    const isa::PatchInputs in{0, 41, 1};
    for (const isa::PatchSlot &slot : tpl.patches) {
        isa::patchEncodedField(bytes[slot.phase], slot.index, slot.field,
                               builder->patchValue(slot, in));
    }
    auto fresh = builder->layerPhases(1, 41, 1);
    ASSERT_EQ(bytes.size(), fresh.size());
    for (size_t p = 0; p < fresh.size(); ++p) {
        EXPECT_EQ(bytes[p], isa::encodeProgram(fresh[p].program))
            << "phase " << p << " byte stream diverged";
        // And the decode side sees the fresh instructions exactly.
        EXPECT_EQ(isa::decodeProgram(bytes[p]), fresh[p].program);
    }
}

// --- cache unit behavior ----------------------------------------------

isa::ProgramCacheKey
key(uint64_t hash, uint32_t layer)
{
    isa::ProgramCacheKey k;
    k.configHash = hash;
    k.kind = isa::ProgramKind::kLayer;
    k.layer = layer;
    k.core = 0;
    return k;
}

isa::CachedProgram
dummyProgram()
{
    return isa::CachedProgram{};
}

TEST(ProgramCache, CountsHitsAndMissesAndEvictsLru)
{
    isa::ProgramCache cache(2);
    cache.beginGeneration(1);
    cache.fetch(key(1, 0), dummyProgram);  // miss
    cache.fetch(key(1, 0), dummyProgram);  // hit
    cache.fetch(key(1, 1), dummyProgram);  // miss
    cache.fetch(key(1, 0), dummyProgram);  // hit (layer 0 now MRU)
    cache.fetch(key(1, 2), dummyProgram);  // miss, evicts LRU layer 1
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    cache.fetch(key(1, 0), dummyProgram);  // hit: layer 0 survived
    cache.fetch(key(1, 1), dummyProgram);  // miss (evicted above);
                                           // evicts LRU layer 2
    cache.fetch(key(1, 0), dummyProgram);  // hit: layer 0 was MRU
    EXPECT_EQ(cache.stats().hits, 4u);
    EXPECT_EQ(cache.stats().misses, 4u);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ProgramCache, ConfigGenerationChangeDropsEverything)
{
    isa::ProgramCache cache;  // unbounded
    cache.beginGeneration(7);
    cache.fetch(key(7, 0), dummyProgram);
    cache.fetch(key(7, 1), dummyProgram);
    EXPECT_EQ(cache.size(), 2u);
    cache.beginGeneration(7);  // same hash: no-op
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().invalidations, 0u);
    cache.beginGeneration(8);  // config changed: drop the generation
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().invalidations, 2u);
    cache.fetch(key(8, 0), dummyProgram);
    EXPECT_EQ(cache.size(), 1u);
}

// --- cluster-level transparency ---------------------------------------

DfxSystemConfig
cacheConfig(size_t kv_contexts, bool cache_on, bool paged)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 2;
    cfg.functional = true;
    cfg.kvContexts = kv_contexts;
    cfg.programCache = cache_on;
    cfg.pagedKv.enabled = paged;
    cfg.pagedKv.blockTokens = 16;
    return cfg;
}

std::vector<int32_t>
testPrompt(size_t n, int32_t seed)
{
    std::vector<int32_t> p(n);
    for (size_t j = 0; j < n; ++j)
        p[j] = static_cast<int32_t>((seed * 31 + j * 7 + 3) % 97);
    return p;
}

TEST(ProgramCacheCluster, TokensAndModeledTimingMatchFreshCodegen)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 501);
    DfxAppliance cached(cacheConfig(2, true, false));
    DfxAppliance fresh(cacheConfig(2, false, false));
    cached.loadWeights(w);
    fresh.loadWeights(w);
    for (int32_t seed = 0; seed < 3; ++seed) {
        const auto prompt = testPrompt(11 + static_cast<size_t>(seed),
                                       seed);
        GenerationResult a = cached.generate(prompt, 9);
        GenerationResult b = fresh.generate(prompt, 9);
        EXPECT_EQ(a.tokens, b.tokens) << "seed " << seed;
        EXPECT_EQ(a.summarizationSeconds, b.summarizationSeconds);
        EXPECT_EQ(a.generationSeconds, b.generationSeconds);
        EXPECT_EQ(a.hbmBytes, b.hbmBytes);
        EXPECT_EQ(a.instructions, b.instructions);
    }
    // The cached appliance really cached: warm steps fetch, not build.
    const auto &stats = cached.cluster().programCacheStats();
    EXPECT_GT(stats.hits, stats.misses * 10);
}

TEST(ProgramCacheCluster, BinaryEncodedStreamsStayValidWhenPatched)
{
    // binaryInstructionPath executes what the (cached, in-place
    // patched) 56-byte streams decode to — any stale byte diverges
    // tokens or timing immediately.
    GptWeights w = GptWeights::random(GptConfig::toy(), 502);
    DfxSystemConfig on = cacheConfig(2, true, false);
    DfxSystemConfig off = cacheConfig(2, false, false);
    on.binaryInstructionPath = true;
    off.binaryInstructionPath = true;
    DfxAppliance cached(on);
    DfxAppliance fresh(off);
    cached.loadWeights(w);
    fresh.loadWeights(w);
    for (int32_t seed = 0; seed < 2; ++seed) {
        const auto prompt = testPrompt(10, 40 + seed);
        GenerationResult a = cached.generate(prompt, 8);
        GenerationResult b = fresh.generate(prompt, 8);
        EXPECT_EQ(a.tokens, b.tokens) << "seed " << seed;
        EXPECT_EQ(a.generationSeconds, b.generationSeconds);
        EXPECT_EQ(a.hbmBytes, b.hbmBytes);
        EXPECT_EQ(a.instructions, b.instructions);
    }
}

TEST(ProgramCacheCluster, InterleavedContextsPatchIndependently)
{
    // Two leases stepped alternately: every decode re-patches the same
    // layer templates with a different (pos, ctx) pair each time.
    GptWeights w = GptWeights::random(GptConfig::toy(), 503);
    DfxAppliance cached(cacheConfig(2, true, false));
    DfxAppliance fresh(cacheConfig(2, false, false));
    cached.loadWeights(w);
    fresh.loadWeights(w);

    auto interleave = [](DfxAppliance &ap) {
        const auto p0 = testPrompt(9, 60);
        const auto p1 = testPrompt(14, 61);  // different positions
        KvLease l0 = ap.acquireLease({p0, 8, false});
        KvLease l1 = ap.acquireLease({p1, 8, false});
        int32_t n0 = ap.prefill(l0, p0).next;
        int32_t n1 = ap.prefill(l1, p1).next;
        std::vector<int32_t> out;
        for (size_t i = 0; i < 8; ++i) {
            out.push_back(n0);
            out.push_back(n1);
            n0 = ap.decodeStep(l0.ctx(), n0).next;
            n1 = ap.decodeStep(l1.ctx(), n1).next;
        }
        return out;
    };
    EXPECT_EQ(interleave(cached), interleave(fresh));
}

TEST(ProgramCacheCluster, PagedBlockPermutationsStayBitIdentical)
{
    // Force an adversarial physical block order in the pager: the
    // cached templates' virtual KV addressing must not care.
    GptWeights w = GptWeights::random(GptConfig::toy(), 504);
    std::vector<int32_t> permutation = {7, 2, 5, 0, 6, 1, 4, 3};

    DfxAppliance fresh(cacheConfig(2, false, true));
    DfxAppliance cached(cacheConfig(2, true, true));
    fresh.loadWeights(w);
    cached.loadWeights(w);
    fresh.cluster().pager()->debugSetFreeOrder(permutation);
    cached.cluster().pager()->debugSetFreeOrder(permutation);

    for (int32_t seed = 0; seed < 3; ++seed) {
        const auto prompt = testPrompt(12, 80 + seed);
        GenerationResult a = cached.generate(prompt, 7);
        GenerationResult b = fresh.generate(prompt, 7);
        EXPECT_EQ(a.tokens, b.tokens) << "seed " << seed;
        EXPECT_EQ(a.generationSeconds, b.generationSeconds);
        EXPECT_EQ(a.hbmBytes, b.hbmBytes);
        EXPECT_EQ(a.instructions, b.instructions);
    }
}

TEST(ProgramCacheCluster, HostProfileCountsStepsAndCacheWork)
{
    GptWeights w = GptWeights::random(GptConfig::toy(), 505);
    DfxAppliance ap(cacheConfig(1, true, false));
    ap.loadWeights(w);
    ap.generate(testPrompt(8, 1), 8);  // cold: compiles templates
    ap.cluster().resetHostProfile();
    ap.generate(testPrompt(8, 2), 8);  // warm: pure fetch + patch
    perf::HostStepProfile p = ap.cluster().hostProfile();
    EXPECT_EQ(p.steps, 16u);  // 8 prompt + 8 decode steps
    EXPECT_EQ(p.cacheMisses, 0u);
    EXPECT_GT(p.cacheHits, 0u);
    EXPECT_DOUBLE_EQ(p.cacheHitRate(), 1.0);
    EXPECT_EQ(p.codegenSeconds, 0.0);  // nothing recompiled
    EXPECT_GT(p.patchSeconds, 0.0);
    EXPECT_GT(p.executeSeconds, 0.0);
}

}  // namespace
}  // namespace dfx
