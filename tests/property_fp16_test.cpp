/**
 * @file
 * Parameterized property tests for the FP16 soft-float: algebraic
 * identities that must hold in every exponent regime (normals,
 * subnormals, near-overflow), swept via TEST_P.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/fp16.hpp"
#include "common/random.hpp"

namespace dfx {
namespace {

/** One exponent regime to sweep: values in [2^lo, 2^hi). */
struct Regime
{
    const char *name;
    int lo;
    int hi;
};

class Fp16Property : public ::testing::TestWithParam<Regime>
{
  protected:
    /** Random half in the regime (both signs). */
    Half
    sample(Rng &rng) const
    {
        const Regime &r = GetParam();
        double mag = std::ldexp(1.0 + rng.uniform(),
                                static_cast<int>(rng.below(
                                    static_cast<uint64_t>(
                                        r.hi - r.lo))) + r.lo);
        return Half::fromDouble(rng.uniform() < 0.5 ? -mag : mag);
    }
};

TEST_P(Fp16Property, AdditionCommutes)
{
    Rng rng(101);
    for (int i = 0; i < 3000; ++i) {
        Half a = sample(rng), b = sample(rng);
        EXPECT_EQ((a + b).bits(), (b + a).bits());
    }
}

TEST_P(Fp16Property, MultiplicationCommutes)
{
    Rng rng(102);
    for (int i = 0; i < 3000; ++i) {
        Half a = sample(rng), b = sample(rng);
        EXPECT_EQ((a * b).bits(), (b * a).bits());
    }
}

TEST_P(Fp16Property, AdditiveIdentity)
{
    Rng rng(103);
    for (int i = 0; i < 2000; ++i) {
        Half a = sample(rng);
        EXPECT_EQ((a + Half::zero()).bits(), a.bits());
        EXPECT_EQ((a - Half::zero()).bits(), a.bits());
    }
}

TEST_P(Fp16Property, MultiplicativeIdentity)
{
    Rng rng(104);
    for (int i = 0; i < 2000; ++i) {
        Half a = sample(rng);
        EXPECT_EQ((a * Half::one()).bits(), a.bits());
        EXPECT_EQ((a / Half::one()).bits(), a.bits());
    }
}

TEST_P(Fp16Property, SubtractionIsNegatedAddition)
{
    Rng rng(105);
    for (int i = 0; i < 2000; ++i) {
        Half a = sample(rng), b = sample(rng);
        EXPECT_EQ((a - b).bits(), (a + (-b)).bits());
    }
}

TEST_P(Fp16Property, SelfSubtractionIsZero)
{
    Rng rng(106);
    for (int i = 0; i < 2000; ++i) {
        Half a = sample(rng);
        EXPECT_TRUE((a - a).isZero());
    }
}

TEST_P(Fp16Property, RoundingIsMonotone)
{
    // x <= y implies round(x) <= round(y).
    Rng rng(107);
    for (int i = 0; i < 3000; ++i) {
        double x = sample(rng).toDouble();
        double y = x * (1.0 + rng.uniform() * 0.01);
        if (x < 0)
            std::swap(x, y);
        Half hx = Half::fromDouble(x), hy = Half::fromDouble(y);
        EXPECT_LE(hx.toDouble(), hy.toDouble());
    }
}

TEST_P(Fp16Property, RoundingErrorWithinHalfUlp)
{
    Rng rng(108);
    for (int i = 0; i < 3000; ++i) {
        Half a = sample(rng);
        double x = a.toDouble() * (1.0 + (rng.uniform() - 0.5) * 1e-4);
        Half h = Half::fromDouble(x);
        if (h.isInf())
            continue;
        // ULP at |x|: distance between the two neighbouring halves.
        Half up = Half::fromBits(static_cast<uint16_t>(
            (h.bits() & 0x7fffu) + 1));
        double ulp = std::fabs(up.toDouble() - std::fabs(h.toDouble()));
        EXPECT_LE(std::fabs(h.toDouble() - x), ulp * 0.5 * 1.0001);
    }
}

TEST_P(Fp16Property, ComparisonsConsistentWithDouble)
{
    Rng rng(109);
    for (int i = 0; i < 3000; ++i) {
        Half a = sample(rng), b = sample(rng);
        EXPECT_EQ(a < b, a.toDouble() < b.toDouble());
        EXPECT_EQ(a == b, a.toDouble() == b.toDouble());
    }
}

INSTANTIATE_TEST_SUITE_P(
    ExponentRegimes, Fp16Property,
    ::testing::Values(Regime{"subnormal", -24, -15},
                      Regime{"small", -14, -5},
                      Regime{"unit", -2, 2},
                      Regime{"large", 5, 12},
                      Regime{"near_max", 13, 15}),
    [](const ::testing::TestParamInfo<Regime> &info) {
        return info.param.name;
    });

}  // namespace
}  // namespace dfx
