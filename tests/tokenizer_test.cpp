/**
 * @file
 * Word-level tokenizer tests.
 */
#include <gtest/gtest.h>

#include "model/tokenizer.hpp"

namespace dfx {
namespace {

TEST(Tokenizer, RoundTripKnownWords)
{
    Tokenizer tok(50257);
    auto ids = tok.encode("hello , my name is james .");
    std::string back = tok.decode(ids);
    EXPECT_EQ(back, "hello, my name is james.");
}

TEST(Tokenizer, CaseInsensitive)
{
    Tokenizer tok(50257);
    EXPECT_EQ(tok.encode("Hello"), tok.encode("hello"));
    EXPECT_EQ(tok.encode("HELLO"), tok.encode("hello"));
}

TEST(Tokenizer, DeterministicOov)
{
    Tokenizer tok(50257);
    auto a = tok.encode("zyzzogeton");
    auto b = tok.encode("zyzzogeton");
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a, b);
    // OOV tokens land in the reserved range.
    EXPECT_GE(static_cast<size_t>(a[0]), 200u);
    EXPECT_LT(static_cast<size_t>(a[0]), 50257u);
}

TEST(Tokenizer, AllIdsInVocab)
{
    Tokenizer tok(1000);
    auto ids = tok.encode(
        "the quick brown fox jumps over the lazy dog ! unusualword");
    for (auto id : ids) {
        EXPECT_GE(id, 0);
        EXPECT_LT(static_cast<size_t>(id), 1000u);
    }
}

TEST(Tokenizer, PunctuationSplit)
{
    Tokenizer tok(50257);
    auto ids = tok.encode("hello,world.");
    EXPECT_EQ(ids.size(), 4u);  // hello , world .
}

TEST(Tokenizer, SmallVocabStillWorks)
{
    Tokenizer tok(97);  // toy model vocabulary
    auto ids = tok.encode("the and of hello");
    for (auto id : ids)
        EXPECT_LT(static_cast<size_t>(id), 97u);
    EXPECT_FALSE(tok.decode(ids).empty());
}

TEST(Tokenizer, WordForRoundTrip)
{
    Tokenizer tok(50257);
    auto ids = tok.encode("transformer");
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(tok.wordFor(ids[0]), "transformer");
}

}  // namespace
}  // namespace dfx
