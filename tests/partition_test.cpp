/**
 * @file
 * Partitioner tests: the per-core shards written into HBM/DDR must
 * exactly reconstruct the full model (Fig. 6 intra-layer split), with
 * head-contiguous Q/K/V columns, zero-padded LM-head tails, and full
 * LN/embedding copies on every core.
 */
#include <gtest/gtest.h>

#include "appliance/partition.hpp"

namespace dfx {
namespace {

class PartitionTest : public ::testing::TestWithParam<size_t>
{
  protected:
    void
    SetUp() override
    {
        config = GptConfig::mini();
        weights = std::make_unique<GptWeights>(
            GptWeights::random(config, 61));
        nCores = GetParam();
        geometry = ClusterGeometry{nCores};
        for (size_t i = 0; i < nCores; ++i) {
            cores.push_back(std::make_unique<ComputeCore>(
                i, CoreParams::defaults(), true));
        }
        layout = MemoryLayout::build(config, geometry, 16,
                                     cores[0]->hbm(), cores[0]->ddr());
        for (size_t i = 1; i < nCores; ++i) {
            MemoryLayout::build(config, geometry, 16, cores[i]->hbm(),
                                cores[i]->ddr());
        }
        Partitioner part(*weights, geometry, 16);
        for (size_t i = 0; i < nCores; ++i)
            part.load(*cores[i], layout, i);
    }

    GptConfig config;
    std::unique_ptr<GptWeights> weights;
    size_t nCores;
    ClusterGeometry geometry;
    std::vector<std::unique_ptr<ComputeCore>> cores;
    MemoryLayout layout;
};

TEST_P(PartitionTest, WeightShardsReconstructFullMatrices)
{
    const size_t emb = config.embedding;
    const size_t shard = geometry.embShard(config);
    // Reassemble wq from the core shards; must equal the original.
    for (size_t l = 0; l < config.layers; ++l) {
        for (size_t core = 0; core < nCores; ++core) {
            for (size_t r = 0; r < emb; r += 7) {
                for (size_t c = 0; c < shard; c += 5) {
                    Half stored = cores[core]->hbm().loadHalf(
                        layout.layers[l].wq +
                        (static_cast<uint64_t>(r) * shard + c) * 2);
                    Half expect =
                        weights->layers[l].wq.at(r, core * shard + c);
                    ASSERT_EQ(stored.bits(), expect.bits())
                        << "layer " << l << " core " << core;
                }
            }
        }
    }
}

TEST_P(PartitionTest, FfnShardsAreColumnSlices)
{
    const size_t ffn_shard = geometry.ffnShard(config);
    for (size_t core = 0; core < nCores; ++core) {
        Half stored = cores[core]->hbm().loadHalf(
            layout.layers[0].wfc1 + (3ull * ffn_shard + 2) * 2);
        Half expect =
            weights->layers[0].wfc1.at(3, core * ffn_shard + 2);
        EXPECT_EQ(stored.bits(), expect.bits()) << "core " << core;
    }
}

TEST_P(PartitionTest, LnParamsReplicatedOnEveryCore)
{
    const size_t emb = config.embedding;
    for (size_t core = 0; core < nCores; ++core) {
        for (size_t i = 0; i < emb; i += 17) {
            Half g = cores[core]->ddr().loadHalf(
                layout.layers[1].ln2Gamma + i * 2);
            EXPECT_EQ(g.bits(), weights->layers[1].ln2Gamma[i].bits());
        }
    }
}

TEST_P(PartitionTest, LmHeadIsTransposedWteWithZeroPad)
{
    const size_t vocab_shard = geometry.vocabShard(config, 16);
    const size_t emb = config.embedding;
    for (size_t core = 0; core < nCores; ++core) {
        size_t offset = core * vocab_shard;
        size_t real = offset >= config.vocabSize
                          ? 0
                          : std::min(vocab_shard,
                                     config.vocabSize - offset);
        for (size_t r = 0; r < emb; r += 31) {
            // A real column equals WTE transposed.
            if (real > 0) {
                Half stored = cores[core]->hbm().loadHalf(
                    layout.lmHeadW +
                    (static_cast<uint64_t>(r) * vocab_shard + 0) * 2);
                EXPECT_EQ(stored.bits(),
                          weights->wte.at(offset, r).bits());
            }
            // Padded tail columns are zero.
            if (real < vocab_shard) {
                Half pad = cores[core]->hbm().loadHalf(
                    layout.lmHeadW +
                    (static_cast<uint64_t>(r) * vocab_shard +
                     vocab_shard - 1) * 2);
                EXPECT_TRUE(pad.isZero());
            }
        }
    }
}

TEST_P(PartitionTest, EmbeddingTablesFullOnEveryCore)
{
    for (size_t core = 0; core < nCores; ++core) {
        Half wte_val = cores[core]->ddr().loadHalf(
            layout.wte + (5ull * config.embedding + 9) * 2);
        EXPECT_EQ(wte_val.bits(), weights->wte.at(5, 9).bits());
        Half wpe_val = cores[core]->ddr().loadHalf(
            layout.wpe + (3ull * config.embedding + 1) * 2);
        EXPECT_EQ(wpe_val.bits(), weights->wpe.at(3, 1).bits());
    }
}

TEST_P(PartitionTest, BiasShardsMatchColumns)
{
    const size_t shard = geometry.embShard(config);
    for (size_t core = 0; core < nCores; ++core) {
        for (size_t c = 0; c < shard; c += 13) {
            Half b = cores[core]->ddr().loadHalf(
                layout.layers[2].bproj + c * 2);
            EXPECT_EQ(b.bits(),
                      weights->layers[2].bproj[core * shard + c].bits());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, PartitionTest,
                         ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<size_t> &i) {
                             return "cores" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace dfx
