/**
 * @file
 * Failure-injection and guard-rail tests: configuration errors,
 * capacity overflows, malformed instructions and out-of-range
 * accesses must fail loudly, not corrupt state.
 */
#include <gtest/gtest.h>

#include "appliance/appliance.hpp"
#include "appliance/server.hpp"
#include "isa/assembler.hpp"
#include "isa/codegen.hpp"
#include "isa/encoding.hpp"

namespace dfx {
namespace {

TEST(Failure, IndivisibleHeadsRejected)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::mini();  // 4 heads
    cfg.nCores = 3;
    EXPECT_DEATH({ DfxCluster cluster(cfg); }, "not divisible");
}

TEST(Failure, ContextOverflowRejected)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();  // maxSeq 64
    cfg.nCores = 1;
    cfg.functional = false;
    DfxAppliance appliance(cfg);
    EXPECT_DEATH(
        appliance.generate(std::vector<int32_t>(60, 0), 10),
        "exceeds max context");
}

TEST(Failure, EmptyPromptRejected)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 1;
    cfg.functional = false;
    DfxAppliance appliance(cfg);
    EXPECT_DEATH(appliance.generate({}, 4), "empty prompt");
}

TEST(Failure, TokenOutOfVocabularyRejected)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();  // vocab 97
    cfg.nCores = 1;
    cfg.functional = false;
    DfxCluster cluster(cfg);
    EXPECT_DEATH(cluster.stepToken(97, nullptr), "out of vocabulary");
    EXPECT_DEATH(cluster.stepToken(-1, nullptr), "out of vocabulary");
}

TEST(Failure, MemoryCapacityOverflowIsFatal)
{
    OffchipMemory tiny("tiny", 1024, 1e9, 0.5, false);
    tiny.alloc(1000, "a");
    EXPECT_DEATH(tiny.alloc(1000, "b"), "exceeds capacity");
}

TEST(Failure, TimingOnlyModeForbidsDataAccess)
{
    OffchipMemory mem("m", 1 << 20, 1e9, 0.5, false);
    Half h = Half::one();
    EXPECT_DEATH(mem.writeHalf(0, &h, 1), "timing-only");
    VectorRegFile vrf(16, false);
    EXPECT_DEATH(vrf.read(0), "timing-only");
}

TEST(Failure, LoadWeightsRequiresFunctionalMode)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 1;
    cfg.functional = false;
    DfxAppliance appliance(cfg);
    GptWeights w = GptWeights::random(cfg.model, 1);
    EXPECT_DEATH(appliance.loadWeights(w), "functional");
}

TEST(Failure, EagerLoadConflictsWithWeightStore)
{
    // A store-backed cluster shares the appliance image; an eager
    // loadWeights on top would duplicate every region.
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 1;
    cfg.functional = true;
    cfg.weightStore = makeWeightStore(cfg, 1);
    DfxAppliance appliance(cfg);
    GptWeights w = GptWeights::random(cfg.model, 1);
    EXPECT_DEATH(appliance.loadWeights(w), "shared weight store");
}

TEST(Failure, WeightStoreRequiresFunctionalMode)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 1;
    cfg.functional = false;  // forgot functional=true
    cfg.weightStore = makeWeightStore(cfg, 1);
    EXPECT_DEATH({ DfxAppliance appliance(cfg); }, "timing-only");
}

TEST(Failure, WeightStoreGeometryMustMatchCluster)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 2;
    cfg.functional = true;
    DfxSystemConfig other = cfg;
    other.nCores = 1;
    cfg.weightStore = makeWeightStore(other, 1);  // 1-shard store
    EXPECT_DEATH({ DfxAppliance appliance(cfg); },
                 "does not match layout");
}

TEST(Failure, MalformedInstructionRejectedByCore)
{
    ComputeCore core(0, CoreParams::defaults(), false);
    isa::Instruction bad;
    bad.op = isa::Opcode::kConv1d;
    bad.src1 = isa::Operand::vrf(0);
    bad.src2 = isa::Operand::ddr(0);  // weights must come from HBM
    bad.dst = isa::Operand::vrf(1);
    bad.len = 64;
    bad.cols = 16;
    EXPECT_DEATH(core.executePhase(isa::Program{bad}),
                 "invalid instruction");
}

TEST(Failure, AssemblerRejectsGarbage)
{
    EXPECT_DEATH(isa::parse("frobnicate v[0], -, - -> v[1]"),
                 "unknown opcode");
    EXPECT_DEATH(isa::parse("add v[0], v[1], - -> v[2] flags=bogus"),
                 "unknown flag");
    EXPECT_DEATH(isa::parse("add v[0] v[1]"), "");
}

TEST(Failure, VrfRangeChecked)
{
    VectorRegFile vrf(4, true);  // 4 lines = 256 elements
    EXPECT_DEATH(vrf.read(256), "VRF read");
    VecH big(300);
    EXPECT_DEATH(vrf.writeVec(0, big), "out of range");
}

TEST(Failure, EncoderRejectsOversizedFields)
{
    // dst carries a full 64-bit address (paged-KV virtual windows live
    // above 1<<40); src3 is still a 32-bit field.
    isa::Instruction i;
    i.op = isa::Opcode::kAdd;
    i.src1 = isa::Operand::vrf(0);
    i.src2 = isa::Operand::vrf(1);
    i.dst = isa::Operand::vrf(2);
    i.src3 = isa::Operand::vrf(uint64_t{1} << 40);
    i.len = 64;
    EXPECT_DEATH(isa::encode(i), "32-bit");
}

TEST(Failure, ServerNeedsClusters)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 1;
    EXPECT_DEATH(DfxServer(cfg, 0), "at least one cluster");
}

namespace {

/** Store-backed functional config: clusters share one weight image. */
DfxSystemConfig
storeBackedConfig(size_t kv_contexts)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 2;
    cfg.functional = true;
    cfg.kvContexts = kv_contexts;
    cfg.weightStore = makeWeightStore(cfg, 1);
    return cfg;
}

std::vector<ServerRequest>
storeRequests(size_t n, size_t n_in, size_t n_out)
{
    std::vector<ServerRequest> reqs;
    for (size_t i = 0; i < n; ++i) {
        ServerRequest r;
        for (size_t j = 0; j < n_in; ++j)
            r.prompt.push_back(
                static_cast<int32_t>((i * 13 + j * 5 + 2) % 97));
        r.nOut = n_out;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

}  // namespace

TEST(Failure, StoreBackedRetryExhaustionSurfacesFailedResult)
{
    // On the shared-weight-store path a retry-budget-exhausted
    // request must surface RequestOutcome::Failed — not crash, not
    // corrupt the store's context bookkeeping for the survivors.
    auto reqs = storeRequests(8, 4, 12);
    DfxServer healthy(storeBackedConfig(2), 2);
    const double mid = 0.5 * healthy.serve(reqs).makespanSeconds;

    ServerOptions opts;
    opts.retryBudget = 0;
    opts.faultPlan.failStops.push_back({0, mid});
    opts.drainDeadlineHostSeconds = 120.0;
    DfxServer server(storeBackedConfig(2), 2, opts);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), reqs.size());
    EXPECT_GE(stats.totalFailed, 1u);
    EXPECT_EQ(stats.completedRequests + stats.totalFailed,
              reqs.size());
    for (const RequestResult &r : stats.results) {
        if (r.outcome == RequestOutcome::Failed) {
            EXPECT_TRUE(r.tokens.empty());
        }
    }
}

TEST(Failure, StoreBackedDoubleFailStopIsIdempotent)
{
    auto reqs = storeRequests(8, 4, 10);
    ServerOptions opts;
    opts.faultPlan.failStops.push_back({1, 0.001});
    opts.faultPlan.failStops.push_back({1, 0.003});
    opts.drainDeadlineHostSeconds = 120.0;
    DfxServer server(storeBackedConfig(2), 2, opts);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), reqs.size());
    EXPECT_EQ(stats.completedRequests, reqs.size());
    EXPECT_EQ(stats.totalFailed, 0u);
    EXPECT_EQ(stats.clusters[1].health, ClusterHealth::Failed);
    // A second serve replays the plan against a reset store-backed
    // fleet — double fail-stop twice over must still be harmless.
    ServerStats again = server.serve(reqs);
    EXPECT_EQ(again.completedRequests, reqs.size());
}

TEST(Failure, StoreBackedShedRequestsAreReportedNotDropped)
{
    auto reqs = storeRequests(1, 4, 8);
    reqs.assign(10, reqs[0]);
    DfxServer probe(storeBackedConfig(1), 1);
    const double one =
        probe.serve({reqs[0]}).results[0].latencySeconds();

    ServerOptions opts;
    opts.sloTtftBudgetSeconds = 2.5 * one;
    opts.drainDeadlineHostSeconds = 120.0;
    DfxServer server(storeBackedConfig(1), 1, opts);
    ServerStats stats = server.serve(reqs);
    // Every submitted request comes back with a terminal outcome:
    // completed or shed, never silently dropped.
    ASSERT_EQ(stats.results.size(), reqs.size());
    EXPECT_GE(stats.totalShed, 1u);
    EXPECT_EQ(stats.completedRequests + stats.totalShed, reqs.size());
    for (const RequestResult &r : stats.results)
        EXPECT_TRUE(r.outcome == RequestOutcome::Completed ||
                    r.outcome == RequestOutcome::Shed);
}

}  // namespace
}  // namespace dfx
