/**
 * @file
 * GELU lookup-table tests (paper §V-C: 2048 samples over [-8,8],
 * linear interpolation, near-zero error in half precision).
 */
#include <gtest/gtest.h>

#include "numeric/functions.hpp"
#include "numeric/gelu_lut.hpp"

namespace dfx {
namespace {

TEST(GeluLut, MatchesExactWithinHalfPrecision)
{
    // The paper reports a mean squared error of 0 in half precision;
    // in practice linear interpolation over 2048 segments keeps the
    // absolute error well below one half-precision ULP at the output
    // magnitude. Verify a conservative bound.
    EXPECT_LT(GeluLut::instance().maxError(), 5e-3f);
}

TEST(GeluLut, ClampRegions)
{
    const auto &lut = GeluLut::instance();
    // Below -8: output 0.
    EXPECT_FLOAT_EQ(lut.eval(Half::fromDouble(-9.0)).toFloat(), 0.0f);
    EXPECT_FLOAT_EQ(lut.eval(Half::fromDouble(-100.0)).toFloat(), 0.0f);
    // Above 8: identity.
    EXPECT_FLOAT_EQ(lut.eval(Half::fromDouble(9.5)).toFloat(), 9.5f);
    EXPECT_FLOAT_EQ(lut.eval(Half::fromDouble(123.0)).toFloat(), 123.0f);
}

TEST(GeluLut, KeyPoints)
{
    const auto &lut = GeluLut::instance();
    EXPECT_NEAR(lut.eval(Half::zero()).toFloat(), 0.0f, 1e-3f);
    EXPECT_NEAR(lut.eval(Half::one()).toFloat(), geluExact(1.0f), 2e-3f);
    EXPECT_NEAR(lut.eval(Half::fromDouble(-1.0)).toFloat(),
                geluExact(-1.0f), 2e-3f);
    EXPECT_NEAR(lut.eval(Half::fromDouble(2.5)).toFloat(),
                geluExact(2.5f), 3e-3f);
}

TEST(GeluLut, NanPassthrough)
{
    EXPECT_TRUE(GeluLut::instance().eval(Half::quietNan()).isNan());
}

TEST(GeluLut, MeanSquaredErrorTiny)
{
    // MSE over a dense grid, reported in the paper as ~0 at FP16.
    const auto &lut = GeluLut::instance();
    double mse = 0.0;
    const int n = 4096;
    for (int i = 0; i <= n; ++i) {
        float x = -8.0f + 16.0f * static_cast<float>(i) / n;
        double d = lut.eval(Half::fromFloat(x)).toFloat() - geluExact(x);
        mse += d * d;
    }
    mse /= (n + 1);
    EXPECT_LT(mse, 1e-6);
}

}  // namespace
}  // namespace dfx
