/**
 * @file
 * Ring network and router tests.
 */
#include <gtest/gtest.h>

#include "network/ring.hpp"
#include "network/router.hpp"

namespace dfx {
namespace {

TEST(RingNetwork, SingleNodeIsFree)
{
    RingNetwork ring(RingParams{}, 1);
    EXPECT_DOUBLE_EQ(ring.allGatherSeconds(1 << 20), 0.0);
    EXPECT_DOUBLE_EQ(ring.argmaxReduceSeconds(), 0.0);
}

TEST(RingNetwork, AllGatherScalesWithHops)
{
    RingParams p;
    RingNetwork r2(p, 2), r4(p, 4);
    double t2 = r2.allGatherSeconds(4096);
    double t4 = r4.allGatherSeconds(4096);
    EXPECT_NEAR(t4 / t2, 3.0, 1e-9);  // (4-1)/(2-1)
}

TEST(RingNetwork, BandwidthAndLatencyTerms)
{
    RingParams p;
    p.hopLatencySec = 1e-6;
    RingNetwork ring(p, 2);
    // Effective bandwidth: 100 Gb/s * 0.97 / 8 = 12.125 GB/s.
    EXPECT_NEAR(p.effectiveBytesPerSec(), 12.125e9, 1e6);
    double small = ring.allGatherSeconds(8);
    double large = ring.allGatherSeconds(12'125'000);  // ~1 ms of bytes
    EXPECT_NEAR(small, 1e-6, 1e-7);       // latency dominated
    EXPECT_NEAR(large, 1e-3 + 1e-6, 1e-5);  // bandwidth dominated
}

TEST(RingNetwork, EncodingOverheadCosts3Percent)
{
    RingParams with{};
    RingParams without{};
    without.encodingOverhead = 0.0;
    EXPECT_NEAR(with.effectiveBytesPerSec() /
                    without.effectiveBytesPerSec(),
                0.97, 1e-12);
}

TEST(Router, ReorderByCoreId)
{
    std::vector<RouterChunk> chunks;
    // Arrival order 2, 0, 1 must not matter.
    for (size_t core : {2u, 0u, 1u}) {
        VecH payload(4);
        for (size_t i = 0; i < 4; ++i)
            payload[i] = Half::fromDouble(static_cast<double>(
                core * 10 + i));
        chunks.push_back({core, payload});
    }
    VecH full = Router::reorder(chunks);
    ASSERT_EQ(full.size(), 12u);
    for (size_t core = 0; core < 3; ++core)
        for (size_t i = 0; i < 4; ++i)
            EXPECT_FLOAT_EQ(full[core * 4 + i].toFloat(),
                            static_cast<float>(core * 10 + i));
}

TEST(Router, ReorderInvariantToArrivalOrder)
{
    // Property: any permutation of arrivals yields the same result.
    const size_t n = 4, len = 8;
    std::vector<RouterChunk> base;
    for (size_t c = 0; c < n; ++c) {
        VecH p(len);
        for (size_t i = 0; i < len; ++i)
            p[i] = Half::fromDouble(static_cast<double>(c * 100 + i));
        base.push_back({c, p});
    }
    VecH expect = Router::reorder(base);
    for (size_t rot = 1; rot < n; ++rot) {
        std::vector<RouterChunk> rotated;
        for (size_t i = 0; i < n; ++i)
            rotated.push_back(base[(i + rot) % n]);
        VecH got = Router::reorder(rotated);
        for (size_t i = 0; i < expect.size(); ++i)
            EXPECT_EQ(got[i].bits(), expect[i].bits());
    }
}

TEST(Router, ArrivalOrderCoversAllNodes)
{
    auto order = Router::arrivalOrder(1, 4);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 1u);  // own chunk first
    std::vector<bool> seen(4, false);
    for (size_t n : order)
        seen[n] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

}  // namespace
}  // namespace dfx
