/**
 * @file
 * Workload generator tests: Poisson reproducibility from a fixed
 * seed, exact rate scaling of the shared arrival pattern, trace and
 * imbalanced generators.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "appliance/workload.hpp"

namespace dfx {
namespace {

WorkloadSpec
spec(size_t n, uint64_t seed)
{
    WorkloadSpec s;
    s.nRequests = n;
    s.nIn = 6;
    s.nOut = 4;
    s.vocab = 97;
    s.seed = seed;
    return s;
}

TEST(Workload, PoissonIsReproducibleFromSeed)
{
    auto a = poissonWorkload(spec(32, 7), 10.0);
    auto b = poissonWorkload(spec(32, 7), 10.0);
    ASSERT_EQ(a.size(), 32u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].prompt, b[i].prompt);
        EXPECT_EQ(a[i].nOut, b[i].nOut);
        EXPECT_DOUBLE_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
    }
}

TEST(Workload, PoissonSeedChangesArrivalsAndPrompts)
{
    auto a = poissonWorkload(spec(16, 7), 10.0);
    auto b = poissonWorkload(spec(16, 8), 10.0);
    size_t arrival_diffs = 0, prompt_diffs = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        arrival_diffs += a[i].arrivalSeconds != b[i].arrivalSeconds;
        prompt_diffs += a[i].prompt != b[i].prompt;
    }
    EXPECT_GT(arrival_diffs, 0u);
    EXPECT_GT(prompt_diffs, 0u);
}

TEST(Workload, PoissonArrivalsAreOrderedAndRateConsistent)
{
    const double rps = 25.0;
    auto reqs = poissonWorkload(spec(400, 3), rps);
    double prev = 0.0;
    for (const auto &r : reqs) {
        EXPECT_GE(r.arrivalSeconds, prev);
        prev = r.arrivalSeconds;
    }
    // Mean inter-arrival over 400 draws should land near 1/rps (the
    // generator is deterministic, so a loose band is race-free).
    const double mean_gap = prev / 400.0;
    EXPECT_GT(mean_gap, 0.7 / rps);
    EXPECT_LT(mean_gap, 1.3 / rps);
}

TEST(Workload, PoissonRateExactlyRescalesOneArrivalPattern)
{
    // Same seed at different offered loads: the uniform draws are
    // identical and each arrival is one division of the unit-rate
    // accumulation, so arrival_i(rate) == arrival_i(1.0) / rate
    // *bit-exactly* — even for awkward non-power-of-two rates — and
    // a latency-vs-load sweep compares one traffic pattern at
    // different intensities.
    auto unit = poissonWorkload(spec(20, 11), 1.0);
    for (double rate : {2.0, 30.0, 480.0, 7.3}) {
        auto scaled = poissonWorkload(spec(20, 11), rate);
        for (size_t i = 0; i < unit.size(); ++i) {
            EXPECT_EQ(unit[i].prompt, scaled[i].prompt);
            EXPECT_DOUBLE_EQ(scaled[i].arrivalSeconds,
                             unit[i].arrivalSeconds / rate)
                << "rate " << rate << " request " << i;
        }
    }
}

TEST(Workload, PoissonRescalingHoldsForPerNodeSplitStreams)
{
    // A fleet front-end that splits one Poisson stream across nodes
    // (here: request i to node i mod N) must keep the rescaling
    // property per sub-stream: node n's k-th arrival at `rate` is its
    // k-th arrival at unit rate divided by `rate`, bit-exactly. A
    // TTFT-vs-load sweep therefore stresses every node with one
    // traffic pattern at different intensities, not N new patterns.
    const size_t n_nodes = 4;
    auto unit = poissonWorkload(spec(40, 13), 1.0);
    for (double rate : {3.0, 64.0, 9.7}) {
        auto scaled = poissonWorkload(spec(40, 13), rate);
        for (size_t node = 0; node < n_nodes; ++node) {
            for (size_t i = node; i < unit.size(); i += n_nodes) {
                EXPECT_EQ(unit[i].prompt, scaled[i].prompt);
                EXPECT_DOUBLE_EQ(scaled[i].arrivalSeconds,
                                 unit[i].arrivalSeconds / rate)
                    << "node " << node << " rate " << rate
                    << " request " << i;
            }
            // The sub-stream stays arrival-ordered after the split.
            for (size_t i = node + n_nodes; i < scaled.size();
                 i += n_nodes) {
                EXPECT_GE(scaled[i].arrivalSeconds,
                          scaled[i - n_nodes].arrivalSeconds);
            }
        }
    }
}

TEST(Workload, PromptIdsStayWithinVocabulary)
{
    auto reqs = poissonWorkload(spec(50, 5), 100.0);
    for (const auto &r : reqs) {
        ASSERT_EQ(r.prompt.size(), 6u);
        for (int32_t id : r.prompt) {
            EXPECT_GE(id, 0);
            EXPECT_LT(id, 97);
        }
    }
}

TEST(Workload, TraceReplaysExplicitArrivals)
{
    const std::vector<double> arrivals = {0.0, 0.5, 0.25, 3.0};
    auto reqs = traceWorkload(spec(99, 2), arrivals);  // n overridden
    ASSERT_EQ(reqs.size(), arrivals.size());
    for (size_t i = 0; i < reqs.size(); ++i)
        EXPECT_DOUBLE_EQ(reqs[i].arrivalSeconds, arrivals[i]);
}

TEST(Workload, BatchWorkloadArrivesAtZero)
{
    auto reqs = batchWorkload(spec(8, 4));
    ASSERT_EQ(reqs.size(), 8u);
    for (const auto &r : reqs)
        EXPECT_DOUBLE_EQ(r.arrivalSeconds, 0.0);
}

TEST(Workload, ImbalancedWorkloadLengthensClusterZeroRequests)
{
    // Over a 2-cluster round-robin, even ids (home cluster 0) carry
    // the long generations.
    auto reqs = imbalancedWorkload(spec(6, 9), 2, 4);
    ASSERT_EQ(reqs.size(), 6u);
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(reqs[i].nOut, i % 2 == 0 ? 16u : 4u) << "request " << i;
        EXPECT_DOUBLE_EQ(reqs[i].arrivalSeconds, 0.0);
    }
}

}  // namespace
}  // namespace dfx
