/**
 * @file
 * Tests for the Chrome trace_event timeline profiler: off by default
 * with zero events recorded, scoped events captured between
 * traceStart/traceStop, per-name aggregation, and a JSON file whose
 * shape Perfetto accepts (traceEvents array of complete events plus
 * thread_name metadata).
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "perf/trace.hpp"

namespace dfx {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spin()
{
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i)
        sink = sink + i;
}

TEST(Trace, OffByDefaultRecordsNothing)
{
    ASSERT_FALSE(perf::traceEnabled());
    {
        DFX_TRACE_SCOPE("idle", "unit", 0);
        spin();
    }
    EXPECT_EQ(perf::traceStop(), 0u);
    EXPECT_TRUE(perf::traceTotals().empty());
}

// The remaining tests exercise recording through DFX_TRACE_SCOPE,
// which compiles to nothing under -DDFX_TRACE=OFF.
#ifndef DFX_TRACE_DISABLED

TEST(Trace, CapturesScopedEventsBetweenStartAndStop)
{
    const std::string path = testing::TempDir() + "dfx_trace_test.json";
    perf::traceStart(path);
    ASSERT_TRUE(perf::traceEnabled());
    for (int i = 0; i < 3; ++i) {
        DFX_TRACE_SCOPE("mpu", "unit", 4);
        spin();
    }
    {
        DFX_TRACE_SCOPE("codegen", "host", perf::kTraceHostTid);
        spin();
    }

    // In-process aggregation sees the buffered events before the stop.
    bool saw_mpu = false, saw_codegen = false;
    for (const auto &t : perf::traceTotals()) {
        if (t.name == "mpu") {
            saw_mpu = true;
            EXPECT_EQ(t.category, "unit");
            EXPECT_EQ(t.count, 3u);
            EXPECT_GT(t.seconds, 0.0);
        }
        if (t.name == "codegen") {
            saw_codegen = true;
            EXPECT_EQ(t.count, 1u);
        }
    }
    EXPECT_TRUE(saw_mpu);
    EXPECT_TRUE(saw_codegen);

    EXPECT_EQ(perf::traceStop(), 4u);
    EXPECT_FALSE(perf::traceEnabled());

    // The flushed file must look like a Chrome trace: a JSON object
    // with a traceEvents array, complete ("X") events carrying the
    // scope names, and thread_name metadata for the lanes used.
    const std::string json = slurp(path);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"mpu\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"codegen\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');

    // Events recorded after the stop are dropped, and a second stop
    // finds nothing to flush.
    {
        DFX_TRACE_SCOPE("late", "unit", 0);
        spin();
    }
    EXPECT_EQ(perf::traceStop(), 0u);
}

TEST(Trace, RestartClearsPreviousCollection)
{
    const std::string a = testing::TempDir() + "dfx_trace_a.json";
    const std::string b = testing::TempDir() + "dfx_trace_b.json";
    perf::traceStart(a);
    {
        DFX_TRACE_SCOPE("first", "unit", 0);
        spin();
    }
    perf::traceStart(b);  // restart without stopping: drops "first"
    {
        DFX_TRACE_SCOPE("second", "unit", 0);
        spin();
    }
    EXPECT_EQ(perf::traceStop(), 1u);
    const std::string json = slurp(b);
    EXPECT_EQ(json.find("\"name\":\"first\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"second\""), std::string::npos);
}

#endif  // DFX_TRACE_DISABLED

}  // namespace
}  // namespace dfx
