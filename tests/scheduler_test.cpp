/**
 * @file
 * Concurrent-serving scheduler tests: interleaved-vs-serial token
 * determinism, KV context isolation, FIFO fairness under saturation,
 * the batching timing model (throughput grows with in-flight
 * requests; single in-flight reproduces serial timing exactly),
 * continuous admission under simulated arrivals, and cross-cluster
 * work stealing (token determinism, makespan improvement,
 * run-to-run reproducibility).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <thread>

#include "appliance/server.hpp"
#include "appliance/workload.hpp"
#include "model/weights.hpp"

namespace dfx {
namespace {

DfxSystemConfig
functionalConfig(size_t kv_contexts)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 2;
    cfg.functional = true;
    cfg.kvContexts = kv_contexts;
    return cfg;
}

DfxSystemConfig
timingConfig(size_t kv_contexts)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::mini();
    cfg.nCores = 2;
    cfg.functional = false;
    cfg.kvContexts = kv_contexts;
    return cfg;
}

/** Distinct deterministic prompts, all within the toy vocab (97). */
std::vector<ServerRequest>
distinctRequests(size_t n, size_t n_in, size_t n_out)
{
    std::vector<ServerRequest> reqs;
    for (size_t i = 0; i < n; ++i) {
        ServerRequest r;
        for (size_t j = 0; j < n_in; ++j)
            r.prompt.push_back(
                static_cast<int32_t>((i * 31 + j * 7 + 3) % 97));
        r.nOut = n_out;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

TEST(Scheduler, InterleavedTokensMatchSerialExecution)
{
    // The central determinism claim: a request served concurrently
    // with three others (KV contexts interleaving every round) yields
    // bit-identical tokens to the same request served alone.
    GptWeights w = GptWeights::random(GptConfig::toy(), 101);
    auto reqs = distinctRequests(6, 4, 8);

    DfxAppliance serial(functionalConfig(1));
    serial.loadWeights(w);
    std::vector<std::vector<int32_t>> expected;
    for (const auto &r : reqs)
        expected.push_back(serial.generate(r.prompt, r.nOut).tokens);

    DfxServer server(functionalConfig(4), 1);
    server.loadWeights(w);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(stats.results[i].id, i);
        EXPECT_EQ(stats.results[i].tokens, expected[i])
            << "request " << i << " diverged under interleaving";
    }
}

TEST(Scheduler, KvContextsAreIsolated)
{
    // Two conversations stepped in lockstep through the same cluster
    // must each match their standalone run: neither context may read
    // or clobber the other's K/V regions.
    GptWeights w = GptWeights::random(GptConfig::toy(), 102);
    DfxSystemConfig cfg = functionalConfig(2);

    DfxAppliance serial(cfg);
    serial.loadWeights(w);
    auto a_alone = serial.generate({5, 10, 15}, 8).tokens;
    auto b_alone = serial.generate({80, 40, 20}, 8).tokens;

    DfxAppliance shared(cfg);
    shared.loadWeights(w);
    KvLease la = shared.acquireLease({{5, 10, 15}, 8});
    KvLease lb = shared.acquireLease({{80, 40, 20}, 8});
    StepOutcome sa = shared.prefill(la, {5, 10, 15});
    StepOutcome sb = shared.prefill(lb, {80, 40, 20});
    std::vector<int32_t> a_mixed, b_mixed;
    int32_t na = sa.next, nb = sb.next;
    for (size_t i = 0; i < 8; ++i) {
        a_mixed.push_back(na);
        b_mixed.push_back(nb);
        na = shared.decodeStep(la.ctx(), na).next;  // strict interleave
        nb = shared.decodeStep(lb.ctx(), nb).next;
    }
    EXPECT_EQ(a_mixed, a_alone);
    EXPECT_EQ(b_mixed, b_alone);
}

TEST(Scheduler, KvContextRegionsDoNotOverlap)
{
    DfxSystemConfig cfg = functionalConfig(3);
    DfxCluster cluster(cfg);
    const MemoryLayout &ml = cluster.layout();
    const GptConfig &m = cfg.model;
    const uint64_t head_bytes = m.maxSeq * m.headDim * 2;
    const uint64_t local_heads = ml.geometry.localHeads(m);
    for (size_t layer = 0; layer < m.layers; ++layer) {
        for (size_t ctx = 0; ctx + 1 < 3; ++ctx) {
            // Context ctx's last head region ends where ctx+1 begins.
            EXPECT_EQ(ml.keyHeadBase(layer, 0, ctx) +
                          local_heads * head_bytes,
                      ml.keyHeadBase(layer, 0, ctx + 1));
            EXPECT_EQ(ml.vtHeadBase(layer, 0, ctx) +
                          local_heads * head_bytes,
                      ml.vtHeadBase(layer, 0, ctx + 1));
        }
        // Highest context's K region stays inside the allocation (the
        // next allocation after K is V^T).
        EXPECT_LE(ml.keyHeadBase(layer, 0, 2) + local_heads * head_bytes,
                  ml.layers[layer].vtBase);
    }
}

TEST(Scheduler, ContextSlotsRecycle)
{
    DfxAppliance appliance(timingConfig(3));
    EXPECT_EQ(appliance.kvContexts(), 3u);
    EXPECT_EQ(appliance.freeContexts(), 3u);
    KvLease a = appliance.acquireLease({{1, 2}, 4});
    KvLease b = appliance.acquireLease({{3, 4}, 4});
    KvLease c = appliance.acquireLease({{5, 6}, 4});
    EXPECT_EQ(appliance.freeContexts(), 0u);
    // Exhaustion is an empty (falsy) lease, not a crash.
    EXPECT_FALSE(appliance.tryAcquireLease({{7, 8}, 4}));
    EXPECT_NE(a.ctx(), b.ctx());
    EXPECT_NE(b.ctx(), c.ctx());
    const size_t freed = b.ctx();
    b.release();
    EXPECT_EQ(appliance.freeContexts(), 1u);
    // The freed slot is reused and starts a fresh conversation.
    KvLease d = appliance.acquireLease({{9, 10}, 4});
    EXPECT_EQ(d.ctx(), freed);
    EXPECT_EQ(appliance.cluster().position(d.ctx()), 0u);
}

TEST(Scheduler, LeaseReleasesOnDestructionAndMove)
{
    DfxAppliance appliance(timingConfig(1));
    {
        KvLease l = appliance.acquireLease({{1, 2, 3}, 2});
        EXPECT_TRUE(static_cast<bool>(l));
        EXPECT_EQ(appliance.freeContexts(), 0u);
        // Ownership transfers on move; the context stays leased.
        KvLease moved = std::move(l);
        EXPECT_FALSE(static_cast<bool>(l));
        EXPECT_EQ(appliance.freeContexts(), 0u);
    }
    // Scope exit returned the context — no explicit release call.
    EXPECT_EQ(appliance.freeContexts(), 1u);
}

TEST(Scheduler, FifoFairnessUnderSaturatedQueue)
{
    // 8 requests onto one cluster with 2 KV contexts: the queue stays
    // saturated, and admission must follow submission order — no
    // request is admitted before an earlier-submitted one.
    DfxServer server(timingConfig(2), 1);
    auto reqs = distinctRequests(8, 4, 4);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), 8u);
    for (size_t i = 1; i < stats.results.size(); ++i) {
        EXPECT_LE(stats.results[i - 1].admitSimSeconds,
                  stats.results[i].admitSimSeconds)
            << "request " << i << " jumped the queue";
        EXPECT_LE(stats.results[i - 1].finishSimSeconds,
                  stats.results[i].finishSimSeconds);
    }
    // Saturation means later requests wait: the last admission happens
    // strictly after the first finishes a slot.
    EXPECT_GT(stats.results.back().admitSimSeconds, 0.0);
}

TEST(Scheduler, SingleInFlightReproducesSerialTiming)
{
    // With one KV context the scheduler degenerates to the paper's
    // single-stream appliance: makespan is the sum of per-request
    // service times, and per-request latency matches generate().
    auto reqs = distinctRequests(3, 4, 4);
    DfxServer server(timingConfig(1), 1);
    ServerStats stats = server.serve(reqs);

    DfxAppliance alone(timingConfig(1));
    double sum = 0.0;
    for (size_t i = 0; i < reqs.size(); ++i) {
        double t = alone.generate(reqs[i].prompt, reqs[i].nOut)
                       .totalSeconds();
        EXPECT_NEAR(stats.results[i].latencySeconds(), t, t * 1e-9);
        sum += t;
    }
    EXPECT_NEAR(stats.makespanSeconds, sum, sum * 1e-9);
}

TEST(Scheduler, ThroughputGrowsWithInFlightRequests)
{
    // The batching win: interleaved steps share the weight streams,
    // so modeled aggregate throughput rises with residency while
    // individual latencies stretch.
    auto reqs = distinctRequests(8, 4, 8);
    double tp_prev = 0.0;
    double mean_1 = 0.0;
    for (size_t kv : {size_t{1}, size_t{2}, size_t{4}}) {
        DfxServer server(timingConfig(kv), 1);
        ServerStats s = server.serve(reqs);
        EXPECT_GT(s.throughputTokensPerSec(), tp_prev)
            << kv << " in-flight";
        tp_prev = s.throughputTokensPerSec();
        if (kv == 1)
            mean_1 = s.meanLatencySeconds();
    }
    DfxServer server4(timingConfig(4), 1);
    EXPECT_GT(server4.serve(reqs).meanLatencySeconds(), mean_1);
}

TEST(Scheduler, BatchRoundStatsStayConsistent)
{
    // The amortized batch charge keeps category attribution summing
    // to the charged seconds, and a 2-batch costs less than two solo
    // steps but more than one.
    DfxSystemConfig cfg = timingConfig(2);
    DfxCluster cluster(cfg);
    TokenStats solo;
    cluster.stepToken(0, 0, &solo);
    cluster.resetContext(0);

    TokenStats batch;
    auto next = cluster.stepTokenBatch({{0, 0}, {1, 0}}, &batch);
    EXPECT_EQ(next.size(), 2u);
    EXPECT_LT(batch.seconds, 2.0 * solo.seconds);
    EXPECT_GT(batch.seconds, solo.seconds);
    double sum = 0.0;
    for (double s : batch.categorySeconds)
        sum += s;
    EXPECT_NEAR(sum, batch.seconds, batch.seconds * 1e-6);
}

TEST(Scheduler, BatchChargeMatchesChannelRoofline)
{
    // The batched charge is exactly what combineBatchRound derives
    // from the individual steps' stats: solo steps of the two
    // contexts (same positions, timing-only, so their stats are what
    // the batch observes internally) combined through the per-channel
    // roofline must reproduce stepTokenBatch's total.
    DfxSystemConfig cfg = timingConfig(2);
    DfxCluster cluster(cfg);
    std::vector<TokenStats> solo(2);
    cluster.stepToken(0, 0, &solo[0]);
    cluster.stepToken(1, 0, &solo[1]);
    cluster.resetContext(0);
    cluster.resetContext(1);
    const BatchRoundTiming round = combineBatchRound(solo);
    EXPECT_GT(round.channelBoundSeconds, 0.0);
    TokenStats batch;
    cluster.stepTokenBatch({{0, 0}, {1, 0}}, &batch);
    EXPECT_NEAR(batch.seconds, round.chargedSeconds,
                round.chargedSeconds * 1e-9);
    // Contexts 0 and 1 land on disjoint channel sets here, so the
    // amortized serial sum governs the round.
    EXPECT_DOUBLE_EQ(round.chargedSeconds, round.serialSeconds);
}

TEST(Scheduler, SubmitIsThreadSafe)
{
    // Hammer submit() from several host threads; every request must
    // be served exactly once. (This test is a TSan anchor for the
    // admission queue.)
    DfxServer server(timingConfig(2), 2);
    auto reqs = distinctRequests(4, 2, 2);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&server, &reqs] {
            for (const auto &r : reqs)
                server.submit(r);
        });
    }
    for (auto &t : threads)
        t.join();
    ServerStats stats = server.drain();
    EXPECT_EQ(stats.requests, 16u);
    EXPECT_EQ(stats.totalOutputTokens, 32u);
    EXPECT_GT(stats.makespanSeconds, 0.0);
}

TEST(Scheduler, DrainWithoutSubmitsIsEmpty)
{
    DfxServer server(timingConfig(2), 2);
    ServerStats stats = server.drain();
    EXPECT_EQ(stats.requests, 0u);
    EXPECT_EQ(stats.throughputTokensPerSec(), 0.0);
    EXPECT_EQ(stats.meanLatencySeconds(), 0.0);
    EXPECT_EQ(stats.ttftMeanSeconds, 0.0);
    EXPECT_EQ(stats.queueDelayMeanSeconds, 0.0);
    EXPECT_EQ(stats.totalSteals, 0u);
    ASSERT_EQ(stats.clusters.size(), 2u);
    EXPECT_EQ(stats.clusters[0].utilization, 0.0);
}

TEST(Scheduler, SubmitAfterDrainBeginsJoinsTheEpoch)
{
    // drain() blocks until the epoch is idle, and submit() is legal
    // while it blocks: a request submitted after the drain began must
    // join the same epoch (and wake the drainer when it completes),
    // not wedge or slip into the next epoch.
    GptWeights w = GptWeights::random(GptConfig::toy(), 104);
    DfxServer server(functionalConfig(2), 1);
    server.loadWeights(w);

    // Long enough that it is still mid-generation when the late
    // request arrives (prompt 4 + 59 outputs fills toy's maxSeq 64).
    ServerRequest longReq{{5, 9, 13, 17}, 59};
    server.submit(longReq);

    std::promise<void> draining;
    ServerStats stats;
    std::thread drainer([&] {
        draining.set_value();
        stats = server.drain();
    });
    draining.get_future().wait();
    ServerRequest lateReq{{20, 40, 60}, 6};
    const uint64_t late_id = server.submit(lateReq);
    drainer.join();

    ASSERT_EQ(stats.results.size(), 2u);
    EXPECT_EQ(late_id, 1u);
    EXPECT_EQ(stats.results[1].outcome, RequestOutcome::Completed);
    // The late request's tokens are still the serial reference's.
    DfxAppliance serial(functionalConfig(1));
    serial.loadWeights(w);
    EXPECT_EQ(stats.results[1].tokens,
              serial.generate(lateReq.prompt, lateReq.nOut).tokens);
}

TEST(Scheduler, ZeroRequestDrainWithFaultsArmedIsEmptyAndUnarmed)
{
    // An armed fault plan must not fire during (or wedge) an empty
    // drain — fail-stops apply only while work is outstanding — and
    // the plan stays armed for the next real epoch.
    ServerOptions opt;
    opt.faultPlan.failStops.push_back({0, 0.0});
    DfxServer server(timingConfig(2), 2, opt);
    ServerStats empty = server.drain();
    EXPECT_EQ(empty.requests, 0u);
    EXPECT_EQ(empty.totalFailovers, 0u);
    ASSERT_EQ(empty.clusters.size(), 2u);
    EXPECT_EQ(empty.clusters[0].health, ClusterHealth::Healthy);

    ServerStats real = server.serve(distinctRequests(4, 2, 2));
    EXPECT_EQ(real.requests, 4u);
    EXPECT_EQ(real.completedRequests, 4u);  // cluster 1 absorbs all
    EXPECT_EQ(real.clusters[0].health, ClusterHealth::Failed);
}

TEST(Scheduler, ContinuousAdmissionReusesSlotMidEpoch)
{
    // One cluster, two KV slots, one long and two short requests: the
    // short request's retirement must free its slot for the third
    // request *while the long request is still mid-generation* — no
    // epoch barrier between retirement and the next admission.
    std::vector<ServerRequest> reqs = {
        {std::vector<int32_t>(4, 1), 24, 0.0},  // r0: long
        {std::vector<int32_t>(4, 2), 4, 0.0},   // r1: short
        {std::vector<int32_t>(4, 3), 4, 0.0},   // r2: waits for a slot
    };
    DfxServer server(timingConfig(2), 1);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), 3u);
    const RequestResult &r0 = stats.results[0];
    const RequestResult &r1 = stats.results[1];
    const RequestResult &r2 = stats.results[2];
    // r2 takes over r1's slot the moment it frees ...
    EXPECT_GE(r2.admitSimSeconds, r1.finishSimSeconds);
    EXPECT_NEAR(r2.admitSimSeconds, r1.finishSimSeconds,
                r1.finishSimSeconds * 1e-9);
    // ... which happens strictly before the long request completes.
    EXPECT_LT(r2.admitSimSeconds, r0.finishSimSeconds);
    EXPECT_LT(r2.finishSimSeconds, r0.finishSimSeconds);
}

TEST(Scheduler, ArrivalTimestampsGateAdmission)
{
    // A request cannot be admitted before its simulated arrival; an
    // idle cluster jumps its clock forward to the arrival instant, so
    // a late arrival into an empty system sees zero queueing delay.
    std::vector<ServerRequest> reqs = {
        {std::vector<int32_t>(4, 1), 4, 0.0},
        {std::vector<int32_t>(4, 2), 4, 10.0},
    };
    DfxServer server(timingConfig(4), 1);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), 2u);
    const RequestResult &early = stats.results[0];
    const RequestResult &late = stats.results[1];
    EXPECT_LT(early.finishSimSeconds, 10.0);
    EXPECT_DOUBLE_EQ(early.queueDelaySeconds(), 0.0);
    EXPECT_DOUBLE_EQ(late.admitSimSeconds, 10.0);
    EXPECT_DOUBLE_EQ(late.queueDelaySeconds(), 0.0);
    EXPECT_GT(late.ttftSeconds(), 0.0);
    EXPECT_LT(late.ttftSeconds(), late.latencySeconds());
    EXPECT_GT(stats.makespanSeconds, 10.0);
}

TEST(Scheduler, TtftAndQueueDelayMetrics)
{
    // Saturated single-slot cluster: the second request's TTFT is its
    // queue wait plus service prefill, strictly beyond the first's.
    std::vector<ServerRequest> reqs = {
        {std::vector<int32_t>(4, 1), 4, 0.0},
        {std::vector<int32_t>(4, 2), 4, 0.0},
    };
    DfxServer server(timingConfig(1), 1);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), 2u);
    const RequestResult &first = stats.results[0];
    const RequestResult &second = stats.results[1];
    EXPECT_DOUBLE_EQ(first.queueDelaySeconds(), 0.0);
    EXPECT_GT(second.queueDelaySeconds(), 0.0);
    EXPECT_NEAR(second.queueDelaySeconds(), first.finishSimSeconds,
                first.finishSimSeconds * 1e-9);
    EXPECT_GT(first.ttftSeconds(), 0.0);
    EXPECT_LT(first.ttftSeconds(), first.latencySeconds());
    EXPECT_GT(second.ttftSeconds(), first.ttftSeconds());
    EXPECT_GT(stats.ttftMeanSeconds, 0.0);
    EXPECT_GE(stats.ttftP99Seconds, stats.ttftMeanSeconds);
    EXPECT_GT(stats.queueDelayMeanSeconds, 0.0);
}

TEST(Scheduler, StolenTokensMatchUnstolenExecution)
{
    // The work-stealing determinism claim: a request generates
    // bit-identical tokens whether it runs on its home cluster or on
    // the thief — every cluster holds the same weights and the KV
    // context is private to the request.
    GptWeights w = GptWeights::random(GptConfig::toy(), 103);
    WorkloadSpec spec;
    spec.nRequests = 4;
    spec.nIn = 4;
    spec.nOut = 4;
    spec.vocab = 97;
    spec.seed = 13;
    auto reqs = imbalancedWorkload(spec, 2, 4);  // even ids: nOut 16

    DfxAppliance serial(functionalConfig(1));
    serial.loadWeights(w);
    std::vector<std::vector<int32_t>> expected;
    for (const auto &r : reqs)
        expected.push_back(serial.generate(r.prompt, r.nOut).tokens);

    ServerOptions steal_on;
    steal_on.workStealing = true;
    DfxServer stealing(functionalConfig(1), 2, steal_on);
    stealing.loadWeights(w);
    ServerStats stolen = stealing.serve(reqs);

    DfxServer immobile(functionalConfig(1), 2);
    immobile.loadWeights(w);
    ServerStats pinned = immobile.serve(reqs);

    ASSERT_EQ(stolen.results.size(), reqs.size());
    EXPECT_GE(stolen.totalSteals, 1u);
    EXPECT_EQ(pinned.totalSteals, 0u);
    bool any_relocated = false;
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(stolen.results[i].tokens, expected[i])
            << "request " << i << " diverged under stealing";
        EXPECT_EQ(pinned.results[i].tokens, expected[i])
            << "request " << i << " diverged under static placement";
        if (stolen.results[i].stolen) {
            any_relocated = true;
            EXPECT_NE(stolen.results[i].cluster, i % 2)
                << "request " << i
                << " marked stolen but served at home";
        }
    }
    EXPECT_TRUE(any_relocated);
}

TEST(Scheduler, WorkStealingImprovesImbalancedMakespan)
{
    // Imbalanced pool: the home cluster of the long requests becomes
    // the straggler under static placement while its neighbour idles;
    // stealing must strictly shrink the makespan and raise the
    // thief's utilization.
    WorkloadSpec spec;
    spec.nRequests = 6;
    spec.nIn = 4;
    spec.nOut = 4;
    spec.vocab = 211;
    spec.seed = 17;
    auto reqs = imbalancedWorkload(spec, 2, 8);  // even ids: nOut 32

    DfxServer static_rr(timingConfig(1), 2);
    ServerStats pinned = static_rr.serve(reqs);

    ServerOptions steal_on;
    steal_on.workStealing = true;
    DfxServer stealing(timingConfig(1), 2, steal_on);
    ServerStats stolen = stealing.serve(reqs);

    EXPECT_LT(stolen.makespanSeconds, pinned.makespanSeconds);
    EXPECT_GE(stolen.totalSteals, 1u);
    ASSERT_EQ(stolen.clusters.size(), 2u);
    EXPECT_EQ(stolen.clusters[0].requestsServed +
                  stolen.clusters[1].requestsServed,
              reqs.size());
    EXPECT_EQ(stolen.clusters[0].requestsStolen +
                  stolen.clusters[1].requestsStolen,
              stolen.totalSteals);
    // The non-straggler picks up extra work: higher utilization than
    // it had under static placement.
    EXPECT_GT(stolen.clusters[1].utilization,
              pinned.clusters[1].utilization);
    for (const ClusterEpochStats &cs : stolen.clusters) {
        EXPECT_GT(cs.utilization, 0.0);
        EXPECT_LE(cs.utilization, 1.0 + 1e-9);
    }
}

TEST(Scheduler, StealingScheduleIsReproducible)
{
    // Placement under stealing is decided by the simulated-time event
    // order, not host thread timing: two fresh servers produce
    // identical placements, clocks and makespans.
    WorkloadSpec spec;
    spec.nRequests = 6;
    spec.nIn = 4;
    spec.nOut = 4;
    spec.vocab = 211;
    spec.seed = 23;
    auto reqs = imbalancedWorkload(spec, 2, 6);
    ServerOptions steal_on;
    steal_on.workStealing = true;

    DfxServer a(timingConfig(2), 2, steal_on);
    ServerStats sa = a.serve(reqs);
    DfxServer b(timingConfig(2), 2, steal_on);
    ServerStats sb = b.serve(reqs);

    ASSERT_EQ(sa.results.size(), sb.results.size());
    EXPECT_DOUBLE_EQ(sa.makespanSeconds, sb.makespanSeconds);
    EXPECT_EQ(sa.totalSteals, sb.totalSteals);
    for (size_t i = 0; i < sa.results.size(); ++i) {
        EXPECT_EQ(sa.results[i].cluster, sb.results[i].cluster);
        EXPECT_EQ(sa.results[i].stolen, sb.results[i].stolen);
        EXPECT_DOUBLE_EQ(sa.results[i].admitSimSeconds,
                         sb.results[i].admitSimSeconds);
        EXPECT_DOUBLE_EQ(sa.results[i].firstTokenSimSeconds,
                         sb.results[i].firstTokenSimSeconds);
        EXPECT_DOUBLE_EQ(sa.results[i].finishSimSeconds,
                         sb.results[i].finishSimSeconds);
    }
}

TEST(Scheduler, EpochP99UsesInterpolatedPercentile)
{
    // The unit coverage of perf::percentile lives in perf_test.cpp;
    // this checks the server wires it into the epoch stats.
    // End to end with n=3: the epoch's p99 latency lies strictly
    // between the second-largest and largest request latencies.
    std::vector<ServerRequest> reqs = {
        {std::vector<int32_t>(4, 1), 4, 0.0},
        {std::vector<int32_t>(4, 2), 8, 0.0},
        {std::vector<int32_t>(4, 3), 16, 0.0},
    };
    DfxServer server(timingConfig(1), 1);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), 3u);
    std::vector<double> lat;
    for (const auto &r : stats.results)
        lat.push_back(r.latencySeconds());
    std::sort(lat.begin(), lat.end());
    EXPECT_GT(stats.p99LatencySeconds, lat[1]);
    EXPECT_LT(stats.p99LatencySeconds, lat[2]);
}

}  // namespace
}  // namespace dfx
