/**
 * @file
 * Concurrent-serving scheduler tests: interleaved-vs-serial token
 * determinism, KV context isolation, FIFO fairness under saturation,
 * and the batching timing model (throughput grows with in-flight
 * requests; single in-flight reproduces serial timing exactly).
 */
#include <gtest/gtest.h>

#include <thread>

#include "appliance/server.hpp"
#include "model/weights.hpp"

namespace dfx {
namespace {

DfxSystemConfig
functionalConfig(size_t kv_contexts)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::toy();
    cfg.nCores = 2;
    cfg.functional = true;
    cfg.kvContexts = kv_contexts;
    return cfg;
}

DfxSystemConfig
timingConfig(size_t kv_contexts)
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::mini();
    cfg.nCores = 2;
    cfg.functional = false;
    cfg.kvContexts = kv_contexts;
    return cfg;
}

/** Distinct deterministic prompts, all within the toy vocab (97). */
std::vector<ServerRequest>
distinctRequests(size_t n, size_t n_in, size_t n_out)
{
    std::vector<ServerRequest> reqs;
    for (size_t i = 0; i < n; ++i) {
        ServerRequest r;
        for (size_t j = 0; j < n_in; ++j)
            r.prompt.push_back(
                static_cast<int32_t>((i * 31 + j * 7 + 3) % 97));
        r.nOut = n_out;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

TEST(Scheduler, InterleavedTokensMatchSerialExecution)
{
    // The central determinism claim: a request served concurrently
    // with three others (KV contexts interleaving every round) yields
    // bit-identical tokens to the same request served alone.
    GptWeights w = GptWeights::random(GptConfig::toy(), 101);
    auto reqs = distinctRequests(6, 4, 8);

    DfxAppliance serial(functionalConfig(1));
    serial.loadWeights(w);
    std::vector<std::vector<int32_t>> expected;
    for (const auto &r : reqs)
        expected.push_back(serial.generate(r.prompt, r.nOut).tokens);

    DfxServer server(functionalConfig(4), 1);
    server.loadWeights(w);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(stats.results[i].id, i);
        EXPECT_EQ(stats.results[i].tokens, expected[i])
            << "request " << i << " diverged under interleaving";
    }
}

TEST(Scheduler, KvContextsAreIsolated)
{
    // Two conversations stepped in lockstep through the same cluster
    // must each match their standalone run: neither context may read
    // or clobber the other's K/V regions.
    GptWeights w = GptWeights::random(GptConfig::toy(), 102);
    DfxSystemConfig cfg = functionalConfig(2);

    DfxAppliance serial(cfg);
    serial.loadWeights(w);
    auto a_alone = serial.generate({5, 10, 15}, 8).tokens;
    auto b_alone = serial.generate({80, 40, 20}, 8).tokens;

    DfxAppliance shared(cfg);
    shared.loadWeights(w);
    const size_t ca = shared.acquireContext();
    const size_t cb = shared.acquireContext();
    StepOutcome sa = shared.prefill(ca, {5, 10, 15});
    StepOutcome sb = shared.prefill(cb, {80, 40, 20});
    std::vector<int32_t> a_mixed, b_mixed;
    int32_t na = sa.next, nb = sb.next;
    for (size_t i = 0; i < 8; ++i) {
        a_mixed.push_back(na);
        b_mixed.push_back(nb);
        na = shared.decodeStep(ca, na).next;  // strict interleaving
        nb = shared.decodeStep(cb, nb).next;
    }
    EXPECT_EQ(a_mixed, a_alone);
    EXPECT_EQ(b_mixed, b_alone);
}

TEST(Scheduler, KvContextRegionsDoNotOverlap)
{
    DfxSystemConfig cfg = functionalConfig(3);
    DfxCluster cluster(cfg);
    const MemoryLayout &ml = cluster.layout();
    const GptConfig &m = cfg.model;
    const uint64_t head_bytes = m.maxSeq * m.headDim * 2;
    const uint64_t local_heads = ml.geometry.localHeads(m);
    for (size_t layer = 0; layer < m.layers; ++layer) {
        for (size_t ctx = 0; ctx + 1 < 3; ++ctx) {
            // Context ctx's last head region ends where ctx+1 begins.
            EXPECT_EQ(ml.keyHeadBase(layer, 0, ctx) +
                          local_heads * head_bytes,
                      ml.keyHeadBase(layer, 0, ctx + 1));
            EXPECT_EQ(ml.vtHeadBase(layer, 0, ctx) +
                          local_heads * head_bytes,
                      ml.vtHeadBase(layer, 0, ctx + 1));
        }
        // Highest context's K region stays inside the allocation (the
        // next allocation after K is V^T).
        EXPECT_LE(ml.keyHeadBase(layer, 0, 2) + local_heads * head_bytes,
                  ml.layers[layer].vtBase);
    }
}

TEST(Scheduler, ContextSlotsRecycle)
{
    DfxAppliance appliance(timingConfig(3));
    EXPECT_EQ(appliance.kvContexts(), 3u);
    EXPECT_EQ(appliance.freeContexts(), 3u);
    size_t a = appliance.acquireContext();
    size_t b = appliance.acquireContext();
    size_t c = appliance.acquireContext();
    EXPECT_EQ(appliance.freeContexts(), 0u);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    appliance.releaseContext(b);
    EXPECT_EQ(appliance.freeContexts(), 1u);
    // The freed slot is reused and starts a fresh conversation.
    size_t d = appliance.acquireContext();
    EXPECT_EQ(d, b);
    EXPECT_EQ(appliance.cluster().position(d), 0u);
}

TEST(Scheduler, FifoFairnessUnderSaturatedQueue)
{
    // 8 requests onto one cluster with 2 KV contexts: the queue stays
    // saturated, and admission must follow submission order — no
    // request is admitted before an earlier-submitted one.
    DfxServer server(timingConfig(2), 1);
    auto reqs = distinctRequests(8, 4, 4);
    ServerStats stats = server.serve(reqs);
    ASSERT_EQ(stats.results.size(), 8u);
    for (size_t i = 1; i < stats.results.size(); ++i) {
        EXPECT_LE(stats.results[i - 1].admitSimSeconds,
                  stats.results[i].admitSimSeconds)
            << "request " << i << " jumped the queue";
        EXPECT_LE(stats.results[i - 1].finishSimSeconds,
                  stats.results[i].finishSimSeconds);
    }
    // Saturation means later requests wait: the last admission happens
    // strictly after the first finishes a slot.
    EXPECT_GT(stats.results.back().admitSimSeconds, 0.0);
}

TEST(Scheduler, SingleInFlightReproducesSerialTiming)
{
    // With one KV context the scheduler degenerates to the paper's
    // single-stream appliance: makespan is the sum of per-request
    // service times, and per-request latency matches generate().
    auto reqs = distinctRequests(3, 4, 4);
    DfxServer server(timingConfig(1), 1);
    ServerStats stats = server.serve(reqs);

    DfxAppliance alone(timingConfig(1));
    double sum = 0.0;
    for (size_t i = 0; i < reqs.size(); ++i) {
        double t = alone.generate(reqs[i].prompt, reqs[i].nOut)
                       .totalSeconds();
        EXPECT_NEAR(stats.results[i].latencySeconds(), t, t * 1e-9);
        sum += t;
    }
    EXPECT_NEAR(stats.makespanSeconds, sum, sum * 1e-9);
}

TEST(Scheduler, ThroughputGrowsWithInFlightRequests)
{
    // The batching win: interleaved steps share the weight streams,
    // so modeled aggregate throughput rises with residency while
    // individual latencies stretch.
    auto reqs = distinctRequests(8, 4, 8);
    double tp_prev = 0.0;
    double mean_1 = 0.0;
    for (size_t kv : {size_t{1}, size_t{2}, size_t{4}}) {
        DfxServer server(timingConfig(kv), 1);
        ServerStats s = server.serve(reqs);
        EXPECT_GT(s.throughputTokensPerSec(), tp_prev)
            << kv << " in-flight";
        tp_prev = s.throughputTokensPerSec();
        if (kv == 1)
            mean_1 = s.meanLatencySeconds();
    }
    DfxServer server4(timingConfig(4), 1);
    EXPECT_GT(server4.serve(reqs).meanLatencySeconds(), mean_1);
}

TEST(Scheduler, BatchRoundStatsStayConsistent)
{
    // The amortized batch charge keeps category attribution summing
    // to the charged seconds, and a 2-batch costs less than two solo
    // steps but more than one.
    DfxSystemConfig cfg = timingConfig(2);
    DfxCluster cluster(cfg);
    TokenStats solo;
    cluster.stepToken(0, 0, &solo);
    cluster.resetContext(0);

    TokenStats batch;
    auto next = cluster.stepTokenBatch({{0, 0}, {1, 0}}, &batch);
    EXPECT_EQ(next.size(), 2u);
    EXPECT_LT(batch.seconds, 2.0 * solo.seconds);
    EXPECT_GT(batch.seconds, solo.seconds);
    double sum = 0.0;
    for (double s : batch.categorySeconds)
        sum += s;
    EXPECT_NEAR(sum, batch.seconds, batch.seconds * 1e-6);
}

TEST(Scheduler, BatchChargeMatchesChannelRoofline)
{
    // The batched charge is exactly what combineBatchRound derives
    // from the individual steps' stats: solo steps of the two
    // contexts (same positions, timing-only, so their stats are what
    // the batch observes internally) combined through the per-channel
    // roofline must reproduce stepTokenBatch's total.
    DfxSystemConfig cfg = timingConfig(2);
    DfxCluster cluster(cfg);
    std::vector<TokenStats> solo(2);
    cluster.stepToken(0, 0, &solo[0]);
    cluster.stepToken(1, 0, &solo[1]);
    cluster.resetContext(0);
    cluster.resetContext(1);
    const BatchRoundTiming round = combineBatchRound(solo);
    EXPECT_GT(round.channelBoundSeconds, 0.0);
    TokenStats batch;
    cluster.stepTokenBatch({{0, 0}, {1, 0}}, &batch);
    EXPECT_NEAR(batch.seconds, round.chargedSeconds,
                round.chargedSeconds * 1e-9);
    // Contexts 0 and 1 land on disjoint channel sets here, so the
    // amortized serial sum governs the round.
    EXPECT_DOUBLE_EQ(round.chargedSeconds, round.serialSeconds);
}

TEST(Scheduler, SubmitIsThreadSafe)
{
    // Hammer submit() from several host threads; every request must
    // be served exactly once. (This test is a TSan anchor for the
    // admission queue.)
    DfxServer server(timingConfig(2), 2);
    auto reqs = distinctRequests(4, 2, 2);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&server, &reqs] {
            for (const auto &r : reqs)
                server.submit(r);
        });
    }
    for (auto &t : threads)
        t.join();
    ServerStats stats = server.drain();
    EXPECT_EQ(stats.requests, 16u);
    EXPECT_EQ(stats.totalOutputTokens, 32u);
    EXPECT_GT(stats.makespanSeconds, 0.0);
}

TEST(Scheduler, DrainWithoutSubmitsIsEmpty)
{
    DfxServer server(timingConfig(2), 2);
    ServerStats stats = server.drain();
    EXPECT_EQ(stats.requests, 0u);
    EXPECT_EQ(stats.throughputTokensPerSec(), 0.0);
    EXPECT_EQ(stats.meanLatencySeconds(), 0.0);
}

}  // namespace
}  // namespace dfx
