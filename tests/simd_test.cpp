/**
 * @file
 * Kernel-equivalence tests for the SIMD FP16 span kernels.
 *
 * The vector kernels claim bit-identity with the scalar soft-float
 * path (docs/ARCHITECTURE.md), so they are tested the same way fp16
 * itself is: exhaustively over all 65536 half encodings for the
 * conversions, and with randomized NaN/Inf/subnormal-laced spans of
 * awkward lengths for the fused product, tree reduction, MAC loop and
 * elementwise ops — always comparing the forced-vector result bit for
 * bit against the forced-scalar reference. A cluster-level test pins
 * the end-to-end consequence: generated tokens and modeled timing do
 * not depend on which kernel dispatch resolved.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "appliance/appliance.hpp"
#include "common/fp16.hpp"
#include "common/random.hpp"
#include "numeric/simd.hpp"

namespace dfx {
namespace {

uint32_t
bits(float f)
{
    return std::bit_cast<uint32_t>(f);
}

/** Runs `fn` with dispatch forced to `k`, restoring the previous
 * kernel even when an assertion fails mid-call. */
template <typename Fn>
void
withKernel(simd::Kernel k, Fn &&fn)
{
    const simd::Kernel prev = simd::setKernelForTesting(k);
    fn();
    simd::setKernelForTesting(prev);
}

/** Random half bit pattern with specials (NaN payloads, infinities,
 * subnormals, zeros) forced in at a high rate. */
uint16_t
randomHalfBits(Rng &rng)
{
    switch (rng.below(8)) {
      case 0:
        return static_cast<uint16_t>(0x7c00 | rng.below(0x400));  // NaN/inf
      case 1:
        return static_cast<uint16_t>(0xfc00 | rng.below(0x400));
      case 2:
        return static_cast<uint16_t>(rng.below(0x400));  // subnormal/zero
      default:
        return static_cast<uint16_t>(rng.next() & 0xffff);
    }
}

/** Both kernels must exist for an A/B; scalar-only hosts skip. */
class SimdAB : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!simd::kernelSupported(simd::Kernel::kAvx2F16c))
            GTEST_SKIP() << "AVX2+F16C kernels unavailable "
                            "(host cpuid or -DDFX_SIMD=OFF)";
    }
};

TEST(SimdDispatch, ScalarAlwaysSupported)
{
    EXPECT_TRUE(simd::kernelSupported(simd::Kernel::kScalar));
    EXPECT_STREQ(simd::kernelName(simd::Kernel::kScalar), "scalar");
    EXPECT_STREQ(simd::kernelName(simd::Kernel::kAvx2F16c), "avx2_f16c");
    EXPECT_TRUE(simd::kernelSupported(simd::activeKernel()));
    EXPECT_STREQ(simd::kernelName(),
                 simd::kernelName(simd::activeKernel()));
}

TEST(SimdDispatch, SetKernelForTestingRoundTrips)
{
    const simd::Kernel active = simd::activeKernel();
    const simd::Kernel prev =
        simd::setKernelForTesting(simd::Kernel::kScalar);
    EXPECT_EQ(prev, active);
    EXPECT_EQ(simd::activeKernel(), simd::Kernel::kScalar);
    simd::setKernelForTesting(active);
    EXPECT_EQ(simd::activeKernel(), active);
}

TEST_F(SimdAB, ToFloatSpanExhaustive)
{
    // Every half encoding, in one span per kernel: value lanes must
    // widen exactly and NaN lanes must keep their payload (SNaN
    // included — the vector path rebuilds the payload the hardware
    // converter would quiet).
    std::vector<Half> src(0x10000);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = Half::fromBits(static_cast<uint16_t>(i));
    std::vector<float> scalar(src.size()), vec(src.size());
    withKernel(simd::Kernel::kScalar, [&] {
        simd::toFloatSpan(src.data(), scalar.data(), src.size());
    });
    withKernel(simd::Kernel::kAvx2F16c, [&] {
        simd::toFloatSpan(src.data(), vec.data(), src.size());
    });
    for (size_t i = 0; i < src.size(); ++i) {
        ASSERT_EQ(bits(scalar[i]),
                  bits(fp16::halfBitsToFloat(static_cast<uint16_t>(i))))
            << "scalar span diverged from fp16 at half bits " << i;
        ASSERT_EQ(bits(vec[i]), bits(scalar[i]))
            << "vector widen diverged at half bits " << i;
    }
}

TEST_F(SimdAB, FromFloatSpanExhaustiveRoundTrip)
{
    // Exact widened halves must round-trip; NaNs canonicalize to
    // sign | 0x7e00 like fp16::floatToHalfBits.
    std::vector<float> src(0x10000);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = fp16::halfBitsToFloat(static_cast<uint16_t>(i));
    std::vector<Half> scalar(src.size()), vec(src.size());
    withKernel(simd::Kernel::kScalar, [&] {
        simd::fromFloatSpan(src.data(), scalar.data(), src.size());
    });
    withKernel(simd::Kernel::kAvx2F16c, [&] {
        simd::fromFloatSpan(src.data(), vec.data(), src.size());
    });
    for (size_t i = 0; i < src.size(); ++i) {
        ASSERT_EQ(scalar[i].bits(), fp16::floatToHalfBits(src[i]))
            << "scalar span diverged from fp16 at half bits " << i;
        ASSERT_EQ(vec[i].bits(), scalar[i].bits())
            << "vector narrow diverged at half bits " << i;
    }
}

TEST_F(SimdAB, FromFloatSpanRandomBitPatterns)
{
    // Arbitrary float bit patterns: denormal floats, every rounding
    // position, overflow threshold (65520), NaN payloads. 1M lanes.
    Rng rng(2024);
    std::vector<float> src(1u << 20);
    for (auto &f : src)
        f = std::bit_cast<float>(static_cast<uint32_t>(rng.next()));
    // Pin the documented boundaries explicitly.
    src[0] = 65519.99f;
    src[1] = 65520.0f;
    src[2] = -65520.0f;
    src[3] = std::bit_cast<float>(0x7f800001u);  // SNaN
    src[4] = std::bit_cast<float>(0xffc00000u);  // -QNaN
    src[5] = -0.0f;
    std::vector<Half> scalar(src.size()), vec(src.size());
    withKernel(simd::Kernel::kScalar, [&] {
        simd::fromFloatSpan(src.data(), scalar.data(), src.size());
    });
    withKernel(simd::Kernel::kAvx2F16c, [&] {
        simd::fromFloatSpan(src.data(), vec.data(), src.size());
    });
    for (size_t i = 0; i < src.size(); ++i)
        ASSERT_EQ(vec[i].bits(), scalar[i].bits())
            << "diverged at lane " << i << " float bits "
            << bits(src[i]);
}

TEST_F(SimdAB, QuantizeSpanMatchesScalar)
{
    Rng rng(7);
    for (size_t n : {1u, 7u, 8u, 9u, 64u, 1000u}) {
        std::vector<float> src(n);
        for (auto &f : src)
            f = std::bit_cast<float>(static_cast<uint32_t>(rng.next()));
        std::vector<float> scalar = src, vec = src;
        withKernel(simd::Kernel::kScalar, [&] {
            simd::quantizeSpan(scalar.data(), scalar.size());
        });
        withKernel(simd::Kernel::kAvx2F16c, [&] {
            simd::quantizeSpan(vec.data(), vec.size());
        });
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(bits(vec[i]), bits(scalar[i]))
                << "n=" << n << " lane " << i;
    }
}

TEST_F(SimdAB, ProductQuantizedSpanMatchesScalar)
{
    Rng rng(11);
    for (size_t n : {1u, 5u, 8u, 13u, 16u, 100u, 1024u}) {
        std::vector<Half> w(n);
        std::vector<float> x(n);
        for (size_t i = 0; i < n; ++i) {
            w[i] = Half::fromBits(randomHalfBits(rng));
            x[i] = fp16::halfBitsToFloat(randomHalfBits(rng));
        }
        std::vector<float> scalar(n), vec(n);
        withKernel(simd::Kernel::kScalar, [&] {
            simd::productQuantizedSpan(w.data(), x.data(),
                                       scalar.data(), n);
        });
        withKernel(simd::Kernel::kAvx2F16c, [&] {
            simd::productQuantizedSpan(w.data(), x.data(), vec.data(),
                                       n);
        });
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(bits(vec[i]), bits(scalar[i]))
                << "n=" << n << " lane " << i << " w="
                << w[i].bits() << " x=" << bits(x[i]);
    }
}

TEST_F(SimdAB, TreeReduceQuantizedMatchesScalar)
{
    Rng rng(13);
    for (size_t width = 1; width <= simd::kMaxTreeWidth; width *= 2) {
        for (int rep = 0; rep < 8; ++rep) {
            std::vector<float> src(width);
            for (auto &f : src)
                f = fp16::halfBitsToFloat(randomHalfBits(rng));
            std::vector<float> scalar = src, vec = src;
            float root_s = 0.0f, root_v = 0.0f;
            withKernel(simd::Kernel::kScalar, [&] {
                root_s =
                    simd::treeReduceQuantized(scalar.data(), width);
            });
            withKernel(simd::Kernel::kAvx2F16c, [&] {
                root_v = simd::treeReduceQuantized(vec.data(), width);
            });
            ASSERT_EQ(bits(root_v), bits(root_s))
                << "width " << width << " rep " << rep;
        }
    }
}

TEST_F(SimdAB, MacRowMajorMatchesScalar)
{
    // Shapes mirror the DSE tilings (d x 128/d) plus ragged tails
    // that exercise the scalar tail columns and partial last chunk.
    struct Shape
    {
        size_t rows, cols, tile;
    };
    const Shape shapes[] = {{128, 64, 8},  {64, 64, 16}, {32, 32, 32},
                            {37, 19, 8},   {100, 25, 64}, {8, 8, 128},
                            {1, 1, 8},     {129, 65, 16}};
    Rng rng(17);
    for (const Shape &s : shapes) {
        const size_t pitch = s.cols + 3;  // non-contiguous rows
        std::vector<Half> w(s.rows * pitch);
        for (auto &h : w)
            h = Half::fromBits(randomHalfBits(rng));
        std::vector<float> x(s.rows);
        for (auto &f : x)
            f = fp16::halfBitsToFloat(randomHalfBits(rng));
        std::vector<float> acc0(s.cols);
        for (auto &f : acc0)
            f = fp16::halfBitsToFloat(randomHalfBits(rng));
        std::vector<float> scalar = acc0, vec = acc0;
        withKernel(simd::Kernel::kScalar, [&] {
            simd::macRowMajor(w.data(), pitch, x.data(), s.rows,
                              s.cols, s.tile, scalar.data());
        });
        withKernel(simd::Kernel::kAvx2F16c, [&] {
            simd::macRowMajor(w.data(), pitch, x.data(), s.rows,
                              s.cols, s.tile, vec.data());
        });
        for (size_t c = 0; c < s.cols; ++c)
            ASSERT_EQ(bits(vec[c]), bits(scalar[c]))
                << s.rows << "x" << s.cols << " tile " << s.tile
                << " col " << c;
    }
}

TEST_F(SimdAB, HalfSpanOpsMatchScalar)
{
    using BinOp = void (*)(const Half *, const Half *, Half *, size_t);
    using ScOp = void (*)(const Half *, Half, Half *, size_t);
    const BinOp bin_ops[] = {simd::addHalfSpan, simd::subHalfSpan,
                             simd::mulHalfSpan};
    const ScOp sc_ops[] = {simd::addHalfScalarSpan,
                           simd::subHalfScalarSpan,
                           simd::mulHalfScalarSpan};
    Rng rng(23);
    for (size_t n : {1u, 7u, 8u, 9u, 64u, 257u}) {
        std::vector<Half> a(n), b(n);
        for (size_t i = 0; i < n; ++i) {
            a[i] = Half::fromBits(randomHalfBits(rng));
            b[i] = Half::fromBits(randomHalfBits(rng));
        }
        const Half s = Half::fromBits(randomHalfBits(rng));
        for (size_t op = 0; op < 3; ++op) {
            std::vector<Half> scalar(n), vec(n);
            withKernel(simd::Kernel::kScalar, [&] {
                bin_ops[op](a.data(), b.data(), scalar.data(), n);
            });
            withKernel(simd::Kernel::kAvx2F16c, [&] {
                bin_ops[op](a.data(), b.data(), vec.data(), n);
            });
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(vec[i].bits(), scalar[i].bits())
                    << "bin op " << op << " n=" << n << " lane " << i
                    << " a=" << a[i].bits() << " b=" << b[i].bits();
            withKernel(simd::Kernel::kScalar, [&] {
                sc_ops[op](a.data(), s, scalar.data(), n);
            });
            withKernel(simd::Kernel::kAvx2F16c, [&] {
                sc_ops[op](a.data(), s, vec.data(), n);
            });
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(vec[i].bits(), scalar[i].bits())
                    << "scalar op " << op << " n=" << n << " lane "
                    << i << " a=" << a[i].bits() << " s=" << s.bits();
        }
    }
}

TEST_F(SimdAB, ClusterTokensAndTimingIdenticalAcrossKernels)
{
    // End-to-end: the same appliance run must produce bit-identical
    // tokens and modeled latency whichever kernel dispatch resolved.
    GptWeights w = GptWeights::random(GptConfig::mini(), 99);
    const std::vector<int32_t> prompt = {2, 3, 5, 7, 11};
    auto run = [&](simd::Kernel k) {
        GenerationResult r;
        withKernel(k, [&] {
            DfxSystemConfig cfg;
            cfg.model = GptConfig::mini();
            cfg.nCores = 4;
            cfg.functional = true;
            DfxAppliance appliance(cfg);
            appliance.loadWeights(w);
            r = appliance.generate(prompt, 8);
        });
        return r;
    };
    const GenerationResult scalar = run(simd::Kernel::kScalar);
    const GenerationResult vec = run(simd::Kernel::kAvx2F16c);
    EXPECT_EQ(vec.tokens, scalar.tokens);
    EXPECT_EQ(vec.totalSeconds(), scalar.totalSeconds());
}

}  // namespace
}  // namespace dfx
