/**
 * @file
 * Appliance-level tests: stage accounting, PCIe modeling, GFLOPS
 * flatness across stages (the Fig. 17 property), and stability of
 * the generated instruction stream (golden structure).
 */
#include <gtest/gtest.h>

#include "appliance/appliance.hpp"
#include "isa/assembler.hpp"
#include "isa/codegen.hpp"

namespace dfx {
namespace {

DfxSystemConfig
timing345M()
{
    DfxSystemConfig cfg;
    cfg.model = GptConfig::gpt2_345M();
    cfg.nCores = 1;
    cfg.functional = false;
    return cfg;
}

TEST(Appliance, StageAccountingCoversAllSteps)
{
    DfxAppliance appliance(timing345M());
    GenerationResult r =
        appliance.generate(std::vector<int32_t>(10, 0), 5);
    // 10 summarization steps + 5 generation steps; per-step time is
    // nearly constant, so stage times split ~2:1.
    EXPECT_NEAR(r.summarizationSeconds / r.generationSeconds, 2.0, 0.2);
    EXPECT_EQ(r.tokens.size(), 5u);
    EXPECT_GT(r.pcieSeconds, 0.0);
    EXPECT_LT(r.pcieSeconds, 1e-3);  // host involvement is negligible
}

TEST(Appliance, PcieModelCharges)
{
    PcieModel pcie;
    // Latency floor.
    EXPECT_NEAR(pcie.transferSeconds(0), 5e-6, 1e-9);
    // 16 GB at 16 GB/s ~ 1 s.
    EXPECT_NEAR(pcie.transferSeconds(16ull << 30), 1.07, 0.08);
}

TEST(Appliance, DfxGflopsFlatAcrossStages)
{
    // Fig. 17's DFX property: the generation-stage GFLOPS stay within
    // ~20% of summarization (single-token dataflow in both stages).
    DfxAppliance appliance(timing345M());
    GenerationResult r =
        appliance.generate(std::vector<int32_t>(64, 0), 64);
    double summ = r.summarizationFlopsPerSec();
    double gen = r.generationFlopsPerSec();
    EXPECT_NEAR(gen / summ, 1.0, 0.25);
}

TEST(Appliance, HbmTrafficMatchesWeightFootprint)
{
    // Every token step must stream at least the full weight shard
    // (weights cannot be reused without batching).
    GptConfig cfg = GptConfig::gpt2_345M();
    DfxAppliance appliance(timing345M());
    GenerationResult r =
        appliance.generate(std::vector<int32_t>(4, 0), 4);
    double steps = 8.0;
    double min_bytes =
        steps * static_cast<double>(cfg.layers) *
        static_cast<double>(cfg.layerMatrixParams()) * 2.0;  // FP16
    EXPECT_GE(static_cast<double>(r.hbmBytes), min_bytes);
}

TEST(Codegen, LayerProgramStructureIsStable)
{
    // Golden structural fingerprint of a decoder layer: opcode
    // sequence of phase A for the 1.5B model on 4 cores. Guards
    // against silent codegen regressions; update deliberately when
    // the dataflow changes.
    GptConfig cfg = GptConfig::gpt2_1_5B();
    ClusterGeometry geo{4};
    OffchipMemory hbm = makeHbm(0, 0.5, false);
    OffchipMemory ddr = makeDdr(0, 0.7, false);
    MemoryLayout layout = MemoryLayout::build(cfg, geo, 16, hbm, ddr);
    isa::ProgramBuilder builder(cfg, geo, layout, 0);
    auto phases = builder.layerPhases(0, 2);
    ASSERT_EQ(phases.size(), 5u);

    std::string ops;
    for (const auto &inst : phases[0].program) {
        ops += isa::opcodeName(inst.op);
        ops += ' ';
    }
    // LayerNorm chain (13) + V conv + 6 VT stores + K conv + 6 K
    // stores + Q conv + 6 heads x (masked_mm + softmax(6) + mm) + sync.
    const std::string head =
        "masked_mm redu_max sub_s exp accum s_recip mul_s mm ";
    std::string expect =
        "accum s_mul sub_s mul accum s_mul s_add s_rsqrt mul_s load "
        "load mul add "
        "conv1d dma_store_kv dma_store_kv dma_store_kv dma_store_kv "
        "dma_store_kv dma_store_kv "
        "conv1d dma_store_kv dma_store_kv dma_store_kv dma_store_kv "
        "dma_store_kv dma_store_kv "
        "conv1d ";
    for (int h = 0; h < 6; ++h)
        expect += head;
    expect += "sync ";
    EXPECT_EQ(ops, expect);

    // Phases B-E structure.
    EXPECT_EQ(phases[1].program.size(), 2u);  // proj conv + sync
    EXPECT_EQ(phases[2].program.size(), 16u); // resid + LN(13) + fc1 + sync
    EXPECT_EQ(phases[3].program.size(), 2u);  // fc2 + sync
    EXPECT_EQ(phases[4].program.size(), 1u);  // resid
}

TEST(Codegen, SyncPayloadsMatchShardSizes)
{
    GptConfig cfg = GptConfig::gpt2_1_5B();
    ClusterGeometry geo{4};
    OffchipMemory hbm = makeHbm(0, 0.5, false);
    OffchipMemory ddr = makeDdr(0, 0.7, false);
    MemoryLayout layout = MemoryLayout::build(cfg, geo, 16, hbm, ddr);
    isa::ProgramBuilder builder(cfg, geo, layout, 0);
    auto phases = builder.layerPhases(0, 0);
    // Syncs: attn' (emb/4), proj (emb/4), ffn1 (4emb/4), ffn2 (emb/4).
    EXPECT_EQ(phases[0].sync().len, 384u);
    EXPECT_EQ(phases[1].sync().len, 384u);
    EXPECT_EQ(phases[2].sync().len, 1536u);
    EXPECT_EQ(phases[3].sync().len, 384u);
}

TEST(Codegen, EmbeddingReadsTokenAndPositionRows)
{
    GptConfig cfg = GptConfig::mini();
    ClusterGeometry geo{1};
    OffchipMemory hbm = makeHbm(0, 0.5, false);
    OffchipMemory ddr = makeDdr(0, 0.7, false);
    MemoryLayout layout = MemoryLayout::build(cfg, geo, 16, hbm, ddr);
    isa::ProgramBuilder builder(cfg, geo, layout, 0);
    isa::Phase embed = builder.embedPhase(42, 7);
    ASSERT_EQ(embed.program.size(), 3u);
    EXPECT_EQ(embed.program[0].src1.addr,
              layout.wte + 42ull * cfg.embedding * 2);
    EXPECT_EQ(embed.program[1].src1.addr,
              layout.wpe + 7ull * cfg.embedding * 2);
    EXPECT_EQ(embed.program[2].op, isa::Opcode::kAdd);
}

}  // namespace
}  // namespace dfx
