/**
 * @file
 * Compute-core unit tests: MPU functional math and tiling-driven
 * timing, VPU ops, DMA transpose store, scoreboard chaining, the
 * scheduler's engine-overlap behaviour, and the per-channel HBM
 * contention model (single-stream closed forms and the batched-round
 * roofline).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "appliance/cluster.hpp"
#include "common/random.hpp"
#include "core/core.hpp"
#include "memory/hbm_channels.hpp"
#include "numeric/functions.hpp"

namespace dfx {
namespace {

using isa::Category;
using isa::Instruction;
using isa::Opcode;
using isa::Operand;

class CoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        core = std::make_unique<ComputeCore>(0, CoreParams::defaults(),
                                             true);
    }

    /** Loads a float vector into the VRF at `line`. */
    void
    setVec(size_t line, const VecF &v)
    {
        core->vrf().writeVec(line, toHalf(v));
    }

    VecF
    getVec(size_t line, size_t n)
    {
        return toFloat(core->vrf().readVec(line, n));
    }

    std::unique_ptr<ComputeCore> core;
};

TEST_F(CoreTest, MpuTreeReduceMatchesSum)
{
    Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        size_t n = 1 + rng.below(64);
        std::vector<Half> vals(n);
        double exact = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double x = rng.uniform(-2.0, 2.0);
            vals[i] = Half::fromDouble(x);
            exact += vals[i].toDouble();
        }
        float got = Mpu::treeReduce(vals.data(), n).toFloat();
        EXPECT_NEAR(got, exact, 0.05 * n) << "n=" << n;
    }
}

TEST_F(CoreTest, Conv1dMatchesReferenceMatVec)
{
    // W: 96 x 24 in HBM, x: 96, b: 24.
    const size_t rows = 96, cols = 24;
    Rng rng(7);
    MatF w(rows, cols);
    VecF x(rows), b(cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            w.at(r, c) = static_cast<float>(rng.normal(0, 0.3));
    for (size_t r = 0; r < rows; ++r)
        x[r] = static_cast<float>(rng.normal(0, 1.0));
    for (size_t c = 0; c < cols; ++c)
        b[c] = static_cast<float>(rng.normal(0, 0.1));

    uint64_t w_addr = core->hbm().alloc(rows * cols * 2, "w");
    uint64_t b_addr = core->ddr().alloc(cols * 2, "b");
    MatH wh = toHalf(w);
    core->hbm().writeHalf(w_addr, wh.data(), wh.size());
    VecH bh = toHalf(b);
    core->ddr().writeHalf(b_addr, bh.data(), bh.size());
    setVec(0, x);

    Instruction inst;
    inst.op = Opcode::kConv1d;
    inst.src1 = Operand::vrf(0);
    inst.src2 = Operand::hbm(w_addr);
    inst.src3 = Operand::ddr(b_addr);
    inst.dst = Operand::vrf(8);
    inst.len = rows;
    inst.cols = cols;
    inst.pitch = cols;
    isa::Program prog{inst};
    core->executePhase(prog);

    VecF expect = matVec(w, x, b);
    VecF got = getVec(8, cols);
    for (size_t c = 0; c < cols; ++c)
        EXPECT_NEAR(got[c], expect[c], 0.05f) << c;
}

TEST_F(CoreTest, Conv1dGeluFusion)
{
    const size_t rows = 64, cols = 16;
    MatF w(rows, cols, 0.0f);
    for (size_t c = 0; c < cols; ++c)
        w.at(c, c) = 1.0f;  // identity-ish: y_c = x_c
    uint64_t w_addr = core->hbm().alloc(rows * cols * 2, "w");
    MatH wh = toHalf(w);
    core->hbm().writeHalf(w_addr, wh.data(), wh.size());
    VecF x(rows);
    for (size_t r = 0; r < rows; ++r)
        x[r] = -2.0f + 0.25f * static_cast<float>(r % 16);
    setVec(0, x);

    Instruction inst;
    inst.op = Opcode::kConv1d;
    inst.src1 = Operand::vrf(0);
    inst.src2 = Operand::hbm(w_addr);
    inst.dst = Operand::vrf(8);
    inst.len = rows;
    inst.cols = cols;
    inst.pitch = cols;
    inst.flags = isa::kFlagGelu;
    isa::Program prog{inst};
    core->executePhase(prog);

    VecF got = getVec(8, cols);
    for (size_t c = 0; c < cols; ++c)
        EXPECT_NEAR(got[c], geluExact(x[c]), 6e-3f) << c;
}

TEST_F(CoreTest, MaskedMmMasksAboveCurrentToken)
{
    // K region: 4 stored rows of dim 64; query matches row pattern.
    const size_t hd = 64, seq = 4;
    uint64_t k_addr = core->hbm().alloc(seq * hd * 2, "k");
    for (size_t t = 0; t < seq; ++t) {
        VecH row(hd);
        for (size_t i = 0; i < hd; ++i)
            row[i] = Half::fromDouble(t == i ? 1.0 : 0.0);
        core->hbm().writeHalf(k_addr + t * hd * 2, row.data(), hd);
    }
    VecF q(hd, 0.0f);
    q[0] = 8.0f;
    q[1] = 16.0f;
    q[2] = 24.0f;
    q[3] = 32.0f;
    setVec(0, q);

    Instruction inst;
    inst.op = Opcode::kMaskedMm;
    inst.src1 = Operand::vrf(0);
    inst.src2 = Operand::hbm(k_addr);
    inst.src3 = Operand::imm(Half::fromDouble(0.125).bits());
    inst.dst = Operand::vrf(4);
    inst.len = hd;
    inst.cols = seq;
    inst.pitch = hd;
    inst.aux = 2;  // mask positions > 2
    inst.flags = isa::kFlagMask | isa::kFlagScale |
                 isa::kFlagWeightRowIsCol;
    isa::Program prog{inst};
    core->executePhase(prog);

    VecF got = getVec(4, seq);
    EXPECT_FLOAT_EQ(got[0], 1.0f);   // 8 * 0.125
    EXPECT_FLOAT_EQ(got[1], 2.0f);
    EXPECT_FLOAT_EQ(got[2], 3.0f);
    EXPECT_FLOAT_EQ(got[3], -65504.0f);  // masked to min half
}

TEST_F(CoreTest, VpuElementwiseOps)
{
    VecF a(70), b(70);
    for (size_t i = 0; i < 70; ++i) {
        a[i] = static_cast<float>(i) * 0.5f;
        b[i] = 1.0f;
    }
    setVec(0, a);
    setVec(2, b);
    isa::Program prog;
    Instruction add{Opcode::kAdd, Operand::vrf(0), Operand::vrf(2), {},
                    Operand::vrf(4), 70, 0, 0, 0, isa::kFlagNone,
                    Category::kOther};
    Instruction mul{Opcode::kMulScalar, Operand::vrf(4),
                    Operand::imm(Half::fromDouble(2.0).bits()), {},
                    Operand::vrf(6), 70, 0, 0, 0, isa::kFlagNone,
                    Category::kOther};
    prog.push_back(add);
    prog.push_back(mul);
    core->executePhase(prog);
    VecF got = getVec(6, 70);
    for (size_t i = 0; i < 70; ++i)
        EXPECT_FLOAT_EQ(got[i], (a[i] + 1.0f) * 2.0f);
}

TEST_F(CoreTest, VpuAccumAndScalarChain)
{
    VecF x(100);
    double sum = 0.0;
    for (size_t i = 0; i < 100; ++i) {
        x[i] = 0.25f * static_cast<float>(i % 7);
        sum += x[i];
    }
    setVec(0, x);
    isa::Program prog;
    prog.push_back({Opcode::kAccum, Operand::vrf(0), {}, {},
                    Operand::srf(0), 100, 0, 0, 0, isa::kFlagNone,
                    Category::kOther});
    prog.push_back({Opcode::kScalarMul, Operand::srf(0),
                    Operand::imm(Half::fromDouble(0.01).bits()), {},
                    Operand::srf(1), 0, 0, 0, 0, isa::kFlagNone,
                    Category::kOther});
    prog.push_back({Opcode::kScalarRsqrt, Operand::srf(1), {}, {},
                    Operand::srf(2), 0, 0, 0, 0, isa::kFlagNone,
                    Category::kOther});
    core->executePhase(prog);
    EXPECT_NEAR(core->srf().read(0).toFloat(), sum, 0.5);
    EXPECT_NEAR(core->srf().read(2).toFloat(),
                1.0 / std::sqrt(sum * 0.01), 0.05);
}

TEST_F(CoreTest, ReduMaxFindsValueAndIndex)
{
    VecF x(130, 0.0f);
    x[77] = 5.0f;
    x[129] = 4.0f;
    setVec(0, x);
    isa::Program prog;
    prog.push_back({Opcode::kReduMax, Operand::vrf(0), {}, {},
                    Operand::srf(3), 130, 0, 0, 0, isa::kFlagNone,
                    Category::kOther});
    core->executePhase(prog);
    EXPECT_FLOAT_EQ(core->srf().read(3).toFloat(), 5.0f);
    EXPECT_EQ(core->irf().read(3), 77);
}

TEST_F(CoreTest, DmaTransposeStore)
{
    const size_t hd = 64, max_seq = 8;
    uint64_t vt = core->hbm().alloc(hd * max_seq * 2, "vt");
    VecF v(hd);
    for (size_t j = 0; j < hd; ++j)
        v[j] = static_cast<float>(j);
    setVec(0, v);
    Instruction st;
    st.op = Opcode::kDmaStoreKv;
    st.src1 = Operand::vrf(0);
    st.dst = Operand::hbm(vt);
    st.len = hd;
    st.aux = 3;        // column (position) 3
    st.pitch = max_seq;
    st.flags = isa::kFlagTranspose;
    isa::Program prog{st};
    core->executePhase(prog);
    // Element j landed at row j, column 3.
    for (size_t j = 0; j < hd; ++j) {
        EXPECT_FLOAT_EQ(
            core->hbm().loadHalf(vt + (j * max_seq + 3) * 2).toFloat(),
            static_cast<float>(j));
    }
}

TEST_F(CoreTest, MatrixTimingScalesWithTiles)
{
    // Timing-only core to probe the cost model.
    ComputeCore tcore(0, CoreParams::defaults(), false);
    auto conv = [](uint32_t rows, uint32_t cols) {
        Instruction i;
        i.op = Opcode::kConv1d;
        i.src1 = Operand::vrf(0);
        i.src2 = Operand::hbm(0);
        i.dst = Operand::vrf(100);
        i.len = rows;
        i.cols = cols;
        i.pitch = cols;
        return i;
    };
    isa::Program small{conv(512, 512)};
    isa::Program big{conv(1024, 1024)};
    Cycles t_small = tcore.executePhase(small).cycles;
    Cycles t_big = tcore.executePhase(big).cycles;
    // 4x the data: cost should scale close to 4x (fill amortized).
    EXPECT_GT(t_big, 3 * t_small);
    EXPECT_LT(t_big, 5 * t_small);
}

TEST_F(CoreTest, ScoreboardSerializesDependents)
{
    // A reduction has a deep writeback latency (adder tree); a scalar
    // op reading its SRF result must wait for it, while a scalar op on
    // an immediate can issue as soon as the engine frees up.
    ComputeCore tcore(0, CoreParams::defaults(), false);
    Instruction accum{Opcode::kAccum, Operand::vrf(0), {}, {},
                      Operand::srf(0), 64, 0, 0, 0, isa::kFlagNone,
                      Category::kOther};
    Instruction dep{Opcode::kScalarMul, Operand::srf(0),
                    Operand::imm(Half::one().bits()), {}, Operand::srf(1),
                    0, 0, 0, 0, isa::kFlagNone, Category::kOther};
    Instruction indep{Opcode::kScalarMul,
                      Operand::imm(Half::one().bits()),
                      Operand::imm(Half::one().bits()), {},
                      Operand::srf(1), 0, 0, 0, 0, isa::kFlagNone,
                      Category::kOther};
    Cycles chained = tcore.executePhase(isa::Program{accum, dep}).cycles;
    Cycles overlapped =
        tcore.executePhase(isa::Program{accum, indep}).cycles;
    EXPECT_GT(chained, overlapped);
}

TEST_F(CoreTest, EnginesOverlap)
{
    // A matrix op (MPU) and an unrelated vector op (VPU) overlap: the
    // phase is shorter than the sum of their isolated times.
    ComputeCore tcore(0, CoreParams::defaults(), false);
    Instruction conv;
    conv.op = Opcode::kConv1d;
    conv.src1 = Operand::vrf(0);
    conv.src2 = Operand::hbm(0);
    conv.dst = Operand::vrf(100);
    conv.len = 1024;
    conv.cols = 1024;
    conv.pitch = 1024;
    Instruction vec{Opcode::kAdd, Operand::vrf(200), Operand::vrf(202),
                    {}, Operand::vrf(204), 4096, 0, 0, 0, isa::kFlagNone,
                    Category::kOther};
    Cycles conv_only = tcore.executePhase(isa::Program{conv}).cycles;
    Cycles vec_only = tcore.executePhase(isa::Program{vec}).cycles;
    Cycles both = tcore.executePhase(isa::Program{conv, vec}).cycles;
    EXPECT_LT(both, conv_only + vec_only);
    EXPECT_GE(both, std::max(conv_only, vec_only));
}

TEST_F(CoreTest, ZeroLengthMatrixTimingDoesNotUnderflow)
{
    // Regression: a zero-length operand made the sliding-window count
    // 0, and (windows - 1) underflowed Cycles into an astronomically
    // large latency. Zero rows must cost no more than the pipeline
    // fill.
    CoreParams params = CoreParams::defaults();
    OffchipMemory hbm = makeHbm(0, params.hbmEfficiency, false);
    OffchipMemory ddr = makeDdr(0, params.ddrEfficiency, false);
    Mpu mpu(params, &hbm, &ddr);
    Instruction inst;
    inst.op = Opcode::kConv1d;
    inst.src1 = Operand::vrf(0);
    inst.src2 = Operand::hbm(0);
    inst.dst = Operand::vrf(8);
    inst.len = 0;
    inst.cols = 16;
    inst.pitch = 16;
    MatrixTiming t = mpu.timing(inst);
    EXPECT_EQ(t.occupancy, 0u);
    EXPECT_EQ(t.latency, params.mpuFillLatency());
    // The same holds on every sliding-window boundary shape.
    inst.len = static_cast<uint32_t>(params.maxConvInput);
    Cycles one_window = mpu.timing(inst).latency;
    inst.len = static_cast<uint32_t>(params.maxConvInput) + 1;
    EXPECT_GT(mpu.timing(inst).latency, one_window);
}

TEST_F(CoreTest, ChannelMaskSetsStreamRate)
{
    // k channels of C deliver k/C of the aggregate bandwidth; the
    // full mask and the unannotated default agree bit-for-bit.
    CoreParams params = CoreParams::defaults();
    OffchipMemory hbm = makeHbm(0, params.hbmEfficiency, false);
    OffchipMemory ddr = makeDdr(0, params.ddrEfficiency, false);
    Mpu mpu(params, &hbm, &ddr);
    Instruction inst;
    inst.op = Opcode::kMm;
    inst.src1 = Operand::vrf(0);
    inst.src2 = Operand::hbm(0);
    inst.dst = Operand::vrf(8);
    inst.len = 512;
    inst.cols = 512;
    inst.pitch = 512;
    const MatrixTiming unannotated = mpu.timing(inst);
    inst.hbmChannels =
        contiguousChannels(0, params.hbmChannels, params.hbmChannels);
    EXPECT_EQ(mpu.timing(inst).occupancy, unannotated.occupancy);
    inst.hbmChannels = contiguousChannels(5, 1, params.hbmChannels);
    const MatrixTiming pinned = mpu.timing(inst);
    EXPECT_GT(pinned.occupancy, unannotated.occupancy);
    EXPECT_EQ(pinned.hbmChannelMask, 1u << 5);
    // Wider sets stream faster.
    inst.hbmChannels = contiguousChannels(5, 4, params.hbmChannels);
    EXPECT_LT(mpu.timing(inst).occupancy, pinned.occupancy);
    EXPECT_GE(mpu.timing(inst).occupancy, unannotated.occupancy);
}

namespace {

/** A synthetic step: `seconds` total, `priv` of it waiting on a K/V
 *  stream pinned to `mask`, `reuse` on shared weight streams. */
TokenStats
syntheticStep(double seconds, double reuse, double priv, uint32_t mask)
{
    TokenStats s;
    s.seconds = seconds;
    s.categorySeconds[static_cast<size_t>(Category::kAttention)] =
        seconds;
    s.weightReuseSeconds = reuse;
    s.privateStreamSeconds = priv;
    for (size_t c = 0; c < kHbmChannels; ++c) {
        if (mask & (1u << c))
            s.hbmPrivateChannelSeconds[c] = priv;
        s.hbmSharedChannelSeconds[c] = reuse;
    }
    return s;
}

}  // namespace

TEST(BatchRound, SingleStepKeepsExactSerialTiming)
{
    // One resident context: the round is the step, bit-for-bit; the
    // channel roofline only arbitrates between concurrent contexts.
    BatchRoundTiming r =
        combineBatchRound({syntheticStep(2.0, 0.5, 0.8, 0x1)});
    EXPECT_DOUBLE_EQ(r.chargedSeconds, 2.0);
    EXPECT_DOUBLE_EQ(r.serialSeconds, 2.0);
}

TEST(BatchRound, DisjointChannelSetsDoNotContend)
{
    // Two steps whose K/V streams are pinned to different channels:
    // the mate's stream overlaps the first step's compute, so the
    // round is the amortized serial sum and no channel penalty bites.
    std::vector<TokenStats> steps = {
        syntheticStep(1.0, 0.0, 0.9, 0x1),
        syntheticStep(1.0, 0.0, 0.9, 0x2),
    };
    BatchRoundTiming r = combineBatchRound(steps);
    EXPECT_DOUBLE_EQ(r.stepChargeSeconds[0], 1.0);
    EXPECT_DOUBLE_EQ(r.stepChargeSeconds[1], 0.1);
    EXPECT_DOUBLE_EQ(r.serialSeconds, 1.1);
    EXPECT_DOUBLE_EQ(r.channelBoundSeconds, 0.9);
    EXPECT_DOUBLE_EQ(r.chargedSeconds, 1.1);
}

TEST(BatchRound, OverlappingChannelSetsSerialize)
{
    // Same two steps pinned to the *same* channel: their streams
    // serialize on it, and the channel bound overtakes the serial sum.
    std::vector<TokenStats> steps = {
        syntheticStep(1.0, 0.0, 0.9, 0x1),
        syntheticStep(1.0, 0.0, 0.9, 0x1),
    };
    BatchRoundTiming r = combineBatchRound(steps);
    EXPECT_DOUBLE_EQ(r.serialSeconds, 1.1);
    EXPECT_DOUBLE_EQ(r.channelBoundSeconds, 1.8);
    EXPECT_DOUBLE_EQ(r.chargedSeconds, 1.8);
}

TEST(BatchRound, SharedWeightStripeCountsOnce)
{
    // Weight traffic occupies every channel but streams once per
    // round: mates amortize it in their serial charge and it is not
    // re-added to the channel ledger.
    std::vector<TokenStats> steps = {
        syntheticStep(1.0, 0.6, 0.0, 0),
        syntheticStep(1.0, 0.6, 0.0, 0),
        syntheticStep(1.0, 0.6, 0.0, 0),
    };
    BatchRoundTiming r = combineBatchRound(steps);
    EXPECT_DOUBLE_EQ(r.serialSeconds, 1.0 + 0.4 + 0.4);
    EXPECT_DOUBLE_EQ(r.channelBoundSeconds, 0.6);
    EXPECT_DOUBLE_EQ(r.chargedSeconds, 1.8);
}

TEST_F(CoreTest, CategoryAttributionSumsToPhase)
{
    ComputeCore tcore(0, CoreParams::defaults(), false);
    Instruction a{Opcode::kAdd, Operand::vrf(0), Operand::vrf(2), {},
                  Operand::vrf(4), 256, 0, 0, 0, isa::kFlagNone,
                  Category::kResidual};
    Instruction b{Opcode::kMul, Operand::vrf(4), Operand::vrf(2), {},
                  Operand::vrf(6), 256, 0, 0, 0, isa::kFlagNone,
                  Category::kLayerNorm};
    PhaseStats s = tcore.executePhase(isa::Program{a, b});
    Cycles sum = 0;
    for (Cycles c : s.byCategory)
        sum += c;
    EXPECT_EQ(sum, s.cycles);
}

}  // namespace
}  // namespace dfx
