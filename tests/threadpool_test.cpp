/**
 * @file
 * Thread-pool tests: every index runs exactly once across workers,
 * the sequential degenerate path, and exception propagation — the
 * first worker throw reaches the caller of run() and the pool stays
 * usable afterwards.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/threadpool.hpp"

namespace dfx {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h.store(0);
    pool.run(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SequentialPathPropagatesExceptions)
{
    ThreadPool pool(1);  // no workers: run() is a plain loop
    EXPECT_THROW(
        pool.run(4,
                 [](size_t i) {
                     if (i == 2)
                         throw std::runtime_error("boom");
                 }),
        std::runtime_error);
}

TEST(ThreadPool, WorkerExceptionReachesCaller)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.run(64, [&](size_t i) {
            if (i == 7)
                throw std::runtime_error("index 7 failed");
            ran.fetch_add(1);
        });
        FAIL() << "run() swallowed the worker exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "index 7 failed");
    }
    // Cancellation is best-effort: some indices may have been skipped,
    // but never more than the batch size ran.
    EXPECT_LE(ran.load(), 63);
}

TEST(ThreadPool, PoolIsReusableAfterAnException)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.run(8,
                          [](size_t) {
                              throw std::runtime_error("first batch");
                          }),
                 std::runtime_error);
    // The next batch must run cleanly: the stored exception was
    // consumed and every worker is back at the barrier.
    std::atomic<int> hits{0};
    pool.run(100, [&](size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, FirstExceptionWinsUnderConcurrentThrows)
{
    ThreadPool pool(4);
    for (int round = 0; round < 10; ++round) {
        try {
            pool.run(32, [](size_t) {
                throw std::runtime_error("every index throws");
            });
            FAIL() << "run() swallowed the exceptions";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "every index throws");
        }
    }
}

}  // namespace
}  // namespace dfx
