/**
 * @file
 * ISA tests: metadata, validation, binary encode/decode round-trips,
 * assembler round-trips, and codegen structure (Algorithm 1: four
 * syncs per decoder layer, V before K/Q for transpose hiding).
 */
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "isa/assembler.hpp"
#include "isa/codegen.hpp"
#include "isa/encoding.hpp"
#include "isa/instruction.hpp"

namespace dfx {
namespace isa {
namespace {

Instruction
sampleConv1d()
{
    Instruction i;
    i.op = Opcode::kConv1d;
    i.src1 = Operand::vrf(32);
    i.src2 = Operand::hbm(0x10000);
    i.src3 = Operand::ddr(0x200);
    i.dst = Operand::vrf(64);
    i.len = 1536;
    i.cols = 384;
    i.pitch = 384;
    i.flags = kFlagGelu;
    i.category = Category::kFfn;
    return i;
}

TEST(Isa, EngineMapping)
{
    EXPECT_EQ(engineOf(Opcode::kConv1d), Engine::kMpu);
    EXPECT_EQ(engineOf(Opcode::kMaskedMm), Engine::kMpu);
    EXPECT_EQ(engineOf(Opcode::kMm), Engine::kMpu);
    EXPECT_EQ(engineOf(Opcode::kAdd), Engine::kVpu);
    EXPECT_EQ(engineOf(Opcode::kExp), Engine::kVpu);
    EXPECT_EQ(engineOf(Opcode::kDmaStoreKv), Engine::kDma);
    EXPECT_EQ(engineOf(Opcode::kSync), Engine::kRouter);
}

TEST(Isa, OpcodeNamesRoundTrip)
{
    for (size_t i = 0; i < static_cast<size_t>(Opcode::kNumOpcodes); ++i) {
        Opcode op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromName(opcodeName(op)), op);
    }
}

TEST(Isa, ValidationAcceptsWellFormed)
{
    std::string err;
    EXPECT_TRUE(validate(sampleConv1d(), &err)) << err;
}

TEST(Isa, ValidationRejectsBadOperands)
{
    Instruction i = sampleConv1d();
    i.src2 = Operand::ddr(0);  // weights must stream from HBM
    std::string err;
    EXPECT_FALSE(validate(i, &err));
    EXPECT_FALSE(err.empty());

    Instruction add;
    add.op = Opcode::kAdd;
    add.src1 = Operand::vrf(0);
    add.src2 = Operand::srf(0);  // vector add needs VRF operands
    add.dst = Operand::vrf(1);
    add.len = 64;
    EXPECT_FALSE(validate(add, &err));
}

TEST(Isa, EncodeDecodeRoundTrip)
{
    Instruction i = sampleConv1d();
    Instruction back = decode(encode(i));
    EXPECT_EQ(back, i);
}

TEST(Isa, EncodeDecodeRandomizedRoundTrip)
{
    // Property test over randomized field values.
    Rng rng(31);
    for (int n = 0; n < 2000; ++n) {
        Instruction i;
        i.op = static_cast<Opcode>(
            rng.below(static_cast<uint64_t>(Opcode::kNumOpcodes)));
        auto rand_operand = [&rng]() {
            Operand op;
            op.space = static_cast<Space>(rng.below(7));
            op.addr = rng.below(1u << 30);
            return op;
        };
        i.src1 = rand_operand();
        i.src2 = rand_operand();
        i.src3 = rand_operand();
        i.dst = rand_operand();
        i.src2.addr = rng.next();  // full 64-bit address field
        i.dst.addr = rng.next();   // dst too (paged-KV virtual windows)
        i.len = static_cast<uint32_t>(rng.next());
        i.cols = static_cast<uint32_t>(rng.next());
        i.aux = static_cast<uint32_t>(rng.next());
        i.pitch = static_cast<uint32_t>(rng.next());
        i.flags = static_cast<uint16_t>(rng.next());
        i.hbmChannels = static_cast<uint32_t>(rng.next());
        i.category = static_cast<Category>(
            rng.below(static_cast<uint64_t>(Category::kNumCategories)));
        Instruction back = decode(encode(i));
        ASSERT_EQ(back, i);
    }
}

TEST(Isa, ProgramEncodeDecode)
{
    Program prog;
    for (int k = 0; k < 7; ++k) {
        Instruction i = sampleConv1d();
        i.len = 100 + k;
        prog.push_back(i);
    }
    Program back = decodeProgram(encodeProgram(prog));
    EXPECT_EQ(back, prog);
}

TEST(Assembler, FormatParseRoundTrip)
{
    Instruction i = sampleConv1d();
    std::string text = format(i);
    Instruction back = parse(text);
    EXPECT_EQ(back, i) << text;
    // The channel-set attribute must survive the text round trip too
    // (it formats as hex and parses base-0).
    i.hbmChannels = 0xA0000005u;
    text = format(i);
    back = parse(text);
    EXPECT_EQ(back, i) << text;
}

TEST(Assembler, ParsesHandWritten)
{
    Instruction i = parse(
        "masked_mm v[96], hbm[0x4000], imm[11878] -> v[192] "
        "len=64 cols=17 aux=16 pitch=64 flags=mask|scale|wt "
        "chan=0x30 cat=attn");
    EXPECT_EQ(i.op, Opcode::kMaskedMm);
    EXPECT_EQ(i.src2.addr, 0x4000u);
    EXPECT_EQ(i.cols, 17u);
    EXPECT_EQ(i.flags, kFlagMask | kFlagScale | kFlagWeightRowIsCol);
    EXPECT_EQ(i.hbmChannels, 0x30u);
    EXPECT_EQ(i.category, Category::kAttention);
}

TEST(Assembler, ProgramRoundTripThroughText)
{
    Program prog;
    Instruction a = sampleConv1d();
    Instruction b;
    b.op = Opcode::kAccum;
    b.src1 = Operand::vrf(3);
    b.dst = Operand::srf(1);
    b.len = 256;
    b.category = Category::kLayerNorm;
    prog.push_back(a);
    prog.push_back(b);
    std::string text = "# header comment\n" + formatProgram(prog) + "\n";
    Program back = parseProgram(text);
    EXPECT_EQ(back, prog);
}

class CodegenTest : public ::testing::Test
{
  protected:
    void
    build(size_t n_cores, size_t kv_contexts = 1)
    {
        config = GptConfig::toy();
        geometry = ClusterGeometry{n_cores};
        hbm = std::make_unique<OffchipMemory>("h", 1ull << 32, 460e9, 0.6,
                                              false);
        ddr = std::make_unique<OffchipMemory>("d", 1ull << 32, 38e9, 0.7,
                                              false);
        layout = MemoryLayout::build(config, geometry, 16, *hbm, *ddr,
                                     kv_contexts);
        builder = std::make_unique<ProgramBuilder>(config, geometry,
                                                   layout, 0);
    }

    GptConfig config;
    ClusterGeometry geometry;
    std::unique_ptr<OffchipMemory> hbm, ddr;
    MemoryLayout layout;
    std::unique_ptr<ProgramBuilder> builder;
};

TEST_F(CodegenTest, FourSyncsPerDecoderLayer)
{
    build(2);
    auto phases = builder->layerPhases(0, 3);
    size_t syncs = 0;
    for (const auto &ph : phases)
        syncs += ph.hasSync() ? 1 : 0;
    // Algorithm 1: sync after attention heads, after the projection,
    // and after each of the two FFN matrices.
    EXPECT_EQ(syncs, 4u);
}

TEST_F(CodegenTest, ValueComputedBeforeKeyAndQuery)
{
    build(2);
    auto phases = builder->layerPhases(0, 0);
    const Program &p = phases[0].program;
    int v_idx = -1, k_idx = -1, q_idx = -1, vt_store = -1;
    for (size_t i = 0; i < p.size(); ++i) {
        if (p[i].op == Opcode::kConv1d) {
            if (p[i].src2.addr == layout.layers[0].wv)
                v_idx = static_cast<int>(i);
            if (p[i].src2.addr == layout.layers[0].wk)
                k_idx = static_cast<int>(i);
            if (p[i].src2.addr == layout.layers[0].wq)
                q_idx = static_cast<int>(i);
        }
        if (p[i].op == Opcode::kDmaStoreKv &&
            (p[i].flags & kFlagTranspose) && vt_store < 0)
            vt_store = static_cast<int>(i);
    }
    ASSERT_GE(v_idx, 0);
    ASSERT_GE(k_idx, 0);
    ASSERT_GE(q_idx, 0);
    ASSERT_GE(vt_store, 0);
    // Transpose hiding (§V-B): V first, its store overlapped with K/Q.
    EXPECT_LT(v_idx, k_idx);
    EXPECT_LT(k_idx, q_idx);
    EXPECT_LT(vt_store, k_idx);
}

TEST_F(CodegenTest, AllInstructionsValidate)
{
    build(2);
    std::string err;
    for (const auto &inst : builder->embedPhase(5, 0).program)
        EXPECT_TRUE(validate(inst, &err)) << err;
    for (size_t layer = 0; layer < config.layers; ++layer) {
        for (const auto &ph : builder->layerPhases(layer, 7)) {
            for (const auto &inst : ph.program)
                EXPECT_TRUE(validate(inst, &err)) << err;
        }
    }
    for (const auto &inst : builder->lmHeadPhase().program)
        EXPECT_TRUE(validate(inst, &err)) << err;
}

TEST_F(CodegenTest, KvOperandsCarryTheirLayoutChannelSets)
{
    build(2, /*kv_contexts=*/2);
    for (size_t ctx : {size_t{0}, size_t{1}}) {
        auto phases = builder->layerPhases(0, 2, ctx);
        const Program &p = phases[0].program;
        size_t masked = 0;
        for (const auto &inst : p) {
            if (inst.op == Opcode::kMaskedMm) {
                // Q.K^T streams the K region's pinned channels.
                EXPECT_EQ(inst.hbmChannels, layout.keyChannelMask(0, ctx));
                ++masked;
            } else if (inst.op == Opcode::kMm) {
                EXPECT_EQ(inst.hbmChannels, layout.vtChannelMask(0, ctx));
                ++masked;
            } else if (inst.op == Opcode::kDmaStoreKv) {
                EXPECT_EQ(inst.hbmChannels,
                          (inst.flags & kFlagTranspose)
                              ? layout.vtChannelMask(0, ctx)
                              : layout.keyChannelMask(0, ctx));
                ++masked;
            } else if (inst.op == Opcode::kConv1d) {
                // Weight operands stripe across all channels.
                EXPECT_EQ(inst.hbmChannels, 0u);
            }
        }
        EXPECT_EQ(masked, 4u);  // K store, V^T store, Q.K^T, score.V
        EXPECT_EQ(channelCount(layout.keyChannelMask(0, ctx)),
                  layout.kvStreamChannels);
        EXPECT_NE(layout.keyChannelMask(0, ctx),
                  layout.vtChannelMask(0, ctx));
    }
    // Distinct resident contexts are threaded onto distinct sets.
    EXPECT_NE(layout.keyChannelMask(0, 0), layout.keyChannelMask(0, 1));
}

TEST_F(CodegenTest, MaskedMmUsesScaleAndCausalMask)
{
    build(1);
    auto phases = builder->layerPhases(1, 9);
    bool found = false;
    for (const auto &inst : phases[0].program) {
        if (inst.op == Opcode::kMaskedMm) {
            found = true;
            EXPECT_TRUE(inst.flags & kFlagMask);
            EXPECT_TRUE(inst.flags & kFlagScale);
            EXPECT_TRUE(inst.flags & kFlagWeightRowIsCol);
            EXPECT_EQ(inst.cols, 10u);  // seq = pos + 1
            EXPECT_EQ(inst.aux, 9u);    // mask boundary = position
            // scale = 1/sqrt(64) = 0.125, exact in FP16.
            EXPECT_EQ(Half::fromBits(
                          static_cast<uint16_t>(inst.src3.addr))
                          .toFloat(),
                      0.125f);
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(CodegenTest, VrfMapFitsRegisterFile)
{
    build(1);
    EXPECT_LT(builder->map().linesUsed, 4096u);
    // And for the largest model at 4 cores.
    GptConfig big = GptConfig::gpt2_1_5B();
    ClusterGeometry geo{4};
    VrfMap m = VrfMap::build(big, geo, 16);
    EXPECT_LT(m.linesUsed, 4096u);
    // 345M on one core carries the full vocabulary slice.
    VrfMap m1 = VrfMap::build(GptConfig::gpt2_345M(), ClusterGeometry{1},
                              16);
    EXPECT_LT(m1.linesUsed, 4096u);
}

TEST_F(CodegenTest, LmHeadEndsInArgmaxSync)
{
    build(2);
    Phase head = builder->lmHeadPhase();
    ASSERT_TRUE(head.hasSync());
    EXPECT_TRUE(head.sync().flags & kFlagArgmax);
    // Real vocab columns: 97 over 2 cores padded to 16 lanes -> 64
    // per core; core 0 holds 49 -> padded 64, real min(64, 97) = 64?
    // vocabShard = ceil(ceil(97/2)=49 /16)*16 = 64; core 0 real = 64.
    EXPECT_EQ(builder->vocabRealCols(), 64u);
    ProgramBuilder b1(config, geometry, layout, 1);
    EXPECT_EQ(b1.vocabRealCols(), 97u - 64u);
}

}  // namespace
}  // namespace isa
}  // namespace dfx
