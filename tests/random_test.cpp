/**
 * @file
 * Deterministic RNG tests.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"

namespace dfx {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled)
{
    Rng rng(13);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 0.5);
    EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, BelowBounds)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(13), 13u);
    // n == 1 always yields 0.
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng rng(19);
    int counts[8] = {0};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        counts[rng.below(8)]++;
    for (int c : counts)
        EXPECT_NEAR(c, n / 8, n / 80);
}

}  // namespace
}  // namespace dfx
