/**
 * @file
 * Parameterized end-to-end property tests for the cluster: reference
 * agreement, cross-cluster-size token identity, timing monotonicity
 * and breakdown conservation swept over (model, cores, workload).
 */
#include <gtest/gtest.h>

#include "appliance/appliance.hpp"
#include "model/reference.hpp"

namespace dfx {
namespace {

struct ClusterCase
{
    const char *model;
    size_t cores;
    uint64_t seed;
};

class ClusterProperty : public ::testing::TestWithParam<ClusterCase>
{
  protected:
    DfxSystemConfig
    config(bool functional) const
    {
        DfxSystemConfig cfg;
        cfg.model = GptConfig::byName(GetParam().model);
        cfg.nCores = GetParam().cores;
        cfg.functional = functional;
        return cfg;
    }
};

TEST_P(ClusterProperty, MatchesReferenceGreedyTokens)
{
    const ClusterCase &cs = GetParam();
    GptWeights w =
        GptWeights::random(GptConfig::byName(cs.model), cs.seed);
    DfxAppliance appliance(config(true));
    appliance.loadWeights(w);
    ReferenceModel ref(w);
    std::vector<int32_t> prompt = {2, 3, 5, 7};
    auto dfx_out = appliance.generate(prompt, 5).tokens;
    auto ref_out = ref.generate(prompt, 5);
    EXPECT_EQ(dfx_out, ref_out);
}

TEST_P(ClusterProperty, LatencyMonotoneInOutputTokens)
{
    DfxAppliance appliance(config(false));
    std::vector<int32_t> prompt(8, 0);
    double prev = 0.0;
    for (size_t out : {1u, 2u, 4u, 8u}) {
        double t = appliance.generate(prompt, out).totalSeconds();
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST_P(ClusterProperty, LatencyMonotoneInInputTokens)
{
    DfxAppliance appliance(config(false));
    double prev = 0.0;
    for (size_t in : {2u, 4u, 8u, 16u}) {
        double t = appliance.generate(std::vector<int32_t>(in, 0), 2)
                       .totalSeconds();
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST_P(ClusterProperty, BreakdownSumsToStageTime)
{
    DfxAppliance appliance(config(false));
    GenerationResult r =
        appliance.generate(std::vector<int32_t>(6, 0), 6);
    double sum = 0.0;
    for (double s : r.categorySeconds)
        sum += s;
    double stage = r.summarizationSeconds + r.generationSeconds;
    EXPECT_NEAR(sum, stage, stage * 1e-6);
}

TEST_P(ClusterProperty, FlopsScaleWithModelWork)
{
    DfxAppliance appliance(config(false));
    GenerationResult r =
        appliance.generate(std::vector<int32_t>(4, 0), 4);
    // 8 token steps; each must do at least 2 * (all layer-matrix
    // params) FLOPs — weights are touched once per token.
    GptConfig cfg = GptConfig::byName(GetParam().model);
    double min_flops =
        8.0 * 2.0 * static_cast<double>(cfg.layerMatrixParams()) *
        static_cast<double>(cfg.layers);
    EXPECT_GE(r.summarizationFlops + r.generationFlops, min_flops);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndClusters, ClusterProperty,
    ::testing::Values(ClusterCase{"toy", 1, 11},
                      ClusterCase{"toy", 2, 12},
                      ClusterCase{"mini", 1, 13},
                      ClusterCase{"mini", 2, 14},
                      ClusterCase{"mini", 4, 15}),
    [](const ::testing::TestParamInfo<ClusterCase> &info) {
        return std::string(info.param.model) + "_c" +
               std::to_string(info.param.cores);
    });

// ---------------------------------------------------------------------

class WorkloadProperty
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(WorkloadProperty, DfxLatencyLinearInTotalTokens)
{
    // Fig. 14's defining property: DFX latency ~ (n_in + n_out) x
    // per-token cost, with only a mild attention-driven superlinear
    // term.
    const auto [n_in, n_out] = GetParam();
    DfxSystemConfig cfg;
    cfg.model = GptConfig::mini();
    cfg.nCores = 2;
    cfg.functional = false;
    DfxAppliance appliance(cfg);
    double t = appliance.generate(std::vector<int32_t>(n_in, 0), n_out)
                   .totalSeconds();
    double t1 = appliance.generate(std::vector<int32_t>(2, 0), 2)
                    .totalSeconds();
    double per_token = t1 / 4.0;
    double tokens = static_cast<double>(n_in + n_out);
    EXPECT_GT(t, 0.9 * per_token * tokens);
    EXPECT_LT(t, 1.6 * per_token * tokens);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WorkloadProperty,
    ::testing::Values(std::make_pair(4, 4), std::make_pair(8, 16),
                      std::make_pair(16, 8), std::make_pair(32, 32),
                      std::make_pair(8, 48)),
    [](const ::testing::TestParamInfo<std::pair<size_t, size_t>> &info) {
        return "in" + std::to_string(info.param.first) + "_out" +
               std::to_string(info.param.second);
    });

}  // namespace
}  // namespace dfx
