/**
 * @file
 * Parameterized property tests for the matrix processing unit:
 * functional agreement with the reference matvec and timing-model
 * invariants, swept over operand shapes and tilings via TEST_P.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "core/core.hpp"
#include "memory/hbm_channels.hpp"
#include "numeric/functions.hpp"

namespace dfx {
namespace {

using isa::Instruction;
using isa::Opcode;
using isa::Operand;

struct Shape
{
    size_t rows;
    size_t cols;
};

class MpuShapeProperty : public ::testing::TestWithParam<Shape>
{
};

TEST_P(MpuShapeProperty, Conv1dMatchesReferenceWithinFp16Error)
{
    const auto [rows, cols] = GetParam();
    ComputeCore core(0, CoreParams::defaults(), true);
    Rng rng(rows * 131 + cols);

    MatF w(rows, cols);
    VecF x(rows), b(cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            w.at(r, c) = static_cast<float>(rng.normal(0, 0.1));
    for (size_t r = 0; r < rows; ++r)
        x[r] = static_cast<float>(rng.normal(0, 1.0));
    for (size_t c = 0; c < cols; ++c)
        b[c] = static_cast<float>(rng.normal(0, 0.05));

    uint64_t w_addr = core.hbm().alloc(rows * cols * 2, "w");
    uint64_t b_addr = core.ddr().alloc(cols * 2, "b");
    MatH wh = toHalf(w);
    core.hbm().writeHalf(w_addr, wh.data(), wh.size());
    VecH bh = toHalf(b);
    core.ddr().writeHalf(b_addr, bh.data(), bh.size());
    core.vrf().writeVec(0, toHalf(x));

    Instruction inst;
    inst.op = Opcode::kConv1d;
    inst.src1 = Operand::vrf(0);
    inst.src2 = Operand::hbm(w_addr);
    inst.src3 = Operand::ddr(b_addr);
    inst.dst = Operand::vrf(200);
    inst.len = static_cast<uint32_t>(rows);
    inst.cols = static_cast<uint32_t>(cols);
    inst.pitch = static_cast<uint32_t>(cols);
    core.executePhase(isa::Program{inst});

    VecF got = toFloat(core.vrf().readVec(200, cols));
    VecF expect = matVec(w, x, b);
    // FP16 accumulation error grows ~sqrt(rows) * ulp.
    const float tol =
        0.004f * std::sqrt(static_cast<float>(rows)) + 0.01f;
    for (size_t c = 0; c < cols; ++c)
        EXPECT_NEAR(got[c], expect[c], tol) << rows << "x" << cols
                                            << " col " << c;
}

TEST_P(MpuShapeProperty, TimingInvariants)
{
    const auto [rows, cols] = GetParam();
    CoreParams params = CoreParams::defaults();
    ComputeCore core(0, params, false);
    Instruction inst;
    inst.op = Opcode::kConv1d;
    inst.src1 = Operand::vrf(0);
    inst.src2 = Operand::hbm(0);
    inst.dst = Operand::vrf(200);
    inst.len = static_cast<uint32_t>(rows);
    inst.cols = static_cast<uint32_t>(cols);
    inst.pitch = static_cast<uint32_t>(cols);
    PhaseStats s = core.executePhase(isa::Program{inst});

    // (1) The phase cannot beat the streaming bound of the padded
    //     weight footprint.
    const size_t d = params.tileRows, l = params.lanes;
    uint64_t padded = (rows + d - 1) / d * d * ((cols + l - 1) / l) * l *
                      2;
    EXPECT_GE(s.hbmBytes, padded);
    Cycles stream_bound = static_cast<Cycles>(
        static_cast<double>(padded) / params.hbmBytesPerCycle());
    EXPECT_GE(s.cycles, stream_bound);
    // (2) ...nor the compute bound of one tile per cycle.
    EXPECT_GE(s.cycles, (rows + d - 1) / d * ((cols + l - 1) / l));
    // (3) FLOPs are the model's true work.
    EXPECT_DOUBLE_EQ(s.flops, 2.0 * rows * cols);
}

TEST_P(MpuShapeProperty, TimingMatchesPreChannelModelClosedForm)
{
    // The per-channel model must reproduce the pre-refactor timing
    // bit-for-bit in the degenerate cases: a weight operand striped
    // across all channels streams at aggregate bandwidth, and a
    // K/V operand pinned to a kvStreamChannels-wide set streams at
    // exactly the old static derating — whether the set is explicit
    // (annotated instruction) or the legacy flag-only fallback.
    const auto [rows, cols] = GetParam();
    CoreParams params = CoreParams::defaults();
    OffchipMemory hbm = makeHbm(0, params.hbmEfficiency, false);
    OffchipMemory ddr = makeDdr(0, params.ddrEfficiency, false);
    Mpu mpu(params, &hbm, &ddr);

    const size_t d = params.tileRows, l = params.lanes;
    const uint64_t row_tiles = (rows + d - 1) / d;
    const uint64_t col_tiles = (cols + l - 1) / l;
    const uint64_t tiles = row_tiles * col_tiles;
    const uint64_t padded = row_tiles * d * col_tiles * l * 2;

    Instruction inst;
    inst.op = Opcode::kMm;
    inst.src1 = Operand::vrf(0);
    inst.src2 = Operand::hbm(0);
    inst.dst = Operand::vrf(200);
    inst.len = static_cast<uint32_t>(rows);
    inst.cols = static_cast<uint32_t>(cols);
    inst.pitch = static_cast<uint32_t>(cols);

    // (1) Striped weight operand: old full-bandwidth closed form.
    const Cycles weight_stream = static_cast<Cycles>(
        std::ceil(static_cast<double>(padded) /
                  params.hbmBytesPerCycle()));
    EXPECT_EQ(mpu.timing(inst).occupancy,
              std::max<Cycles>(tiles, weight_stream));

    // (2) Pinned K/V operand: old static-derating closed form,
    //     identical for the legacy flag-only path and an explicit
    //     kvStreamChannels-wide set.
    double derated = params.hbmBytesPerCycle();
    derated *= static_cast<double>(params.kvStreamChannels) /
               static_cast<double>(params.hbmChannels);
    const Cycles kv_stream = static_cast<Cycles>(
        std::ceil(static_cast<double>(padded) / derated));
    inst.flags = isa::kFlagWeightRowIsCol;
    const Cycles legacy = mpu.timing(inst).occupancy;
    EXPECT_EQ(legacy, std::max<Cycles>(tiles, kv_stream));
    inst.hbmChannels = contiguousChannels(7, params.kvStreamChannels,
                                          params.hbmChannels);
    EXPECT_EQ(mpu.timing(inst).occupancy, legacy);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MpuShapeProperty,
    ::testing::Values(Shape{64, 16}, Shape{64, 64}, Shape{100, 24},
                      Shape{128, 33}, Shape{256, 128}, Shape{500, 7},
                      Shape{1024, 256}),
    [](const ::testing::TestParamInfo<Shape> &info) {
        return std::to_string(info.param.rows) + "x" +
               std::to_string(info.param.cols);
    });

// ---------------------------------------------------------------------

class MpuTilingProperty
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(MpuTilingProperty, EqualMacCountsGiveEqualBigMatmulThroughput)
{
    // All (d, l) with d*l = 1024 tie on large dense matmuls — only
    // the small attention operands separate them (Fig. 8a).
    const auto [d, l] = GetParam();
    CoreParams params = CoreParams::withTiling(d, l);
    ComputeCore core(0, params, false);
    Instruction inst;
    inst.op = Opcode::kConv1d;
    inst.src1 = Operand::vrf(0);
    inst.src2 = Operand::hbm(0);
    inst.dst = Operand::vrf(300);
    inst.len = 1024;
    inst.cols = 1024;
    inst.pitch = 1024;
    Cycles cycles = core.executePhase(isa::Program{inst}).cycles;

    CoreParams ref_params = CoreParams::withTiling(64, 16);
    ComputeCore ref(0, ref_params, false);
    Cycles ref_cycles = ref.executePhase(isa::Program{inst}).cycles;
    EXPECT_NEAR(static_cast<double>(cycles),
                static_cast<double>(ref_cycles),
                0.1 * static_cast<double>(ref_cycles))
        << "(d,l)=(" << d << "," << l << ")";
}

TEST_P(MpuTilingProperty, SlidingWindowPenalizesOverlongInputs)
{
    const auto [d, l] = GetParam();
    CoreParams params = CoreParams::withTiling(d, l);
    params.maxConvInput = 1024;
    ComputeCore core(0, params, false);
    auto conv = [](uint32_t rows) {
        Instruction i;
        i.op = Opcode::kConv1d;
        i.src1 = Operand::vrf(0);
        i.src2 = Operand::hbm(0);
        i.dst = Operand::vrf(300);
        i.len = rows;
        i.cols = 64;
        i.pitch = 64;
        return i;
    };
    Cycles two_windows =
        core.executePhase(isa::Program{conv(2048)}).cycles;
    Cycles one_window_twice =
        core.executePhase(isa::Program{conv(1024)}).cycles;
    // 2048 rows in two windows costs more than one 1024-row window
    // (extra fill) but no more than two sequential instructions.
    EXPECT_GT(two_windows, one_window_twice);
    Cycles two_instructions =
        core.executePhase(isa::Program{conv(1024), conv(1024)}).cycles;
    EXPECT_LE(two_windows, two_instructions + params.mpuFillLatency());
}

INSTANTIATE_TEST_SUITE_P(
    Tilings, MpuTilingProperty,
    ::testing::Values(std::make_pair(8, 128), std::make_pair(16, 64),
                      std::make_pair(32, 32), std::make_pair(64, 16),
                      std::make_pair(128, 8)),
    [](const ::testing::TestParamInfo<std::pair<size_t, size_t>> &info) {
        return "d" + std::to_string(info.param.first) + "l" +
               std::to_string(info.param.second);
    });

}  // namespace
}  // namespace dfx
