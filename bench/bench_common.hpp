/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Each bench binary regenerates one table or figure from the paper
 * (see DESIGN.md §3 for the index). These helpers wrap the DFX
 * simulator and the GPU baseline behind one-call latency probes.
 */
#ifndef DFX_BENCH_COMMON_HPP
#define DFX_BENCH_COMMON_HPP

#include <sys/resource.h>

#include <chrono>
#include <vector>

#include "appliance/appliance.hpp"
#include "baseline/gpu.hpp"

namespace dfx {
namespace bench {

/** Monotonic host time in seconds (wall-clock measurements). */
inline double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Peak resident set size of this process so far, in bytes. The benches
 * record it next to steps/sec so weight-image duplication (the thing
 * the shared `WeightStore` exists to prevent) cannot regress silently.
 */
inline uint64_t
peakRssBytes()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
#ifdef __APPLE__
    return static_cast<uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;  // KB on Linux
#endif
}

/**
 * GPT-2-shaped, 8-head model sized for host-speed benchmarking: the
 * shared workload of `bench_sim_speed` and `bench_serving`, so the
 * two cross-PR perf records track the same arithmetic.
 */
inline GptConfig
gpt2Petite()
{
    GptConfig c;
    c.name = "gpt2-petite";
    c.vocabSize = 4096;
    c.embedding = 512;
    c.heads = 8;
    c.headDim = 64;
    c.layers = 4;
    c.maxSeq = 128;
    return c;
}

/** The paper's per-model device counts (345M:1, 774M:2, 1.5B:4). */
inline size_t
paperDeviceCount(const GptConfig &cfg)
{
    if (cfg.name == "345M")
        return 1;
    if (cfg.name == "774M")
        return 2;
    if (cfg.name == "1.5B")
        return 4;
    return 1;
}

/** Runs a timing-only DFX generation and returns the result. */
inline GenerationResult
runDfx(const GptConfig &model, size_t n_cores, size_t n_in, size_t n_out)
{
    DfxSystemConfig cfg;
    cfg.model = model;
    cfg.nCores = n_cores;
    cfg.functional = false;
    DfxAppliance appliance(cfg);
    return appliance.generate(std::vector<int32_t>(n_in, 0), n_out);
}

/** Runs the GPU baseline estimate. */
inline GpuEstimate
runGpu(const GptConfig &model, size_t n_gpus, size_t n_in, size_t n_out)
{
    return GpuApplianceModel(model, n_gpus).estimate(n_in, n_out);
}

/** The Fig. 14 / Fig. 16 workload grid. */
inline std::vector<std::pair<size_t, size_t>>
workloadGrid()
{
    std::vector<std::pair<size_t, size_t>> grid;
    for (size_t in : {32, 64, 128})
        for (size_t out : {1, 4, 16, 64, 256})
            grid.push_back({in, out});
    return grid;
}

}  // namespace bench
}  // namespace dfx

#endif  // DFX_BENCH_COMMON_HPP
