/**
 * @file
 * Reproduces paper Figure 14: end-to-end text-generation latency of
 * DFX vs the GPU appliance across all three GPT-2 models and the
 * full input/output grid. Headline: DFX is 3.20x / 4.46x / 5.58x
 * faster on 345M / 774M / 1.5B with equal device counts, and up to
 * ~10x on output-heavy workloads ([32:256]).
 */
#include <cstdio>

#include "bench_common.hpp"
#include "perf/report.hpp"

using namespace dfx;
using namespace dfx::bench;

int
main()
{
    printHeader("Figure 14 — DFX vs GPU appliance latency",
                "Fig. 14 (345M 1v1, 774M 2v2, 1.5B 4v4)");

    // Paper's published per-model average speedups for reference.
    struct ModelCase { GptConfig cfg; double paper_speedup; };
    ModelCase cases[] = {{GptConfig::gpt2_345M(), 3.20},
                         {GptConfig::gpt2_774M(), 4.46},
                         {GptConfig::gpt2_1_5B(), 5.58}};

    for (const auto &mc : cases) {
        size_t devices = paperDeviceCount(mc.cfg);
        std::printf("--- GPT-2 %s: %zu GPU(s) vs %zu FPGA(s) ---\n\n",
                    mc.cfg.name.c_str(), devices, devices);
        Table t({"[in:out]", "GPU (ms)", "DFX (ms)", "speedup"});
        double gpu_sum = 0.0, dfx_sum = 0.0;
        double best_speedup = 0.0;
        std::string best_label;
        for (const auto &[n_in, n_out] : workloadGrid()) {
            double gpu_ms =
                runGpu(mc.cfg, devices, n_in, n_out).totalSeconds() * 1e3;
            double dfx_ms =
                runDfx(mc.cfg, devices, n_in, n_out).totalSeconds() * 1e3;
            gpu_sum += gpu_ms;
            dfx_sum += dfx_ms;
            double speedup = gpu_ms / dfx_ms;
            if (speedup > best_speedup) {
                best_speedup = speedup;
                best_label = workloadLabel(n_in, n_out);
            }
            t.addRow({workloadLabel(n_in, n_out), fmt(gpu_ms, 1),
                      fmt(dfx_ms, 1), fmt(speedup, 2) + "x"});
        }
        std::printf("%s", t.render().c_str());
        std::printf("average latency: GPU %.1f ms, DFX %.1f ms -> "
                    "%.2fx speedup (paper: %.2fx)\n",
                    gpu_sum / 15.0, dfx_sum / 15.0, gpu_sum / dfx_sum,
                    mc.paper_speedup);
        std::printf("largest win: %s at %.2fx (paper: [32:256] at "
                    "10.03x on 1.5B)\n\n",
                    best_label.c_str(), best_speedup);
    }
    return 0;
}
