/**
 * @file
 * Reproduces paper Figure 3: GPU text-generation latency as input
 * tokens grow (leftward) vs output tokens grow (rightward), GPT-2
 * 1.5B. The paper's point: each extra output token costs ~75.45 ms
 * while each extra input token costs ~0.02 ms.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "perf/report.hpp"

using namespace dfx;

int
main()
{
    printHeader("Figure 3 — GPU latency vs input/output token counts",
                "Fig. 3 (GPT-2 1.5B on the 4x V100 appliance)");

    GptConfig model = GptConfig::gpt2_1_5B();
    GpuApplianceModel gpu(model, 4);

    struct Point { size_t in, out; };
    Point points[] = {{128, 1}, {96, 1}, {64, 1}, {32, 1},
                      {32, 2}, {32, 3}, {32, 4}};

    Table t({"[in:out]", "summ (ms)", "gen (ms)", "total (ms)"});
    for (const auto &p : points) {
        GpuEstimate est = gpu.estimate(p.in, p.out);
        t.addRow({workloadLabel(p.in, p.out),
                  fmt(est.summarizationSeconds * 1e3),
                  fmt(est.generationSeconds * 1e3),
                  fmt(est.totalSeconds() * 1e3)});
    }
    std::printf("%s\n", t.render().c_str());

    // The headline slopes.
    double out_slope = (gpu.estimate(32, 4).totalSeconds() -
                        gpu.estimate(32, 1).totalSeconds()) / 3.0 * 1e3;
    double in_slope = (gpu.estimate(128, 1).totalSeconds() -
                       gpu.estimate(32, 1).totalSeconds()) / 96.0 * 1e3;
    std::printf("per-output-token latency: %.2f ms   (paper: 75.45 ms)\n",
                out_slope);
    std::printf("per-input-token latency:  %.4f ms  (paper: 0.02 ms)\n",
                in_slope);
    return 0;
}
