/**
 * @file
 * Reproduces paper Table I: GPT-2 model configurations, extended with
 * derived quantities the other experiments depend on (parameter
 * counts, FP16 footprint, per-device HBM traffic per token).
 */
#include <cstdio>

#include "bench_common.hpp"
#include "memory/layout.hpp"
#include "perf/report.hpp"

using namespace dfx;
using namespace dfx::bench;

int
main()
{
    printHeader("Table I — GPT-2 model configurations", "Table I");

    Table t({"model", "params", "embedding", "heads", "head dim",
             "layers", "FP16 size", "devices", "HBM/core"});
    for (const auto &cfg : {GptConfig::gpt2_345M(), GptConfig::gpt2_774M(),
                            GptConfig::gpt2_1_5B()}) {
        size_t devices = paperDeviceCount(cfg);
        OffchipMemory hbm = makeHbm(0, 0.5, false);
        OffchipMemory ddr = makeDdr(0, 0.7, false);
        MemoryLayout ml = MemoryLayout::build(
            cfg, ClusterGeometry{devices}, 16, hbm, ddr);
        t.addRow({cfg.name,
                  fmt(static_cast<double>(cfg.parameterCount()) / 1e6,
                      0) + "M",
                  std::to_string(cfg.embedding),
                  std::to_string(cfg.heads),
                  std::to_string(cfg.headDim),
                  std::to_string(cfg.layers),
                  fmt(static_cast<double>(cfg.parameterBytes()) / 1e9,
                      2) + " GB",
                  std::to_string(devices),
                  fmt(static_cast<double>(ml.hbmBytes()) / 1e9, 2) +
                      " GB"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper Table I: 345M(1024/16/64/24), "
                "774M(1280/20/64/36), 1.5B(1536/24/64/48); the 1.5B "
                "head count is adjusted from OpenAI's 25 to 24 for "
                "parallelizability.\n");
    return 0;
}
