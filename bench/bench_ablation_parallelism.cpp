/**
 * @file
 * Ablation: intra-layer vs pipelined model parallelism (paper §II-B,
 * §IV-B). The paper chooses intra-layer parallelism because pipelined
 * parallelism cannot reduce single-stream latency — each token's
 * feedback loop must traverse every stage serially — while intra-
 * layer splits every matrix and pays only the sync cost.
 *
 * The pipelined estimate for a single stream: every layer runs at
 * single-device speed on its stage device, plus an inter-device hop
 * whenever consecutive layers live on different FPGAs.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "network/ring.hpp"
#include "perf/report.hpp"

using namespace dfx;
using namespace dfx::bench;

int
main()
{
    printHeader("Ablation — intra-layer vs pipelined parallelism",
                "§II-B / §IV-B design choice");

    GptConfig model = GptConfig::gpt2_1_5B();
    const size_t n_in = 32, n_out = 64;
    const size_t devices = 4;

    // Intra-layer (what DFX implements): measured on the simulator.
    double intra =
        runDfx(model, devices, n_in, n_out).totalSeconds();

    // Pipelined: per-token latency equals the 1-device latency (all
    // layers execute serially for a single stream) plus one hop per
    // stage boundary per token.
    double single = runDfx(model, 1, n_in, n_out).totalSeconds();
    RingNetwork ring(RingParams{}, devices);
    const size_t boundaries = devices - 1;
    double hop_bytes = model.embedding * 2;  // activations between stages
    double pipelined =
        single + static_cast<double>(n_in + n_out) * boundaries *
                     ring.hopSeconds(static_cast<uint64_t>(hop_bytes));

    Table t({"scheme", "latency (ms)", "vs intra-layer"});
    t.addRow({"intra-layer (DFX)", fmt(intra * 1e3, 1), "1.00x"});
    t.addRow({"pipelined", fmt(pipelined * 1e3, 1),
              fmt(pipelined / intra, 2) + "x slower"});
    t.addRow({"single device", fmt(single * 1e3, 1),
              fmt(single / intra, 2) + "x slower"});
    std::printf("%s\n", t.render().c_str());
    std::printf("pipelining adds throughput for concurrent streams but "
                "cannot cut single-request latency — the difference "
                "grows linearly per decoder layer in the text-"
                "generation feedback loop (paper §IV-B).\n");
    return 0;
}
