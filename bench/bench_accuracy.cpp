/**
 * @file
 * Reproduces paper §VII-A (inference accuracy) under the documented
 * substitution: we have no trained checkpoints or WSC/CBT corpora
 * offline, so the property actually established by the paper — the
 * DFX FP16 datapath (including the LUT GELU) computes the same model
 * function as the baseline within negligible error — is measured
 * directly:
 *
 *  1. next-token agreement between the full DFX FP16 pipeline and the
 *     FP32/FP64 reference engine over many seeded models/contexts
 *     (paper reports -0.3% .. +0.15% task-accuracy deltas);
 *  2. logit-level error of the DFX pipeline vs the reference;
 *  3. a synthetic cloze task (deterministic pattern continuation)
 *     scored on both engines, mirroring the WSC/CBT "predict the
 *     held-out word" protocol.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "common/random.hpp"
#include "model/reference.hpp"
#include "numeric/functions.hpp"
#include "perf/report.hpp"

using namespace dfx;

namespace {

DfxSystemConfig
functionalConfig(const GptConfig &model, size_t cores)
{
    DfxSystemConfig cfg;
    cfg.model = model;
    cfg.nCores = cores;
    cfg.functional = true;
    return cfg;
}

}  // namespace

int
main()
{
    printHeader("Accuracy — DFX FP16 vs high-precision reference",
                "§VII-A (WSC/CBT-CN/CBT-NE substituted; see DESIGN.md)");

    const size_t kModels = 3;
    const size_t kContexts = 4;
    const size_t kGenTokens = 6;

    size_t agree = 0, total = 0;
    Table t({"model seed", "cores", "contexts", "token agreement"});
    for (size_t m = 0; m < kModels; ++m) {
        uint64_t seed = 1000 + m;
        GptWeights w = GptWeights::random(GptConfig::mini(), seed);
        size_t cores = m == 0 ? 1 : (m == 1 ? 2 : 4);
        DfxAppliance appliance(functionalConfig(w.config, cores));
        appliance.loadWeights(w);
        ReferenceModel ref(w);
        size_t model_agree = 0, model_total = 0;
        for (size_t c = 0; c < kContexts; ++c) {
            std::vector<int32_t> prompt;
            Rng rng(seed * 31 + c);
            for (int i = 0; i < 6; ++i)
                prompt.push_back(static_cast<int32_t>(
                    rng.below(w.config.vocabSize)));
            auto dfx_toks = appliance.generate(prompt, kGenTokens).tokens;
            auto ref_toks = ref.generate(prompt, kGenTokens);
            for (size_t i = 0; i < kGenTokens; ++i) {
                model_agree += dfx_toks[i] == ref_toks[i];
                ++model_total;
            }
        }
        agree += model_agree;
        total += model_total;
        t.addRow({std::to_string(seed), std::to_string(cores),
                  std::to_string(kContexts),
                  fmt(100.0 * model_agree / model_total, 2) + "%"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\noverall greedy-token agreement: %.2f%% "
                "(paper accuracy delta: 0.00%% WSC, -0.30%% CBT-CN, "
                "+0.15%% CBT-NE)\n\n",
                100.0 * agree / total);

    // Synthetic cloze: score both engines on "which continuation has
    // the higher logit" over held-out positions.
    {
        GptWeights w = GptWeights::random(GptConfig::mini(), 77);
        DfxSystemConfig cfg = functionalConfig(w.config, 2);
        DfxCluster cluster(cfg);
        cluster.loadWeights(w);
        ReferenceModel ref(w);
        size_t same_choice = 0;
        const size_t kCases = 12;
        for (size_t c = 0; c < kCases; ++c) {
            Rng rng(999 + c);
            cluster.reset();
            ref.reset();
            int32_t next_dfx = -1;
            VecF logits;
            for (int i = 0; i < 5; ++i) {
                int32_t tok = static_cast<int32_t>(
                    rng.below(w.config.vocabSize));
                next_dfx = cluster.stepToken(tok, nullptr);
                logits = ref.step(tok);
            }
            // Candidate pair: the reference's top-2 tokens; both
            // engines must prefer the same one.
            int32_t best = static_cast<int32_t>(argmax(logits));
            same_choice += next_dfx == best;
        }
        std::printf("synthetic cloze (top-choice match over %zu cases): "
                    "%.1f%%\n",
                    kCases, 100.0 * same_choice / kCases);
    }
    return 0;
}
