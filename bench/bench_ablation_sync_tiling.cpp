/**
 * @file
 * Ablations for two design choices DESIGN.md calls out:
 *
 *  1. Synchronization cost vs cluster size and hop latency — why the
 *     paper minimizes syncs to four per decoder layer and why
 *     LayerNorm/Residual are not parallelized (§IV-B, §VII-B).
 *  2. Tiling walk direction (§V-B): horizontal maximizes input reuse
 *     but needs one partial-sum buffer per weight column; vertical
 *     needs one buffer but re-reads the input per tile; the zigzag
 *     d x d band needs one buffer set AND keeps input reuse.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "network/ring.hpp"
#include "perf/report.hpp"

using namespace dfx;
using namespace dfx::bench;

namespace {

/** Buffer and register-file traffic model of a tiling walk. */
struct WalkCosts
{
    double partialSumBuffers;  ///< live partial sums (on-chip halves)
    double inputReads;         ///< register-file input element reads
};

WalkCosts
walkCosts(const char *direction, size_t emb, size_t cols, size_t d,
          size_t l)
{
    const double row_tiles = static_cast<double>((emb + d - 1) / d);
    const double col_tiles = static_cast<double>((cols + l - 1) / l);
    WalkCosts w{};
    if (std::string(direction) == "horizontal") {
        // Finish all columns for one row band before moving down: every
        // output column keeps a live partial sum.
        w.partialSumBuffers = static_cast<double>(cols);
        w.inputReads = static_cast<double>(emb);  // each input once
    } else if (std::string(direction) == "vertical") {
        // Finish all row bands for one column group: one buffer set,
        // but the input vector is re-read for every column group.
        w.partialSumBuffers = static_cast<double>(l);
        w.inputReads = static_cast<double>(emb) * col_tiles;
    } else {  // zigzag
        // d x d band: one buffer set per band, input chunk reused
        // across the band's columns.
        w.partialSumBuffers = static_cast<double>(d);
        w.inputReads = static_cast<double>(emb) * (col_tiles /
                                                   (row_tiles > 0
                                                        ? row_tiles
                                                        : 1.0));
    }
    return w;
}

}  // namespace

int
main()
{
    printHeader("Ablation — synchronization cost and tiling direction",
                "§IV-B sync minimization, §V-B zigzag walk");

    // ---- 1. Sync cost share vs cluster size -------------------------
    GptConfig model = GptConfig::gpt2_1_5B();
    std::printf("1) Synchronization share of decoder-layer time "
                "(1.5B, [32:64])\n\n");
    Table ts({"FPGAs", "total (ms)", "sync (ms)", "sync share"});
    for (size_t cores : {1u, 2u, 4u}) {
        if (model.heads % cores)
            continue;
        GenerationResult r = runDfx(model, cores, 32, 64);
        double sync = r.categorySeconds[static_cast<size_t>(
            isa::Category::kSync)];
        double decoder = 0.0;
        for (auto c : {isa::Category::kAttention, isa::Category::kFfn,
                       isa::Category::kSync, isa::Category::kLayerNorm,
                       isa::Category::kResidual}) {
            decoder += r.categorySeconds[static_cast<size_t>(c)];
        }
        ts.addRow({std::to_string(cores),
                   fmt(r.totalSeconds() * 1e3, 1), fmt(sync * 1e3, 1),
                   fmt(100.0 * sync / decoder, 1) + "%"});
    }
    std::printf("%s\n", ts.render().c_str());

    // What if LayerNorm were parallelized? It would add two more
    // all-gathers per layer for emb/N-sized work.
    RingNetwork ring(RingParams{}, 4);
    double extra_sync = 2.0 * ring.allGatherSeconds(
        model.embedding / 4 * 2);
    double ln_compute_saving =
        3.0 * (model.embedding - model.embedding / 4) /
        64.0 / 200e6;  // three elementwise passes at 64/cycle
    std::printf("parallelizing LayerNorm on 4 FPGAs would save ~%.2f us "
                "of compute but add ~%.2f us of sync per layer -> net "
                "loss (paper: \"we do not parallelize layer "
                "normalization and residual\")\n\n",
                ln_compute_saving * 1e6, extra_sync * 1e6);

    // ---- 2. Tiling walk direction ------------------------------------
    std::printf("2) Tiling walk direction (emb x 4emb FFN matrix, "
                "d=64, l=16)\n\n");
    Table tt({"direction", "partial-sum buffers", "input RF reads",
              "feasible on-chip?"});
    const size_t emb = 1536, cols = 6144;
    for (const char *dir : {"horizontal", "vertical", "zigzag"}) {
        WalkCosts w = walkCosts(dir, emb, cols, 64, 16);
        bool feasible = w.partialSumBuffers <= 1024;
        tt.addRow({dir, fmt(w.partialSumBuffers, 0),
                   fmt(w.inputReads, 0), feasible ? "yes" : "NO"});
    }
    std::printf("%s\n", tt.render().c_str());
    std::printf("zigzag keeps one d-deep buffer set with near-"
                "horizontal input reuse — the paper's chosen balance "
                "(§V-B, Fig. 9).\n");
    return 0;
}
