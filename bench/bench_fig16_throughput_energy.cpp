/**
 * @file
 * Reproduces paper Figure 16: throughput (tokens/s) and normalized
 * energy efficiency of DFX vs the GPU appliance on the 1.5B model.
 * Paper: 3.78x average throughput, 3.99x energy efficiency.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "perf/energy.hpp"
#include "perf/report.hpp"

using namespace dfx;
using namespace dfx::bench;

int
main()
{
    printHeader(
        "Figure 16 — throughput and energy efficiency (1.5B, 4v4)",
        "Fig. 16");

    GptConfig model = GptConfig::gpt2_1_5B();
    EnergyModel energy;
    GpuApplianceModel gpu(model, 4);

    const double dfx_watts = energy.dfxPowerWatts(4);

    Table t({"[in:out]", "GPU tok/s", "DFX tok/s", "speedup",
             "GPU tok/s/W", "DFX tok/s/W", "eff ratio"});
    double tp_ratio_sum = 0.0, eff_ratio_sum = 0.0;
    double gpu_tp_sum = 0.0, dfx_tp_sum = 0.0;
    size_t count = 0;
    for (const auto &[n_in, n_out] : workloadGrid()) {
        GpuEstimate ge = gpu.estimate(n_in, n_out);
        GenerationResult dr = runDfx(model, 4, n_in, n_out);
        double gpu_tp = ge.tokensPerSecond(n_out);
        double dfx_tp = dr.tokensPerSecond(n_out);
        // GPU power from achieved utilization (lands near the paper's
        // measured 47.5 W per device).
        double gpu_util = (ge.summarizationFlops + ge.generationFlops) /
                          ge.totalSeconds() /
                          (gpu.params().tensorPeakFlops * 4);
        double gpu_watts = energy.gpuPowerWatts(4, gpu_util);
        double gpu_eff = EnergyModel::tokensPerSecPerWatt(gpu_tp,
                                                          gpu_watts);
        double dfx_eff = EnergyModel::tokensPerSecPerWatt(dfx_tp,
                                                          dfx_watts);
        t.addRow({workloadLabel(n_in, n_out), fmt(gpu_tp, 2),
                  fmt(dfx_tp, 2), fmt(dfx_tp / gpu_tp, 2) + "x",
                  fmt(gpu_eff, 3), fmt(dfx_eff, 3),
                  fmt(dfx_eff / gpu_eff, 2) + "x"});
        tp_ratio_sum += dfx_tp / gpu_tp;
        eff_ratio_sum += dfx_eff / gpu_eff;
        gpu_tp_sum += gpu_tp;
        dfx_tp_sum += dfx_tp;
        ++count;
    }
    std::printf("%s", t.render().c_str());
    std::printf("\naverage throughput speedup:      %.2fx (paper: "
                "3.78x)\n",
                tp_ratio_sum / count);
    std::printf("average energy-efficiency ratio: %.2fx (paper: "
                "3.99x)\n",
                eff_ratio_sum / count);
    std::printf("GPU throughput stays flat with output length "
                "(launch-bound); DFX throughput: %.1f vs GPU %.1f "
                "tokens/s average\n",
                dfx_tp_sum / count, gpu_tp_sum / count);
    return 0;
}
